package oocphylo

// One benchmark per figure of the paper's evaluation, plus ablations of
// the design choices DESIGN.md calls out. Custom metrics carry the
// figures' actual quantities (miss %, read %, simulated I/O time,
// page-fault counts); ns/op measures the harness itself and is of
// secondary interest. Dimensions are CI-scaled (see DESIGN.md §6);
// cmd/figures reproduces paper-scale runs.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"oocphylo/internal/experiments"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

var benchCfg = experiments.SearchWorkloadConfig{Taxa: 64, Sites: 100, Seed: 42, Rounds: 1}

// BenchmarkFigure2 reproduces the miss-rate comparison: four strategies
// at f in {0.25, 0.50, 0.75} on the search workload.
func BenchmarkFigure2(b *testing.B) {
	for _, strategy := range experiments.StrategyNames {
		for _, f := range []float64{0.25, 0.50, 0.75} {
			name := map[float64]string{0.25: "f25", 0.50: "f50", 0.75: "f75"}[f]
			b.Run(strategy+"/"+name, func(b *testing.B) {
				var miss float64
				for i := 0; i < b.N; i++ {
					res, err := experiments.RunFigure2(benchCfg, []float64{f}, false)
					if err != nil {
						b.Fatal(err)
					}
					for _, r := range res {
						if r.Strategy == strategy {
							miss = 100 * r.Stats.MissRate()
						}
					}
				}
				b.ReportMetric(miss, "miss%")
			})
		}
	}
}

// BenchmarkFigure3 reproduces the read-rate figure: the same runs with
// read skipping enabled; the read% metric is the figure's y axis.
func BenchmarkFigure3(b *testing.B) {
	for _, strategy := range experiments.StrategyNames {
		b.Run(strategy, func(b *testing.B) {
			var miss, read float64
			for i := 0; i < b.N; i++ {
				res, err := experiments.RunFigure2(benchCfg, []float64{0.25}, true)
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res {
					if r.Strategy == strategy {
						miss = 100 * r.Stats.MissRate()
						read = 100 * r.Stats.ReadRate()
					}
				}
			}
			b.ReportMetric(miss, "miss%")
			b.ReportMetric(read, "read%")
		})
	}
}

// BenchmarkFigure4 reproduces the f-halving sweep of the Random
// strategy down to five RAM slots.
func BenchmarkFigure4(b *testing.B) {
	var results []experiments.MissRateResult
	for i := 0; i < b.N; i++ {
		var err error
		results, err = experiments.RunFigure4(benchCfg, 0.75, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range results {
		b.ReportMetric(100*r.Stats.MissRate(), "miss%@m="+itoa(r.Slots))
	}
}

// BenchmarkFigure5 reproduces the paging-versus-out-of-core elapsed
// time comparison across growing ancestral-vector footprints. The
// io metrics are the modelled device times in milliseconds.
func BenchmarkFigure5(b *testing.B) {
	cfg := experiments.Figure5Config{
		Taxa:     48,
		Widths:   []int{256, 1024, 4096},
		RAMBytes: 8 << 20,
		Seed:     42,
	}
	var rows []experiments.Figure5Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFigure5(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		suffix := "@" + itoa(int(r.OverSubscription*100)) + "pct"
		b.ReportMetric(float64(r.StandardIO.Milliseconds()), "paging-io-ms"+suffix)
		b.ReportMetric(float64(r.OOCLRUIO.Milliseconds()), "ooc-io-ms"+suffix)
		b.ReportMetric(float64(r.MajorFaults), "faults"+suffix)
	}
}

// BenchmarkStoreLayout ablates the paper's single-file versus
// several-files observation (§3.2: "performance differences ...
// minimal"): the identical miss/swap workload against one backing file
// and against four.
func BenchmarkStoreLayout(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 48, Sites: 200, GammaAlpha: 0.8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	run := func(b *testing.B, mk func(dir string) (ooc.Store, error)) {
		dir := b.TempDir()
		store, err := mk(dir)
		if err != nil {
			b.Fatal(err)
		}
		defer store.Close()
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen,
			Slots:    ooc.SlotsForFraction(0.25, n),
			Strategy: ooc.NewLRU(n), ReadSkipping: true, Store: store,
		})
		if err != nil {
			b.Fatal(err)
		}
		t := d.Tree.Clone()
		e, err := plf.New(t, d.Patterns, d.Model, mgr)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.FullTraversal(t.Edges[0]); err != nil {
				b.Fatal(err)
			}
			if _, err := e.LogLikelihoodAt(t.Edges[0]); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("SingleFile", func(b *testing.B) {
		run(b, func(dir string) (ooc.Store, error) {
			return ooc.NewFileStore(filepath.Join(dir, "v.bin"), n, vecLen)
		})
	})
	b.Run("FourFiles", func(b *testing.B) {
		run(b, func(dir string) (ooc.Store, error) {
			return ooc.NewMultiFileStore(filepath.Join(dir, "v"), 4, n, vecLen)
		})
	})
}

// BenchmarkWriteBackPolicy ablates the always-write swap of the paper
// against dirty-only write-back (an extension), reporting the write
// counts on a read-heavy workload.
func BenchmarkWriteBackPolicy(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 48, Sites: 150, GammaAlpha: 0.8, Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	for _, policy := range []struct {
		name string
		wb   ooc.WriteBackPolicy
	}{{"Always", ooc.WriteBackAlways}, {"DirtyOnly", ooc.WriteBackDirty}} {
		b.Run(policy.name, func(b *testing.B) {
			var writes int64
			for i := 0; i < b.N; i++ {
				mgr, err := ooc.NewManager(ooc.Config{
					NumVectors: n, VectorLen: vecLen,
					Slots:    ooc.SlotsForFraction(0.25, n),
					Strategy: ooc.NewLRU(n), ReadSkipping: true,
					WriteBack: policy.wb,
					Store:     ooc.NewMemStore(n, vecLen),
				})
				if err != nil {
					b.Fatal(err)
				}
				t := d.Tree.Clone()
				e, err := plf.New(t, d.Patterns, d.Model, mgr)
				if err != nil {
					b.Fatal(err)
				}
				// Traversal then an evaluation walk: reads dominate.
				if _, err := e.LogLikelihood(); err != nil {
					b.Fatal(err)
				}
				for _, edge := range t.Edges {
					if _, err := e.LogLikelihoodAt(edge); err != nil {
						b.Fatal(err)
					}
				}
				writes = mgr.Stats().Writes
			}
			b.ReportMetric(float64(writes), "writes")
		})
	}
}

// BenchmarkReadSkipping ablates §3.4 on the full-traversal workload
// (where it is strongest: every vector's first access is a write).
func BenchmarkReadSkipping(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 64, Sites: 150, GammaAlpha: 0.8, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	for _, skip := range []bool{false, true} {
		name := "Off"
		if skip {
			name = "On"
		}
		b.Run(name, func(b *testing.B) {
			var reads int64
			for i := 0; i < b.N; i++ {
				mgr, err := ooc.NewManager(ooc.Config{
					NumVectors: n, VectorLen: vecLen,
					Slots:    ooc.SlotsForFraction(0.25, n),
					Strategy: ooc.NewLRU(n), ReadSkipping: skip,
					Store: ooc.NewMemStore(n, vecLen),
				})
				if err != nil {
					b.Fatal(err)
				}
				t := d.Tree.Clone()
				e, err := plf.New(t, d.Patterns, d.Model, mgr)
				if err != nil {
					b.Fatal(err)
				}
				for k := 0; k < 3; k++ {
					if err := e.FullTraversal(t.Edges[0]); err != nil {
						b.Fatal(err)
					}
				}
				reads = mgr.Stats().Reads
			}
			b.ReportMetric(float64(reads), "reads")
		})
	}
}

// BenchmarkSearchStandardVsOOC measures the end-to-end slowdown the
// out-of-core indirection itself costs when I/O is free (MemStore):
// the overhead of the getxvector() abstraction.
func BenchmarkSearchStandardVsOOC(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 32, Sites: 120, GammaAlpha: 0.8, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	mkStart := func() *tree.Tree {
		names := make([]string, d.Tree.NumTips)
		for i := range names {
			names[i] = d.Tree.Nodes[i].Name
		}
		t, err := tree.RandomTopology(names, rand.New(rand.NewSource(9)), 0.05, 0.15)
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	b.Run("Standard", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := mkStart()
			e, err := plf.New(t, d.Patterns, d.Model,
				plf.NewInMemoryProvider(t.NumInner(), vecLen))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := search.New(e, search.Options{MaxRounds: 1}).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("OOC-f50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := mkStart()
			mgr, err := ooc.NewManager(ooc.Config{
				NumVectors: t.NumInner(), VectorLen: vecLen,
				Slots:    ooc.SlotsForFraction(0.5, t.NumInner()),
				Strategy: ooc.NewLRU(t.NumInner()), ReadSkipping: true,
				Store: ooc.NewMemStore(t.NumInner(), vecLen),
			})
			if err != nil {
				b.Fatal(err)
			}
			e, err := plf.New(t, d.Patterns, d.Model, mgr)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := search.New(e, search.Options{MaxRounds: 1}).Run(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// BenchmarkPrefetch ablates the §5 prefetching extension on the
// full-traversal workload: the metric is the number of blocking demand
// misses remaining (prefetch hits are misses a prefetch thread would
// overlap with compute).
func BenchmarkPrefetch(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 64, Sites: 150, GammaAlpha: 0.8, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
	n := d.Tree.NumInner()
	for _, prefetch := range []bool{false, true} {
		name := "Off"
		if prefetch {
			name = "On"
		}
		b.Run(name, func(b *testing.B) {
			var misses, hits int64
			for i := 0; i < b.N; i++ {
				mgr, err := ooc.NewManager(ooc.Config{
					NumVectors: n, VectorLen: vecLen,
					Slots:    ooc.SlotsForFraction(0.25, n),
					Strategy: ooc.NewLRU(n),
					Store:    ooc.NewMemStore(n, vecLen),
				})
				if err != nil {
					b.Fatal(err)
				}
				t := d.Tree.Clone()
				e, err := plf.New(t, d.Patterns, d.Model, mgr)
				if err != nil {
					b.Fatal(err)
				}
				e.EnablePrefetch(prefetch)
				for k := 0; k < 3; k++ {
					if err := e.FullTraversal(t.Edges[0]); err != nil {
						b.Fatal(err)
					}
				}
				misses = mgr.Stats().Misses
				hits = mgr.PrefetchStats().Hits
			}
			b.ReportMetric(float64(misses), "demand-misses")
			b.ReportMetric(float64(hits), "prefetch-hits")
		})
	}
}
