// Command benchsmoke produces a machine-readable benchmark baseline
// for CI. It runs two experiments and writes one JSON document:
//
//   - the kernel ablation (generic versus specialised PLF kernels on a
//     simulated DNA GTR+Γ4 dataset, identical likelihoods enforced),
//     with per-phase timings, speedups and P-cache hit rates;
//   - the observability overhead probe (the same out-of-core workload
//     with the metrics registry and tracer off versus on, bit-identical
//     likelihoods enforced), recording the relative wall-clock cost of
//     full instrumentation;
//   - the resize overhead probe (the same traversal workload with a
//     fixed slot pool versus one shrunk and regrown between
//     traversals, bit-identical likelihoods enforced), recording what
//     the runtime resource governor costs when it oscillates;
//   - the protein kernel ablation (generic versus the aa20 set on a
//     simulated k=20 dataset, identical likelihoods enforced);
//   - the precision ablation (f64 versus end-to-end f32: accuracy gap,
//     manifest-verified store halving, f32 sync/async bit-identity);
//   - the tier ablation (local FileStore baseline versus cold / warm /
//     recompute-policy arms over a latency-injected remote object store
//     behind a local write-back cache, bit-identical likelihoods
//     enforced), recording per-arm wall-clock, tier counters and the
//     fraction of read demand served without a remote trip.
//
// CI uploads the file as an artifact so regressions between commits —
// kernel slowdowns, creeping instrumentation cost or resize-machinery
// cost — can be diffed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"oocphylo/internal/experiments"
)

// phaseRow is one workload phase of the kernel baseline.
type phaseRow struct {
	Phase       string  `json:"phase"`
	GenericNs   int64   `json:"generic_ns"`
	AutoNs      int64   `json:"auto_ns"`
	Speedup     float64 `json:"speedup"`
	LnL         float64 `json:"lnl"`
	NsPerOpUnit string  `json:"unit"`
}

// obsBlock is the observability-overhead section of the baseline.
type obsBlock struct {
	Taxa            int     `json:"taxa"`
	Sites           int     `json:"sites"`
	Traversals      int     `json:"traversals"`
	Reps            int     `json:"reps"`
	OffSeconds      float64 `json:"obs_off_seconds"`
	OnSeconds       float64 `json:"obs_on_seconds"`
	OverheadPct     float64 `json:"obs_overhead_pct"`
	SpansSeconds    float64 `json:"obs_spans_seconds"`
	SpanOverheadPct float64 `json:"obs_span_overhead_pct"`
	SpanCount       int64   `json:"obs_span_count"`
}

// resizeBlock is the resize-overhead section of the baseline.
type resizeBlock struct {
	Taxa           int     `json:"taxa"`
	Sites          int     `json:"sites"`
	Traversals     int     `json:"traversals"`
	Slots          int     `json:"slots"`
	LowSlots       int     `json:"low_slots"`
	Resizes        int     `json:"resizes"`
	FixedSeconds   float64 `json:"fixed_seconds"`
	ResizeSeconds  float64 `json:"resize_seconds"`
	OverheadPct    float64 `json:"resize_overhead_pct"`
	ExtraReads     int64   `json:"extra_reads"`
	LnLBitsMatched bool    `json:"lnl_bits_matched"`
}

// proteinBlock is the protein-kernel section of the baseline.
type proteinBlock struct {
	Taxa          int        `json:"taxa"`
	Sites         int        `json:"sites"`
	Kernel        string     `json:"kernel"`
	Phases        []phaseRow `json:"phases"`
	PCacheHitRate float64    `json:"pcache_hit_rate"`
}

// tierRow is one (RTT, arm) measurement of the tier ablation.
type tierRow struct {
	Arm           string  `json:"arm"`
	RTTMs         float64 `json:"rtt_ms"`
	Seconds       float64 `json:"seconds"`
	CacheHits     int64   `json:"cache_hits"`
	CacheMisses   int64   `json:"cache_misses"`
	RemoteVecRead int64   `json:"remote_vectors_read"`
	Coalesced     int64   `json:"coalesced"`
	SingleFlight  int64   `json:"single_flight"`
	Recomputes    int64   `json:"policy_recomputes"`
	LocalFraction float64 `json:"local_fraction"`
	WarmStart     bool    `json:"warm_start"`
}

// tierBlock is the tiered-storage section of the baseline.
type tierBlock struct {
	Taxa           int       `json:"taxa"`
	Sites          int       `json:"sites"`
	Lanes          int       `json:"lanes"`
	Rows           []tierRow `json:"rows"`
	LnLBitsMatched bool      `json:"lnl_bits_matched"`
}

// precisionBlock is the f32-versus-f64 section of the baseline.
type precisionBlock struct {
	Taxa              int     `json:"taxa"`
	Sites             int     `json:"sites"`
	Kernel            string  `json:"kernel"`
	LnL64             float64 `json:"lnl_f64"`
	LnL32             float64 `json:"lnl_f32"`
	RelErr            float64 `json:"rel_err"`
	Budget            float64 `json:"budget"`
	VecBytes64        int     `json:"vec_bytes_f64"`
	VecBytes32        int     `json:"vec_bytes_f32"`
	SyncAsyncBitMatch bool    `json:"f32_sync_async_bits_matched"`
}

// baseline is the BENCH_8.json schema.
type baseline struct {
	Schema        string         `json:"schema"`
	GoVersion     string         `json:"go_version"`
	GOARCH        string         `json:"goarch"`
	Taxa          int            `json:"taxa"`
	Sites         int            `json:"sites"`
	Traversals    int            `json:"traversals"`
	Kernel        string         `json:"kernel"`
	Phases        []phaseRow     `json:"phases"`
	PCacheHits    int64          `json:"pcache_hits"`
	PCacheMisses  int64          `json:"pcache_misses"`
	PCacheHitRate float64        `json:"pcache_hit_rate"`
	Obs           obsBlock       `json:"obs"`
	Resize        resizeBlock    `json:"resize"`
	Protein       proteinBlock   `json:"protein"`
	Precision     precisionBlock `json:"precision"`
	Tiers         tierBlock      `json:"tiers"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsmoke:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchsmoke", flag.ContinueOnError)
	out := fs.String("out", "BENCH_8.json", "output JSON path")
	taxa := fs.Int("taxa", 48, "simulated taxa")
	sites := fs.Int("sites", 1500, "simulated sites")
	traversals := fs.Int("traversals", 3, "full traversals in the newview phase")
	seed := fs.Int64("seed", 42, "dataset seed")
	obsReps := fs.Int("obs-reps", 3, "repetitions per side of the obs overhead probe (best kept)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.KernelAblationConfig{
		Taxa: *taxa, Sites: *sites, Traversals: *traversals, Seed: *seed,
	}
	res, err := experiments.RunKernelAblation(cfg)
	if err != nil {
		return err
	}
	b := baseline{
		Schema:        "oocphylo/benchsmoke/v5",
		GoVersion:     runtime.Version(),
		GOARCH:        runtime.GOARCH,
		Taxa:          *taxa,
		Sites:         *sites,
		Traversals:    *traversals,
		Kernel:        res.Kernel,
		PCacheHits:    res.PCacheHits,
		PCacheMisses:  res.PCacheMisses,
		PCacheHitRate: res.HitRate(),
	}
	for _, r := range res.Rows {
		b.Phases = append(b.Phases, phaseRow{
			Phase:       r.Phase,
			GenericNs:   r.GenericWall.Nanoseconds(),
			AutoNs:      r.AutoWall.Nanoseconds(),
			Speedup:     r.Speedup(),
			LnL:         r.LnL,
			NsPerOpUnit: "ns/phase",
		})
	}

	ores, err := experiments.RunObsOverhead(*taxa, *sites, *traversals, *obsReps, *seed)
	if err != nil {
		return err
	}
	b.Obs = obsBlock{
		Taxa: *taxa, Sites: *sites, Traversals: *traversals, Reps: *obsReps,
		OffSeconds:      ores.OffSeconds,
		OnSeconds:       ores.OnSeconds,
		OverheadPct:     ores.OverheadPct,
		SpansSeconds:    ores.SpansSeconds,
		SpanOverheadPct: ores.SpanOverheadPct,
		SpanCount:       ores.SpanCount,
	}

	rres, err := experiments.RunResizeOverhead(experiments.ResizeAblationConfig{
		Taxa: *taxa, Sites: *sites, Seed: *seed,
	}, *traversals*2)
	if err != nil {
		return err
	}
	b.Resize = resizeBlock{
		Taxa: *taxa, Sites: *sites, Traversals: *traversals * 2,
		Slots: rres.Slots, LowSlots: rres.Low, Resizes: rres.Resizes,
		FixedSeconds:   rres.FixedTime.Seconds(),
		ResizeSeconds:  rres.ResizeTime.Seconds(),
		OverheadPct:    100 * rres.Overhead(),
		ExtraReads:     rres.ResizeStats.Reads - rres.FixedStats.Reads,
		LnLBitsMatched: true, // RunResizeOverhead errors on any mismatch
	}

	// Protein kernel ablation: smaller than the DNA run (25x arithmetic
	// per pattern) but the same three phases and exactness bar.
	pcfg := experiments.KernelAblationConfig{
		Taxa: 32, Sites: 300, Traversals: *traversals, Seed: *seed, AA: true,
	}
	pres, err := experiments.RunKernelAblation(pcfg)
	if err != nil {
		return err
	}
	b.Protein = proteinBlock{
		Taxa: pcfg.Taxa, Sites: pcfg.Sites,
		Kernel:        pres.Kernel,
		PCacheHitRate: pres.HitRate(),
	}
	for _, r := range pres.Rows {
		b.Protein.Phases = append(b.Protein.Phases, phaseRow{
			Phase:       r.Phase,
			GenericNs:   r.GenericWall.Nanoseconds(),
			AutoNs:      r.AutoWall.Nanoseconds(),
			Speedup:     r.Speedup(),
			LnL:         r.LnL,
			NsPerOpUnit: "ns/phase",
		})
	}

	prcfg := experiments.PrecisionAblationConfig{Taxa: 64, Sites: 800, Seed: *seed}
	prres, err := experiments.RunPrecisionAblation(prcfg)
	if err != nil {
		return err
	}
	b.Precision = precisionBlock{
		Taxa: 64, Sites: 800,
		Kernel:            prres.Kernel,
		LnL64:             prres.LnL64,
		LnL32:             prres.LnL32,
		RelErr:            prres.RelErr,
		Budget:            experiments.PrecisionAccuracyBudget,
		VecBytes64:        prres.VecBytes64,
		VecBytes32:        prres.VecBytes32,
		SyncAsyncBitMatch: true, // RunPrecisionAblation errors on any mismatch
	}

	// Tier ablation at smoke scale: one modest RTT, counters still
	// meaningful (the cold arm misses, the warm arm serves locally).
	tcfg := experiments.TierAblationConfig{
		Workload: experiments.SearchWorkloadConfig{
			Taxa: 24, Sites: 80, Seed: *seed, SPRRadius: 3, Rounds: 1,
		},
		Lanes: 2,
		RTTs:  []time.Duration{2 * time.Millisecond},
	}
	trows, err := experiments.RunTierAblation(tcfg)
	if err != nil {
		return err
	}
	b.Tiers = tierBlock{
		Taxa: tcfg.Workload.Taxa, Sites: tcfg.Workload.Sites, Lanes: tcfg.Lanes,
		LnLBitsMatched: true, // RunTierAblation errors on any mismatch
	}
	for _, r := range trows {
		b.Tiers.Rows = append(b.Tiers.Rows, tierRow{
			Arm:           r.Arm,
			RTTMs:         float64(r.RTT) / 1e6,
			Seconds:       r.Elapsed.Seconds(),
			CacheHits:     r.Tier.CacheHits,
			CacheMisses:   r.Tier.CacheMisses,
			RemoteVecRead: r.Tier.RemoteVectorsRead,
			Coalesced:     r.Tier.Coalesced,
			SingleFlight:  r.Tier.SingleFlight,
			Recomputes:    r.PolicyRecomputes,
			LocalFraction: r.LocalFraction,
			WarmStart:     r.Tier.WarmStart,
		})
	}

	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	experiments.WriteKernelAblationTable(os.Stdout, res, cfg)
	fmt.Printf("obs overhead: off %.3fs, on %.3fs (%+.2f%%), spans %.3fs (%+.2f%%, %d spans), lnL bit-identical\n",
		ores.OffSeconds, ores.OnSeconds, ores.OverheadPct,
		ores.SpansSeconds, ores.SpanOverheadPct, ores.SpanCount)
	fmt.Printf("resize overhead: %d resizes (%d<->%d slots), fixed %.3fs vs oscillating %.3fs (%+.2f%%), lnL bit-identical\n",
		rres.Resizes, rres.Low, rres.Slots, rres.FixedTime.Seconds(), rres.ResizeTime.Seconds(), 100*rres.Overhead())
	experiments.WriteKernelAblationTable(os.Stdout, pres, pcfg)
	experiments.WritePrecisionAblationTable(os.Stdout, prres, prcfg)
	experiments.WriteTierTable(os.Stdout, trows, tcfg)
	fmt.Printf("baseline written to %s\n", *out)
	return nil
}
