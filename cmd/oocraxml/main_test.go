package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// writeTestData generates a small dataset via the sim pipeline once per
// test, through the public simseq-equivalent path (we write the files
// directly to keep the test self-contained).
func writeTestData(t *testing.T) (phyPath, nwkPath string) {
	t.Helper()
	dir := t.TempDir()
	phyPath = filepath.Join(dir, "data.phy")
	nwkPath = filepath.Join(dir, "tree.nwk")
	phy := `6 40
ta ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT
tb ACGTACGTACGAACGTACGTACGTACGTACGTACGTACGA
tc ACGTACGAACGAACGTACGTACGTTCGTACGTACGTACGA
td TCGTACGAACGAACGTACGTACGTTCGTACGAACGTACGA
te TCGTACGAACGAACGTACGTACGCTCGTACGAACGTACGA
tf TCGAACGAACGAACGTACGTACGCTCGTACGAACGTTCGA
`
	if err := os.WriteFile(phyPath, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	nwk := "((ta:0.1,tb:0.1):0.05,(tc:0.1,td:0.1):0.05,(te:0.1,tf:0.1):0.05);"
	if err := os.WriteFile(nwkPath, []byte(nwk), 0o644); err != nil {
		t.Fatal(err)
	}
	return phyPath, nwkPath
}

// capture runs the CLI with output captured to a temp file.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func TestSearchModeInMemory(t *testing.T) {
	phy, _ := writeTestData(t)
	out, err := capture(t, "-s", phy, "-m", "HKY", "-a", "0.8", "-rounds", "2", "-stats")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Alignment: 6 taxa, 40 sites", "Log likelihood:", "Engine:", "("} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTraversalModeOutOfCore(t *testing.T) {
	phy, nwk := writeTestData(t)
	out, err := capture(t, "-s", phy, "-t", nwk, "-f", "z", "-k", "3",
		"-L", "5000", "-strategy", "random", "-stats", "-prefetch")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Out-of-core:", "Completed 3 full tree traversals", "misses"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestEvaluateModeMatchesAcrossProviders(t *testing.T) {
	phy, nwk := writeTestData(t)
	inMem, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-a", "0")
	if err != nil {
		t.Fatal(err)
	}
	ooc, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-a", "0",
		"-L", "5000", "-strategy", "topological")
	if err != nil {
		t.Fatal(err)
	}
	lnl := func(s string) string {
		for _, line := range strings.Split(s, "\n") {
			if strings.HasPrefix(line, "Log likelihood:") {
				return line
			}
		}
		return ""
	}
	if lnl(inMem) == "" || lnl(inMem) != lnl(ooc) {
		t.Errorf("likelihoods differ across providers:\n%q\n%q", lnl(inMem), lnl(ooc))
	}
}

func TestStartTreeKinds(t *testing.T) {
	phy, _ := writeTestData(t)
	for _, kind := range []string{"parsimony", "nj", "random"} {
		out, err := capture(t, "-s", phy, "-m", "JC", "-rounds", "1", "-start", kind)
		if err != nil {
			t.Fatalf("start=%s: %v", kind, err)
		}
		if !strings.Contains(out, "Log likelihood:") {
			t.Errorf("start=%s: no likelihood in output", kind)
		}
	}
	if _, err := capture(t, "-s", phy, "-start", "upgma"); err == nil {
		t.Error("unknown start tree kind must fail")
	}
}

func TestBootstrapAnnotation(t *testing.T) {
	phy, _ := writeTestData(t)
	out, err := capture(t, "-s", phy, "-m", "JC", "-a", "0", "-rounds", "1", "-bootstrap", "3")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "bootstrap replicates") || !strings.Contains(out, "Mean bipartition support") {
		t.Errorf("bootstrap output incomplete:\n%s", out)
	}
}

func TestWriteTreeToFile(t *testing.T) {
	phy, nwk := writeTestData(t)
	treeOut := filepath.Join(t.TempDir(), "result.nwk")
	if _, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-w", treeOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(treeOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ta") || !strings.HasSuffix(strings.TrimSpace(string(data)), ";") {
		t.Errorf("result tree malformed: %s", data)
	}
}

func TestCLIErrors(t *testing.T) {
	phy, nwk := writeTestData(t)
	cases := [][]string{
		{},                            // no alignment
		{"-s", "/does/not/exist.phy"}, // missing file
		{"-s", phy, "-m", "BOGUS"},
		{"-s", phy, "-f", "q"},
		{"-s", phy, "-t", "/does/not/exist.nwk"},
		{"-s", phy, "-L", "100"}, // limit below 3 slots
		{"-s", phy, "-L", "20000", "-strategy", "bogus"},
		{"-s", phy, "-t", nwk, "-aa"}, // AA alphabet on DNA data fails parse
	}
	for _, args := range cases {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestFASTAInput(t *testing.T) {
	dir := t.TempDir()
	fa := filepath.Join(dir, "d.fa")
	content := ">x\nACGTACGTAC\n>y\nACGAACGTAC\n>z\nACGAACGAAC\n"
	if err := os.WriteFile(fa, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "-s", fa, "-fasta", "-m", "JC", "-a", "0", "-rounds", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "3 taxa, 10 sites") {
		t.Errorf("fasta input not parsed:\n%s", out)
	}
}

func TestCheckpointAndResume(t *testing.T) {
	phy, _ := writeTestData(t)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	// A fresh search from a random start should run at least one round
	// and write the checkpoint.
	out, err := capture(t, "-s", phy, "-m", "HKY", "-a", "0.8", "-rounds", "3",
		"-start", "random", "-seed", "1", "-checkpoint", ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(ckpt); err != nil {
		t.Skipf("no round completed with an improvement; checkpoint not written (%s)", out)
	}
	resumed, err := capture(t, "-s", phy, "-resume", ckpt, "-rounds", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resumed, "Resumed from") {
		t.Errorf("resume banner missing:\n%s", resumed)
	}
	if !strings.Contains(resumed, "Log likelihood:") {
		t.Error("resumed run did not complete")
	}
}

func TestResumeErrors(t *testing.T) {
	phy, _ := writeTestData(t)
	if _, err := capture(t, "-s", phy, "-resume", "/no/such.ckpt"); err == nil {
		t.Error("missing checkpoint must fail")
	}
}

func TestNNIMode(t *testing.T) {
	phy, _ := writeTestData(t)
	out, err := capture(t, "-s", phy, "-m", "JC", "-a", "0", "-f", "n", "-rounds", "2", "-start", "nj")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NNI search:") || !strings.Contains(out, "Log likelihood:") {
		t.Errorf("NNI mode output incomplete:\n%s", out)
	}
}

func TestPAMLModelEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// Protein alignment.
	fa := filepath.Join(dir, "p.fa")
	prot := ">p1\nARNDCQEGHILKMFPSTWYV\n>p2\nARNDCQEGHILKMFPSTWYW\n>p3\nARNECQEGHILKMFPSTWYW\n>p4\nGRNECQEGHILKMFPSTWYW\n"
	if err := os.WriteFile(fa, []byte(prot), 0o644); err != nil {
		t.Fatal(err)
	}
	// Synthetic PAML matrix: all rates 1 with mildly non-uniform freqs.
	var sb strings.Builder
	for i := 1; i < 20; i++ {
		for j := 0; j < i; j++ {
			sb.WriteString("1.0 ")
		}
		sb.WriteByte('\n')
	}
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sb, "%g ", 1.0/20)
	}
	sb.WriteByte('\n')
	dat := filepath.Join(dir, "synth.dat")
	if err := os.WriteFile(dat, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "-s", fa, "-fasta", "-aa", "-m", "PAML", "-aamodel", dat,
		"-a", "0", "-rounds", "1")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Model: SYNTH") || !strings.Contains(out, "Log likelihood:") {
		t.Errorf("PAML run incomplete:\n%s", out)
	}
	// Misconfigurations fail.
	if _, err := capture(t, "-s", fa, "-fasta", "-aa", "-m", "PAML"); err == nil {
		t.Error("PAML without -aamodel must fail")
	}
	if _, err := capture(t, "-s", fa, "-fasta", "-aa", "-m", "PAML", "-aamodel", "/no/file"); err == nil {
		t.Error("missing dat file must fail")
	}
}

func TestPInvFlag(t *testing.T) {
	phy, nwk := writeTestData(t)
	out, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-pinv", "0.2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Final pInv:") {
		t.Errorf("pInv output missing:\n%s", out)
	}
	if _, err := capture(t, "-s", phy, "-pinv", "1.5"); err == nil {
		t.Error("invalid pInv must fail")
	}
}

// lnlLine extracts the "Log likelihood:" line from CLI output.
func lnlLine(t *testing.T, out string) string {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "Log likelihood:") {
			return line
		}
	}
	t.Fatalf("no log-likelihood line in output:\n%s", out)
	return ""
}

func TestReportFlagConsolidated(t *testing.T) {
	phy, nwk := writeTestData(t)
	out, err := capture(t, "-s", phy, "-t", nwk, "-f", "z", "-k", "2",
		"-L", "5000", "-strategy", "lru", "-async", "-report")
	if err != nil {
		t.Fatal(err)
	}
	// The consolidated report keeps the legacy headline lines and adds
	// the per-layer registry sections, pipeline included for -async.
	for _, want := range []string{
		"Engine:", "Kernels:", "Out-of-core:",
		"[likelihood engine]", "[out-of-core manager]", "[async I/O pipeline]",
		"fault_in_seconds", "fetches_queued",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestHTTPFlag(t *testing.T) {
	phy, nwk := writeTestData(t)
	out, err := capture(t, "-s", phy, "-t", nwk, "-f", "z", "-k", "2",
		"-L", "5000", "-http", "127.0.0.1:0", "-report")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Debug endpoint: http://127.0.0.1:") {
		t.Errorf("endpoint banner missing:\n%s", out)
	}
	// A bound port cannot be reused: occupying a port first must fail.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := capture(t, "-s", phy, "-http", ln.Addr().String()); err == nil {
		t.Error("occupied -http address must fail")
	}
}

// TestHTTPEndpointLive curls /debug/vars while a run is in flight: the
// server comes up before the alignment loads, so polling from a second
// goroutine observes it as long as the workload runs for a few
// milliseconds. If the run wins the race anyway the test skips — the
// mux round-trips are covered deterministically in internal/obs.
func TestHTTPEndpointLive(t *testing.T) {
	phy, nwk := writeTestData(t)
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-s", phy, "-t", nwk, "-f", "z", "-k", "2000",
			"-L", "5000", "-strategy", "lru", "-http", "127.0.0.1:0"}, f)
	}()
	var body []byte
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		data, _ := os.ReadFile(f.Name())
		if i := strings.Index(string(data), "Debug endpoint: http://"); i >= 0 {
			addr := strings.Fields(string(data)[i+len("Debug endpoint: "):])[0]
			resp, err := http.Get(addr + "debug/vars")
			if err == nil {
				body, err = io.ReadAll(resp.Body)
				resp.Body.Close()
				if err == nil && resp.StatusCode == http.StatusOK {
					break
				}
			}
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatal(err)
			}
			t.Skip("run finished before the endpoint could be polled")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if body == nil {
		t.Fatal("no /debug/vars response within deadline")
	}
	var doc map[string]any
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v\n%s", err, body)
	}
	if _, ok := doc["counters"]; !ok {
		t.Errorf("/debug/vars missing counters: %s", body)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestKernelFlag(t *testing.T) {
	phy, nwk := writeTestData(t)
	base := []string{"-s", phy, "-t", nwk, "-f", "z", "-k", "2", "-m", "HKY", "-a", "0.7", "-stats"}
	outAuto, err := capture(t, base...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outAuto, "Kernels: dna4 (auto mode)") || !strings.Contains(outAuto, "P cache") {
		t.Errorf("auto-mode stats missing kernel/cache line:\n%s", outAuto)
	}
	outGen, err := capture(t, append([]string{"-kernel", "generic"}, base...)...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(outGen, "Kernels: generic (generic mode)") {
		t.Errorf("generic-mode stats missing kernel line:\n%s", outGen)
	}
	if strings.Contains(outGen, "P cache") {
		t.Errorf("generic mode must not report cache traffic:\n%s", outGen)
	}
	if lnlLine(t, outAuto) != lnlLine(t, outGen) {
		t.Errorf("kernel modes disagree:\n%s\n%s", lnlLine(t, outAuto), lnlLine(t, outGen))
	}
	if _, err := capture(t, append([]string{"-kernel", "sse3"}, base...)...); err == nil {
		t.Error("unknown kernel mode must fail")
	}
}
