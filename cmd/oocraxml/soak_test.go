package main

import (
	"fmt"
	"math"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"oocphylo/internal/bio"
	"oocphylo/internal/checkpoint"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

// The kill/resume soak: the on-disk half of the crash-consistency
// guarantee. It runs a real oocraxml binary as a subprocess, kills it at
// deterministic vector-I/O counts via -crashpoint, resumes from the
// last checkpoint each time, and requires the surviving chain to land
// on exactly the likelihood and tree of an uninterrupted baseline.

var (
	soakBinOnce sync.Once
	soakBinPath string
	soakBinErr  error
)

// soakBinary builds the oocraxml binary once per test process.
func soakBinary(t *testing.T) string {
	t.Helper()
	if _, err := exec.LookPath("go"); err != nil {
		t.Skip("go toolchain not on PATH; skipping subprocess soak")
	}
	soakBinOnce.Do(func() {
		dir, err := os.MkdirTemp("", "oocraxml-soak")
		if err != nil {
			soakBinErr = err
			return
		}
		soakBinPath = filepath.Join(dir, "oocraxml")
		cmd := exec.Command("go", "build", "-o", soakBinPath, ".")
		if out, err := cmd.CombinedOutput(); err != nil {
			soakBinErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if soakBinErr != nil {
		t.Fatal(soakBinErr)
	}
	return soakBinPath
}

// soakDataset writes a 128-taxon simulated alignment and its true tree
// to dir and returns the file paths plus a -L value sized so roughly a
// quarter of the ancestral vectors fit in RAM.
func soakDataset(t *testing.T, dir string, taxa, sites int) (phy, nwk string, memLimit int64) {
	t.Helper()
	d, err := sim.NewDataset(sim.Config{Taxa: taxa, Sites: sites, GammaAlpha: 0.8, Seed: 20260805})
	if err != nil {
		t.Fatal(err)
	}
	phy = filepath.Join(dir, "data.phy")
	f, err := os.Create(phy)
	if err != nil {
		t.Fatal(err)
	}
	if err := bio.WritePhylip(f, d.Alignment); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	nwk = filepath.Join(dir, "start.nwk")
	if err := os.WriteFile(nwk, []byte(tree.WriteNewick(d.Tree)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The CLI will run HKY+Γ4 over the same patterns: vector length
	// depends only on states, categories and pattern count, so the
	// simulated model computes the same slot size the run will use.
	vecBytes := int64(plf.VectorLength(d.Model, d.Patterns.NumPatterns())) * 8
	n := int64(d.Tree.NumInner())
	memLimit = n * vecBytes / 4
	return phy, nwk, memLimit
}

// soakArgs are the flags every run in a soak shares; crash/resume
// chains must be flag-identical to their baseline or bit-identity is
// meaningless.
func soakArgs(phy, nwk string, memLimit int64, backing, ckpt, outTree string) []string {
	return []string{
		"-s", phy, "-t", nwk, "-m", "HKY", "-a", "0.8",
		"-rounds", "3", "-radius", "2",
		"-L", fmt.Sprint(memLimit), "-strategy", "lru",
		"-async", "-verify-store",
		"-backing", backing, "-checkpoint", ckpt, "-w", outTree,
	}
}

// exitCode runs the binary and returns its exit code and output.
func soakRun(t *testing.T, bin string, args []string) (int, string) {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		return 0, string(out)
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode(), string(out)
	}
	t.Fatalf("running %v: %v\n%s", args, err, out)
	return -1, ""
}

// treeFingerprint parses a Newick file and serialises the tree in
// canonical form (anchored at the smallest tip name, subtrees in
// canonical order, branch lengths as exact bit patterns), so two
// value-identical trees compare equal regardless of the adjacency
// layout their runs happened to end with.
func treeFingerprint(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.ParseNewick(strings.TrimSpace(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	tree.Canonicalize(tr)
	anchor := tr.Nodes[0]
	for i := 1; i < tr.NumTips; i++ {
		if tr.Nodes[i].Name < anchor.Name {
			anchor = tr.Nodes[i]
		}
	}
	var b strings.Builder
	var walk func(n, from *tree.Node, via *tree.Edge)
	walk = func(n, from *tree.Node, via *tree.Edge) {
		if n.Index < tr.NumTips {
			fmt.Fprintf(&b, "%s:%x", n.Name, math.Float64bits(via.Length))
			return
		}
		b.WriteByte('(')
		first := true
		for _, e := range n.Adj {
			o := e.Other(n)
			if o == from {
				continue
			}
			if !first {
				b.WriteByte(',')
			}
			first = false
			walk(o, n, e)
		}
		fmt.Fprintf(&b, "):%x", math.Float64bits(via.Length))
	}
	e0 := anchor.Adj[0]
	fmt.Fprintf(&b, "%s=", anchor.Name)
	walk(e0.Other(anchor), anchor, e0)
	return b.String()
}

func TestKillResumeSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess soak skipped in -short mode")
	}
	bin := soakBinary(t)
	dir := t.TempDir()
	phy, nwk, memLimit := soakDataset(t, dir, 128, 240)

	// Uninterrupted baseline.
	baseCkpt := filepath.Join(dir, "base.ckpt")
	baseTree := filepath.Join(dir, "base.nwk")
	code, out := soakRun(t, bin, soakArgs(phy, nwk, memLimit,
		filepath.Join(dir, "base.bin"), baseCkpt, baseTree))
	if code != 0 {
		t.Fatalf("baseline exited %d:\n%s", code, out)
	}

	// Crash/resume chain: the same run, killed at a deterministic,
	// per-cycle-doubling vector-I/O count, resumed from the latest
	// checkpoint after every kill.
	const seed, minCrashes = 77, 5
	chainCkpt := filepath.Join(dir, "chain.ckpt")
	chainTree := filepath.Join(dir, "chain.nwk")
	chainBack := filepath.Join(dir, "chain.bin")
	crashes := 0
	for cycle := 0; crashes < minCrashes; cycle++ {
		if cycle > minCrashes+3 {
			t.Fatalf("only %d crashes after %d cycles: crashpoints outgrew the run's I/O volume", crashes, cycle)
		}
		args := soakArgs(phy, nwk, memLimit, chainBack, chainCkpt, chainTree)
		args = append(args, "-crashpoint", fmt.Sprint(ooc.CrashPoint(seed, cycle, 400, 300)))
		if _, err := os.Stat(chainCkpt); err == nil {
			args = append(args, "-resume", chainCkpt)
		}
		code, out := soakRun(t, bin, args)
		switch code {
		case ooc.CrashExitCode:
			crashes++
		case 0:
			t.Fatalf("cycle %d finished before its crashpoint fired:\n%s", cycle, out)
		default:
			t.Fatalf("cycle %d exited %d, want %d or 0:\n%s", cycle, code, ooc.CrashExitCode, out)
		}
	}

	// Final clean run: resume with no crashpoint, must complete.
	args := soakArgs(phy, nwk, memLimit, chainBack, chainCkpt, chainTree)
	if _, err := os.Stat(chainCkpt); err == nil {
		args = append(args, "-resume", chainCkpt)
	}
	code, out = soakRun(t, bin, args)
	if code != 0 {
		t.Fatalf("final resume exited %d:\n%s", code, out)
	}

	// The survivor must match the baseline bit for bit: likelihood via
	// the completion checkpoints (exact float64 round-trip through
	// JSON), topology and branch lengths via canonical fingerprints.
	stBase, err := checkpoint.Load(baseCkpt)
	if err != nil {
		t.Fatal(err)
	}
	stChain, err := checkpoint.Load(chainCkpt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(stChain.LnL) != math.Float64bits(stBase.LnL) {
		t.Errorf("after %d crash/resume cycles lnL %.17g != baseline %.17g", crashes, stChain.LnL, stBase.LnL)
	}
	if got, want := treeFingerprint(t, chainTree), treeFingerprint(t, baseTree); got != want {
		t.Errorf("after %d crash/resume cycles the result tree differs from baseline", crashes)
	}
	t.Logf("soak: %d seeded crashes, final lnL %.6f matches baseline", crashes, stChain.LnL)
}

func TestSIGTERMWritesResumableCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess soak skipped in -short mode")
	}
	bin := soakBinary(t)
	dir := t.TempDir()
	phy, nwk, memLimit := soakDataset(t, dir, 128, 240)

	ckpt := filepath.Join(dir, "term.ckpt")
	args := soakArgs(phy, nwk, memLimit, filepath.Join(dir, "term.bin"), ckpt, filepath.Join(dir, "term.nwk"))
	// Plenty of rounds so the signal lands mid-search.
	args[7] = "50"
	cmd := exec.Command(bin, args...)
	outFile, err := os.Create(filepath.Join(dir, "term.out"))
	if err != nil {
		t.Fatal(err)
	}
	defer outFile.Close()
	cmd.Stdout, cmd.Stderr = outFile, outFile
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Wait for the first round checkpoint so the search is provably in
	// flight, then deliver SIGTERM.
	deadline := time.Now().Add(3 * time.Minute)
	for {
		if _, err := os.Stat(ckpt); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("no checkpoint appeared within the deadline")
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	output, _ := os.ReadFile(outFile.Name())
	if err != nil {
		t.Fatalf("SIGTERM run exited non-zero: %v\n%s", err, output)
	}

	// The checkpoint left behind must load, restore, and resume to a
	// clean finish.
	st, err := checkpoint.Load(ckpt)
	if err != nil {
		t.Fatalf("checkpoint after SIGTERM unreadable: %v", err)
	}
	if _, _, err := st.Restore(); err != nil {
		t.Fatalf("checkpoint after SIGTERM does not restore: %v", err)
	}
	args = soakArgs(phy, nwk, memLimit, filepath.Join(dir, "term.bin"), ckpt, filepath.Join(dir, "term.nwk"))
	args = append(args, "-resume", ckpt)
	code, out := soakRun(t, bin, args)
	if code != 0 {
		t.Fatalf("resume after SIGTERM exited %d:\n%s", code, out)
	}
	if !strings.Contains(out, "Resumed from") {
		t.Errorf("resume run did not report resuming:\n%s", out)
	}
	if !strings.Contains(string(output), "interrupted") && !strings.Contains(string(output), "Interrupted") {
		t.Logf("note: SIGTERM run output did not mention interruption (may have finished first):\n%s", output)
	}
}
