package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc/remote"
)

// lnlBitsLine extracts the "Log likelihood bits:" line the -lnl-bits
// flag prints, for bit-for-bit comparisons across runs.
func lnlBitsLine(s string) string {
	for _, line := range strings.Split(s, "\n") {
		if strings.HasPrefix(line, "Log likelihood bits:") {
			return line
		}
	}
	return ""
}

// TestRemoteStoreFlagMatchesLocal runs the same evaluate twice — local
// backing file vs -store remote:// over a latency-injected loopback
// object store — and requires bit-identical likelihoods.
func TestRemoteStoreFlagMatchesLocal(t *testing.T) {
	phy, nwk := writeTestData(t)
	rsrv, err := remote.NewServer(remote.ServerConfig{
		Device: iosim.Device{Latency: time.Millisecond, Bandwidth: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	local, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-a", "0",
		"-L", "1200", "-lnl-bits")
	if err != nil {
		t.Fatal(err)
	}
	rem, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-a", "0",
		"-L", "1200", "-lnl-bits",
		"-store", "remote://"+rsrv.Addr()+"/vecs", "-remote-lanes", "2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rem, "remote store remote://") {
		t.Errorf("output does not report the remote store:\n%s", rem)
	}
	if lb, rb := lnlBitsLine(local), lnlBitsLine(rem); lb == "" || lb != rb {
		t.Errorf("remote store changed the likelihood:\n%q\n%q", lb, rb)
	}
	if got := rsrv.Size("vecs"); got <= 0 {
		t.Errorf("remote object empty after run: %d bytes", got)
	}
}

// TestRemoteStoreWarmCacheAndVerify reruns over a persistent -cache-dir
// with -verify-store: the second run must adopt the cache tier (warm
// start) and still match the first bit-for-bit. A starved -cache-bytes
// run over the same object must match too.
func TestRemoteStoreWarmCacheAndVerify(t *testing.T) {
	phy, nwk := writeTestData(t)
	rsrv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()
	cacheDir := filepath.Join(t.TempDir(), "cache")
	url := "remote://" + rsrv.Addr() + "/warm"

	args := []string{"-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-a", "0",
		"-L", "1200", "-lnl-bits", "-verify-store",
		"-store", url, "-cache-dir", cacheDir}
	first, err := capture(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	second, err := capture(t, args...)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(second, "Warm start:") {
		t.Errorf("second run over %s did not warm-start:\n%s", cacheDir, second)
	}
	if fb, sb := lnlBitsLine(first), lnlBitsLine(second); fb == "" || fb != sb {
		t.Errorf("warm rerun changed the likelihood:\n%q\n%q", fb, sb)
	}
	starved, err := capture(t, "-s", phy, "-t", nwk, "-f", "e", "-m", "JC", "-a", "0",
		"-L", "1200", "-lnl-bits", "-store", url, "-cache-bytes", "1")
	if err != nil {
		t.Fatal(err)
	}
	if fb, sb := lnlBitsLine(first), lnlBitsLine(starved); fb != sb {
		t.Errorf("starved cache changed the likelihood:\n%q\n%q", fb, sb)
	}
}
