// Command oocraxml is the reproduction's RAxML-like driver: it reads an
// alignment (relaxed PHYLIP or FASTA) and runs a Maximum-Likelihood
// analysis whose ancestral probability vectors live either fully in RAM
// (the standard implementation) or behind the out-of-core manager with
// a hard memory limit — the paper's -L flag.
//
// Modes (-f, following the paper's modified RAxML):
//
//	s   ML tree search with lazy SPR (default)
//	e   evaluate: branch lengths and Γ shape on a fixed topology
//	z   k full tree traversals on a fixed topology (the paper's §4.3
//	    worst-case workload; see -k)
//
// Examples:
//
//	oocraxml -s data.phy -m HKY -a 0.8
//	oocraxml -s data.phy -t start.nwk -f z -k 5 -L 1000000000 -strategy lru
//	oocraxml -s data.fasta -fasta -f e -t tree.nwk -L 50000000 -strategy topological -stats
//	oocraxml -s data.phy -f z -L 50000000 -backing vecs.bin -verify-store -io-retries 5
//
// With -verify-store, every vector read from the backing file is
// verified against a CRC64 sidecar (<backing>.sum); a corrupt vector is
// recomputed from its children instead of failing the run, and
// checkpoints record a store manifest that -resume validates the
// backing file against. -io-retries bounds the exponential-backoff
// retries for transient I/O errors.
//
// -report (alias -stats) prints one consolidated statistics report at
// the end of the run, sourced from the metrics registry that
// instruments every layer. -http ADDR additionally serves the live
// debug endpoint while the run is in flight:
//
//	oocraxml -s data.phy -f z -k 100 -L 50000000 -async -http 127.0.0.1:8080 -report
//	curl localhost:8080/debug/vars    # JSON metrics snapshot
//	curl localhost:8080/debug/report  # the same report -report prints
//	curl localhost:8080/debug/trace   # Chrome trace of the vector lifecycle
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"oocphylo/internal/bio"
	"oocphylo/internal/bootstrap"
	"oocphylo/internal/checkpoint"
	"oocphylo/internal/distance"
	"oocphylo/internal/model"
	"oocphylo/internal/obs"
	"oocphylo/internal/ooc"
	"oocphylo/internal/parsimony"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/service"
	"oocphylo/internal/tree"
)

func main() {
	args := os.Args[1:]
	var err error
	switch {
	case len(args) > 0 && args[0] == "serve":
		err = runServe(args[1:], os.Stdout)
	case len(args) > 0 && args[0] == "client":
		err = runClient(args[1:], os.Stdout)
	default:
		err = run(args, os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "oocraxml:", err)
		os.Exit(1)
	}
}

type options struct {
	alignPath   string
	fasta       bool
	aa          bool
	treePath    string
	mode        string
	modelName   string
	kappa       float64
	alpha       float64
	cats        int
	traversals  int
	memLimit    int64
	strategy    string
	backing     string
	noReadSkip  bool
	sprRadius   int
	rounds      int
	seed        int64
	outTree     string
	printStats  bool
	emptyFreqs  bool
	threads     int
	prefetch    bool
	async       bool
	ioWorkers   int
	prefDepth   int
	startTree   string
	optModel    bool
	bootstraps  int
	checkpoint  string
	resume      string
	aaModelPath string
	pinv        float64
	verifyStore bool
	ioRetries   int
	kernel      string
	precision   string
	httpAddr    string
	memBudget   int64
	ckptEvery   time.Duration
	crashAfter  int64
	lnlBits     bool
	store       string
	cacheDir    string
	cacheBytes  int64
	remoteLanes int

	remoteDeadline time.Duration
	hedgeAfter     time.Duration
	spillDir       string
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("oocraxml", flag.ContinueOnError)
	var o options
	fs.StringVar(&o.alignPath, "s", "", "alignment file (relaxed PHYLIP; use -fasta for FASTA)")
	fs.BoolVar(&o.fasta, "fasta", false, "alignment is FASTA rather than PHYLIP")
	fs.BoolVar(&o.aa, "aa", false, "amino-acid data (default DNA)")
	fs.StringVar(&o.treePath, "t", "", "starting/fixed tree in Newick format (default: random topology)")
	fs.StringVar(&o.mode, "f", "s", "mode: s=search (SPR), n=search (NNI), e=evaluate, z=full traversals")
	fs.StringVar(&o.modelName, "m", "GTR", "substitution model: JC, K80, HKY, GTR (DNA); POISSON or PAML (AA)")
	fs.StringVar(&o.aaModelPath, "aamodel", "", "empirical AA model in PAML .dat format (WAG, LG, ...) for -m PAML")
	fs.Float64Var(&o.kappa, "kappa", 2.0, "transition/transversion ratio for K80/HKY")
	fs.Float64Var(&o.alpha, "a", 1.0, "Gamma shape parameter (0 disables rate heterogeneity)")
	fs.Float64Var(&o.pinv, "pinv", 0, "proportion of invariant sites (+I); optimised in evaluate/search modes when > 0")
	fs.IntVar(&o.cats, "c", 4, "number of discrete Gamma rate categories")
	fs.IntVar(&o.traversals, "k", 5, "full traversals for -f z")
	fs.Int64Var(&o.memLimit, "L", 0, "ancestral-vector RAM limit in bytes (0 = all in RAM)")
	fs.StringVar(&o.strategy, "strategy", "lru", "replacement strategy: random, lru, lfu, topological")
	fs.StringVar(&o.backing, "backing", "", "backing file for out-of-core vectors (default: temp file)")
	fs.StringVar(&o.store, "store", "", "vector store URL: remote://host:port/object keeps out-of-core vectors on an object store behind a local write-back cache (default: the -backing file)")
	fs.StringVar(&o.cacheDir, "cache-dir", "", "local write-back cache directory for -store remote:// (default: temp dir, removed on exit; a persistent dir warm-starts the next run)")
	fs.Int64Var(&o.cacheBytes, "cache-bytes", 0, "byte budget for the local cache tier with -store remote:// (0 = room for every vector)")
	fs.IntVar(&o.remoteLanes, "remote-lanes", 2, "parallel remote fetch lanes for -store remote://")
	fs.DurationVar(&o.remoteDeadline, "remote-deadline", 0, "deadline per remote request attempt for -store remote:// (0 = none); expiries are retried with jittered backoff, then trip the circuit breaker into degraded (cache+recompute) mode")
	fs.DurationVar(&o.hedgeAfter, "hedge-after", 0, "launch a duplicate remote read when the first is still in flight after this long with -store remote:// (0 = no hedging)")
	fs.StringVar(&o.spillDir, "spill-dir", "", "directory for the write-back spill journal with -store remote:// (default: the cache dir); absorbs dirty evictions during remote outages, replayed on recovery")
	fs.BoolVar(&o.noReadSkip, "no-read-skipping", false, "disable the read-skipping optimisation")
	fs.IntVar(&o.sprRadius, "radius", 5, "lazy-SPR rearrangement radius")
	fs.IntVar(&o.rounds, "rounds", 10, "maximum SPR improvement rounds")
	fs.Int64Var(&o.seed, "seed", 42, "random seed (starting trees, random strategy)")
	fs.IntVar(&o.threads, "threads", 1, "PLF kernel worker goroutines (results are identical for any value)")
	fs.StringVar(&o.kernel, "kernel", plf.KernelAuto, "PLF compute kernels: auto (specialised where available), blocked or generic; results are bit-identical either way")
	fs.StringVar(&o.precision, "precision", plf.PrecisionF64, "compute precision: f64 (default) or f32 (halves vector memory and store bandwidth; results are bit-identical within a precision, approximate across)")
	fs.BoolVar(&o.prefetch, "prefetch", false, "enable plan-driven vector prefetching (out-of-core runs)")
	fs.BoolVar(&o.async, "async", false, "run out-of-core I/O on background goroutines (implies -prefetch); results are bit-identical to synchronous runs")
	fs.IntVar(&o.ioWorkers, "io-workers", 2, "background fetch goroutines for -async")
	fs.IntVar(&o.prefDepth, "prefetch-depth", 1, "traversal-plan steps to stage ahead (depth > 1 pays off with -async)")
	fs.StringVar(&o.startTree, "start", "parsimony", "starting tree when -t is absent: parsimony, nj or random")
	fs.BoolVar(&o.optModel, "optimize-model", false, "also optimise GTR exchangeabilities (search/evaluate modes)")
	fs.IntVar(&o.bootstraps, "bootstrap", 0, "bootstrap replicates; annotates the result tree with support values")
	fs.StringVar(&o.checkpoint, "checkpoint", "", "write a resumable checkpoint here after every search round")
	fs.DurationVar(&o.ckptEvery, "checkpoint-interval", 0, "minimum time between -checkpoint writes (0 = checkpoint every round)")
	fs.StringVar(&o.resume, "resume", "", "resume tree, model parameters and search progress from this checkpoint")
	fs.Int64Var(&o.memBudget, "mem-budget", 0, "soft heap budget in bytes: a watchdog shrinks/grows the out-of-core slot pool at engine safe points to stay under it (0 = off)")
	fs.Int64Var(&o.crashAfter, "crashpoint", 0, "TESTING: kill the process (exit 3) at the N-th backing-store vector I/O")
	fs.BoolVar(&o.verifyStore, "verify-store", false, "maintain a per-vector checksum sidecar next to the backing file and verify every read (corrupt vectors are recomputed, not fatal)")
	fs.IntVar(&o.ioRetries, "io-retries", 3, "retries with exponential backoff for transient backing-store I/O errors")
	fs.StringVar(&o.outTree, "w", "", "write the result tree to this file (default stdout)")
	fs.BoolVar(&o.printStats, "report", false, "print the consolidated per-layer statistics report")
	fs.BoolVar(&o.printStats, "stats", false, "alias for -report (the historical flag name)")
	fs.StringVar(&o.httpAddr, "http", "", "serve the live /debug endpoint (vars, report, trace, pprof) on this address, e.g. :8080 or 127.0.0.1:0")
	fs.BoolVar(&o.emptyFreqs, "uniform-freqs", false, "use uniform base frequencies instead of empirical")
	fs.BoolVar(&o.lnlBits, "lnl-bits", false, "additionally print the final log likelihood's raw float64 bit pattern (hex) for bit-for-bit comparisons")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if o.alignPath == "" {
		fs.Usage()
		return fmt.Errorf("an alignment (-s) is required")
	}

	// Cooperative cancellation: SIGINT/SIGTERM cancel ctx and the run
	// stops at the next safe boundary — mode s additionally writes a
	// final checkpoint — then exits 0, so an interrupt is an outcome,
	// not a failure.
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()

	// Observability: one registry feeds both the final report and the
	// live endpoint; the trace ring only exists when someone can read it
	// (the endpoint's /debug/trace).
	var reg *obs.Registry
	var tr *obs.Tracer
	if o.printStats || o.httpAddr != "" {
		reg = obs.NewRegistry()
		reg.SetInfo("run.mode", o.mode)
	}
	if o.httpAddr != "" {
		tr = obs.NewTracer(1 << 16)
		// Mirror the ring's own health (drops included) into the
		// registry so /debug/vars and the report expose it.
		obs.RegisterTracerMetrics(reg, tr, nil)
		addr, shutdown, err := obs.Serve(o.httpAddr, reg, tr)
		if err != nil {
			return err
		}
		defer shutdown()
		fmt.Fprintf(out, "Debug endpoint: http://%s/ (vars, report, trace, pprof)\n", addr)
	}

	pats, err := loadAlignment(o)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Alignment: %d taxa, %d sites, %d patterns (%s)\n",
		pats.NumTaxa(), pats.TotalSites(), pats.NumPatterns(), pats.Alphabet.Type)

	var t *tree.Tree
	var m *model.Model
	var resumeMan *ooc.Manifest
	var resumeState *checkpoint.State
	if o.resume != "" {
		st, err := checkpoint.Load(o.resume)
		if err != nil {
			return err
		}
		t, m, err = st.Restore()
		if err != nil {
			return err
		}
		if t.NumTips != pats.NumTaxa() {
			return fmt.Errorf("checkpoint tree has %d tips, alignment %d taxa", t.NumTips, pats.NumTaxa())
		}
		resumeMan = st.Store
		resumeState = st
		fmt.Fprintf(out, "Resumed from %s (round %d, lnL %.4f)\n", o.resume, st.Round, st.LnL)
	} else {
		m, err = buildModel(o, pats)
		if err != nil {
			return err
		}
		t, err = loadOrRandomTree(o, pats)
		if err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "Model: %s, %d rate categories", m.Name, m.Cats())
	if m.Cats() > 1 {
		fmt.Fprintf(out, " (alpha = %g)", m.Alpha)
	}
	fmt.Fprintln(out)

	vecLen, err := plf.CarrierLength(m, pats.NumPatterns(), o.precision)
	if err != nil {
		return err
	}
	if o.precision == plf.PrecisionF32 {
		fmt.Fprintf(out, "Precision: float32 compute (%d B per ancestral vector, half of f64)\n", vecLen*8)
	}
	prov, mgr, cs, tier, cleanup, err := buildProvider(o, t, vecLen, resumeMan, out)
	if err != nil {
		return err
	}
	defer cleanup()
	if mgr != nil {
		mgr.Instrument(reg, tr)
	}
	ooc.InstrumentChecksumStore(reg, cs)
	ooc.InstrumentTieredStore(reg, tier)

	e, err := plf.NewWithPrecision(t, pats, m, prov, o.precision)
	if err != nil {
		return err
	}
	if err := e.SetKernel(o.kernel); err != nil {
		return err
	}
	e.Instrument(reg, tr)
	e.SetWorkers(o.threads)
	defer e.Close()
	// Async runs overlap I/O with compute only when the engine actually
	// stages reads ahead, so -async implies -prefetch.
	e.EnablePrefetch(o.prefetch || o.async)
	e.SetPrefetchDepth(o.prefDepth)

	var wd *ooc.Watchdog
	if o.memBudget > 0 && mgr != nil {
		wd, err = ooc.NewWatchdog(mgr, ooc.WatchdogConfig{SoftBudget: o.memBudget})
		if err != nil {
			return err
		}
		e.SetSafePoint(func() error { return wd.Check() })
		fmt.Fprintf(out, "Memory watchdog: soft heap budget %d B over %d slots\n", o.memBudget, mgr.Slots())
	}
	if o.mode != "s" {
		// Engine-level cancellation aborts traversals between plan steps.
		// Mode s instead checks the context itself at tree-consistent
		// boundaries: an engine-level abort could fire mid-SPR-surgery,
		// where the topology is not in a checkpointable state.
		e.SetContext(ctx)
	}

	start := time.Now()
	var lnl float64
	switch o.mode {
	case "s":
		opts := search.Options{
			SPRRadius:     o.sprRadius,
			MaxRounds:     o.rounds,
			OptimizeModel: m.Cats() > 1,
		}
		if resumeState != nil && resumeState.Round > 0 {
			opts.Resume = resumeProgress(resumeState)
		}
		// writeCkpt persists the search position p: flush makes the
		// backing file complete at the boundary, the sidecar sync plus
		// manifest let -resume validate it, and the Search block carries
		// the counters for exact resume.
		writeCkpt := func(p search.Progress) error {
			st := checkpoint.Capture(t, m, p.LnL, p.Round)
			st.Search = &checkpoint.SearchProgress{
				StartLnL:     p.StartLnL,
				LastImproved: p.LastImproved,
				MovesApplied: p.MovesApplied,
				MovesTested:  p.MovesTested,
				Alpha:        p.Alpha,
			}
			if mgr != nil {
				if err := mgr.Flush(); err != nil {
					return err
				}
			}
			if cs != nil {
				if err := cs.Sync(); err != nil {
					return err
				}
				man := cs.Manifest()
				st.Store = &man
			}
			return checkpoint.Save(o.checkpoint, st)
		}
		if o.checkpoint != "" {
			var lastCkpt time.Time
			opts.RoundCallback = func(p search.Progress) error {
				if o.ckptEvery > 0 && !lastCkpt.IsZero() && time.Since(lastCkpt) < o.ckptEvery {
					return nil
				}
				if err := writeCkpt(p); err != nil {
					return err
				}
				lastCkpt = time.Now()
				return nil
			}
		}
		s := search.New(e, opts)
		s.Instrument(reg, tr)
		res, err := s.RunCtx(ctx)
		var itr *search.Interrupted
		switch {
		case errors.As(err, &itr):
			lnl = itr.Progress.LnL
			fmt.Fprintf(out, "Search interrupted at round %d: %v\n", itr.Progress.Round, itr.Unwrap())
			if o.checkpoint != "" {
				if err := writeCkpt(itr.Progress); err != nil {
					return err
				}
				fmt.Fprintf(out, "Checkpoint written to %s; continue with -resume %s\n", o.checkpoint, o.checkpoint)
			}
		case err != nil:
			return err
		default:
			lnl = res.LnL
			fmt.Fprintf(out, "Search: %d rounds, %d moves tested, %d accepted\n",
				res.Rounds, res.TestedMoves, res.AcceptedMoves)
			if m.Cats() > 1 {
				fmt.Fprintf(out, "Final alpha: %.4f\n", res.Alpha)
			}
			if o.checkpoint != "" {
				// Completion checkpoint, written before the optional
				// exchangeability polish: it marks the search boundary the
				// kill/resume soak compares runs at.
				if err := writeCkpt(res.Final); err != nil {
					return err
				}
			}
			if o.optModel && m.Exch != nil {
				s := search.New(e, search.Options{})
				exch, lnl2, err := s.OptimizeExchangeabilities(3, 0.05)
				if err != nil {
					return err
				}
				if lnl2 > lnl {
					lnl = lnl2
				}
				fmt.Fprintf(out, "GTR rates (AC AG AT CG CT GT): %.4g\n", exch)
			}
		}
	case "n":
		s := search.New(e, search.Options{MaxRounds: o.rounds})
		s.Instrument(reg, tr)
		res, err := s.RunNNI()
		if err != nil {
			if canceled(err) {
				fmt.Fprintf(out, "Interrupted: %v\n", err)
				return nil
			}
			return err
		}
		lnl = res.LnL
		fmt.Fprintf(out, "NNI search: %d rounds\n", res.Rounds)
	case "e":
		s := search.New(e, search.Options{})
		lnl, err = s.SmoothBranches(8, 1e-3)
		if err != nil {
			if canceled(err) {
				fmt.Fprintf(out, "Interrupted: %v\n", err)
				return nil
			}
			return err
		}
		if m.Cats() > 1 {
			if _, lnl2, err := s.OptimizeAlpha(); err == nil && lnl2 > lnl {
				lnl = lnl2
			}
			fmt.Fprintf(out, "Final alpha: %.4f\n", m.Alpha)
		}
		if m.PInv > 0 {
			if _, lnl2, err := s.OptimizePInv(); err == nil && lnl2 > lnl {
				lnl = lnl2
			}
			fmt.Fprintf(out, "Final pInv: %.4f\n", m.PInv)
		}
		if o.optModel && m.Exch != nil {
			exch, lnl2, err := s.OptimizeExchangeabilities(3, 0.05)
			if err != nil {
				return err
			}
			if lnl2 > lnl {
				lnl = lnl2
			}
			fmt.Fprintf(out, "GTR rates (AC AG AT CG CT GT): %.4g\n", exch)
		}
	case "z":
		for i := 0; i < o.traversals; i++ {
			if err := e.FullTraversal(t.Edges[0]); err != nil {
				if canceled(err) {
					fmt.Fprintf(out, "Interrupted after %d of %d traversals\n", i, o.traversals)
					return nil
				}
				return err
			}
			lnl, err = e.LogLikelihoodAt(t.Edges[0])
			if err != nil {
				if canceled(err) {
					fmt.Fprintf(out, "Interrupted after %d of %d traversals\n", i, o.traversals)
					return nil
				}
				return err
			}
		}
		fmt.Fprintf(out, "Completed %d full tree traversals\n", o.traversals)
	default:
		return fmt.Errorf("unknown mode %q (want s, n, e or z)", o.mode)
	}
	elapsed := time.Since(start)

	fmt.Fprintf(out, "Log likelihood: %.6f\n", lnl)
	if o.lnlBits {
		fmt.Fprintf(out, "Log likelihood bits: %s\n", service.FormatLnLBits(lnl))
	}
	fmt.Fprintf(out, "Elapsed: %v\n", elapsed.Round(time.Millisecond))
	if wd != nil {
		ws := wd.Stats()
		fmt.Fprintf(out, "Watchdog: %d samples, %d shrinks, %d grows; %d slots and %d B heap at last sample\n",
			ws.Samples, ws.Shrinks, ws.Grows, ws.Slots, ws.LastHeap)
	}
	if o.printStats {
		writeReport(out, reg, mgr != nil)
	}

	newick := tree.WriteNewick(t)
	if o.bootstraps > 0 && (o.mode == "s" || o.mode == "n" || o.mode == "e") {
		annotated, err := runBootstrap(o, pats, m, t, out)
		if err != nil {
			return err
		}
		newick = annotated
	}
	if o.mode == "s" || o.mode == "n" || o.mode == "e" {
		if o.outTree != "" {
			if err := os.WriteFile(o.outTree, []byte(newick+"\n"), 0o644); err != nil {
				return err
			}
			fmt.Fprintf(out, "Tree written to %s\n", o.outTree)
		} else {
			fmt.Fprintln(out, newick)
		}
	}
	return nil
}

// canceled reports whether err stems from the run's signal context —
// a cooperative interrupt rather than a genuine failure.
func canceled(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// resumeProgress maps a checkpoint's search block back into the resume
// position. v1 checkpoints have no Search block; the cumulative
// counters then restart while the round index and likelihood carry on.
func resumeProgress(st *checkpoint.State) *search.Progress {
	p := &search.Progress{
		Round:        st.Round,
		LnL:          st.LnL,
		StartLnL:     st.LnL,
		LastImproved: st.Round,
	}
	if sp := st.Search; sp != nil {
		p.StartLnL = sp.StartLnL
		p.LastImproved = sp.LastImproved
		p.MovesApplied = sp.MovesApplied
		p.MovesTested = sp.MovesTested
		p.Alpha = sp.Alpha
	}
	return p
}

// writeReport prints the consolidated statistics report: the legacy
// headline lines (engine totals, kernel identity, out-of-core rates)
// followed by the full per-layer registry report. Everything is sourced
// from a single registry snapshot — the same document the live
// /debug/report endpoint serves — rather than from the per-layer stats
// structs the old four-part dump read directly.
func writeReport(out io.Writer, reg *obs.Registry, outOfCore bool) {
	s := reg.Snapshot()
	c := s.Counters
	fmt.Fprintf(out, "Engine: %d newviews, %d evaluations, %d sum tables, %d Newton iterations\n",
		c["plf.newviews"], c["plf.evaluations"], c["plf.sum_tables"], c["plf.newton_iters"])
	fmt.Fprintf(out, "Kernels: %s (%s mode)", s.Info["plf.kernel"], s.Info["plf.kernel_mode"])
	if hits, misses := c["plf.pcache_hits"], c["plf.pcache_misses"]; hits+misses > 0 {
		fmt.Fprintf(out, "; P cache %d hits / %d misses (%.1f%%), %d drops",
			hits, misses, 100*float64(hits)/float64(hits+misses), c["plf.pcache_drops"])
	}
	fmt.Fprintln(out)
	if outOfCore {
		req := c["ooc.requests"]
		rate := func(n int64) float64 {
			if req == 0 {
				return 0
			}
			return 100 * float64(n) / float64(req)
		}
		fmt.Fprintf(out, "Out-of-core: %d requests, %d misses (%.2f%%), %d reads (%.2f%%), %d writes, %d skipped reads\n",
			req, c["ooc.misses"], rate(c["ooc.misses"]), c["ooc.reads"], rate(c["ooc.reads"]),
			c["ooc.writes"], c["ooc.skipped_reads"])
	}
	obs.WriteReport(out, s)
}

func loadAlignment(o options) (*bio.Patterns, error) {
	f, err := os.Open(o.alignPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	dtype := bio.DNA
	if o.aa {
		dtype = bio.AA
	}
	alphabet := bio.NewAlphabet(dtype)
	var aln *bio.Alignment
	if o.fasta {
		aln, err = bio.ReadFASTA(f, alphabet)
	} else {
		aln, err = bio.ReadPhylip(f, alphabet)
	}
	if err != nil {
		return nil, err
	}
	return bio.Compress(aln)
}

func buildModel(o options, pats *bio.Patterns) (*model.Model, error) {
	freqs := pats.BaseFrequencies()
	if o.emptyFreqs {
		for i := range freqs {
			freqs[i] = 1 / float64(len(freqs))
		}
	}
	var m *model.Model
	var err error
	switch strings.ToUpper(o.modelName) {
	case "JC":
		m, err = model.NewJC(pats.Alphabet.States)
	case "POISSON":
		m, err = model.NewJC(pats.Alphabet.States)
	case "PAML":
		if pats.Alphabet.States != 20 {
			return nil, fmt.Errorf("-m PAML needs amino-acid data (-aa)")
		}
		if o.aaModelPath == "" {
			return nil, fmt.Errorf("-m PAML requires -aamodel <file.dat>")
		}
		f, ferr := os.Open(o.aaModelPath)
		if ferr != nil {
			return nil, ferr
		}
		defer f.Close()
		m, err = model.ReadPAML(f, strings.ToUpper(
			strings.TrimSuffix(filepath.Base(o.aaModelPath), filepath.Ext(o.aaModelPath))))
	case "K80":
		m, err = model.NewK80(o.kappa)
	case "HKY":
		m, err = model.NewHKY(freqs, o.kappa)
	case "GTR":
		if pats.Alphabet.States != 4 {
			return nil, fmt.Errorf("GTR exchangeabilities default to DNA; use POISSON for protein data")
		}
		// Without user-supplied rates, GTR with unit exchangeabilities
		// and empirical frequencies (F81-like); rates would be optimised
		// in a full implementation of model optimisation.
		exch := []float64{1, 1, 1, 1, 1, 1}
		m, err = model.NewGTR(freqs, exch, 4)
	default:
		return nil, fmt.Errorf("unknown model %q", o.modelName)
	}
	if err != nil {
		return nil, err
	}
	if o.alpha > 0 && o.cats > 1 {
		if err := m.SetGamma(o.alpha, o.cats); err != nil {
			return nil, err
		}
	}
	if o.pinv > 0 {
		if err := m.SetInvariant(o.pinv); err != nil {
			return nil, err
		}
	}
	return m, nil
}

func loadOrRandomTree(o options, pats *bio.Patterns) (*tree.Tree, error) {
	if o.treePath != "" {
		data, err := os.ReadFile(o.treePath)
		if err != nil {
			return nil, err
		}
		t, err := tree.ParseNewick(string(data))
		if err != nil {
			return nil, err
		}
		if t.NumTips != pats.NumTaxa() {
			return nil, fmt.Errorf("tree has %d tips, alignment %d taxa", t.NumTips, pats.NumTaxa())
		}
		return t, nil
	}
	return buildStartTree(o.startTree, pats, o.seed)
}

// buildStartTree constructs a starting topology: randomised-stepwise-
// addition parsimony (RAxML's default), neighbor joining on JC
// distances, or a random topology.
func buildStartTree(kind string, pats *bio.Patterns, seed int64) (*tree.Tree, error) {
	switch strings.ToLower(kind) {
	case "parsimony", "mp":
		return parsimony.StepwiseAddition(pats, rand.New(rand.NewSource(seed)))
	case "nj":
		return distance.NJTree(pats)
	case "random", "rand":
		return tree.RandomTopology(pats.Names, rand.New(rand.NewSource(seed)), 0.05, 0.15)
	}
	return nil, fmt.Errorf("unknown starting tree kind %q (want parsimony, nj or random)", kind)
}

// buildProvider returns the vector provider: in-memory when no limit is
// set, otherwise the out-of-core manager over a backing file. With
// -verify-store the file store is wrapped in a ChecksumStore (sidecar
// at <backing>.sum) and the *ooc.ChecksumStore return is non-nil so
// checkpoints can carry the store manifest. A resume with an explicit
// -backing path revalidates an existing file against the checkpoint's
// manifest and falls back to a fresh file when validation fails.
func buildProvider(o options, t *tree.Tree, vecLen int, man *ooc.Manifest, out *os.File) (plf.VectorProvider, *ooc.Manager, *ooc.ChecksumStore, *ooc.TieredStore, func(), error) {
	n := t.NumInner()
	noop := func() {}
	// Validate the strategy name up front so a typo fails even when the
	// data happens to fit in the limit.
	switch strings.ToLower(o.strategy) {
	case "random", "rand", "lru", "lfu", "topological", "topo":
	default:
		return nil, nil, nil, nil, noop, fmt.Errorf("unknown strategy %q", o.strategy)
	}
	need := int64(n) * int64(vecLen) * 8
	if o.memLimit <= 0 || need <= o.memLimit {
		if o.memLimit > 0 {
			fmt.Fprintf(out, "Memory limit %d B covers all %d vectors; running in RAM\n", o.memLimit, n)
		}
		if o.store != "" {
			fmt.Fprintf(out, "Note: -store %s unused — all vectors fit in RAM (set -L to go out of core)\n", o.store)
		}
		return plf.NewInMemoryProvider(n, vecLen), nil, nil, nil, noop, nil
	}
	slots := int(o.memLimit / (int64(vecLen) * 8))
	if slots < ooc.MinSlots {
		return nil, nil, nil, nil, noop, fmt.Errorf(
			"memory limit %d B holds only %d vectors of %d B; the PLF needs at least %d (m >= 3)",
			o.memLimit, slots, vecLen*8, ooc.MinSlots)
	}
	var strat ooc.Strategy
	switch strings.ToLower(o.strategy) {
	case "random", "rand":
		strat = ooc.NewRandom(rand.New(rand.NewSource(o.seed + 1)))
	case "lru":
		strat = ooc.NewLRU(n)
	case "lfu":
		strat = ooc.NewLFU(n)
	case "topological", "topo":
		strat = ooc.NewTopological(t)
	default:
		return nil, nil, nil, nil, noop, fmt.Errorf("unknown strategy %q", o.strategy)
	}
	var (
		store   ooc.Store
		cs      *ooc.ChecksumStore
		tier    *ooc.TieredStore
		path    string
		err     error
		cleanup = noop
	)
	if o.store != "" {
		store, cs, tier, cleanup, err = openRemoteStore(o, n, vecLen, man, out)
		path = o.store
	} else {
		path = o.backing
		if path == "" {
			f, ferr := os.CreateTemp("", "oocraxml-vectors-*.bin")
			if ferr != nil {
				return nil, nil, nil, nil, noop, ferr
			}
			path = f.Name()
			f.Close()
			p := path
			cleanup = func() {
				os.Remove(p)
				if o.verifyStore {
					os.Remove(p + ".sum")
				}
			}
		}
		store, cs, err = openStore(o, path, n, vecLen, man, out)
	}
	if err != nil {
		cleanup()
		return nil, nil, nil, nil, noop, err
	}
	if o.crashAfter > 0 {
		// The crashpoint wraps the outermost store, so the scheduled kill
		// fires before either the data write or its checksum lands — the
		// torn state a real power cut leaves behind.
		store = ooc.NewCrashStore(store, o.crashAfter)
		fmt.Fprintf(out, "Crashpoint armed: exit %d at vector I/O #%d\n", ooc.CrashExitCode, o.crashAfter)
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   n,
		VectorLen:    vecLen,
		Slots:        slots,
		Strategy:     strat,
		ReadSkipping: !o.noReadSkip,
		Store:        store,
		Async:        o.async,
		IOWorkers:    o.ioWorkers,
		Retry:        ooc.RetryPolicy{Max: o.ioRetries},
	})
	if err != nil {
		store.Close()
		cleanup()
		return nil, nil, nil, nil, noop, err
	}
	where := "backing file " + path
	if o.store != "" {
		where = "remote store " + path
	}
	fmt.Fprintf(out, "Out-of-core: %d of %d vectors in RAM (%.1f%%), strategy %s, %s\n",
		slots, n, 100*float64(slots)/float64(n), strat.Name(), where)
	if o.async {
		// Report the effective values: the manager and engine clamp
		// non-positive worker counts and depths to their defaults.
		workers, depth := o.ioWorkers, o.prefDepth
		if workers <= 0 {
			workers = 2
		}
		if depth < 1 {
			depth = 1
		}
		fmt.Fprintf(out, "Async pipeline: %d fetch workers, prefetch depth %d\n", workers, depth)
	}
	if o.verifyStore && o.store == "" {
		fmt.Fprintf(out, "Integrity: checksum sidecar %s.sum, %d I/O retries\n", path, o.ioRetries)
	}
	closer := cleanup
	// Close the manager first: it drains the async pipeline (joining
	// in-flight fetches and queued write-backs) before the store goes
	// away. Closing the (possibly checksum-wrapped) store closes the
	// whole wrapper chain down to the backing file.
	return mgr, mgr, cs, tier, func() { mgr.Close(); store.Close(); closer() }, nil
}

// openStore opens the backing store for buildProvider, reusing and
// validating an existing backing file on resume and wrapping it in a
// ChecksumStore when -verify-store is set.
func openStore(o options, path string, n, vecLen int, man *ooc.Manifest, out *os.File) (ooc.Store, *ooc.ChecksumStore, error) {
	// A checkpoint manifest at the wrong element precision is a hard
	// error, not a rebuild: the stored vectors and the run's carrier
	// geometry disagree element-for-element, so silently rebuilding
	// would hide that the user resumed the wrong run.
	if man != nil {
		storePrec := man.Precision
		if storePrec == "" {
			storePrec = plf.PrecisionF64
		}
		if storePrec != o.precision {
			return nil, nil, &ooc.PrecisionMismatchError{Store: man.Precision, Run: o.precision}
		}
	}
	// Resume with an explicit backing path: try to adopt the existing
	// file instead of truncating it. Any other validation failure falls
	// back to a fresh file — every vector is recomputable, so a rebuild
	// only costs I/O, never correctness.
	if o.resume != "" && o.backing != "" {
		fs, err := ooc.OpenFileStore(path, n, vecLen)
		switch {
		case err != nil:
			fmt.Fprintf(out, "Backing file %s not reusable (%v); creating fresh\n", path, err)
		case !o.verifyStore:
			return fs, nil, nil
		default:
			cs, err := ooc.OpenChecksumStore(fs, path+".sum", n, vecLen)
			if err != nil {
				fmt.Fprintf(out, "Checksum sidecar for %s not reusable (%v); rebuilding store\n", path, err)
				fs.Close()
			} else {
				cs.SetPrecision(o.precision)
				if man != nil {
					if err := cs.VerifyManifest(*man); err != nil {
						if ooc.IsPrecisionMismatch(err) {
							cs.Close()
							return nil, nil, err
						}
						fmt.Fprintf(out, "Backing file %s fails checkpoint manifest validation (%v); rebuilding store\n", path, err)
						cs.Close() // closes fs too
					} else {
						fmt.Fprintf(out, "Backing file %s validated against checkpoint manifest\n", path)
						return cs, cs, nil
					}
				} else {
					return cs, cs, nil
				}
			}
		}
	}
	fs, err := ooc.NewFileStore(path, n, vecLen)
	if err != nil {
		return nil, nil, err
	}
	if !o.verifyStore {
		return fs, nil, nil
	}
	cs, err := ooc.NewChecksumStore(fs, path+".sum", n, vecLen)
	if err != nil {
		fs.Close()
		return nil, nil, err
	}
	cs.SetPrecision(o.precision)
	return cs, cs, nil
}

// openRemoteStore builds the tiered stack for -store remote://: an
// ObjectStore on the remote endpoint behind a local write-back cache
// in -cache-dir, with the optional -verify-store checksum sidecar kept
// in the cache dir — local, so remote bytes are verified end-to-end on
// every read. The returned cleanup closes the remote connection (the
// tier does not own it) and removes a temporary cache dir; callers run
// it after closing the returned store.
func openRemoteStore(o options, n, vecLen int, man *ooc.Manifest, out *os.File) (ooc.Store, *ooc.ChecksumStore, *ooc.TieredStore, func(), error) {
	noop := func() {}
	if !ooc.IsRemoteURL(o.store) {
		return nil, nil, nil, noop, fmt.Errorf("-store %q: want a remote://host:port/object URL (local runs use -backing)", o.store)
	}
	if _, err := ooc.ParseRemoteURL(o.store); err != nil {
		return nil, nil, nil, noop, err
	}
	if man != nil {
		storePrec := man.Precision
		if storePrec == "" {
			storePrec = plf.PrecisionF64
		}
		if storePrec != o.precision {
			return nil, nil, nil, noop, &ooc.PrecisionMismatchError{Store: man.Precision, Run: o.precision}
		}
	}
	obj, err := ooc.OpenObjectStore(o.store, n, vecLen)
	if err == nil {
		fmt.Fprintf(out, "Adopting existing remote object %s\n", o.store)
	} else if obj, err = ooc.NewObjectStore(o.store, n, vecLen); err != nil {
		return nil, nil, nil, noop, fmt.Errorf("remote store %s: %w", o.store, err)
	}
	cacheDir, rmCache := o.cacheDir, noop
	if cacheDir == "" {
		dir, derr := os.MkdirTemp("", "oocraxml-cache-*")
		if derr != nil {
			obj.Close()
			return nil, nil, nil, noop, derr
		}
		cacheDir = dir
		rmCache = func() { os.RemoveAll(dir) }
	} else if err := os.MkdirAll(cacheDir, 0o755); err != nil {
		obj.Close()
		return nil, nil, nil, noop, err
	}
	closer := func() { obj.Close(); rmCache() }
	tcfg := ooc.TieredConfig{
		NumVectors: n, VectorLen: vecLen,
		CacheDir:     cacheDir,
		CacheVectors: cacheVectorBudget(o.cacheBytes, n, vecLen),
		Lanes:        o.remoteLanes,
		// Network fault tolerance: a per-attempt deadline and jittered
		// retry budget distinct from -io-retries (disk), a breaker that
		// flips the engine into cache+recompute degraded mode, optional
		// tail hedging, and a spill journal for dirty evictions the
		// remote cannot take.
		RemoteDeadline: o.remoteDeadline,
		RemoteRetry:    ooc.RetryPolicy{Max: 3},
		Breaker:        ooc.BreakerConfig{Threshold: 5},
		HedgeAfter:     o.hedgeAfter,
		SpillDir:       o.spillDir,
	}
	ts, err := ooc.NewTieredStore(obj, tcfg)
	if err != nil {
		closer()
		return nil, nil, nil, noop, err
	}
	if ts.WarmStart() {
		fmt.Fprintf(out, "Warm start: adopted the cache tier left in %s\n", cacheDir)
	}
	fmt.Fprintf(out, "Cache tier: %d of %d vectors under %s, %d remote lanes\n",
		tcfg.CacheVectors, n, cacheDir, tcfg.Lanes)
	if !o.verifyStore {
		return ts, nil, ts, closer, nil
	}
	sum := filepath.Join(cacheDir, "vectors.sum")
	// Resume: try to adopt the existing sidecar against the checkpoint
	// manifest, exactly like a local backing file. Any validation
	// failure short of a precision mismatch rebuilds the sidecar —
	// every vector is recomputable, so that costs I/O, not correctness.
	if o.resume != "" && man != nil {
		cs, cerr := ooc.OpenChecksumStore(ts, sum, n, vecLen)
		if cerr != nil {
			fmt.Fprintf(out, "Checksum sidecar %s not reusable (%v); rebuilding\n", sum, cerr)
		} else {
			cs.SetPrecision(o.precision)
			verr := cs.VerifyManifest(*man)
			switch {
			case verr == nil:
				fmt.Fprintf(out, "Remote store %s validated against checkpoint manifest\n", o.store)
				return cs, cs, ts, closer, nil
			case ooc.IsPrecisionMismatch(verr):
				cs.Close()
				closer()
				return nil, nil, nil, noop, verr
			default:
				fmt.Fprintf(out, "Remote store fails checkpoint manifest validation (%v); rebuilding store\n", verr)
				cs.Close() // closes ts too
				if ts, err = ooc.NewTieredStore(obj, tcfg); err != nil {
					closer()
					return nil, nil, nil, noop, err
				}
			}
		}
	}
	cs, err := ooc.NewChecksumStore(ts, sum, n, vecLen)
	if err != nil {
		ts.Close()
		closer()
		return nil, nil, nil, noop, err
	}
	cs.SetPrecision(o.precision)
	fmt.Fprintf(out, "Integrity: checksum sidecar %s, %d I/O retries\n", sum, o.ioRetries)
	return cs, cs, ts, closer, nil
}

// cacheVectorBudget converts -cache-bytes into cache-tier slots,
// defaulting to "hold everything" and flooring at one vector.
func cacheVectorBudget(budget int64, n, vecLen int) int {
	if budget <= 0 {
		return n
	}
	cv := int(budget / (int64(vecLen) * 8))
	if cv < 1 {
		cv = 1
	}
	if cv > n {
		cv = n
	}
	return cv
}

// runBootstrap infers o.bootstraps replicate trees (parsimony stepwise-
// addition starting tree, branch smoothing, one lazy-SPR round per
// replicate) and returns the main tree's Newick annotated with
// bipartition support percentages.
func runBootstrap(o options, pats *bio.Patterns, m *model.Model, ref *tree.Tree, out *os.File) (string, error) {
	fmt.Fprintf(out, "Running %d bootstrap replicates...\n", o.bootstraps)
	infer := func(rep int, sample *bio.Patterns) (*tree.Tree, error) {
		start, err := parsimony.StepwiseAddition(sample, rand.New(rand.NewSource(o.seed+int64(rep))))
		if err != nil {
			return nil, err
		}
		prov := plf.NewInMemoryProvider(start.NumInner(), plf.VectorLength(m, sample.NumPatterns()))
		e, err := plf.New(start, sample, m.Clone(), prov)
		if err != nil {
			return nil, err
		}
		e.SetWorkers(o.threads)
		if _, err := search.New(e, search.Options{SPRRadius: o.sprRadius, MaxRounds: 1}).Run(); err != nil {
			return nil, err
		}
		return e.T, nil
	}
	trees, err := bootstrap.Run(pats, o.bootstraps, o.seed+777, infer)
	if err != nil {
		return "", err
	}
	sup, err := bootstrap.Support(ref, trees)
	if err != nil {
		return "", err
	}
	mean := 0.0
	for _, s := range sup {
		mean += s
	}
	if len(sup) > 0 {
		mean /= float64(len(sup))
	}
	fmt.Fprintf(out, "Mean bipartition support: %.1f%%\n", 100*mean)
	return bootstrap.NewickWithSupport(ref, sup), nil
}
