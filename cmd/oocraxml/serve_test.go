package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startDaemon launches runServe on a free port with output captured to
// a file, polls the banner for the bound address, and returns the
// address plus the channel the daemon's exit error arrives on.
func startDaemon(t *testing.T, dataDir string, extra ...string) (addr string, done chan error, outPath string) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "serve-out")
	if err != nil {
		t.Fatal(err)
	}
	outPath = f.Name()
	args := append([]string{"-addr", "127.0.0.1:0", "-data", dataDir}, extra...)
	done = make(chan error, 1)
	go func() {
		defer f.Close()
		done <- runServe(args, f)
	}()

	bannerRe := regexp.MustCompile(`daemon on http://([^/]+)/`)
	deadline := time.Now().Add(10 * time.Second)
	for {
		data, _ := os.ReadFile(outPath)
		if m := bannerRe.FindStringSubmatch(string(data)); m != nil {
			return m[1], done, outPath
		}
		select {
		case err := <-done:
			t.Fatalf("daemon exited before binding: %v\n%s", err, data)
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never printed its address; output so far:\n%s", data)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// stopDaemon delivers SIGTERM (to our own process; runServe's handler
// intercepts it) and asserts the graceful-exit contract: nil error —
// the CLI maps that to exit code 0 — after parking every session.
func stopDaemon(t *testing.T, done chan error, outPath string) {
	t.Helper()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exit after SIGTERM: %v (want nil for exit code 0)", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("daemon did not exit within 30s of SIGTERM")
	}
	if data, _ := os.ReadFile(outPath); !strings.Contains(string(data), "All sessions parked") {
		t.Errorf("daemon shutdown did not park sessions; output:\n%s", data)
	}
}

// client runs one `oocraxml client` operation with captured output.
func client(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "client-out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := runClient(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

var lnlBitsRe = regexp.MustCompile(`Log likelihood bits: ([0-9a-f]{16})`)

// TestServeDifferentialAgainstOneShot is the daemon smoke: start the
// daemon, create a session, fire concurrent evaluates through the
// coalescing batcher, and assert every reply is bit-for-bit identical
// to a one-shot CLI run over the session's own tree. Then SIGTERM the
// daemon (graceful exit, resumable checkpoint on disk), restart it over
// the same data directory and assert the adopted session still answers
// with the same bits.
func TestServeDifferentialAgainstOneShot(t *testing.T) {
	phy, _ := writeTestData(t)
	dataDir := t.TempDir()
	addr, done, outPath := startDaemon(t, dataDir, "-batch-wait", "30ms")

	if _, err := client(t, "create", "-addr", addr, "-name", "smoke", "-s", phy, "-a", "1"); err != nil {
		t.Fatalf("client create: %v", err)
	}

	// The session's normalised tree is the common input for the
	// comparison: the one-shot CLI parses exactly what the daemon walks.
	nwkOut, err := client(t, "tree", "-addr", addr, "-name", "smoke")
	if err != nil {
		t.Fatalf("client tree: %v", err)
	}
	svcTree := filepath.Join(t.TempDir(), "svc.nwk")
	if err := os.WriteFile(svcTree, []byte(strings.TrimSpace(nwkOut)+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// One-shot reference: mode z leaves the tree untouched and reports
	// the likelihood at edge 0 of the parsed tree.
	oneShot, err := capture(t, "-s", phy, "-t", svcTree, "-f", "z", "-k", "1", "-a", "1", "-lnl-bits")
	if err != nil {
		t.Fatalf("one-shot CLI: %v\n%s", err, oneShot)
	}
	m := lnlBitsRe.FindStringSubmatch(oneShot)
	if m == nil {
		t.Fatalf("one-shot CLI printed no lnl bits:\n%s", oneShot)
	}
	refBits := m[1]

	// Concurrent evaluates through the batcher.
	evalOut, err := client(t, "eval", "-addr", addr, "-name", "smoke", "-edge", "0", "-n", "6", "-concurrent")
	if err != nil {
		t.Fatalf("client eval: %v", err)
	}
	bits := lnlBitsRe.FindAllStringSubmatch(evalOut, -1)
	if len(bits) != 6 {
		t.Fatalf("expected 6 replies, got %d:\n%s", len(bits), evalOut)
	}
	for i, b := range bits {
		if b[1] != refBits {
			t.Errorf("concurrent evaluate %d: bits %s != one-shot CLI %s\n%s", i, b[1], refBits, evalOut)
		}
	}
	if !regexp.MustCompile(`Batch: seq=\d+ size=\d+ wait_us=\d+ exec_us=\d+`).MatchString(evalOut) {
		t.Errorf("eval output carries no batching ledger:\n%s", evalOut)
	}

	// The /debug endpoint serves the per-session admission/batching
	// counters next to the service routes.
	varsOut, err := client(t, "info", "-addr", addr, "-name", "smoke")
	if err != nil || !strings.Contains(varsOut, "6 evals") {
		t.Errorf("info after evals (err %v):\n%s", err, varsOut)
	}

	// SIGTERM → exit 0 with a resumable checkpoint on disk.
	stopDaemon(t, done, outPath)
	if _, err := os.Stat(filepath.Join(dataDir, "smoke.ckpt")); err != nil {
		t.Fatalf("graceful shutdown left no resumable checkpoint: %v", err)
	}

	// Restart over the same data directory: the parked session is
	// adopted and revives bit-identically.
	addr2, done2, outPath2 := startDaemon(t, dataDir)
	if data, _ := os.ReadFile(outPath2); !strings.Contains(string(data), "Adopted 1 parked session(s): smoke") {
		t.Errorf("restarted daemon did not adopt the parked session:\n%s", data)
	}
	evalOut2, err := client(t, "eval", "-addr", addr2, "-name", "smoke")
	if err != nil {
		t.Fatalf("eval after restart: %v", err)
	}
	m2 := lnlBitsRe.FindStringSubmatch(evalOut2)
	if m2 == nil || m2[1] != refBits {
		t.Errorf("revived session bits %v != one-shot %s:\n%s", m2, refBits, evalOut2)
	}
	stopDaemon(t, done2, outPath2)
}

// TestServeOutOfCoreSession smokes an out-of-core tenant end to end
// through the CLI surface: quota-limited create, evaluate, park,
// revive, delete.
func TestServeOutOfCoreSession(t *testing.T) {
	phy, _ := writeTestData(t)
	dataDir := t.TempDir()
	addr, done, outPath := startDaemon(t, dataDir)

	// 6 taxa → 4 inner vectors of 12 patterns × 4 cats × 4 states × 8 B
	// = 1536 B each (6144 B in-core). A 5000 B quota is below that but
	// above the MinSlots floor of 3 × 1536 B, so the manager comes in
	// with 3 slots.
	createOut, err := client(t, "create", "-addr", addr, "-name", "ooc", "-s", phy, "-a", "1", "-L", "5000")
	if err != nil {
		t.Fatalf("client create -L: %v\n%s", err, createOut)
	}
	if !strings.Contains(createOut, "out-of-core") {
		t.Fatalf("session did not go out of core:\n%s", createOut)
	}

	evalOut, err := client(t, "eval", "-addr", addr, "-name", "ooc")
	if err != nil {
		t.Fatal(err)
	}
	before := lnlBitsRe.FindStringSubmatch(evalOut)
	if before == nil {
		t.Fatalf("no bits in eval output:\n%s", evalOut)
	}

	if _, err := client(t, "park", "-addr", addr, "-name", "ooc"); err != nil {
		t.Fatalf("park: %v", err)
	}
	for _, f := range []string{"ooc.ckpt", "ooc.vec", "ooc.vec.sum", "ooc.aln"} {
		if _, err := os.Stat(filepath.Join(dataDir, f)); err != nil {
			t.Errorf("parked session missing %s: %v", f, err)
		}
	}

	evalOut2, err := client(t, "eval", "-addr", addr, "-name", "ooc")
	if err != nil {
		t.Fatalf("eval after park: %v", err)
	}
	after := lnlBitsRe.FindStringSubmatch(evalOut2)
	if after == nil || after[1] != before[1] {
		t.Errorf("park/revive changed bits: %v -> %v", before, after)
	}

	if _, err := client(t, "delete", "-addr", addr, "-name", "ooc"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "ooc.vec")); !os.IsNotExist(err) {
		t.Error("delete left the backing file behind")
	}
	stopDaemon(t, done, outPath)
}

// TestServeAdmissionOverBudget pins the governor on the wire: with a
// server budget too small for a second in-core tenant, the create is
// refused with a retryable error mentioning the budget.
func TestServeAdmissionOverBudget(t *testing.T) {
	phy, _ := writeTestData(t)
	dataDir := t.TempDir()
	// The 6-taxon test alignment needs 4 vectors × 1536 B = 6144 B
	// in-core; an 8000 B budget holds one copy but not two.
	addr, done, outPath := startDaemon(t, dataDir, "-server-budget", "8000")

	if _, err := client(t, "create", "-addr", addr, "-name", "one", "-s", phy, "-a", "1"); err != nil {
		t.Fatalf("first create: %v", err)
	}
	_, err := client(t, "create", "-addr", addr, "-name", "two", "-s", phy, "-a", "1")
	if err == nil {
		t.Fatal("second in-core tenant admitted past -server-budget")
	}
	if !strings.Contains(err.Error(), "budget") || !strings.Contains(err.Error(), "503") {
		t.Errorf("rejection unhelpful: %v", err)
	}
	// Park the incumbent; the same create now fits.
	if _, err := client(t, "park", "-addr", addr, "-name", "one"); err != nil {
		t.Fatal(err)
	}
	if _, err := client(t, "create", "-addr", addr, "-name", "two", "-s", phy, "-a", "1"); err != nil {
		t.Fatalf("create after park: %v", err)
	}
	stopDaemon(t, done, outPath)
}

// sanity for the helper regex: FormatLnLBits-style output is what the
// client prints.
func TestLnLBitsRegexp(t *testing.T) {
	if !lnlBitsRe.MatchString(fmt.Sprintf("Log likelihood bits: %016x\n", uint64(0xc09637cf4414c58f))) {
		t.Fatal("lnlBitsRe does not match the client's output format")
	}
}
