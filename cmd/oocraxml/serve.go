package main

// The `serve` and `client` subcommands: PLF-as-a-service. `serve` turns
// the one-shot CLI into a long-running daemon hosting named sessions
// (alignment + model + tree), with concurrent evaluates coalesced into
// single engine passes, a global memory budget arbitrated across
// tenants, and idle sessions parked to exact-resume checkpoints.
// `client` is the matching command-line client, speaking the daemon's
// JSON API.
//
//	oocraxml serve -addr 127.0.0.1:8080 -data /var/lib/oocraxml -server-budget 2000000000
//	oocraxml client create -addr 127.0.0.1:8080 -name d1 -s data.phy -a 1
//	oocraxml client eval -addr 127.0.0.1:8080 -name d1 -edge 0 -n 8 -concurrent
//	oocraxml client park -addr 127.0.0.1:8080 -name d1
//
// SIGINT/SIGTERM park every session before exit (exit code 0), so a
// restarted daemon over the same -data directory adopts and revives
// them on their next request.

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"oocphylo/internal/service"
)

func runServe(args []string, out *os.File) error {
	fs := flag.NewFlagSet("oocraxml serve", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (host:port; port 0 picks a free port)")
	dataDir := fs.String("data", "oocraxml-data", "data directory: per-session alignments, checkpoints and out-of-core backing files")
	memBudget := fs.Int64("server-budget", 0, "global ancestral-vector budget in bytes across all active sessions (0 = unlimited); admission rejects sessions whose memory floor does not fit, and out-of-core slot pools are squeezed proportionally")
	batchMax := fs.Int("batch-max", service.DefaultMaxBatch, "flush a coalesced evaluate batch at this many requests")
	batchWait := fs.Duration("batch-wait", service.DefaultMaxWait, "flush a coalesced evaluate batch this long after its first request")
	idle := fs.Duration("idle-park", 0, "park sessions with no request for this long (0 = never)")
	storeURL := fs.String("store", "", "remote object-store endpoint (remote://host:port, or remote://host:port/namespace to share one server between daemons): out-of-core sessions keep their vectors there behind a per-session write-back cache in -data")
	cacheBytes := fs.Int64("cache-bytes", 0, "per-session byte budget for the local cache tier with -store (0 = room for every vector)")
	remoteLanes := fs.Int("remote-lanes", 2, "parallel remote fetch lanes per session with -store")
	remoteDeadline := fs.Duration("remote-deadline", 0, "deadline per remote store request attempt with -store (0 = none); expiries are retried with jittered backoff, then trip the circuit breaker")
	hedgeAfter := fs.Duration("hedge-after", 0, "launch a duplicate remote read when the first is still in flight after this long with -store (0 = no hedging)")
	spillDir := fs.String("spill-dir", "", "directory for per-session write-back spill journals with -store (default: the session cache directory in -data); absorbs dirty evictions during remote outages, replayed on recovery")
	reqTimeout := fs.Duration("request-timeout", 0, "end-to-end deadline per /v1 request (0 = none); expiry answers 503 + Retry-After")
	if err := fs.Parse(args); err != nil {
		return err
	}

	srv, err := service.NewServer(service.ServerConfig{
		DataDir:        *dataDir,
		MemBudget:      *memBudget,
		Batch:          service.BatcherConfig{MaxBatch: *batchMax, MaxWait: *batchWait},
		IdleTimeout:    *idle,
		StoreURL:       *storeURL,
		CacheBytes:     *cacheBytes,
		RemoteLanes:    *remoteLanes,
		RemoteDeadline: *remoteDeadline,
		HedgeAfter:     *hedgeAfter,
		SpillDir:       *spillDir,
		RequestTimeout: *reqTimeout,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	fmt.Fprintf(out, "oocraxml daemon on http://%s/ (sessions under /v1/, debug under /debug/)\n", ln.Addr())
	fmt.Fprintf(out, "Data directory: %s\n", *dataDir)
	if *storeURL != "" {
		fmt.Fprintf(out, "Vector store: %s (%d lanes, per-session cache in %s)\n", *storeURL, *remoteLanes, *dataDir)
	}
	if adopted := srv.Sessions(); len(adopted) > 0 {
		names := make([]string, 0, len(adopted))
		for _, info := range adopted {
			names = append(names, info.Name)
		}
		fmt.Fprintf(out, "Adopted %d parked session(s): %s\n", len(adopted), strings.Join(names, ", "))
	}

	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting, finish in-flight requests,
	// then park every session so the daemon is resumable. An interrupt
	// is an outcome, not a failure — exit 0.
	fmt.Fprintln(out, "Signal received; parking sessions...")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	_ = hs.Shutdown(shutdownCtx)
	if err := srv.Close(); err != nil {
		return fmt.Errorf("parking sessions: %w", err)
	}
	fmt.Fprintln(out, "All sessions parked; bye.")
	return nil
}

func runClient(args []string, out *os.File) error {
	if len(args) == 0 {
		return fmt.Errorf("client: need an operation: create, list, info, eval, newview, optimize, park, delete, tree")
	}
	op, rest := args[0], args[1:]
	fs := flag.NewFlagSet("oocraxml client "+op, flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "daemon address")
	name := fs.String("name", "", "session name")

	switch op {
	case "create":
		alignPath := fs.String("s", "", "alignment file (read locally, sent inline)")
		fasta := fs.Bool("fasta", false, "alignment is FASTA rather than PHYLIP")
		aa := fs.Bool("aa", false, "amino-acid data (default DNA)")
		modelName := fs.String("m", "GTR", "substitution model: JC, K80, HKY, GTR (DNA); POISSON (AA)")
		kappa := fs.Float64("kappa", 2.0, "transition/transversion ratio for K80/HKY")
		alpha := fs.Float64("a", 1.0, "Gamma shape parameter (0 disables rate heterogeneity)")
		cats := fs.Int("c", 4, "number of discrete Gamma rate categories")
		pinv := fs.Float64("pinv", 0, "proportion of invariant sites (+I)")
		uniform := fs.Bool("uniform-freqs", false, "use uniform base frequencies instead of empirical")
		treePath := fs.String("t", "", "starting/fixed tree file (Newick, read locally)")
		start := fs.String("start", "parsimony", "starting tree when -t is absent: parsimony, nj or random")
		seed := fs.Int64("seed", 42, "random seed")
		memLimit := fs.Int64("L", 0, "session ancestral-vector RAM quota in bytes (0 = in-core)")
		strategy := fs.String("strategy", "lru", "out-of-core replacement strategy: random, lru, lfu, topological")
		threads := fs.Int("threads", 1, "PLF kernel worker goroutines")
		kernel := fs.String("kernel", "", "PLF compute kernels: auto, blocked or generic")
		precision := fs.String("precision", "", "compute precision: f64 or f32")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if *alignPath == "" {
			return fmt.Errorf("client create: an alignment (-s) is required")
		}
		alnData, err := os.ReadFile(*alignPath)
		if err != nil {
			return err
		}
		cfg := service.SessionConfig{
			Name:         *name,
			Alignment:    string(alnData),
			Model:        *modelName,
			Kappa:        *kappa,
			Alpha:        *alpha,
			Cats:         *cats,
			PInv:         *pinv,
			UniformFreqs: *uniform,
			StartTree:    *start,
			Seed:         *seed,
			MemLimit:     *memLimit,
			Strategy:     *strategy,
			Workers:      *threads,
			Kernel:       *kernel,
			Precision:    *precision,
		}
		if *fasta {
			cfg.Format = "fasta"
		}
		if *aa {
			cfg.DataType = "aa"
		}
		if *treePath != "" {
			nwk, err := os.ReadFile(*treePath)
			if err != nil {
				return err
			}
			cfg.Newick = string(nwk)
		}
		info, err := service.NewClient(*addr).CreateSession(cfg)
		if err != nil {
			return err
		}
		printSessionInfo(out, info)
		return nil

	case "list":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		infos, err := service.NewClient(*addr).Sessions()
		if err != nil {
			return err
		}
		sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
		fmt.Fprintf(out, "%d session(s)\n", len(infos))
		for _, info := range infos {
			fmt.Fprintf(out, "  %-20s %-7s taxa=%d patterns=%d evals=%d lnL=%.6f\n",
				info.Name, info.State, info.Taxa, info.Patterns, info.Evals, info.LnL)
		}
		return nil

	case "info":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		info, err := service.NewClient(*addr).SessionInfo(*name)
		if err != nil {
			return err
		}
		printSessionInfo(out, info)
		return nil

	case "eval":
		edge := fs.Int("edge", 0, "tree edge index to evaluate at")
		length := fs.Float64("length", -1, "hypothetical branch length (< 0 = the edge's current length)")
		full := fs.Bool("full", false, "force a fresh full engine pass before evaluating")
		count := fs.Int("n", 1, "number of evaluate requests to issue")
		concurrent := fs.Bool("concurrent", false, "issue the -n requests concurrently (rides the coalescing batcher)")
		trace := fs.Bool("trace", false, "send a W3C traceparent per request and print the daemon's trace id + cost ledger (inspect with GET /debug/trace/{id})")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		spec := service.EvalSpec{Edge: *edge, Full: *full}
		if *length >= 0 {
			l := *length
			spec.Length = &l
		}
		c := service.NewClient(*addr)
		c.SetTrace(*trace)
		replies := make([]service.EvalReply, *count)
		errs := make([]error, *count)
		if *concurrent {
			var wg sync.WaitGroup
			for i := range replies {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					replies[i], errs[i] = c.Evaluate(*name, spec)
				}(i)
			}
			wg.Wait()
		} else {
			for i := range replies {
				replies[i], errs[i] = c.Evaluate(*name, spec)
			}
		}
		for i, rep := range replies {
			if errs[i] != nil {
				return errs[i]
			}
			fmt.Fprintf(out, "Log likelihood: %.6f\n", rep.LnL)
			fmt.Fprintf(out, "Log likelihood bits: %s\n", rep.LnLBits)
			fmt.Fprintf(out, "Batch: seq=%d size=%d wait_us=%d exec_us=%d\n",
				rep.Batch, rep.BatchSize, rep.WaitMicros, rep.ExecMicros)
			if rep.TraceID != "" {
				fmt.Fprintf(out, "Trace: %s\n", rep.TraceID)
			}
			if rep.Cost != nil {
				fmt.Fprintf(out, "Cost: %s\n", rep.Cost.Header())
			}
		}
		return nil

	case "newview":
		edge := fs.Int("edge", 0, "tree edge index to evaluate at")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rep, err := service.NewClient(*addr).Newview(*name, *edge)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Log likelihood: %.6f\n", rep.LnL)
		fmt.Fprintf(out, "Log likelihood bits: %s\n", rep.LnLBits)
		return nil

	case "optimize":
		passes := fs.Int("passes", 2, "branch-length smoothing passes")
		eps := fs.Float64("eps", 1e-3, "early-exit threshold on per-pass improvement")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		rep, err := service.NewClient(*addr).Optimize(*name, service.OptimizeSpec{Passes: *passes, Eps: *eps})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "Log likelihood: %.6f\n", rep.LnL)
		fmt.Fprintf(out, "Log likelihood bits: %s\n", rep.LnLBits)
		fmt.Fprintln(out, rep.Newick)
		return nil

	case "park":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		info, err := service.NewClient(*addr).Park(*name)
		if err != nil {
			return err
		}
		printSessionInfo(out, info)
		return nil

	case "delete":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if err := service.NewClient(*addr).DeleteSession(*name); err != nil {
			return err
		}
		fmt.Fprintf(out, "Deleted session %s\n", *name)
		return nil

	case "tree":
		if err := fs.Parse(rest); err != nil {
			return err
		}
		nwk, err := service.NewClient(*addr).Tree(*name)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, nwk)
		return nil
	}
	return fmt.Errorf("client: unknown operation %q", op)
}

func printSessionInfo(out *os.File, info service.SessionInfo) {
	fmt.Fprintf(out, "Session: %s (%s)\n", info.Name, info.State)
	fmt.Fprintf(out, "Alignment: %d taxa, %d sites, %d patterns\n", info.Taxa, info.Sites, info.Patterns)
	mode := "in-core"
	if info.OutOfCore {
		mode = fmt.Sprintf("out-of-core, %d slots", info.Slots)
	}
	fmt.Fprintf(out, "Vectors: %s (quota %d B, grant %d B)\n", mode, info.QuotaBytes, info.GrantBytes)
	fmt.Fprintf(out, "Activity: %d evals in %d batches, %d parks, %d revives\n",
		info.Evals, info.Batches, info.Parks, info.Revives)
	if info.Evals > 0 {
		fmt.Fprintf(out, "Log likelihood: %.6f\n", info.LnL)
		fmt.Fprintf(out, "Log likelihood bits: %s\n", info.LnLBits)
	}
}
