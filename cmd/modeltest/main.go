// Command modeltest ranks DNA substitution models by information
// criteria on a shared Neighbor-Joining topology (jModelTest-style):
// JC69, K80, HKY85 and GTR, optionally each with discrete-Γ(4) rate
// heterogeneity.
//
// Example:
//
//	modeltest -s data.phy -gamma
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"oocphylo/internal/bio"
	"oocphylo/internal/modelsel"
	"oocphylo/internal/tree"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "modeltest:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("modeltest", flag.ContinueOnError)
	alignPath := fs.String("s", "", "alignment file (relaxed PHYLIP; use -fasta for FASTA)")
	fastaIn := fs.Bool("fasta", false, "alignment is FASTA rather than PHYLIP")
	gamma := fs.Bool("gamma", true, "also fit +G4 variants")
	invariant := fs.Bool("invariant", false, "also fit +I (and +I+G4) variants")
	treePath := fs.String("t", "", "fixed evaluation topology (default: NJ tree from the data)")
	criterion := fs.String("criterion", "AIC", "selection criterion: AIC, AICc or BIC")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *alignPath == "" {
		fs.Usage()
		return fmt.Errorf("an alignment (-s) is required")
	}
	f, err := os.Open(*alignPath)
	if err != nil {
		return err
	}
	defer f.Close()
	var aln *bio.Alignment
	if *fastaIn {
		aln, err = bio.ReadFASTA(f, bio.NewDNAAlphabet())
	} else {
		aln, err = bio.ReadPhylip(f, bio.NewDNAAlphabet())
	}
	if err != nil {
		return err
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Alignment: %d taxa, %d sites, %d patterns\n",
		pats.NumTaxa(), pats.TotalSites(), pats.NumPatterns())

	opts := modelsel.Options{Gamma: *gamma, Invariant: *invariant}
	if *treePath != "" {
		data, err := os.ReadFile(*treePath)
		if err != nil {
			return err
		}
		opts.Topology, err = tree.ParseNewick(string(data))
		if err != nil {
			return err
		}
	}
	fits, err := modelsel.EvaluateDNA(pats, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%-10s %6s %14s %14s %14s %14s %8s\n",
		"model", "K", "lnL", "AIC", "AICc", "BIC", "alpha")
	for _, fit := range fits {
		alpha := "-"
		if !math.IsNaN(fit.Alpha) {
			alpha = fmt.Sprintf("%.3f", fit.Alpha)
		}
		fmt.Fprintf(out, "%-10s %6d %14.2f %14.2f %14.2f %14.2f %8s\n",
			fit.Name, fit.K, fit.LnL, fit.AIC, fit.AICc, fit.BIC, alpha)
	}
	best, err := modelsel.Best(fits, *criterion)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "Best model by %s: %s\n", *criterion, best.Name)
	return nil
}
