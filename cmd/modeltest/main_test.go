package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	f, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	runErr := run(args, f)
	data, err := os.ReadFile(f.Name())
	if err != nil {
		t.Fatal(err)
	}
	return string(data), runErr
}

func writePhy(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "d.phy")
	phy := `5 24
a ACGTACGTACGTACGTACGTACGT
b ACGTACGAACGTACGTACGTACGA
c ACGAACGAACGTTCGTACGTACGA
d TCGAACGAACGTTCGTACGAACGA
e TCGAACGAACGCTCGTACGAACGA
`
	if err := os.WriteFile(path, []byte(phy), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestModeltestRanksModels(t *testing.T) {
	phy := writePhy(t)
	out, err := capture(t, "-s", phy, "-gamma=false")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"JC69", "K80", "HKY85", "GTR", "Best model by AIC:"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "+G4") {
		t.Error("gamma variants should be absent with -gamma=false")
	}
}

func TestModeltestGammaAndBIC(t *testing.T) {
	phy := writePhy(t)
	out, err := capture(t, "-s", phy, "-criterion", "BIC")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+G4") || !strings.Contains(out, "Best model by BIC:") {
		t.Errorf("gamma/BIC output incomplete:\n%s", out)
	}
}

func TestModeltestFixedTopology(t *testing.T) {
	phy := writePhy(t)
	nwk := filepath.Join(t.TempDir(), "t.nwk")
	_ = os.WriteFile(nwk, []byte("((a:0.1,b:0.1):0.1,c:0.1,(d:0.1,e:0.1):0.1);"), 0o644)
	if _, err := capture(t, "-s", phy, "-t", nwk, "-gamma=false"); err != nil {
		t.Fatal(err)
	}
}

func TestModeltestErrors(t *testing.T) {
	phy := writePhy(t)
	cases := [][]string{
		{},
		{"-s", "/does/not/exist"},
		{"-s", phy, "-criterion", "DIC"},
		{"-s", phy, "-t", "/does/not/exist.nwk"},
		{"-badflag"},
	}
	for _, args := range cases {
		if _, err := capture(t, args...); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestModeltestInvariantVariants(t *testing.T) {
	phy := writePhy(t)
	out, err := capture(t, "-s", phy, "-gamma=false", "-invariant")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "+I") {
		t.Errorf("+I variants missing:\n%s", out)
	}
}
