// Command simseq generates simulated alignments: a Yule tree plus
// sequence evolution under HKY+Γ (or, for protein data, Poisson or an
// empirical PAML matrix). It is the repository's INDELible substitute
// (paper §4.3) and produces the inputs for oocraxml and the figure
// harness.
//
// Examples:
//
//	simseq -taxa 8192 -sites 10000 -alpha 0.8 -seed 7 -o big.phy -tree big.nwk
//	simseq -taxa 128 -sites 2000 -aamodel wag.dat -o prot.phy -tree prot.nwk
package main

import (
	"flag"
	"fmt"
	"os"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "simseq:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("simseq", flag.ContinueOnError)
	taxa := fs.Int("taxa", 64, "number of taxa")
	sites := fs.Int("sites", 1000, "alignment width")
	alpha := fs.Float64("alpha", 0.8, "Gamma shape for rate heterogeneity (0 = homogeneous)")
	seed := fs.Int64("seed", 1, "random seed")
	aa := fs.Bool("aa", false, "simulate amino-acid data (Poisson model)")
	aaModel := fs.String("aamodel", "", "simulate protein data under this PAML .dat matrix (implies -aa)")
	fastaOut := fs.Bool("fasta", false, "write FASTA instead of PHYLIP")
	outPath := fs.String("o", "", "alignment output path (default stdout)")
	treePath := fs.String("tree", "", "also write the true tree (Newick) here")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var gen *model.Model
	if *aaModel != "" {
		f, err := os.Open(*aaModel)
		if err != nil {
			return err
		}
		gen, err = model.ReadPAML(f, *aaModel)
		f.Close()
		if err != nil {
			return err
		}
		*aa = true
	}
	d, err := sim.NewDataset(sim.Config{
		Taxa: *taxa, Sites: *sites, GammaAlpha: *alpha, Seed: *seed, AA: *aa, Model: gen,
	})
	if err != nil {
		return err
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	if *fastaOut {
		err = bio.WriteFASTA(out, d.Alignment)
	} else {
		err = bio.WritePhylip(out, d.Alignment)
	}
	if err != nil {
		return err
	}
	if *treePath != "" {
		if err := os.WriteFile(*treePath, []byte(tree.WriteNewick(d.Tree)+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "simseq: %d taxa x %d sites (%d patterns), model %s, tree length %.3f\n",
		*taxa, *sites, d.Patterns.NumPatterns(), d.Model.Name, d.Tree.TotalLength())
	return nil
}
