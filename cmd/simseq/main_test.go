package main

import (
	"os"
	"path/filepath"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

func TestSimseqWritesPhylipAndTree(t *testing.T) {
	dir := t.TempDir()
	phy := filepath.Join(dir, "out.phy")
	nwk := filepath.Join(dir, "out.nwk")
	if err := run([]string{"-taxa", "12", "-sites", "80", "-seed", "5", "-o", phy, "-tree", nwk}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(phy)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	aln, err := bio.ReadPhylip(f, bio.NewDNAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if aln.NumTaxa() != 12 || aln.NumSites() != 80 {
		t.Fatalf("dims %dx%d", aln.NumTaxa(), aln.NumSites())
	}
	data, err := os.ReadFile(nwk)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := tree.ParseNewick(string(data))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 12 {
		t.Fatalf("tree tips = %d", tr.NumTips)
	}
	// Tree taxa match alignment rows.
	for _, name := range aln.Names {
		if tr.TipByName(name) == nil {
			t.Errorf("taxon %q not in tree", name)
		}
	}
}

func TestSimseqFASTAAndAA(t *testing.T) {
	dir := t.TempDir()
	fa := filepath.Join(dir, "out.fa")
	if err := run([]string{"-taxa", "5", "-sites", "30", "-aa", "-fasta", "-o", fa}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(fa)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	aln, err := bio.ReadFASTA(f, bio.NewAAAlphabet())
	if err != nil {
		t.Fatal(err)
	}
	if aln.NumTaxa() != 5 || aln.NumSites() != 30 {
		t.Fatalf("dims %dx%d", aln.NumTaxa(), aln.NumSites())
	}
}

func TestSimseqReproducible(t *testing.T) {
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.phy"), filepath.Join(dir, "b.phy")
	if err := run([]string{"-taxa", "8", "-sites", "50", "-seed", "9", "-o", a}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-taxa", "8", "-sites", "50", "-seed", "9", "-o", b}); err != nil {
		t.Fatal(err)
	}
	da, _ := os.ReadFile(a)
	db, _ := os.ReadFile(b)
	if string(da) != string(db) {
		t.Error("same seed must produce identical output")
	}
}

func TestSimseqErrors(t *testing.T) {
	if err := run([]string{"-taxa", "1"}); err == nil {
		t.Error("one taxon must fail")
	}
	if err := run([]string{"-taxa", "4", "-sites", "0"}); err == nil {
		t.Error("zero sites must fail")
	}
	if err := run([]string{"-taxa", "4", "-o", filepath.Join("no", "such", "dir", "x.phy")}); err == nil {
		t.Error("bad output path must fail")
	}
	if err := run([]string{"-bogusflag"}); err == nil {
		t.Error("unknown flag must fail")
	}
}
