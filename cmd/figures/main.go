// Command figures regenerates the data series behind every figure of
// the paper's evaluation (§4):
//
//	-fig 2    miss rates, four strategies, f in {0.25, 0.5, 0.75}
//	-fig 3    read rates with read skipping, same runs
//	-fig 4    Random strategy, f halved down to five slots
//	-fig 5    five full traversals: paging baseline vs out-of-core
//	-fig async  sync vs async pipeline stall ablation (not in the paper;
//	            the §5 prefetch-thread future work)
//	-fig kernels  generic vs DNA-specialised compute kernels + P cache
//	              (not in the paper; compute-side ablation)
//	-fig protein  generic vs aa20 protein kernels plus the f32 precision
//	              trade (not in the paper; throughput round 2 ablation)
//	-fig resize  miss-rate trajectory as a LIVE pool is halved mid-run,
//	             four strategies (not in the paper; the runtime
//	             resource governor's ablation)
//	-fig batching  service daemon's request coalescing: N concurrent
//	               evaluates in shared engine passes vs N independent
//	               passes, bit-identical lnL (not in the paper)
//	-fig tiers  tiered vector storage: local FileStore baseline vs
//	            cold / warm / recompute-policy arms over a remote
//	            object store behind a write-back cache, per injected
//	            RTT; bit-identical lnL (not in the paper)
//	-fig timeline  Chrome trace of a fully instrumented run (compute +
//	               I/O worker lanes); explicit only — it writes the
//	               trace JSON to -trace-out, not stdout
//	-fig all  everything except timeline (default)
//
// Default dimensions are CI-scaled; pass -full for the paper's own
// dimensions (1288 taxa for Figures 2-4; a multi-GiB footprint sweep
// for Figure 5 — expect a long run), or set -taxa/-sites directly
// (e.g. -taxa 1908 -sites 1424 for the paper's supplement dataset).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"oocphylo/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "figures:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	fig := fs.String("fig", "all", "which figure to regenerate: 2, 3, 4, 5, async, kernels, protein, resize, batching, tiers or all")
	taxa := fs.Int("taxa", 0, "taxa for figures 2-4 (0 = scaled default; paper: 1288 or 1908)")
	sites := fs.Int("sites", 0, "sites for figures 2-4 (0 = scaled default; paper: 1200 or 1424)")
	f5taxa := fs.Int("f5taxa", 0, "taxa for figure 5 (0 = scaled default; paper: 8192)")
	seed := fs.Int64("seed", 42, "random seed")
	rounds := fs.Int("rounds", 0, "SPR rounds for the search workload (0 = default)")
	full := fs.Bool("full", false, "use the paper's dimensions (slow)")
	traceOut := fs.String("trace-out", "TRACE_timeline.json", "Chrome trace output path for -fig timeline")
	faults := fs.Bool("faults", true, "inject I/O faults in -fig timeline so recovery markers appear")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiments.SearchWorkloadConfig{
		Taxa: *taxa, Sites: *sites, Seed: *seed, Rounds: *rounds,
	}
	f5 := experiments.Figure5Config{Taxa: *f5taxa, Seed: *seed}
	if *full {
		if cfg.Taxa == 0 {
			cfg.Taxa = 1288
		}
		if cfg.Sites == 0 {
			cfg.Sites = 1200
		}
		if f5.Taxa == 0 {
			f5.Taxa = 1024
			f5.RAMBytes = 256 << 20
			f5.Widths = []int{512, 1024, 2048, 4096, 8192, 16384}
		}
	}

	want := func(n string) bool { return *fig == "all" || *fig == n }
	out := os.Stdout

	if want("2") {
		fmt.Fprintln(out, "== Figure 2: vector miss rates per replacement strategy ==")
		res, err := experiments.RunFigure2(cfg, nil, false)
		if err != nil {
			return err
		}
		experiments.WriteMissRateTable(out, res, "tree search workload, no read skipping")
		fmt.Fprintln(out)
	}
	if want("3") {
		fmt.Fprintln(out, "== Figure 3: read rates with read skipping ==")
		res, err := experiments.RunFigure2(cfg, nil, true)
		if err != nil {
			return err
		}
		experiments.WriteMissRateTable(out, res, "tree search workload, read skipping enabled")
		fmt.Fprintln(out)
	}
	if want("4") {
		fmt.Fprintln(out, "== Figure 4: Random strategy, f halved to five slots ==")
		res, err := experiments.RunFigure4(cfg, 0.75, 5)
		if err != nil {
			return err
		}
		experiments.WriteMissRateTable(out, res, "tree search workload, RAND strategy")
		fmt.Fprintln(out)
	}
	if want("5") {
		fmt.Fprintln(out, "== Figure 5: standard (paging) vs out-of-core, 5 full traversals ==")
		rows, err := experiments.RunFigure5(f5)
		if err != nil {
			return err
		}
		experiments.WriteFigure5Table(out, rows, f5)
		fmt.Fprintln(out)
	}
	if want("async") {
		fmt.Fprintln(out, "== Async ablation: compute-thread stall, sync vs pipelined I/O ==")
		acfg := experiments.AsyncAblationConfig{Seed: *seed}
		if *full {
			acfg.Taxa, acfg.Sites = 256, 2048
		}
		rows, err := experiments.RunAsyncAblation(acfg)
		if err != nil {
			return err
		}
		experiments.WriteAsyncAblationTable(out, rows, acfg)
		fmt.Fprintln(out)
	}
	if want("kernels") {
		fmt.Fprintln(out, "== Kernel ablation: generic vs specialised PLF kernels ==")
		kcfg := experiments.KernelAblationConfig{Seed: *seed}
		if *full {
			kcfg.Taxa, kcfg.Sites = 256, 8192
		}
		res, err := experiments.RunKernelAblation(kcfg)
		if err != nil {
			return err
		}
		experiments.WriteKernelAblationTable(out, res, kcfg)
		fmt.Fprintln(out)
	}
	if want("protein") {
		fmt.Fprintln(out, "== Protein ablation: generic vs aa20 kernels, f64 vs f32 ==")
		pcfg := experiments.KernelAblationConfig{Seed: *seed, AA: true}
		if *full {
			pcfg.Taxa, pcfg.Sites = 128, 2000
		}
		res, err := experiments.RunKernelAblation(pcfg)
		if err != nil {
			return err
		}
		experiments.WriteKernelAblationTable(out, res, pcfg)
		prcfg := experiments.PrecisionAblationConfig{Seed: *seed}
		if *full {
			prcfg.Taxa, prcfg.Sites = 128, 4000
		}
		pres, err := experiments.RunPrecisionAblation(prcfg)
		if err != nil {
			return err
		}
		experiments.WritePrecisionAblationTable(out, pres, prcfg)
		fmt.Fprintln(out)
	}
	if want("resize") {
		fmt.Fprintln(out, "== Resize ablation: live pool shrink, four strategies ==")
		rcfg := experiments.ResizeAblationConfig{Taxa: *taxa, Sites: *sites, Seed: *seed}
		if *full {
			rcfg.Taxa, rcfg.Sites = 512, 1200
		}
		rows, err := experiments.RunResizeAblation(rcfg)
		if err != nil {
			return err
		}
		experiments.WriteResizeTable(out, rows, rcfg)
		ov, err := experiments.RunResizeOverhead(rcfg, 0)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "oscillation overhead: %d resizes (%d<->%d slots), fixed %v vs oscillating %v (%+.1f%%)\n",
			ov.Resizes, ov.Low, ov.Slots, ov.FixedTime.Round(time.Millisecond),
			ov.ResizeTime.Round(time.Millisecond), 100*ov.Overhead())
		fmt.Fprintln(out)
	}
	if want("batching") {
		fmt.Fprintln(out, "== Batching ablation: coalesced vs independent service evaluates ==")
		dir, err := os.MkdirTemp("", "oocraxml-batching")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		bcfg := experiments.BatchingAblationConfig{Seed: *seed, DataDir: dir}
		if *full {
			bcfg.Taxa, bcfg.Sites, bcfg.Requests = 128, 1200, 16
		}
		bres, err := experiments.RunBatchingAblation(bcfg)
		if err != nil {
			return err
		}
		experiments.WriteBatchingTable(out, bres)
		fmt.Fprintln(out)
	}
	if want("tiers") {
		fmt.Fprintln(out, "== Tier ablation: remote object store + local write-back cache ==")
		tcfg := experiments.TierAblationConfig{
			Workload: experiments.SearchWorkloadConfig{Seed: *seed},
		}
		if *full {
			// The acceptance workload: a 128-taxon search, warm cache
			// within 1.25x of the local FileStore baseline at 10 ms RTT.
			tcfg.Workload.Taxa, tcfg.Workload.Sites = 128, 1200
			tcfg.CheckWallClock = true
		} else {
			tcfg.Workload.Taxa, tcfg.Workload.Sites = 32, 120
			tcfg.Workload.SPRRadius, tcfg.Workload.Rounds = 3, 1
			tcfg.RTTs = []time.Duration{2 * time.Millisecond, 10 * time.Millisecond}
		}
		rows, err := experiments.RunTierAblation(tcfg)
		if err != nil {
			return err
		}
		experiments.WriteTierTable(out, rows, tcfg)
	}
	if *fig == "timeline" {
		fmt.Fprintln(out, "== Timeline: Chrome trace of an instrumented out-of-core run ==")
		tcfg := experiments.TimelineConfig{
			Taxa: *taxa, Sites: *sites, Seed: *seed, WithFaults: *faults,
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		res, err := experiments.RunTimeline(tcfg, f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		experiments.WriteTimelineSummary(out, tcfg, res)
		fmt.Fprintf(out, "trace written to %s (load in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
		return nil
	}
	if !want("2") && !want("3") && !want("4") && !want("5") && !want("async") && !want("kernels") && !want("protein") && !want("resize") && !want("batching") && !want("tiers") {
		return fmt.Errorf("unknown figure %q", *fig)
	}
	return nil
}
