package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout for the duration of fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		buf := make([]byte, 1<<20)
		var out []byte
		for {
			n, err := r.Read(buf)
			out = append(out, buf[:n]...)
			if err != nil {
				break
			}
		}
		done <- string(out)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func TestFiguresTinyRun(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "2", "-taxa", "24", "-sites", "40", "-rounds", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 2", "LRU", "LFU", "Topological", "miss%"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestFiguresFigure5Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "5", "-f5taxa", "24"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pagefaults") || !strings.Contains(out, "ooc-lru") {
		t.Errorf("figure 5 output malformed:\n%s", out)
	}
}

func TestFiguresTimelineTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	trace := filepath.Join(t.TempDir(), "trace.json")
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "timeline", "-taxa", "24", "-sites", "64", "-trace-out", trace})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Timeline trace", "final lnL", "[out-of-core manager]", "trace written to"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Error("trace has no events")
	}
}

func TestFiguresUnknown(t *testing.T) {
	if _, err := captureStdout(t, func() error {
		return run([]string{"-fig", "9"})
	}); err == nil {
		t.Error("unknown figure must fail")
	}
	if _, err := captureStdout(t, func() error {
		return run([]string{"-nope"})
	}); err == nil {
		t.Error("unknown flag must fail")
	}
}

func TestFiguresFig3And4Tiny(t *testing.T) {
	if testing.Short() {
		t.Skip("figure regeneration is slow")
	}
	out, err := captureStdout(t, func() error {
		return run([]string{"-fig", "3", "-taxa", "24", "-sites", "40", "-rounds", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "read skipping enabled") {
		t.Errorf("figure 3 output malformed:\n%s", out)
	}
	out, err = captureStdout(t, func() error {
		return run([]string{"-fig", "4", "-taxa", "24", "-sites", "40", "-rounds", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "RAND strategy") {
		t.Errorf("figure 4 output malformed:\n%s", out)
	}
}
