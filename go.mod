module oocphylo

go 1.22
