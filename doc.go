// Package oocphylo reproduces Izquierdo-Carrasco & Stamatakis,
// "Computing the Phylogenetic Likelihood Function Out-of-Core"
// (IPDPS Workshops / HICOMB 2011): a from-scratch Go implementation of
// the phylogenetic likelihood function (Felsenstein pruning with
// GTR-class models and discrete-Γ rate heterogeneity, Newton-Raphson
// branch optimisation, lazy-SPR tree search) whose ancestral
// probability vectors can live behind an out-of-core slot manager with
// pluggable replacement strategies, pinning and read skipping.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-versus-measured record. The benchmarks
// in bench_test.go regenerate every figure of the paper's evaluation.
package oocphylo
