// Package parsimony implements Fitch parsimony over the bit-mask state
// encoding of package bio, plus randomized stepwise-addition tree
// construction — the method RAxML uses to build its starting trees
// (the paper's §4.1 experiments start from exactly such trees). The
// ambiguity semantics are free: a tip's IUPAC mask is its Fitch state
// set.
package parsimony

import (
	"fmt"
	"math"
	"math/rand"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

// Score returns the Fitch parsimony score (minimum number of state
// changes) of pats on t: one post-order pass per site pattern,
// weighted. The score of an unrooted tree is independent of the
// traversal anchor.
func Score(t *tree.Tree, pats *bio.Patterns) (int, error) {
	rows, err := tipRows(t, pats)
	if err != nil {
		return 0, err
	}
	if t.NumTips == 2 {
		// Single branch: changes where the two masks are disjoint.
		total := 0
		for p, w := range pats.Weights {
			if pats.Columns[rows[0]][p]&pats.Columns[rows[1]][p] == 0 {
				total += w
			}
		}
		return total, nil
	}
	nPat := pats.NumPatterns()
	sets := make([]bio.StateMask, len(t.Nodes)*nPat)
	steps := tree.FullTraversal(t, t.Edges[0])
	total := 0
	for _, s := range steps {
		l := nodeSets(sets, pats, rows, s.Left, nPat)
		r := nodeSets(sets, pats, rows, s.Right, nPat)
		dst := sets[s.Node.Index*nPat : (s.Node.Index+1)*nPat]
		for p := 0; p < nPat; p++ {
			inter := l[p] & r[p]
			if inter == 0 {
				dst[p] = l[p] | r[p]
				total += pats.Weights[p]
			} else {
				dst[p] = inter
			}
		}
	}
	// Close the loop across the anchor edge.
	e := t.Edges[0]
	a := nodeSets(sets, pats, rows, e.N[0], nPat)
	b := nodeSets(sets, pats, rows, e.N[1], nPat)
	for p := 0; p < nPat; p++ {
		if a[p]&b[p] == 0 {
			total += pats.Weights[p]
		}
	}
	return total, nil
}

// nodeSets returns the Fitch set slice for a node, materialising tip
// masks on first use.
func nodeSets(sets []bio.StateMask, pats *bio.Patterns, rows []int, n *tree.Node, nPat int) []bio.StateMask {
	out := sets[n.Index*nPat : (n.Index+1)*nPat]
	if n.IsTip() {
		copy(out, pats.Columns[rows[n.Index]])
	}
	return out
}

// tipRows maps tree tip indices to alignment rows by name.
func tipRows(t *tree.Tree, pats *bio.Patterns) ([]int, error) {
	rows := make([]int, t.NumTips)
	for ti := 0; ti < t.NumTips; ti++ {
		rows[ti] = -1
		for r, name := range pats.Names {
			if name == t.Nodes[ti].Name {
				rows[ti] = r
				break
			}
		}
		if rows[ti] < 0 {
			return nil, fmt.Errorf("parsimony: tip %q missing from alignment", t.Nodes[ti].Name)
		}
	}
	return rows, nil
}

// StepwiseAddition builds a tree by randomized stepwise addition: taxa
// are shuffled, the first three form a triplet, and each further taxon
// is inserted into the branch minimising the incremental parsimony
// cost, estimated per branch from bidirectional Fitch sets (the
// standard quick-add heuristic). Branch lengths are uniform
// placeholders for the ML optimiser to refine. Deterministic given rng.
func StepwiseAddition(pats *bio.Patterns, rng *rand.Rand) (*tree.Tree, error) {
	n := pats.NumTaxa()
	if n < 2 {
		return nil, fmt.Errorf("parsimony: need at least 2 taxa, got %d", n)
	}
	order := rng.Perm(n)
	if n == 2 {
		return tree.NewPair(pats.Names[0], pats.Names[1], tree.DefaultBranchLength), nil
	}
	t := tree.NewTriplet(
		[3]string{pats.Names[order[0]], pats.Names[order[1]], pats.Names[order[2]]},
		[3]float64{tree.DefaultBranchLength, tree.DefaultBranchLength, tree.DefaultBranchLength})

	nPat := pats.NumPatterns()
	for k := 3; k < n; k++ {
		row := order[k]
		down, up, err := directedSets(t, pats, nPat)
		if err != nil {
			return nil, err
		}
		mask := pats.Columns[row]
		bestEdge, bestCost := -1, math.MaxInt
		for _, e := range t.Edges {
			// The Fitch state set *on* edge e: the intersection of the
			// two directed sets when they agree, their union when a
			// change already sits on e. Inserting the new tip costs a
			// change exactly where its mask misses that set.
			cost := 0
			d := down[e.Index*nPat : (e.Index+1)*nPat]
			u := up[e.Index*nPat : (e.Index+1)*nPat]
			for p := 0; p < nPat; p++ {
				edgeSet := d[p] & u[p]
				if edgeSet == 0 {
					edgeSet = d[p] | u[p]
				}
				if edgeSet&mask[p] == 0 {
					cost += pats.Weights[p]
					if cost >= bestCost {
						break
					}
				}
			}
			if cost < bestCost {
				bestCost = cost
				bestEdge = e.Index
			}
		}
		t.GraftTip(pats.Names[row], t.Edges[bestEdge], tree.DefaultBranchLength)
	}
	return t, t.Check()
}

// directedSets computes, for every edge e = {N[0], N[1]}, the Fitch set
// of the subtree behind N[0] (down) and behind N[1] (up), i.e. the two
// state sets that meet across e. Tips' sets are their masks.
func directedSets(t *tree.Tree, pats *bio.Patterns, nPat int) (down, up []bio.StateMask, err error) {
	rows, err := tipRows(t, pats)
	if err != nil {
		return nil, nil, err
	}
	nE := len(t.Edges)
	down = make([]bio.StateMask, nE*nPat)
	up = make([]bio.StateMask, nE*nPat)

	// setBehind(v, via) = Fitch set of the subtree containing v when
	// edge `via` is removed, written into out.
	var fill func(v *tree.Node, via *tree.Edge, out []bio.StateMask)
	fill = func(v *tree.Node, via *tree.Edge, out []bio.StateMask) {
		if v.IsTip() {
			copy(out, pats.Columns[rows[v.Index]])
			return
		}
		first := true
		var buf []bio.StateMask
		for _, e := range v.Adj {
			if e == via {
				continue
			}
			child := childSet(e, v, nPat, down, up)
			if first {
				copy(out, child)
				first = false
				continue
			}
			buf = child
		}
		for p := 0; p < nPat; p++ {
			if inter := out[p] & buf[p]; inter != 0 {
				out[p] = inter
			} else {
				out[p] |= buf[p]
			}
		}
	}
	// Memoised recursion: compute each directed set once, children first.
	var compute func(v *tree.Node, via *tree.Edge) []bio.StateMask
	computed := make(map[int64]bool, 2*nE)
	key := func(e *tree.Edge, towardN0 bool) int64 {
		k := int64(e.Index) << 1
		if towardN0 {
			k |= 1
		}
		return k
	}
	compute = func(v *tree.Node, via *tree.Edge) []bio.StateMask {
		var out []bio.StateMask
		if via.N[0] == v {
			out = down[via.Index*nPat : (via.Index+1)*nPat]
		} else {
			out = up[via.Index*nPat : (via.Index+1)*nPat]
		}
		k := key(via, via.N[0] == v)
		if computed[k] {
			return out
		}
		// Ensure children are computed first.
		if !v.IsTip() {
			for _, e := range v.Adj {
				if e != via {
					compute(e.Other(v), e)
				}
			}
		}
		fill(v, via, out)
		computed[k] = true
		return out
	}
	for _, e := range t.Edges {
		compute(e.N[0], e)
		compute(e.N[1], e)
	}
	return down, up, nil
}

// childSet fetches the already-computed directed set for the subtree
// containing e.Other(parent) behind edge e.
func childSet(e *tree.Edge, parent *tree.Node, nPat int, down, up []bio.StateMask) []bio.StateMask {
	if e.N[0] == parent {
		// Subtree behind N[1].
		return up[e.Index*nPat : (e.Index+1)*nPat]
	}
	return down[e.Index*nPat : (e.Index+1)*nPat]
}
