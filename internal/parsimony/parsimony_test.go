package parsimony

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oocphylo/internal/bio"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func pats(t *testing.T, rows [][2]string) *bio.Patterns {
	t.Helper()
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	for _, r := range rows {
		if err := a.AddString(r[0], r[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := bio.Compress(a)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestScoreHandComputed(t *testing.T) {
	// ((a,b),(c,d)) with site patterns:
	//  AACC on ab|cd: 1 change;  ACAC: 2;  AAAA: 0;  ACGT: 3.
	tr, err := tree.ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	if err != nil {
		t.Fatal(err)
	}
	p := pats(t, [][2]string{
		{"a", "AAAA"},
		{"b", "ACAC"},
		{"c", "CAAG"},
		{"d", "CCAT"},
	})
	// Columns: ACCC? Let's recount column-wise:
	//  col1: a=A b=A c=C d=C -> 1
	//  col2: A C A C -> 2
	//  col3: A A A A -> 0
	//  col4: A C G T -> 3
	got, err := Score(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 6 {
		t.Errorf("score = %d, want 6", got)
	}
}

func TestScoreTwoTaxa(t *testing.T) {
	tr := tree.NewPair("a", "b", 0.1)
	p := pats(t, [][2]string{{"a", "AACN"}, {"b", "ACCC"}})
	// Sites: A/A match, A/C change, C/C match, N/C intersect (no change).
	got, err := Score(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("pair score = %d, want 1", got)
	}
}

func TestScoreAmbiguityIsFree(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:1,b:1,c:1);")
	p := pats(t, [][2]string{
		{"a", "R"}, // A or G
		{"b", "A"},
		{"c", "G"},
	})
	got, err := Score(tr, p)
	if err != nil {
		t.Fatal(err)
	}
	// R intersects both: one change between A and G is unavoidable.
	if got != 1 {
		t.Errorf("score = %d, want 1", got)
	}
}

func TestScoreAnchorInvariantProperty(t *testing.T) {
	// Parsimony of an unrooted tree must not depend on where the
	// traversal is anchored. Score() anchors at Edges[0]; compare with a
	// brute-force recomputation on a clone whose edge order is rotated.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d, err := sim.NewDataset(sim.Config{Taxa: 5 + rng.Intn(15), Sites: 30 + rng.Intn(60), Seed: seed})
		if err != nil {
			return false
		}
		s1, err := Score(d.Tree, d.Patterns)
		if err != nil {
			return false
		}
		// Rotate the edge slice: a different anchor.
		c := d.Tree.Clone()
		rot := 1 + rng.Intn(len(c.Edges)-1)
		rotated := append(append([]*tree.Edge(nil), c.Edges[rot:]...), c.Edges[:rot]...)
		for i, e := range rotated {
			e.Index = i
		}
		c.Edges = rotated
		s2, err := Score(c, d.Patterns)
		if err != nil {
			return false
		}
		return s1 == s2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestScoreErrorsOnMissingTaxon(t *testing.T) {
	tr, _ := tree.ParseNewick("(a:1,b:1,zzz:1);")
	p := pats(t, [][2]string{{"a", "A"}, {"b", "A"}, {"c", "A"}})
	if _, err := Score(tr, p); err == nil {
		t.Error("missing taxon must fail")
	}
}

func TestStepwiseAdditionBuildsValidTrees(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 30, Sites: 200, GammaAlpha: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := StepwiseAddition(d.Patterns, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 30 {
		t.Fatalf("tips = %d", tr.NumTips)
	}
	// Every taxon present.
	for _, name := range d.Patterns.Names {
		if tr.TipByName(name) == nil {
			t.Errorf("taxon %q missing", name)
		}
	}
}

func TestStepwiseAdditionBeatsRandomTopologies(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 24, Sites: 500, GammaAlpha: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := StepwiseAddition(d.Patterns, rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	swScore, err := Score(sw, d.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	// Average over a few random topologies.
	names := append([]string(nil), d.Patterns.Names...)
	worse := 0
	for trial := 0; trial < 5; trial++ {
		rt, err := tree.RandomTopology(names, rand.New(rand.NewSource(int64(100+trial))), 0.05, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		rs, err := Score(rt, d.Patterns)
		if err != nil {
			t.Fatal(err)
		}
		if rs > swScore {
			worse++
		}
	}
	if worse < 4 {
		t.Errorf("stepwise addition (score %d) should beat nearly all random topologies, beat %d of 5", swScore, worse)
	}
	// And it should land close to the generating topology.
	if rf := tree.RFDistance(sw, d.Tree); rf > 2*(d.Tree.NumTips-3)/3 {
		t.Errorf("stepwise tree unreasonably far from truth: RF = %d", rf)
	}
}

func TestStepwiseAdditionDeterministicGivenSeed(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 15, Sites: 120, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	a, err := StepwiseAddition(d.Patterns, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := StepwiseAddition(d.Patterns, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if tree.RFDistance(a, b) != 0 {
		t.Error("same seed must give the same tree")
	}
	c, err := StepwiseAddition(d.Patterns, rand.New(rand.NewSource(8)))
	if err != nil {
		t.Fatal(err)
	}
	_ = c // different seed may or may not differ; only validity matters
}

func TestStepwiseAdditionSmall(t *testing.T) {
	p := pats(t, [][2]string{{"a", "ACGT"}, {"b", "ACGA"}})
	tr, err := StepwiseAddition(p, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 2 {
		t.Error("two-taxon stepwise wrong")
	}
	one := pats(t, [][2]string{{"a", "ACGT"}})
	if _, err := StepwiseAddition(one, rand.New(rand.NewSource(1))); err == nil {
		t.Error("one taxon must fail")
	}
}

func BenchmarkScore(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 64, Sites: 500, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Score(d.Tree, d.Patterns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepwiseAddition(b *testing.B) {
	d, err := sim.NewDataset(sim.Config{Taxa: 64, Sites: 300, Seed: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := StepwiseAddition(d.Patterns, rand.New(rand.NewSource(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
}
