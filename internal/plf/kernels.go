package plf

import (
	"fmt"
	"math"
)

// Kernel dispatch. The per-pattern-block inner loops of newview,
// evaluate and the derivative sum table are the PLF's hot paths; they
// are reached through the kernelSet interface so the engine can swap
// the fully generic k-state × c-category loops for state-count-
// specialised implementations (kernels_dna.go, kernels_aa.go) chosen
// once at construction from (nStates, nCat) — the tip-ness of a step is
// dispatched per call inside the set. Every specialised kernel performs
// the exact floating-point operation sequence of the generic one, so
// the kernel choice never changes a single output bit: the paper's
// exactness criterion (§4.1) holds across kernels the same way it holds
// across replacement strategies and worker counts.
//
// Every set is generic over the compute element type F (float32 or
// float64); the bit-exactness contract is per precision — see
// precision.go for the cross-precision semantics.

// Kernel mode names accepted by SetKernel and the oocraxml -kernel flag.
const (
	// KernelAuto picks the fastest kernel set for the engine's model
	// dimensions: DNA-unrolled for 4 states, the protein set for 20,
	// the cache-blocked generic set otherwise.
	KernelAuto = "auto"
	// KernelBlocked forces the cache-blocked generic set: the
	// arbitrary-k kernels that interleave four output-state
	// accumulation chains per pass (see kernels_aa.go). Bit-identical
	// to the generic loops for every k.
	KernelBlocked = "blocked"
	// KernelGeneric forces the generic loops and disables the
	// transition-matrix cache — the exact legacy compute path, kept as
	// the differential-testing baseline.
	KernelGeneric = "generic"
)

// nvArgs carries the resolved inputs of one newview call to its
// pattern-block kernels. Tip children are represented by their pattern
// code row and tip-sum table (code != nil); inner children by their
// ancestral vector and scale counters.
type nvArgs[F Float] struct {
	xl, xr, xp    []F
	scl, scr, scp []int32
	codeL, codeR  []uint16
	pmL, pmR      []F // nCat × k² transition matrices
	tsL, tsR      []F // nCat × nm × k tip-sum tables (tip children)
	prodTT        []F // nm × nm × nCat × k tip-pair products (tip×tip)
	nm            int
}

// evArgs carries the resolved inputs of one evaluate call. q is the
// endpoint whose data the P matrix is applied across; contrib receives
// the per-pattern weighted log-likelihood terms (always float64: the
// logarithmic tail runs in double precision in every mode).
type evArgs[F Float] struct {
	xp, xq       []F
	scp, scq     []int32
	codeP, codeQ []uint16
	pmQ          []F
	tsQ          []F
	contrib      []float64
	nm           int
}

// sumArgs carries the resolved endpoint data of one sum-table build.
type sumArgs[F Float] struct {
	xp, xq       []F
	codeP, codeQ []uint16
	nm           int
}

// kernelSet is the engine's compute-kernel vtable. Each method
// processes patterns [lo, hi) and must not touch state outside that
// block (the parallelFor contract). prepareNewview runs once per
// newview call before the fan-out, for call-wide precomputation.
type kernelSet[F Float] interface {
	name() string
	prepareNewview(e *Engine, cs *compute[F], a *nvArgs[F])
	newview(e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int)
	evaluate(e *Engine, cs *compute[F], a *evArgs[F], lo, hi int)
	sumTable(e *Engine, cs *compute[F], a *sumArgs[F], lo, hi int)
}

// selectKernelSet resolves a kernel mode for a model with nStates
// states. nCat-specific fast paths are chosen inside the returned set
// per call, so the set itself depends only on the state count.
func selectKernelSet[F Float](mode string, nStates int) (kernelSet[F], error) {
	switch mode {
	case KernelAuto:
		switch nStates {
		case 4:
			return dnaKernels[F]{}, nil
		case 20:
			return aaKernels[F]{}, nil
		}
		return blockedKernels[F]{}, nil
	case KernelBlocked:
		return blockedKernels[F]{}, nil
	case KernelGeneric:
		return genericKernels[F]{}, nil
	}
	return nil, fmt.Errorf("plf: unknown kernel mode %q (want %q, %q or %q)",
		mode, KernelAuto, KernelBlocked, KernelGeneric)
}

// SetKernel selects the compute-kernel set by mode (KernelAuto,
// KernelBlocked or KernelGeneric). KernelGeneric restores the exact
// legacy path: generic loops and no transition-matrix cache. Switching
// kernels never changes results — the differential tests enforce
// bit-identical vectors and likelihoods between modes.
func (e *Engine) SetKernel(mode string) error {
	if e.c32 != nil {
		return setKernel(e, e.c32, mode)
	}
	return setKernel(e, e.c64, mode)
}

func setKernel[F Float](e *Engine, cs *compute[F], mode string) error {
	ks, err := selectKernelSet[F](mode, e.nStates)
	if err != nil {
		return err
	}
	cs.kern = ks
	e.kernelMode = mode
	if mode == KernelGeneric {
		cs.pcache = nil
	} else if cs.pcache == nil {
		cs.pcache = newPCache[F]()
	}
	return nil
}

// KernelMode returns the configured kernel mode (KernelAuto by default).
func (e *Engine) KernelMode() string { return e.kernelMode }

// KernelName reports which kernel set is actually active ("dna4",
// "aa20", "blocked" or "generic") — under KernelAuto this depends on
// the model's state count.
func (e *Engine) KernelName() string {
	if e.c32 != nil {
		return e.c32.kern.name()
	}
	return e.c64.kern.name()
}

// pcacheEnabled reports whether the transition-matrix cache is active
// (always false under KernelGeneric).
func (e *Engine) pcacheEnabled() bool {
	if e.c32 != nil {
		return e.c32.pcache != nil
	}
	return e.c64.pcache != nil
}

// genericKernels holds the fully generic k-state × c-category loops:
// correct for every model, and the accumulation-order reference every
// specialised kernel must reproduce bit-for-bit.
type genericKernels[F Float] struct{}

func (genericKernels[F]) name() string                                 { return "generic" }
func (genericKernels[F]) prepareNewview(*Engine, *compute[F], *nvArgs[F]) {}

func (genericKernels[F]) newview(e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	k, C, nm := e.nStates, e.nCat, a.nm
	k2 := k * k
	var la, ra [32]F // k <= 32; fixed scratch avoids allocation
	for i := lo; i < hi; i++ {
		var cnt int32
		if a.scl != nil {
			cnt += a.scl[i]
		}
		if a.scr != nil {
			cnt += a.scr[i]
		}
		base := i * C * k
		blockMax := F(0)
		for c := 0; c < C; c++ {
			// Left factor per state.
			if a.codeL != nil {
				off := (c*nm + int(a.codeL[i])) * k
				copy(la[:k], a.tsL[off:off+k])
			} else {
				src := a.xl[base+c*k : base+(c+1)*k]
				p := a.pmL[c*k2 : (c+1)*k2]
				for s := 0; s < k; s++ {
					acc := F(0)
					row := p[s*k : (s+1)*k]
					for j := 0; j < k; j++ {
						acc += row[j] * src[j]
					}
					la[s] = acc
				}
			}
			if a.codeR != nil {
				off := (c*nm + int(a.codeR[i])) * k
				copy(ra[:k], a.tsR[off:off+k])
			} else {
				src := a.xr[base+c*k : base+(c+1)*k]
				p := a.pmR[c*k2 : (c+1)*k2]
				for s := 0; s < k; s++ {
					acc := F(0)
					row := p[s*k : (s+1)*k]
					for j := 0; j < k; j++ {
						acc += row[j] * src[j]
					}
					ra[s] = acc
				}
			}
			dst := a.xp[base+c*k : base+(c+1)*k]
			for s := 0; s < k; s++ {
				v := la[s] * ra[s]
				dst[s] = v
				if v > blockMax {
					blockMax = v
				}
			}
		}
		if blockMax < cs.minLik {
			for j := base; j < base+C*k; j++ {
				a.xp[j] *= cs.scaleFac
			}
			cnt++
		}
		// f32 denormal flush, identical to the scaleTail pass the
		// specialised kernels run (no-op in f64 mode where flush is 0).
		if cs.flush != 0 {
			for j := base; j < base+C*k; j++ {
				if a.xp[j] < cs.flush {
					a.xp[j] = 0
				}
			}
		}
		a.scp[i] = cnt
	}
}

func (genericKernels[F]) evaluate(e *Engine, cs *compute[F], a *evArgs[F], lo, hi int) {
	k, C, nm := e.nStates, e.nCat, a.nm
	k2 := k * k
	freqs := cs.freqs
	catW := F(1) / F(C)
	var ra [32]F
	for i := lo; i < hi; i++ {
		var cnt int32
		if a.scp != nil {
			cnt += a.scp[i]
		}
		if a.scq != nil {
			cnt += a.scq[i]
		}
		base := i * C * k
		site := F(0)
		for c := 0; c < C; c++ {
			// Right factor: (P x_q) per state, or tip lookup.
			if a.codeQ != nil {
				off := (c*nm + int(a.codeQ[i])) * k
				copy(ra[:k], a.tsQ[off:off+k])
			} else {
				src := a.xq[base+c*k : base+(c+1)*k]
				pm := a.pmQ[c*k2 : (c+1)*k2]
				for s := 0; s < k; s++ {
					acc := F(0)
					row := pm[s*k : (s+1)*k]
					for j := 0; j < k; j++ {
						acc += row[j] * src[j]
					}
					ra[s] = acc
				}
			}
			f := F(0)
			if a.codeP != nil {
				ind := cs.tipInd[int(a.codeP[i])*k : (int(a.codeP[i])+1)*k]
				for s := 0; s < k; s++ {
					f += freqs[s] * ind[s] * ra[s]
				}
			} else {
				src := a.xp[base+c*k : base+(c+1)*k]
				for s := 0; s < k; s++ {
					f += freqs[s] * src[s] * ra[s]
				}
			}
			site += f
		}
		site *= catW
		a.contrib[i] = siteTerm(e, cs, i, site, cnt)
	}
}

// siteTerm turns one pattern's raw site likelihood into its weighted
// log-likelihood contribution: underflow clamp, scale-counter
// correction, optional +I mixture, pattern weight. Shared by every
// evaluate kernel so the tail arithmetic is identical by construction.
// The tail always runs in float64: in f32 mode the site value widens
// once here, and the logarithm, scale correction and mixture never
// accumulate single-precision error.
func siteTerm[F Float](e *Engine, cs *compute[F], i int, site F, cnt int32) float64 {
	s := float64(site)
	if s <= 0 {
		// Fully underflowed pattern: clamp to the smallest
		// positive double so the search can continue.
		s = math.SmallestNonzeroFloat64
	}
	lnSite := math.Log(s) - float64(cnt)*cs.logScale
	if p := e.M.PInv; p > 0 {
		lnSite = mixInvariant(lnSite, p, e.linv[i])
	}
	return e.weights[i] * lnSite
}

func (genericKernels[F]) sumTable(e *Engine, cs *compute[F], a *sumArgs[F], lo, hi int) {
	k, C := e.nStates, e.nCat
	freqs := cs.freqs
	evec, ievec := cs.evec, cs.ievec
	var left, right [32]F
	for i := lo; i < hi; i++ {
		base := i * C * k
		for c := 0; c < C; c++ {
			// left_k = sum_s pi_s x_p[s] V[s][k]
			var lsrc []F
			if a.codeP != nil {
				lsrc = cs.tipInd[int(a.codeP[i])*k : (int(a.codeP[i])+1)*k]
			} else {
				lsrc = a.xp[base+c*k : base+(c+1)*k]
			}
			for kk := 0; kk < k; kk++ {
				left[kk] = 0
			}
			for s := 0; s < k; s++ {
				w := freqs[s] * lsrc[s]
				if w == 0 {
					continue
				}
				row := evec[s*k : (s+1)*k]
				for kk := 0; kk < k; kk++ {
					left[kk] += w * row[kk]
				}
			}
			// right_k = sum_j V^-1[k][j] x_q[j]
			var rsrc []F
			if a.codeQ != nil {
				rsrc = cs.tipInd[int(a.codeQ[i])*k : (int(a.codeQ[i])+1)*k]
			} else {
				rsrc = a.xq[base+c*k : base+(c+1)*k]
			}
			for kk := 0; kk < k; kk++ {
				acc := F(0)
				row := ievec[kk*k : (kk+1)*k]
				for j := 0; j < k; j++ {
					acc += row[j] * rsrc[j]
				}
				right[kk] = acc
			}
			dst := cs.sumTab[base+c*k : base+(c+1)*k]
			for kk := 0; kk < k; kk++ {
				dst[kk] = left[kk] * right[kk]
			}
		}
	}
}

// scaleTail applies the per-pattern scaling rule to one C·k block:
// identical comparisons and multiplications to the generic tail.
// Shared by every specialised newview kernel. The flush pass (f32 only;
// flush is 0 in f64 mode and entries are non-negative, so it never
// fires there) zeroes entries so far below the scaling floor that they
// are beneath float32 resolution of the dominant states — without it,
// improbable-state entries drift into the float32 denormal range and
// every operation touching them takes a microcode assist.
func scaleTail[F Float](dst []F, scp []int32, i int, cnt int32, blockMax, minLik, scaleFac, flush F) {
	if blockMax < minLik {
		for j := range dst {
			dst[j] *= scaleFac
		}
		cnt++
	}
	if flush != 0 {
		for j := range dst {
			if dst[j] < flush {
				dst[j] = 0
			}
		}
	}
	scp[i] = cnt
}
