package plf

import (
	"fmt"
	"math"
)

// Kernel dispatch. The per-pattern-block inner loops of newview,
// evaluate and the derivative sum table are the PLF's hot paths; they
// are reached through the kernelSet interface so the engine can swap
// the fully generic k-state × c-category loops for state-count-
// specialised implementations (kernels_dna.go) chosen once at
// construction from (nStates, nCat) — the tip-ness of a step is
// dispatched per call inside the set. Every specialised kernel performs
// the exact floating-point operation sequence of the generic one, so
// the kernel choice never changes a single output bit: the paper's
// exactness criterion (§4.1) holds across kernels the same way it holds
// across replacement strategies and worker counts.

// Kernel mode names accepted by SetKernel and the oocraxml -kernel flag.
const (
	// KernelAuto picks the fastest kernel set for the engine's model
	// dimensions (DNA-unrolled for 4 states, generic otherwise).
	KernelAuto = "auto"
	// KernelGeneric forces the generic loops and disables the
	// transition-matrix cache — the exact legacy compute path, kept as
	// the differential-testing baseline.
	KernelGeneric = "generic"
)

// nvArgs carries the resolved inputs of one newview call to its
// pattern-block kernels. Tip children are represented by their pattern
// code row and tip-sum table (code != nil); inner children by their
// ancestral vector and scale counters.
type nvArgs struct {
	xl, xr, xp    []float64
	scl, scr, scp []int32
	codeL, codeR  []uint16
	pmL, pmR      []float64 // nCat × k² transition matrices
	tsL, tsR      []float64 // nCat × nm × k tip-sum tables (tip children)
	prodTT        []float64 // nm × nm × nCat × k tip-pair products (DNA tip×tip)
	nm            int
}

// evArgs carries the resolved inputs of one evaluate call. q is the
// endpoint whose data the P matrix is applied across; contrib receives
// the per-pattern weighted log-likelihood terms.
type evArgs struct {
	xp, xq       []float64
	scp, scq     []int32
	codeP, codeQ []uint16
	pmQ          []float64
	tsQ          []float64
	contrib      []float64
	nm           int
}

// sumArgs carries the resolved endpoint data of one sum-table build.
type sumArgs struct {
	xp, xq       []float64
	codeP, codeQ []uint16
	nm           int
}

// kernelSet is the engine's compute-kernel vtable. Each method
// processes patterns [lo, hi) and must not touch state outside that
// block (the parallelFor contract). prepareNewview runs once per
// newview call before the fan-out, for call-wide precomputation.
type kernelSet interface {
	name() string
	prepareNewview(e *Engine, a *nvArgs)
	newview(e *Engine, a *nvArgs, lo, hi int)
	evaluate(e *Engine, a *evArgs, lo, hi int)
	sumTable(e *Engine, a *sumArgs, lo, hi int)
}

// selectKernelSet resolves a kernel mode for a model with nStates
// states. nCat-specific fast paths are chosen inside the returned set
// per call, so the set itself depends only on the state count.
func selectKernelSet(mode string, nStates int) (kernelSet, error) {
	switch mode {
	case KernelAuto:
		if nStates == 4 {
			return dnaKernels{}, nil
		}
		return genericKernels{}, nil
	case KernelGeneric:
		return genericKernels{}, nil
	}
	return nil, fmt.Errorf("plf: unknown kernel mode %q (want %q or %q)", mode, KernelAuto, KernelGeneric)
}

// SetKernel selects the compute-kernel set by mode (KernelAuto or
// KernelGeneric). KernelGeneric restores the exact legacy path: generic
// loops and no transition-matrix cache. Switching kernels never changes
// results — the differential tests enforce bit-identical vectors and
// likelihoods between modes.
func (e *Engine) SetKernel(mode string) error {
	ks, err := selectKernelSet(mode, e.nStates)
	if err != nil {
		return err
	}
	e.kern = ks
	e.kernelMode = mode
	if mode == KernelGeneric {
		e.pcache = nil
	} else if e.pcache == nil {
		e.pcache = newPCache()
	}
	return nil
}

// KernelMode returns the configured kernel mode (KernelAuto by default).
func (e *Engine) KernelMode() string { return e.kernelMode }

// KernelName reports which kernel set is actually active ("dna4" or
// "generic") — under KernelAuto this depends on the model's state count.
func (e *Engine) KernelName() string { return e.kern.name() }

// genericKernels holds the fully generic k-state × c-category loops:
// correct for every model, and the accumulation-order reference every
// specialised kernel must reproduce bit-for-bit.
type genericKernels struct{}

func (genericKernels) name() string                      { return "generic" }
func (genericKernels) prepareNewview(*Engine, *nvArgs)   {}

func (genericKernels) newview(e *Engine, a *nvArgs, lo, hi int) {
	k, C, nm := e.nStates, e.nCat, a.nm
	k2 := k * k
	var la, ra [32]float64 // k <= 20; fixed scratch avoids allocation
	for i := lo; i < hi; i++ {
		var cnt int32
		if a.scl != nil {
			cnt += a.scl[i]
		}
		if a.scr != nil {
			cnt += a.scr[i]
		}
		base := i * C * k
		blockMax := 0.0
		for c := 0; c < C; c++ {
			// Left factor per state.
			if a.codeL != nil {
				off := (c*nm + int(a.codeL[i])) * k
				copy(la[:k], a.tsL[off:off+k])
			} else {
				src := a.xl[base+c*k : base+(c+1)*k]
				p := a.pmL[c*k2 : (c+1)*k2]
				for s := 0; s < k; s++ {
					acc := 0.0
					row := p[s*k : (s+1)*k]
					for j := 0; j < k; j++ {
						acc += row[j] * src[j]
					}
					la[s] = acc
				}
			}
			if a.codeR != nil {
				off := (c*nm + int(a.codeR[i])) * k
				copy(ra[:k], a.tsR[off:off+k])
			} else {
				src := a.xr[base+c*k : base+(c+1)*k]
				p := a.pmR[c*k2 : (c+1)*k2]
				for s := 0; s < k; s++ {
					acc := 0.0
					row := p[s*k : (s+1)*k]
					for j := 0; j < k; j++ {
						acc += row[j] * src[j]
					}
					ra[s] = acc
				}
			}
			dst := a.xp[base+c*k : base+(c+1)*k]
			for s := 0; s < k; s++ {
				v := la[s] * ra[s]
				dst[s] = v
				if v > blockMax {
					blockMax = v
				}
			}
		}
		if blockMax < minLikelihood {
			for j := base; j < base+C*k; j++ {
				a.xp[j] *= scaleFactor
			}
			cnt++
		}
		a.scp[i] = cnt
	}
}

func (genericKernels) evaluate(e *Engine, a *evArgs, lo, hi int) {
	k, C, nm := e.nStates, e.nCat, a.nm
	k2 := k * k
	freqs := e.M.Freqs
	catW := 1.0 / float64(C)
	var ra [32]float64
	for i := lo; i < hi; i++ {
		var cnt int32
		if a.scp != nil {
			cnt += a.scp[i]
		}
		if a.scq != nil {
			cnt += a.scq[i]
		}
		base := i * C * k
		site := 0.0
		for c := 0; c < C; c++ {
			// Right factor: (P x_q) per state, or tip lookup.
			if a.codeQ != nil {
				off := (c*nm + int(a.codeQ[i])) * k
				copy(ra[:k], a.tsQ[off:off+k])
			} else {
				src := a.xq[base+c*k : base+(c+1)*k]
				pm := a.pmQ[c*k2 : (c+1)*k2]
				for s := 0; s < k; s++ {
					acc := 0.0
					row := pm[s*k : (s+1)*k]
					for j := 0; j < k; j++ {
						acc += row[j] * src[j]
					}
					ra[s] = acc
				}
			}
			f := 0.0
			if a.codeP != nil {
				ind := e.tipInd[int(a.codeP[i])*k : (int(a.codeP[i])+1)*k]
				for s := 0; s < k; s++ {
					f += freqs[s] * ind[s] * ra[s]
				}
			} else {
				src := a.xp[base+c*k : base+(c+1)*k]
				for s := 0; s < k; s++ {
					f += freqs[s] * src[s] * ra[s]
				}
			}
			site += f
		}
		site *= catW
		a.contrib[i] = e.siteTerm(i, site, cnt)
	}
}

// siteTerm turns one pattern's raw site likelihood into its weighted
// log-likelihood contribution: underflow clamp, scale-counter
// correction, optional +I mixture, pattern weight. Shared by every
// evaluate kernel so the tail arithmetic is identical by construction.
func (e *Engine) siteTerm(i int, site float64, cnt int32) float64 {
	if site <= 0 {
		// Fully underflowed pattern: clamp to the smallest
		// positive double so the search can continue.
		site = math.SmallestNonzeroFloat64
	}
	lnSite := math.Log(site) - float64(cnt)*logScaleFactor
	if p := e.M.PInv; p > 0 {
		lnSite = mixInvariant(lnSite, p, e.linv[i])
	}
	return e.weights[i] * lnSite
}

func (genericKernels) sumTable(e *Engine, a *sumArgs, lo, hi int) {
	k, C := e.nStates, e.nCat
	freqs := e.M.Freqs
	evec, ievec := e.M.Evec, e.M.Ievec
	var left, right [32]float64
	for i := lo; i < hi; i++ {
		base := i * C * k
		for c := 0; c < C; c++ {
			// left_k = sum_s pi_s x_p[s] V[s][k]
			var lsrc []float64
			if a.codeP != nil {
				lsrc = e.tipInd[int(a.codeP[i])*k : (int(a.codeP[i])+1)*k]
			} else {
				lsrc = a.xp[base+c*k : base+(c+1)*k]
			}
			for kk := 0; kk < k; kk++ {
				left[kk] = 0
			}
			for s := 0; s < k; s++ {
				w := freqs[s] * lsrc[s]
				if w == 0 {
					continue
				}
				row := evec[s*k : (s+1)*k]
				for kk := 0; kk < k; kk++ {
					left[kk] += w * row[kk]
				}
			}
			// right_k = sum_j V^-1[k][j] x_q[j]
			var rsrc []float64
			if a.codeQ != nil {
				rsrc = e.tipInd[int(a.codeQ[i])*k : (int(a.codeQ[i])+1)*k]
			} else {
				rsrc = a.xq[base+c*k : base+(c+1)*k]
			}
			for kk := 0; kk < k; kk++ {
				acc := 0.0
				row := ievec[kk*k : (kk+1)*k]
				for j := 0; j < k; j++ {
					acc += row[j] * rsrc[j]
				}
				right[kk] = acc
			}
			dst := e.sumTab[base+c*k : base+(c+1)*k]
			for kk := 0; kk < k; kk++ {
				dst[kk] = left[kk] * right[kk]
			}
		}
	}
}
