package plf

// Protein (k=20) and cache-blocked generic kernels — "Throughput
// round 2". The generic loops compute each output state's matrix-vector
// sum in its own pass: one accumulation chain at a time, fully
// serialised through the floating-point add latency. These kernels keep
// every chain's operation sequence EXACTLY as the generic kernel runs
// it (zero-initialised accumulator, += terms in ascending j) but
// interleave four independent chains per pass (eight in the
// inner×inner case: four left + four right), so the CPU can overlap
// their add latencies. Interleaving independent chains reassociates
// nothing — each accumulator's value history is bit-for-bit the generic
// one — which is how the speedup coexists with the paper's §4.1
// exactness criterion. Array-pointer casts ((*[400]F], (*[20]F)) hoist
// the bounds checks the generic slice indexing pays per element.
//
// aaKernels hard-codes k=20 so the s/j trip counts are compile-time
// constants; blockedKernels is the same scheme for arbitrary k with a
// scalar remainder loop (in generic order) when k%4 != 0. The tip×tip
// case reuses the DNA set's mask-pair product-table trick, guarded by
// prodTTMaxEntries because nm² can be large for proteins.

// prodTTMaxEntries caps the tip×tip product table (elements, not
// bytes): C·nm²·k beyond this skips the table and computes each
// pattern's products directly — the same multiplies in the same order,
// just unamortised. 2²¹ elements is 16 MiB of float64, comfortably
// cache-resident territory's upper edge.
const prodTTMaxEntries = 1 << 21

// prepareProdTT builds the tip×tip mask-pair product table
// prod[((ml*nm+mr)*C+c)*k+s] = tsL[c,ml,s]·tsR[c,mr,s] into cs.prodTT,
// or leaves a.prodTT nil when the table would exceed prodTTMaxEntries.
func prepareProdTT[F Float](e *Engine, cs *compute[F], a *nvArgs[F], k int) {
	if a.codeL == nil || a.codeR == nil {
		return
	}
	C, nm := e.nCat, a.nm
	stride := C * k
	need := nm * nm * stride
	if need > prodTTMaxEntries {
		return
	}
	if cap(cs.prodTT) < need {
		cs.prodTT = make([]F, need)
	}
	prod := cs.prodTT[:need]
	for ml := 0; ml < nm; ml++ {
		for mr := 0; mr < nm; mr++ {
			for c := 0; c < C; c++ {
				l := a.tsL[(c*nm+ml)*k:][:k]
				r := a.tsR[(c*nm+mr)*k:][:k]
				dst := prod[(ml*nm+mr)*stride+c*k:][:k]
				for s := 0; s < k; s++ {
					dst[s] = l[s] * r[s]
				}
			}
		}
	}
	a.prodTT = prod
}

// newviewTT handles the tip×tip newview case for any k: a table copy
// per pattern when prepareProdTT built the table, otherwise the direct
// per-pattern products (identical multiplies, identical order).
func newviewTT[F Float](e *Engine, cs *compute[F], a *nvArgs[F], k, lo, hi int) {
	C, nm := e.nCat, a.nm
	stride := C * k
	xp, scp := a.xp, a.scp
	codeL, codeR := a.codeL, a.codeR
	if prod := a.prodTT; prod != nil {
		for i := lo; i < hi; i++ {
			dst := xp[i*stride : i*stride+stride]
			pair := (int(codeL[i])*nm + int(codeR[i])) * stride
			copy(dst, prod[pair:pair+stride])
			blockMax := F(0)
			for _, v := range dst {
				if v > blockMax {
					blockMax = v
				}
			}
			scaleTail(dst, scp, i, 0, blockMax, cs.minLik, cs.scaleFac, cs.flush)
		}
		return
	}
	tsL, tsR := a.tsL, a.tsR
	for i := lo; i < hi; i++ {
		base := i * stride
		ml, mr := int(codeL[i])*k, int(codeR[i])*k
		blockMax := F(0)
		for c := 0; c < C; c++ {
			l := tsL[c*nm*k+ml:][:k]
			r := tsR[c*nm*k+mr:][:k]
			dst := xp[base+c*k:][:k]
			for s := 0; s < k; s++ {
				v := l[s] * r[s]
				dst[s] = v
				if v > blockMax {
					blockMax = v
				}
			}
		}
		scaleTail(xp[base:base+stride], scp, i, 0, blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// ---------------------------------------------------------------------
// aaKernels: k = 20 hard-coded.

type aaKernels[F Float] struct{}

func (aaKernels[F]) name() string { return "aa20" }

func (aaKernels[F]) prepareNewview(e *Engine, cs *compute[F], a *nvArgs[F]) {
	prepareProdTT(e, cs, a, 20)
}

func (aaKernels[F]) newview(e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	switch {
	case a.codeL != nil && a.codeR != nil:
		newviewTT(e, cs, a, 20, lo, hi)
	case a.codeL != nil:
		aaNewviewTI(e, cs, a, a.codeL, a.tsL, a.xr, a.pmR, a.scr, lo, hi)
	case a.codeR != nil:
		aaNewviewTI(e, cs, a, a.codeR, a.tsR, a.xl, a.pmL, a.scl, lo, hi)
	default:
		aaNewviewII(e, cs, a, lo, hi)
	}
}

// aaMatVecTip computes dst[s] = tb[s]·(P·src)[s] for one 20-state
// category block, four output states per pass. Each accumulator is a
// zero-initialised += chain over ascending j — the generic per-state
// accumulation verbatim — and tb·acc for the generic's acc·tb
// (right-tip case) is exact because IEEE multiplication is commutative.
func aaMatVecTip[F Float](p *[400]F, src, tb, dst *[20]F, blockMax F) F {
	for s := 0; s < 20; s += 4 {
		r0 := p[s*20 : s*20+20]
		r1 := p[s*20+20 : s*20+40]
		r2 := p[s*20+40 : s*20+60]
		r3 := p[s*20+60 : s*20+80]
		var a0, a1, a2, a3 F
		for j := 0; j < 20; j++ {
			xj := src[j]
			a0 += r0[j] * xj
			a1 += r1[j] * xj
			a2 += r2[j] * xj
			a3 += r3[j] * xj
		}
		v0 := tb[s] * a0
		dst[s] = v0
		if v0 > blockMax {
			blockMax = v0
		}
		v1 := tb[s+1] * a1
		dst[s+1] = v1
		if v1 > blockMax {
			blockMax = v1
		}
		v2 := tb[s+2] * a2
		dst[s+2] = v2
		if v2 > blockMax {
			blockMax = v2
		}
		v3 := tb[s+3] * a3
		dst[s+3] = v3
		if v3 > blockMax {
			blockMax = v3
		}
	}
	return blockMax
}

// aaNewviewTI: one tip child (codes + tip-sum table ts), one inner
// child (vector x across matrices pm with scales sc).
func aaNewviewTI[F Float](e *Engine, cs *compute[F], a *nvArgs[F], code []uint16, ts, x, pm []F, sc []int32, lo, hi int) {
	C, nm := e.nCat, a.nm
	const k = 20
	stride := C * k
	xp, scp := a.xp, a.scp
	for i := lo; i < hi; i++ {
		base := i * stride
		mi := int(code[i]) * k
		blockMax := F(0)
		for c := 0; c < C; c++ {
			o := base + c*k
			blockMax = aaMatVecTip(
				(*[400]F)(pm[c*400:]),
				(*[20]F)(x[o:]),
				(*[20]F)(ts[c*nm*k+mi:]),
				(*[20]F)(xp[o:]),
				blockMax)
		}
		scaleTail(xp[base:base+stride], scp, i, sc[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// aaNewviewIICat computes one 20-state category block of the
// inner×inner case, interleaving eight accumulation chains (four left,
// four right) per pass.
func aaNewviewIICat[F Float](pl, pr *[400]F, l, r, dst *[20]F, blockMax F) F {
	for s := 0; s < 20; s += 4 {
		pl0 := pl[s*20 : s*20+20]
		pl1 := pl[s*20+20 : s*20+40]
		pl2 := pl[s*20+40 : s*20+60]
		pl3 := pl[s*20+60 : s*20+80]
		pr0 := pr[s*20 : s*20+20]
		pr1 := pr[s*20+20 : s*20+40]
		pr2 := pr[s*20+40 : s*20+60]
		pr3 := pr[s*20+60 : s*20+80]
		var la0, la1, la2, la3, ra0, ra1, ra2, ra3 F
		for j := 0; j < 20; j++ {
			lj := l[j]
			rj := r[j]
			la0 += pl0[j] * lj
			la1 += pl1[j] * lj
			la2 += pl2[j] * lj
			la3 += pl3[j] * lj
			ra0 += pr0[j] * rj
			ra1 += pr1[j] * rj
			ra2 += pr2[j] * rj
			ra3 += pr3[j] * rj
		}
		v0 := la0 * ra0
		dst[s] = v0
		if v0 > blockMax {
			blockMax = v0
		}
		v1 := la1 * ra1
		dst[s+1] = v1
		if v1 > blockMax {
			blockMax = v1
		}
		v2 := la2 * ra2
		dst[s+2] = v2
		if v2 > blockMax {
			blockMax = v2
		}
		v3 := la3 * ra3
		dst[s+3] = v3
		if v3 > blockMax {
			blockMax = v3
		}
	}
	return blockMax
}

// aaNewviewII: both children inner.
func aaNewviewII[F Float](e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	C := e.nCat
	const k = 20
	stride := C * k
	xl, xr, xp := a.xl, a.xr, a.xp
	scl, scr, scp := a.scl, a.scr, a.scp
	pmL, pmR := a.pmL, a.pmR
	for i := lo; i < hi; i++ {
		base := i * stride
		blockMax := F(0)
		for c := 0; c < C; c++ {
			o := base + c*k
			blockMax = aaNewviewIICat(
				(*[400]F)(pmL[c*400:]), (*[400]F)(pmR[c*400:]),
				(*[20]F)(xl[o:]), (*[20]F)(xr[o:]), (*[20]F)(xp[o:]),
				blockMax)
		}
		scaleTail(xp[base:base+stride], scp, i, scl[i]+scr[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// aaMatVec fills dst = P·src for one 20-state block (the evaluate
// kernel's right factor), four chains per pass.
func aaMatVec[F Float](p *[400]F, src, dst *[20]F) {
	for s := 0; s < 20; s += 4 {
		r0 := p[s*20 : s*20+20]
		r1 := p[s*20+20 : s*20+40]
		r2 := p[s*20+40 : s*20+60]
		r3 := p[s*20+60 : s*20+80]
		var a0, a1, a2, a3 F
		for j := 0; j < 20; j++ {
			xj := src[j]
			a0 += r0[j] * xj
			a1 += r1[j] * xj
			a2 += r2[j] * xj
			a3 += r3[j] * xj
		}
		dst[s] = a0
		dst[s+1] = a1
		dst[s+2] = a2
		dst[s+3] = a3
	}
}

func (aaKernels[F]) evaluate(e *Engine, cs *compute[F], a *evArgs[F], lo, hi int) {
	C, nm := e.nCat, a.nm
	const k = 20
	stride := C * k
	freqs := (*[20]F)(cs.freqs)
	catW := F(1) / F(C)
	contrib := a.contrib
	var ra [20]F
	for i := lo; i < hi; i++ {
		var cnt int32
		if a.scp != nil {
			cnt += a.scp[i]
		}
		if a.scq != nil {
			cnt += a.scq[i]
		}
		base := i * stride
		site := F(0)
		for c := 0; c < C; c++ {
			o := base + c*k
			if a.codeQ != nil {
				copy(ra[:], a.tsQ[c*nm*k+int(a.codeQ[i])*k:][:k])
			} else {
				aaMatVec((*[400]F)(a.pmQ[c*400:]), (*[20]F)(a.xq[o:]), &ra)
			}
			// The site sum is ONE accumulation chain in the generic
			// kernel, so it stays a single sequential chain here — only
			// the independent matrix-vector chains above are interleaved.
			f := F(0)
			if a.codeP != nil {
				ind := (*[20]F)(cs.tipInd[int(a.codeP[i])*k:])
				for s := 0; s < k; s++ {
					f += freqs[s] * ind[s] * ra[s]
				}
			} else {
				src := (*[20]F)(a.xp[o:])
				for s := 0; s < k; s++ {
					f += freqs[s] * src[s] * ra[s]
				}
			}
			site += f
		}
		site *= catW
		contrib[i] = siteTerm(e, cs, i, site, cnt)
	}
}

func (aaKernels[F]) sumTable(e *Engine, cs *compute[F], a *sumArgs[F], lo, hi int) {
	C := e.nCat
	const k = 20
	stride := C * k
	freqs := (*[20]F)(cs.freqs)
	ev := cs.evec
	iv := cs.ievec
	xp, xq := a.xp, a.xq
	codeP, codeQ := a.codeP, a.codeQ
	sumTab := cs.sumTab
	var left [20]F
	for i := lo; i < hi; i++ {
		base := i * stride
		for c := 0; c < C; c++ {
			o := base + c*k
			var ls *[20]F
			if codeP != nil {
				ls = (*[20]F)(cs.tipInd[int(codeP[i])*k:])
			} else {
				ls = (*[20]F)(xp[o:])
			}
			// left_k = sum_s pi_s x_p[s] V[s][k]: outer loop over s in
			// ascending order with the generic w == 0 skip; the inner
			// kk loop is unrolled four-wide over the SAME left[] chains.
			for kk := range left {
				left[kk] = 0
			}
			for s := 0; s < k; s++ {
				w := freqs[s] * ls[s]
				if w == 0 {
					continue
				}
				row := (*[20]F)(ev[s*k:])
				for kk := 0; kk < k; kk += 4 {
					left[kk] += w * row[kk]
					left[kk+1] += w * row[kk+1]
					left[kk+2] += w * row[kk+2]
					left[kk+3] += w * row[kk+3]
				}
			}
			var rs *[20]F
			if codeQ != nil {
				rs = (*[20]F)(cs.tipInd[int(codeQ[i])*k:])
			} else {
				rs = (*[20]F)(xq[o:])
			}
			// right_k = sum_j V^-1[k][j] x_q[j]: four zero-initialised
			// chains per pass, ascending j.
			dst := (*[20]F)(sumTab[o:])
			for kk := 0; kk < k; kk += 4 {
				r0 := iv[kk*20 : kk*20+20]
				r1 := iv[kk*20+20 : kk*20+40]
				r2 := iv[kk*20+40 : kk*20+60]
				r3 := iv[kk*20+60 : kk*20+80]
				var a0, a1, a2, a3 F
				for j := 0; j < k; j++ {
					xj := rs[j]
					a0 += r0[j] * xj
					a1 += r1[j] * xj
					a2 += r2[j] * xj
					a3 += r3[j] * xj
				}
				dst[kk] = left[kk] * a0
				dst[kk+1] = left[kk+1] * a1
				dst[kk+2] = left[kk+2] * a2
				dst[kk+3] = left[kk+3] * a3
			}
		}
	}
}

// ---------------------------------------------------------------------
// blockedKernels: the same interleaved-chain scheme for arbitrary k,
// with a scalar remainder loop (generic order) when k % 4 != 0.

type blockedKernels[F Float] struct{}

func (blockedKernels[F]) name() string { return "blocked" }

func (blockedKernels[F]) prepareNewview(e *Engine, cs *compute[F], a *nvArgs[F]) {
	prepareProdTT(e, cs, a, e.nStates)
}

func (blockedKernels[F]) newview(e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	switch {
	case a.codeL != nil && a.codeR != nil:
		newviewTT(e, cs, a, e.nStates, lo, hi)
	case a.codeL != nil:
		blkNewviewTI(e, cs, a, a.codeL, a.tsL, a.xr, a.pmR, a.scr, lo, hi)
	case a.codeR != nil:
		blkNewviewTI(e, cs, a, a.codeR, a.tsR, a.xl, a.pmL, a.scl, lo, hi)
	default:
		blkNewviewII(e, cs, a, lo, hi)
	}
}

// blkMatVecTip: dst[s] = tb[s]·(P·src)[s] for one k-state block.
func blkMatVecTip[F Float](k int, p, src, tb, dst []F, blockMax F) F {
	src = src[:k]
	s := 0
	for ; s+4 <= k; s += 4 {
		r0 := p[s*k:][:k]
		r1 := p[(s+1)*k:][:k]
		r2 := p[(s+2)*k:][:k]
		r3 := p[(s+3)*k:][:k]
		var a0, a1, a2, a3 F
		for j := 0; j < k; j++ {
			xj := src[j]
			a0 += r0[j] * xj
			a1 += r1[j] * xj
			a2 += r2[j] * xj
			a3 += r3[j] * xj
		}
		v0 := tb[s] * a0
		dst[s] = v0
		if v0 > blockMax {
			blockMax = v0
		}
		v1 := tb[s+1] * a1
		dst[s+1] = v1
		if v1 > blockMax {
			blockMax = v1
		}
		v2 := tb[s+2] * a2
		dst[s+2] = v2
		if v2 > blockMax {
			blockMax = v2
		}
		v3 := tb[s+3] * a3
		dst[s+3] = v3
		if v3 > blockMax {
			blockMax = v3
		}
	}
	for ; s < k; s++ {
		row := p[s*k:][:k]
		acc := F(0)
		for j := 0; j < k; j++ {
			acc += row[j] * src[j]
		}
		v := tb[s] * acc
		dst[s] = v
		if v > blockMax {
			blockMax = v
		}
	}
	return blockMax
}

func blkNewviewTI[F Float](e *Engine, cs *compute[F], a *nvArgs[F], code []uint16, ts, x, pm []F, sc []int32, lo, hi int) {
	k, C, nm := e.nStates, e.nCat, a.nm
	k2 := k * k
	stride := C * k
	xp, scp := a.xp, a.scp
	for i := lo; i < hi; i++ {
		base := i * stride
		mi := int(code[i]) * k
		blockMax := F(0)
		for c := 0; c < C; c++ {
			o := base + c*k
			blockMax = blkMatVecTip(k,
				pm[c*k2:], x[o:], ts[c*nm*k+mi:], xp[o:], blockMax)
		}
		scaleTail(xp[base:base+stride], scp, i, sc[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// blkNewviewIICat: one k-state inner×inner category block, eight
// chains per pass with a scalar remainder.
func blkNewviewIICat[F Float](k int, pl, pr, l, r, dst []F, blockMax F) F {
	l = l[:k]
	r = r[:k]
	s := 0
	for ; s+4 <= k; s += 4 {
		pl0 := pl[s*k:][:k]
		pl1 := pl[(s+1)*k:][:k]
		pl2 := pl[(s+2)*k:][:k]
		pl3 := pl[(s+3)*k:][:k]
		pr0 := pr[s*k:][:k]
		pr1 := pr[(s+1)*k:][:k]
		pr2 := pr[(s+2)*k:][:k]
		pr3 := pr[(s+3)*k:][:k]
		var la0, la1, la2, la3, ra0, ra1, ra2, ra3 F
		for j := 0; j < k; j++ {
			lj := l[j]
			rj := r[j]
			la0 += pl0[j] * lj
			la1 += pl1[j] * lj
			la2 += pl2[j] * lj
			la3 += pl3[j] * lj
			ra0 += pr0[j] * rj
			ra1 += pr1[j] * rj
			ra2 += pr2[j] * rj
			ra3 += pr3[j] * rj
		}
		v0 := la0 * ra0
		dst[s] = v0
		if v0 > blockMax {
			blockMax = v0
		}
		v1 := la1 * ra1
		dst[s+1] = v1
		if v1 > blockMax {
			blockMax = v1
		}
		v2 := la2 * ra2
		dst[s+2] = v2
		if v2 > blockMax {
			blockMax = v2
		}
		v3 := la3 * ra3
		dst[s+3] = v3
		if v3 > blockMax {
			blockMax = v3
		}
	}
	for ; s < k; s++ {
		plr := pl[s*k:][:k]
		prr := pr[s*k:][:k]
		var la, ra F
		for j := 0; j < k; j++ {
			la += plr[j] * l[j]
		}
		for j := 0; j < k; j++ {
			ra += prr[j] * r[j]
		}
		v := la * ra
		dst[s] = v
		if v > blockMax {
			blockMax = v
		}
	}
	return blockMax
}

func blkNewviewII[F Float](e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	k, C := e.nStates, e.nCat
	k2 := k * k
	stride := C * k
	xl, xr, xp := a.xl, a.xr, a.xp
	scl, scr, scp := a.scl, a.scr, a.scp
	for i := lo; i < hi; i++ {
		base := i * stride
		blockMax := F(0)
		for c := 0; c < C; c++ {
			o := base + c*k
			blockMax = blkNewviewIICat(k,
				a.pmL[c*k2:], a.pmR[c*k2:], xl[o:], xr[o:], xp[o:], blockMax)
		}
		scaleTail(xp[base:base+stride], scp, i, scl[i]+scr[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

func (blockedKernels[F]) evaluate(e *Engine, cs *compute[F], a *evArgs[F], lo, hi int) {
	k, C, nm := e.nStates, e.nCat, a.nm
	k2 := k * k
	stride := C * k
	freqs := cs.freqs
	catW := F(1) / F(C)
	contrib := a.contrib
	var ra [32]F
	for i := lo; i < hi; i++ {
		var cnt int32
		if a.scp != nil {
			cnt += a.scp[i]
		}
		if a.scq != nil {
			cnt += a.scq[i]
		}
		base := i * stride
		site := F(0)
		for c := 0; c < C; c++ {
			o := base + c*k
			if a.codeQ != nil {
				copy(ra[:k], a.tsQ[c*nm*k+int(a.codeQ[i])*k:][:k])
			} else {
				blkMatVec(k, a.pmQ[c*k2:], a.xq[o:], ra[:k])
			}
			f := F(0)
			if a.codeP != nil {
				ind := cs.tipInd[int(a.codeP[i])*k:][:k]
				for s := 0; s < k; s++ {
					f += freqs[s] * ind[s] * ra[s]
				}
			} else {
				src := a.xp[o:][:k]
				for s := 0; s < k; s++ {
					f += freqs[s] * src[s] * ra[s]
				}
			}
			site += f
		}
		site *= catW
		contrib[i] = siteTerm(e, cs, i, site, cnt)
	}
}

// blkMatVec fills dst = P·src for one k-state block.
func blkMatVec[F Float](k int, p, src, dst []F) {
	src = src[:k]
	s := 0
	for ; s+4 <= k; s += 4 {
		r0 := p[s*k:][:k]
		r1 := p[(s+1)*k:][:k]
		r2 := p[(s+2)*k:][:k]
		r3 := p[(s+3)*k:][:k]
		var a0, a1, a2, a3 F
		for j := 0; j < k; j++ {
			xj := src[j]
			a0 += r0[j] * xj
			a1 += r1[j] * xj
			a2 += r2[j] * xj
			a3 += r3[j] * xj
		}
		dst[s] = a0
		dst[s+1] = a1
		dst[s+2] = a2
		dst[s+3] = a3
	}
	for ; s < k; s++ {
		row := p[s*k:][:k]
		acc := F(0)
		for j := 0; j < k; j++ {
			acc += row[j] * src[j]
		}
		dst[s] = acc
	}
}

func (blockedKernels[F]) sumTable(e *Engine, cs *compute[F], a *sumArgs[F], lo, hi int) {
	k, C := e.nStates, e.nCat
	stride := C * k
	freqs := cs.freqs
	ev, iv := cs.evec, cs.ievec
	xp, xq := a.xp, a.xq
	codeP, codeQ := a.codeP, a.codeQ
	sumTab := cs.sumTab
	var left [32]F
	for i := lo; i < hi; i++ {
		base := i * stride
		for c := 0; c < C; c++ {
			o := base + c*k
			var ls []F
			if codeP != nil {
				ls = cs.tipInd[int(codeP[i])*k:][:k]
			} else {
				ls = xp[o:][:k]
			}
			for kk := 0; kk < k; kk++ {
				left[kk] = 0
			}
			for s := 0; s < k; s++ {
				w := freqs[s] * ls[s]
				if w == 0 {
					continue
				}
				row := ev[s*k:][:k]
				kk := 0
				for ; kk+4 <= k; kk += 4 {
					left[kk] += w * row[kk]
					left[kk+1] += w * row[kk+1]
					left[kk+2] += w * row[kk+2]
					left[kk+3] += w * row[kk+3]
				}
				for ; kk < k; kk++ {
					left[kk] += w * row[kk]
				}
			}
			var rs []F
			if codeQ != nil {
				rs = cs.tipInd[int(codeQ[i])*k:][:k]
			} else {
				rs = xq[o:][:k]
			}
			dst := sumTab[o:][:k]
			kk := 0
			for ; kk+4 <= k; kk += 4 {
				r0 := iv[kk*k:][:k]
				r1 := iv[(kk+1)*k:][:k]
				r2 := iv[(kk+2)*k:][:k]
				r3 := iv[(kk+3)*k:][:k]
				var a0, a1, a2, a3 F
				for j := 0; j < k; j++ {
					xj := rs[j]
					a0 += r0[j] * xj
					a1 += r1[j] * xj
					a2 += r2[j] * xj
					a3 += r3[j] * xj
				}
				dst[kk] = left[kk] * a0
				dst[kk+1] = left[kk+1] * a1
				dst[kk+2] = left[kk+2] * a2
				dst[kk+3] = left[kk+3] * a3
			}
			for ; kk < k; kk++ {
				row := iv[kk*k:][:k]
				acc := F(0)
				for j := 0; j < k; j++ {
					acc += row[j] * rs[j]
				}
				dst[kk] = left[kk] * acc
			}
		}
	}
}
