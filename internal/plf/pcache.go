package plf

import "math"

// Branch-length-keyed transition-matrix cache. NNI and SPR rounds
// re-evaluate the same branches (and the same Newton-converged lengths)
// over and over, so newview/evaluate were rebuilding identical P(rt)
// matrices — O(nCat·k³) plus nCat·k exp() calls — and tip-sum tables
// from scratch on every step. The cache memoises both per exact branch
// length (float64 bit pattern), is invalidated wholesale whenever the
// model's Version() changes, and is disabled entirely under
// KernelGeneric so the legacy baseline stays byte-for-byte intact.
// PMatrices is deterministic in (model, t), so a cached matrix is
// bit-identical to a rebuilt one and the cache cannot perturb results.
// The cache lives on the precision-typed compute state: in f32 mode it
// stores converted matrices, so the double→single rounding happens once
// per distinct branch length, not once per step.

// pcacheCap bounds the entry count. A full cache is dropped wholesale:
// O(1), and the small working set of a search round refills in a few
// steps. Newton branch optimisation is the only producer of unbounded
// distinct lengths, and it touches matrices through the sum table, not
// the cache.
const pcacheCap = 512

// pcEntry is one cached branch length: the per-category transition
// matrices and, built lazily on first tip use, the tip-sum table
// derived from them.
type pcEntry[F Float] struct {
	pmats  []F // nCat × k²
	tipSum []F // nCat × nm × k, nil until needed
}

// pcache maps branch-length bit patterns to entries built under one
// model version.
type pcache[F Float] struct {
	entries map[uint64]*pcEntry[F]
	version uint64
}

func newPCache[F Float]() *pcache[F] {
	return &pcache[F]{entries: make(map[uint64]*pcEntry[F], 64)}
}

// fillPmats computes the per-category transition matrices for branch
// length t into dst in precision F: directly for float64, staged
// through the compute's float64 scratch and converted for float32.
func fillPmats[F Float](e *Engine, cs *compute[F], dst []F, t float64) {
	if d, ok := any(dst).([]float64); ok {
		e.M.PMatrices(d, t)
		return
	}
	e.M.PMatrices(cs.pTmp, t)
	for i, v := range cs.pTmp {
		dst[i] = F(v)
	}
}

// pmatsFor returns the transition matrices for branch length t: from
// the cache when enabled (allocating and filling a new entry on miss),
// otherwise by filling scratch exactly as the legacy path did. The
// returned entry is nil when the cache is off.
func pmatsFor[F Float](e *Engine, cs *compute[F], t float64, scratch []F) ([]F, *pcEntry[F]) {
	c := cs.pcache
	if c == nil {
		fillPmats(e, cs, scratch, t)
		return scratch, nil
	}
	if v := e.M.Version(); c.version != v {
		// Model parameters changed: every cached matrix is stale.
		clear(c.entries)
		c.version = v
	}
	// -0.0 and +0.0 are the same branch length but distinct bit
	// patterns; keying on the raw bits would hold two entries with
	// bit-identical matrices. A non-finite length bypasses the cache
	// entirely: NaN bits could never be re-hit usefully (every NaN
	// "length" is a caller bug anyway) and an Inf entry would only pin
	// a degenerate matrix in the working set.
	if t == 0 {
		t = 0
	}
	if math.IsInf(t, 0) || math.IsNaN(t) {
		fillPmats(e, cs, scratch, t)
		return scratch, nil
	}
	key := math.Float64bits(t)
	if ent, ok := c.entries[key]; ok {
		e.Stats.PCacheHits++
		e.eobs.pcHits.Inc()
		return ent.pmats, ent
	}
	e.Stats.PCacheMisses++
	e.eobs.pcMisses.Inc()
	if len(c.entries) >= pcacheCap {
		clear(c.entries)
		e.Stats.PCacheDrops++
		e.eobs.pcDrops.Inc()
	}
	ent := &pcEntry[F]{pmats: make([]F, e.nCat*e.nStates*e.nStates)}
	fillPmats(e, cs, ent.pmats, t)
	c.entries[key] = ent
	return ent.pmats, ent
}

// tipSumFor returns the tip-sum table for the given matrices, cached on
// ent when available, otherwise built into scratch (legacy path).
func tipSumFor[F Float](e *Engine, cs *compute[F], ent *pcEntry[F], pmats, scratch []F) []F {
	if ent == nil {
		buildTipSum(e, cs, scratch, pmats)
		return scratch
	}
	if ent.tipSum == nil {
		ts := make([]F, e.nCat*len(e.maskList)*e.nStates)
		buildTipSum(e, cs, ts, ent.pmats)
		ent.tipSum = ts
	}
	return ent.tipSum
}
