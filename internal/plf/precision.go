package plf

import (
	"fmt"
	"math"
	"unsafe"

	"oocphylo/internal/model"
)

// Compute precision. The engine can run its entire numeric state —
// ancestral vectors, transition matrices, tip tables, derivative sum
// tables — in either float64 (the default) or float32. Single precision
// halves the paper's central cost: every out-of-core page (ancestral
// vector) occupies half the RAM-slot bytes and half the store
// bandwidth, which doubles the dataset size a fixed -L limit can hold.
//
// The VectorProvider interface stays float64-typed: providers hand out
// "carrier" pages of float64s and never inspect the elements, so the
// whole ooc stack (slot manager, async pipeline, file stores, CRC64
// sidecars, live resizing) works unchanged at either precision. In f32
// mode a logical vector of L float32s travels in a carrier of
// ceil(L/2) float64s — the same bytes, reinterpreted — and the engine
// views each carrier through vecView. A file store sized on the
// carrier geometry therefore persists exactly 4·L (+4 if L is odd)
// bytes per vector: the manifest-visible halving the -precision flag
// promises.
//
// Determinism contract per precision (the paper's §4.1 exactness
// criterion, applied mode-wise): within one precision, results are
// bit-identical across kernel sets, worker counts, providers and
// sync/async I/O — the same guarantees the float64 path has always had.
// Across precisions results differ by rounding; the accuracy-budget
// tests quantify the gap.

// Precision names accepted by NewWithPrecision and the oocraxml
// -precision flag.
const (
	// PrecisionF64 is full double precision, the default and the only
	// mode whose results are comparable bit-for-bit with historical runs.
	PrecisionF64 = "f64"
	// PrecisionF32 is the end-to-end single-precision mode.
	PrecisionF32 = "f32"
)

// Float constrains the compute element type.
type Float interface {
	float32 | float64
}

// Float32 scaling constants. The float64 path rescales by 2^±256,
// which float32 cannot represent (max exponent 127). The f32 path uses
// 2^±64 — the same fraction (one quarter) of the exponent range the
// f64 scheme uses, giving 64 octaves of headroom above the threshold
// before overflow and 85 below it before subnormal flush.
const (
	scalingExponent32 = 64
	logScaleFactor32  = scalingExponent32 * 0.6931471805599453 // ln(2^64)
)

var (
	minLikelihood32 = float32(math.Ldexp(1, -scalingExponent32)) // 2^-64
	scaleFactor32   = float32(math.Ldexp(1, scalingExponent32))  // 2^64

	// flushDenormal32 is the f32 store-side flush threshold: vector
	// entries below 2^-87 = minLikelihood32 · 2^-23 sit more than a full
	// float32 mantissa below the smallest per-pattern maximum the scaler
	// permits, so they can never shift a site likelihood at f32
	// resolution — but once they reach the hardware denormal range
	// (under 2^-126) every multiply touching them costs a microcode
	// assist. Flushing them to zero at the newview store keeps the f32
	// kernels on the fast path; it is applied identically by the generic
	// and specialised kernel sets, preserving within-mode bit-identity.
	flushDenormal32 = float32(math.Ldexp(1, -scalingExponent32-23)) // 2^-87
)

// CarrierLength returns the per-vector provider payload length in
// float64s for an engine at the given precision — the value a
// provider's VectorLen() must match. For f64 this is VectorLength; for
// f32 it is halved (rounded up), since two float32 elements ride in
// each float64 carrier slot.
func CarrierLength(m *model.Model, nPat int, precision string) (int, error) {
	logical := VectorLength(m, nPat)
	switch precision {
	case "", PrecisionF64:
		return logical, nil
	case PrecisionF32:
		return (logical + 1) / 2, nil
	}
	return 0, fmt.Errorf("plf: unknown precision %q (want %q or %q)", precision, PrecisionF64, PrecisionF32)
}

// vecView reinterprets a provider carrier as the compute element type:
// the identity for float64, an unsafe.Slice over the same bytes for
// float32. The view aliases the carrier, so kernel writes land directly
// in the provider's slot; a carrier with an odd logical length keeps
// its final 4 padding bytes unread and unwritten.
func vecView[F Float](carrier []float64, logical int) []F {
	if v, ok := any(carrier).([]F); ok {
		return v
	}
	f32 := unsafe.Slice((*float32)(unsafe.Pointer(&carrier[0])), logical)
	return any(f32).([]F)
}

// asF returns src in precision F: aliased unchanged when F is float64
// (so the f64 path reads the model's own slices, exactly as before),
// converted into dst — grown as needed — otherwise.
func asF[F Float](dst []F, src []float64) []F {
	if s, ok := any(src).([]F); ok {
		return s
	}
	if cap(dst) < len(src) {
		dst = make([]F, len(src))
	}
	dst = dst[:len(src)]
	for i, v := range src {
		dst[i] = F(v)
	}
	return dst
}

// isF64 reports whether F is float64.
func isF64[F Float]() bool {
	var z F
	_, ok := any(z).(float64)
	return ok
}
