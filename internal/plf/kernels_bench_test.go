package plf

import (
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

// benchSetupDNA4 builds the kernel-ablation benchmark engine: DNA,
// GTR+Γ4 (the k=4, c=4 configuration the specialised kernels target),
// one worker, in-memory provider.
func benchSetupDNA4(b *testing.B, mode string) (*Engine, *tree.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	names := tipNames(64)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	pats := randomAlignment(b, names, 2000, rng, bio.DNA)
	m, err := model.NewGTR([]float64{0.27, 0.23, 0.24, 0.26},
		[]float64{1.2, 3.1, 0.9, 1.1, 3.4, 1.0}, 4)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.SetGamma(0.7, 4); err != nil {
		b.Fatal(err)
	}
	prov := NewInMemoryProvider(tr.NumInner(), VectorLength(m, pats.NumPatterns()))
	e, err := New(tr, pats, m, prov)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SetKernel(mode); err != nil {
		b.Fatal(err)
	}
	return e, tr
}

// BenchmarkNewviewDNA4 measures the newview hot path (full traversals)
// under each kernel mode; the acceptance criterion compares the two.
func BenchmarkNewviewDNA4(b *testing.B) {
	for _, mode := range []string{KernelGeneric, KernelAuto} {
		b.Run(mode, func(b *testing.B) {
			e, tr := benchSetupDNA4(b, mode)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.FullTraversal(tr.Edges[0]); err != nil {
					b.Fatal(err)
				}
			}
			sitesPerOp := float64(e.nPat * tr.NumInner())
			b.ReportMetric(sitesPerOp*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
		})
	}
}

// BenchmarkEvaluateDNA4 measures the evaluate kernel alone (vectors
// already valid) under each kernel mode.
func BenchmarkEvaluateDNA4(b *testing.B) {
	for _, mode := range []string{KernelGeneric, KernelAuto} {
		b.Run(mode, func(b *testing.B) {
			e, tr := benchSetupDNA4(b, mode)
			if _, err := e.LogLikelihood(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.evaluate(tr.Edges[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSumTableDNA4 measures the derivative sum-table kernel under
// each kernel mode.
func BenchmarkSumTableDNA4(b *testing.B) {
	for _, mode := range []string{KernelGeneric, KernelAuto} {
		b.Run(mode, func(b *testing.B) {
			e, tr := benchSetupDNA4(b, mode)
			if _, err := e.LogLikelihood(); err != nil {
				b.Fatal(err)
			}
			edge := tr.Edges[3]
			if err := e.Traverse(edge); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.buildSumTable(edge); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSetupAA20 builds the protein-ablation engine: 64 taxa, GTR-class
// k=20 model with Γ4 rates, at the given kernel mode and precision.
func benchSetupAA20(b *testing.B, mode, prec string) (*Engine, *tree.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(11))
	names := tipNames(64)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	pats := randomAlignment(b, names, 500, rng, bio.AA)
	m, err := model.NewJC(20)
	if err != nil {
		b.Fatal(err)
	}
	if err := m.SetGamma(0.7, 4); err != nil {
		b.Fatal(err)
	}
	cl, err := CarrierLength(m, pats.NumPatterns(), prec)
	if err != nil {
		b.Fatal(err)
	}
	prov := NewInMemoryProvider(tr.NumInner(), cl)
	e, err := NewWithPrecision(tr, pats, m, prov, prec)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.SetKernel(mode); err != nil {
		b.Fatal(err)
	}
	return e, tr
}

// BenchmarkNewviewAA20 measures protein full traversals per kernel mode
// and precision; the acceptance criterion compares auto (the aa20 set)
// against generic at f64.
func BenchmarkNewviewAA20(b *testing.B) {
	for _, bc := range []struct{ mode, prec string }{
		{KernelGeneric, PrecisionF64},
		{KernelBlocked, PrecisionF64},
		{KernelAuto, PrecisionF64},
		{KernelAuto, PrecisionF32},
	} {
		b.Run(bc.mode+"_"+bc.prec, func(b *testing.B) {
			e, tr := benchSetupAA20(b, bc.mode, bc.prec)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.FullTraversal(tr.Edges[0]); err != nil {
					b.Fatal(err)
				}
			}
			sitesPerOp := float64(e.nPat * tr.NumInner())
			b.ReportMetric(sitesPerOp*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
		})
	}
}

// BenchmarkEvaluateAA20 measures the protein evaluate kernel alone.
func BenchmarkEvaluateAA20(b *testing.B) {
	for _, bc := range []struct{ mode, prec string }{
		{KernelGeneric, PrecisionF64},
		{KernelAuto, PrecisionF64},
		{KernelAuto, PrecisionF32},
	} {
		b.Run(bc.mode+"_"+bc.prec, func(b *testing.B) {
			e, tr := benchSetupAA20(b, bc.mode, bc.prec)
			if _, err := e.LogLikelihood(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.evaluate(tr.Edges[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSumTableAA20 measures the protein derivative sum-table kernel.
func BenchmarkSumTableAA20(b *testing.B) {
	for _, bc := range []struct{ mode, prec string }{
		{KernelGeneric, PrecisionF64},
		{KernelAuto, PrecisionF64},
		{KernelAuto, PrecisionF32},
	} {
		b.Run(bc.mode+"_"+bc.prec, func(b *testing.B) {
			e, tr := benchSetupAA20(b, bc.mode, bc.prec)
			if _, err := e.LogLikelihood(); err != nil {
				b.Fatal(err)
			}
			edge := tr.Edges[3]
			if err := e.Traverse(edge); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.buildSumTable(edge); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
