package plf

// DNA-specialised kernels: the k=4 inner loops fully unrolled, with a
// c=4 fast path and per-call dispatch on the tip-ness of a newview's
// children (tip×tip, tip×inner, inner×inner — RAxML's newviewGTRGAMMA
// case split). The tip×tip case is served by a precomputed
// tipSumL×tipSumR mask-pair product table (RAxML's x1px2), turning the
// whole inner loop into one table copy per pattern.
//
// Exactness: every function below performs the generic kernel's
// floating-point operations in the generic kernel's order, so outputs
// are bit-identical for any kernel choice (per precision). Two
// properties make the shorter unrolled expressions safe:
//
//   - a0+a1+a2+a3 associates as ((a0+a1)+a2)+a3, which differs from the
//     generic acc := 0.0; acc += aj chain only in the leading 0.0+a0 —
//     and 0.0+x == x bit-for-bit unless x is -0.0. Transition-matrix
//     entries are clamped to >= +0.0 (model.PMatrix), ancestral vectors
//     and tip indicators are products/sums of non-negative values, so
//     no product aj here can be -0.0. Where an operand CAN be negative
//     (the eigenvector sums in the sum-table kernel) the explicit
//     leading 0.0 is kept.
//   - IEEE-754 multiplication is commutative bit-for-bit, so writing
//     tip·inner for the generic's inner·tip (right-tip newview case) is
//     exact.
//
// The differential fuzz tests (kernels_test.go) enforce both claims on
// random inputs, per vector and per likelihood.

type dnaKernels[F Float] struct{}

func (dnaKernels[F]) name() string { return "dna4" }

// prepareNewview builds the tip×tip product table
//
//	prodTT[((ml*nm+mr)*C+c)*4+s] = tsL[c,ml,s] * tsR[c,mr,s]
//
// laid out pair-major so each pattern's C×4 block is one contiguous
// copy. nm ≤ 16 for DNA (distinct observed masks), so the table is at
// most C·16·16·4 elements and costs O(nm²·C·4) multiplies per call —
// amortised over the nPat-pattern loop it replaces.
func (dnaKernels[F]) prepareNewview(e *Engine, cs *compute[F], a *nvArgs[F]) {
	if a.codeL == nil || a.codeR == nil {
		return
	}
	C, nm := e.nCat, a.nm
	stride := C * 4
	need := nm * nm * stride
	if cap(cs.prodTT) < need {
		cs.prodTT = make([]F, need)
	}
	prod := cs.prodTT[:need]
	for ml := 0; ml < nm; ml++ {
		for mr := 0; mr < nm; mr++ {
			for c := 0; c < C; c++ {
				l := (*[4]F)(a.tsL[(c*nm+ml)*4:])
				r := (*[4]F)(a.tsR[(c*nm+mr)*4:])
				dst := (*[4]F)(prod[(ml*nm+mr)*stride+c*4:])
				dst[0] = l[0] * r[0]
				dst[1] = l[1] * r[1]
				dst[2] = l[2] * r[2]
				dst[3] = l[3] * r[3]
			}
		}
	}
	a.prodTT = prod
}

func (dnaKernels[F]) newview(e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	switch {
	case a.codeL != nil && a.codeR != nil:
		dnaNewviewTT(e, cs, a, lo, hi)
	case a.codeL != nil:
		dnaNewviewTI(e, cs, a, a.codeL, a.tsL, a.xr, a.pmR, a.scr, lo, hi)
	case a.codeR != nil:
		dnaNewviewTI(e, cs, a, a.codeR, a.tsR, a.xl, a.pmL, a.scl, lo, hi)
	default:
		if e.nCat == 4 {
			dnaNewviewII4(cs, a, lo, hi)
		} else {
			dnaNewviewII(e, cs, a, lo, hi)
		}
	}
}

// dnaNewviewTT: both children are tips; the whole per-pattern inner
// loop is one copy from the mask-pair product table plus the max scan.
func dnaNewviewTT[F Float](e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	C, nm := e.nCat, a.nm
	stride := C * 4
	prod, xp, scp := a.prodTT, a.xp, a.scp
	codeL, codeR := a.codeL, a.codeR
	for i := lo; i < hi; i++ {
		dst := xp[i*stride : i*stride+stride]
		pair := (int(codeL[i])*nm + int(codeR[i])) * stride
		copy(dst, prod[pair:pair+stride])
		blockMax := F(0)
		for _, v := range dst {
			if v > blockMax {
				blockMax = v
			}
		}
		scaleTail(dst, scp, i, 0, blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// dnaNewviewTI: one tip child (pattern codes + tip-sum table ts) and
// one inner child (vector x across matrices pm with scales sc).
func dnaNewviewTI[F Float](e *Engine, cs *compute[F], a *nvArgs[F], code []uint16, ts, x, pm []F, sc []int32, lo, hi int) {
	C, nm := e.nCat, a.nm
	stride := C * 4
	xp, scp := a.xp, a.scp
	for i := lo; i < hi; i++ {
		base := i * stride
		mi := int(code[i]) * 4
		blockMax := F(0)
		for c := 0; c < C; c++ {
			o := base + c*4
			src := (*[4]F)(x[o:])
			p := (*[16]F)(pm[c*16:])
			tb := (*[4]F)(ts[c*nm*4+mi:])
			x0, x1, x2, x3 := src[0], src[1], src[2], src[3]
			r0 := p[0]*x0 + p[1]*x1 + p[2]*x2 + p[3]*x3
			r1 := p[4]*x0 + p[5]*x1 + p[6]*x2 + p[7]*x3
			r2 := p[8]*x0 + p[9]*x1 + p[10]*x2 + p[11]*x3
			r3 := p[12]*x0 + p[13]*x1 + p[14]*x2 + p[15]*x3
			dst := (*[4]F)(xp[o:])
			v0 := tb[0] * r0
			dst[0] = v0
			if v0 > blockMax {
				blockMax = v0
			}
			v1 := tb[1] * r1
			dst[1] = v1
			if v1 > blockMax {
				blockMax = v1
			}
			v2 := tb[2] * r2
			dst[2] = v2
			if v2 > blockMax {
				blockMax = v2
			}
			v3 := tb[3] * r3
			dst[3] = v3
			if v3 > blockMax {
				blockMax = v3
			}
		}
		scaleTail(xp[base:base+stride], scp, i, sc[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// dnaNewviewIICat computes one category block of the inner×inner case:
// dst = (pl · l) ⊙ (pr · r), returning the updated block maximum.
func dnaNewviewIICat[F Float](pl, pr *[16]F, l, r, dst *[4]F, blockMax F) F {
	l0, l1, l2, l3 := l[0], l[1], l[2], l[3]
	r0, r1, r2, r3 := r[0], r[1], r[2], r[3]
	la0 := pl[0]*l0 + pl[1]*l1 + pl[2]*l2 + pl[3]*l3
	la1 := pl[4]*l0 + pl[5]*l1 + pl[6]*l2 + pl[7]*l3
	la2 := pl[8]*l0 + pl[9]*l1 + pl[10]*l2 + pl[11]*l3
	la3 := pl[12]*l0 + pl[13]*l1 + pl[14]*l2 + pl[15]*l3
	ra0 := pr[0]*r0 + pr[1]*r1 + pr[2]*r2 + pr[3]*r3
	ra1 := pr[4]*r0 + pr[5]*r1 + pr[6]*r2 + pr[7]*r3
	ra2 := pr[8]*r0 + pr[9]*r1 + pr[10]*r2 + pr[11]*r3
	ra3 := pr[12]*r0 + pr[13]*r1 + pr[14]*r2 + pr[15]*r3
	v0 := la0 * ra0
	dst[0] = v0
	if v0 > blockMax {
		blockMax = v0
	}
	v1 := la1 * ra1
	dst[1] = v1
	if v1 > blockMax {
		blockMax = v1
	}
	v2 := la2 * ra2
	dst[2] = v2
	if v2 > blockMax {
		blockMax = v2
	}
	v3 := la3 * ra3
	dst[3] = v3
	if v3 > blockMax {
		blockMax = v3
	}
	return blockMax
}

// dnaNewviewII: both children inner, any category count.
func dnaNewviewII[F Float](e *Engine, cs *compute[F], a *nvArgs[F], lo, hi int) {
	C := e.nCat
	stride := C * 4
	xl, xr, xp := a.xl, a.xr, a.xp
	scl, scr, scp := a.scl, a.scr, a.scp
	pmL, pmR := a.pmL, a.pmR
	for i := lo; i < hi; i++ {
		base := i * stride
		blockMax := F(0)
		for c := 0; c < C; c++ {
			o := base + c*4
			blockMax = dnaNewviewIICat(
				(*[16]F)(pmL[c*16:]), (*[16]F)(pmR[c*16:]),
				(*[4]F)(xl[o:]), (*[4]F)(xr[o:]), (*[4]F)(xp[o:]),
				blockMax)
		}
		scaleTail(xp[base:base+stride], scp, i, scl[i]+scr[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

// dnaNewviewII4: the c=4 fast path — category loop unrolled, one
// bounds check per pattern on each vector.
func dnaNewviewII4[F Float](cs *compute[F], a *nvArgs[F], lo, hi int) {
	xl, xr, xp := a.xl, a.xr, a.xp
	scl, scr, scp := a.scl, a.scr, a.scp
	pl0 := (*[16]F)(a.pmL[0:])
	pl1 := (*[16]F)(a.pmL[16:])
	pl2 := (*[16]F)(a.pmL[32:])
	pl3 := (*[16]F)(a.pmL[48:])
	pr0 := (*[16]F)(a.pmR[0:])
	pr1 := (*[16]F)(a.pmR[16:])
	pr2 := (*[16]F)(a.pmR[32:])
	pr3 := (*[16]F)(a.pmR[48:])
	for i := lo; i < hi; i++ {
		base := i * 16
		l := xl[base : base+16]
		r := xr[base : base+16]
		dst := xp[base : base+16]
		blockMax := dnaNewviewIICat(pl0, pr0, (*[4]F)(l[0:]), (*[4]F)(r[0:]), (*[4]F)(dst[0:]), F(0))
		blockMax = dnaNewviewIICat(pl1, pr1, (*[4]F)(l[4:]), (*[4]F)(r[4:]), (*[4]F)(dst[4:]), blockMax)
		blockMax = dnaNewviewIICat(pl2, pr2, (*[4]F)(l[8:]), (*[4]F)(r[8:]), (*[4]F)(dst[8:]), blockMax)
		blockMax = dnaNewviewIICat(pl3, pr3, (*[4]F)(l[12:]), (*[4]F)(r[12:]), (*[4]F)(dst[12:]), blockMax)
		scaleTail(dst, scp, i, scl[i]+scr[i], blockMax, cs.minLik, cs.scaleFac, cs.flush)
	}
}

func (dnaKernels[F]) evaluate(e *Engine, cs *compute[F], a *evArgs[F], lo, hi int) {
	C, nm := e.nCat, a.nm
	stride := C * 4
	freqs := cs.freqs
	f0, f1, f2, f3 := freqs[0], freqs[1], freqs[2], freqs[3]
	catW := F(1) / F(C)
	xp, xq := a.xp, a.xq
	scp, scq := a.scp, a.scq
	codeP, codeQ := a.codeP, a.codeQ
	contrib := a.contrib
	for i := lo; i < hi; i++ {
		var cnt int32
		if scp != nil {
			cnt += scp[i]
		}
		if scq != nil {
			cnt += scq[i]
		}
		base := i * stride
		site := F(0)
		for c := 0; c < C; c++ {
			o := base + c*4
			var r0, r1, r2, r3 F
			if codeQ != nil {
				tb := (*[4]F)(a.tsQ[c*nm*4+int(codeQ[i])*4:])
				r0, r1, r2, r3 = tb[0], tb[1], tb[2], tb[3]
			} else {
				src := (*[4]F)(xq[o:])
				p := (*[16]F)(a.pmQ[c*16:])
				x0, x1, x2, x3 := src[0], src[1], src[2], src[3]
				r0 = p[0]*x0 + p[1]*x1 + p[2]*x2 + p[3]*x3
				r1 = p[4]*x0 + p[5]*x1 + p[6]*x2 + p[7]*x3
				r2 = p[8]*x0 + p[9]*x1 + p[10]*x2 + p[11]*x3
				r3 = p[12]*x0 + p[13]*x1 + p[14]*x2 + p[15]*x3
			}
			var f F
			if codeP != nil {
				ind := (*[4]F)(cs.tipInd[int(codeP[i])*4:])
				f = f0*ind[0]*r0 + f1*ind[1]*r1 + f2*ind[2]*r2 + f3*ind[3]*r3
			} else {
				src := (*[4]F)(xp[o:])
				f = f0*src[0]*r0 + f1*src[1]*r1 + f2*src[2]*r2 + f3*src[3]*r3
			}
			site += f
		}
		site *= catW
		contrib[i] = siteTerm(e, cs, i, site, cnt)
	}
}

func (dnaKernels[F]) sumTable(e *Engine, cs *compute[F], a *sumArgs[F], lo, hi int) {
	C := e.nCat
	stride := C * 4
	freqs := cs.freqs
	fr0, fr1, fr2, fr3 := freqs[0], freqs[1], freqs[2], freqs[3]
	ev := (*[16]F)(cs.evec)
	iv := (*[16]F)(cs.ievec)
	xp, xq := a.xp, a.xq
	codeP, codeQ := a.codeP, a.codeQ
	sumTab := cs.sumTab
	for i := lo; i < hi; i++ {
		base := i * stride
		for c := 0; c < C; c++ {
			o := base + c*4
			var ls *[4]F
			if codeP != nil {
				ls = (*[4]F)(cs.tipInd[int(codeP[i])*4:])
			} else {
				ls = (*[4]F)(xp[o:])
			}
			// left_k = sum_s pi_s x_p[s] V[s][k], ascending s, preserving
			// the generic kernel's w == 0 skip (eigenvectors can be
			// negative, so accumulation starts at an explicit 0.0).
			var L0, L1, L2, L3 F
			if w := fr0 * ls[0]; w != 0 {
				L0 += w * ev[0]
				L1 += w * ev[1]
				L2 += w * ev[2]
				L3 += w * ev[3]
			}
			if w := fr1 * ls[1]; w != 0 {
				L0 += w * ev[4]
				L1 += w * ev[5]
				L2 += w * ev[6]
				L3 += w * ev[7]
			}
			if w := fr2 * ls[2]; w != 0 {
				L0 += w * ev[8]
				L1 += w * ev[9]
				L2 += w * ev[10]
				L3 += w * ev[11]
			}
			if w := fr3 * ls[3]; w != 0 {
				L0 += w * ev[12]
				L1 += w * ev[13]
				L2 += w * ev[14]
				L3 += w * ev[15]
			}
			var rs *[4]F
			if codeQ != nil {
				rs = (*[4]F)(cs.tipInd[int(codeQ[i])*4:])
			} else {
				rs = (*[4]F)(xq[o:])
			}
			x0, x1, x2, x3 := rs[0], rs[1], rs[2], rs[3]
			// right_k = sum_j V^-1[k][j] x_q[j]; the ievec rows carry
			// negative entries so each sum keeps its leading 0.0 term.
			R0 := F(0)
			R0 += iv[0] * x0
			R0 += iv[1] * x1
			R0 += iv[2] * x2
			R0 += iv[3] * x3
			R1 := F(0)
			R1 += iv[4] * x0
			R1 += iv[5] * x1
			R1 += iv[6] * x2
			R1 += iv[7] * x3
			R2 := F(0)
			R2 += iv[8] * x0
			R2 += iv[9] * x1
			R2 += iv[10] * x2
			R2 += iv[11] * x3
			R3 := F(0)
			R3 += iv[12] * x0
			R3 += iv[13] * x1
			R3 += iv[14] * x2
			R3 += iv[15] * x3
			dst := (*[4]F)(sumTab[o:])
			dst[0] = L0 * R0
			dst[1] = L1 * R1
			dst[2] = L2 * R2
			dst[3] = L3 * R3
		}
	}
}
