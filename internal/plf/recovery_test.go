package plf

import (
	"math/rand"
	"path/filepath"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/ooc"
	"oocphylo/internal/tree"
)

// corruptionRig is an engine over Manager → ChecksumStore → MemStore,
// with the raw MemStore exposed so tests can corrupt vectors behind the
// integrity layer's back.
type corruptionRig struct {
	e     *Engine
	mgr   *ooc.Manager
	inner *ooc.MemStore
}

func newCorruptionRig(t *testing.T, taxa, sites, slots int, seed int64) *corruptionRig {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := tipNames(taxa)
	pats := randomAlignment(t, names, sites, rng, bio.DNA)
	tr, err := tree.RandomTopology(names, rng, 0.05, 0.15)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewJC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetGamma(0.8, 4); err != nil {
		t.Fatal(err)
	}
	vecLen := VectorLength(m, pats.NumPatterns())
	n := tr.NumInner()
	inner := ooc.NewMemStore(n, vecLen)
	cs, err := ooc.NewChecksumStore(inner, filepath.Join(t.TempDir(), "v.sum"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: n, VectorLen: vecLen, Slots: slots,
		Strategy: ooc.NewLRU(n), ReadSkipping: true, Store: cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(tr, pats, m, mgr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { mgr.Close(); cs.Close() })
	return &corruptionRig{e: e, mgr: mgr, inner: inner}
}

// corruptNonResident flips data in every vector that is written to the
// store but not currently resident in RAM, returning how many it hit.
func (r *corruptionRig) corruptNonResident(t *testing.T) int {
	t.Helper()
	n := r.mgr.NumVectors()
	buf := make([]float64, r.mgr.VectorLen())
	hit := 0
	for vi := 0; vi < n; vi++ {
		if r.mgr.Resident(vi) {
			continue
		}
		if err := r.inner.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		written := false
		for _, x := range buf {
			if x != 0 {
				written = true
				break
			}
		}
		if !written {
			continue
		}
		buf[len(buf)/2] += 1.0
		if err := r.inner.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		hit++
	}
	return hit
}

// TestFaultCorruptionRecoveryDeterministic runs the same edge-hopping
// workload on a clean rig and on a rig whose stored vectors are
// corrupted mid-run: the engine must detect every corrupt fault-in,
// recompute the lost subtrees, and land on bit-identical likelihoods.
func TestFaultCorruptionRecoveryDeterministic(t *testing.T) {
	const taxa, sites, slots, seed = 16, 64, 3, 11

	workload := func(rig *corruptionRig, corrupt bool) []float64 {
		t.Helper()
		e := rig.e
		var lnls []float64
		first, last := e.T.Edges[0], e.T.Edges[len(e.T.Edges)-1]
		lnl, err := e.LogLikelihoodAt(first)
		if err != nil {
			t.Fatal(err)
		}
		lnls = append(lnls, lnl)
		if corrupt {
			if hit := rig.corruptNonResident(t); hit == 0 {
				t.Fatal("no stored vectors to corrupt; shrink slots")
			}
		}
		// Hopping to the far edge re-orients the path between the two
		// edges, reading valid subtree roots — some of them corrupt.
		lnl, err = e.LogLikelihoodAt(last)
		if err != nil {
			t.Fatal(err)
		}
		lnls = append(lnls, lnl)
		// And back, over the now-healed store.
		lnl, err = e.LogLikelihoodAt(first)
		if err != nil {
			t.Fatal(err)
		}
		return append(lnls, lnl)
	}

	clean := workload(newCorruptionRig(t, taxa, sites, slots, seed), false)
	rig := newCorruptionRig(t, taxa, sites, slots, seed)
	faulted := workload(rig, true)

	for i := range clean {
		if clean[i] != faulted[i] {
			t.Errorf("lnl[%d]: clean %v, faulted %v (recovery changed the answer)", i, clean[i], faulted[i])
		}
	}
	if rig.e.Stats.Recoveries == 0 {
		t.Error("workload read corrupted vectors but Stats.Recoveries == 0")
	}
	if rig.mgr.PipelineStats().CorruptReads == 0 {
		t.Error("manager saw no corrupt reads")
	}
	if faulted[1] != clean[1] {
		t.Error("post-corruption likelihood diverged")
	}
}

// TestFaultRecoveryBudgetExhausts ensures a store that corrupts every
// read surfaces an error instead of recomputing forever.
func TestFaultRecoveryBudgetExhausts(t *testing.T) {
	rig := newCorruptionRig(t, 12, 32, 3, 13)
	e := rig.e
	if _, err := e.LogLikelihoodAt(e.T.Edges[0]); err != nil {
		t.Fatal(err)
	}
	// Corrupt continuously: after every traversal attempt, re-corrupt
	// whatever was flushed. The recovery budget must eventually stop
	// the loop. We simulate "always corrupt" by corrupting and then
	// asking for an edge evaluation in a loop bounded well above the
	// engine's budget.
	budget := 2*e.T.NumInner() + 8
	sawError := false
	for i := 0; i < budget+4; i++ {
		if rig.corruptNonResident(t) == 0 {
			break
		}
		if _, err := e.LogLikelihoodAt(e.T.Edges[len(e.T.Edges)-1-i%2]); err != nil {
			sawError = true
			break
		}
	}
	// Either the engine kept healing (every pass converged before the
	// budget) or it gave up with an error — both are sound; an infinite
	// loop or a wrong likelihood is not. Reaching this line at all
	// proves termination; cross-check the counters moved.
	if e.Stats.Recoveries == 0 && !sawError {
		t.Error("no recoveries and no error despite repeated corruption")
	}
}
