package plf

import (
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

// benchSetup builds an engine over an in-memory provider.
func benchSetup(b *testing.B, taxa, sites int, gamma bool, dtype bio.DataType) (*Engine, *tree.Tree) {
	b.Helper()
	rng := rand.New(rand.NewSource(7))
	names := tipNames(taxa)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.4)
	if err != nil {
		b.Fatal(err)
	}
	pats := randomAlignment(b, names, sites, rng, dtype)
	m := randomModel(b, rng, dtype, gamma)
	prov := NewInMemoryProvider(tr.NumInner(), VectorLength(m, pats.NumPatterns()))
	e, err := New(tr, pats, m, prov)
	if err != nil {
		b.Fatal(err)
	}
	return e, tr
}

func BenchmarkFullTraversalDNA(b *testing.B) {
	e, tr := benchSetup(b, 64, 500, true, bio.DNA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.FullTraversal(tr.Edges[0]); err != nil {
			b.Fatal(err)
		}
	}
	sitesPerOp := float64(e.nPat * tr.NumInner())
	b.ReportMetric(sitesPerOp*float64(b.N)/b.Elapsed().Seconds(), "patterns/s")
}

func BenchmarkFullTraversalAA(b *testing.B) {
	e, tr := benchSetup(b, 32, 100, true, bio.AA)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := e.FullTraversal(tr.Edges[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvaluate(b *testing.B) {
	e, tr := benchSetup(b, 64, 500, true, bio.DNA)
	if _, err := e.LogLikelihood(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.evaluate(tr.Edges[0]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimizeBranch(b *testing.B) {
	e, tr := benchSetup(b, 64, 500, true, bio.DNA)
	if _, err := e.LogLikelihood(); err != nil {
		b.Fatal(err)
	}
	edge := tr.Edges[3]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.OptimizeBranch(edge); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPartialTraversalWalk(b *testing.B) {
	// Evaluating every edge in sequence: the partial-traversal fast path.
	e, tr := benchSetup(b, 64, 300, true, bio.DNA)
	if _, err := e.LogLikelihood(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, edge := range tr.Edges {
			if _, err := e.LogLikelihoodAt(edge); err != nil {
				b.Fatal(err)
			}
		}
	}
}
