package plf

import (
	"math/rand"
	"testing"
	"time"

	"oocphylo/internal/tree"
)

// costedProvider wraps InMemoryProvider with a scripted per-vector
// fetch cost, standing in for a tiered store with some vectors remote.
type costedProvider struct {
	*InMemoryProvider
	cost map[int]time.Duration // vi -> remote RTT; absent = local
}

func (p *costedProvider) FetchCost(vi int) (time.Duration, bool) {
	d, ok := p.cost[vi]
	return d, ok
}

func TestRecomputePolicyTradesFetchForNewview(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	names := tipNames(12)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 60, rng, 0)
	m := randomModel(t, rng, 0, true)
	cl, err := CarrierLength(m, pats.NumPatterns(), PrecisionF64)
	if err != nil {
		t.Fatal(err)
	}
	prov := &costedProvider{
		InMemoryProvider: NewInMemoryProvider(tr.NumInner(), cl),
		cost:             map[int]time.Duration{},
	}
	e, err := New(tr, pats, m, prov)
	if err != nil {
		t.Fatal(err)
	}
	want, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}

	// Mark every vector remote-expensive. With the policy off, a second
	// evaluation at a different edge fetches the valid vectors it reads.
	for vi := 0; vi < tr.NumInner(); vi++ {
		prov.cost[vi] = 20 * time.Millisecond
	}
	edge := tr.Edges[len(tr.Edges)/2]
	if _, err := e.LogLikelihoodAt(edge); err != nil {
		t.Fatal(err)
	}
	if e.Stats.PolicyRecomputes != 0 {
		t.Fatalf("policy fired while disabled: %d", e.Stats.PolicyRecomputes)
	}

	// Policy on: plan-time conversion recomputes remote-expensive reads
	// whose inputs are local. Force a replan back at the first edge with
	// everything priced remote except tips' parents' inputs — the policy
	// must fire at least once and the likelihood must not move a bit.
	e.EnableRecomputePolicy(10 * time.Millisecond)
	nvBefore := e.Stats.Newviews
	got, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("policy changed the likelihood: %v != %v", got, want)
	}
	if e.Stats.PolicyRecomputes == 0 {
		t.Error("policy never converted a fetch into a recompute")
	}
	if e.Stats.Newviews == nvBefore {
		t.Error("conversions must show up as extra newviews")
	}

	// Below threshold: no conversions.
	for vi := range prov.cost {
		prov.cost[vi] = time.Millisecond
	}
	fired := e.Stats.PolicyRecomputes
	if _, err := e.LogLikelihoodAt(edge); err != nil {
		t.Fatal(err)
	}
	if e.Stats.PolicyRecomputes != fired {
		t.Errorf("policy fired below threshold: %d -> %d", fired, e.Stats.PolicyRecomputes)
	}
}

// TestRecomputePolicyLocalityGuard pins the conversion to exactly one
// newview: a candidate whose own input is itself remote (or oriented
// away) must not be converted, or the recompute would cascade into the
// reads it was meant to avoid.
func TestRecomputePolicyLocalityGuard(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	names := tipNames(16)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 40, rng, 0)
	m := randomModel(t, rng, 0, false)
	cl, err := CarrierLength(m, pats.NumPatterns(), PrecisionF64)
	if err != nil {
		t.Fatal(err)
	}
	prov := &costedProvider{
		InMemoryProvider: NewInMemoryProvider(tr.NumInner(), cl),
		cost:             map[int]time.Duration{},
	}
	e, err := New(tr, pats, m, prov)
	if err != nil {
		t.Fatal(err)
	}
	e.EnableRecomputePolicy(10 * time.Millisecond)
	want, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	// Everything remote-expensive: no candidate has local inputs, so
	// the guard must hold the policy back entirely (deep inner nodes)
	// or fire only where inputs are tips.
	for vi := 0; vi < tr.NumInner(); vi++ {
		prov.cost[vi] = time.Hour
	}
	got, err := e.LogLikelihoodAt(tr.Edges[len(tr.Edges)-1])
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("likelihood moved: %v != %v", got, want)
	}
	// Whatever fired, the recovery budget must never have been needed:
	// the policy cannot loop (bounded fixpoint) and cannot corrupt.
	if e.Stats.Recoveries != 0 {
		t.Errorf("policy interacted with corruption recovery: %+v", e.Stats)
	}
}
