package plf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

func TestInvariantMixtureMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		names := tipNames(n)
		tr, err := tree.RandomTopology(names, rng, 0.01, 0.6)
		if err != nil {
			return false
		}
		pats := randomAlignment(t, names, 15+rng.Intn(50), rng, bio.DNA)
		m := randomModel(t, rng, bio.DNA, rng.Intn(2) == 0)
		if err := m.SetInvariant(rng.Float64() * 0.8); err != nil {
			return false
		}
		e := newEngine(t, tr, pats, m)
		got, err := e.LogLikelihood()
		if err != nil {
			return false
		}
		want, err := ReferenceLogLikelihood(tr, pats, m)
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestInvariantZeroMatchesPlainModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := tipNames(8)
	tr, _ := tree.RandomTopology(names, rng, 0.03, 0.4)
	pats := randomAlignment(t, names, 60, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e1 := newEngine(t, tr.Clone(), pats, m.Clone())
	plain, err := e1.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	if err := m2.SetInvariant(0); err != nil {
		t.Fatal(err)
	}
	e2 := newEngine(t, tr.Clone(), pats, m2)
	withZero, err := e2.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if plain != withZero {
		t.Errorf("pInv=0 must be exactly the plain model: %v vs %v", plain, withZero)
	}
}

func TestInvariantDerivativesMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	names := tipNames(9)
	tr, _ := tree.RandomTopology(names, rng, 0.03, 0.5)
	pats := randomAlignment(t, names, 60, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	if err := m.SetInvariant(0.3); err != nil {
		t.Fatal(err)
	}
	e := newEngine(t, tr, pats, m)
	edge := tr.Edges[1]
	if err := e.Traverse(edge); err != nil {
		t.Fatal(err)
	}
	if err := e.buildSumTable(edge); err != nil {
		t.Fatal(err)
	}
	for _, bt := range []float64{0.05, 0.3, 1.0} {
		_, d1, d2 := e.sumTableValues(bt)
		const h1, h2 = 1e-6, 1e-4
		lp, _, _ := e.sumTableValues(bt + h1)
		lm, _, _ := e.sumTableValues(bt - h1)
		fd1 := (lp - lm) / (2 * h1)
		lp2, _, _ := e.sumTableValues(bt + h2)
		lm2, _, _ := e.sumTableValues(bt - h2)
		l0, _, _ := e.sumTableValues(bt)
		fd2 := (lp2 - 2*l0 + lm2) / (h2 * h2)
		if math.Abs(d1-fd1) > 1e-4*(1+math.Abs(fd1)) {
			t.Errorf("t=%v: d1 = %v, finite diff %v", bt, d1, fd1)
		}
		if math.Abs(d2-fd2) > 1e-3*(1+math.Abs(fd2)) {
			t.Errorf("t=%v: d2 = %v, finite diff %v", bt, d2, fd2)
		}
	}
	// The sum-table likelihood still matches a direct evaluation.
	direct, err := e.LogLikelihoodAt(edge)
	if err != nil {
		t.Fatal(err)
	}
	viaTable, err := e.EvaluateAtLength(edge, edge.Length)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(direct-viaTable) > 1e-8*(1+math.Abs(direct)) {
		t.Errorf("evaluate %v vs sum table %v under +I", direct, viaTable)
	}
}

func TestInvariantImprovesFitOnInvariantRichData(t *testing.T) {
	// An alignment where half the sites are constant: the +I model must
	// beat the plain Γ fit at the same branch lengths.
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	rng := rand.New(rand.NewSource(9))
	names := tipNames(6)
	for _, name := range names {
		buf := make([]byte, 200)
		for j := range buf {
			if j < 100 {
				buf[j] = "ACGT"[j%4] // constant across taxa
			} else {
				buf[j] = "ACGT"[rng.Intn(4)]
			}
		}
		if err := a.AddString(name, string(buf)); err != nil {
			t.Fatal(err)
		}
	}
	pats, _ := bio.Compress(a)
	tr, _ := tree.RandomTopology(names, rand.New(rand.NewSource(2)), 0.2, 0.5)
	m := randomModel(t, rand.New(rand.NewSource(3)), bio.DNA, true)
	e0 := newEngine(t, tr.Clone(), pats, m.Clone())
	plain, err := e0.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	mI := m.Clone()
	if err := mI.SetInvariant(0.4); err != nil {
		t.Fatal(err)
	}
	eI := newEngine(t, tr.Clone(), pats, mI)
	withI, err := eI.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if withI <= plain {
		t.Errorf("+I should improve invariant-rich fit: %v vs %v", withI, plain)
	}
}

func TestSetInvariantValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randomModel(t, rng, bio.DNA, false)
	for _, p := range []float64{-0.1, 1.0, 1.5, math.NaN()} {
		if err := m.SetInvariant(p); err == nil {
			t.Errorf("pInv=%v must be rejected", p)
		}
	}
	if err := m.SetInvariant(0.5); err != nil {
		t.Fatal(err)
	}
	if m.Clone().PInv != 0.5 {
		t.Error("Clone lost PInv")
	}
}
