package plf

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

func cancelTestEngine(tb testing.TB, seed int64) *Engine {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := tipNames(12)
	pats := randomAlignment(tb, names, 300, rng, bio.DNA)
	m, err := model.NewJC(4)
	if err != nil {
		tb.Fatal(err)
	}
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
	if err != nil {
		tb.Fatal(err)
	}
	return newEngine(tb, tr, pats, m)
}

func TestEngineContextCancelAbortsTraversal(t *testing.T) {
	e := cancelTestEngine(t, 31)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e.SetContext(ctx)
	if _, err := e.LogLikelihood(); !errors.Is(err, context.Canceled) {
		t.Fatalf("LogLikelihood with cancelled ctx: err = %v, want context.Canceled", err)
	}
	// Detaching the context restores normal operation; nothing is torn.
	e.SetContext(nil)
	e.InvalidateAll()
	lnl, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(lnl) || math.IsInf(lnl, 0) {
		t.Fatalf("lnL after recovery = %v", lnl)
	}
}

func TestEngineSafePointRunsPerStep(t *testing.T) {
	e := cancelTestEngine(t, 33)
	calls := 0
	e.SetSafePoint(func() error { calls++; return nil })
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	// One invocation before every newview: a full 12-taxon traversal
	// has 10 inner nodes, so the hook must fire at least that often.
	if want := e.T.NumInner(); calls < want {
		t.Errorf("safe-point hook ran %d times, want >= %d", calls, want)
	}
	// A hook error aborts the traversal and is surfaced wrapped.
	sentinel := errors.New("governor says no")
	e.SetSafePoint(func() error { return sentinel })
	e.InvalidateAll()
	if _, err := e.LogLikelihood(); !errors.Is(err, sentinel) {
		t.Errorf("hook error not propagated: %v", err)
	}
	// Removing the hook restores normal operation.
	e.SetSafePoint(nil)
	e.InvalidateAll()
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineCancelMidTraversalLeavesRecoverableState(t *testing.T) {
	e := cancelTestEngine(t, 35)
	want, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}

	// Cancel from inside the traversal: the safe-point hook trips the
	// context after a few steps, so the abort happens mid-plan.
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	steps := 0
	e.SetSafePoint(func() error {
		steps++
		if steps == 3 {
			cancel()
		}
		return nil
	})
	e.InvalidateAll()
	if _, err := e.LogLikelihood(); !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-traversal cancel: err = %v, want context.Canceled", err)
	}

	// No vector was left half-computed: a fresh full recompute agrees
	// bit for bit with the pre-cancel value.
	e.SetContext(nil)
	e.SetSafePoint(nil)
	e.InvalidateAll()
	got, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Errorf("lnL after interrupted traversal %.17g != baseline %.17g", got, want)
	}
}
