package plf

import (
	"fmt"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

// The buffer-recycling contract: once an engine is warm, the evaluate
// and derivative entry points allocate nothing. Kernel arguments,
// parallel-for bodies and the Newton objective are all pre-bound on the
// engine, so steady-state likelihood work never touches the garbage
// collector. (Cold paths — first traversal, P-matrix cache fills at new
// branch lengths — may allocate; that is cache population, not per-call
// garbage.)
func TestHotPathAllocs(t *testing.T) {
	cases := []struct {
		dtype bio.DataType
		prec  string
	}{
		{bio.DNA, PrecisionF64},
		{bio.AA, PrecisionF64},
		{bio.AA, PrecisionF32},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v_%s", tc.dtype, tc.prec), func(t *testing.T) {
			rng := rand.New(rand.NewSource(9))
			names := tipNames(16)
			tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			sites := 500
			if tc.dtype == bio.AA {
				sites = 150
			}
			pats := randomAlignment(t, names, sites, rng, tc.dtype)
			m := randomModel(t, rng, tc.dtype, true)
			e := newEngineP(t, tr, pats, m, tc.prec)
			edge := e.T.Edges[0]

			// Warm every path once: traversal, evaluation, sum table,
			// Newton. After this the caches hold everything the steady
			// state needs.
			if _, err := e.LogLikelihoodAt(edge); err != nil {
				t.Fatal(err)
			}
			if _, err := e.EvaluateAtLength(edge, 0.1); err != nil {
				t.Fatal(err)
			}
			if _, err := e.OptimizeBranch(edge); err != nil {
				t.Fatal(err)
			}

			checks := []struct {
				name string
				fn   func()
			}{
				{"LogLikelihoodAt", func() { e.LogLikelihoodAt(edge) }},
				{"EvaluateAtLength", func() { e.EvaluateAtLength(edge, 0.1) }},
				{"OptimizeBranch", func() { e.OptimizeBranch(edge) }},
				{"sumTableValues", func() { e.sumTableValues(0.05) }},
			}
			for _, c := range checks {
				if n := testing.AllocsPerRun(100, c.fn); n != 0 {
					t.Errorf("%s: %v allocations per warm call, want 0", c.name, n)
				}
			}
		})
	}
}
