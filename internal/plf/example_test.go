package plf_test

import (
	"fmt"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/plf"
	"oocphylo/internal/tree"
)

// The minimal end-to-end likelihood computation: alignment -> patterns,
// tree, model, engine over in-RAM vector storage.
func ExampleEngine() {
	aln := bio.NewAlignment(bio.NewDNAAlphabet())
	for _, row := range [][2]string{
		{"human", "ACGTACGTAC"},
		{"chimp", "ACGTACGTAC"},
		{"mouse", "ACGAACGTTC"},
		{"rat", "ACGAACGTTC"},
	} {
		if err := aln.AddString(row[0], row[1]); err != nil {
			panic(err)
		}
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		panic(err)
	}
	t, err := tree.ParseNewick("((human:0.01,chimp:0.01):0.05,(mouse:0.05,rat:0.05):0.05);")
	if err != nil {
		panic(err)
	}
	m, err := model.NewJC(4)
	if err != nil {
		panic(err)
	}
	provider := plf.NewInMemoryProvider(t.NumInner(), plf.VectorLength(m, pats.NumPatterns()))
	engine, err := plf.New(t, pats, m, provider)
	if err != nil {
		panic(err)
	}
	lnl, err := engine.LogLikelihood()
	if err != nil {
		panic(err)
	}
	fmt.Printf("log likelihood: %.4f\n", lnl)
	fmt.Println("newviews (one per inner node):", engine.Stats.Newviews)
	// Output:
	// log likelihood: -22.7561
	// newviews (one per inner node): 2
}

// Branch-length optimisation via the eigen-basis sum table: only the
// two endpoint vectors are touched, however many Newton steps run.
func ExampleEngine_OptimizeBranch() {
	aln := bio.NewAlignment(bio.NewDNAAlphabet())
	_ = aln.AddString("x", "AAAAAAAAAACCCCCCCCCC")
	_ = aln.AddString("y", "AAAAAAAAAACCCCCCCCGG")
	pats, _ := bio.Compress(aln)
	pair := tree.NewPair("x", "y", 0.5) // poor initial length
	m, _ := model.NewJC(4)
	engine, err := plf.New(pair, pats, m,
		plf.NewInMemoryProvider(0, plf.VectorLength(m, pats.NumPatterns())))
	if err != nil {
		panic(err)
	}
	lnl, err := engine.OptimizeBranch(pair.Edges[0])
	if err != nil {
		panic(err)
	}
	fmt.Printf("ML branch length: %.4f\n", pair.Edges[0].Length)
	fmt.Printf("log likelihood: %.4f\n", lnl)
	// Output:
	// ML branch length: 0.1073
	// log likelihood: -36.4248
}
