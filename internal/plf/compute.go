package plf

// compute holds every piece of engine state whose element type follows
// the compute precision: the active kernel set, the transition-matrix
// cache, the precision's scaling constants, converted model constants
// and all numeric scratch. An engine owns exactly one compute — c64 or
// c32 — and each entry point (newview, evaluate, buildSumTable,
// sumTableValues) dispatches on which is non-nil before running a
// generic body. The float64 instantiation aliases the model's own
// slices and performs the exact operation sequence the pre-generic
// engine did, so the refactor cannot move a single f64 result bit.
type compute[F Float] struct {
	kern   kernelSet[F]
	pcache *pcache[F]

	// Scaling constants for this precision (see precision.go). flush is
	// the store-side denormal flush threshold — zero (never fires) in
	// f64 mode.
	minLik   F
	scaleFac F
	flush    F
	logScale float64

	// Model constants in precision F, refreshed whenever the model's
	// version changes (aliased, not copied, for float64). tipInd is
	// engine-owned and fixed at construction.
	mver   uint64
	haveM  bool
	freqs  []F
	evec   []F
	ievec  []F
	tipInd []F

	// Scratch buffers, reused across steps (the former engine fields).
	pL, pR   []F // nCat × k² transition matrices (cache-off path)
	pTmp     []float64
	tipSumL  []F // nCat × nm × k (cache-off path)
	tipSumR  []F
	prodTT   []F // tip×tip mask-pair product table (lazily sized)
	sumTab   []F // nPat × nCat × k derivative sum table
	nv       nvArgs[F]
	ev       evArgs[F]
	sa       sumArgs[F]

	// Pre-bound parallelFor bodies: building these closures once per
	// engine keeps the newview/evaluate/sum-table hot paths free of
	// per-call heap allocations (the closures would otherwise escape
	// into the worker pool's task channel on every call).
	nvBody func(lo, hi int)
	evBody func(lo, hi int)
	saBody func(lo, hi int)
	svBody func(lo, hi int)
	// svT is the branch-length argument of the sum-table value pass,
	// staged here so svBody needs no per-call closure.
	svT float64
}

// newCompute builds the precision-typed half of an engine.
func newCompute[F Float](e *Engine) *compute[F] {
	cs := &compute[F]{}
	if isF64[F]() {
		cs.minLik = F(minLikelihood)
		cs.scaleFac = F(scaleFactor)
		cs.logScale = logScaleFactor
	} else {
		cs.minLik = F(minLikelihood32)
		cs.scaleFac = F(scaleFactor32)
		cs.flush = F(flushDenormal32)
		cs.logScale = logScaleFactor32
		// Staging buffer: the model emits float64 matrices; the f32 path
		// converts them once per cache miss.
		cs.pTmp = make([]float64, e.nCat*e.nStates*e.nStates)
	}
	k2 := e.nStates * e.nStates
	cs.pL = make([]F, e.nCat*k2)
	cs.pR = make([]F, e.nCat*k2)
	cs.tipSumL = make([]F, e.nCat*len(e.maskList)*e.nStates)
	cs.tipSumR = make([]F, e.nCat*len(e.maskList)*e.nStates)
	cs.sumTab = make([]F, e.nPat*e.nCat*e.nStates)
	cs.tipInd = asF[F](nil, e.tipInd)
	cs.nvBody = func(lo, hi int) { cs.kern.newview(e, cs, &cs.nv, lo, hi) }
	cs.evBody = func(lo, hi int) { cs.kern.evaluate(e, cs, &cs.ev, lo, hi) }
	cs.saBody = func(lo, hi int) { cs.kern.sumTable(e, cs, &cs.sa, lo, hi) }
	cs.svBody = func(lo, hi int) { sumTableTerms(e, cs, cs.svT, lo, hi) }
	return cs
}

// syncModel refreshes the converted model constants after a parameter
// change. Model mutations bump Version() (the same signal the P cache
// invalidates on), so the check is one uint64 compare per call.
func (cs *compute[F]) syncModel(e *Engine) {
	if v := e.M.Version(); !cs.haveM || cs.mver != v {
		cs.mver = v
		cs.haveM = true
		cs.freqs = asF(cs.freqs, e.M.Freqs)
		cs.evec = asF(cs.evec, e.M.Evec)
		cs.ievec = asF(cs.ievec, e.M.Ievec)
	}
}
