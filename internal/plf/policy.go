package plf

// Fetch-vs-recompute policy. With a tiered vector store, reading a
// valid-but-evicted ancestral vector can mean a remote round trip;
// recomputing it from its children is one newview over data that is
// already local. Any inner vector is a pure function of its children
// (the same identity the corruption-recovery path exploits), so the
// engine may freely trade a fetch for a recompute without changing a
// single bit of the result — only the I/O pattern moves.
//
// The policy runs at plan time: after EdgeTraversal emits the minimal
// step list, every vector the plan would *read* (a valid inner child
// not recomputed by the plan) is priced through the provider's
// FetchCost oracle. A read that is remote and above the configured
// threshold — and whose own inputs are local (tips, or vectors the
// store can serve without a remote trip) and already oriented the right
// way — is converted into a recompute by invalidating the node and
// replanning. The orientation guard keeps the conversion exactly one
// extra newview; the locality guard keeps it from cascading into the
// very remote reads it is trying to avoid.
//
// Degraded mode flips the same machinery from an optimization into a
// survival strategy. When the provider reports Degraded() — the remote
// tier's circuit breaker is open — every remote read WILL fail, so the
// cost threshold and both guards are dropped: any valid-but-remote
// read, the evaluation edge's own endpoints included, is invalidated
// and recomputed, cascading down until the plan grounds out in tips
// and locally served vectors. The result is still bit-identical (a
// recompute reproduces the stored bytes exactly); only the work moves
// from the network to the CPU. Degraded conversion needs no
// EnableRecomputePolicy opt-in — a breaker-open store degrades every
// run that sits on top of it.

import (
	"time"

	"oocphylo/internal/tree"
)

// fetchCoster is the structural interface a provider (or the store
// below it) implements to price vector fetches. ooc.Manager forwards
// it to the backing store; tiered stores answer with a live RTT
// estimate for vectors that would need a remote trip.
type fetchCoster interface {
	FetchCost(vi int) (time.Duration, bool)
}

// degrader is the structural interface a provider implements to report
// its remote tier unavailable (circuit breaker open). ooc.Manager
// forwards it to the backing store.
type degrader interface {
	Degraded() bool
}

// EnableRecomputePolicy turns on fetch-vs-recompute planning: any
// planned read the provider prices at or above threshold (and flags as
// remote) is recomputed locally instead, when that recompute is a
// single newview over local inputs. A zero or negative threshold
// disables the policy. The policy is a no-op when the provider does not
// implement FetchCost. Degraded-mode conversion (see above) is active
// regardless of the threshold.
func (e *Engine) EnableRecomputePolicy(threshold time.Duration) {
	e.recomputeThresh = threshold
}

// planTraversal builds the minimal plan for edge and applies the
// recompute policy to it.
func (e *Engine) planTraversal(edge *tree.Edge) []tree.Step {
	steps := tree.EdgeTraversal(e.T, edge, e.orient)
	fc, ok := e.prov.(fetchCoster)
	if !ok {
		return steps
	}
	degraded := false
	if dg, ok := e.prov.(degrader); ok && dg.Degraded() {
		degraded = true
	}
	if e.recomputeThresh <= 0 && !degraded {
		return steps
	}
	// Each conversion invalidates one node, and invalidated nodes join
	// the plan (never reconsidered), so the fixpoint is bounded by the
	// inner-node count. With the locality guard it converges in about
	// two rounds; in degraded mode the cascade may walk a whole evicted
	// subtree down to its tips, still within the same bound.
	for round := 0; round < e.T.NumInner(); round++ {
		changed := false
		inPlan := make(map[*tree.Node]bool, len(steps))
		for i := range steps {
			inPlan[steps[i].Node] = true
		}
		// The evaluation itself reads the two endpoint vectors, which
		// EdgeTraversal leaves out of the plan when they are valid. A
		// valid-but-remote endpoint is just as unreadable while
		// degraded as any planned read — convert it too.
		if degraded {
			for _, end := range []*tree.Node{edge.N[0], edge.N[1]} {
				if end.IsTip() || inPlan[end] || e.orient[end.Index] == nil {
					continue
				}
				if _, remote := fc.FetchCost(e.vi(end)); !remote {
					continue
				}
				e.orient[end.Index] = nil
				e.Stats.PolicyRecomputes++
				e.Stats.DegradedRecomputes++
				inPlan[end] = true
				changed = true
			}
		}
		for i := range steps {
			for _, c := range []*tree.Node{steps[i].Left, steps[i].Right} {
				if c.IsTip() || inPlan[c] {
					continue
				}
				d, remote := fc.FetchCost(e.vi(c))
				if !remote {
					continue
				}
				if !degraded {
					if d < e.recomputeThresh {
						continue
					}
					if !e.recomputeIsLocal(c, steps[i].Node, fc) {
						continue
					}
				}
				e.orient[c.Index] = nil
				e.Stats.PolicyRecomputes++
				if degraded {
					e.Stats.DegradedRecomputes++
				}
				inPlan[c] = true
				changed = true
			}
		}
		if !changed {
			break
		}
		steps = tree.EdgeTraversal(e.T, edge, e.orient)
	}
	return steps
}

// recomputeIsLocal reports whether recomputing node c (oriented toward
// parent) is exactly one newview over local inputs: each child of c
// away from parent must be a tip, or an inner vector that is both
// oriented toward c (so invalidating c does not drag its subtree into
// the plan) and servable without a remote trip.
func (e *Engine) recomputeIsLocal(c, parent *tree.Node, fc fetchCoster) bool {
	for _, adj := range c.Adj {
		g := adj.Other(c)
		if g == parent || g.IsTip() {
			continue
		}
		if e.orient[g.Index] != c {
			return false
		}
		if _, remote := fc.FetchCost(e.vi(g)); remote {
			return false
		}
	}
	return true
}
