package plf

// Fetch-vs-recompute policy. With a tiered vector store, reading a
// valid-but-evicted ancestral vector can mean a remote round trip;
// recomputing it from its children is one newview over data that is
// already local. Any inner vector is a pure function of its children
// (the same identity the corruption-recovery path exploits), so the
// engine may freely trade a fetch for a recompute without changing a
// single bit of the result — only the I/O pattern moves.
//
// The policy runs at plan time: after EdgeTraversal emits the minimal
// step list, every vector the plan would *read* (a valid inner child
// not recomputed by the plan) is priced through the provider's
// FetchCost oracle. A read that is remote and above the configured
// threshold — and whose own inputs are local (tips, or vectors the
// store can serve without a remote trip) and already oriented the right
// way — is converted into a recompute by invalidating the node and
// replanning. The orientation guard keeps the conversion exactly one
// extra newview; the locality guard keeps it from cascading into the
// very remote reads it is trying to avoid.

import (
	"time"

	"oocphylo/internal/tree"
)

// fetchCoster is the structural interface a provider (or the store
// below it) implements to price vector fetches. ooc.Manager forwards
// it to the backing store; tiered stores answer with a live RTT
// estimate for vectors that would need a remote trip.
type fetchCoster interface {
	FetchCost(vi int) (time.Duration, bool)
}

// EnableRecomputePolicy turns on fetch-vs-recompute planning: any
// planned read the provider prices at or above threshold (and flags as
// remote) is recomputed locally instead, when that recompute is a
// single newview over local inputs. A zero or negative threshold
// disables the policy. The policy is a no-op when the provider does not
// implement FetchCost.
func (e *Engine) EnableRecomputePolicy(threshold time.Duration) {
	e.recomputeThresh = threshold
}

// planTraversal builds the minimal plan for edge and applies the
// recompute policy to it.
func (e *Engine) planTraversal(edge *tree.Edge) []tree.Step {
	steps := tree.EdgeTraversal(e.T, edge, e.orient)
	if e.recomputeThresh <= 0 {
		return steps
	}
	fc, ok := e.prov.(fetchCoster)
	if !ok {
		return steps
	}
	// Each conversion invalidates one node, and invalidated nodes join
	// the plan (never reconsidered), so the fixpoint is bounded by the
	// inner-node count. In practice it converges in two rounds: the
	// locality guard means replanning only introduces local reads.
	for round := 0; round < e.T.NumInner(); round++ {
		changed := false
		inPlan := make(map[*tree.Node]bool, len(steps))
		for i := range steps {
			inPlan[steps[i].Node] = true
		}
		for i := range steps {
			for _, c := range []*tree.Node{steps[i].Left, steps[i].Right} {
				if c.IsTip() || inPlan[c] {
					continue
				}
				d, remote := fc.FetchCost(e.vi(c))
				if !remote || d < e.recomputeThresh {
					continue
				}
				if !e.recomputeIsLocal(c, steps[i].Node, fc) {
					continue
				}
				e.orient[c.Index] = nil
				e.Stats.PolicyRecomputes++
				inPlan[c] = true
				changed = true
			}
		}
		if !changed {
			break
		}
		steps = tree.EdgeTraversal(e.T, edge, e.orient)
	}
	return steps
}

// recomputeIsLocal reports whether recomputing node c (oriented toward
// parent) is exactly one newview over local inputs: each child of c
// away from parent must be a tip, or an inner vector that is both
// oriented toward c (so invalidating c does not drag its subtree into
// the plan) and servable without a remote trip.
func (e *Engine) recomputeIsLocal(c, parent *tree.Node, fc fetchCoster) bool {
	for _, adj := range c.Adj {
		g := adj.Other(c)
		if g == parent || g.IsTip() {
			continue
		}
		if e.orient[g.Index] != c {
			return false
		}
		if _, remote := fc.FetchCost(e.vi(g)); remote {
			return false
		}
	}
	return true
}
