package plf

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

func TestSumTableMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	names := tipNames(10)
	tr, _ := tree.RandomTopology(names, rng, 0.03, 0.5)
	pats := randomAlignment(t, names, 70, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)
	for _, edge := range []*tree.Edge{tr.Edges[0], tr.Edges[3], tr.Edges[len(tr.Edges)-1]} {
		direct, err := e.LogLikelihoodAt(edge)
		if err != nil {
			t.Fatal(err)
		}
		viaTable, err := e.EvaluateAtLength(edge, edge.Length)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(direct-viaTable) > 1e-8*(1+math.Abs(direct)) {
			t.Fatalf("edge %d: evaluate %v, sum table %v", edge.Index, direct, viaTable)
		}
	}
}

func TestSumTablePredictsOtherLengths(t *testing.T) {
	// The sum table is built once but must predict the likelihood at ANY
	// length of that branch; verify against re-evaluation.
	rng := rand.New(rand.NewSource(43))
	names := tipNames(8)
	tr, _ := tree.RandomTopology(names, rng, 0.03, 0.5)
	pats := randomAlignment(t, names, 50, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)
	edge := tr.Edges[2]
	for _, bt := range []float64{0.01, 0.1, 0.5, 2.0} {
		viaTable, err := e.EvaluateAtLength(edge, bt)
		if err != nil {
			t.Fatal(err)
		}
		old := edge.Length
		edge.Length = bt
		// Endpoint vectors do not depend on this edge, so no traversal
		// invalidation is needed — that invariance is itself under test.
		direct, err := e.evaluate(edge)
		if err != nil {
			t.Fatal(err)
		}
		edge.Length = old
		if math.Abs(direct-viaTable) > 1e-8*(1+math.Abs(direct)) {
			t.Fatalf("t=%v: evaluate %v, sum table %v", bt, direct, viaTable)
		}
	}
}

func TestDerivativesMatchFiniteDifferences(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	names := tipNames(9)
	tr, _ := tree.RandomTopology(names, rng, 0.03, 0.5)
	pats := randomAlignment(t, names, 60, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)
	edge := tr.Edges[1]
	if err := e.Traverse(edge); err != nil {
		t.Fatal(err)
	}
	if err := e.buildSumTable(edge); err != nil {
		t.Fatal(err)
	}
	for _, bt := range []float64{0.05, 0.2, 0.8} {
		_, d1, d2 := e.sumTableValues(bt)
		// h for the second difference is much larger: |lnL| ~ 1e3 means
		// the three-point stencil loses ~13 digits to cancellation at
		// h = 1e-6 but is fine at 1e-4.
		const h1, h2 = 1e-6, 1e-4
		lp, _, _ := e.sumTableValues(bt + h1)
		lm, _, _ := e.sumTableValues(bt - h1)
		fd1 := (lp - lm) / (2 * h1)
		lp2, _, _ := e.sumTableValues(bt + h2)
		lm2, _, _ := e.sumTableValues(bt - h2)
		l0, _, _ := e.sumTableValues(bt)
		fd2 := (lp2 - 2*l0 + lm2) / (h2 * h2)
		if math.Abs(d1-fd1) > 1e-4*(1+math.Abs(fd1)) {
			t.Errorf("t=%v: d1 = %v, finite diff %v", bt, d1, fd1)
		}
		if math.Abs(d2-fd2) > 1e-3*(1+math.Abs(fd2)) {
			t.Errorf("t=%v: d2 = %v, finite diff %v", bt, d2, fd2)
		}
	}
}

func TestOptimizeBranchTwoTaxonAnalytic(t *testing.T) {
	// ML distance between two sequences under JC: with mismatch fraction
	// p, t* = -3/4 ln(1 - 4p/3).
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	var s1, s2 strings.Builder
	mismatches, total := 12, 100
	for i := 0; i < total; i++ {
		s1.WriteByte('A')
		if i < mismatches {
			s2.WriteByte('C')
		} else {
			s2.WriteByte('A')
		}
	}
	_ = a.AddString("x", s1.String())
	_ = a.AddString("y", s2.String())
	pats, _ := bio.Compress(a)
	tr := tree.NewPair("x", "y", 0.3)
	m, _ := model.NewJC(4)
	e := newEngine(t, tr, pats, m)
	lnl, err := e.OptimizeBranch(tr.Edges[0])
	if err != nil {
		t.Fatal(err)
	}
	p := float64(mismatches) / float64(total)
	want := -0.75 * math.Log(1-4*p/3)
	if math.Abs(tr.Edges[0].Length-want) > 1e-6 {
		t.Errorf("optimised length %v, want %v", tr.Edges[0].Length, want)
	}
	// And the likelihood at the optimum beats nearby lengths.
	for _, delta := range []float64{-0.01, 0.01} {
		tr.Edges[0].Length = want + delta
		l, err := e.LogLikelihoodAt(tr.Edges[0])
		if err != nil {
			t.Fatal(err)
		}
		if l > lnl+1e-9 {
			t.Errorf("length %v has higher lnL than the 'optimum'", want+delta)
		}
	}
}

func TestOptimizeBranchNeverDecreasesLikelihood(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	names := tipNames(12)
	tr, _ := tree.RandomTopology(names, rng, 0.02, 0.6)
	pats := randomAlignment(t, names, 60, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)
	before, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	cur := before
	for _, edge := range tr.Edges {
		lnl, err := e.OptimizeBranch(edge)
		if err != nil {
			t.Fatal(err)
		}
		if lnl < cur-1e-6 {
			t.Fatalf("edge %d: optimisation decreased lnL from %v to %v", edge.Index, cur, lnl)
		}
		cur = lnl
	}
	if cur < before {
		t.Errorf("full branch sweep decreased lnL: %v -> %v", before, cur)
	}
	// The optimised likelihoods the sum table reported must agree with a
	// fresh evaluation of the final tree.
	fresh, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fresh-cur) > 1e-7*(1+math.Abs(fresh)) {
		t.Errorf("sum-table lnL %v disagrees with fresh evaluation %v", cur, fresh)
	}
}

func TestOptimizeBranchClampsAtBounds(t *testing.T) {
	// Identical sequences: ML branch length is 0, clamped to the floor.
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	_ = a.AddString("x", "ACGTACGTACGT")
	_ = a.AddString("y", "ACGTACGTACGT")
	pats, _ := bio.Compress(a)
	tr := tree.NewPair("x", "y", 0.5)
	m, _ := model.NewJC(4)
	e := newEngine(t, tr, pats, m)
	if _, err := e.OptimizeBranch(tr.Edges[0]); err != nil {
		t.Fatal(err)
	}
	if tr.Edges[0].Length > tree.MinBranchLength*1.01 {
		t.Errorf("identical sequences should clamp to the floor, got %v", tr.Edges[0].Length)
	}
}
