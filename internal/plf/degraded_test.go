package plf

// Degraded-mode tests: a provider whose remote tier is unavailable
// (circuit breaker open) must flip the recompute policy so every
// valid-but-remote read becomes a local newview, and a read that fails
// mid-pass with a FailedVector error must be absorbed by the recovery
// path — in both cases with a bit-identical likelihood.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"oocphylo/internal/tree"
)

// outageProvider stands in for a tiered store riding out a network
// outage: scripted fetch costs, a Degraded toggle, and one-shot read
// failures carrying the failed vector index.
type outageProvider struct {
	*InMemoryProvider
	cost     map[int]time.Duration
	degraded bool
	failOnce map[int]bool // vi -> fail the next non-write access
	failures int
}

func (p *outageProvider) FetchCost(vi int) (time.Duration, bool) {
	d, ok := p.cost[vi]
	return d, ok
}

func (p *outageProvider) Degraded() bool { return p.degraded }

// unreadableError mimics ooc.VectorReadError without importing ooc —
// the engine matches the FailedVector method structurally.
type unreadableError struct{ vi int }

func (e *unreadableError) Error() string {
	return fmt.Sprintf("test: vector %d unreadable", e.vi)
}
func (e *unreadableError) FailedVector() int { return e.vi }

func (p *outageProvider) Vector(vi int, write bool, pinned ...int) ([]float64, error) {
	if !write && p.failOnce[vi] {
		delete(p.failOnce, vi)
		p.failures++
		return nil, &unreadableError{vi: vi}
	}
	return p.InMemoryProvider.Vector(vi, write, pinned...)
}

func outageRig(t *testing.T, seed int64, taxa int) (*tree.Tree, *Engine, *outageProvider) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := tipNames(taxa)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 60, rng, 0)
	m := randomModel(t, rng, 0, true)
	cl, err := CarrierLength(m, pats.NumPatterns(), PrecisionF64)
	if err != nil {
		t.Fatal(err)
	}
	prov := &outageProvider{
		InMemoryProvider: NewInMemoryProvider(tr.NumInner(), cl),
		cost:             map[int]time.Duration{},
		failOnce:         map[int]bool{},
	}
	e, err := New(tr, pats, m, prov)
	if err != nil {
		t.Fatal(err)
	}
	return tr, e, prov
}

// TestDegradedModeConvertsRemoteReads pins the breaker-open policy
// flip: while Degraded, every valid-but-remote read is converted to a
// local recompute — even with the cost-threshold policy disabled — and
// the likelihood does not move a bit.
func TestDegradedModeConvertsRemoteReads(t *testing.T) {
	tr, e, prov := outageRig(t, 31, 16)
	want, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}

	// Outage: all vectors priced remote, breaker open. No
	// EnableRecomputePolicy call — degraded mode must not depend on it.
	for vi := 0; vi < tr.NumInner(); vi++ {
		prov.cost[vi] = 20 * time.Millisecond
	}
	prov.degraded = true
	edge := tr.Edges[len(tr.Edges)/2]
	if _, err := e.LogLikelihoodAt(edge); err != nil {
		t.Fatal(err)
	}
	got, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("degraded likelihood %v != clean %v (must be bit-identical)", got, want)
	}
	if e.Stats.DegradedRecomputes == 0 {
		t.Error("no degraded recomputes despite remote-priced reads under an open breaker")
	}

	// Recovery: breaker closed again — the (still remote) costs alone
	// must not convert anything while the threshold policy is off.
	prov.degraded = false
	fired := e.Stats.DegradedRecomputes
	if _, err := e.LogLikelihoodAt(tr.Edges[1]); err != nil {
		t.Fatal(err)
	}
	if e.Stats.DegradedRecomputes != fired {
		t.Errorf("degraded recomputes after recovery: %d -> %d", fired, e.Stats.DegradedRecomputes)
	}
}

// TestUnreadableVectorRecoveredMidPass covers the breaker tripping (or
// retries exhausting) in the middle of a pass: reads failing with a
// FailedVector error are invalidated and recomputed from their
// children, and the evaluation still lands bit-identical.
func TestUnreadableVectorRecoveredMidPass(t *testing.T) {
	tr, e, prov := outageRig(t, 37, 16)
	edge := tr.Edges[len(tr.Edges)/3]
	want, err := e.LogLikelihoodAt(edge)
	if err != nil {
		t.Fatal(err)
	}

	// Every inner vector's next read fails exactly once — the worst
	// mid-pass outage the recovery budget must absorb (recomputes
	// ground at tips, which are always local).
	for vi := 0; vi < tr.NumInner(); vi++ {
		prov.failOnce[vi] = true
	}
	got, err := e.LogLikelihoodAt(edge)
	if err != nil {
		t.Fatalf("pass failed despite recovery path: %v", err)
	}
	if got != want {
		t.Fatalf("recovered likelihood %v != clean %v (must be bit-identical)", got, want)
	}
	if prov.failures == 0 {
		t.Fatal("injection never fired — the pass read nothing")
	}
	if e.Stats.Recoveries == 0 {
		t.Error("reads failed but Stats.Recoveries == 0")
	}
}
