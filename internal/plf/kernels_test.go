package plf

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/ooc"
	"oocphylo/internal/tree"
)

// The kernel-dispatch exactness contract: for ANY kernel mode, worker
// count and provider, every ancestral vector, scale counter, likelihood,
// derivative and optimised branch length must be bit-identical to the
// generic kernels. These tests enforce it on random data.

func bitsEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// kernelPair builds two engines over independent topology clones and
// providers at the given compute precision: one forced to the generic
// kernels (the reference op order), one on the requested mode.
func kernelPair(t *testing.T, tr *tree.Tree, pats *bio.Patterns, m *model.Model, mode, prec string) (gen, spec *Engine) {
	t.Helper()
	gen = newEngineP(t, tr.Clone(), pats, m, prec)
	if err := gen.SetKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	spec = newEngineP(t, tr.Clone(), pats, m, prec)
	if err := spec.SetKernel(mode); err != nil {
		t.Fatal(err)
	}
	return gen, spec
}

// compareState asserts every inner vector and scale counter matches
// bit-for-bit between the two engines.
func compareState(t *testing.T, gen, auto *Engine, tag string) {
	t.Helper()
	for vi := 0; vi < gen.T.NumInner(); vi++ {
		// Only compare vectors both engines consider valid; stale slots
		// may legitimately hold garbage.
		if gen.orient[vi+gen.T.NumTips] == nil || auto.orient[vi+auto.T.NumTips] == nil {
			continue
		}
		xg, err := gen.prov.Vector(vi, false)
		if err != nil {
			t.Fatal(err)
		}
		xa, err := auto.prov.Vector(vi, false)
		if err != nil {
			t.Fatal(err)
		}
		for j := range xg {
			if !bitsEq(xg[j], xa[j]) {
				t.Fatalf("%s: vector %d[%d]: generic %v (%x) vs %s %v (%x)",
					tag, vi, j, xg[j], math.Float64bits(xg[j]),
					auto.KernelName(), xa[j], math.Float64bits(xa[j]))
			}
		}
		for j := range gen.scales[vi] {
			if gen.scales[vi][j] != auto.scales[vi][j] {
				t.Fatalf("%s: scale %d[%d]: generic %d vs %d", tag, vi, j,
					gen.scales[vi][j], auto.scales[vi][j])
			}
		}
	}
}

// TestKernelDifferentialFuzz fuzzes random alignments, models and branch
// lengths through both kernel modes and requires bit-identical results
// everywhere the engines expose them.
func TestKernelDifferentialFuzz(t *testing.T) {
	cases := []struct {
		dtype bio.DataType
		ncat  int
		seeds int
		sites int
		mode  string
		prec  string
		want  string // expected specialised kernel name
	}{
		{bio.DNA, 1, 3, 300, KernelAuto, PrecisionF64, "dna4"},
		{bio.DNA, 4, 3, 300, KernelAuto, PrecisionF64, "dna4"},
		{bio.DNA, 4, 1, 300, KernelBlocked, PrecisionF64, "blocked"},
		{bio.AA, 1, 1, 80, KernelAuto, PrecisionF64, "aa20"},
		{bio.AA, 4, 1, 80, KernelAuto, PrecisionF64, "aa20"},
		{bio.AA, 4, 1, 80, KernelBlocked, PrecisionF64, "blocked"},
		{bio.DNA, 4, 1, 300, KernelAuto, PrecisionF32, "dna4"},
		{bio.AA, 4, 1, 80, KernelAuto, PrecisionF32, "aa20"},
		{bio.AA, 4, 1, 80, KernelBlocked, PrecisionF32, "blocked"},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%v_c%d_%s_%s", tc.dtype, tc.ncat, tc.want, tc.prec)
		t.Run(name, func(t *testing.T) {
			for seed := 0; seed < tc.seeds; seed++ {
				rng := rand.New(rand.NewSource(int64(991*seed + tc.ncat)))
				names := tipNames(10)
				tr, err := tree.RandomTopology(names, rng, 0.01, 0.8)
				if err != nil {
					t.Fatal(err)
				}
				pats := randomAlignment(t, names, tc.sites, rng, tc.dtype)
				m := randomModel(t, rng, tc.dtype, false)
				if err := m.SetGamma(0.3+1.5*rng.Float64(), tc.ncat); err != nil {
					t.Fatal(err)
				}
				gen, auto := kernelPair(t, tr, pats, m, tc.mode, tc.prec)
				if auto.KernelName() != tc.want {
					t.Fatalf("mode %s selected kernel %q, want %q", tc.mode, auto.KernelName(), tc.want)
				}

				for round := 0; round < 3; round++ {
					tag := fmt.Sprintf("seed=%d round=%d", seed, round)
					// Same fresh random branch lengths on both clones,
					// including lengths tiny enough to trigger scaling.
					for ei := range gen.T.Edges {
						l := math.Exp(rng.Float64()*8-6) * 0.1
						gen.T.Edges[ei].Length = l
						auto.T.Edges[ei].Length = l
					}
					gen.InvalidateAll()
					auto.InvalidateAll()

					for _, ei := range []int{0, rng.Intn(len(gen.T.Edges))} {
						lg, err := gen.LogLikelihoodAt(gen.T.Edges[ei])
						if err != nil {
							t.Fatal(err)
						}
						la, err := auto.LogLikelihoodAt(auto.T.Edges[ei])
						if err != nil {
							t.Fatal(err)
						}
						if !bitsEq(lg, la) {
							t.Fatalf("%s edge=%d: lnL generic %.17g vs %s %.17g",
								tag, ei, lg, auto.KernelName(), la)
						}
					}
					compareState(t, gen, auto, tag)

					// Derivative machinery: the sum table must agree at an
					// arbitrary probe length, and Newton must land on the
					// same optimum to the bit.
					ei := rng.Intn(len(gen.T.Edges))
					probe := math.Exp(rng.Float64()*6 - 4)
					dg, err := gen.EvaluateAtLength(gen.T.Edges[ei], probe)
					if err != nil {
						t.Fatal(err)
					}
					da, err := auto.EvaluateAtLength(auto.T.Edges[ei], probe)
					if err != nil {
						t.Fatal(err)
					}
					if !bitsEq(dg, da) {
						t.Fatalf("%s: sum-table lnL(%v) generic %.17g vs %.17g", tag, probe, dg, da)
					}
					og, err := gen.OptimizeBranch(gen.T.Edges[ei])
					if err != nil {
						t.Fatal(err)
					}
					oa, err := auto.OptimizeBranch(auto.T.Edges[ei])
					if err != nil {
						t.Fatal(err)
					}
					if !bitsEq(og, oa) || !bitsEq(gen.T.Edges[ei].Length, auto.T.Edges[ei].Length) {
						t.Fatalf("%s: OptimizeBranch generic (%.17g, t=%v) vs (%.17g, t=%v)",
							tag, og, gen.T.Edges[ei].Length, oa, auto.T.Edges[ei].Length)
					}
				}
			}
		})
	}
}

// TestKernelDifferentialInvariant covers the +I mixture tail, which the
// kernels reach through the shared siteTerm helper.
func TestKernelDifferentialInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	names := tipNames(8)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 200, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	if err := m.SetInvariant(0.3); err != nil {
		t.Fatal(err)
	}
	gen, auto := kernelPair(t, tr, pats, m, KernelAuto, PrecisionF64)
	lg, err := gen.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	la, err := auto.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(lg, la) {
		t.Fatalf("+I lnL: generic %.17g vs %.17g", lg, la)
	}
}

// TestKernelDifferentialOOC runs the specialised kernels over
// synchronous and asynchronous out-of-core managers with multiple
// workers (exercising the worker pool under -race) and requires the
// same bits the in-memory generic reference produces — per data type
// and per compute precision. The f32 rows double as the end-to-end
// proof that f32 sync and f32 async runs are bit-identical.
func TestKernelDifferentialOOC(t *testing.T) {
	cases := []struct {
		dtype bio.DataType
		sites int
		prec  string
	}{
		{bio.DNA, 1500, PrecisionF64},
		{bio.AA, 400, PrecisionF64},
		{bio.DNA, 1500, PrecisionF32},
		{bio.AA, 400, PrecisionF32},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("%v_%s", tc.dtype, tc.prec), func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			names := tipNames(20)
			tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			pats := randomAlignment(t, names, tc.sites, rng, tc.dtype)
			m := randomModel(t, rng, tc.dtype, true)

			run := func(e *Engine) (float64, float64, float64) {
				t.Helper()
				lnl, err := e.LogLikelihood()
				if err != nil {
					t.Fatal(err)
				}
				edge := e.T.Edges[3]
				opt, err := e.OptimizeBranch(edge)
				if err != nil {
					t.Fatal(err)
				}
				return lnl, opt, edge.Length
			}

			ref := newEngineP(t, tr.Clone(), pats, m, tc.prec)
			if err := ref.SetKernel(KernelGeneric); err != nil {
				t.Fatal(err)
			}
			wantLnl, wantOpt, wantLen := run(ref)

			vecLen, err := CarrierLength(m, pats.NumPatterns(), tc.prec)
			if err != nil {
				t.Fatal(err)
			}
			n := tr.NumInner()
			for _, async := range []bool{false, true} {
				for _, workers := range []int{1, 4} {
					name := fmt.Sprintf("async=%v workers=%d", async, workers)
					mgr, err := ooc.NewManager(ooc.Config{
						NumVectors: n, VectorLen: vecLen,
						Slots:        ooc.SlotsForFraction(0.4, n),
						Strategy:     ooc.NewLRU(n),
						ReadSkipping: true,
						Store:        ooc.NewMemStore(n, vecLen),
						Async:        async,
					})
					if err != nil {
						t.Fatal(err)
					}
					e, err := NewWithPrecision(tr.Clone(), pats, m, mgr, tc.prec)
					if err != nil {
						t.Fatal(err)
					}
					e.EnablePrefetch(true)
					e.SetWorkers(workers)
					lnl, opt, length := run(e)
					e.Close()
					if err := mgr.Close(); err != nil {
						t.Fatal(err)
					}
					if !bitsEq(lnl, wantLnl) || !bitsEq(opt, wantOpt) || !bitsEq(length, wantLen) {
						t.Fatalf("%s: (%.17g, %.17g, %v) differs from generic in-memory (%.17g, %.17g, %v)",
							name, lnl, opt, length, wantLnl, wantOpt, wantLen)
					}
				}
			}
		})
	}
}

func TestSetKernelRejectsUnknownMode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := tipNames(4)
	tr, err := tree.RandomTopology(names, rng, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 40, rng, bio.DNA)
	m, _ := model.NewJC(4)
	e := newEngine(t, tr, pats, m)
	if err := e.SetKernel("avx512"); err == nil {
		t.Fatal("unknown kernel mode must be rejected")
	}
	if e.KernelMode() != KernelAuto || e.KernelName() != "dna4" {
		t.Fatalf("failed SetKernel must not change the active kernel, got %s/%s",
			e.KernelMode(), e.KernelName())
	}
}

func TestKernelAutoSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	names := tipNames(4)
	tr, err := tree.RandomTopology(names, rng, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	dna := randomAlignment(t, names, 40, rng, bio.DNA)
	mDNA, _ := model.NewJC(4)
	e := newEngine(t, tr, dna, mDNA)
	if e.KernelMode() != KernelAuto || e.KernelName() != "dna4" {
		t.Fatalf("DNA engine: mode %q kernel %q", e.KernelMode(), e.KernelName())
	}
	if err := e.SetKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	if e.KernelName() != "generic" || e.pcacheEnabled() {
		t.Fatal("KernelGeneric must select the generic set and disable the P cache")
	}

	aa := randomAlignment(t, names, 40, rng, bio.AA)
	mAA, _ := model.NewJC(20)
	e2 := newEngine(t, tr.Clone(), aa, mAA)
	if e2.KernelName() != "aa20" {
		t.Fatalf("AA engine under auto must use the protein kernels, got %q", e2.KernelName())
	}
	if !e2.pcacheEnabled() {
		t.Fatal("auto mode must enable the P cache")
	}
	if err := e2.SetKernel(KernelBlocked); err != nil {
		t.Fatal(err)
	}
	if e2.KernelName() != "blocked" || !e2.pcacheEnabled() {
		t.Fatalf("KernelBlocked must select the blocked set with the P cache, got %q", e2.KernelName())
	}

	// A state count with no specialised set falls back to blocked under
	// auto (binary characters: 2 states).
	bin2, err := selectKernelSet[float64](KernelAuto, 2)
	if err != nil {
		t.Fatal(err)
	}
	if bin2.name() != "blocked" {
		t.Fatalf("auto for k=2 must pick blocked, got %q", bin2.name())
	}
}
