package plf

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/ooc"
	"oocphylo/internal/tree"
)

// TestWatchdogOscillationBitIdentical drives the same likelihood
// workload through a fixed-m engine and through one whose slot pool is
// shrunk and regrown continuously by a memory watchdog with a scripted
// heap trajectory. Slot-count changes may only move I/O around — every
// computed likelihood must match the fixed-m run bit for bit.
func TestWatchdogOscillationBitIdentical(t *testing.T) {
	const taxa, sites, slots, seed = 20, 200, 12, 41

	rng := rand.New(rand.NewSource(seed))
	names := tipNames(taxa)
	pats := randomAlignment(t, names, sites, rng, bio.DNA)
	tr, err := tree.RandomTopology(names, rng, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewJC(4)
	if err != nil {
		t.Fatal(err)
	}
	vecLen := VectorLength(m, pats.NumPatterns())
	n := tr.NumInner()

	newRig := func(tt *tree.Tree) (*Engine, *ooc.Manager) {
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: n, VectorLen: vecLen, Slots: slots,
			Strategy: ooc.NewLRU(n), ReadSkipping: true,
			Store: ooc.NewMemStore(n, vecLen),
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := New(tt, pats, m, mgr)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { mgr.Close() })
		return e, mgr
	}

	// The workload: evaluate at every edge with periodic invalidations,
	// so plenty of newview traversals (and thus safe points) run.
	workload := func(e *Engine) []float64 {
		var lnls []float64
		for i, ed := range e.T.Edges {
			if i%7 == 0 {
				e.InvalidateAll()
			}
			lnl, err := e.LogLikelihoodAt(ed)
			if err != nil {
				t.Fatal(err)
			}
			lnls = append(lnls, lnl)
		}
		return lnls
	}

	eFix, _ := newRig(tr.Clone())
	want := workload(eFix)

	// Scripted heap: alternate bursts far above the budget (forcing
	// shrinks towards the floor) with bursts far below the hysteresis
	// gate (forcing regrowth), switching every 5 samples.
	sample := 0
	readMem := func(ms *runtime.MemStats) {
		phase := (sample / 5) % 2
		sample++
		if phase == 0 {
			ms.HeapAlloc = 10 << 20
		} else {
			ms.HeapAlloc = 1 << 20
		}
	}
	eOsc, mgrOsc := newRig(tr.Clone())
	wd, err := ooc.NewWatchdog(mgrOsc, ooc.WatchdogConfig{
		SoftBudget: 5 << 20,
		CheckEvery: 3,
		ReadMem:    readMem,
	})
	if err != nil {
		t.Fatal(err)
	}
	eOsc.SetSafePoint(func() error { return wd.Check() })
	got := workload(eOsc)

	st := wd.Stats()
	if st.Shrinks == 0 || st.Grows == 0 {
		t.Fatalf("watchdog never oscillated: %+v", st)
	}
	if len(got) != len(want) {
		t.Fatalf("workload lengths differ: %d vs %d", len(got), len(want))
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("lnL[%d] diverged under oscillation: %.17g != %.17g (after %d shrinks, %d grows)",
				i, got[i], want[i], st.Shrinks, st.Grows)
		}
	}
	if err := mgrOsc.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
