package plf

import (
	"fmt"
	"math"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

// ReferenceLogLikelihood computes the log-likelihood by direct textbook
// recursion — no pattern batching, no scaling, no vector reuse, no
// provider. It exists purely as a slow, obviously-correct oracle for
// testing the engine (usable up to a few dozen taxa before numerical
// underflow; tests stay well inside that).
func ReferenceLogLikelihood(t *tree.Tree, pats *bio.Patterns, m *model.Model) (float64, error) {
	if t.NumTips != pats.NumTaxa() {
		return 0, fmt.Errorf("plf: tree/alignment taxon mismatch")
	}
	k := m.States
	C := m.Cats()

	// Map tree tips to alignment rows.
	rowOf := make([]int, t.NumTips)
	for ti := 0; ti < t.NumTips; ti++ {
		rowOf[ti] = -1
		for r, name := range pats.Names {
			if name == t.Nodes[ti].Name {
				rowOf[ti] = r
				break
			}
		}
		if rowOf[ti] < 0 {
			return 0, fmt.Errorf("plf: tip %q missing from alignment", t.Nodes[ti].Name)
		}
	}

	pbuf := make([]float64, k*k)
	// cond returns the conditional likelihood vector of the subtree at n
	// seen from `from`, for pattern i and category rate r.
	var cond func(n, from *tree.Node, i int, r float64) []float64
	cond = func(n, from *tree.Node, i int, r float64) []float64 {
		out := make([]float64, k)
		if n.IsTip() {
			mask := pats.Columns[rowOf[n.Index]][i]
			for s := 0; s < k; s++ {
				if mask&(1<<uint(s)) != 0 {
					out[s] = 1
				}
			}
			return out
		}
		for s := range out {
			out[s] = 1
		}
		for _, e := range n.Adj {
			child := e.Other(n)
			if child == from {
				continue
			}
			cv := cond(child, n, i, r)
			m.PMatrix(pbuf, e.Length, r)
			for s := 0; s < k; s++ {
				acc := 0.0
				for j := 0; j < k; j++ {
					acc += pbuf[s*k+j] * cv[j]
				}
				out[s] *= acc
			}
		}
		return out
	}

	lnl := 0.0
	for i := 0; i < pats.NumPatterns(); i++ {
		// +I mixture: equilibrium mass of the states shared by all taxa.
		linv := 0.0
		if m.PInv > 0 {
			shared := pats.Alphabet.AllStates()
			for row := range pats.Columns {
				shared &= pats.Columns[row][i]
			}
			for s := 0; s < k; s++ {
				if shared&(1<<uint(s)) != 0 {
					linv += m.Freqs[s]
				}
			}
		}
		site := 0.0
		for c := 0; c < C; c++ {
			r := m.Rates[c]
			var f float64
			if t.NumTips == 2 {
				// Single branch: root at tip 0.
				a := t.Nodes[0]
				av := cond(a, nil, i, r) // just the tip indicator
				bv := cond(a.Adj[0].Other(a), a, i, r)
				m.PMatrix(pbuf, a.Adj[0].Length, r)
				for s := 0; s < k; s++ {
					acc := 0.0
					for j := 0; j < k; j++ {
						acc += pbuf[s*k+j] * bv[j]
					}
					f += m.Freqs[s] * av[s] * acc
				}
			} else {
				root := t.Nodes[t.NumTips]
				rv := cond(root, nil, i, r)
				for s := 0; s < k; s++ {
					f += m.Freqs[s] * rv[s]
				}
			}
			site += f
		}
		site /= float64(C)
		if m.PInv > 0 {
			site = (1-m.PInv)*site + m.PInv*linv
		}
		if site <= 0 {
			return 0, fmt.Errorf("plf: reference underflow at pattern %d", i)
		}
		lnl += float64(pats.Weights[i]) * math.Log(site)
	}
	return lnl, nil
}
