package plf

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/obs"
	"oocphylo/internal/tree"
)

// Scaling constants (RAxML's scheme): whenever every entry of a
// pattern's block drops below minLikelihood the block is multiplied by
// 2^256 and the pattern's scale counter is incremented; the evaluation
// subtracts counter*ln(2^256) per pattern. These are the float64
// constants; the float32 mode uses 2^±64 (see precision.go).
const (
	scalingExponent = 256
	logScaleFactor  = scalingExponent * 0.6931471805599453 // ln(2^256)
)

var (
	minLikelihood = math.Ldexp(1, -scalingExponent) // 2^-256
	scaleFactor   = math.Ldexp(1, scalingExponent)  // 2^256
)

// Stats counts the engine operations a workload performed; the paper's
// locality arguments (§4.2) are statements about these counters.
type Stats struct {
	// Newviews is the number of ancestral-vector (re)computations.
	Newviews int64
	// Evaluations is the number of log-likelihood evaluations.
	Evaluations int64
	// SumTables is the number of derivative sum-table constructions.
	SumTables int64
	// NewtonIters is the number of Newton-Raphson iterations performed
	// during branch-length optimisation.
	NewtonIters int64
	// Recoveries is the number of corrupted ancestral vectors the
	// engine healed by invalidating the node and recomputing its
	// subtree (the LvD recompute-vs-store tradeoff turned into a
	// fault-tolerance mechanism: any inner vector is a pure function
	// of its children, so corruption costs extra newviews, not the
	// run).
	Recoveries int64
	// PolicyRecomputes counts valid vectors the fetch-vs-recompute
	// policy chose to recompute locally instead of fetching from a
	// remote store tier (see EnableRecomputePolicy).
	PolicyRecomputes int64
	// DegradedRecomputes counts the subset of PolicyRecomputes forced
	// by degraded mode: the provider's remote tier was unavailable
	// (circuit breaker open), so valid-but-remote reads were converted
	// to local recomputes unconditionally to keep the engine answering
	// bit-identically from cache plus recompute.
	DegradedRecomputes int64
	// PCacheHits / PCacheMisses count branch-length transition-matrix
	// cache lookups (see pcache.go); PCacheDrops counts wholesale
	// resets after the cache filled. All zero under KernelGeneric,
	// where the cache is disabled.
	PCacheHits, PCacheMisses, PCacheDrops int64
}

// Engine evaluates the PLF for one (tree, alignment, model) triple over
// a pluggable ancestral-vector store. It is not safe for concurrent use.
type Engine struct {
	T *tree.Tree
	M *model.Model
	P *bio.Patterns

	prov   VectorProvider
	orient tree.Orientation

	nPat, nCat, nStates int
	// vecLen is the logical ancestral-vector length (elements of the
	// compute precision); carrierLen is the provider-page length in
	// float64s — equal for f64, halved (rounded up) for f32, where two
	// float32s ride in each carrier slot (see precision.go).
	vecLen     int
	carrierLen int
	weights    []float64

	// maskList enumerates the distinct tip masks in the alignment;
	// tipCode[tip][pattern] indexes into it. tipInd holds the 0/1
	// indicator vector per mask.
	maskList []bio.StateMask
	tipCode  [][]uint16
	tipInd   []float64 // len(maskList) * nStates

	// scales[vi][pattern] holds the per-pattern scaling counters for
	// inner vector vi. Counters are 4 bytes/site/vector (~3% of vector
	// memory) and stay in RAM; the paper pages only the probability
	// vectors themselves.
	scales [][]int32

	// linv[pattern] is the +I mixture's invariant-component likelihood:
	// the equilibrium probability mass of the states shared by every
	// taxon at that pattern (zero when the pattern cannot be constant).
	linv []float64

	// prefetch enables plan-driven staging of the next step's inputs
	// when the provider supports it (see EnablePrefetch).
	prefetch bool
	// prefetchDepth is how many future plan steps to stage inputs for
	// (see SetPrefetchDepth); values < 1 behave as 1.
	prefetchDepth int
	// recomputeThresh is the fetch-vs-recompute policy threshold (see
	// EnableRecomputePolicy); <= 0 disables the policy.
	recomputeThresh time.Duration
	// workers is the PLF kernel fan-out (see SetWorkers); pool is the
	// persistent goroutine pool serving it when workers > 1.
	workers int
	pool    *workerPool

	// precision is PrecisionF64 or PrecisionF32. Exactly one of c64/c32
	// is non-nil and owns every precision-typed piece of engine state:
	// the active kernel set, the P-matrix cache, converted model
	// constants and all numeric scratch (see compute.go). kernelMode
	// names the configured mode (see SetKernel).
	precision  string
	c64        *compute[float64]
	c32        *compute[float32]
	kernelMode string

	// Precision-independent scratch, reused across steps.
	sumTabSc []int32   // nPat combined scale counters for the sum table
	siteBuf  []float64 // nPat*3 per-pattern values for deterministic reductions
	// Fixed-size pin scratch: demand fetches pin at most two vectors
	// and prefetch at most three, so the slices handed to the provider
	// can be views of these engine-owned arrays instead of per-call
	// heap allocations.
	pinsL, pinsR, pinsP [2]int
	pinsPF              [3]int
	// fdfFn is the Newton objective OptimizeBranch hands to the solver,
	// bound once here so branch optimisation allocates nothing per call.
	fdfFn func(t float64) (d1, d2 float64)

	Stats Stats
	// eobs holds the observability instruments (see obs.go); the zero
	// value means uninstrumented and costs one nil/bool check per site.
	eobs engineObs
	// span, when set via SetSpan, is the request-scoped tracing span
	// traversal/evaluate child spans are emitted under (nil when
	// untraced: one nil check per public call, no clock).
	span *obs.Span

	// ctx, when set, cancels traversals at the next step boundary (see
	// SetContext); safePoint, when set, runs between newview calls —
	// the resource governor's hook (see SetSafePoint).
	ctx       context.Context
	safePoint func() error
}

// VectorLength returns the number of elements per ancestral vector for
// an alignment with nPat patterns under model m — the paper's page size
// w (in compute elements rather than bytes). For the float64 default
// this is also the provider carrier length; see CarrierLength for f32.
func VectorLength(m *model.Model, nPat int) int {
	return nPat * m.Cats() * m.States
}

// New builds a float64 engine. The provider must have been sized with
// NumVectors() == t.NumInner() and VectorLen() == VectorLength(m, pats).
func New(t *tree.Tree, pats *bio.Patterns, m *model.Model, prov VectorProvider) (*Engine, error) {
	return NewWithPrecision(t, pats, m, prov, PrecisionF64)
}

// NewWithPrecision builds an engine computing in the given precision
// (PrecisionF64 or PrecisionF32; "" means f64). The provider must have
// been sized with NumVectors() == t.NumInner() and VectorLen() ==
// CarrierLength(m, pats.NumPatterns(), precision).
func NewWithPrecision(t *tree.Tree, pats *bio.Patterns, m *model.Model, prov VectorProvider, precision string) (*Engine, error) {
	if t.NumTips != pats.NumTaxa() {
		return nil, fmt.Errorf("plf: tree has %d tips, alignment has %d taxa", t.NumTips, pats.NumTaxa())
	}
	if m.States != pats.Alphabet.States {
		return nil, fmt.Errorf("plf: model has %d states, alignment %d", m.States, pats.Alphabet.States)
	}
	if precision == "" {
		precision = PrecisionF64
	}
	e := &Engine{
		T: t, M: m, P: pats,
		prov:      prov,
		orient:    tree.NewOrientation(len(t.Nodes)),
		nPat:      pats.NumPatterns(),
		nCat:      m.Cats(),
		nStates:   m.States,
		precision: precision,
	}
	e.vecLen = e.nPat * e.nCat * e.nStates
	cl, err := CarrierLength(m, e.nPat, precision)
	if err != nil {
		return nil, err
	}
	e.carrierLen = cl
	if prov.NumVectors() < t.NumInner() {
		return nil, fmt.Errorf("plf: provider holds %d vectors, tree needs %d", prov.NumVectors(), t.NumInner())
	}
	if prov.VectorLen() != e.carrierLen {
		return nil, fmt.Errorf("plf: provider vector length %d, engine needs %d (%s carrier)", prov.VectorLen(), e.carrierLen, precision)
	}
	e.weights = make([]float64, e.nPat)
	for i, w := range pats.Weights {
		e.weights[i] = float64(w)
	}

	// Tip encoding: map each tree tip to its alignment row by name, then
	// index the distinct masks.
	maskIdx := make(map[bio.StateMask]uint16)
	e.tipCode = make([][]uint16, t.NumTips)
	for ti := 0; ti < t.NumTips; ti++ {
		ai := -1
		for r, name := range pats.Names {
			if name == t.Nodes[ti].Name {
				ai = r
				break
			}
		}
		if ai < 0 {
			return nil, fmt.Errorf("plf: tree tip %q missing from alignment", t.Nodes[ti].Name)
		}
		codes := make([]uint16, e.nPat)
		for p, mask := range pats.Columns[ai] {
			id, ok := maskIdx[mask]
			if !ok {
				id = uint16(len(e.maskList))
				maskIdx[mask] = id
				e.maskList = append(e.maskList, mask)
			}
			codes[p] = id
		}
		e.tipCode[ti] = codes
	}
	// 0/1 indicators per distinct mask.
	e.tipInd = make([]float64, len(e.maskList)*e.nStates)
	for mi, mask := range e.maskList {
		for s := 0; s < e.nStates; s++ {
			if mask&(1<<uint(s)) != 0 {
				e.tipInd[mi*e.nStates+s] = 1
			}
		}
	}

	e.scales = make([][]int32, t.NumInner())
	for i := range e.scales {
		e.scales[i] = make([]int32, e.nPat)
	}
	// Invariant-component likelihoods: intersect all taxa's masks per
	// pattern, then sum the equilibrium frequencies of the shared states.
	e.linv = make([]float64, e.nPat)
	for i := 0; i < e.nPat; i++ {
		shared := pats.Alphabet.AllStates()
		for row := range pats.Columns {
			shared &= pats.Columns[row][i]
		}
		if shared == 0 {
			continue
		}
		for s := 0; s < e.nStates; s++ {
			if shared&(1<<uint(s)) != 0 {
				e.linv[i] += m.Freqs[s]
			}
		}
	}
	e.sumTabSc = make([]int32, e.nPat)
	e.siteBuf = make([]float64, e.nPat*3)
	if precision == PrecisionF32 {
		e.c32 = newCompute[float32](e)
	} else {
		e.c64 = newCompute[float64](e)
	}
	e.fdfFn = func(t float64) (float64, float64) {
		e.Stats.NewtonIters++
		e.eobs.newtonIters.Inc()
		_, d1, d2 := e.sumTableValues(t)
		if d2 >= 0 {
			// Convex region: a raw Newton step would move away from the
			// maximum. Signal an unusable derivative so the solver takes
			// a damped step in the uphill direction of d1 instead (the
			// same guard RAxML's makenewz applies).
			return d1, math.NaN()
		}
		return d1, d2
	}
	if err := e.SetKernel(KernelAuto); err != nil {
		return nil, err
	}
	return e, nil
}

// Precision returns the engine's compute precision (PrecisionF64 or
// PrecisionF32).
func (e *Engine) Precision() string { return e.precision }

// Orient exposes the orientation (validity) state of the ancestral
// vectors. Search drivers invalidate entries after topology edits whose
// neighborhood keeps stale-but-pointer-consistent vectors (see package
// search); everything else is maintained automatically.
func (e *Engine) Orient() tree.Orientation { return e.orient }

// Provider returns the vector provider the engine runs on.
func (e *Engine) Provider() VectorProvider { return e.prov }

// InvalidateAll marks every ancestral vector stale, forcing the next
// evaluation to run a full traversal.
func (e *Engine) InvalidateAll() { e.orient.Invalidate() }

// vi converts a tree node to its vector index.
func (e *Engine) vi(n *tree.Node) int { return n.Index - e.T.NumTips }

// buildTipSum fills dst[cat][maskID][s] = sum_j P_cat[s][j] * ind[j]:
// the per-category transition-weighted tip indicator lookup table
// (RAxML's tipVector precomputation).
func buildTipSum[F Float](e *Engine, cs *compute[F], dst, pmats []F) {
	k := e.nStates
	k2 := k * k
	nm := len(e.maskList)
	for c := 0; c < e.nCat; c++ {
		p := pmats[c*k2 : (c+1)*k2]
		for mi := 0; mi < nm; mi++ {
			ind := cs.tipInd[mi*k : (mi+1)*k]
			out := dst[(c*nm+mi)*k : (c*nm+mi+1)*k]
			for s := 0; s < k; s++ {
				acc := F(0)
				row := p[s*k : (s+1)*k]
				for j := 0; j < k; j++ {
					acc += row[j] * ind[j]
				}
				out[s] = acc
			}
		}
	}
}

// prefetchProvider is satisfied by vector providers that can stage a
// vector ahead of its demand access (ooc.Manager).
type prefetchProvider interface {
	Prefetch(vi int, pinned ...int) error
}

// EnablePrefetch turns plan-driven prefetching on or off: while a
// Felsenstein step computes, the next step's read inputs are staged
// (the paper's §5 prefetch-thread future work; the provider counts how
// many blocking misses the staging converts into prefetch hits).
// A no-op when the provider cannot prefetch.
func (e *Engine) EnablePrefetch(on bool) { e.prefetch = on }

// SetPrefetchDepth controls how far ahead of the current plan step the
// engine stages read inputs: depth d prefetches the inputs of steps
// i+1..i+d while step i computes. Depth 1 (the default; values < 1 are
// clamped to 1) reproduces the historical one-step lookahead. Deeper
// lookahead only pays off with Config.Async managers, where multiple
// fetch workers can fill the queue concurrently; a synchronous manager
// would execute every staged read on the compute thread anyway.
func (e *Engine) SetPrefetchDepth(d int) {
	if d < 1 {
		d = 1
	}
	e.prefetchDepth = d
}

// SetContext attaches ctx to the engine: traversals abort with an
// error wrapping ctx.Err() at the next step boundary once ctx is
// cancelled — no vector is left half-computed, so a cancelled run can
// still flush and checkpoint. The context is forwarded to the vector
// provider when it supports one (ooc.Manager does), cancelling the
// blocking edges of the I/O pipeline too. nil restores the default.
func (e *Engine) SetContext(ctx context.Context) {
	e.ctx = ctx
	if p, ok := e.prov.(interface{ SetContext(context.Context) }); ok {
		p.SetContext(ctx)
	}
}

// SetSpan attributes subsequent engine work to the given request span:
// Execute and LogLikelihoodAt emit child spans under it, and the span
// is forwarded to the vector provider when it supports one
// (ooc.Manager does), so fault-ins and evictions land in the same
// trace. nil detaches. Same single-goroutine discipline as SetContext.
func (e *Engine) SetSpan(sp *obs.Span) {
	e.span = sp
	if p, ok := e.prov.(interface{ SetSpan(*obs.Span) }); ok {
		p.SetSpan(sp)
	}
}

// SetSafePoint installs fn to run before every newview call — the
// point where the engine holds no vector address, so the hook may
// restructure the provider (the memory watchdog resizes the slot pool
// here). A non-nil error from fn aborts the traversal. nil removes
// the hook.
func (e *Engine) SetSafePoint(fn func() error) { e.safePoint = fn }

// atSafePoint runs the cancellation check and the safe-point hook;
// called between newview calls, where no vector address is live.
func (e *Engine) atSafePoint() error {
	if e.ctx != nil {
		if err := e.ctx.Err(); err != nil {
			return fmt.Errorf("plf: traversal interrupted: %w", err)
		}
	}
	if e.safePoint != nil {
		if err := e.safePoint(); err != nil {
			return fmt.Errorf("plf: safe-point hook: %w", err)
		}
	}
	return nil
}

// Execute runs a traversal plan: one Felsenstein step per entry, in
// order, then records the resulting orientations.
func (e *Engine) Execute(steps []tree.Step) error {
	pf, canPrefetch := e.prov.(prefetchProvider)
	depth := e.prefetchDepth
	if depth < 1 {
		depth = 1
	}
	var spanStart time.Time
	if e.span != nil && len(steps) > 0 {
		spanStart = time.Now()
	}
	for i := range steps {
		if err := e.atSafePoint(); err != nil {
			return err
		}
		if e.prefetch && canPrefetch {
			for j := i + 1; j <= i+depth && j < len(steps); j++ {
				e.prefetchInputs(pf, steps, i, j)
			}
		}
		if err := e.newview(&steps[i]); err != nil {
			return err
		}
	}
	tree.ApplyOrientation(e.orient, steps)
	if e.span != nil && len(steps) > 0 {
		e.span.EmitChild("plf.newviews", spanStart, time.Since(spanStart),
			obs.Attr{Key: "steps", Int: int64(len(steps))})
	}
	return nil
}

// prefetchInputs stages the inner read inputs of steps[next], pinning
// steps[cur]'s working set so the staging cannot evict what the
// imminent step needs. Prefetch errors are advisory and ignored; a
// failed prefetch simply leaves the demand access to fault normally.
func (e *Engine) prefetchInputs(pf prefetchProvider, steps []tree.Step, cur, next int) {
	pins := &e.pinsPF
	np := 0
	for _, n := range []*tree.Node{steps[cur].Node, steps[cur].Left, steps[cur].Right} {
		if !n.IsTip() {
			pins[np] = e.vi(n)
			np++
		}
	}
	for _, child := range []*tree.Node{steps[next].Left, steps[next].Right} {
		if child.IsTip() {
			continue
		}
		// A child recomputed by an intervening step (post-order: cur.Node
		// is commonly next's child) is about to be overwritten before
		// steps[next] reads it — staging the stale copy would be wasted
		// I/O and, under read skipping, a wasted slot.
		written := false
		for k := cur; k < next; k++ {
			if steps[k].Node == child {
				written = true
				break
			}
		}
		if written {
			continue
		}
		_ = pf.Prefetch(e.vi(child), pins[:np]...)
	}
}

// newview computes the ancestral vector at s.Node from its two children
// across their connecting branches. Input resolution (transition
// matrices via the cache, tip tables, provider fetches with pinning)
// happens here on the calling goroutine; the per-pattern arithmetic is
// delegated to the active kernel set.
func (e *Engine) newview(s *tree.Step) error {
	if e.c32 != nil {
		return newviewF(e, e.c32, s)
	}
	return newviewF(e, e.c64, s)
}

func newviewF[F Float](e *Engine, cs *compute[F], s *tree.Step) error {
	e.Stats.Newviews++
	e.eobs.newviews.Inc()
	var nvStart time.Time
	if e.eobs.on {
		nvStart = time.Now()
	}
	a := &cs.nv
	*a = nvArgs[F]{nm: len(e.maskList)}
	var entL, entR *pcEntry[F]
	a.pmL, entL = pmatsFor(e, cs, s.LeftEdge.Length, cs.pL)
	a.pmR, entR = pmatsFor(e, cs, s.RightEdge.Length, cs.pR)

	leftTip, rightTip := s.Left.IsTip(), s.Right.IsTip()
	pvi := e.vi(s.Node)
	var buf []float64
	var err error
	if leftTip {
		a.tsL = tipSumFor(e, cs, entL, a.pmL, cs.tipSumL)
		a.codeL = e.tipCode[s.Left.Index]
	} else {
		lvi := e.vi(s.Left)
		e.pinsL[0] = pvi
		np := 1
		if !rightTip {
			e.pinsL[1] = e.vi(s.Right)
			np = 2
		}
		buf, err = e.prov.Vector(lvi, false, e.pinsL[:np]...)
		if err != nil {
			return err
		}
		a.xl = vecView[F](buf, e.vecLen)
		a.scl = e.scales[lvi]
	}
	if rightTip {
		a.tsR = tipSumFor(e, cs, entR, a.pmR, cs.tipSumR)
		a.codeR = e.tipCode[s.Right.Index]
	} else {
		rvi := e.vi(s.Right)
		e.pinsR[0] = pvi
		np := 1
		if !leftTip {
			e.pinsR[1] = e.vi(s.Left)
			np = 2
		}
		buf, err = e.prov.Vector(rvi, false, e.pinsR[:np]...)
		if err != nil {
			return err
		}
		a.xr = vecView[F](buf, e.vecLen)
		a.scr = e.scales[rvi]
	}
	np := 0
	if !leftTip {
		e.pinsP[np] = e.vi(s.Left)
		np++
	}
	if !rightTip {
		e.pinsP[np] = e.vi(s.Right)
		np++
	}
	buf, err = e.prov.Vector(pvi, true, e.pinsP[:np]...)
	if err != nil {
		return err
	}
	a.xp = vecView[F](buf, e.vecLen)
	a.scp = e.scales[pvi]

	cs.kern.prepareNewview(e, cs, a)
	e.parallelFor(e.nPat, cs.nvBody)
	if e.eobs.on {
		dur := time.Since(nvStart)
		e.eobs.newviewLat.Observe(dur.Seconds())
		e.traceSpan(obs.OpNewview, pvi, nvStart, dur)
	}
	return nil
}

// corruptionVector extracts the vector index from a corruption error
// reported by the provider's integrity layer. Matching is structural
// (any error with a CorruptVector() int method, e.g.
// *ooc.CorruptionError) so the engine does not depend on a concrete
// store implementation.
func corruptionVector(err error) (int, bool) {
	var ce interface{ CorruptVector() int }
	if errors.As(err, &ce) {
		return ce.CorruptVector(), true
	}
	// An unreadable vector (transient I/O out of retries, remote
	// circuit open — any error with a FailedVector() int method, e.g.
	// *ooc.VectorReadError) recovers the same way: the bytes are gone
	// for now, but the recompute identity re-derives them exactly. In
	// degraded mode the replan then avoids every other remote read too.
	var fe interface{ FailedVector() int }
	if errors.As(err, &fe) {
		return fe.FailedVector(), true
	}
	return -1, false
}

// recoverCorruption turns a corrupt-vector read into a recompute: the
// node owning the vector is marked invalid so the next traversal plan
// rebuilds it from its children (which recurses if a child is itself
// corrupt or invalid). Returns false when err is not a corruption, the
// vector is out of range, or the attempt budget is exhausted — the
// caller then surfaces err as fatal. The budget bounds pathological
// stores that corrupt every read: each recovery invalidates at least
// one node and a clean recompute re-validates it, so a healthy store
// converges well within 2·inner+8 attempts.
func (e *Engine) recoverCorruption(err error, attempts *int, budget int) bool {
	vi, ok := corruptionVector(err)
	if !ok || vi < 0 || vi >= e.T.NumInner() || *attempts >= budget {
		return false
	}
	*attempts++
	e.orient[vi+e.T.NumTips] = nil
	e.Stats.Recoveries++
	e.eobs.recoveries.Inc()
	if e.eobs.on {
		// Instant event: the cost shows up as the extra newviews that
		// follow, the marker shows *why* they happened.
		e.traceSpan(obs.OpRecovery, vi, time.Now(), 0)
	}
	return true
}

// recoveryBudget is the per-call cap on corruption recoveries.
func (e *Engine) recoveryBudget() int { return 2*e.T.NumInner() + 8 }

// Traverse makes the vectors at both endpoints of edge valid and
// oriented toward each other, doing only the work the current
// orientation state requires. A corrupt vector surfaced during the
// traversal is self-healed: the node is invalidated and the plan is
// rebuilt, recomputing the lost subtree instead of failing the run.
func (e *Engine) Traverse(edge *tree.Edge) error {
	budget := e.recoveryBudget()
	attempts := 0
	for {
		steps := e.planTraversal(edge)
		err := e.Execute(steps)
		if err == nil {
			return nil
		}
		if !e.recoverCorruption(err, &attempts, budget) {
			return err
		}
	}
}

// FullTraversal recomputes every ancestral vector oriented toward edge,
// regardless of current validity (the paper's -f z workload building
// block).
func (e *Engine) FullTraversal(edge *tree.Edge) error {
	e.orient.Invalidate()
	return e.Traverse(edge)
}

// LogLikelihoodAt returns the log-likelihood evaluated at the given
// branch, running whatever partial traversal is needed first. Like
// Traverse, it recovers from corrupt-vector reads (here: an endpoint
// vector read by the evaluation itself) by recomputing.
func (e *Engine) LogLikelihoodAt(edge *tree.Edge) (float64, error) {
	var spanStart time.Time
	if e.span != nil {
		spanStart = time.Now()
	}
	budget := e.recoveryBudget()
	attempts := 0
	for {
		if err := e.Traverse(edge); err != nil {
			return 0, err
		}
		lnl, err := e.evaluate(edge)
		if err == nil {
			if e.span != nil {
				e.span.EmitChild("plf.evaluate", spanStart, time.Since(spanStart),
					obs.Attr{Key: "edge", Int: int64(edge.Index)})
			}
			return lnl, nil
		}
		if !e.recoverCorruption(err, &attempts, budget) {
			return 0, err
		}
	}
}

// LogLikelihood evaluates at the tree's first branch.
func (e *Engine) LogLikelihood() (float64, error) {
	return e.LogLikelihoodAt(e.T.Edges[0])
}

// mixInvariant folds the +I mixture into a per-pattern log-likelihood:
// given lnGamma = ln of the variable-component likelihood (already
// scale-corrected, possibly astronomically small), it returns
// ln((1-p)·e^lnGamma + p·linv) evaluated stably via log-sum-exp.
func mixInvariant(lnGamma, p, linv float64) float64 {
	lnA := math.Log1p(-p) + lnGamma
	if linv <= 0 {
		return lnA
	}
	lnB := math.Log(p) + math.Log(linv)
	hi, lo := lnA, lnB
	if lnB > lnA {
		hi, lo = lnB, lnA
	}
	return hi + math.Log1p(math.Exp(lo-hi))
}

// gammaWeight returns the posterior weight of the variable (Γ)
// component in the +I mixture for a pattern with the given
// log-likelihood parts — the q in d lnL/dt = q · (f'/f)_Γ.
func gammaWeight(lnGamma, p, linv float64) float64 {
	if p <= 0 {
		return 1
	}
	lnA := math.Log1p(-p) + lnGamma
	if linv <= 0 {
		return 1
	}
	lnB := math.Log(p) + math.Log(linv)
	return 1 / (1 + math.Exp(lnB-lnA))
}

// evaluate computes the log-likelihood at edge without any traversal;
// both endpoint vectors must already be valid toward each other. Input
// resolution happens here; the per-pattern arithmetic is delegated to
// the active kernel set.
func (e *Engine) evaluate(edge *tree.Edge) (float64, error) {
	if e.c32 != nil {
		return evaluateF(e, e.c32, edge)
	}
	return evaluateF(e, e.c64, edge)
}

func evaluateF[F Float](e *Engine, cs *compute[F], edge *tree.Edge) (float64, error) {
	e.Stats.Evaluations++
	e.eobs.evaluations.Inc()
	var evStart time.Time
	if e.eobs.on {
		evStart = time.Now()
	}
	cs.syncModel(e)
	a := &cs.ev
	*a = evArgs[F]{nm: len(e.maskList)}
	p, q := edge.N[0], edge.N[1]
	// Prefer the tip on the q side so the P matrix is applied across the
	// edge onto q's data.
	if p.IsTip() && !q.IsTip() {
		p, q = q, p
	}
	var entQ *pcEntry[F]
	a.pmQ, entQ = pmatsFor(e, cs, edge.Length, cs.pR)

	var buf []float64
	var err error
	if q.IsTip() {
		a.tsQ = tipSumFor(e, cs, entQ, a.pmQ, cs.tipSumR)
		a.codeQ = e.tipCode[q.Index]
	} else {
		qvi := e.vi(q)
		np := 0
		if !p.IsTip() {
			e.pinsR[0] = e.vi(p)
			np = 1
		}
		buf, err = e.prov.Vector(qvi, false, e.pinsR[:np]...)
		if err != nil {
			return 0, err
		}
		a.xq = vecView[F](buf, e.vecLen)
		a.scq = e.scales[qvi]
	}
	if p.IsTip() {
		a.codeP = e.tipCode[p.Index]
	} else {
		pvi := e.vi(p)
		np := 0
		if !q.IsTip() {
			e.pinsL[0] = e.vi(q)
			np = 1
		}
		buf, err = e.prov.Vector(pvi, false, e.pinsL[:np]...)
		if err != nil {
			return 0, err
		}
		a.xp = vecView[F](buf, e.vecLen)
		a.scp = e.scales[pvi]
	}

	// Workers fill per-pattern contributions into siteBuf; the final
	// summation runs sequentially in pattern order, so the result is
	// bit-identical for any worker count.
	a.contrib = e.siteBuf[:e.nPat]
	e.parallelFor(e.nPat, cs.evBody)
	lnl := 0.0
	for _, c := range a.contrib {
		lnl += c
	}
	if e.eobs.on {
		dur := time.Since(evStart)
		e.eobs.evalLat.Observe(dur.Seconds())
		e.traceSpan(obs.OpEvaluate, -1, evStart, dur)
	}
	return lnl, nil
}
