package plf

// Observability wiring for the likelihood engine. Unlike the ooc
// manager's publisher-mirrored snapshot counters, the engine's Stats is
// a plain exported struct mutated on the compute goroutine — a
// publisher reading it from the debug endpoint's goroutine would be a
// data race. The counters are therefore mirrored natively: every
// Stats++ site also bumps a nil-safe registry counter, which costs one
// nil check when uninstrumented and one atomic add when on.

import (
	"time"

	"oocphylo/internal/obs"
)

// engineObs holds the engine's instruments; the zero value is the
// uninstrumented state (all nil, on=false).
type engineObs struct {
	// on gates the time.Now() calls around kernel invocations.
	on     bool
	tracer *obs.Tracer
	// Mirrors of the Stats struct, updated at the same sites.
	newviews, evaluations, sumTables *obs.Counter
	newtonIters, recoveries          *obs.Counter
	pcHits, pcMisses, pcDrops        *obs.Counter
	// Per-operation latencies, labelled by the active kernel via the
	// registry's plf.kernel info key.
	newviewLat, evalLat, sumTableLat *obs.Histogram
}

// Instrument attaches reg and tr to the engine (either may be nil).
// Call it after SetKernel (the kernel name is recorded as run info) and
// before the first evaluation; at most once.
func (e *Engine) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	if e.eobs.on || (reg == nil && tr == nil) {
		return
	}
	e.eobs = engineObs{
		on:          true,
		tracer:      tr,
		newviews:    reg.Counter("plf.newviews"),
		evaluations: reg.Counter("plf.evaluations"),
		sumTables:   reg.Counter("plf.sum_tables"),
		newtonIters: reg.Counter("plf.newton_iters"),
		recoveries:  reg.Counter("plf.recoveries"),
		pcHits:      reg.Counter("plf.pcache_hits"),
		pcMisses:    reg.Counter("plf.pcache_misses"),
		pcDrops:     reg.Counter("plf.pcache_drops"),
		newviewLat:  reg.Histogram("plf.newview_seconds", nil),
		evalLat:     reg.Histogram("plf.evaluate_seconds", nil),
		sumTableLat: reg.Histogram("plf.sum_table_seconds", nil),
	}
	reg.SetInfo("plf.kernel", e.KernelName())
	reg.SetInfo("plf.kernel_mode", e.KernelMode())
	tr.SetLaneName(0, "compute")
}

// traceSpan emits one engine trace event on the compute lane.
func (e *Engine) traceSpan(op obs.EventOp, vi int, start time.Time, dur time.Duration) {
	e.eobs.tracer.Emit(op, 0, int32(vi), -1, start, dur)
}
