package plf

import (
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

// TestCarrierLength pins the carrier-page geometry: f64 carriers are the
// logical vector, f32 carriers pack two elements per float64 and so hold
// exactly half the bytes (rounded up to a whole float64).
func TestCarrierLength(t *testing.T) {
	m, err := model.NewJC(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetGamma(0.7, 4); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		nPat int
		prec string
		want int
	}{
		{100, PrecisionF64, 1600},
		{100, PrecisionF32, 800},
		{101, PrecisionF64, 1616},
		{101, PrecisionF32, 808}, // 1616 floats -> 808 carriers, no padding (even)
		{1, PrecisionF64, 16},
		{1, PrecisionF32, 8},
	} {
		got, err := CarrierLength(m, tc.nPat, tc.prec)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Errorf("CarrierLength(nPat=%d, %s) = %d, want %d", tc.nPat, tc.prec, got, tc.want)
		}
	}
	if _, err := CarrierLength(m, 10, "f16"); err == nil {
		t.Fatal("unknown precision must be rejected")
	}
	// The halving that -precision f32 advertises: per-vector store bytes
	// drop by exactly 2x whenever the logical length is even.
	f64len, _ := CarrierLength(m, 250, PrecisionF64)
	f32len, _ := CarrierLength(m, 250, PrecisionF32)
	if f32len*2 != f64len {
		t.Fatalf("f32 carrier %d is not half the f64 carrier %d", f32len, f64len)
	}
}

// TestVecViewPacking checks the unsafe reinterpretation round-trips:
// float32 values written through the view are the bytes the carrier
// stores and re-reads.
func TestVecViewPacking(t *testing.T) {
	carrier := make([]float64, 3) // room for 5 logical f32 + 1 pad
	v := vecView[float32](carrier, 5)
	if len(v) != 5 {
		t.Fatalf("view length %d, want 5", len(v))
	}
	for i := range v {
		v[i] = float32(i) + 0.5
	}
	again := vecView[float32](carrier, 5)
	for i := range again {
		if again[i] != float32(i)+0.5 {
			t.Fatalf("view[%d] = %v after round-trip", i, again[i])
		}
	}
	// f64 views alias the carrier directly.
	d := vecView[float64](carrier, 3)
	if &d[0] != &carrier[0] || len(d) != 3 {
		t.Fatal("f64 view must alias the carrier")
	}
}

// TestNewWithPrecisionValidation covers constructor edges: empty
// precision defaults to f64, bogus precision errors, and a provider
// sized for the wrong carrier length is rejected.
func TestNewWithPrecisionValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	names := tipNames(6)
	tr, err := tree.RandomTopology(names, rng, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 60, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)

	prov := NewInMemoryProvider(tr.NumInner(), VectorLength(m, pats.NumPatterns()))
	e, err := NewWithPrecision(tr.Clone(), pats, m, prov, "")
	if err != nil {
		t.Fatal(err)
	}
	if e.Precision() != PrecisionF64 {
		t.Fatalf("empty precision: got %q, want f64", e.Precision())
	}

	if _, err := NewWithPrecision(tr.Clone(), pats, m, prov, "f128"); err == nil {
		t.Fatal("bogus precision must be rejected")
	}
	// An f64-sized provider is the wrong geometry for an f32 engine.
	if _, err := NewWithPrecision(tr.Clone(), pats, m, prov, PrecisionF32); err == nil {
		t.Fatal("f64-sized provider must be rejected for an f32 engine")
	}
}

// TestF32AccuracyBudget is the documented accuracy contract for f32
// mode: on a realistic dataset the f32 log-likelihood and the optimised
// branch length agree with f64 to a relative 1e-4 (the EXPERIMENTS.md
// budget), while the raw lnL magnitudes are in the thousands.
func TestF32AccuracyBudget(t *testing.T) {
	for _, dtype := range []bio.DataType{bio.DNA, bio.AA} {
		rng := rand.New(rand.NewSource(31))
		names := tipNames(32)
		tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		sites := 2000
		if dtype == bio.AA {
			sites = 500
		}
		pats := randomAlignment(t, names, sites, rng, dtype)
		m := randomModel(t, rng, dtype, true)

		e64 := newEngineP(t, tr.Clone(), pats, m, PrecisionF64)
		e32 := newEngineP(t, tr.Clone(), pats, m, PrecisionF32)
		l64, err := e64.LogLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		l32, err := e32.LogLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		rel := math.Abs(l64-l32) / math.Abs(l64)
		t.Logf("%v: lnL f64 %.6f f32 %.6f (rel %.2e)", dtype, l64, l32, rel)
		if rel > 1e-4 {
			t.Fatalf("%v: f32 lnL %.6f vs f64 %.6f: relative error %.2e exceeds 1e-4 budget",
				dtype, l32, l64, rel)
		}

		o64, err := e64.OptimizeBranch(e64.T.Edges[2])
		if err != nil {
			t.Fatal(err)
		}
		o32, err := e32.OptimizeBranch(e32.T.Edges[2])
		if err != nil {
			t.Fatal(err)
		}
		if rel := math.Abs(o64-o32) / math.Abs(o64); rel > 1e-4 {
			t.Fatalf("%v: optimised lnL relative error %.2e exceeds 1e-4", dtype, rel)
		}
		t64, t32 := e64.T.Edges[2].Length, e32.T.Edges[2].Length
		if d := math.Abs(t64 - t32); d > 1e-3*(t64+1e-6) {
			t.Fatalf("%v: optimised branch length %v (f32) vs %v (f64)", dtype, t32, t64)
		}
	}
}

// TestF32ScalingUnderflow drives an f32 engine deep into the scaled
// regime (long chains of tiny branch lengths on wide trees) and checks
// the per-precision scaling machinery keeps the likelihood finite and
// close to the f64 reference.
func TestF32ScalingUnderflow(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	names := tipNames(48)
	tr, err := tree.RandomTopology(names, rng, 1e-6, 1e-5)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 300, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e32 := newEngineP(t, tr.Clone(), pats, m, PrecisionF32)
	e64 := newEngineP(t, tr.Clone(), pats, m, PrecisionF64)
	l32, err := e32.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	l64, err := e64.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(l32, 0) || math.IsNaN(l32) {
		t.Fatalf("f32 lnL not finite: %v", l32)
	}
	if rel := math.Abs(l64-l32) / math.Abs(l64); rel > 1e-4 {
		t.Fatalf("scaled regime: f32 %.6f vs f64 %.6f (rel %.2e)", l32, l64, rel)
	}
	if e32.Stats.Newviews == 0 {
		t.Fatal("expected newviews to run")
	}
}
