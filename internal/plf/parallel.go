package plf

import "sync"

// Pattern-block parallelism. Alignment patterns are independent in
// every PLF kernel, so newview, evaluate and the derivative sum table
// can fan out over contiguous pattern blocks. Reductions stay
// bit-deterministic: workers only fill per-pattern scratch; the final
// summation always runs sequentially in pattern order, so the result is
// identical for ANY worker count — the out-of-core exactness criterion
// (§4.1) survives parallel execution.
//
// Provider (getxvector) calls are issued before fan-out, on the calling
// goroutine only; the out-of-core manager never sees concurrency.
//
// Fan-out runs on a persistent worker pool owned by the engine: the
// goroutines are spawned once in SetWorkers and fed pattern blocks over
// a channel, so the per-kernel-call cost is a channel send per block
// instead of a goroutine spawn per block. Block partitioning is
// unchanged from the spawn-per-call implementation, so which patterns
// land in which block — and therefore every result bit — is too.

// minPatternsPerWorker bounds fan-out so goroutine overhead cannot
// dominate small kernels.
const minPatternsPerWorker = 256

// poolTask is one pattern block of one parallelFor call.
type poolTask struct {
	fn     func(lo, hi int)
	lo, hi int
	wg     *sync.WaitGroup
}

// workerPool is a fixed set of goroutines draining a task channel.
type workerPool struct {
	tasks chan poolTask
	done  sync.WaitGroup
}

func newWorkerPool(n int) *workerPool {
	p := &workerPool{tasks: make(chan poolTask, 2*n)}
	p.done.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer p.done.Done()
			for t := range p.tasks {
				t.fn(t.lo, t.hi)
				t.wg.Done()
			}
		}()
	}
	return p
}

func (p *workerPool) stop() {
	close(p.tasks)
	p.done.Wait()
}

// SetWorkers sets the number of goroutines PLF kernels may use
// (default 1 = fully sequential). Values below 1 are treated as 1.
// The pool goroutines are spawned here, once, not per kernel call.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n == e.Workers() && (n == 1) == (e.pool == nil) {
		e.workers = n
		return
	}
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	e.workers = n
	if n > 1 {
		// n-1 pool workers: the calling goroutine always runs the last
		// block itself, so n goroutines compute in total.
		e.pool = newWorkerPool(n - 1)
	}
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// Close releases the engine's worker pool (a no-op for single-worker
// engines). The engine remains usable afterwards — kernels fall back to
// sequential execution — but long-lived programs that set workers > 1
// should Close when done to reclaim the goroutines.
func (e *Engine) Close() {
	if e.pool != nil {
		e.pool.stop()
		e.pool = nil
	}
	e.workers = 1
}

// parallelFor splits [0, n) into contiguous blocks and runs fn on each,
// using up to e.workers goroutines. fn must not touch state outside its
// block. Falls back to a single call when parallelism cannot pay off.
func (e *Engine) parallelFor(n int, fn func(lo, hi int)) {
	w := e.Workers()
	if w > n/minPatternsPerWorker {
		w = n / minPatternsPerWorker
	}
	if w <= 1 || e.pool == nil {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + w - 1) / w
	// Enqueue every block but the last; run the last inline so the
	// calling goroutine works instead of blocking.
	last := ((n - 1) / block) * block
	for lo := 0; lo < last; lo += block {
		wg.Add(1)
		e.pool.tasks <- poolTask{fn: fn, lo: lo, hi: lo + block, wg: &wg}
	}
	fn(last, n)
	wg.Wait()
}
