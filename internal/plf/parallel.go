package plf

import "sync"

// Pattern-block parallelism. Alignment patterns are independent in
// every PLF kernel, so newview, evaluate and the derivative sum table
// can fan out over contiguous pattern blocks. Reductions stay
// bit-deterministic: workers only fill per-pattern scratch; the final
// summation always runs sequentially in pattern order, so the result is
// identical for ANY worker count — the out-of-core exactness criterion
// (§4.1) survives parallel execution.
//
// Provider (getxvector) calls are issued before fan-out, on the calling
// goroutine only; the out-of-core manager never sees concurrency.

// minPatternsPerWorker bounds fan-out so goroutine overhead cannot
// dominate small kernels.
const minPatternsPerWorker = 256

// SetWorkers sets the number of goroutines PLF kernels may use
// (default 1 = fully sequential). Values below 1 are treated as 1.
func (e *Engine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	e.workers = n
}

// Workers returns the configured worker count.
func (e *Engine) Workers() int {
	if e.workers < 1 {
		return 1
	}
	return e.workers
}

// parallelFor splits [0, n) into contiguous blocks and runs fn on each,
// using up to e.workers goroutines. fn must not touch state outside its
// block. Falls back to a single call when parallelism cannot pay off.
func (e *Engine) parallelFor(n int, fn func(lo, hi int)) {
	w := e.Workers()
	if w > n/minPatternsPerWorker {
		w = n / minPatternsPerWorker
	}
	if w <= 1 {
		fn(0, n)
		return
	}
	var wg sync.WaitGroup
	block := (n + w - 1) / w
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
