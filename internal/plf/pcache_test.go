package plf

import (
	"math"
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

// pcacheSetup builds a DNA engine (auto kernels, cache on) plus the
// dataset needed to rebuild reference engines against the same model.
func pcacheSetup(t *testing.T, seed int64) (*Engine, *tree.Tree, *bio.Patterns) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := tipNames(12)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 250, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	return newEngine(t, tr, pats, m), tr, pats
}

// fresh builds a new engine over the engine's current model and a clone
// of its tree: an empty cache computing from scratch, the ground truth a
// cached engine must reproduce bit-for-bit.
func fresh(t *testing.T, e *Engine) float64 {
	t.Helper()
	ref := newEngine(t, e.T.Clone(), e.P, e.M)
	lnl, err := ref.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	return lnl
}

func recompute(t *testing.T, e *Engine) float64 {
	t.Helper()
	e.InvalidateAll()
	lnl, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	return lnl
}

// TestPCacheHitsOnRepeatedTraversal: re-walking the same tree must hit
// the cache (that is the point of it) and must not change any bit.
func TestPCacheHitsOnRepeatedTraversal(t *testing.T) {
	e, _, _ := pcacheSetup(t, 21)
	first := recompute(t, e)
	afterFirst := e.Stats.PCacheMisses
	if afterFirst == 0 {
		t.Fatal("first traversal should populate the cache")
	}
	second := recompute(t, e)
	if !bitsEq(first, second) {
		t.Fatalf("repeat traversal changed lnL: %.17g vs %.17g", first, second)
	}
	if e.Stats.PCacheHits == 0 {
		t.Fatal("repeat traversal over identical branch lengths must hit the cache")
	}
	if e.Stats.PCacheMisses != afterFirst {
		t.Fatalf("repeat traversal missed the cache: %d -> %d misses", afterFirst, e.Stats.PCacheMisses)
	}
}

// TestPCacheGenericModeDisablesCache: the legacy baseline must not touch
// the cache at all.
func TestPCacheGenericModeDisablesCache(t *testing.T) {
	e, _, _ := pcacheSetup(t, 22)
	if err := e.SetKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	recompute(t, e)
	recompute(t, e)
	if e.Stats.PCacheHits != 0 || e.Stats.PCacheMisses != 0 {
		t.Fatalf("generic mode used the cache: %d hits %d misses",
			e.Stats.PCacheHits, e.Stats.PCacheMisses)
	}
}

// TestPCacheInvalidation mutates every model parameter the cache key
// does NOT cover and requires the cached engine to match a fresh engine
// bit-for-bit afterwards — a stale P matrix would fail instantly.
func TestPCacheInvalidation(t *testing.T) {
	e, tr, _ := pcacheSetup(t, 23)
	recompute(t, e) // warm the cache

	if err := e.M.SetGamma(0.77, e.M.Cats()); err != nil {
		t.Fatal(err)
	}
	if got, want := recompute(t, e), fresh(t, e); !bitsEq(got, want) {
		t.Fatalf("after SetGamma: cached %.17g vs fresh %.17g", got, want)
	}

	exch := []float64{1.3, 2.9, 0.8, 1.1, 3.4, 1.0}
	if err := e.M.SetExchangeabilities(exch); err != nil {
		t.Fatal(err)
	}
	if got, want := recompute(t, e), fresh(t, e); !bitsEq(got, want) {
		t.Fatalf("after SetExchangeabilities: cached %.17g vs fresh %.17g", got, want)
	}

	if err := e.M.SetInvariant(0.2); err != nil {
		t.Fatal(err)
	}
	if got, want := recompute(t, e), fresh(t, e); !bitsEq(got, want) {
		t.Fatalf("after SetInvariant: cached %.17g vs fresh %.17g", got, want)
	}

	// Branch-length changes are covered by the key itself: a new length
	// is a new entry, never a reused one.
	for _, edge := range tr.Edges {
		edge.Length *= 1.37
	}
	if got, want := recompute(t, e), fresh(t, e); !bitsEq(got, want) {
		t.Fatalf("after branch-length change: cached %.17g vs fresh %.17g", got, want)
	}
}

// TestPCacheDropWhenFull drives more distinct branch lengths through
// evaluate than the cache holds; the wholesale drop must be counted and
// must not perturb results.
func TestPCacheDropWhenFull(t *testing.T) {
	e, tr, pats := pcacheSetup(t, 24)
	gen := newEngine(t, tr.Clone(), pats, e.M)
	if err := gen.SetKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	edge, gedge := tr.Edges[0], gen.T.Edges[0]
	for i := 0; i < pcacheCap+64; i++ {
		l := 0.001 + float64(i)*1e-5
		edge.Length, gedge.Length = l, l
		got, err := e.evaluate(edge)
		if err != nil {
			t.Fatal(err)
		}
		want, err := gen.evaluate(gedge)
		if err != nil {
			t.Fatal(err)
		}
		if !bitsEq(got, want) {
			t.Fatalf("t=%v: cached %.17g vs generic %.17g", l, got, want)
		}
	}
	if e.Stats.PCacheDrops == 0 {
		t.Fatalf("expected at least one wholesale drop after %d distinct lengths", pcacheCap+64)
	}
}

// TestPCacheSignedZeroSharesEntry: t = +0.0 and t = -0.0 are the same
// branch length and must share one cache entry — keying on the raw bit
// pattern used to hold two entries with bit-identical matrices.
func TestPCacheSignedZeroSharesEntry(t *testing.T) {
	e, tr, pats := pcacheSetup(t, 25)
	gen := newEngine(t, tr.Clone(), pats, e.M)
	if err := gen.SetKernel(KernelGeneric); err != nil {
		t.Fatal(err)
	}
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	if _, err := gen.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	edge, gedge := tr.Edges[0], gen.T.Edges[0]

	edge.Length, gedge.Length = 0.0, 0.0
	got, err := e.evaluate(edge)
	if err != nil {
		t.Fatal(err)
	}
	want, err := gen.evaluate(gedge)
	if err != nil {
		t.Fatal(err)
	}
	if !bitsEq(got, want) {
		t.Fatalf("t=+0: cached %.17g vs generic %.17g", got, want)
	}
	misses, hits := e.Stats.PCacheMisses, e.Stats.PCacheHits

	negZero := math.Copysign(0, -1)
	edge.Length, gedge.Length = negZero, negZero
	if got, err = e.evaluate(edge); err != nil {
		t.Fatal(err)
	}
	if want, err = gen.evaluate(gedge); err != nil {
		t.Fatal(err)
	}
	if !bitsEq(got, want) {
		t.Fatalf("t=-0: cached %.17g vs generic %.17g", got, want)
	}
	if e.Stats.PCacheMisses != misses {
		t.Errorf("t=-0 missed the cache (misses %d -> %d); -0.0 must reuse the +0.0 entry",
			misses, e.Stats.PCacheMisses)
	}
	if e.Stats.PCacheHits <= hits {
		t.Errorf("t=-0 did not hit the cache (hits %d -> %d)", hits, e.Stats.PCacheHits)
	}
}

// TestPCacheNonFiniteBypass: NaN and Inf branch lengths must bypass the
// cache entirely — a NaN key can never be re-hit usefully and would
// only waste an entry.
func TestPCacheNonFiniteBypass(t *testing.T) {
	e, _, _ := pcacheSetup(t, 26)
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	edge := e.T.Edges[0]
	hits, misses := e.Stats.PCacheHits, e.Stats.PCacheMisses
	for _, l := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		edge.Length = l
		// Twice each: a cached non-finite entry would turn the second
		// call into a hit, a keyed one into a second miss. Results are
		// garbage-in-garbage-out; only the cache traffic matters here.
		for i := 0; i < 2; i++ {
			if _, err := e.evaluate(edge); err != nil {
				t.Fatalf("t=%v: %v", l, err)
			}
		}
	}
	if e.Stats.PCacheHits != hits || e.Stats.PCacheMisses != misses {
		t.Errorf("non-finite lengths touched the cache: hits %d -> %d, misses %d -> %d",
			hits, e.Stats.PCacheHits, misses, e.Stats.PCacheMisses)
	}
}
