package plf

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/tree"
)

// randomAlignment builds an n-taxon alignment of length s with uniform
// random characters (including some ambiguity codes and gaps).
func randomAlignment(tb testing.TB, names []string, s int, rng *rand.Rand, dtype bio.DataType) *bio.Patterns {
	tb.Helper()
	a := bio.NewAlphabet(dtype)
	letters := "ACGT"
	if dtype == bio.AA {
		letters = "ARNDCQEGHILKMFPSTWYV"
	}
	m := bio.NewAlignment(a)
	for _, name := range names {
		var sb strings.Builder
		for j := 0; j < s; j++ {
			switch {
			case rng.Float64() < 0.03:
				sb.WriteByte('-')
			case dtype == bio.DNA && rng.Float64() < 0.03:
				sb.WriteByte("RYSWKMN"[rng.Intn(7)])
			default:
				sb.WriteByte(letters[rng.Intn(len(letters))])
			}
		}
		if err := m.AddString(name, sb.String()); err != nil {
			tb.Fatal(err)
		}
	}
	p, err := bio.Compress(m)
	if err != nil {
		tb.Fatal(err)
	}
	return p
}

func tipNames(n int) []string {
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	return names
}

func newEngine(tb testing.TB, t *tree.Tree, pats *bio.Patterns, m *model.Model) *Engine {
	tb.Helper()
	return newEngineP(tb, t, pats, m, PrecisionF64)
}

// newEngineP builds an in-memory engine at the given compute precision,
// sizing the provider to the carrier length.
func newEngineP(tb testing.TB, t *tree.Tree, pats *bio.Patterns, m *model.Model, prec string) *Engine {
	tb.Helper()
	cl, err := CarrierLength(m, pats.NumPatterns(), prec)
	if err != nil {
		tb.Fatal(err)
	}
	prov := NewInMemoryProvider(t.NumInner(), cl)
	e, err := NewWithPrecision(t, pats, m, prov, prec)
	if err != nil {
		tb.Fatal(err)
	}
	return e
}

func randomModel(tb testing.TB, rng *rand.Rand, dtype bio.DataType, gamma bool) *model.Model {
	tb.Helper()
	states := 4
	if dtype == bio.AA {
		states = 20
	}
	var m *model.Model
	var err error
	switch rng.Intn(3) {
	case 0:
		m, err = model.NewJC(states)
	case 1:
		if states == 4 {
			m, err = model.NewHKY([]float64{0.2 + rng.Float64()/2, 0.2, 0.25, 0.3}, 0.5+3*rng.Float64())
		} else {
			m, err = model.NewJC(states)
		}
	default:
		freqs := make([]float64, states)
		for i := range freqs {
			freqs[i] = 0.05 + rng.Float64()
		}
		exch := make([]float64, states*(states-1)/2)
		for i := range exch {
			exch[i] = 0.2 + 2*rng.Float64()
		}
		m, err = model.NewGTR(freqs, exch, states)
	}
	if err != nil {
		tb.Fatal(err)
	}
	if gamma {
		if err := m.SetGamma(0.2+2*rng.Float64(), 1+rng.Intn(4)); err != nil {
			tb.Fatal(err)
		}
	}
	return m
}

func TestEngineMatchesReferenceSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	names := tipNames(5)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 60, rng, bio.DNA)
	m, _ := model.NewJC(4)
	e := newEngine(t, tr, pats, m)
	got, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	want, err := ReferenceLogLikelihood(tr, pats, m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-want) > 1e-8*math.Abs(want) {
		t.Errorf("engine lnL = %v, reference = %v", got, want)
	}
}

func TestEngineMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(9)
		names := tipNames(n)
		tr, err := tree.RandomTopology(names, rng, 0.01, 0.8)
		if err != nil {
			return false
		}
		dtype := bio.DNA
		sites := 10 + rng.Intn(60)
		if rng.Intn(4) == 0 {
			dtype = bio.AA
			sites = 5 + rng.Intn(20)
		}
		pats := randomAlignment(t, names, sites, rng, dtype)
		m := randomModel(t, rng, dtype, rng.Intn(2) == 0)
		e := newEngine(t, tr, pats, m)
		got, err := e.LogLikelihood()
		if err != nil {
			return false
		}
		want, err := ReferenceLogLikelihood(tr, pats, m)
		if err != nil {
			return false
		}
		return math.Abs(got-want) <= 1e-7*(1+math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPulleyPrinciple(t *testing.T) {
	// The likelihood of a reversible model is invariant under virtual
	// root (evaluation edge) placement.
	rng := rand.New(rand.NewSource(7))
	names := tipNames(12)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 100, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)
	ref, err := e.LogLikelihoodAt(tr.Edges[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, edge := range tr.Edges {
		got, err := e.LogLikelihoodAt(edge)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-ref) > 1e-8*(1+math.Abs(ref)) {
			t.Fatalf("edge %d: lnL %v differs from %v", edge.Index, got, ref)
		}
	}
}

func TestPartialTraversalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	names := tipNames(20)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 80, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)

	// Walk edges with partial traversals...
	partial := make([]float64, 0, len(tr.Edges))
	for _, edge := range tr.Edges {
		v, err := e.LogLikelihoodAt(edge)
		if err != nil {
			t.Fatal(err)
		}
		partial = append(partial, v)
	}
	newviewsPartial := e.Stats.Newviews

	// ...then compare against forced full traversals.
	for i, edge := range tr.Edges {
		if err := e.FullTraversal(edge); err != nil {
			t.Fatal(err)
		}
		v, err := e.evaluate(edge)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(v-partial[i]) > 1e-9*(1+math.Abs(v)) {
			t.Fatalf("edge %d: partial %v != full %v", edge.Index, partial[i], v)
		}
	}
	newviewsFull := e.Stats.Newviews - newviewsPartial
	if newviewsPartial >= newviewsFull {
		t.Errorf("partial traversals (%d newviews) should be cheaper than full (%d)",
			newviewsPartial, newviewsFull)
	}
}

func TestTwoTaxonAnalyticJC(t *testing.T) {
	// For two sequences under JC with branch length t, a matching site
	// has probability 1/4·(1/4 + 3/4·e^{-4t/3}) and a mismatching one
	// 1/4·(1/4 - 1/4·e^{-4t/3}).
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	_ = a.AddString("x", "AAAAACCCCC")
	_ = a.AddString("y", "AAAAACCCCG") // 9 match, 1 mismatch
	pats, err := bio.Compress(a)
	if err != nil {
		t.Fatal(err)
	}
	tr := tree.NewPair("x", "y", 0.25)
	m, _ := model.NewJC(4)
	e := newEngine(t, tr, pats, m)
	got, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	bt := 0.25
	same := 0.25 * (0.25 + 0.75*math.Exp(-4*bt/3))
	diff := 0.25 * (0.25 - 0.25*math.Exp(-4*bt/3))
	want := 9*math.Log(same) + 1*math.Log(diff)
	if math.Abs(got-want) > 1e-10*math.Abs(want) {
		t.Errorf("two-taxon lnL = %v, want %v", got, want)
	}
}

func TestWeightsScaleLikelihood(t *testing.T) {
	// Duplicating every column must exactly double the log-likelihood.
	rng := rand.New(rand.NewSource(23))
	names := tipNames(6)
	tr, _ := tree.RandomTopology(names, rng, 0.05, 0.4)
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	cols := make([]string, len(names))
	for i := range names {
		var sb strings.Builder
		for j := 0; j < 40; j++ {
			sb.WriteByte("ACGT"[rng.Intn(4)])
		}
		cols[i] = sb.String()
	}
	for i, name := range names {
		_ = a.AddString(name, cols[i])
	}
	double := bio.NewAlignment(bio.NewDNAAlphabet())
	for i, name := range names {
		_ = double.AddString(name, cols[i]+cols[i])
	}
	p1, _ := bio.Compress(a)
	p2, _ := bio.Compress(double)
	m := randomModel(t, rng, bio.DNA, true)
	e1 := newEngine(t, tr, p1, m)
	e2 := newEngine(t, tr, p2, m)
	l1, err := e1.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	l2, err := e2.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(l2-2*l1) > 1e-9*math.Abs(l1) {
		t.Errorf("doubled alignment lnL %v != 2 * %v", l2, l1)
	}
	// Pattern compression must also have kept the pattern count equal.
	if p1.NumPatterns() != p2.NumPatterns() {
		t.Error("duplicate columns created new patterns")
	}
}

func TestScalingOnDeepTrees(t *testing.T) {
	// A 160-taxon tree forces per-site scaling (raw products underflow
	// double precision). Correctness evidence: the likelihood is finite,
	// scale counters fire, and evaluation is edge-invariant even though
	// different edges see different counter distributions.
	rng := rand.New(rand.NewSource(31))
	names := tipNames(160)
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	pats := randomAlignment(t, names, 30, rng, bio.DNA)
	m := randomModel(t, rng, bio.DNA, true)
	e := newEngine(t, tr, pats, m)
	ref, err := e.LogLikelihood()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(ref, 0) || math.IsNaN(ref) {
		t.Fatalf("lnL not finite: %v", ref)
	}
	scaled := false
	for _, sc := range e.scales {
		for _, c := range sc {
			if c > 0 {
				scaled = true
			}
		}
	}
	if !scaled {
		t.Fatal("scaling never triggered on a 160-taxon tree; test is vacuous")
	}
	for _, edge := range []*tree.Edge{tr.Edges[5], tr.Edges[len(tr.Edges)/2], tr.Edges[len(tr.Edges)-1]} {
		got, err := e.LogLikelihoodAt(edge)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-ref) > 1e-8*math.Abs(ref) {
			t.Fatalf("edge %d: %v != %v under scaling", edge.Index, got, ref)
		}
	}
}

func TestEngineConstructionErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	names := tipNames(4)
	tr, _ := tree.RandomTopology(names, rng, 0.05, 0.4)
	pats := randomAlignment(t, names, 20, rng, bio.DNA)
	m, _ := model.NewJC(4)

	// Wrong tip set.
	other := randomAlignment(t, []string{"w", "x", "y", "z"}, 20, rng, bio.DNA)
	prov := NewInMemoryProvider(tr.NumInner(), VectorLength(m, other.NumPatterns()))
	if _, err := New(tr, other, m, prov); err == nil {
		t.Error("mismatched taxon names must fail")
	}
	// Wrong state count.
	aam, _ := model.NewJC(20)
	if _, err := New(tr, pats, aam, prov); err == nil {
		t.Error("model/alphabet state mismatch must fail")
	}
	// Undersized provider.
	small := NewInMemoryProvider(1, VectorLength(m, pats.NumPatterns()))
	if _, err := New(tr, pats, m, small); err == nil {
		t.Error("undersized provider must fail")
	}
	// Wrong vector length.
	wrong := NewInMemoryProvider(tr.NumInner(), 7)
	if _, err := New(tr, pats, m, wrong); err == nil {
		t.Error("wrong vector length must fail")
	}
	// Taxon count mismatch.
	tr5, _ := tree.RandomTopology(tipNames(5), rng, 0.05, 0.4)
	if _, err := New(tr5, pats, m, prov); err == nil {
		t.Error("taxon count mismatch must fail")
	}
}

func TestInMemoryProviderBounds(t *testing.T) {
	p := NewInMemoryProvider(3, 8)
	if p.NumVectors() != 3 || p.VectorLen() != 8 {
		t.Fatal("provider dims wrong")
	}
	v, err := p.Vector(2, false)
	if err != nil || len(v) != 8 {
		t.Fatal("valid access failed")
	}
	if _, err := p.Vector(3, false); err == nil {
		t.Error("out of range access must fail")
	}
	if _, err := p.Vector(-1, true); err == nil {
		t.Error("negative index must fail")
	}
	// Vectors must not alias.
	a, _ := p.Vector(0, true)
	b, _ := p.Vector(1, true)
	a[0] = 42
	if b[0] == 42 {
		t.Error("vectors alias")
	}
}

func TestStatsCounters(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	names := tipNames(8)
	tr, _ := tree.RandomTopology(names, rng, 0.05, 0.4)
	pats := randomAlignment(t, names, 30, rng, bio.DNA)
	m, _ := model.NewJC(4)
	e := newEngine(t, tr, pats, m)
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
	if e.Stats.Newviews != int64(tr.NumInner()) {
		t.Errorf("first evaluation should run a full traversal: %d newviews, want %d",
			e.Stats.Newviews, tr.NumInner())
	}
	if e.Stats.Evaluations != 1 {
		t.Errorf("evaluations = %d", e.Stats.Evaluations)
	}
	if _, err := e.OptimizeBranch(tr.Edges[0]); err != nil {
		t.Fatal(err)
	}
	if e.Stats.SumTables != 1 || e.Stats.NewtonIters == 0 {
		t.Errorf("optimizer stats not recorded: %+v", e.Stats)
	}
}
