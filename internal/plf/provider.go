// Package plf implements the Phylogenetic Likelihood Function: ancestral
// probability vectors computed by Felsenstein's pruning algorithm over
// an unrooted binary tree, per-site scaling, log-likelihood evaluation
// at any branch, and analytic first and second branch-length derivatives
// via eigen-basis sum tables (the machinery behind Newton-Raphson branch
// optimisation).
//
// All ancestral-vector storage is reached through the VectorProvider
// interface — the Go analogue of the paper's getxvector() function — so
// the same engine runs unchanged against plain RAM (InMemoryProvider),
// the out-of-core slot manager (package ooc) or the simulated demand
// paging baseline (package vm). This transparency is the paper's central
// design claim (§3.2-3.3).
package plf

import "fmt"

// VectorProvider supplies storage for ancestral probability vectors,
// addressed by vector index 0..NumVectors()-1 (vector index = inner node
// index - number of tips).
//
// Vector returns the vector's payload. If write is true the caller
// promises to overwrite the entire vector before the next access, so an
// out-of-core implementation may skip reading its current contents from
// the backing store ("read skipping", paper §3.4). pinned lists vector
// indices that must not be evicted while this call is serviced: during a
// Felsenstein step for node p with children j and k, the vectors of j
// and k are pinned when fetching p and vice versa (paper §3.3).
//
// The returned slice remains valid until any subsequent Vector call
// whose index differs — exactly the lifetime a single pruning step or
// evaluation needs under the m >= 3 slot minimum.
type VectorProvider interface {
	Vector(vi int, write bool, pinned ...int) ([]float64, error)
	// NumVectors returns how many vectors the provider holds.
	NumVectors() int
	// VectorLen returns the per-vector payload length in float64s.
	VectorLen() int
}

// InMemoryProvider keeps every ancestral vector in RAM — the standard
// RAxML storage layout the paper's out-of-core manager replaces. It is
// the n == m baseline.
type InMemoryProvider struct {
	vecs [][]float64
	lens int
}

// NewInMemoryProvider allocates numVectors vectors of vecLen float64s.
func NewInMemoryProvider(numVectors, vecLen int) *InMemoryProvider {
	p := &InMemoryProvider{lens: vecLen, vecs: make([][]float64, numVectors)}
	backing := make([]float64, numVectors*vecLen)
	for i := range p.vecs {
		p.vecs[i], backing = backing[:vecLen:vecLen], backing[vecLen:]
	}
	return p
}

// Vector implements VectorProvider; it never fails and ignores pins.
func (p *InMemoryProvider) Vector(vi int, write bool, pinned ...int) ([]float64, error) {
	if vi < 0 || vi >= len(p.vecs) {
		return nil, fmt.Errorf("plf: vector index %d out of range [0, %d)", vi, len(p.vecs))
	}
	return p.vecs[vi], nil
}

// NumVectors implements VectorProvider.
func (p *InMemoryProvider) NumVectors() int { return len(p.vecs) }

// VectorLen implements VectorProvider.
func (p *InMemoryProvider) VectorLen() int { return p.lens }
