package plf

import (
	"math"
	"time"

	"oocphylo/internal/mathx"
	"oocphylo/internal/obs"
	"oocphylo/internal/tree"
)

// Branch-length optimisation via analytic derivatives.
//
// At a branch {p, q} of length t the per-pattern, per-category site
// likelihood is
//
//	f_ic(t) = Σ_s π_s · x_p[i,c,s] · (P(r_c·t) · x_q[i,c,·])_s .
//
// Substituting P = V·exp(Λrt)·V⁻¹ gives f_ic(t) = Σ_k A_ick · e^{λ_k·r_c·t}
// with the branch-independent sum table
//
//	A_ick = (Σ_s π_s·x_p[s]·V[s,k]) · (Σ_j V⁻¹[k,j]·x_q[j]) ,
//
// so a Newton iteration on t costs O(nPat·nCat·k) with no further
// vector accesses — which is why branch optimisation touches only the
// two endpoint vectors, the access-locality property the paper leans on
// in §4.2. (RAxML's sumGAMMA/coreGTRGAMMA functions implement the same
// factorisation.)
//
// In f32 mode the sum table itself is float32 (it scales with nPat like
// a vector), but the exponentials and every Newton-side term run in
// float64 on widened table entries — the same tail-precision rule the
// evaluate kernels follow.

// buildSumTable fills the compute's sumTab for edge and records the
// combined scale counters in e.sumTabSc. Both endpoint vectors must be
// valid toward each other (call Traverse first).
func (e *Engine) buildSumTable(edge *tree.Edge) error {
	if e.c32 != nil {
		return buildSumTableF(e, e.c32, edge)
	}
	return buildSumTableF(e, e.c64, edge)
}

func buildSumTableF[F Float](e *Engine, cs *compute[F], edge *tree.Edge) error {
	e.Stats.SumTables++
	e.eobs.sumTables.Inc()
	var stStart time.Time
	if e.eobs.on {
		stStart = time.Now()
	}
	cs.syncModel(e)
	a := &cs.sa
	*a = sumArgs[F]{nm: len(e.maskList)}
	p, q := edge.N[0], edge.N[1]
	var buf []float64
	var err error
	if p.IsTip() {
		a.codeP = e.tipCode[p.Index]
	} else {
		np := 0
		if !q.IsTip() {
			e.pinsL[0] = e.vi(q)
			np = 1
		}
		buf, err = e.prov.Vector(e.vi(p), false, e.pinsL[:np]...)
		if err != nil {
			return err
		}
		a.xp = vecView[F](buf, e.vecLen)
	}
	if q.IsTip() {
		a.codeQ = e.tipCode[q.Index]
	} else {
		np := 0
		if !p.IsTip() {
			e.pinsR[0] = e.vi(p)
			np = 1
		}
		buf, err = e.prov.Vector(e.vi(q), false, e.pinsR[:np]...)
		if err != nil {
			return err
		}
		a.xq = vecView[F](buf, e.vecLen)
	}
	for i := range e.sumTabSc {
		e.sumTabSc[i] = 0
	}
	if a.xp != nil {
		for i, s := range e.scales[e.vi(p)] {
			e.sumTabSc[i] += s
		}
	}
	if a.xq != nil {
		for i, s := range e.scales[e.vi(q)] {
			e.sumTabSc[i] += s
		}
	}

	e.parallelFor(e.nPat, cs.saBody)
	if e.eobs.on {
		dur := time.Since(stStart)
		e.eobs.sumTableLat.Observe(dur.Seconds())
		e.traceSpan(obs.OpSumTable, -1, stStart, dur)
	}
	return nil
}

// sumTableValues returns (lnL, dlnL/dt, d²lnL/dt²) at branch length t
// from the current sum table. Workers fill per-pattern terms; the
// reduction is sequential in pattern order, so results are
// bit-identical for any worker count.
func (e *Engine) sumTableValues(t float64) (lnl, d1, d2 float64) {
	if e.c32 != nil {
		return sumTableValuesF(e, e.c32, t)
	}
	return sumTableValuesF(e, e.c64, t)
}

func sumTableValuesF[F Float](e *Engine, cs *compute[F], t float64) (lnl, d1, d2 float64) {
	cs.svT = t
	e.parallelFor(e.nPat, cs.svBody)
	terms := e.siteBuf[:3*e.nPat]
	for i := 0; i < e.nPat; i++ {
		lnl += terms[3*i]
		d1 += terms[3*i+1]
		d2 += terms[3*i+2]
	}
	return lnl, d1, d2
}

// sumTableTerms fills the per-pattern (lnL, d1, d2) terms for patterns
// [lo, hi) at branch length t — the parallelFor body of
// sumTableValues, pre-bound on the compute as svBody. Sum-table entries
// widen to float64 before the exponential-weighted accumulation, so
// only the table itself carries reduced precision in f32 mode.
func sumTableTerms[F Float](e *Engine, cs *compute[F], t float64, lo, hi int) {
	k, C := e.nStates, e.nCat
	rates := e.M.Rates
	eval := e.M.Eval
	catW := 1.0 / float64(C)
	terms := e.siteBuf
	var expbuf [32]float64
	for i := lo; i < hi; i++ {
		base := i * C * k
		var f, fp, fpp float64
		for c := 0; c < C; c++ {
			r := rates[c]
			for kk := 0; kk < k; kk++ {
				expbuf[kk] = math.Exp(eval[kk] * r * t)
			}
			tab := cs.sumTab[base+c*k : base+(c+1)*k]
			for kk := 0; kk < k; kk++ {
				lr := eval[kk] * r
				a := float64(tab[kk]) * expbuf[kk]
				f += a
				fp += a * lr
				fpp += a * lr * lr
			}
		}
		f *= catW
		fp *= catW
		fpp *= catW
		if f < math.SmallestNonzeroFloat64 {
			f = math.SmallestNonzeroFloat64
		}
		w := e.weights[i]
		lnGamma := math.Log(f) - float64(e.sumTabSc[i])*cs.logScale
		gp, gpp := fp/f, fpp/f
		// +I mixture: the invariant component is branch-length
		// independent, so derivatives pick up the Γ-component
		// posterior weight q (1 when the mixture is off).
		q := gammaWeight(lnGamma, e.M.PInv, e.linv[i])
		terms[3*i] = w * mixInvariant(lnGamma, e.M.PInv, e.linv[i])
		terms[3*i+1] = w * q * gp
		terms[3*i+2] = w * (q*gpp - q*gp*q*gp)
	}
}

// prepareSumTable runs the traversal and builds the sum table for
// edge, healing corrupt endpoint reads the same way LogLikelihoodAt
// does: invalidate the corrupt node, re-plan, recompute.
func (e *Engine) prepareSumTable(edge *tree.Edge) error {
	budget := e.recoveryBudget()
	attempts := 0
	for {
		if err := e.Traverse(edge); err != nil {
			return err
		}
		err := e.buildSumTable(edge)
		if err == nil {
			return nil
		}
		if !e.recoverCorruption(err, &attempts, budget) {
			return err
		}
	}
}

// OptimizeBranch Newton-optimises the length of edge, leaving both
// endpoint vectors valid and the edge set to the best length found. It
// returns the log-likelihood at the optimised length. The optimum is
// clamped to [tree.MinBranchLength, tree.MaxBranchLength]; if Newton
// lands somewhere worse than the starting point (possible on plateaus)
// the original length is kept. The Newton objective is the engine's
// pre-bound fdfFn, so the whole call allocates nothing.
func (e *Engine) OptimizeBranch(edge *tree.Edge) (float64, error) {
	if err := e.prepareSumTable(edge); err != nil {
		return 0, err
	}
	t0 := edge.Length
	lnl0, _, _ := e.sumTableValues(t0)
	t1, _ := mathx.Newton(e.fdfFn, t0, tree.MinBranchLength, tree.MaxBranchLength, 1e-8, 32)
	lnl1, _, _ := e.sumTableValues(t1)
	if lnl1 >= lnl0 {
		edge.Length = t1
		return lnl1, nil
	}
	return lnl0, nil
}

// EvaluateAtLength returns the log-likelihood that the current sum
// table predicts for the given branch length. Exposed for tests (it
// must agree with a fresh evaluation after setting the length).
func (e *Engine) EvaluateAtLength(edge *tree.Edge, t float64) (float64, error) {
	if err := e.prepareSumTable(edge); err != nil {
		return 0, err
	}
	lnl, _, _ := e.sumTableValues(t)
	return lnl, nil
}
