package plf

import (
	"math/rand"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

// TestParallelBitIdentical is the determinism contract of the parallel
// kernels: since workers fill per-pattern scratch and reductions run
// sequentially in pattern order, every worker count must produce
// bit-identical likelihoods, derivatives and optimised branch lengths.
func TestParallelBitIdentical(t *testing.T) {
	build := func() (*Engine, *tree.Tree) {
		rng := rand.New(rand.NewSource(71))
		names := tipNames(24)
		tr, err := tree.RandomTopology(names, rng, 0.02, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		pats := randomAlignment(t, names, 2200, rng, bio.DNA) // above the fan-out threshold
		m := randomModel(t, rng, bio.DNA, true)
		prov := NewInMemoryProvider(tr.NumInner(), VectorLength(m, pats.NumPatterns()))
		e, err := New(tr, pats, m, prov)
		if err != nil {
			t.Fatal(err)
		}
		return e, tr
	}

	type outcome struct {
		lnl, d1, d2, opt float64
	}
	run := func(workers int) outcome {
		e, tr := build()
		e.SetWorkers(workers)
		lnl, err := e.LogLikelihood()
		if err != nil {
			t.Fatal(err)
		}
		edge := tr.Edges[2]
		if err := e.Traverse(edge); err != nil {
			t.Fatal(err)
		}
		if err := e.buildSumTable(edge); err != nil {
			t.Fatal(err)
		}
		_, d1, d2 := e.sumTableValues(edge.Length)
		if _, err := e.OptimizeBranch(edge); err != nil {
			t.Fatal(err)
		}
		return outcome{lnl, d1, d2, edge.Length}
	}

	ref := run(1)
	for _, w := range []int{2, 3, 8} {
		got := run(w)
		if got != ref {
			t.Errorf("workers=%d: %+v differs from sequential %+v", w, got, ref)
		}
	}
}

func TestSetWorkersClamps(t *testing.T) {
	e := &Engine{}
	e.SetWorkers(-3)
	if e.Workers() != 1 {
		t.Error("negative worker counts must clamp to 1")
	}
	e.SetWorkers(7)
	if e.Workers() != 7 {
		t.Error("SetWorkers lost the value")
	}
}

func TestParallelForSmallNStaysSequential(t *testing.T) {
	e := &Engine{}
	e.SetWorkers(8)
	calls := 0
	e.parallelFor(10, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 10 {
			t.Errorf("small n must be one block, got [%d,%d)", lo, hi)
		}
	})
	if calls != 1 {
		t.Errorf("small n should make exactly one call, made %d", calls)
	}
}

func TestParallelForCoversRangeExactly(t *testing.T) {
	e := &Engine{}
	e.SetWorkers(4)
	n := 4 * minPatternsPerWorker
	seen := make([]int32, n)
	var mu = make(chan struct{}, 1)
	mu <- struct{}{}
	e.parallelFor(n, func(lo, hi int) {
		<-mu
		for i := lo; i < hi; i++ {
			seen[i]++
		}
		mu <- struct{}{}
	})
	for i, c := range seen {
		if c != 1 {
			t.Fatalf("index %d covered %d times", i, c)
		}
	}
}

func BenchmarkNewviewParallel(b *testing.B) {
	for _, w := range []int{1, 2, 4} {
		b.Run(itoa(w)+"workers", func(b *testing.B) {
			e, tr := benchSetup(b, 32, 20000, true, bio.DNA)
			e.SetWorkers(w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := e.FullTraversal(tr.Edges[0]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(v int) string {
	return string(rune('0' + v))
}
