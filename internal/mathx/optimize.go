package mathx

import (
	"errors"
	"math"
)

// ErrNoBracket is returned by Brent when the supplied interval is empty.
var ErrNoBracket = errors.New("mathx: invalid bracketing interval")

// Brent minimises f over [lo, hi] using Brent's method (golden-section
// steps with parabolic interpolation when safe). It returns the abscissa
// and value of the minimum. tol is the relative x tolerance; values below
// ~sqrt(machine epsilon) buy nothing.
func Brent(f func(float64) float64, lo, hi, tol float64, maxIter int) (xmin, fmin float64, err error) {
	if !(lo < hi) {
		return 0, 0, ErrNoBracket
	}
	if tol <= 0 {
		tol = 1e-8
	}
	if maxIter <= 0 {
		maxIter = 200
	}
	const cgold = 0.3819660112501051 // 2 - golden ratio
	const zeps = 1e-12

	a, b := lo, hi
	x := a + cgold*(b-a)
	w, v := x, x
	fx := f(x)
	fw, fv := fx, fx
	var d, e float64

	for iter := 0; iter < maxIter; iter++ {
		xm := 0.5 * (a + b)
		tol1 := tol*math.Abs(x) + zeps
		tol2 := 2 * tol1
		if math.Abs(x-xm) <= tol2-0.5*(b-a) {
			return x, fx, nil
		}
		useGolden := true
		if math.Abs(e) > tol1 {
			// Attempt parabolic fit through x, v, w.
			r := (x - w) * (fx - fv)
			q := (x - v) * (fx - fw)
			p := (x-v)*q - (x-w)*r
			q = 2 * (q - r)
			if q > 0 {
				p = -p
			}
			q = math.Abs(q)
			etemp := e
			e = d
			if math.Abs(p) < math.Abs(0.5*q*etemp) && p > q*(a-x) && p < q*(b-x) {
				d = p / q
				u := x + d
				if u-a < tol2 || b-u < tol2 {
					d = math.Copysign(tol1, xm-x)
				}
				useGolden = false
			}
		}
		if useGolden {
			if x >= xm {
				e = a - x
			} else {
				e = b - x
			}
			d = cgold * e
		}
		var u float64
		if math.Abs(d) >= tol1 {
			u = x + d
		} else {
			u = x + math.Copysign(tol1, d)
		}
		fu := f(u)
		if fu <= fx {
			if u >= x {
				a = x
			} else {
				b = x
			}
			v, w, x = w, x, u
			fv, fw, fx = fw, fx, fu
		} else {
			if u < x {
				a = u
			} else {
				b = u
			}
			if fu <= fw || w == x {
				v, w = w, u
				fv, fw = fw, fu
			} else if fu <= fv || v == x || v == w {
				v, fv = u, fu
			}
		}
	}
	return x, fx, nil
}

// NewtonResult reports how a Newton-Raphson root search ended.
type NewtonResult int

const (
	// NewtonConverged means |step| fell below the tolerance.
	NewtonConverged NewtonResult = iota
	// NewtonMaxIter means the iteration budget was exhausted; the best
	// iterate so far is returned.
	NewtonMaxIter
	// NewtonClampedLow / NewtonClampedHigh mean the iterate was pinned at
	// a bound for two consecutive steps, i.e. the optimum lies at (or
	// beyond) the boundary.
	NewtonClampedLow
	NewtonClampedHigh
)

// Newton finds a root of fdf's first return value within [lo, hi] by
// guarded Newton-Raphson. fdf returns (f(x), f'(x)); in branch-length
// optimisation these are the first and second derivative of the
// log-likelihood. The iterate is clamped to [lo, hi]; when the Newton
// step is invalid (non-finite, or f' >= 0 where a maximum is sought the
// caller should pre-negate) the step is replaced by a bisection-like
// damped move toward the appropriate bound.
func Newton(fdf func(float64) (float64, float64), x0, lo, hi, tol float64, maxIter int) (float64, NewtonResult) {
	if tol <= 0 {
		tol = 1e-10
	}
	if maxIter <= 0 {
		maxIter = 64
	}
	x := math.Min(math.Max(x0, lo), hi)
	clampedAt := 0 // -1 low, +1 high, consecutive count tracked via prev
	prevClamp := 0
	for i := 0; i < maxIter; i++ {
		f, df := fdf(x)
		if f == 0 {
			return x, NewtonConverged
		}
		var step float64
		if df != 0 && !math.IsNaN(df) && !math.IsInf(df, 0) && !math.IsNaN(f) {
			step = f / df
		} else {
			step = 0
		}
		var nx float64
		if step != 0 && !math.IsNaN(step) && !math.IsInf(step, 0) {
			nx = x - step
		} else {
			// Derivative information unusable: damped move following the
			// sign of f (assuming f decreasing across the root, as for
			// d lnL / dt which is positive below the optimum).
			if f > 0 {
				nx = math.Min(x*4+1e-8, hi)
			} else {
				nx = math.Max(x/4, lo)
			}
		}
		clampedAt = 0
		if nx <= lo {
			nx = lo
			clampedAt = -1
		} else if nx >= hi {
			nx = hi
			clampedAt = 1
		}
		if clampedAt != 0 && clampedAt == prevClamp {
			if clampedAt < 0 {
				return lo, NewtonClampedLow
			}
			return hi, NewtonClampedHigh
		}
		prevClamp = clampedAt
		if math.Abs(nx-x) < tol*(math.Abs(x)+tol) {
			return nx, NewtonConverged
		}
		x = nx
	}
	return x, NewtonMaxIter
}
