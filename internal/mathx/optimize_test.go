package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestBrentQuadratic(t *testing.T) {
	f := func(x float64) float64 { return (x-2)*(x-2) + 3 }
	x, fx, err := Brent(f, -10, 10, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 2, 1e-6) || !almostEqual(fx, 3, 1e-10) {
		t.Errorf("Brent found (%v, %v), want (2, 3)", x, fx)
	}
}

func TestBrentAsymmetric(t *testing.T) {
	// A likelihood-like curve: -log of a gamma density, minimum at
	// (shape-1)/rate for shape=3, rate=2 -> x=1.
	f := func(x float64) float64 { return -(2*math.Log(x) - 2*x) }
	x, _, err := Brent(f, 1e-6, 50, 1e-10, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x, 1, 1e-6) {
		t.Errorf("Brent min at %v, want 1", x)
	}
}

func TestBrentBoundaryMinimum(t *testing.T) {
	// Monotone increasing function: the minimum is at the lower bound.
	f := func(x float64) float64 { return x }
	x, _, err := Brent(f, 3, 9, 1e-9, 200)
	if err != nil {
		t.Fatal(err)
	}
	if x > 3+1e-4 {
		t.Errorf("Brent should converge to the lower bound, got %v", x)
	}
}

func TestBrentBadInterval(t *testing.T) {
	if _, _, err := Brent(func(x float64) float64 { return x }, 5, 5, 1e-9, 10); err == nil {
		t.Error("degenerate interval must error")
	}
	if _, _, err := Brent(func(x float64) float64 { return x }, 7, 2, 1e-9, 10); err == nil {
		t.Error("reversed interval must error")
	}
}

func TestBrentRandomQuadraticsProperty(t *testing.T) {
	f := func(centerRaw, offRaw float64) bool {
		c := math.Mod(centerRaw, 50)
		off := 1 + math.Abs(math.Mod(offRaw, 20))
		q := func(x float64) float64 { return (x - c) * (x - c) }
		x, _, err := Brent(q, c-off, c+off*1.3, 1e-10, 300)
		return err == nil && almostEqual(x+1, c+1, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestNewtonFindsRoot(t *testing.T) {
	// f(x) = cos(x) - x has a root at ~0.7390851332.
	fdf := func(x float64) (float64, float64) {
		return math.Cos(x) - x, -math.Sin(x) - 1
	}
	x, res := Newton(fdf, 0.5, 0, 2, 1e-12, 100)
	if res != NewtonConverged {
		t.Fatalf("result = %v, want converged", res)
	}
	if !almostEqual(x, 0.7390851332151607, 1e-8) {
		t.Errorf("root = %v", x)
	}
}

func TestNewtonLikelihoodShape(t *testing.T) {
	// dL/dt for a two-state toy likelihood: f(t) = exp(-t)(1 - t); root of
	// the derivative d/dt [t e^{-t}] = (1-t)e^{-t} at t=1.
	fdf := func(t float64) (float64, float64) {
		return (1 - t) * math.Exp(-t), (t - 2) * math.Exp(-t)
	}
	x, res := Newton(fdf, 0.3, 1e-8, 10, 1e-12, 100)
	if res != NewtonConverged || !almostEqual(x, 1, 1e-8) {
		t.Errorf("got x=%v res=%v, want x=1 converged", x, res)
	}
}

func TestNewtonClampsAtBounds(t *testing.T) {
	// f strictly positive: Newton keeps pushing up; with f' negative the
	// step x - f/f' moves right, so it should clamp high.
	fdf := func(x float64) (float64, float64) { return 1, -0.1 }
	x, res := Newton(fdf, 0.5, 0, 3, 1e-12, 100)
	if res != NewtonClampedHigh || x != 3 {
		t.Errorf("got x=%v res=%v, want clamped high at 3", x, res)
	}
	// Mirror case clamps low.
	fdf = func(x float64) (float64, float64) { return -1, -0.1 }
	x, res = Newton(fdf, 0.5, 0.001, 3, 1e-12, 100)
	if res != NewtonClampedLow || x != 0.001 {
		t.Errorf("got x=%v res=%v, want clamped low", x, res)
	}
}

func TestNewtonSurvivesBadDerivatives(t *testing.T) {
	// Zero derivative everywhere: must not divide by zero or loop forever.
	calls := 0
	fdf := func(x float64) (float64, float64) {
		calls++
		return 1, 0
	}
	_, res := Newton(fdf, 1, 0.01, 100, 1e-10, 50)
	if res == NewtonConverged {
		t.Error("cannot converge on constant-derivative input")
	}
	if calls == 0 {
		t.Error("function never evaluated")
	}
	// NaN derivative path.
	fdf = func(x float64) (float64, float64) { return math.NaN(), math.NaN() }
	x, _ := Newton(fdf, 1, 0.01, 100, 1e-10, 50)
	if math.IsNaN(x) {
		t.Error("iterate must stay finite under NaN inputs")
	}
}
