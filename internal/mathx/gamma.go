// Package mathx provides the special functions and small numerical
// optimisers the likelihood engine depends on: the log-gamma function,
// the regularised incomplete gamma function, chi-square and normal
// quantiles, the discrete-gamma rate discretisation of Yang (1994),
// a Brent one-dimensional minimiser and a guarded Newton root finder.
//
// All routines are implemented from scratch on top of math and are
// accurate to well beyond the tolerances phylogenetic likelihood
// optimisation requires (absolute errors around 1e-10 or better over
// the parameter ranges that occur in practice).
package mathx

import (
	"errors"
	"math"
)

// LnGamma returns the natural logarithm of the gamma function for x > 0,
// using the Lanczos approximation (g = 7, 9 coefficients).
func LnGamma(x float64) float64 {
	if x <= 0 {
		return math.NaN()
	}
	// Lanczos coefficients for g=7, n=9.
	var lanczos = [...]float64{
		0.99999999999980993,
		676.5203681218851,
		-1259.1392167224028,
		771.32342877765313,
		-176.61502916214059,
		12.507343278686905,
		-0.13857109526572012,
		9.9843695780195716e-6,
		1.5056327351493116e-7,
	}
	if x < 0.5 {
		// Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LnGamma(1-x)
	}
	x--
	a := lanczos[0]
	t := x + 7.5
	for i := 1; i < len(lanczos); i++ {
		a += lanczos[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// GammaP returns the regularised lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
//
// It uses the series expansion for x < a+1 and the continued fraction
// for x >= a+1 (Numerical-Recipes style, but independently implemented).
func GammaP(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 0
	}
	if x < a+1 {
		return gammaPSeries(a, x)
	}
	return 1 - gammaQContinuedFraction(a, x)
}

// GammaQ returns the regularised upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case a <= 0 || math.IsNaN(a) || math.IsNaN(x):
		return math.NaN()
	case x < 0:
		return math.NaN()
	case x == 0:
		return 1
	}
	if x < a+1 {
		return 1 - gammaPSeries(a, x)
	}
	return gammaQContinuedFraction(a, x)
}

const gammaEps = 1e-15

// gammaMaxIter returns an iteration budget for the series / continued
// fraction. Near x ~ a the term ratio approaches one and convergence
// needs O(sqrt(a)) terms, so the budget scales with sqrt(a).
func gammaMaxIter(a float64) int {
	return 500 + int(12*math.Sqrt(a))
}

func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i, n := 0, gammaMaxIter(a); i < n; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*gammaEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a))
}

func gammaQContinuedFraction(a, x float64) float64 {
	const fpmin = 1e-300
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i, n := 1, gammaMaxIter(a); i <= n; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < gammaEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LnGamma(a)) * h
}

// NormalQuantile returns the quantile z with Φ(z) = p for the standard
// normal distribution, 0 < p < 1. It uses the Beasley-Springer-Moro
// rational approximation refined by one Newton step on the normal CDF,
// giving ~1e-12 absolute accuracy over (1e-300, 1-1e-16).
func NormalQuantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		if p == 0 {
			return math.Inf(-1)
		}
		if p == 1 {
			return math.Inf(1)
		}
		return math.NaN()
	}
	// Acklam's rational approximation.
	var (
		a = [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
			-2.759285104469687e+02, 1.383577518672690e+02,
			-3.066479806614716e+01, 2.506628277459239e+00}
		b = [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
			-1.556989798598866e+02, 6.680131188771972e+01,
			-1.328068155288572e+01}
		c = [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
			-2.400758277161838e+00, -2.549732539343734e+00,
			4.374664141464968e+00, 2.938163982698783e+00}
		d = [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
			2.445134137142996e+00, 3.754408661907416e+00}
	)
	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement using the exact CDF via erfc.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x -= u / (1 + x*u/2)
	return x
}

// Chi2Quantile returns the quantile of the chi-square distribution with
// df degrees of freedom at probability p (0 < p < 1), i.e. the value x
// such that P(df/2, x/2) = p. df may be non-integral (as required for
// gamma-distribution quantiles via the chi-square relationship).
//
// The implementation starts from the Wilson-Hilferty approximation and
// polishes the root with Newton iterations on the regularised incomplete
// gamma function.
func Chi2Quantile(p, df float64) float64 {
	if math.IsNaN(p) || math.IsNaN(df) || df <= 0 || p < 0 || p >= 1 {
		return math.NaN()
	}
	if p == 0 {
		return 0
	}
	a := df / 2
	// Wilson-Hilferty starting point.
	z := NormalQuantile(p)
	t := 2.0 / (9 * df)
	x := df * math.Pow(1-t+z*math.Sqrt(t), 3)
	if x <= 0 || df < 0.2 {
		// Small-df fallback: x ≈ (p Γ(a+1))^{1/a} * 2.
		x = 2 * math.Exp((math.Log(p)+LnGamma(a+1))/a)
	}
	lnGa := LnGamma(a)
	for i := 0; i < 100; i++ {
		h := x / 2
		f := GammaP(a, h) - p
		// d/dx P(a, x/2) = (1/2) * h^{a-1} e^{-h} / Γ(a).
		dlog := (a-1)*math.Log(h) - h - lnGa - math.Ln2
		deriv := math.Exp(dlog)
		if deriv == 0 {
			break
		}
		step := f / deriv
		nx := x - step
		for nx <= 0 {
			step /= 2
			nx = x - step
		}
		x = nx
		if math.Abs(step) < 1e-12*(math.Abs(x)+1e-12) {
			break
		}
	}
	return x
}

// GammaQuantile returns the quantile of a Gamma(shape=a, rate=b)
// distribution at probability p, via the chi-square relationship
// Gamma(a, b) = Chi2(2a) / (2b).
func GammaQuantile(p, shape, rate float64) float64 {
	if shape <= 0 || rate <= 0 {
		return math.NaN()
	}
	return Chi2Quantile(p, 2*shape) / (2 * rate)
}

// ErrBadAlpha is returned by DiscreteGammaRates for non-positive shape
// parameters or category counts below one.
var ErrBadAlpha = errors.New("mathx: discrete gamma requires alpha > 0 and ncat >= 1")

// DiscreteGammaRates computes the ncat mean rates of the discrete-gamma
// model of among-site rate heterogeneity (Yang 1994) for shape parameter
// alpha. The underlying continuous distribution is Gamma(alpha, alpha)
// (mean 1). The returned rates have mean exactly 1 (they are normalised;
// with the mean-of-category construction they already sum to ncat up to
// quantile round-off).
//
// If useMedian is true the median of each category is used instead of the
// mean (cheaper, slightly less accurate; offered by RAxML and PAML alike).
func DiscreteGammaRates(alpha float64, ncat int, useMedian bool) ([]float64, error) {
	if alpha <= 0 || ncat < 1 {
		return nil, ErrBadAlpha
	}
	rates := make([]float64, ncat)
	if ncat == 1 {
		rates[0] = 1
		return rates, nil
	}
	k := float64(ncat)
	if useMedian {
		total := 0.0
		for i := 0; i < ncat; i++ {
			p := (2*float64(i) + 1) / (2 * k)
			rates[i] = GammaQuantile(p, alpha, alpha)
			total += rates[i]
		}
		// Scale so the mean is exactly one.
		for i := range rates {
			rates[i] *= k / total
		}
		return rates, nil
	}
	// Mean-of-category construction: cut points at quantiles i/k, then
	// the mean rate within (x_{i-1}, x_i] is
	//   k * [ I(alpha+1, b*x_i) - I(alpha+1, b*x_{i-1}) ]
	// where I is the regularised incomplete gamma with shape alpha+1 and
	// b = alpha (the rate), using the identity for truncated gamma means.
	cut := make([]float64, ncat+1)
	cut[0] = 0
	cut[ncat] = math.Inf(1)
	for i := 1; i < ncat; i++ {
		cut[i] = GammaQuantile(float64(i)/k, alpha, alpha)
	}
	prev := 0.0
	total := 0.0
	for i := 0; i < ncat; i++ {
		var upper float64
		if i == ncat-1 {
			upper = 1
		} else {
			upper = GammaP(alpha+1, cut[i+1]*alpha)
		}
		rates[i] = (upper - prev) * k
		prev = upper
		total += rates[i]
	}
	// Normalise defensively against quantile round-off.
	for i := range rates {
		rates[i] *= k / total
	}
	return rates, nil
}
