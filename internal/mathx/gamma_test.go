package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	diff := math.Abs(a - b)
	if diff <= tol {
		return true
	}
	return diff <= tol*math.Max(math.Abs(a), math.Abs(b))
}

func TestLnGammaKnownValues(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{10, math.Log(362880)},
		{0.5, 0.5 * math.Log(math.Pi)},
		{1.5, math.Log(0.5 * math.Sqrt(math.Pi))},
		{100, 359.1342053695754},
	}
	for _, c := range cases {
		got := LnGamma(c.x)
		if !almostEqual(got, c.want, 1e-12) {
			t.Errorf("LnGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLnGammaRecurrence(t *testing.T) {
	// ln Γ(x+1) = ln Γ(x) + ln x must hold everywhere.
	for _, x := range []float64{0.1, 0.3, 0.9, 1.7, 3.3, 12.5, 77.7, 1234.5} {
		lhs := LnGamma(x + 1)
		rhs := LnGamma(x) + math.Log(x)
		if !almostEqual(lhs, rhs, 1e-11) {
			t.Errorf("recurrence broken at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestLnGammaInvalid(t *testing.T) {
	for _, x := range []float64{0, -1, -3.5} {
		if !math.IsNaN(LnGamma(x)) {
			t.Errorf("LnGamma(%v) should be NaN", x)
		}
	}
}

func TestGammaPExponentialIdentity(t *testing.T) {
	// P(1, x) = 1 - exp(-x).
	for _, x := range []float64{0.01, 0.5, 1, 2, 5, 20} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(1, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPErfIdentity(t *testing.T) {
	// P(1/2, x) = erf(sqrt(x)).
	for _, x := range []float64{0.05, 0.3, 1, 3, 9} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); !almostEqual(got, want, 1e-12) {
			t.Errorf("GammaP(0.5, %v) = %v, want %v", x, got, want)
		}
	}
}

func TestGammaPQComplementary(t *testing.T) {
	for _, a := range []float64{0.2, 0.7, 1, 2.5, 10, 50} {
		for _, x := range []float64{0.001, 0.1, 1, 5, 40, 120} {
			p, q := GammaP(a, x), GammaQ(a, x)
			if !almostEqual(p+q, 1, 1e-12) {
				t.Errorf("P+Q != 1 at a=%v x=%v: %v", a, x, p+q)
			}
		}
	}
}

func TestGammaPEdgeCases(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Error("GammaP(a, 0) must be 0")
	}
	if GammaQ(2, 0) != 1 {
		t.Error("GammaQ(a, 0) must be 1")
	}
	if !math.IsNaN(GammaP(0, 1)) || !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Error("invalid arguments should yield NaN")
	}
	if got := GammaP(3, 1e4); !almostEqual(got, 1, 1e-12) {
		t.Errorf("GammaP saturates to 1, got %v", got)
	}
}

func TestGammaPMonotoneProperty(t *testing.T) {
	f := func(aRaw, x1Raw, x2Raw float64) bool {
		a := 0.05 + math.Abs(math.Mod(aRaw, 20))
		x1 := math.Abs(math.Mod(x1Raw, 50))
		x2 := math.Abs(math.Mod(x2Raw, 50))
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		p1, p2 := GammaP(a, x1), GammaP(a, x2)
		return p1 >= -1e-15 && p2 <= 1+1e-15 && p1 <= p2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.84134474606854293, 1}, // Φ(1)
		{0.99, 2.3263478740408408},
		{1e-10, -6.361340902404056},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almostEqual(got, c.want, 1e-9) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 0.9998)) + 1e-4
		if p >= 1 {
			return true
		}
		z := NormalQuantile(p)
		back := 0.5 * math.Erfc(-z/math.Sqrt2)
		return almostEqual(back, p, 1e-10)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalQuantileEdges(t *testing.T) {
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantiles at 0/1 must be infinite")
	}
	if !math.IsNaN(NormalQuantile(-0.1)) || !math.IsNaN(NormalQuantile(1.1)) {
		t.Error("out-of-range p must yield NaN")
	}
}

func TestChi2QuantileKnownValues(t *testing.T) {
	cases := []struct{ p, df, want float64 }{
		{0.95, 1, 3.841458820694124},
		{0.95, 2, 5.991464547107979},
		{0.5, 2, 1.3862943611198906}, // 2 ln 2
		{0.99, 10, 23.209251158954356},
		{0.05, 5, 1.1454762260617692},
		{0.9, 0.5, 1.5007857444736674},
	}
	for _, c := range cases {
		if got := Chi2Quantile(c.p, c.df); !almostEqual(got, c.want, 1e-8) {
			t.Errorf("Chi2Quantile(%v, %v) = %v, want %v", c.p, c.df, got, c.want)
		}
	}
}

func TestChi2QuantileRoundTrip(t *testing.T) {
	f := func(pRaw, dfRaw float64) bool {
		p := math.Abs(math.Mod(pRaw, 0.98)) + 0.01
		df := 0.1 + math.Abs(math.Mod(dfRaw, 60))
		x := Chi2Quantile(p, df)
		if x < 0 || math.IsNaN(x) {
			return false
		}
		return almostEqual(GammaP(df/2, x/2), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestGammaQuantileRelationship(t *testing.T) {
	// Gamma(shape a, rate b) quantile must invert GammaP(a, b*x).
	for _, a := range []float64{0.3, 0.5, 1, 2, 7} {
		for _, b := range []float64{0.5, 1, 3} {
			for _, p := range []float64{0.1, 0.5, 0.9} {
				x := GammaQuantile(p, a, b)
				if !almostEqual(GammaP(a, b*x), p, 1e-8) {
					t.Errorf("GammaQuantile(%v,%v,%v) round trip failed: x=%v", p, a, b, x)
				}
			}
		}
	}
	if !math.IsNaN(GammaQuantile(0.5, -1, 1)) || !math.IsNaN(GammaQuantile(0.5, 1, 0)) {
		t.Error("invalid shape/rate must yield NaN")
	}
}

func TestDiscreteGammaRatesPAMLReference(t *testing.T) {
	// Reference mean rates for alpha = 0.5, 4 categories, as published by
	// Yang (1994) and reproduced by PAML and RAxML.
	want := []float64{0.033388, 0.251916, 0.820268, 2.894428}
	got, err := DiscreteGammaRates(0.5, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if !almostEqual(got[i], want[i], 2e-4) {
			t.Errorf("rate[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestDiscreteGammaRatesProperties(t *testing.T) {
	for _, alpha := range []float64{0.05, 0.2, 0.5, 1, 2.7, 10, 100} {
		for _, ncat := range []int{1, 2, 4, 8, 16} {
			for _, median := range []bool{false, true} {
				rates, err := DiscreteGammaRates(alpha, ncat, median)
				if err != nil {
					t.Fatalf("alpha=%v ncat=%d: %v", alpha, ncat, err)
				}
				if len(rates) != ncat {
					t.Fatalf("got %d rates, want %d", len(rates), ncat)
				}
				sum := 0.0
				for i, r := range rates {
					if r < 0 || math.IsNaN(r) {
						t.Fatalf("alpha=%v ncat=%d median=%v: bad rate %v", alpha, ncat, median, r)
					}
					if i > 0 && rates[i] < rates[i-1]-1e-12 {
						t.Fatalf("rates not non-decreasing: %v", rates)
					}
					sum += r
				}
				if !almostEqual(sum/float64(ncat), 1, 1e-9) {
					t.Errorf("alpha=%v ncat=%d median=%v: mean rate %v != 1", alpha, ncat, median, sum/float64(ncat))
				}
			}
		}
	}
}

func TestDiscreteGammaHighAlphaUniform(t *testing.T) {
	// As alpha -> infinity the distribution concentrates at 1, so all
	// category rates approach 1.
	rates, err := DiscreteGammaRates(1e5, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rates {
		if !almostEqual(r, 1, 2e-2) {
			t.Errorf("alpha=1e5: rate %v far from 1", r)
		}
	}
}

func TestDiscreteGammaRatesErrors(t *testing.T) {
	if _, err := DiscreteGammaRates(0, 4, false); err == nil {
		t.Error("alpha=0 must error")
	}
	if _, err := DiscreteGammaRates(-1, 4, false); err == nil {
		t.Error("alpha<0 must error")
	}
	if _, err := DiscreteGammaRates(1, 0, false); err == nil {
		t.Error("ncat=0 must error")
	}
}
