// Package iosim provides a parametric storage-device model and a
// simulated clock. The paper's real-test-case machine (§4.3: Intel i5,
// 2 GB RAM, 36 GB swap on a spinning disk) cannot be reproduced
// directly at GB scale inside CI, so both the demand-paging baseline
// (package vm) and the out-of-core manager's simulated store charge
// their I/O against the same device model: per-operation positioning
// latency plus size-proportional transfer time. The comparison between
// the two designs is then a statement about the I/O each issues —
// page-granular random faults versus whole-vector amortised transfers —
// which is exactly the mechanism the paper credits for its speedups.
package iosim

import (
	"fmt"
	"sync"
	"time"
)

// Device models a storage device with positioning latency and sequential
// bandwidth.
type Device struct {
	// Name labels the device in reports.
	Name string
	// Latency is charged once per I/O operation (seek + rotational delay
	// for disks, request overhead for SSDs).
	Latency time.Duration
	// Bandwidth is the sequential transfer rate in bytes per second.
	Bandwidth float64
}

// HDD returns a conservative 7200-rpm spinning disk model: 8 ms average
// positioning, 120 MB/s sequential bandwidth — the class of device in
// the paper's test machine.
func HDD() Device {
	return Device{Name: "hdd", Latency: 8 * time.Millisecond, Bandwidth: 120e6}
}

// SSD returns a SATA-SSD model: 80 µs request latency, 500 MB/s.
func SSD() Device {
	return Device{Name: "ssd", Latency: 80 * time.Microsecond, Bandwidth: 500e6}
}

// TransferTime returns the modelled duration of one I/O of the given
// size: Latency + size/Bandwidth.
func (d Device) TransferTime(bytes int64) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	t := d.Latency
	if d.Bandwidth > 0 {
		t += time.Duration(float64(bytes) / d.Bandwidth * float64(time.Second))
	}
	return t
}

// Clock accumulates simulated time. It is the single ledger a workload
// charges all modelled I/O against; compute time measured on the real
// clock can be added by the harness to form a total elapsed estimate.
// Charging is mutex-protected because the async pipeline's I/O workers
// charge the same clock concurrently.
type Clock struct {
	mu      sync.Mutex
	elapsed time.Duration
	ops     int64
	bytes   int64
}

// Charge adds one I/O of the given size on device d.
func (c *Clock) Charge(d Device, bytes int64) {
	t := d.TransferTime(bytes)
	c.mu.Lock()
	c.elapsed += t
	c.ops++
	c.bytes += bytes
	c.mu.Unlock()
}

// Advance adds an arbitrary duration (e.g. modelled CPU work).
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.elapsed += d
	c.mu.Unlock()
}

// Elapsed returns the accumulated simulated time.
func (c *Clock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.elapsed
}

// Ops returns the number of charged I/O operations.
func (c *Clock) Ops() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ops
}

// Bytes returns the total bytes charged.
func (c *Clock) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Reset zeroes the ledger.
func (c *Clock) Reset() {
	c.mu.Lock()
	c.elapsed, c.ops, c.bytes = 0, 0, 0
	c.mu.Unlock()
}

// String summarises the ledger.
func (c *Clock) String() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return fmt.Sprintf("%v over %d ops, %d bytes", c.elapsed, c.ops, c.bytes)
}
