package iosim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestTransferTimeComposition(t *testing.T) {
	d := Device{Name: "x", Latency: 10 * time.Millisecond, Bandwidth: 100e6}
	// 100 MB at 100 MB/s = 1s, plus 10ms latency.
	got := d.TransferTime(100e6)
	want := time.Second + 10*time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	if d.TransferTime(0) != d.Latency {
		t.Error("zero bytes costs exactly latency")
	}
	if d.TransferTime(-1) != d.Latency {
		t.Error("negative bytes clamp to zero")
	}
	zero := Device{Latency: time.Millisecond}
	if zero.TransferTime(1e9) != time.Millisecond {
		t.Error("zero bandwidth means latency only")
	}
}

func TestTransferTimeMonotoneProperty(t *testing.T) {
	d := HDD()
	f := func(a, b uint32) bool {
		x, y := int64(a), int64(b)
		if x > y {
			x, y = y, x
		}
		return d.TransferTime(x) <= d.TransferTime(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClockLedger(t *testing.T) {
	var c Clock
	d := Device{Name: "t", Latency: time.Millisecond, Bandwidth: 1e6}
	c.Charge(d, 1000) // 1ms + 1ms
	c.Charge(d, 0)    // 1ms
	c.Advance(5 * time.Millisecond)
	if c.Ops() != 2 || c.Bytes() != 1000 {
		t.Errorf("ledger: ops=%d bytes=%d", c.Ops(), c.Bytes())
	}
	want := 8 * time.Millisecond
	if c.Elapsed() != want {
		t.Errorf("elapsed = %v, want %v", c.Elapsed(), want)
	}
	if !strings.Contains(c.String(), "2 ops") {
		t.Errorf("String() = %q", c.String())
	}
	c.Reset()
	if c.Elapsed() != 0 || c.Ops() != 0 || c.Bytes() != 0 {
		t.Error("reset incomplete")
	}
}

func TestPresetsSanity(t *testing.T) {
	hdd, ssd := HDD(), SSD()
	if hdd.Name != "hdd" || ssd.Name != "ssd" {
		t.Error("preset names wrong")
	}
	if hdd.Latency <= ssd.Latency {
		t.Error("HDD latency must exceed SSD latency")
	}
	if hdd.Bandwidth >= ssd.Bandwidth {
		t.Error("HDD bandwidth must be below SSD bandwidth")
	}
}
