package iosim

// Chaos extends the priced-device model from "how long does healthy
// I/O take" to "what does unhealthy I/O do". The loopback remote
// object server consults one Chaos per request and applies the fault
// it dictates: drop the connection, stall before serving, truncate the
// body mid-flight, answer 503, flip a byte of the payload, or — while
// partitioned — refuse everything. Decisions come from a seeded PRNG
// plus a request-ordinal flap schedule, so a chaos soak replays the
// same fault mix for a given seed without any wall-clock coupling.

import (
	"math/rand"
	"sync"
	"time"
)

// Fault is one injected network failure mode.
type Fault int

const (
	// FaultNone serves the request normally.
	FaultNone Fault = iota
	// FaultDrop closes the connection before any response bytes.
	FaultDrop
	// FaultStall sleeps before serving (to trip client deadlines and
	// reward hedged reads).
	FaultStall
	// FaultTruncate sends roughly half the response body, then drops
	// the connection (GET only; write paths degrade it to FaultDrop).
	FaultTruncate
	// FaultError answers 503 Service Unavailable.
	FaultError
	// FaultCorrupt flips one byte of the response body (GET only —
	// stored objects are never mutated; write paths degrade it to
	// FaultDrop).
	FaultCorrupt
)

// String labels the fault for logs and test output.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultStall:
		return "stall"
	case FaultTruncate:
		return "truncate"
	case FaultError:
		return "5xx"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// ChaosConfig parameterises a Chaos policy. Probabilities are per
// request and evaluated in order (drop, stall, truncate, error,
// corrupt) against one uniform draw, so they must sum to <= 1.
type ChaosConfig struct {
	// Seed fixes the PRNG (same seed + same request order = same
	// fault sequence).
	Seed int64
	// DropProb, StallProb, TruncateProb, ErrorProb and CorruptProb
	// weight the fault kinds.
	DropProb, StallProb, TruncateProb, ErrorProb, CorruptProb float64
	// Stall is how long a FaultStall sleeps (default 5ms).
	Stall time.Duration
	// PartitionEvery/PartitionFor define a request-ordinal flap
	// schedule: after every PartitionEvery healthy-eligible requests,
	// the next PartitionFor requests are dropped wholesale (a full
	// partition), repeating. Zero disables the schedule; SetPartition
	// still forces partitions manually either way.
	PartitionEvery, PartitionFor int
	// MaxFaults caps the total number of injected faults (partitions
	// excluded); 0 means unlimited. Lets a soak guarantee forward
	// progress regardless of the probabilities.
	MaxFaults int64
}

// ChaosStats counts what was injected.
type ChaosStats struct {
	Requests    int64
	Drops       int64
	Stalls      int64
	Truncations int64
	Errors      int64
	Corruptions int64
	// Partitioned counts requests refused while a partition (manual or
	// scheduled) was in effect.
	Partitioned int64
}

// Chaos decides one fault per request. Safe for concurrent use; the
// decision sequence is deterministic in request order for a fixed
// seed.
type Chaos struct {
	mu       sync.Mutex
	cfg      ChaosConfig
	rng      *rand.Rand
	manual   bool // manual partition toggle (SetPartition)
	disabled bool
	faults   int64
	stats    ChaosStats
}

// NewChaos builds a chaos policy from cfg.
func NewChaos(cfg ChaosConfig) *Chaos {
	if cfg.Stall <= 0 {
		cfg.Stall = 5 * time.Millisecond
	}
	return &Chaos{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// SetPartition forces (or lifts) a full partition: while set, every
// request is refused regardless of the probabilities or schedule.
func (c *Chaos) SetPartition(on bool) {
	c.mu.Lock()
	c.manual = on
	c.mu.Unlock()
}

// Partitioned reports whether a manual partition is in force.
func (c *Chaos) Partitioned() bool {
	c.mu.Lock()
	on := c.manual
	c.mu.Unlock()
	return on
}

// Disable pauses injection: all subsequent requests are served
// normally (setup traffic, or the soak's recovery phase). It also
// lifts a manual partition. Enable re-arms.
func (c *Chaos) Disable() {
	c.mu.Lock()
	c.disabled = true
	c.manual = false
	c.mu.Unlock()
}

// Enable (re-)arms injection after a Disable.
func (c *Chaos) Enable() {
	c.mu.Lock()
	c.disabled = false
	c.mu.Unlock()
}

// Stats snapshots the injection counters.
func (c *Chaos) Stats() ChaosStats {
	c.mu.Lock()
	s := c.stats
	c.mu.Unlock()
	return s
}

// Next decides the fault for one request, returning the stall duration
// alongside (meaningful for FaultStall). FaultDrop doubles as the
// partition verdict.
func (c *Chaos) Next() (Fault, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stats.Requests++
	if c.disabled {
		return FaultNone, 0
	}
	if c.manual || c.scheduledPartition() {
		c.stats.Partitioned++
		return FaultDrop, 0
	}
	if c.cfg.MaxFaults > 0 && c.faults >= c.cfg.MaxFaults {
		return FaultNone, 0
	}
	r := c.rng.Float64()
	for _, fp := range []struct {
		f Fault
		p float64
	}{
		{FaultDrop, c.cfg.DropProb},
		{FaultStall, c.cfg.StallProb},
		{FaultTruncate, c.cfg.TruncateProb},
		{FaultError, c.cfg.ErrorProb},
		{FaultCorrupt, c.cfg.CorruptProb},
	} {
		if r < fp.p {
			c.faults++
			switch fp.f {
			case FaultDrop:
				c.stats.Drops++
			case FaultStall:
				c.stats.Stalls++
			case FaultTruncate:
				c.stats.Truncations++
			case FaultError:
				c.stats.Errors++
			case FaultCorrupt:
				c.stats.Corruptions++
			}
			return fp.f, c.cfg.Stall
		}
		r -= fp.p
	}
	return FaultNone, 0
}

// scheduledPartition evaluates the request-ordinal flap schedule.
// Called with mu held; the ordinal is the 1-based count of requests
// seen so far (this one included).
func (c *Chaos) scheduledPartition() bool {
	e, f := c.cfg.PartitionEvery, c.cfg.PartitionFor
	if e <= 0 || f <= 0 {
		return false
	}
	phase := (c.stats.Requests - 1) % int64(e+f)
	return phase >= int64(e)
}
