package iosim

import (
	"testing"
	"time"
)

func TestChaosPartitionSchedule(t *testing.T) {
	// Every=3, For=2: requests 1-3 healthy, 4-5 partitioned, repeating.
	c := NewChaos(ChaosConfig{PartitionEvery: 3, PartitionFor: 2})
	var got []bool
	for i := 0; i < 10; i++ {
		f, _ := c.Next()
		got = append(got, f == FaultDrop)
	}
	want := []bool{false, false, false, true, true, false, false, false, true, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("request %d partitioned=%v, want %v (schedule %v)", i+1, got[i], want[i], got)
		}
	}
	if s := c.Stats(); s.Partitioned != 4 || s.Requests != 10 {
		t.Errorf("stats = %+v, want 4 partitioned of 10", s)
	}
}

func TestChaosManualPartition(t *testing.T) {
	c := NewChaos(ChaosConfig{})
	if f, _ := c.Next(); f != FaultNone {
		t.Fatalf("zero-probability chaos injected %v", f)
	}
	c.SetPartition(true)
	if !c.Partitioned() {
		t.Fatal("Partitioned() false after SetPartition(true)")
	}
	for i := 0; i < 3; i++ {
		if f, _ := c.Next(); f != FaultDrop {
			t.Fatalf("request %d during partition = %v, want drop", i, f)
		}
	}
	c.SetPartition(false)
	if f, _ := c.Next(); f != FaultNone {
		t.Fatalf("request after partition lifted = %v, want none", f)
	}
	if s := c.Stats(); s.Partitioned != 3 {
		t.Errorf("Partitioned = %d, want 3", s.Partitioned)
	}
}

func TestChaosDisableEnable(t *testing.T) {
	c := NewChaos(ChaosConfig{DropProb: 1})
	if f, _ := c.Next(); f != FaultDrop {
		t.Fatal("DropProb=1 did not drop")
	}
	c.SetPartition(true)
	c.Disable() // pauses injection AND lifts the manual partition
	if c.Partitioned() {
		t.Error("Disable did not lift the manual partition")
	}
	for i := 0; i < 3; i++ {
		if f, _ := c.Next(); f != FaultNone {
			t.Fatalf("disabled chaos injected %v", f)
		}
	}
	c.Enable()
	if f, _ := c.Next(); f != FaultDrop {
		t.Fatal("Enable did not re-arm injection")
	}
}

func TestChaosMaxFaultsCap(t *testing.T) {
	c := NewChaos(ChaosConfig{DropProb: 1, MaxFaults: 3})
	drops := 0
	for i := 0; i < 10; i++ {
		if f, _ := c.Next(); f == FaultDrop {
			drops++
		}
	}
	if drops != 3 {
		t.Errorf("injected %d faults, MaxFaults=3", drops)
	}
	// Partitions are not subject to the cap.
	c.SetPartition(true)
	if f, _ := c.Next(); f != FaultDrop {
		t.Error("partition suppressed by MaxFaults")
	}
}

func TestChaosStallDuration(t *testing.T) {
	c := NewChaos(ChaosConfig{StallProb: 1, Stall: 123 * time.Millisecond})
	f, d := c.Next()
	if f != FaultStall || d != 123*time.Millisecond {
		t.Errorf("Next() = (%v, %v), want stall of 123ms", f, d)
	}
	// The default stall is non-zero so FaultStall always means a delay.
	c2 := NewChaos(ChaosConfig{StallProb: 1})
	if _, d := c2.Next(); d <= 0 {
		t.Errorf("default stall = %v, want > 0", d)
	}
}

func TestChaosProbabilityOrder(t *testing.T) {
	// The fault kinds partition one uniform draw; with probabilities
	// summing to 1 every request yields a fault, with the observed mix
	// deterministic per seed.
	c := NewChaos(ChaosConfig{
		Seed: 17, DropProb: 0.2, StallProb: 0.2, TruncateProb: 0.2,
		ErrorProb: 0.2, CorruptProb: 0.2, Stall: time.Nanosecond,
	})
	for i := 0; i < 200; i++ {
		if f, _ := c.Next(); f == FaultNone {
			t.Fatalf("request %d uninjected with probabilities summing to 1", i)
		}
	}
	s := c.Stats()
	total := s.Drops + s.Stalls + s.Truncations + s.Errors + s.Corruptions
	if total != 200 {
		t.Errorf("fault counters sum to %d, want 200: %+v", total, s)
	}
	for name, n := range map[string]int64{
		"drops": s.Drops, "stalls": s.Stalls, "truncations": s.Truncations,
		"errors": s.Errors, "corruptions": s.Corruptions,
	} {
		if n == 0 {
			t.Errorf("no %s in 200 requests at p=0.2 each", name)
		}
	}
}
