package ooc

import (
	"testing"
)

func TestCrashStoreFiresBeforeOp(t *testing.T) {
	inner := NewMemStore(4, 3)
	cs := NewCrashStore(inner, 3)
	fired := int64(0)
	cs.SetExit(func(ops int64) { fired = ops })
	buf := []float64{1, 2, 3}
	if err := cs.WriteVector(0, buf); err != nil { // op 1
		t.Fatal(err)
	}
	if err := cs.ReadVector(0, buf); err != nil { // op 2
		t.Fatal(err)
	}
	if fired != 0 {
		t.Fatalf("crashpoint fired early at op %d", fired)
	}
	// Op 3 is the crashpoint: the substitute exit records it, and
	// because the kill fires BEFORE the operation, the write still goes
	// through afterwards only because the test exit does not terminate.
	if err := cs.WriteVector(1, buf); err != nil {
		t.Fatal(err)
	}
	if fired != 3 {
		t.Fatalf("crashpoint fired at op %d, want 3", fired)
	}
	if cs.Ops() != 3 {
		t.Errorf("Ops() = %d, want 3", cs.Ops())
	}
}

func TestCrashStoreDisabled(t *testing.T) {
	cs := NewCrashStore(NewMemStore(2, 2), 0)
	cs.SetExit(func(int64) { t.Fatal("disabled crashpoint fired") })
	buf := []float64{1, 2}
	for i := 0; i < 10; i++ {
		if err := cs.WriteVector(0, buf); err != nil {
			t.Fatal(err)
		}
	}
	if cs.Ops() != 0 {
		t.Errorf("disabled CrashStore counted %d ops, want 0", cs.Ops())
	}
}

func TestCrashPointDeterministicAndDoubling(t *testing.T) {
	a := CrashPoint(7, 0, 500, 200)
	b := CrashPoint(7, 0, 500, 200)
	if a != b {
		t.Fatalf("same seed/cycle differ: %d vs %d", a, b)
	}
	if a < 500 || a >= 700 {
		t.Errorf("cycle 0 point %d outside [500, 700)", a)
	}
	// The base doubles per cycle so later kills land deeper into the run.
	for cycle := 1; cycle < 5; cycle++ {
		p := CrashPoint(7, cycle, 500, 200)
		base := int64(500) << uint(cycle)
		if p < base || p >= base+200 {
			t.Errorf("cycle %d point %d outside [%d, %d)", cycle, p, base, base+200)
		}
	}
	if CrashPoint(7, 1, 500, 200) == CrashPoint(8, 1, 500, 200) {
		t.Error("different seeds produced identical jitter")
	}
	// base <= 0 falls back to the default 500.
	if p := CrashPoint(1, 0, 0, 0); p != 500 {
		t.Errorf("default base point = %d, want 500", p)
	}
}

func TestCrashStoreUnderManager(t *testing.T) {
	// A crashpoint wrapped under a live manager fires at a deterministic
	// manager-level I/O count.
	n, vl := 10, 4
	inner := NewMemStore(n, vl)
	cs := NewCrashStore(inner, 5)
	var fired int64
	cs.SetExit(func(ops int64) { fired = ops })
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3,
		Strategy: NewLRU(n), Store: cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for vi := 0; vi < n; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	if fired != 5 {
		t.Errorf("crashpoint fired at %d, want 5", fired)
	}
}
