package ooc

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a Breaker through cooldowns without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(threshold, probes int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{
		Threshold: threshold,
		Cooldown:  cooldown,
		Probes:    probes,
		Now:       clk.now,
	}), clk
}

func TestBreakerTripsAtThreshold(t *testing.T) {
	b, _ := testBreaker(3, 1, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Failure()
		if b.State() != BreakerClosed {
			t.Fatalf("opened after only %d failures (threshold 3)", i+1)
		}
	}
	// A success resets the consecutive-failure count.
	if !b.Allow() {
		t.Fatal("closed breaker refused request")
	}
	b.Success()
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
	b.Allow()
	b.Failure() // third consecutive failure
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after threshold failures = %v, want open", st)
	}
	if s := b.Stats(); s.Opens != 1 {
		t.Errorf("Opens = %d, want 1", s.Opens)
	}
}

func TestBreakerShortCircuitsWhileOpen(t *testing.T) {
	b, clk := testBreaker(1, 1, time.Second)
	b.Allow()
	b.Failure()
	for i := 0; i < 4; i++ {
		if b.Allow() {
			t.Fatalf("open breaker admitted request %d before cooldown", i)
		}
	}
	if s := b.Stats(); s.ShortCircuits != 4 {
		t.Errorf("ShortCircuits = %d, want 4", s.ShortCircuits)
	}
	// State() reports half-open (probe-eligible) once the cooldown has
	// elapsed, before any Allow call.
	clk.advance(time.Second)
	if st := b.State(); st != BreakerHalfOpen {
		t.Errorf("state after cooldown = %v, want half-open", st)
	}
}

func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b, clk := testBreaker(1, 1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// While the probe is in flight, no second request may pass.
	if b.Allow() {
		t.Fatal("second concurrent probe admitted")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused request after recovery")
	}
	b.Success()
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	b, clk := testBreaker(1, 1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	b.Allow()
	b.Failure() // probe fails: reopen and restart the cooldown
	if st := b.State(); st != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", st)
	}
	if b.Allow() {
		t.Fatal("reopened breaker admitted a request before the new cooldown")
	}
	if s := b.Stats(); s.Opens != 2 {
		t.Errorf("Opens = %d, want 2 (trip + reprobe failure)", s.Opens)
	}
}

func TestBreakerMultiProbeClose(t *testing.T) {
	b, clk := testBreaker(1, 3, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("probe %d refused", i)
		}
		b.Success()
		if st := b.State(); st != BreakerHalfOpen {
			t.Fatalf("closed after only %d probe successes (want 3)", i+1)
		}
	}
	if !b.Allow() {
		t.Fatal("third probe refused")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state after 3 probe successes = %v, want closed", st)
	}
}

func TestBreakerCancelledReleasesProbeSlot(t *testing.T) {
	b, clk := testBreaker(1, 1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	// Caller's context ended mid-probe: the outcome says nothing about
	// the backend, so the slot frees without a state change.
	b.Cancelled()
	if st := b.State(); st != BreakerHalfOpen {
		t.Fatalf("state after cancelled probe = %v, want half-open", st)
	}
	if !b.Allow() {
		t.Fatal("probe slot not released by Cancelled")
	}
	b.Success()
	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state = %v, want closed", st)
	}
}

func TestBreakerOnTransition(t *testing.T) {
	b, clk := testBreaker(2, 1, time.Second)
	var mu sync.Mutex
	var seq []string
	b.OnTransition(func(from, to BreakerState) {
		mu.Lock()
		seq = append(seq, fmt.Sprintf("%v->%v", from, to))
		mu.Unlock()
	})
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure() // closed -> open
	clk.advance(time.Second)
	b.Allow() // open -> half-open
	b.Success() // half-open -> closed
	want := []string{"closed->open", "open->half-open", "half-open->closed"}
	mu.Lock()
	defer mu.Unlock()
	if len(seq) != len(want) {
		t.Fatalf("transitions = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Errorf("transition %d = %q, want %q", i, seq[i], want[i])
		}
	}
}

func TestErrCircuitOpenIsNotTransient(t *testing.T) {
	// Retrying against an open breaker would just spin; the error must
	// route callers to degraded mode instead of the retry loop.
	err := fmt.Errorf("ooc: remote read [0,1): %w", ErrCircuitOpen)
	if !IsCircuitOpen(err) {
		t.Error("wrapped ErrCircuitOpen not detected")
	}
	if IsTransient(err) {
		t.Error("ErrCircuitOpen must not be transient")
	}
}

func TestVectorReadError(t *testing.T) {
	inner := fmt.Errorf("remote read: %w", ErrTransientIO)
	err := error(&VectorReadError{Vi: 7, Err: inner})
	var fe interface{ FailedVector() int }
	if !errors.As(err, &fe) || fe.FailedVector() != 7 {
		t.Fatalf("FailedVector not exposed: %v", err)
	}
	if !IsTransient(err) {
		t.Error("VectorReadError must unwrap to its cause")
	}
}
