// Package ooc implements the paper's contribution: an out-of-core
// (external-memory) manager for ancestral probability vectors. All n
// vectors live in a backing Store (a single binary file in the paper,
// §3.2); only m = f·n RAM slots are allocated, each exactly one vector
// wide — the vector is the logical page, so every transfer is a large
// contiguous I/O far above the hardware block size (§3.1). Every vector
// access goes through Manager.Vector, the analogue of RAxML's
// getxvector(): it transparently swaps vectors between slots and the
// store under a pluggable replacement strategy (Random, LRU, LFU,
// Topological — §3.3), honours per-call pins so the vectors feeding the
// current likelihood operation are never evicted, and skips the
// swap-in read when the caller declares write-only first use ("read
// skipping", §3.4).
package ooc

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
	"time"
	"unsafe"

	"oocphylo/internal/iosim"
)

// Store is the backing storage for ancestral vectors: vector vi
// occupies the fixed region [vi*vecLen, (vi+1)*vecLen) in float64 units
// (the paper's single binary file with per-node offsets).
//
// Every Store in this package is safe for concurrent calls that touch
// distinct vectors (and for concurrent reads of the same vector) — the
// contract the asynchronous pipeline relies on. Callers must not issue
// concurrent writes (or a write racing a read) on the SAME vector; the
// pipeline's single FIFO writer and read-after-write queue guarantee
// it never does.
type Store interface {
	// ReadVector fills dst with vector vi's stored payload.
	ReadVector(vi int, dst []float64) error
	// WriteVector persists src as vector vi's payload.
	WriteVector(vi int, src []float64) error
	// Close releases resources.
	Close() error
}

// hostLittleEndian reports whether the host stores multi-byte values
// little-endian, in which case the file codec below is a zero-copy
// reinterpretation instead of a per-element conversion loop.
var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// f64Bytes reinterprets v's backing array as bytes without copying.
// Only valid as an I/O buffer on little-endian hosts (the on-disk
// format is little-endian regardless of host order).
func f64Bytes(v []float64) []byte {
	if len(v) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&v[0])), len(v)*8)
}

// MemStore is an in-RAM Store used by tests and by simulations where
// only the I/O accounting, not real disk traffic, matters.
type MemStore struct {
	vecLen int
	data   [][]float64
}

// NewMemStore creates an in-memory store for numVectors vectors.
func NewMemStore(numVectors, vecLen int) *MemStore {
	s := &MemStore{vecLen: vecLen, data: make([][]float64, numVectors)}
	return s
}

// ReadVector implements Store. Never-written vectors read as zeros,
// like a freshly created binary file.
func (s *MemStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= len(s.data) {
		return fmt.Errorf("ooc: memstore read out of range: %d", vi)
	}
	if len(dst) != s.vecLen {
		return fmt.Errorf("ooc: memstore read size %d, want %d", len(dst), s.vecLen)
	}
	if s.data[vi] == nil {
		for i := range dst {
			dst[i] = 0
		}
		return nil
	}
	copy(dst, s.data[vi])
	return nil
}

// WriteVector implements Store.
func (s *MemStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= len(s.data) {
		return fmt.Errorf("ooc: memstore write out of range: %d", vi)
	}
	if len(src) != s.vecLen {
		return fmt.Errorf("ooc: memstore write size %d, want %d", len(src), s.vecLen)
	}
	if s.data[vi] == nil {
		s.data[vi] = make([]float64, s.vecLen)
	}
	copy(s.data[vi], src)
	return nil
}

// Close implements Store.
func (s *MemStore) Close() error { return nil }

// ReadRange implements RangeStore as a straight copy loop (RAM has no
// per-request cost worth batching, but the adapter lets a MemStore
// stand in for any ranged backend in tests).
func (s *MemStore) ReadRange(ctx context.Context, vi, count int, dst []float64) error {
	if err := checkRange(len(s.data), s.vecLen, vi, count, len(dst), "read"); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		if err := s.ReadVector(vi+i, dst[i*s.vecLen:(i+1)*s.vecLen]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRange implements RangeStore.
func (s *MemStore) WriteRange(ctx context.Context, vi, count int, src []float64) error {
	if err := checkRange(len(s.data), s.vecLen, vi, count, len(src), "write"); err != nil {
		return err
	}
	for i := 0; i < count; i++ {
		if err := s.WriteVector(vi+i, src[i*s.vecLen:(i+1)*s.vecLen]); err != nil {
			return err
		}
	}
	return nil
}

// FileStore keeps all vectors contiguously in one binary file — the
// layout of the paper's proof-of-concept implementation (Figure 1).
// Positioned reads and writes (pread/pwrite) plus per-call codec
// buffers make it safe for concurrent calls on distinct vectors, as
// the async pipeline requires.
type FileStore struct {
	f      *os.File
	vecLen int
	n      int
	// codecs pools conversion buffers for the big-endian fallback path;
	// unused (and unallocated) on little-endian hosts, where the
	// float64 slice itself is the I/O buffer.
	codecs sync.Pool
}

// NewFileStore creates (truncating) a backing file sized for numVectors
// vectors of vecLen float64s each.
func NewFileStore(path string, numVectors, vecLen int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: creating backing file: %w", err)
	}
	if err := f.Truncate(int64(numVectors) * int64(vecLen) * 8); err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: sizing backing file: %w", err)
	}
	s := &FileStore{f: f, vecLen: vecLen, n: numVectors}
	s.codecs.New = func() any {
		b := make([]byte, vecLen*8)
		return &b
	}
	return s, nil
}

// OpenFileStore opens an existing backing file without truncating it,
// validating that its size matches the expected geometry. Used when a
// resumed run wants to keep (and verify) the previous run's vectors.
func OpenFileStore(path string, numVectors, vecLen int) (*FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: opening backing file: %w", err)
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: sizing backing file: %w", err)
	}
	want := int64(numVectors) * int64(vecLen) * 8
	if info.Size() != want {
		f.Close()
		return nil, fmt.Errorf("ooc: backing file %s is %d bytes, geometry needs %d", path, info.Size(), want)
	}
	s := &FileStore{f: f, vecLen: vecLen, n: numVectors}
	s.codecs.New = func() any {
		b := make([]byte, vecLen*8)
		return &b
	}
	return s, nil
}

// ReadVector implements Store via a single positioned read.
func (s *FileStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: filestore read out of range: %d", vi)
	}
	if len(dst) != s.vecLen {
		return fmt.Errorf("ooc: filestore read size %d, want %d", len(dst), s.vecLen)
	}
	off := int64(vi) * int64(s.vecLen) * 8
	if hostLittleEndian {
		// Host order matches the on-disk format: read straight into the
		// caller's float64 buffer, no conversion pass.
		if _, err := s.f.ReadAt(f64Bytes(dst), off); err != nil {
			return fmt.Errorf("ooc: reading vector %d: %w", vi, err)
		}
		return nil
	}
	bp := s.codecs.Get().(*[]byte)
	defer s.codecs.Put(bp)
	buf := *bp
	if _, err := s.f.ReadAt(buf, off); err != nil {
		return fmt.Errorf("ooc: reading vector %d: %w", vi, err)
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// WriteVector implements Store via a single positioned write.
func (s *FileStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: filestore write out of range: %d", vi)
	}
	if len(src) != s.vecLen {
		return fmt.Errorf("ooc: filestore write size %d, want %d", len(src), s.vecLen)
	}
	off := int64(vi) * int64(s.vecLen) * 8
	if hostLittleEndian {
		if _, err := s.f.WriteAt(f64Bytes(src), off); err != nil {
			return fmt.Errorf("ooc: writing vector %d: %w", vi, err)
		}
		return nil
	}
	bp := s.codecs.Get().(*[]byte)
	defer s.codecs.Put(bp)
	buf := *bp
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	if _, err := s.f.WriteAt(buf, off); err != nil {
		return fmt.Errorf("ooc: writing vector %d: %w", vi, err)
	}
	return nil
}

// Close implements Store.
func (s *FileStore) Close() error { return s.f.Close() }

// Sync forces written vectors to stable storage (fsync). Manager.Flush
// calls it when Config.SyncWrites is set; without it a write-back that
// only reached the page cache can be lost on power failure, voiding
// the cache tier's crash-safety claim.
func (s *FileStore) Sync() error { return s.f.Sync() }

// ReadRange implements RangeStore: one positioned read covers all
// count vectors, since the file layout is already contiguous.
func (s *FileStore) ReadRange(ctx context.Context, vi, count int, dst []float64) error {
	if err := checkRange(s.n, s.vecLen, vi, count, len(dst), "read"); err != nil {
		return err
	}
	off := int64(vi) * int64(s.vecLen) * 8
	if hostLittleEndian {
		if _, err := s.f.ReadAt(f64Bytes(dst), off); err != nil {
			return fmt.Errorf("ooc: reading vectors [%d,%d): %w", vi, vi+count, err)
		}
		return nil
	}
	for i := 0; i < count; i++ {
		if err := s.ReadVector(vi+i, dst[i*s.vecLen:(i+1)*s.vecLen]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRange implements RangeStore via one positioned write.
func (s *FileStore) WriteRange(ctx context.Context, vi, count int, src []float64) error {
	if err := checkRange(s.n, s.vecLen, vi, count, len(src), "write"); err != nil {
		return err
	}
	off := int64(vi) * int64(s.vecLen) * 8
	if hostLittleEndian {
		if _, err := s.f.WriteAt(f64Bytes(src), off); err != nil {
			return fmt.Errorf("ooc: writing vectors [%d,%d): %w", vi, vi+count, err)
		}
		return nil
	}
	for i := 0; i < count; i++ {
		if err := s.WriteVector(vi+i, src[i*s.vecLen:(i+1)*s.vecLen]); err != nil {
			return err
		}
	}
	return nil
}

// SimStore wraps a Store and charges every transfer to a simulated
// device clock. It is how the benchmark harness prices out-of-core I/O
// without moving real gigabytes. With Realtime > 0 each transfer also
// sleeps Realtime × the device's transfer time, so wall-clock
// experiments (BenchmarkAsyncPipeline) observe genuine compute/I/O
// overlap instead of mere ledger entries.
type SimStore struct {
	Inner  Store
	Device iosim.Device
	Clock  *iosim.Clock
	// Realtime scales simulated transfer time into real sleeping:
	// 0 (default) only charges the clock, 1 sleeps the full simulated
	// duration, 0.1 a tenth of it.
	Realtime float64
}

// NewSimStore wraps inner with accounting on clock for device dev.
func NewSimStore(inner Store, dev iosim.Device, clock *iosim.Clock) *SimStore {
	return &SimStore{Inner: inner, Device: dev, Clock: clock}
}

func (s *SimStore) charge(bytes int64) {
	s.Clock.Charge(s.Device, bytes)
	if s.Realtime > 0 {
		time.Sleep(time.Duration(s.Realtime * float64(s.Device.TransferTime(bytes))))
	}
}

// ReadVector implements Store.
func (s *SimStore) ReadVector(vi int, dst []float64) error {
	s.charge(int64(len(dst)) * 8)
	return s.Inner.ReadVector(vi, dst)
}

// WriteVector implements Store.
func (s *SimStore) WriteVector(vi int, src []float64) error {
	s.charge(int64(len(src)) * 8)
	return s.Inner.WriteVector(vi, src)
}

// Close implements Store.
func (s *SimStore) Close() error { return s.Inner.Close() }

// Sync forwards to the inner store.
func (s *SimStore) Sync() error { return SyncStore(s.Inner) }

// FetchCost forwards to the inner store.
func (s *SimStore) FetchCost(vi int) (time.Duration, bool) { return StoreFetchCost(s.Inner, vi) }

// MemOverheadBytes forwards to the inner store.
func (s *SimStore) MemOverheadBytes() int64 { return StoreMemOverhead(s.Inner) }

// MultiFileStore spreads vectors round-robin over several backing files.
// The paper found single-file and multi-file performance to differ only
// minimally (§3.2); this implementation exists so that ablation can be
// reproduced (BenchmarkStoreLayout).
type MultiFileStore struct {
	files []*FileStore
	n     int
}

// NewMultiFileStore creates numFiles backing files named
// path.0, path.1, ... with vectors assigned round-robin.
func NewMultiFileStore(path string, numFiles, numVectors, vecLen int) (*MultiFileStore, error) {
	if numFiles < 1 {
		return nil, fmt.Errorf("ooc: need at least one file, got %d", numFiles)
	}
	m := &MultiFileStore{n: numVectors}
	for i := 0; i < numFiles; i++ {
		// File i holds vectors i, i+numFiles, i+2·numFiles, ... — size it
		// exactly rather than over-allocating a full extra vector per
		// file when the division is even.
		per := (numVectors - i + numFiles - 1) / numFiles
		fs, err := NewFileStore(fmt.Sprintf("%s.%d", path, i), per, vecLen)
		if err != nil {
			m.Close()
			return nil, err
		}
		m.files = append(m.files, fs)
	}
	return m, nil
}

// ReadVector implements Store. Errors from the per-file stores carry
// the per-file index, so they are wrapped with the global one.
func (m *MultiFileStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= m.n {
		return fmt.Errorf("ooc: multi-file store read out of range: %d", vi)
	}
	fi := vi % len(m.files)
	if err := m.files[fi].ReadVector(vi/len(m.files), dst); err != nil {
		return fmt.Errorf("ooc: multi-file store, vector %d (file %d): %w", vi, fi, err)
	}
	return nil
}

// WriteVector implements Store; see ReadVector for the error wrapping.
func (m *MultiFileStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= m.n {
		return fmt.Errorf("ooc: multi-file store write out of range: %d", vi)
	}
	fi := vi % len(m.files)
	if err := m.files[fi].WriteVector(vi/len(m.files), src); err != nil {
		return fmt.Errorf("ooc: multi-file store, vector %d (file %d): %w", vi, fi, err)
	}
	return nil
}

// Close implements Store; it closes every underlying file.
func (m *MultiFileStore) Close() error {
	var first error
	for _, f := range m.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
