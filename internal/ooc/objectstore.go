package ooc

// ObjectStore: the remote tier. A dependency-free Store/RangeStore
// client speaking the minimal HTTP ranged GET/PUT protocol served by
// internal/ooc/remote (and by anything S3-shaped fronted with a thin
// shim): one object holds all n vectors back to back, exactly the
// FileStore layout, addressed with byte ranges. Every request pays a
// network round trip, which is why the TieredStore in front of it
// coalesces adjacent vectors into single ranged requests and runs
// several lanes concurrently.
//
// URLs use the scheme remote://host:port/object — see ParseRemoteURL.

import (
	"bytes"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"oocphylo/internal/obs"
)

// IsRemoteURL reports whether s names a remote object (remote://…).
func IsRemoteURL(s string) bool { return strings.HasPrefix(s, "remote://") }

// ParseRemoteURL splits remote://host:port/object into the HTTP
// endpoint (http://host:port/o/object) it maps to.
func ParseRemoteURL(raw string) (endpoint string, err error) {
	rest, ok := strings.CutPrefix(raw, "remote://")
	if !ok {
		return "", fmt.Errorf("ooc: not a remote store URL: %q", raw)
	}
	host, object, ok := strings.Cut(rest, "/")
	if !ok || host == "" || object == "" || strings.Contains(object, "/") {
		return "", fmt.Errorf("ooc: remote store URL must be remote://host:port/object, got %q", raw)
	}
	return "http://" + host + "/o/" + object, nil
}

// ObjectStore reads and writes vectors of one remote object over HTTP
// ranged requests. Requests for distinct vector ranges may run
// concurrently (the http.Client pools connections), matching the Store
// contract. Transport and 5xx errors are wrapped with ErrTransientIO
// so the manager's RetryPolicy re-issues them.
type ObjectStore struct {
	endpoint string
	n        int
	vecLen   int
	client   *http.Client

	// latNanos is an EWMA of observed per-request latency, feeding
	// FetchCost when no tier sits in front to measure it instead.
	latNanos atomic.Int64

	// deadlineNanos bounds each request (0 = none); see SetDeadline.
	deadlineNanos atomic.Int64
}

// SetDeadline bounds every subsequent request to d (0 removes the
// bound). A stalled or partitioned backend then costs one deadline per
// attempt instead of an unbounded hang; the resulting timeout error is
// wrapped transient, so retry budgets and the circuit breaker see it
// like any other failed attempt.
func (s *ObjectStore) SetDeadline(d time.Duration) { s.deadlineNanos.Store(int64(d)) }

// defaultRemoteCost stands in for the request latency before any
// request has been observed.
const defaultRemoteCost = 5 * time.Millisecond

// NewObjectStore creates (truncating) the remote object for numVectors
// vectors of vecLen float64s and returns a store over it.
func NewObjectStore(rawURL string, numVectors, vecLen int) (*ObjectStore, error) {
	s, err := newObjectStore(rawURL, numVectors, vecLen)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodPut,
		s.endpoint+"?truncate="+strconv.FormatInt(s.size(), 10), nil)
	if err != nil {
		return nil, err
	}
	if err := s.do(req, nil); err != nil {
		return nil, fmt.Errorf("ooc: creating remote object: %w", err)
	}
	return s, nil
}

// OpenObjectStore opens an existing remote object, validating that its
// size matches the expected geometry (the FileStore resume contract).
func OpenObjectStore(rawURL string, numVectors, vecLen int) (*ObjectStore, error) {
	s, err := newObjectStore(rawURL, numVectors, vecLen)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequest(http.MethodHead, s.endpoint, nil)
	if err != nil {
		return nil, err
	}
	resp, err := s.client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("ooc: probing remote object: %w (%v)", ErrTransientIO, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("ooc: remote object %s: HTTP %d", rawURL, resp.StatusCode)
	}
	if resp.ContentLength != s.size() {
		return nil, fmt.Errorf("ooc: remote object %s is %d bytes, geometry needs %d",
			rawURL, resp.ContentLength, s.size())
	}
	return s, nil
}

func newObjectStore(rawURL string, numVectors, vecLen int) (*ObjectStore, error) {
	endpoint, err := ParseRemoteURL(rawURL)
	if err != nil {
		return nil, err
	}
	if numVectors < 1 || vecLen < 1 {
		return nil, fmt.Errorf("ooc: remote store geometry %dx%d invalid", numVectors, vecLen)
	}
	return &ObjectStore{
		endpoint: endpoint,
		n:        numVectors,
		vecLen:   vecLen,
		client:   &http.Client{},
	}, nil
}

func (s *ObjectStore) size() int64 { return int64(s.n) * int64(s.vecLen) * 8 }

// ReadVector implements Store.
func (s *ObjectStore) ReadVector(vi int, dst []float64) error {
	return s.ReadRange(nil, vi, 1, dst)
}

// WriteVector implements Store.
func (s *ObjectStore) WriteVector(vi int, src []float64) error {
	return s.WriteRange(nil, vi, 1, src)
}

// ReadRange implements RangeStore with one ranged GET.
func (s *ObjectStore) ReadRange(ctx context.Context, vi, count int, dst []float64) error {
	if err := checkRange(s.n, s.vecLen, vi, count, len(dst), "read"); err != nil {
		return err
	}
	from := int64(vi) * int64(s.vecLen) * 8
	to := from + int64(count)*int64(s.vecLen)*8 - 1
	req, cancel, err := s.newRequest(ctx, http.MethodGet, "", nil)
	if err != nil {
		return err
	}
	defer cancel()
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", from, to))
	// An active span makes this GET a traced child hop: the traceparent
	// header carries the trace into the remote store's own spans.
	if sp := obs.SpanFromContext(ctx); sp != nil {
		child := sp.StartChild("remote.get")
		child.SetAttr("vi", int64(vi))
		child.SetAttr("count", int64(count))
		child.SetAttr("bytes", int64(count)*int64(s.vecLen)*8)
		req.Header.Set("traceparent", child.Traceparent())
		defer child.End()
	}
	start := time.Now()
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("ooc: remote read [%d,%d): %w (%v)", vi, vi+count, ErrTransientIO, err)
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusPartialContent && resp.StatusCode != http.StatusOK {
		return s.httpErr("read", vi, count, resp.StatusCode)
	}
	if err := decodeVectors(resp.Body, dst); err != nil {
		return fmt.Errorf("ooc: remote read [%d,%d): %w (%v)", vi, vi+count, ErrTransientIO, err)
	}
	s.observeLatency(time.Since(start))
	return nil
}

// WriteRange implements RangeStore with one ranged PUT.
func (s *ObjectStore) WriteRange(ctx context.Context, vi, count int, src []float64) error {
	if err := checkRange(s.n, s.vecLen, vi, count, len(src), "write"); err != nil {
		return err
	}
	from := int64(vi) * int64(s.vecLen) * 8
	to := from + int64(count)*int64(s.vecLen)*8 - 1
	req, cancel, err := s.newRequest(ctx, http.MethodPut, "", encodeVectors(src))
	if err != nil {
		return err
	}
	defer cancel()
	req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/*", from, to))
	if sp := obs.SpanFromContext(ctx); sp != nil {
		child := sp.StartChild("remote.put")
		child.SetAttr("vi", int64(vi))
		child.SetAttr("count", int64(count))
		child.SetAttr("bytes", int64(count)*int64(s.vecLen)*8)
		req.Header.Set("traceparent", child.Traceparent())
		defer child.End()
	}
	start := time.Now()
	if err := s.do(req, func(code int) error { return s.httpErr("write", vi, count, code) }); err != nil {
		return err
	}
	s.observeLatency(time.Since(start))
	return nil
}

// Close implements Store.
func (s *ObjectStore) Close() error {
	s.client.CloseIdleConnections()
	return nil
}

// FetchCost reports the estimated cost of fetching any one vector: the
// latency EWMA observed over this store's own requests (a default
// before the first request lands). The bool is always true — every
// vector here is a network round trip away.
func (s *ObjectStore) FetchCost(vi int) (time.Duration, bool) {
	if d := time.Duration(s.latNanos.Load()); d > 0 {
		return d, true
	}
	return defaultRemoteCost, true
}

// EstLatency returns the per-request latency EWMA (0 before any
// request completes).
func (s *ObjectStore) EstLatency() time.Duration {
	return time.Duration(s.latNanos.Load())
}

func (s *ObjectStore) observeLatency(d time.Duration) {
	for {
		old := s.latNanos.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/4 // EWMA, alpha = 1/4
		}
		if s.latNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *ObjectStore) newRequest(ctx context.Context, method, query string, body io.Reader) (*http.Request, context.CancelFunc, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cancel := context.CancelFunc(func() {})
	if d := time.Duration(s.deadlineNanos.Load()); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}
	req, err := http.NewRequestWithContext(ctx, method, s.endpoint+query, body)
	if err != nil {
		cancel()
		return nil, nil, err
	}
	return req, cancel, nil
}

// do runs a request expecting a 2xx reply with no interesting body.
func (s *ObjectStore) do(req *http.Request, onHTTPErr func(code int) error) error {
	resp, err := s.client.Do(req)
	if err != nil {
		return fmt.Errorf("ooc: remote %s: %w (%v)", req.Method, ErrTransientIO, err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		if onHTTPErr != nil {
			return onHTTPErr(resp.StatusCode)
		}
		return fmt.Errorf("ooc: remote %s: HTTP %d", req.Method, resp.StatusCode)
	}
	return nil
}

// decodeVectors fills dst from r's little-endian payload. On LE hosts
// the float64 slice itself is the read buffer (no conversion pass).
func decodeVectors(r io.Reader, dst []float64) error {
	if hostLittleEndian {
		_, err := io.ReadFull(r, f64Bytes(dst))
		return err
	}
	buf := make([]byte, len(dst)*8)
	if _, err := io.ReadFull(r, buf); err != nil {
		return err
	}
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[i*8:]))
	}
	return nil
}

// encodeVectors returns a reader over src's little-endian bytes. On LE
// hosts the returned reader aliases src, which the Store contract makes
// safe: no writer mutates a vector while its write is in flight.
func encodeVectors(src []float64) io.Reader {
	if hostLittleEndian {
		return bytes.NewReader(f64Bytes(src))
	}
	buf := make([]byte, len(src)*8)
	for i, v := range src {
		binary.LittleEndian.PutUint64(buf[i*8:], math.Float64bits(v))
	}
	return bytes.NewReader(buf)
}

// httpErr classifies an HTTP error status: 5xx are transient (the
// retry policy re-issues them), 4xx are protocol/geometry bugs and
// fail fast.
func (s *ObjectStore) httpErr(op string, vi, count, code int) error {
	if code >= 500 {
		return fmt.Errorf("ooc: remote %s [%d,%d): %w (HTTP %d)", op, vi, vi+count, ErrTransientIO, code)
	}
	return fmt.Errorf("ooc: remote %s [%d,%d): HTTP %d", op, vi, vi+count, code)
}
