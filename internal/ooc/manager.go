package ooc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oocphylo/internal/obs"
)

// MinSlots is the paper's hard floor on resident vectors: computing one
// ancestral vector needs it and its two children in RAM simultaneously
// (§3.2, "we must ensure that m >= 3").
const MinSlots = 3

// WriteBackPolicy controls when an evicted vector is written to the
// backing store.
type WriteBackPolicy int

const (
	// WriteBackAlways writes every evicted vector — the paper's swap
	// semantics (evict = write old + read new).
	WriteBackAlways WriteBackPolicy = iota
	// WriteBackDirty writes only vectors modified since they were
	// faulted in. Not in the paper; implemented as the natural
	// extension ablated in the benchmarks.
	WriteBackDirty
)

// Stats holds the manager's access counters — the quantities plotted in
// the paper's Figures 2-4.
type Stats struct {
	// Requests counts getxvector-style accesses.
	Requests int64
	// Hits counts accesses satisfied from a RAM slot.
	Hits int64
	// Misses counts accesses that required a swap.
	Misses int64
	// Reads counts vectors actually read from the store (Misses minus
	// the reads that read skipping eliminated).
	Reads int64
	// SkippedReads counts swap-ins whose read was elided (§3.4).
	SkippedReads int64
	// Writes counts vectors written back to the store.
	Writes int64
	// SkippedWrites counts evictions elided by WriteBackDirty.
	SkippedWrites int64
	// BytesRead and BytesWritten total the store traffic.
	BytesRead, BytesWritten int64
}

// MissRate returns Misses/Requests (Figure 2's y axis).
func (s Stats) MissRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Requests)
}

// ReadRate returns Reads/Requests (Figure 3's y axis). Without read
// skipping it equals MissRate.
func (s Stats) ReadRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Requests)
}

// Config configures a Manager.
type Config struct {
	// NumVectors is n, the total ancestral vector count.
	NumVectors int
	// VectorLen is the per-vector payload length in float64s (the
	// paper's slot width w, in doubles).
	VectorLen int
	// Slots is m, the number of RAM slots. Values above NumVectors are
	// capped (f = 1 holds everything in RAM); values below MinSlots
	// (when NumVectors allows) are rejected.
	Slots int
	// Strategy is the replacement policy; required.
	Strategy Strategy
	// ReadSkipping enables §3.4's write-intent read elision.
	ReadSkipping bool
	// WriteBack selects the eviction write policy.
	WriteBack WriteBackPolicy
	// Store is the backing storage; required.
	Store Store

	// Async enables the background I/O pipeline (see pipeline.go):
	// prefetches are serviced by worker goroutines and evictions hand
	// their victim buffer to a write-back goroutine instead of
	// blocking. Results are bit-identical to the synchronous manager;
	// only the overlap of I/O with compute changes. The Store must be
	// safe for concurrent use on distinct vectors (all stores in this
	// package are). Close the manager to drain the pipeline.
	Async bool
	// IOWorkers is the number of background fetch goroutines servicing
	// the prefetch queue (default 2). Only used when Async is set.
	IOWorkers int
	// FetchQueue bounds the number of prefetches waiting for a worker
	// (default 2*IOWorkers). Prefetch blocks when the queue is full.
	FetchQueue int
	// WriteBuffers is the number of spare slot buffers backing
	// asynchronous write-back (default 2). An eviction blocks only when
	// all spares are already in the write queue. Each buffer costs
	// VectorLen float64s on top of the Slots budget.
	WriteBuffers int

	// Retry governs re-issuing store operations that fail with a
	// transient error (ErrTransientIO) — capped exponential backoff on
	// the synchronous demand path and in the async pipeline workers
	// alike. The zero value disables retries.
	Retry RetryPolicy

	// SyncWrites asks Flush to also push the backing store's own
	// buffers to stable storage (fsync for a FileStore, a full
	// write-back drain for a TieredStore) before returning. Checkpoint
	// and park paths set this so "flushed" means "durable", not merely
	// "handed to the store".
	SyncWrites bool
}

// SlotsForFraction returns m = max(MinSlots, round(f*n)) capped at n —
// the paper's parameterisation of available RAM.
func SlotsForFraction(f float64, n int) int {
	m := int(f*float64(n) + 0.5)
	if m < MinSlots {
		m = MinSlots
	}
	if m > n {
		m = n
	}
	return m
}

// Manager is the out-of-core ancestral-vector manager: it implements
// the plf.VectorProvider contract over a bounded set of RAM slots and a
// backing Store. Vector/Prefetch/Flush/Close must come from a single
// caller (as the likelihood engine guarantees); with Config.Async the
// manager runs I/O goroutines internally, but all bookkeeping still
// happens on the single calling goroutine. The stats snapshots
// (Stats/PrefetchStats/PipelineStats) MAY be read from any goroutine —
// the debug endpoint samples them mid-run — so every public method
// takes the stats mutex, making each counter group a consistent
// snapshot rather than a torn read.
type Manager struct {
	cfg Config

	// mu serialises the public API against concurrent stats snapshots.
	// The compute path holds it for the duration of each operation
	// (uncontended: one futex-free lock per request, dwarfed by the
	// kernel work between requests); snapshot getters hold it briefly.
	mu sync.Mutex
	// mx holds the native observability instruments (see obs.go). The
	// zero value means uninstrumented: every obs call is a nil-check
	// no-op and no clock is read.
	mx managerObs
	// span, when set via SetSpan, is the request-scoped tracing span
	// fault-ins and evictions are emitted under (nil when untraced).
	// Guarded by mu like the rest of the demand path.
	span *obs.Span

	// slots holds the m vector-wide RAM buffers.
	slots [][]float64
	// slotItem maps slot -> resident item, -1 if empty.
	slotItem []int
	// itemSlot maps item -> slot, -1 if on "disk" (the paper's
	// itemvector: RAM address vs file offset; offsets here are implicit,
	// vector vi lives at file position vi).
	itemSlot []int
	// dirty marks slots written since fault-in (used by WriteBackDirty).
	dirty []bool
	// prefetched marks slots staged by Prefetch and not yet demanded.
	prefetched []bool
	// candidates is scratch for building the evictable set per miss.
	candidates []int
	slotOf     []int // parallel scratch: slot of each candidate

	stats  Stats
	pstats PrefetchStats
	rstats ResizeStats

	// ctx, when set via SetContext, aborts the blocking edges of the
	// I/O path (retry backoff, full fetch queue, spare-buffer waits).
	// Store operations themselves always run to completion, so
	// cancellation can never leave a torn vector on disk.
	ctx context.Context
	// closing latches once Close has been entered; Resize refuses to
	// restructure the slot pool from then on.
	closing atomic.Bool

	// pipe is the async I/O pipeline (nil when running synchronously).
	pipe *pipeline
	// inflight tracks, per slot, the background fetch still filling it.
	inflight  []*fetchReq
	pipeStats PipelineStats
	// retried counts transient-error retries; shared with the pipeline
	// workers, hence atomic.
	retried atomic.Int64
}

// ErrAllPinned is returned when a miss cannot find an evictable slot
// because every resident vector is pinned — only possible if the caller
// pins more than Slots-1 vectors, which the likelihood engine's
// three-vector working set never does under m >= MinSlots.
var ErrAllPinned = errors.New("ooc: all resident vectors are pinned; cannot evict")

// NewManager validates cfg and allocates the slot pool. Exactly
// Slots*VectorLen float64s of vector memory are allocated, enforcing
// the paper's -L style memory limitation.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.NumVectors < 0 || cfg.VectorLen <= 0 {
		return nil, fmt.Errorf("ooc: invalid geometry: %d vectors of %d", cfg.NumVectors, cfg.VectorLen)
	}
	if cfg.Store == nil {
		return nil, errors.New("ooc: Store is required")
	}
	if cfg.Strategy == nil {
		return nil, errors.New("ooc: Strategy is required")
	}
	if cfg.Slots > cfg.NumVectors {
		cfg.Slots = cfg.NumVectors
	}
	if err := validateSlots(cfg.Slots, cfg.NumVectors, 0); err != nil {
		return nil, err
	}
	m := &Manager{
		cfg:        cfg,
		slots:      make([][]float64, cfg.Slots),
		slotItem:   make([]int, cfg.Slots),
		itemSlot:   make([]int, cfg.NumVectors),
		dirty:      make([]bool, cfg.Slots),
		prefetched: make([]bool, cfg.Slots),
	}
	// One allocation per slot (not a single contiguous slab) so that
	// Resize can genuinely release memory on shrink: a dropped slot's
	// buffer becomes garbage the moment nothing references it.
	for i := range m.slots {
		m.slots[i] = make([]float64, cfg.VectorLen)
		m.slotItem[i] = -1
	}
	for i := range m.itemSlot {
		m.itemSlot[i] = -1
	}
	if cfg.Async {
		if cfg.IOWorkers < 1 {
			cfg.IOWorkers = 2
		}
		if cfg.FetchQueue < 1 {
			cfg.FetchQueue = 2 * cfg.IOWorkers
		}
		if cfg.WriteBuffers < 1 {
			cfg.WriteBuffers = 2
		}
		m.cfg = cfg
		m.pipe = newPipeline(cfg.Store, cfg.VectorLen, cfg.IOWorkers, cfg.FetchQueue, cfg.WriteBuffers, cfg.Retry, &m.retried)
		m.inflight = make([]*fetchReq, cfg.Slots)
		m.pipeStats.Enabled = true
	}
	return m, nil
}

// NumVectors implements plf.VectorProvider.
func (m *Manager) NumVectors() int { return m.cfg.NumVectors }

// VectorLen implements plf.VectorProvider.
func (m *Manager) VectorLen() int { return m.cfg.VectorLen }

// Slots returns m, the resident-vector capacity. Safe from any
// goroutine (the slot pool can change size at runtime via Resize).
func (m *Manager) Slots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.slots)
}

// SetContext attaches ctx to the manager's blocking I/O edges: retry
// backoff sleeps, waits on a full fetch queue and waits for a spare
// write-back buffer all abort with an error wrapping ctx.Err() once
// ctx is cancelled. Individual store reads/writes still run to
// completion — cancellation stops at operation boundaries, so the
// backing file never holds a torn vector — and Flush/Close remain
// usable after cancellation to persist residents for a checkpoint.
// Must be called from the single API goroutine; nil restores the
// default (never cancelled).
func (m *Manager) SetContext(ctx context.Context) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.ctx = ctx
}

// SetSpan attributes subsequent demand-path activity (fault-in,
// eviction, join-wait child spans) to the given request span; nil
// detaches. Callers set it around one request's serialized work, the
// same discipline as SetContext.
func (m *Manager) SetSpan(sp *obs.Span) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.span = sp
}

// Stats returns a copy of the access counters. Safe from any
// goroutine: the mutex guarantees the copy is not torn mid-operation.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// ResetStats zeroes the counters (the strategy state is left intact, so
// measurement windows can exclude warm-up).
func (m *Manager) ResetStats() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats = Stats{}
}

// PipelineStats returns a snapshot of the I/O pipeline counters. The
// synchronous manager fills StallTime too (demand-path store calls),
// so sync and async stall are directly comparable. Safe from any
// goroutine.
func (m *Manager) PipelineStats() PipelineStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pipelineStatsLocked()
}

// pipelineStatsLocked assembles the snapshot; callers hold m.mu.
func (m *Manager) pipelineStatsLocked() PipelineStats {
	ps := m.pipeStats
	ps.Retries = m.retried.Load()
	if m.pipe != nil {
		ps.OverlappedBytes = m.pipe.overlapped.Load()
		ps.WriteQueueHits = m.pipe.wqHits.Load()
		ps.QueueDepthMax = m.pipe.depthMax.Load()
	}
	return ps
}

// stall runs f on the compute thread and charges its duration to the
// pipeline's stall ledger — the time compute was blocked on I/O.
func (m *Manager) stall(f func() error) error {
	start := time.Now()
	err := f()
	m.pipeStats.StallTime += time.Since(start)
	return err
}

// joinSlot waits for the background fetch still filling slot s (if
// any) and returns its error. The wait is charged as stall time. A
// successful join is where a background prefetch lands in the ledgers:
// Reads/BytesRead must reflect fetches that completed, not fetches that
// were merely enqueued, so that a failed fetch leaves the counters
// exactly as a failed synchronous prefetch would.
func (m *Manager) joinSlot(s int) error {
	f := m.inflight[s]
	if f == nil {
		return nil
	}
	m.inflight[s] = nil
	start := time.Now()
	<-f.done
	wait := time.Since(start)
	m.pipeStats.StallTime += wait
	m.pipeStats.JoinWait += wait
	if f.err == nil {
		m.pstats.Reads++
		m.stats.BytesRead += int64(m.cfg.VectorLen) * 8
	}
	if m.mx.on {
		m.traceSpan(obs.OpJoinWait, f.vi, s, start, wait)
	}
	m.span.EmitChild("ooc.join_wait", start, wait, obs.Attr{Key: "vid", Int: int64(f.vi)})
	return f.err
}

// demandRead reads vi into dst on the compute thread, retrying
// transient errors per the configured policy. Under the async pipeline
// it consults the write queue first (read-after-write). A read the
// store cannot serve right now — retries exhausted on transient I/O,
// or the remote circuit open — is wrapped in a VectorReadError so the
// engine can recompute the vector instead of failing the pass.
func (m *Manager) demandRead(vi int, dst []float64) error {
	err := m.cfg.Retry.runCtx(m.ctx, &m.retried, func() error {
		if m.pipe != nil {
			return m.pipe.readThrough(vi, dst)
		}
		return m.cfg.Store.ReadVector(vi, dst)
	})
	if err != nil && (IsTransient(err) || IsCircuitOpen(err)) {
		return &VectorReadError{Vi: vi, Err: err}
	}
	return err
}

// storeWrite writes buf as vector vi on the compute thread, retrying
// transient errors per the configured policy.
func (m *Manager) storeWrite(vi int, buf []float64) error {
	return m.cfg.Retry.runCtx(m.ctx, &m.retried, func() error {
		return m.cfg.Store.WriteVector(vi, buf)
	})
}

// Resident reports whether vector vi currently occupies a RAM slot.
func (m *Manager) Resident(vi int) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return vi >= 0 && vi < len(m.itemSlot) && m.itemSlot[vi] >= 0
}

// FetchCost implements the fetch-vs-recompute oracle over the slot
// pool: a resident vector is free and local; anything else costs
// whatever the backing store estimates (zero/local for stores that do
// not track latency). The engine's recompute policy consults this to
// decide whether re-deriving a vector from its children beats paying a
// remote round trip for it.
func (m *Manager) FetchCost(vi int) (time.Duration, bool) {
	if m.Resident(vi) {
		return 0, false
	}
	return StoreFetchCost(m.cfg.Store, vi)
}

// Degraded reports whether the backing store's remote tier is
// temporarily unavailable (circuit breaker open). The engine's planner
// matches this structurally and flips to recompute-preferred while it
// holds, so passes keep completing from cache + local compute.
func (m *Manager) Degraded() bool {
	return StoreDegraded(m.cfg.Store)
}

// MemOverheadBytes reports heap the backing store holds on the
// manager's behalf — cache-tier indexes and in-flight remote buffers —
// so budget-aware callers (the Watchdog, Resize policies) can charge it
// against the same soft budget as the slot pool. Zero for plain
// file/memory stores.
func (m *Manager) MemOverheadBytes() int64 {
	return StoreMemOverhead(m.cfg.Store)
}

// Vector implements plf.VectorProvider: the paper's getxvector(). It
// returns the RAM address of vector vi, swapping it in if necessary.
// write declares that the caller overwrites the entire vector before
// reading it, enabling read skipping; pinned lists vector indices that
// must not be evicted by this call.
func (m *Manager) Vector(vi int, write bool, pinned ...int) ([]float64, error) {
	if vi < 0 || vi >= m.cfg.NumVectors {
		return nil, fmt.Errorf("ooc: vector index %d out of range [0, %d)", vi, m.cfg.NumVectors)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stats.Requests++
	m.cfg.Strategy.Touch(vi)
	if s := m.itemSlot[vi]; s >= 0 {
		joinFailed := false
		if m.pipe != nil && m.inflight[s] != nil {
			// The prefetch that staged vi is still in flight: join it
			// rather than re-reading (this wait is the residue of
			// latency the pipeline could not hide).
			m.pipeStats.JoinedFetches++
			if err := m.joinSlot(s); err != nil {
				// The background read failed; unmap so the vector is
				// not resident with garbage, mirroring a failed
				// synchronous prefetch (which leaves the slot empty).
				// A failed join must not be ledgered as a hit.
				m.itemSlot[vi] = -1
				m.slotItem[s] = -1
				m.prefetched[s] = false
				if IsCorruption(err) {
					m.pipeStats.CorruptReads++
				}
				if !write || !IsCorruption(err) {
					return nil, err
				}
				// Write-intent access to a corrupt staged copy: the
				// caller overwrites the whole payload anyway, so fall
				// through to the miss path (the slot just freed is
				// available) instead of failing the computation.
				joinFailed = true
			}
		}
		if !joinFailed {
			m.stats.Hits++
			if m.prefetched[s] {
				m.prefetched[s] = false
				m.pstats.Hits++
			}
			if write {
				m.dirty[s] = true
			}
			return m.slots[s], nil
		}
	}
	m.stats.Misses++
	var missStart time.Time
	if m.mx.on || m.span != nil {
		missStart = time.Now()
	}

	slot, err := m.freeSlot(vi, pinned)
	if err != nil {
		return nil, err
	}
	// Swap in.
	skipRead := write && m.cfg.ReadSkipping
	if skipRead {
		m.stats.SkippedReads++
	} else if err := m.stall(func() error { return m.demandRead(vi, m.slots[slot]) }); err != nil {
		if !IsCorruption(err) {
			return nil, err
		}
		m.pipeStats.CorruptReads++
		if !write {
			return nil, err
		}
		// The stored payload is corrupt, but the caller promised to
		// overwrite the entire vector before reading it: recover by
		// treating the fault-in like a skipped read instead of failing.
	} else {
		m.stats.Reads++
		m.stats.BytesRead += int64(m.cfg.VectorLen) * 8
	}
	m.slotItem[slot] = vi
	m.itemSlot[vi] = slot
	m.dirty[slot] = write
	m.prefetched[slot] = false
	if m.mx.on || m.span != nil {
		dur := time.Since(missStart)
		m.mx.faultIn.Observe(dur.Seconds())
		m.traceSpan(obs.OpFaultIn, vi, slot, missStart, dur)
		m.span.EmitChild("ooc.fault_in", missStart, dur,
			obs.Attr{Key: "vid", Int: int64(vi)}, obs.Attr{Key: "slot", Int: int64(slot)})
	}
	return m.slots[slot], nil
}

// freeSlot returns an empty slot, evicting a victim if none is free.
func (m *Manager) freeSlot(requested int, pinned []int) (int, error) {
	for s, it := range m.slotItem {
		if it < 0 {
			if m.slots[s] == nil {
				// A slot added by a grow is allocated on first use, so
				// growing the pool never pays for memory it does not need.
				m.slots[s] = make([]float64, m.cfg.VectorLen)
			}
			return s, nil
		}
	}
	victim, slot, err := m.pickVictim(requested, pinned)
	if err != nil {
		return 0, err
	}
	if err := m.evict(victim, slot); err != nil {
		return 0, err
	}
	return slot, nil
}

// pickVictim chooses an evictable resident via the replacement
// strategy: the candidate set is every resident item minus pins.
// requested is the incoming item the eviction makes room for, or -1
// when the pool itself is shrinking (Resize). Callers hold m.mu.
func (m *Manager) pickVictim(requested int, pinned []int) (victim, slot int, err error) {
	m.candidates = m.candidates[:0]
	m.slotOf = m.slotOf[:0]
	for s, it := range m.slotItem {
		if it < 0 {
			continue
		}
		isPinned := false
		for _, p := range pinned {
			if p == it {
				isPinned = true
				break
			}
		}
		if !isPinned {
			m.candidates = append(m.candidates, it)
			m.slotOf = append(m.slotOf, s)
		}
	}
	if len(m.candidates) == 0 {
		return -1, -1, ErrAllPinned
	}
	pick := m.cfg.Strategy.PickVictim(m.candidates, requested)
	if pick < 0 || pick >= len(m.candidates) {
		return -1, -1, fmt.Errorf("ooc: strategy %s picked invalid victim %d of %d",
			m.cfg.Strategy.Name(), pick, len(m.candidates))
	}
	return m.candidates[pick], m.slotOf[pick], nil
}

// evict writes the victim back (subject to the write-back policy) and
// releases its slot. Under the async pipeline the write is queued to
// the writer goroutine and a spare buffer is patched into the slot, so
// the call returns without waiting for the store.
func (m *Manager) evict(victim, slot int) error {
	if m.pipe != nil && m.inflight[slot] != nil {
		// The victim's own stage-in is still in flight; its buffer
		// cannot be written back or reused until the read completes.
		if err := m.joinSlot(slot); err != nil {
			// The stage-in never delivered valid data, so the buffer
			// holds garbage: writing it back would clobber the store's
			// authoritative copy. Drop the slot instead — a later
			// demand access faults the vector in again and surfaces
			// the error to the caller if it persists.
			if IsCorruption(err) {
				m.pipeStats.CorruptReads++
			}
			m.pipeStats.DroppedWritebacks++
			m.mx.evictions.Inc()
			m.itemSlot[victim] = -1
			m.slotItem[slot] = -1
			m.dirty[slot] = false
			if m.prefetched[slot] {
				m.prefetched[slot] = false
				m.pstats.Wasted++
			}
			return nil
		}
	}
	// A clean slot's content matches the store (it was faulted in by a
	// read and never modified), so WriteBackDirty may skip it safely.
	if m.cfg.WriteBack == WriteBackAlways || m.dirty[slot] {
		var ws time.Time
		if m.mx.on || m.span != nil {
			ws = time.Now()
		}
		if m.pipe != nil {
			if err := m.asyncWriteBack(victim, slot); err != nil {
				return err
			}
			if m.mx.on || m.span != nil {
				// Async: the span covers only the hand-off (spare wait);
				// the store write itself lands in pipe.write_back_seconds.
				dur := time.Since(ws)
				m.traceSpan(obs.OpEvict, victim, slot, ws, dur)
				m.span.EmitChild("ooc.evict", ws, dur,
					obs.Attr{Key: "vid", Int: int64(victim)}, obs.Attr{Key: "slot", Int: int64(slot)})
			}
		} else {
			if err := m.stall(func() error { return m.storeWrite(victim, m.slots[slot]) }); err != nil {
				return err
			}
			if m.mx.on || m.span != nil {
				dur := time.Since(ws)
				m.mx.evictWrite.Observe(dur.Seconds())
				m.traceSpan(obs.OpEvict, victim, slot, ws, dur)
				m.span.EmitChild("ooc.evict", ws, dur,
					obs.Attr{Key: "vid", Int: int64(victim)}, obs.Attr{Key: "slot", Int: int64(slot)})
			}
		}
		m.stats.Writes++
		m.stats.BytesWritten += int64(m.cfg.VectorLen) * 8
	} else {
		m.stats.SkippedWrites++
	}
	m.mx.evictions.Inc()
	m.itemSlot[victim] = -1
	m.slotItem[slot] = -1
	m.dirty[slot] = false
	if m.prefetched[slot] {
		m.prefetched[slot] = false
		m.pstats.Wasted++
	}
	return nil
}

// asyncWriteBack queues the victim's buffer for background write-back
// and patches a spare buffer into the slot. Blocks only when every
// spare is already in the write queue.
func (m *Manager) asyncWriteBack(victim, slot int) error {
	// Surface background write errors promptly rather than at the next
	// barrier.
	if err := m.pipe.err(); err != nil {
		return err
	}
	start := time.Now()
	spare, err := m.pipe.acquireSpare(m.ctx)
	wait := time.Since(start)
	m.pipeStats.StallTime += wait
	m.pipeStats.BufferWait += wait
	if err != nil {
		return fmt.Errorf("ooc: write-back abandoned: %w", err)
	}
	buf := m.slots[slot]
	m.slots[slot] = spare
	m.pipe.enqueueWrite(victim, buf)
	m.pipeStats.WritesQueued++
	return nil
}

// Flush writes every resident vector to the store (used before closing
// or when handing the store to another consumer). Under the async
// pipeline it is a full barrier: every in-flight fetch is joined and
// the write queue is drained first, so queued (older) write-backs land
// before the resident (newest) data below.
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.drainPipeline(); err != nil {
		return err
	}
	for s, it := range m.slotItem {
		if it < 0 {
			continue
		}
		if err := m.stall(func() error { return m.storeWrite(it, m.slots[s]) }); err != nil {
			return err
		}
		m.stats.Writes++
		m.stats.BytesWritten += int64(m.cfg.VectorLen) * 8
		m.dirty[s] = false
	}
	if m.cfg.SyncWrites {
		return SyncStore(m.cfg.Store)
	}
	return nil
}

// drainPipeline joins every in-flight fetch and waits for the write
// queue to empty. A no-op for synchronous managers.
func (m *Manager) drainPipeline() error {
	if m.pipe == nil {
		return nil
	}
	var first error
	for s := range m.inflight {
		if err := m.joinSlot(s); err != nil && first == nil {
			first = err
		}
	}
	if err := m.stall(m.pipe.barrier); err != nil && first == nil {
		first = err
	}
	return first
}

// Close drains the asynchronous pipeline and stops its goroutines: all
// queued write-backs reach the store (so the backing file is exactly
// as a synchronous run would have left it) and in-flight fetches
// complete. Resident vectors are NOT written back — call Flush first
// to checkpoint them. After Close the manager keeps working, but
// synchronously, and Resize is rejected from the first Close call
// onwards. For synchronous managers Close only latches that flag.
func (m *Manager) Close() error {
	m.closing.Store(true)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.pipe == nil {
		return nil
	}
	first := m.drainPipeline()
	if err := m.stall(m.pipe.shutdown); err != nil && first == nil {
		first = err
	}
	// Preserve the background counters past the pipeline's death.
	m.pipeStats = m.pipelineStatsLocked()
	m.pipe = nil
	m.inflight = nil
	return first
}

// CheckInvariants validates the item/slot mapping consistency; tests
// call it after randomised operation sequences.
func (m *Manager) CheckInvariants() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]int)
	for s, it := range m.slotItem {
		if it < 0 {
			continue
		}
		if prev, dup := seen[it]; dup {
			return fmt.Errorf("ooc: item %d resident in slots %d and %d", it, prev, s)
		}
		seen[it] = s
		if m.itemSlot[it] != s {
			return fmt.Errorf("ooc: slot %d holds item %d but itemSlot says %d", s, it, m.itemSlot[it])
		}
	}
	for it, s := range m.itemSlot {
		if s >= 0 && m.slotItem[s] != it {
			return fmt.Errorf("ooc: itemSlot[%d]=%d but slotItem[%d]=%d", it, s, s, m.slotItem[s])
		}
	}
	return nil
}
