package ooc

import (
	"errors"
	"fmt"
)

// MinSlots is the paper's hard floor on resident vectors: computing one
// ancestral vector needs it and its two children in RAM simultaneously
// (§3.2, "we must ensure that m >= 3").
const MinSlots = 3

// WriteBackPolicy controls when an evicted vector is written to the
// backing store.
type WriteBackPolicy int

const (
	// WriteBackAlways writes every evicted vector — the paper's swap
	// semantics (evict = write old + read new).
	WriteBackAlways WriteBackPolicy = iota
	// WriteBackDirty writes only vectors modified since they were
	// faulted in. Not in the paper; implemented as the natural
	// extension ablated in the benchmarks.
	WriteBackDirty
)

// Stats holds the manager's access counters — the quantities plotted in
// the paper's Figures 2-4.
type Stats struct {
	// Requests counts getxvector-style accesses.
	Requests int64
	// Hits counts accesses satisfied from a RAM slot.
	Hits int64
	// Misses counts accesses that required a swap.
	Misses int64
	// Reads counts vectors actually read from the store (Misses minus
	// the reads that read skipping eliminated).
	Reads int64
	// SkippedReads counts swap-ins whose read was elided (§3.4).
	SkippedReads int64
	// Writes counts vectors written back to the store.
	Writes int64
	// SkippedWrites counts evictions elided by WriteBackDirty.
	SkippedWrites int64
	// BytesRead and BytesWritten total the store traffic.
	BytesRead, BytesWritten int64
}

// MissRate returns Misses/Requests (Figure 2's y axis).
func (s Stats) MissRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Requests)
}

// ReadRate returns Reads/Requests (Figure 3's y axis). Without read
// skipping it equals MissRate.
func (s Stats) ReadRate() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Requests)
}

// Config configures a Manager.
type Config struct {
	// NumVectors is n, the total ancestral vector count.
	NumVectors int
	// VectorLen is the per-vector payload length in float64s (the
	// paper's slot width w, in doubles).
	VectorLen int
	// Slots is m, the number of RAM slots. Values above NumVectors are
	// capped (f = 1 holds everything in RAM); values below MinSlots
	// (when NumVectors allows) are rejected.
	Slots int
	// Strategy is the replacement policy; required.
	Strategy Strategy
	// ReadSkipping enables §3.4's write-intent read elision.
	ReadSkipping bool
	// WriteBack selects the eviction write policy.
	WriteBack WriteBackPolicy
	// Store is the backing storage; required.
	Store Store
}

// SlotsForFraction returns m = max(MinSlots, round(f*n)) capped at n —
// the paper's parameterisation of available RAM.
func SlotsForFraction(f float64, n int) int {
	m := int(f*float64(n) + 0.5)
	if m < MinSlots {
		m = MinSlots
	}
	if m > n {
		m = n
	}
	return m
}

// Manager is the out-of-core ancestral-vector manager: it implements
// the plf.VectorProvider contract over a bounded set of RAM slots and a
// backing Store. It is not safe for concurrent use (neither is the
// likelihood engine driving it).
type Manager struct {
	cfg Config

	// slots holds the m vector-wide RAM buffers.
	slots [][]float64
	// slotItem maps slot -> resident item, -1 if empty.
	slotItem []int
	// itemSlot maps item -> slot, -1 if on "disk" (the paper's
	// itemvector: RAM address vs file offset; offsets here are implicit,
	// vector vi lives at file position vi).
	itemSlot []int
	// dirty marks slots written since fault-in (used by WriteBackDirty).
	dirty []bool
	// prefetched marks slots staged by Prefetch and not yet demanded.
	prefetched []bool
	// candidates is scratch for building the evictable set per miss.
	candidates []int
	slotOf     []int // parallel scratch: slot of each candidate

	stats  Stats
	pstats PrefetchStats
}

// ErrAllPinned is returned when a miss cannot find an evictable slot
// because every resident vector is pinned — only possible if the caller
// pins more than Slots-1 vectors, which the likelihood engine's
// three-vector working set never does under m >= MinSlots.
var ErrAllPinned = errors.New("ooc: all resident vectors are pinned; cannot evict")

// NewManager validates cfg and allocates the slot pool. Exactly
// Slots*VectorLen float64s of vector memory are allocated, enforcing
// the paper's -L style memory limitation.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.NumVectors < 0 || cfg.VectorLen <= 0 {
		return nil, fmt.Errorf("ooc: invalid geometry: %d vectors of %d", cfg.NumVectors, cfg.VectorLen)
	}
	if cfg.Store == nil {
		return nil, errors.New("ooc: Store is required")
	}
	if cfg.Strategy == nil {
		return nil, errors.New("ooc: Strategy is required")
	}
	if cfg.Slots > cfg.NumVectors {
		cfg.Slots = cfg.NumVectors
	}
	if cfg.Slots < MinSlots && cfg.Slots < cfg.NumVectors {
		return nil, fmt.Errorf("ooc: %d slots for %d vectors; need at least %d (m >= 3)",
			cfg.Slots, cfg.NumVectors, MinSlots)
	}
	m := &Manager{
		cfg:        cfg,
		slots:      make([][]float64, cfg.Slots),
		slotItem:   make([]int, cfg.Slots),
		itemSlot:   make([]int, cfg.NumVectors),
		dirty:      make([]bool, cfg.Slots),
		prefetched: make([]bool, cfg.Slots),
	}
	backing := make([]float64, cfg.Slots*cfg.VectorLen)
	for i := range m.slots {
		m.slots[i], backing = backing[:cfg.VectorLen:cfg.VectorLen], backing[cfg.VectorLen:]
		m.slotItem[i] = -1
	}
	for i := range m.itemSlot {
		m.itemSlot[i] = -1
	}
	return m, nil
}

// NumVectors implements plf.VectorProvider.
func (m *Manager) NumVectors() int { return m.cfg.NumVectors }

// VectorLen implements plf.VectorProvider.
func (m *Manager) VectorLen() int { return m.cfg.VectorLen }

// Slots returns m, the resident-vector capacity.
func (m *Manager) Slots() int { return len(m.slots) }

// Stats returns a copy of the access counters.
func (m *Manager) Stats() Stats { return m.stats }

// ResetStats zeroes the counters (the strategy state is left intact, so
// measurement windows can exclude warm-up).
func (m *Manager) ResetStats() { m.stats = Stats{} }

// Resident reports whether vector vi currently occupies a RAM slot.
func (m *Manager) Resident(vi int) bool {
	return vi >= 0 && vi < len(m.itemSlot) && m.itemSlot[vi] >= 0
}

// Vector implements plf.VectorProvider: the paper's getxvector(). It
// returns the RAM address of vector vi, swapping it in if necessary.
// write declares that the caller overwrites the entire vector before
// reading it, enabling read skipping; pinned lists vector indices that
// must not be evicted by this call.
func (m *Manager) Vector(vi int, write bool, pinned ...int) ([]float64, error) {
	if vi < 0 || vi >= m.cfg.NumVectors {
		return nil, fmt.Errorf("ooc: vector index %d out of range [0, %d)", vi, m.cfg.NumVectors)
	}
	m.stats.Requests++
	m.cfg.Strategy.Touch(vi)
	if s := m.itemSlot[vi]; s >= 0 {
		m.stats.Hits++
		if m.prefetched[s] {
			m.prefetched[s] = false
			m.pstats.Hits++
		}
		if write {
			m.dirty[s] = true
		}
		return m.slots[s], nil
	}
	m.stats.Misses++

	slot, err := m.freeSlot(vi, pinned)
	if err != nil {
		return nil, err
	}
	// Swap in.
	skipRead := write && m.cfg.ReadSkipping
	if skipRead {
		m.stats.SkippedReads++
	} else {
		if err := m.cfg.Store.ReadVector(vi, m.slots[slot]); err != nil {
			return nil, err
		}
		m.stats.Reads++
		m.stats.BytesRead += int64(m.cfg.VectorLen) * 8
	}
	m.slotItem[slot] = vi
	m.itemSlot[vi] = slot
	m.dirty[slot] = write
	m.prefetched[slot] = false
	return m.slots[slot], nil
}

// freeSlot returns an empty slot, evicting a victim if none is free.
func (m *Manager) freeSlot(requested int, pinned []int) (int, error) {
	for s, it := range m.slotItem {
		if it < 0 {
			return s, nil
		}
	}
	// Build the evictable candidate set: resident items minus pins.
	m.candidates = m.candidates[:0]
	m.slotOf = m.slotOf[:0]
	for s, it := range m.slotItem {
		isPinned := false
		for _, p := range pinned {
			if p == it {
				isPinned = true
				break
			}
		}
		if !isPinned {
			m.candidates = append(m.candidates, it)
			m.slotOf = append(m.slotOf, s)
		}
	}
	if len(m.candidates) == 0 {
		return 0, ErrAllPinned
	}
	pick := m.cfg.Strategy.PickVictim(m.candidates, requested)
	if pick < 0 || pick >= len(m.candidates) {
		return 0, fmt.Errorf("ooc: strategy %s picked invalid victim %d of %d",
			m.cfg.Strategy.Name(), pick, len(m.candidates))
	}
	victim := m.candidates[pick]
	slot := m.slotOf[pick]
	if err := m.evict(victim, slot); err != nil {
		return 0, err
	}
	return slot, nil
}

// evict writes the victim back (subject to the write-back policy) and
// releases its slot.
func (m *Manager) evict(victim, slot int) error {
	// A clean slot's content matches the store (it was faulted in by a
	// read and never modified), so WriteBackDirty may skip it safely.
	if m.cfg.WriteBack == WriteBackAlways || m.dirty[slot] {
		if err := m.cfg.Store.WriteVector(victim, m.slots[slot]); err != nil {
			return err
		}
		m.stats.Writes++
		m.stats.BytesWritten += int64(m.cfg.VectorLen) * 8
	} else {
		m.stats.SkippedWrites++
	}
	m.itemSlot[victim] = -1
	m.slotItem[slot] = -1
	m.dirty[slot] = false
	if m.prefetched[slot] {
		m.prefetched[slot] = false
		m.pstats.Wasted++
	}
	return nil
}

// Flush writes every resident vector to the store (used before closing
// or when handing the store to another consumer).
func (m *Manager) Flush() error {
	for s, it := range m.slotItem {
		if it < 0 {
			continue
		}
		if err := m.cfg.Store.WriteVector(it, m.slots[s]); err != nil {
			return err
		}
		m.stats.Writes++
		m.stats.BytesWritten += int64(m.cfg.VectorLen) * 8
		m.dirty[s] = false
	}
	return nil
}

// CheckInvariants validates the item/slot mapping consistency; tests
// call it after randomised operation sequences.
func (m *Manager) CheckInvariants() error {
	seen := make(map[int]int)
	for s, it := range m.slotItem {
		if it < 0 {
			continue
		}
		if prev, dup := seen[it]; dup {
			return fmt.Errorf("ooc: item %d resident in slots %d and %d", it, prev, s)
		}
		seen[it] = s
		if m.itemSlot[it] != s {
			return fmt.Errorf("ooc: slot %d holds item %d but itemSlot says %d", s, it, m.itemSlot[it])
		}
	}
	for it, s := range m.itemSlot {
		if s >= 0 && m.slotItem[s] != it {
			return fmt.Errorf("ooc: itemSlot[%d]=%d but slotItem[%d]=%d", it, s, s, m.slotItem[s])
		}
	}
	return nil
}
