package ooc

import (
	"path/filepath"
	"testing"
	"time"
)

// faultRetry is a fast backoff for tests.
var faultRetry = RetryPolicy{Max: 4, Base: time.Microsecond, Cap: 10 * time.Microsecond}

func TestFaultStoreDeterministic(t *testing.T) {
	// The same seed over the same operation sequence must inject the
	// same faults at the same operations.
	run := func() (errsAt []int, stats FaultStats) {
		fs := NewFaultStore(NewMemStore(8, 4), FaultConfig{
			Seed: 7, PReadErr: 0.5, MaxReadErrs: 3, PBitFlip: 0.5, MaxBitFlips: 3,
		})
		buf := make([]float64, 4)
		for i := 0; i < 20; i++ {
			if err := fs.ReadVector(i%8, buf); err != nil {
				errsAt = append(errsAt, i)
			}
		}
		return errsAt, fs.Stats()
	}
	e1, s1 := run()
	e2, s2 := run()
	if s1 != s2 {
		t.Fatalf("stats diverged: %+v vs %+v", s1, s2)
	}
	if len(e1) != len(e2) {
		t.Fatalf("error positions diverged: %v vs %v", e1, e2)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("error positions diverged: %v vs %v", e1, e2)
		}
	}
	if s1.ReadErrs != 3 {
		t.Errorf("p=0.5 over 20 ops should exhaust the cap of 3, got %d", s1.ReadErrs)
	}
}

func TestFaultStoreCapsBound(t *testing.T) {
	// A category without a cap must never fire, no matter the probability.
	fs := NewFaultStore(NewMemStore(4, 4), FaultConfig{Seed: 1, PReadErr: 1})
	buf := make([]float64, 4)
	for i := 0; i < 10; i++ {
		if err := fs.ReadVector(0, buf); err != nil {
			t.Fatalf("capless category fired: %v", err)
		}
	}
	if total := fs.Stats().Total(); total != 0 {
		t.Errorf("injected %d faults with no caps set", total)
	}
}

func TestFaultManagerRetriesTransientRead(t *testing.T) {
	n, vl := 6, 4
	base := NewMemStore(n, vl)
	want := []float64{9, 8, 7, 6}
	if err := base.WriteVector(0, want); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(base, FaultConfig{Seed: 2, PReadErr: 1, MaxReadErrs: 2})
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3, Strategy: NewLRU(n),
		Store: fs, Retry: faultRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	v, err := m.Vector(0, false)
	if err != nil {
		t.Fatalf("demand read with retries: %v", err)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("got %v, want %v", v, want)
		}
	}
	if r := m.PipelineStats().Retries; r != 2 {
		t.Errorf("Retries = %d, want 2 (both injected EIOs retried)", r)
	}
}

func TestFaultManagerRetriesTransientWrite(t *testing.T) {
	n, vl := 6, 4
	base := NewMemStore(n, vl)
	fs := NewFaultStore(base, FaultConfig{Seed: 3, PWriteErr: 1, MaxWriteErrs: 2})
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3, Strategy: NewLRU(n),
		ReadSkipping: true, Store: fs, Retry: faultRetry,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Vector(0, true)
	if err != nil {
		t.Fatal(err)
	}
	copy(v, []float64{1, 2, 3, 4})
	// Flush forces the dirty slot through the (faulty) write path.
	if err := m.Flush(); err != nil {
		t.Fatalf("flush with retries: %v", err)
	}
	if r := m.PipelineStats().Retries; r != 2 {
		t.Errorf("Retries = %d, want 2", r)
	}
	got := make([]float64, vl)
	if err := base.ReadVector(0, got); err != nil {
		t.Fatal(err)
	}
	if got[3] != 4 {
		t.Errorf("write never landed: %v", got)
	}
	m.Close()
}

func TestFaultTornWriteCaughtByChecksum(t *testing.T) {
	n, vl := 2, 8
	fs := NewFaultStore(NewMemStore(n, vl), FaultConfig{Seed: 5, PTornWrite: 1, MaxTornWrites: 1})
	cs, err := NewChecksumStore(fs, filepath.Join(t.TempDir(), "v.sum"), n, vl)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	buf := make([]float64, vl)
	fillVec(buf, 1)
	// The torn write reports success...
	if err := cs.WriteVector(1, buf); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().TornWrites != 1 {
		t.Fatal("torn write was not injected")
	}
	// ...but the next read must catch the mismatch.
	got := make([]float64, vl)
	if err := cs.ReadVector(1, got); !IsCorruption(err) {
		t.Fatalf("torn write not detected: %v", err)
	}
	// Rewriting (cap exhausted) heals it.
	if err := cs.WriteVector(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := cs.ReadVector(1, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestFaultBitFlipCaughtByChecksum(t *testing.T) {
	n, vl := 2, 8
	fs := NewFaultStore(NewMemStore(n, vl), FaultConfig{Seed: 6, PBitFlip: 1, MaxBitFlips: 1})
	cs, err := NewChecksumStore(fs, filepath.Join(t.TempDir(), "v.sum"), n, vl)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	buf := make([]float64, vl)
	fillVec(buf, 0)
	if err := cs.WriteVector(0, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, vl)
	if err := cs.ReadVector(0, got); !IsCorruption(err) {
		t.Fatalf("bit flip not detected: %v", err)
	}
	// The flip hit the transfer, not the medium: the next read is clean.
	if err := cs.ReadVector(0, got); err != nil {
		t.Fatalf("read after transfer flip: %v", err)
	}
}

func TestFaultCorruptReadWithWriteIntentIsSkipped(t *testing.T) {
	// A corrupt fault-in for a caller that is about to overwrite the
	// whole vector must behave like a skipped read, not a fatal error —
	// this is what lets the engine recompute corrupted vectors without
	// read skipping enabled.
	n, vl := 6, 4
	inner := NewMemStore(n, vl)
	cs, err := NewChecksumStore(inner, filepath.Join(t.TempDir(), "v.sum"), n, vl)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3, Strategy: NewLRU(n),
		ReadSkipping: false, Store: cs,
	})
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.Vector(0, true)
	if err != nil {
		t.Fatal(err)
	}
	copy(v, []float64{1, 2, 3, 4})
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// Evict vector 0 by filling the slots, then corrupt its stored copy.
	for vi := 1; vi <= 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	if m.Resident(0) {
		t.Fatal("vector 0 still resident; eviction setup wrong")
	}
	if err := inner.WriteVector(0, []float64{0, 0, 0, 99}); err != nil {
		t.Fatal(err)
	}
	// Read intent: the corruption is fatal to this access.
	if _, err := m.Vector(0, false); !IsCorruption(err) {
		t.Fatalf("read-intent access of corrupt vector: %v", err)
	}
	// Write intent: the corrupt payload is irrelevant; the access
	// succeeds as if the read had been skipped.
	v, err = m.Vector(0, true)
	if err != nil {
		t.Fatalf("write-intent access of corrupt vector: %v", err)
	}
	copy(v, []float64{5, 6, 7, 8})
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := m.Vector(0, false); err != nil || got[0] != 5 {
		t.Fatalf("healed vector: %v err %v", got, err)
	}
	if cr := m.PipelineStats().CorruptReads; cr != 2 {
		t.Errorf("CorruptReads = %d, want 2 (one fatal, one swallowed)", cr)
	}
	m.Close()
	cs.Close()
}

func TestFaultAsyncFailedJoinNotLedgered(t *testing.T) {
	// A prefetch whose background fetch fails must not leave the hit or
	// read ledgers counting an access that never delivered data.
	n, vl := 8, 4
	base := NewMemStore(n, vl)
	want := []float64{4, 3, 2, 1}
	if err := base.WriteVector(0, want); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(base, FaultConfig{Seed: 8, PReadErr: 1, MaxReadErrs: 1})
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3, Strategy: NewLRU(n),
		ReadSkipping: true, Store: fs, Async: true, IOWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prefetch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Vector(0, false); err == nil {
		t.Fatal("join of failed fetch reported success")
	}
	st, pf := m.Stats(), m.PrefetchStats()
	if st.Hits != 0 {
		t.Errorf("failed join ledgered a hit: %+v", st)
	}
	if pf.Reads != 0 || st.BytesRead != 0 {
		t.Errorf("failed fetch ledgered a read: pf=%+v bytes=%d", pf, st.BytesRead)
	}
	// The demand path works once the fault budget is exhausted.
	v, err := m.Vector(0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if v[i] != want[i] {
			t.Fatalf("got %v, want %v", v, want)
		}
	}
	st, pf = m.Stats(), m.PrefetchStats()
	if st.Reads != 1 || st.BytesRead != int64(vl)*8 {
		t.Errorf("successful demand read not ledgered: %+v", st)
	}
	if pf.Reads != 0 {
		t.Errorf("demand read ledgered as prefetch: %+v", pf)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFaultAsyncEvictDropsFailedStageIn(t *testing.T) {
	// Evicting a slot whose stage-in failed must drop the buffer, not
	// write garbage over the store's authoritative copy.
	n, vl := 8, 4
	base := NewMemStore(n, vl)
	want := []float64{11, 12, 13, 14}
	if err := base.WriteVector(0, want); err != nil {
		t.Fatal(err)
	}
	fs := NewFaultStore(base, FaultConfig{Seed: 9, PReadErr: 1, MaxReadErrs: 1})
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3, Strategy: NewLRU(n),
		ReadSkipping: true, WriteBack: WriteBackAlways,
		Store: fs, Async: true, IOWorkers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prefetch(0); err != nil { // background fetch fails
		t.Fatal(err)
	}
	// Fill the remaining slots, then one more: vector 0's slot is the
	// LRU victim and its failed stage-in must be dropped on eviction.
	for vi := 1; vi <= 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	if m.Resident(0) {
		t.Fatal("vector 0 still resident after eviction pressure")
	}
	if d := m.PipelineStats().DroppedWritebacks; d != 1 {
		t.Errorf("DroppedWritebacks = %d, want 1", d)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, vl)
	if err := base.ReadVector(0, got); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("store copy clobbered by dropped write-back: %v, want %v", got, want)
		}
	}
}
