package ooc

import (
	"sync"
	"testing"

	"oocphylo/internal/obs"
)

// asyncObsManager builds an instrumented async manager over a MemStore.
func asyncObsManager(t *testing.T, n, vecLen, slots int) (*Manager, *obs.Registry, *obs.Tracer) {
	t.Helper()
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vecLen, Slots: slots,
		Strategy: NewLRU(n), ReadSkipping: true,
		Store: NewMemStore(n, vecLen),
		Async: true, IOWorkers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tr := obs.NewTracer(1024)
	m.Instrument(reg, tr)
	return m, reg, tr
}

// TestStatsConcurrentSnapshot is the torn-read regression test: the
// debug endpoint samples Stats/PipelineStats/PrefetchStats from its own
// goroutine while the compute thread runs the manager. Before the stats
// mutex, this was a data race on the counter structs (run with -race).
func TestStatsConcurrentSnapshot(t *testing.T) {
	const n, vecLen, slots = 32, 64, 4
	m, reg, _ := asyncObsManager(t, n, vecLen, slots)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := m.Stats()
				if st.Hits+st.Misses > st.Requests {
					t.Error("torn stats snapshot: hits+misses exceeds requests")
					return
				}
				_ = m.PipelineStats()
				_ = m.PrefetchStats()
				_ = m.Resident(0)
				// A registry snapshot drives the publisher through the
				// same getters, as /debug/vars does.
				_ = reg.Snapshot()
			}
		}
	}()

	for round := 0; round < 50; round++ {
		for vi := 0; vi < n; vi++ {
			_ = m.Prefetch((vi + 3) % n)
			buf, err := m.Vector(vi, vi%2 == 0)
			if err != nil {
				t.Fatal(err)
			}
			buf[0] = float64(vi)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestInstrumentMirrorsCounters checks that a registry snapshot
// reproduces the manager's own counters and that native instruments
// (fault-in histogram, trace events) saw the workload.
func TestInstrumentMirrorsCounters(t *testing.T) {
	const n, vecLen, slots = 16, 32, 4
	m, reg, tr := asyncObsManager(t, n, vecLen, slots)
	for vi := 0; vi < n; vi++ {
		if _, err := m.Vector(vi, false); err != nil {
			t.Fatal(err)
		}
		_ = m.Prefetch((vi + 1) % n)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	st := m.Stats()
	if got := s.Counters["ooc.requests"]; got != st.Requests {
		t.Errorf("ooc.requests=%d, Stats().Requests=%d", got, st.Requests)
	}
	if got := s.Counters["ooc.misses"]; got != st.Misses {
		t.Errorf("ooc.misses=%d, Stats().Misses=%d", got, st.Misses)
	}
	ps := m.PipelineStats()
	if got := s.Counters["pipe.fetches_queued"]; got != ps.FetchesQueued {
		t.Errorf("pipe.fetches_queued=%d, want %d", got, ps.FetchesQueued)
	}
	if s.Info["ooc.strategy"] != "LRU" {
		t.Errorf("ooc.strategy info = %q, want LRU", s.Info["ooc.strategy"])
	}
	h, ok := s.Histograms["ooc.fault_in_seconds"]
	if !ok || h.Count != st.Misses {
		t.Errorf("fault_in histogram count=%d, want %d misses", h.Count, st.Misses)
	}
	if tr.Total() == 0 {
		t.Error("tracer recorded no events")
	}
	// The workload must have produced fault-in spans on the compute lane
	// and at least one background fetch span on a worker lane.
	ops := map[obs.EventOp]int{}
	for _, e := range tr.Events() {
		ops[e.Op]++
	}
	if ops[obs.OpFaultIn] == 0 || ops[obs.OpPrefetch] == 0 || ops[obs.OpFetch] == 0 {
		t.Errorf("missing trace ops: %v", ops)
	}
}

// TestInstrumentIdempotent ensures double instrumentation is ignored
// and an uninstrumented manager works with all-nil instruments.
func TestInstrumentIdempotent(t *testing.T) {
	const n, vecLen = 8, 16
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vecLen, Slots: 4,
		Strategy: NewLRU(n), Store: NewMemStore(n, vecLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Uninstrumented: zero-value obs, must be no-ops.
	if _, err := m.Vector(0, true); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	m.Instrument(reg, nil)
	m.Instrument(obs.NewRegistry(), nil) // ignored
	if _, err := m.Vector(1, true); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Counters["ooc.requests"]; got != 2 {
		t.Errorf("ooc.requests=%d, want 2 (mirrored from Stats)", got)
	}
}
