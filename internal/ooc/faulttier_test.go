package ooc

// Fault-path tests for the tiered store: dirty evictions surviving a
// permanent remote PUT outage via the spill journal, breaker-driven
// degraded mode and recovery, hedged reads beating a stalled first
// request, and the full-jitter retry policy.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// flakyRemote is a Store whose failure modes the test controls. It is
// deliberately NOT a RangeStore, so the tier's per-vector fallback path
// gets exercised too.
type flakyRemote struct {
	mu         sync.Mutex
	vecLen     int
	data       map[int][]float64
	failReads  bool
	failWrites bool
	reads      atomic.Int64
	writes     atomic.Int64
	// readDelay stalls the first firstSlow reads (for hedging tests).
	readDelay time.Duration
	firstSlow int64
	served    atomic.Int64
}

func newFlakyRemote(vecLen int) *flakyRemote {
	return &flakyRemote{vecLen: vecLen, data: make(map[int][]float64)}
}

func (r *flakyRemote) setFailWrites(on bool) {
	r.mu.Lock()
	r.failWrites = on
	r.mu.Unlock()
}

func (r *flakyRemote) setFailReads(on bool) {
	r.mu.Lock()
	r.failReads = on
	r.mu.Unlock()
}

func (r *flakyRemote) get(vi int) []float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	v := make([]float64, r.vecLen)
	copy(v, r.data[vi])
	return v
}

func (r *flakyRemote) Close() error { return nil }

func (r *flakyRemote) ReadVector(vi int, dst []float64) error {
	r.reads.Add(1)
	r.mu.Lock()
	fail, delay := r.failReads, r.readDelay
	r.mu.Unlock()
	if delay > 0 && r.served.Add(1) <= r.firstSlow {
		time.Sleep(delay)
	}
	if fail {
		return fmt.Errorf("flaky remote read %d: %w", vi, ErrTransientIO)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.data[vi]; ok {
		copy(dst, v)
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	return nil
}

func (r *flakyRemote) WriteVector(vi int, src []float64) error {
	r.writes.Add(1)
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.failWrites {
		return fmt.Errorf("flaky remote write %d: %w", vi, ErrTransientIO)
	}
	v := make([]float64, len(src))
	copy(v, src)
	r.data[vi] = v
	return nil
}

// TestTieredStoreJournalAbsorbsDirtyEvictions is the ISSUE's
// permanent-PUT-failure case: every dirty eviction during the outage
// must land in the spill journal (not error, not lose data), reads of
// journaled vectors must serve the newest bytes, and a healed remote +
// Sync must drain the journal to depth 0 with the remote holding the
// newest copy of everything.
func TestTieredStoreJournalAbsorbsDirtyEvictions(t *testing.T) {
	const vecLen, nVec = 4, 8
	rem := newFlakyRemote(vecLen)
	rem.setFailWrites(true)
	ts, err := NewTieredStore(rem, TieredConfig{
		NumVectors: nVec, VectorLen: vecLen,
		CacheDir: t.TempDir(), CacheVectors: 2, Lanes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < nVec; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatalf("write %d during outage: %v", vi, err)
		}
	}
	st := ts.Stats()
	if st.JournalAppends == 0 || st.JournalDepth == 0 {
		t.Fatalf("journal absorbed nothing: %+v", st)
	}
	if st.DirtyWritebacks == 0 {
		t.Fatal("no dirty evictions happened — the cache never filled")
	}
	// Journaled vectors read back their newest bytes (served locally,
	// not from the stale remote).
	dst := make([]float64, vecLen)
	if err := ts.ReadVector(0, dst); err != nil {
		t.Fatal(err)
	}
	want := tierVec(vecLen, 0)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("journaled read pos %d: %v != %v", i, dst[i], want[i])
		}
	}
	if ts.Stats().JournalHits == 0 {
		t.Error("read of an evicted vector did not hit the journal")
	}
	// Journaled vectors price as local for the recompute policy.
	if _, remote := ts.FetchCost(0); remote {
		t.Error("journaled vector priced as remote")
	}

	// Heal the network: Sync must replay the journal to empty.
	rem.setFailWrites(false)
	if err := ts.Sync(); err != nil {
		t.Fatalf("sync after recovery: %v", err)
	}
	st = ts.Stats()
	if st.JournalDepth != 0 {
		t.Fatalf("journal depth %d after recovery sync, want 0", st.JournalDepth)
	}
	if st.JournalReplayed == 0 {
		t.Error("nothing replayed despite absorbed evictions")
	}
	for vi := 0; vi < nVec; vi++ {
		got, want := rem.get(vi), tierVec(vecLen, vi)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("remote vector %d pos %d: %v != %v after drain", vi, i, got[i], want[i])
			}
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTieredStoreBreakerDegradesAndRecovers drives the breaker through
// its full arc against a failing backend: trip, short-circuit fast,
// report Degraded, then — once the backend heals and the cooldown
// elapses — a probe recloses it.
func TestTieredStoreBreakerDegradesAndRecovers(t *testing.T) {
	const vecLen, nVec = 4, 8
	rem := newFlakyRemote(vecLen)
	for vi := 0; vi < nVec; vi++ {
		rem.WriteVector(vi, tierVec(vecLen, vi))
	}
	clk := &fakeClock{t: time.Unix(1000, 0)}
	ts, err := NewTieredStore(rem, TieredConfig{
		NumVectors: nVec, VectorLen: vecLen,
		CacheDir: t.TempDir(), CacheVectors: 2, Lanes: 1,
		Breaker: BreakerConfig{Threshold: 2, Cooldown: time.Second, Now: clk.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	if ts.Degraded() {
		t.Fatal("fresh tier already degraded")
	}

	rem.setFailReads(true)
	dst := make([]float64, vecLen)
	for vi := 0; vi < 2; vi++ {
		if err := ts.ReadVector(vi, dst); err == nil {
			t.Fatalf("read %d succeeded against a dead backend", vi)
		}
	}
	if !ts.Degraded() {
		t.Fatalf("breaker not open after threshold failures: %+v", ts.Stats())
	}
	// Short-circuit: the refusal is local and typed, not a timeout.
	err = ts.ReadVector(2, dst)
	if !IsCircuitOpen(err) {
		t.Fatalf("read while open = %v, want ErrCircuitOpen", err)
	}
	st := ts.Stats()
	if st.ShortCircuits == 0 || st.BreakerOpens == 0 || !st.Degraded {
		t.Errorf("stats while open: %+v", st)
	}
	if st.BreakerState != "open" {
		t.Errorf("BreakerState = %q, want open", st.BreakerState)
	}

	// Heal + cooldown: a guarded probe recloses the circuit.
	rem.setFailReads(false)
	clk.advance(2 * time.Second)
	if err := ts.ProbeRemote(context.Background()); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if ts.Degraded() {
		t.Fatal("still degraded after successful probe")
	}
	if err := ts.ReadVector(3, dst); err != nil {
		t.Fatalf("read after recovery: %v", err)
	}
	want := tierVec(vecLen, 3)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("pos %d: %v != %v", i, dst[i], want[i])
		}
	}
	// ProbeRemote with a closed breaker is a no-op.
	reads := rem.reads.Load()
	if err := ts.ProbeRemote(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rem.reads.Load() != reads {
		t.Error("ProbeRemote touched the backend while healthy")
	}
}

// TestTieredStoreHedgedRead stalls the first remote GET long past
// HedgeAfter: the duplicate request must fire, win, and return correct
// bytes well before the stalled original would have.
func TestTieredStoreHedgedRead(t *testing.T) {
	const vecLen, nVec = 4, 8
	rem := newFlakyRemote(vecLen)
	for vi := 0; vi < nVec; vi++ {
		rem.WriteVector(vi, tierVec(vecLen, vi))
	}
	rem.readDelay = 300 * time.Millisecond
	rem.firstSlow = 1
	ts, err := NewTieredStore(rem, TieredConfig{
		NumVectors: nVec, VectorLen: vecLen,
		CacheDir: t.TempDir(), CacheVectors: 2, Lanes: 1,
		HedgeAfter: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	dst := make([]float64, vecLen)
	start := time.Now()
	if err := ts.ReadVector(5, dst); err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	want := tierVec(vecLen, 5)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("pos %d: %v != %v", i, dst[i], want[i])
		}
	}
	st := ts.Stats()
	if st.Hedges == 0 {
		t.Fatal("hedge never launched")
	}
	if st.HedgeWins == 0 {
		t.Errorf("hedge launched but did not win (elapsed %v)", elapsed)
	}
	if elapsed >= rem.readDelay {
		t.Errorf("read took %v — waited out the stalled request instead of hedging", elapsed)
	}
}

// TestRetryPolicyFullJitter pins the jitter contract (satellite 1):
// sleeps are drawn uniformly from (0, envelope] through the injectable
// Rand source, deterministic for a seeded source, never zero, and the
// envelope still doubles per retry up to Cap.
func TestRetryPolicyFullJitter(t *testing.T) {
	rp := RetryPolicy{Base: 8 * time.Millisecond, Rand: func() float64 { return 0.5 }}
	if got := rp.jittered(8 * time.Millisecond); got != 4*time.Millisecond {
		t.Errorf("jittered(8ms) with r=0.5 = %v, want 4ms", got)
	}
	// A zero draw must not yield a zero (spin) sleep.
	rp.Rand = func() float64 { return 0 }
	if got := rp.jittered(8 * time.Millisecond); got <= 0 {
		t.Errorf("jittered floor violated: %v", got)
	}
	// Determinism: two policies sharing a seed draw identical sleeps.
	mk := func() func() float64 { r := rand.New(rand.NewSource(7)); return r.Float64 }
	a, b := RetryPolicy{Rand: mk()}, RetryPolicy{Rand: mk()}
	for i := 0; i < 32; i++ {
		d := time.Duration(i+1) * time.Millisecond
		if x, y := a.jittered(d), b.jittered(d); x != y {
			t.Fatalf("draw %d diverged: %v != %v", i, x, y)
		}
	}
}

func TestRetryPolicyRetriesTransient(t *testing.T) {
	rp := RetryPolicy{Max: 3, Base: time.Microsecond, Rand: func() float64 { return 0.5 }}
	var counter atomic.Int64
	calls := 0
	err := rp.run(&counter, func() error {
		calls++
		if calls < 3 {
			return fmt.Errorf("flap: %w", ErrTransientIO)
		}
		return nil
	})
	if err != nil || calls != 3 || counter.Load() != 2 {
		t.Errorf("err=%v calls=%d retries=%d, want success on 3rd call with 2 retries", err, calls, counter.Load())
	}
	// Non-transient errors are not retried.
	calls = 0
	err = rp.run(&counter, func() error {
		calls++
		return fmt.Errorf("fatal: %w", ErrCircuitOpen)
	})
	if err == nil || calls != 1 {
		t.Errorf("circuit-open error retried: calls=%d err=%v", calls, err)
	}
}

func TestRetryPolicyCtxCancelAbandonsBackoff(t *testing.T) {
	rp := RetryPolicy{Max: 5, Base: time.Hour} // backoff would block forever
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- rp.runCtx(ctx, nil, func() error {
			return fmt.Errorf("down: %w", ErrTransientIO)
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err == nil || ctx.Err() == nil {
			t.Fatalf("unexpected result: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored context cancellation")
	}
}
