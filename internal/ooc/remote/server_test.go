package remote

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"oocphylo/internal/iosim"
)

func TestServerRangedGetPut(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr() + "/o/obj"

	// Create a 32-byte object.
	req, _ := http.NewRequest(http.MethodPut, base+"?truncate=32", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("truncate: HTTP %d", resp.StatusCode)
	}
	if got := s.Size("obj"); got != 32 {
		t.Fatalf("size = %d, want 32", got)
	}

	// Ranged PUT in the middle.
	req, _ = http.NewRequest(http.MethodPut, base, strings.NewReader("ABCDEFGH"))
	req.Header.Set("Content-Range", "bytes 8-15/*")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ranged put: HTTP %d", resp.StatusCode)
	}

	// Ranged GET reads it back; the zero region stays zero.
	req, _ = http.NewRequest(http.MethodGet, base, nil)
	req.Header.Set("Range", "bytes=6-17")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("ranged get: HTTP %d", resp.StatusCode)
	}
	if want := "\x00\x00ABCDEFGH\x00\x00"; string(body) != want {
		t.Fatalf("ranged get = %q, want %q", body, want)
	}
	if cr := resp.Header.Get("Content-Range"); cr != "bytes 6-17/32" {
		t.Errorf("Content-Range = %q", cr)
	}

	// Writes past the end grow the object.
	req, _ = http.NewRequest(http.MethodPut, base, strings.NewReader("xy"))
	req.Header.Set("Content-Range", "bytes 40-41/*")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := s.Size("obj"); got != 42 {
		t.Errorf("size after grow = %d, want 42", got)
	}

	// HEAD reports the size; a missing object is 404.
	resp, err = http.Head(base)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.ContentLength != 42 {
		t.Errorf("HEAD Content-Length = %d, want 42", resp.ContentLength)
	}
	resp, err = http.Head("http://" + s.Addr() + "/o/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("HEAD missing: HTTP %d, want 404", resp.StatusCode)
	}

	// Unsatisfiable range.
	req, _ = http.NewRequest(http.MethodGet, base, nil)
	req.Header.Set("Range", "bytes=100-120")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestedRangeNotSatisfiable {
		t.Errorf("past-end range: HTTP %d, want 416", resp.StatusCode)
	}
}

func TestServerLatencyInjection(t *testing.T) {
	s, err := NewServer(ServerConfig{
		Device: iosim.Device{Name: "wan", Latency: 20 * time.Millisecond, Bandwidth: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr() + "/o/x"
	req, _ := http.NewRequest(http.MethodPut, base+"?truncate=64", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	start := time.Now()
	req, _ = http.NewRequest(http.MethodGet, base, nil)
	req.Header.Set("Range", "bytes=0-63")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Errorf("injected 20ms latency but request took %v", elapsed)
	}
	if s.Clock().Ops() == 0 {
		t.Error("clock ledger not charged")
	}
}

func TestServerConcurrentRanges(t *testing.T) {
	s, err := NewServer(ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr() + "/o/c"
	req, _ := http.NewRequest(http.MethodPut, base+"?truncate=800", nil)
	if resp, err := http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	errc := make(chan error, 8)
	for i := 0; i < 8; i++ {
		go func(i int) {
			payload := strings.Repeat(string(rune('a'+i)), 100)
			req, _ := http.NewRequest(http.MethodPut, base, strings.NewReader(payload))
			req.Header.Set("Content-Range", fmt.Sprintf("bytes %d-%d/*", i*100, i*100+99))
			resp, err := http.DefaultClient.Do(req)
			if err == nil {
				resp.Body.Close()
			}
			errc <- err
		}(i)
	}
	for i := 0; i < 8; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 8; i++ {
		req, _ := http.NewRequest(http.MethodGet, base, nil)
		req.Header.Set("Range", fmt.Sprintf("bytes=%d-%d", i*100, i*100+99))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if want := strings.Repeat(string(rune('a'+i)), 100); string(body) != want {
			t.Fatalf("stripe %d corrupted: %q...", i, body[:8])
		}
	}
}

// TestServerChaosInjection drives each injected fault kind through the
// HTTP surface and pins the server's core safety rule: stored objects
// are never mutated by injection, whatever the GET path returned.
func TestServerChaosInjection(t *testing.T) {
	chaos := iosim.NewChaos(iosim.ChaosConfig{})
	chaos.Disable()
	s, err := NewServer(ServerConfig{Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr() + "/o/chaos"

	payload := "ABCDEFGHIJKLMNOP"
	put := func() int {
		req, _ := http.NewRequest(http.MethodPut, base, strings.NewReader(payload))
		req.Header.Set("Content-Range", "bytes 0-15/*")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return -1
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func() (string, int, error) {
		req, _ := http.NewRequest(http.MethodGet, base, nil)
		req.Header.Set("Range", "bytes=0-15")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return "", 0, err
		}
		body, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		return string(body), resp.StatusCode, rerr
	}
	if code := put(); code != http.StatusOK {
		t.Fatalf("clean PUT: HTTP %d", code)
	}
	chaos.Enable()

	// 503 burst: the request fails without touching the object.
	s.cfg.Chaos = iosim.NewChaos(iosim.ChaosConfig{ErrorProb: 1})
	if _, code, _ := get(); code != http.StatusServiceUnavailable {
		t.Errorf("FaultError GET: HTTP %d, want 503", code)
	}

	// Connection drop: the client sees a transport error, not a body.
	s.cfg.Chaos = iosim.NewChaos(iosim.ChaosConfig{DropProb: 1})
	if _, _, err := get(); err == nil {
		t.Error("FaultDrop GET completed")
	}

	// Corrupt: the GET body differs from the stored bytes...
	s.cfg.Chaos = iosim.NewChaos(iosim.ChaosConfig{CorruptProb: 1})
	if body, code, err := get(); err != nil || code != http.StatusPartialContent {
		t.Fatalf("FaultCorrupt GET: HTTP %d err %v", code, err)
	} else if body == payload {
		t.Error("FaultCorrupt returned pristine bytes")
	}

	// ...and a corrupt-verdict PUT degrades to a drop, so the stored
	// object survives both unscathed.
	if code := put(); code == http.StatusOK {
		t.Error("FaultCorrupt PUT succeeded (must degrade to drop)")
	}
	s.cfg.Chaos = iosim.NewChaos(iosim.ChaosConfig{TruncateProb: 1})
	if body, _, _ := get(); body == payload {
		t.Error("FaultTruncate returned the full body")
	}
	if code := put(); code == http.StatusOK {
		t.Error("FaultTruncate PUT succeeded (must degrade to drop)")
	}

	s.cfg.Chaos = nil
	if body, code, err := get(); err != nil || code != http.StatusPartialContent || body != payload {
		t.Errorf("object mutated by injection: %q HTTP %d err %v", body, code, err)
	}
}
