// Package remote provides an in-process loopback object server
// speaking the minimal HTTP ranged GET/PUT protocol the ooc.ObjectStore
// client consumes. It exists so the tiered store's remote tier can be
// exercised in tests, CI soaks and benchmarks without any external
// object-storage dependency, with per-request latency and bandwidth
// injection (via the iosim device model) making remote-I/O cost
// measurable and reproducible.
//
// Protocol (all under /o/<name>):
//
//	HEAD /o/<name>                     -> 200 + Content-Length, 404 if absent
//	PUT  /o/<name>?truncate=<bytes>    -> create/resize to <bytes> (zero fill)
//	PUT  /o/<name>  Content-Range: bytes a-b/*   body = b-a+1 bytes at offset a
//	GET  /o/<name>  Range: bytes=a-b   -> 206 partial content
//	GET  /o/<name>                     -> 200 whole object
//	DELETE /o/<name>                   -> 204
//
// Offsets past the current size grow the object (sparse regions read
// as zeros, like a freshly truncated file).
package remote

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/obs"
)

// ServerConfig injects a device model into every request: each GET/PUT
// sleeps Device.TransferTime(payload bytes) before replying, so a 10 ms
// RTT remote is a 10 ms remote in wall-clock terms. The zero value
// injects nothing.
type ServerConfig struct {
	// Device prices each request (Latency per request + bytes/Bandwidth).
	Device iosim.Device
	// Scale multiplies the injected sleep (default 1 when Device has any
	// latency/bandwidth; 0 disables sleeping but still charges Clock).
	Scale float64
	// Spans, when set, records one server-side span per object request
	// carrying an inbound traceparent header — the last hop of a traced
	// evaluate (client → daemon → tiered store → here).
	Spans *obs.SpanCollector
	// Chaos, when set, is consulted once per request and its verdict
	// applied: connection drops, pre-serve stalls, mid-body truncation,
	// 503 bursts, corrupt GET bodies, and full partitions. Stored
	// objects are never mutated by a fault — write-path truncation and
	// corruption degrade to a dropped connection before the body is
	// read, so every byte that lands in an object arrived intact.
	Chaos *iosim.Chaos
}

// Server is the loopback object server. Create with NewServer, which
// starts listening immediately; Close shuts it down.
type Server struct {
	cfg   ServerConfig
	clock iosim.Clock

	mu      sync.Mutex
	objects map[string][]byte

	ln net.Listener
	hs *http.Server
	wg sync.WaitGroup
}

// NewServer starts a loopback server on 127.0.0.1 (random port).
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.Scale == 0 && (cfg.Device.Latency > 0 || cfg.Device.Bandwidth > 0) {
		cfg.Scale = 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("remote: listen: %w", err)
	}
	s := &Server{cfg: cfg, objects: make(map[string][]byte), ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/o/", s.handleObject)
	s.hs = &http.Server{Handler: mux}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.hs.Serve(ln)
	}()
	return s, nil
}

// Addr returns the host:port the server listens on.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the remote:// base URL clients dial; append /<object>.
func (s *Server) URL() string { return "remote://" + s.Addr() }

// ObjectURL returns the full remote://host:port/<name> URL for name.
func (s *Server) ObjectURL(name string) string { return s.URL() + "/" + name }

// Clock exposes the injection ledger (ops, bytes, simulated time).
func (s *Server) Clock() *iosim.Clock { return &s.clock }

// Size returns the current byte size of an object (0 if absent).
func (s *Server) Size(name string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return int64(len(s.objects[name]))
}

// Close stops the listener and waits for the serve loop to exit.
func (s *Server) Close() error {
	err := s.hs.Close()
	s.wg.Wait()
	return err
}

// charge prices one request and sleeps the injected duration.
func (s *Server) charge(bytes int64) {
	s.clock.Charge(s.cfg.Device, bytes)
	if s.cfg.Scale > 0 {
		d := time.Duration(s.cfg.Scale * float64(s.cfg.Device.TransferTime(bytes)))
		if d > 0 {
			time.Sleep(d)
		}
	}
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/o/")
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad object name", http.StatusBadRequest)
		return
	}
	if tp := r.Header.Get("traceparent"); tp != "" && s.cfg.Spans != nil {
		sp := s.cfg.Spans.StartRemoteChild("obj."+strings.ToLower(r.Method), tp)
		sp.SetAttrStr("object", name)
		defer sp.End()
	}
	fault := iosim.FaultNone
	if s.cfg.Chaos != nil {
		var stall time.Duration
		fault, stall = s.cfg.Chaos.Next()
		switch fault {
		case iosim.FaultDrop:
			// Partition / connection drop: abort before any response
			// byte. http.ErrAbortHandler severs the connection without
			// logging a handler panic.
			panic(http.ErrAbortHandler)
		case iosim.FaultError:
			http.Error(w, "injected unavailability", http.StatusServiceUnavailable)
			return
		case iosim.FaultStall:
			time.Sleep(stall)
		case iosim.FaultTruncate, iosim.FaultCorrupt:
			if r.Method != http.MethodGet {
				// Never mangle the write path's stored bytes: degrade
				// to a drop before the body is consumed.
				panic(http.ErrAbortHandler)
			}
		}
	}
	switch r.Method {
	case http.MethodHead:
		s.mu.Lock()
		obj, ok := s.objects[name]
		n := len(obj)
		s.mu.Unlock()
		if !ok {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Length", strconv.Itoa(n))
		w.WriteHeader(http.StatusOK)

	case http.MethodGet:
		s.handleGet(w, r, name, fault)

	case http.MethodPut:
		s.handlePut(w, r, name)

	case http.MethodDelete:
		s.mu.Lock()
		delete(s.objects, name)
		s.mu.Unlock()
		w.WriteHeader(http.StatusNoContent)

	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request, name string, fault iosim.Fault) {
	s.mu.Lock()
	obj, ok := s.objects[name]
	s.mu.Unlock()
	if !ok {
		http.NotFound(w, r)
		return
	}
	from, to := int64(0), int64(len(obj))-1
	partial := false
	if rng := r.Header.Get("Range"); rng != "" {
		var err error
		from, to, err = parseRange(rng)
		if err != nil {
			http.Error(w, err.Error(), http.StatusRequestedRangeNotSatisfiable)
			return
		}
		if from >= int64(len(obj)) {
			http.Error(w, "range start past object end", http.StatusRequestedRangeNotSatisfiable)
			return
		}
		if to >= int64(len(obj)) {
			to = int64(len(obj)) - 1
		}
		partial = true
	}
	n := to - from + 1
	if n < 0 {
		n = 0
	}
	s.charge(n)
	w.Header().Set("Content-Length", strconv.FormatInt(n, 10))
	if partial {
		w.Header().Set("Content-Range", fmt.Sprintf("bytes %d-%d/%d", from, to, len(obj)))
		w.WriteHeader(http.StatusPartialContent)
	} else {
		w.WriteHeader(http.StatusOK)
	}
	// obj slices are never shrunk or mutated in place for served ranges
	// (PUT replaces/extends under the lock before any new GET sees it);
	// copying under the lock keeps torn reads impossible anyway.
	s.mu.Lock()
	buf := make([]byte, n)
	copy(buf, s.objects[name][from:from+n])
	s.mu.Unlock()
	switch fault {
	case iosim.FaultTruncate:
		// Half the promised Content-Length, then a severed connection:
		// the client sees io.ErrUnexpectedEOF mid-body.
		w.Write(buf[:len(buf)/2])
		panic(http.ErrAbortHandler)
	case iosim.FaultCorrupt:
		// Flip one bit of the served copy (never the stored object);
		// the checksum layer above the tiered store catches it.
		if len(buf) > 0 {
			buf[0] ^= 0x01
		}
	}
	w.Write(buf)
}

func (s *Server) handlePut(w http.ResponseWriter, r *http.Request, name string) {
	if t := r.URL.Query().Get("truncate"); t != "" {
		size, err := strconv.ParseInt(t, 10, 64)
		if err != nil || size < 0 {
			http.Error(w, "bad truncate size", http.StatusBadRequest)
			return
		}
		io.Copy(io.Discard, r.Body)
		s.mu.Lock()
		obj := s.objects[name]
		switch {
		case int64(len(obj)) < size:
			grown := make([]byte, size)
			copy(grown, obj)
			s.objects[name] = grown
		case int64(len(obj)) > size:
			s.objects[name] = obj[:size:size]
		case obj == nil:
			s.objects[name] = make([]byte, 0)
		}
		s.mu.Unlock()
		w.WriteHeader(http.StatusOK)
		return
	}
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, "read body: "+err.Error(), http.StatusBadRequest)
		return
	}
	off := int64(0)
	if cr := r.Header.Get("Content-Range"); cr != "" {
		from, to, err := parseContentRange(cr)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if to-from+1 != int64(len(body)) {
			http.Error(w, "content-range span does not match body length", http.StatusBadRequest)
			return
		}
		off = from
	}
	s.charge(int64(len(body)))
	s.mu.Lock()
	obj := s.objects[name]
	end := off + int64(len(body))
	if int64(len(obj)) < end {
		grown := make([]byte, end)
		copy(grown, obj)
		obj = grown
	}
	copy(obj[off:], body)
	s.objects[name] = obj
	s.mu.Unlock()
	w.WriteHeader(http.StatusOK)
}

// parseRange parses "bytes=a-b" (both bounds required — the client
// always knows its extent).
func parseRange(h string) (from, to int64, err error) {
	spec, ok := strings.CutPrefix(h, "bytes=")
	if !ok {
		return 0, 0, fmt.Errorf("remote: unsupported Range %q", h)
	}
	a, b, ok := strings.Cut(spec, "-")
	if !ok || a == "" || b == "" {
		return 0, 0, fmt.Errorf("remote: unsupported Range %q", h)
	}
	if from, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("remote: bad Range %q", h)
	}
	if to, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("remote: bad Range %q", h)
	}
	if from < 0 || to < from {
		return 0, 0, fmt.Errorf("remote: bad Range %q", h)
	}
	return from, to, nil
}

// parseContentRange parses "bytes a-b/*" (total ignored).
func parseContentRange(h string) (from, to int64, err error) {
	spec, ok := strings.CutPrefix(h, "bytes ")
	if !ok {
		return 0, 0, fmt.Errorf("remote: unsupported Content-Range %q", h)
	}
	spec, _, _ = strings.Cut(spec, "/")
	a, b, ok := strings.Cut(spec, "-")
	if !ok {
		return 0, 0, fmt.Errorf("remote: unsupported Content-Range %q", h)
	}
	if from, err = strconv.ParseInt(a, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("remote: bad Content-Range %q", h)
	}
	if to, err = strconv.ParseInt(b, 10, 64); err != nil {
		return 0, 0, fmt.Errorf("remote: bad Content-Range %q", h)
	}
	if from < 0 || to < from {
		return 0, 0, fmt.Errorf("remote: bad Content-Range %q", h)
	}
	return from, to, nil
}
