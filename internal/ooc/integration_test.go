package ooc_test

import (
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/tree"
)

// These tests implement the paper's §4.1 correctness criterion: "for
// each run, we verified that the standard version and the out-of-core
// version produced exactly the same results", for every replacement
// strategy and memory fraction.

func buildCase(tb testing.TB, n, sites int, seed int64) (*tree.Tree, *bio.Patterns, *model.Model) {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+i/260))
	}
	tr, err := tree.RandomTopology(names, rng, 0.02, 0.4)
	if err != nil {
		tb.Fatal(err)
	}
	a := bio.NewAlignment(bio.NewDNAAlphabet())
	for _, name := range names {
		var sb strings.Builder
		for j := 0; j < sites; j++ {
			sb.WriteByte("ACGT"[rng.Intn(4)])
		}
		if err := a.AddString(name, sb.String()); err != nil {
			tb.Fatal(err)
		}
	}
	pats, err := bio.Compress(a)
	if err != nil {
		tb.Fatal(err)
	}
	m, err := model.NewHKY([]float64{0.3, 0.2, 0.25, 0.25}, 2.0)
	if err != nil {
		tb.Fatal(err)
	}
	if err := m.SetGamma(0.8, 4); err != nil {
		tb.Fatal(err)
	}
	return tr, pats, m
}

// workload runs a deterministic mixed PLF workload (edge walks, full
// traversals, branch optimisations) and returns the final lnL and the
// resulting branch lengths.
func workload(tb testing.TB, e *plf.Engine, tr *tree.Tree) (float64, []float64) {
	tb.Helper()
	if _, err := e.LogLikelihood(); err != nil {
		tb.Fatal(err)
	}
	for _, edge := range tr.Edges {
		if _, err := e.LogLikelihoodAt(edge); err != nil {
			tb.Fatal(err)
		}
	}
	for pass := 0; pass < 2; pass++ {
		for _, edge := range tr.Edges {
			if _, err := e.OptimizeBranch(edge); err != nil {
				tb.Fatal(err)
			}
		}
	}
	if err := e.FullTraversal(tr.Edges[0]); err != nil {
		tb.Fatal(err)
	}
	lnl, err := e.LogLikelihoodAt(tr.Edges[0])
	if err != nil {
		tb.Fatal(err)
	}
	lens := make([]float64, len(tr.Edges))
	for i, edge := range tr.Edges {
		lens[i] = edge.Length
	}
	return lnl, lens
}

func strategyFor(name string, n int, tr *tree.Tree, seed int64) ooc.Strategy {
	switch name {
	case "RAND":
		return ooc.NewRandom(rand.New(rand.NewSource(seed)))
	case "LRU":
		return ooc.NewLRU(n)
	case "LFU":
		return ooc.NewLFU(n)
	case "Topological":
		return ooc.NewTopological(tr)
	}
	panic("unknown strategy " + name)
}

func TestOOCMatchesInMemoryAllStrategiesAndFractions(t *testing.T) {
	const n, sites = 24, 120
	for _, strategyName := range []string{"RAND", "LRU", "LFU", "Topological"} {
		for _, f := range []float64{0.25, 0.5, 0.75} {
			for _, readSkip := range []bool{false, true} {
				name := strategyName + "/f=" +
					map[float64]string{0.25: "0.25", 0.5: "0.50", 0.75: "0.75"}[f]
				if readSkip {
					name += "/skip"
				}
				t.Run(name, func(t *testing.T) {
					// Standard run.
					trA, patsA, mA := buildCase(t, n, sites, 99)
					std := plf.NewInMemoryProvider(trA.NumInner(), plf.VectorLength(mA, patsA.NumPatterns()))
					eA, err := plf.New(trA, patsA, mA, std)
					if err != nil {
						t.Fatal(err)
					}
					wantLnl, wantLens := workload(t, eA, trA)

					// Out-of-core run on an identical problem instance.
					trB, patsB, mB := buildCase(t, n, sites, 99)
					vecLen := plf.VectorLength(mB, patsB.NumPatterns())
					mgr, err := ooc.NewManager(ooc.Config{
						NumVectors:   trB.NumInner(),
						VectorLen:    vecLen,
						Slots:        ooc.SlotsForFraction(f, trB.NumInner()),
						Strategy:     strategyFor(strategyName, trB.NumInner(), trB, 7),
						ReadSkipping: readSkip,
						Store:        ooc.NewMemStore(trB.NumInner(), vecLen),
					})
					if err != nil {
						t.Fatal(err)
					}
					eB, err := plf.New(trB, patsB, mB, mgr)
					if err != nil {
						t.Fatal(err)
					}
					gotLnl, gotLens := workload(t, eB, trB)

					if gotLnl != wantLnl {
						t.Errorf("lnL differs: ooc %v vs standard %v", gotLnl, wantLnl)
					}
					for i := range wantLens {
						if gotLens[i] != wantLens[i] {
							t.Errorf("branch %d length differs: %v vs %v", i, gotLens[i], wantLens[i])
						}
					}
					st := mgr.Stats()
					if f < 1 && st.Misses == 0 {
						t.Error("workload never missed; the test exercised nothing")
					}
					if err := mgr.CheckInvariants(); err != nil {
						t.Error(err)
					}
				})
			}
		}
	}
}

func TestOOCWithRealFileStore(t *testing.T) {
	const n, sites = 16, 80
	trA, patsA, mA := buildCase(t, n, sites, 5)
	std := plf.NewInMemoryProvider(trA.NumInner(), plf.VectorLength(mA, patsA.NumPatterns()))
	eA, err := plf.New(trA, patsA, mA, std)
	if err != nil {
		t.Fatal(err)
	}
	wantLnl, _ := workload(t, eA, trA)

	trB, patsB, mB := buildCase(t, n, sites, 5)
	vecLen := plf.VectorLength(mB, patsB.NumPatterns())
	store, err := ooc.NewFileStore(filepath.Join(t.TempDir(), "anc.bin"), trB.NumInner(), vecLen)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   trB.NumInner(),
		VectorLen:    vecLen,
		Slots:        ooc.MinSlots, // hardest case: only 3 vectors in RAM
		Strategy:     ooc.NewLRU(trB.NumInner()),
		ReadSkipping: true,
		Store:        store,
	})
	if err != nil {
		t.Fatal(err)
	}
	eB, err := plf.New(trB, patsB, mB, mgr)
	if err != nil {
		t.Fatal(err)
	}
	gotLnl, _ := workload(t, eB, trB)
	if gotLnl != wantLnl {
		t.Errorf("file-backed ooc lnL %v differs from standard %v", gotLnl, wantLnl)
	}
	if mgr.Stats().MissRate() <= 0 {
		t.Error("MinSlots run should have a substantial miss rate")
	}
}

func TestOOCWriteBackDirtyCorrect(t *testing.T) {
	const n, sites = 16, 60
	trA, patsA, mA := buildCase(t, n, sites, 11)
	std := plf.NewInMemoryProvider(trA.NumInner(), plf.VectorLength(mA, patsA.NumPatterns()))
	eA, err := plf.New(trA, patsA, mA, std)
	if err != nil {
		t.Fatal(err)
	}
	wantLnl, _ := workload(t, eA, trA)

	trB, patsB, mB := buildCase(t, n, sites, 11)
	vecLen := plf.VectorLength(mB, patsB.NumPatterns())
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   trB.NumInner(),
		VectorLen:    vecLen,
		Slots:        ooc.SlotsForFraction(0.3, trB.NumInner()),
		Strategy:     ooc.NewLRU(trB.NumInner()),
		ReadSkipping: true,
		WriteBack:    ooc.WriteBackDirty,
		Store:        ooc.NewMemStore(trB.NumInner(), vecLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	eB, err := plf.New(trB, patsB, mB, mgr)
	if err != nil {
		t.Fatal(err)
	}
	gotLnl, _ := workload(t, eB, trB)
	if gotLnl != wantLnl {
		t.Errorf("WriteBackDirty lnL %v differs from standard %v", gotLnl, wantLnl)
	}
	st := mgr.Stats()
	if st.SkippedWrites == 0 {
		t.Error("dirty-tracking never skipped a write; ablation is vacuous")
	}
}

func TestMissRateDecreasesWithMoreSlots(t *testing.T) {
	// Monotonicity backbone of Figure 2/4: more RAM, fewer misses.
	const n, sites = 32, 100
	rates := make([]float64, 0, 4)
	var lastMisses, lastInner int64
	for _, f := range []float64{0.1, 0.25, 0.5, 1.0} {
		tr, pats, m := buildCase(t, n, sites, 21)
		vecLen := plf.VectorLength(m, pats.NumPatterns())
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: tr.NumInner(), VectorLen: vecLen,
			Slots:    ooc.SlotsForFraction(f, tr.NumInner()),
			Strategy: ooc.NewLRU(tr.NumInner()),
			Store:    ooc.NewMemStore(tr.NumInner(), vecLen),
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := plf.New(tr, pats, m, mgr)
		if err != nil {
			t.Fatal(err)
		}
		workload(t, e, tr)
		rates = append(rates, mgr.Stats().MissRate())
		lastMisses = mgr.Stats().Misses
		lastInner = int64(tr.NumInner())
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] > rates[i-1]+1e-9 {
			t.Fatalf("miss rate not monotone: %v", rates)
		}
	}
	// f = 1: exactly one cold miss per vector, nothing more.
	if lastMisses != lastInner {
		t.Errorf("f=1 should miss once per vector: %d misses for %d vectors", lastMisses, lastInner)
	}
	if math.Abs(rates[0]) < 1e-9 {
		t.Error("f=0.1 should miss substantially")
	}
}

func TestOOCProteinData(t *testing.T) {
	// The 20-state path through the manager: same exactness criterion.
	rng := rand.New(rand.NewSource(61))
	names := make([]string, 10)
	for i := range names {
		names[i] = "p" + string(rune('a'+i))
	}
	trA, err := tree.RandomTopology(names, rng, 0.05, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	a := bio.NewAlignment(bio.NewAAAlphabet())
	letters := "ARNDCQEGHILKMFPSTWYV"
	for _, name := range names {
		var sb strings.Builder
		for j := 0; j < 50; j++ {
			sb.WriteByte(letters[rng.Intn(20)])
		}
		if err := a.AddString(name, sb.String()); err != nil {
			t.Fatal(err)
		}
	}
	pats, err := bio.Compress(a)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.NewJC(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetGamma(0.9, 4); err != nil {
		t.Fatal(err)
	}
	vecLen := plf.VectorLength(m, pats.NumPatterns())
	trB := trA.Clone() // clone before the standard workload mutates branch lengths

	std := plf.NewInMemoryProvider(trA.NumInner(), vecLen)
	eA, err := plf.New(trA, pats, m, std)
	if err != nil {
		t.Fatal(err)
	}
	wantLnl, _ := workload(t, eA, trA)
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   trB.NumInner(),
		VectorLen:    vecLen,
		Slots:        ooc.MinSlots,
		Strategy:     ooc.NewLRU(trB.NumInner()),
		ReadSkipping: true,
		Store:        ooc.NewMemStore(trB.NumInner(), vecLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	eB, err := plf.New(trB, pats, m.Clone(), mgr)
	if err != nil {
		t.Fatal(err)
	}
	gotLnl, _ := workload(t, eB, trB)
	if gotLnl != wantLnl {
		t.Errorf("protein ooc lnL %v differs from standard %v", gotLnl, wantLnl)
	}
	if mgr.Stats().Misses == 0 {
		t.Error("MinSlots protein run should miss")
	}
}
