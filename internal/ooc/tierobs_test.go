package ooc

import (
	"runtime"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/obs"
)

// TestInstrumentTieredStore checks that the mirrored tier counters and
// the native remote-latency histogram land on a registry snapshot.
func TestInstrumentTieredStore(t *testing.T) {
	const n, vecLen = 12, 8
	ts, _, _ := newTierFixture(t, n, vecLen, 4, 1,
		iosim.Device{Latency: 2 * time.Millisecond, Bandwidth: 1e9})
	defer ts.Close()
	reg := obs.NewRegistry()
	InstrumentTieredStore(reg, ts)

	for vi := 0; vi < n; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	// Read back newest-first: the last writes still sit in the 4-slot
	// cache (hits), the rest come back from the remote tier (misses).
	buf := make([]float64, vecLen)
	for vi := n - 1; vi >= 0; vi-- {
		if err := ts.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Sync(); err != nil {
		t.Fatal(err)
	}

	s := reg.Snapshot()
	st := ts.Stats()
	for name, want := range map[string]int64{
		"tier.cache_hits":             st.CacheHits,
		"tier.cache_misses":           st.CacheMisses,
		"tier.remote_reads":           st.RemoteReads,
		"tier.remote_writes":          st.RemoteWrites,
		"tier.remote_vectors_read":    st.RemoteVectorsRead,
		"tier.bytes_fetched":          st.BytesFetched,
		"tier.bytes_from_cache":       st.BytesFromCache,
		"tier.coalesced":              st.Coalesced,
		"tier.evictions":              st.Evictions,
		"tier.dirty_writebacks":       st.DirtyWritebacks,
		"tier.remote_vectors_written": st.RemoteVectorsWritten,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if st.RemoteReads == 0 || st.CacheHits == 0 {
		t.Fatalf("workload produced no tier traffic: %+v", st)
	}
	h, ok := s.Histograms["tier.remote_seconds"]
	if !ok || h.Count == 0 {
		t.Errorf("remote latency histogram empty: ok=%v count=%d", ok, h.Count)
	}
	// Every remote request (reads, eviction write-backs, sync pushes)
	// must have been observed exactly once.
	if want := st.RemoteReads + st.RemoteWrites; h.Count != want {
		t.Errorf("histogram count %d, want %d remote requests", h.Count, want)
	}
	if g := s.FloatGauges["tier.est_rtt_seconds"]; g <= 0 {
		t.Errorf("tier.est_rtt_seconds = %v, want > 0", g)
	}
}

// TestManagerSyncWritesAndTierBudget exercises the manager-level tier
// hooks: SyncWrites makes Flush durable through the tier (index written,
// remote pushed), FetchCost distinguishes resident/cached/remote, and
// MemOverheadBytes feeds the watchdog's effective budget.
func TestManagerSyncWritesAndTierBudget(t *testing.T) {
	const n, vecLen = 16, 8
	ts, srv, _ := newTierFixture(t, n, vecLen, 8, 1, iosim.Device{})
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vecLen, Slots: 4,
		Strategy: NewLRU(n), Store: ts, SyncWrites: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < n; vi++ {
		v, err := m.Vector(vi, true)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			v[j] = float64(vi)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	// SyncWrites drove the tier's Sync: every vector is on the remote.
	if got, want := srv.Size("vec"), int64(n*vecLen*8); got != want {
		t.Errorf("remote object size %d, want %d", got, want)
	}

	// Resident vectors are free; non-resident ones cost the tier's view
	// (cached → local, truly remote → positive estimate).
	var resident, absent int
	for vi := 0; vi < n; vi++ {
		d, rem := m.FetchCost(vi)
		if m.Resident(vi) {
			resident++
			if rem || d != 0 {
				t.Errorf("resident vector %d FetchCost = (%v, %v)", vi, d, rem)
			}
		} else {
			absent++
		}
	}
	if resident == 0 || absent == 0 {
		t.Fatalf("expected a mix of resident and evicted vectors: %d/%d", resident, absent)
	}
	if m.MemOverheadBytes() <= 0 {
		t.Error("a tiered store must report cache-tier overhead")
	}

	// The watchdog charges that overhead against its soft budget: with
	// budget - overhead pushed below HeapAlloc, a shrink fires even
	// though HeapAlloc alone sits under SoftBudget.
	overhead := m.MemOverheadBytes()
	wd, err := NewWatchdog(m, WatchdogConfig{
		SoftBudget: overhead + 1000,
		CheckEvery: 1,
		ReadMem: func(ms *runtime.MemStats) {
			ms.HeapAlloc = 1500 // > budget-overhead, < budget
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := wd.Check(); err != nil {
		t.Fatal(err)
	}
	if ws := wd.Stats(); ws.Shrinks != 1 {
		t.Errorf("watchdog ignored store overhead: %+v", ws)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
}
