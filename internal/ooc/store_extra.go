package ooc

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
)

// Float32FileStore persists ancestral vectors in single precision,
// halving file size and transfer volume — the storage-side counterpart
// of the single-precision-arithmetic memory reduction the paper cites
// (Berger & Stamatakis 2010) as a complementary technique. Values
// round-trip through float32, so likelihoods computed over this store
// are approximations (typically agreeing to ~6 significant digits);
// the paper's bit-exactness criterion applies only to the default
// double-precision stores.
type Float32FileStore struct {
	f      *os.File
	vecLen int
	n      int
	// codecs pools per-call conversion buffers so concurrent pipeline
	// workers never share scratch space.
	codecs sync.Pool
}

// NewFloat32FileStore creates (truncating) a single-precision backing
// file for numVectors vectors of vecLen float64s each.
func NewFloat32FileStore(path string, numVectors, vecLen int) (*Float32FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: creating float32 backing file: %w", err)
	}
	if err := f.Truncate(int64(numVectors) * int64(vecLen) * 4); err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: sizing float32 backing file: %w", err)
	}
	s := &Float32FileStore{f: f, vecLen: vecLen, n: numVectors}
	s.codecs.New = func() any {
		b := make([]byte, vecLen*4)
		return &b
	}
	return s, nil
}

// ReadVector implements Store, widening float32 to float64.
func (s *Float32FileStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: float32 store read out of range: %d", vi)
	}
	if len(dst) != s.vecLen {
		return fmt.Errorf("ooc: float32 store read size %d, want %d", len(dst), s.vecLen)
	}
	bp := s.codecs.Get().(*[]byte)
	defer s.codecs.Put(bp)
	buf := *bp
	if _, err := s.f.ReadAt(buf, int64(vi)*int64(s.vecLen)*4); err != nil {
		return fmt.Errorf("ooc: reading vector %d: %w", vi, err)
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
	}
	return nil
}

// WriteVector implements Store, narrowing float64 to float32.
func (s *Float32FileStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: float32 store write out of range: %d", vi)
	}
	if len(src) != s.vecLen {
		return fmt.Errorf("ooc: float32 store write size %d, want %d", len(src), s.vecLen)
	}
	bp := s.codecs.Get().(*[]byte)
	defer s.codecs.Put(bp)
	buf := *bp
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
	}
	if _, err := s.f.WriteAt(buf, int64(vi)*int64(s.vecLen)*4); err != nil {
		return fmt.Errorf("ooc: writing vector %d: %w", vi, err)
	}
	return nil
}

// Close implements Store.
func (s *Float32FileStore) Close() error { return s.f.Close() }

// TieredStore is the paper's §5 three-layer vision in store form: a
// bounded fast tier (think accelerator or NVRAM) in front of a large
// slow tier (disk). Reads hit the fast tier when possible; writes land
// in the fast tier, demoting the least-recently-touched vector to the
// slow tier when full. Combined with SimStore wrappers carrying
// different device models, it prices RAM ⇄ accelerator ⇄ disk
// hierarchies. A mutex over the placement map makes it safe for the
// concurrent distinct-vector calls the async pipeline issues (tier
// bookkeeping is shared state even when the vectors are distinct).
type TieredStore struct {
	fast, slow Store
	capacity   int

	mu sync.Mutex
	// inFast maps vector -> recency stamp (0 = not in fast tier).
	inFast map[int]int64
	now    int64

	// FastHits and SlowReads count where reads were served.
	FastHits, SlowReads int64
	// Demotions counts vectors pushed from fast to slow.
	Demotions int64
}

// NewTieredStore layers fast (holding at most capacity vectors) over
// slow. Both stores must be sized for the full vector count, because
// any vector may live in either tier over its lifetime.
func NewTieredStore(fast, slow Store, capacity int) (*TieredStore, error) {
	if capacity < 1 {
		return nil, fmt.Errorf("ooc: tiered store capacity %d < 1", capacity)
	}
	return &TieredStore{fast: fast, slow: slow, capacity: capacity, inFast: make(map[int]int64)}, nil
}

// ReadVector implements Store.
func (t *TieredStore) ReadVector(vi int, dst []float64) error {
	t.mu.Lock()
	if stamp := t.inFast[vi]; stamp != 0 {
		t.now++
		t.inFast[vi] = t.now
		t.FastHits++
		t.mu.Unlock()
		return t.fast.ReadVector(vi, dst)
	}
	t.SlowReads++
	t.mu.Unlock()
	return t.slow.ReadVector(vi, dst)
}

// WriteVector implements Store: writes land in the fast tier, demoting
// the stalest resident if the tier is full. The mutex is held across
// the demotion so the placement map always reflects the tier contents.
func (t *TieredStore) WriteVector(vi int, src []float64) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.inFast[vi] == 0 && len(t.inFast) >= t.capacity {
		// Demote the least recently touched fast-tier vector.
		victim, oldest := -1, int64(math.MaxInt64)
		for v, stamp := range t.inFast {
			if stamp < oldest {
				victim, oldest = v, stamp
			}
		}
		buf := make([]float64, len(src))
		if err := t.fast.ReadVector(victim, buf); err != nil {
			return err
		}
		if err := t.slow.WriteVector(victim, buf); err != nil {
			return err
		}
		delete(t.inFast, victim)
		t.Demotions++
	}
	t.now++
	t.inFast[vi] = t.now
	return t.fast.WriteVector(vi, src)
}

// Close implements Store; it closes both tiers.
func (t *TieredStore) Close() error {
	err1 := t.fast.Close()
	err2 := t.slow.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
