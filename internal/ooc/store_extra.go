package ooc

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"
)

// Float32FileStore persists ancestral vectors in single precision,
// halving file size and transfer volume — the storage-side counterpart
// of the single-precision-arithmetic memory reduction the paper cites
// (Berger & Stamatakis 2010) as a complementary technique. Values
// round-trip through float32, so likelihoods computed over this store
// are approximations (typically agreeing to ~6 significant digits);
// the paper's bit-exactness criterion applies only to the default
// double-precision stores.
type Float32FileStore struct {
	f      *os.File
	vecLen int
	n      int
	// codecs pools per-call conversion buffers so concurrent pipeline
	// workers never share scratch space.
	codecs sync.Pool
}

// NewFloat32FileStore creates (truncating) a single-precision backing
// file for numVectors vectors of vecLen float64s each.
func NewFloat32FileStore(path string, numVectors, vecLen int) (*Float32FileStore, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: creating float32 backing file: %w", err)
	}
	if err := f.Truncate(int64(numVectors) * int64(vecLen) * 4); err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: sizing float32 backing file: %w", err)
	}
	s := &Float32FileStore{f: f, vecLen: vecLen, n: numVectors}
	s.codecs.New = func() any {
		b := make([]byte, vecLen*4)
		return &b
	}
	return s, nil
}

// ReadVector implements Store, widening float32 to float64.
func (s *Float32FileStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: float32 store read out of range: %d", vi)
	}
	if len(dst) != s.vecLen {
		return fmt.Errorf("ooc: float32 store read size %d, want %d", len(dst), s.vecLen)
	}
	bp := s.codecs.Get().(*[]byte)
	defer s.codecs.Put(bp)
	buf := *bp
	if _, err := s.f.ReadAt(buf, int64(vi)*int64(s.vecLen)*4); err != nil {
		return fmt.Errorf("ooc: reading vector %d: %w", vi, err)
	}
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
	}
	return nil
}

// WriteVector implements Store, narrowing float64 to float32.
func (s *Float32FileStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: float32 store write out of range: %d", vi)
	}
	if len(src) != s.vecLen {
		return fmt.Errorf("ooc: float32 store write size %d, want %d", len(src), s.vecLen)
	}
	bp := s.codecs.Get().(*[]byte)
	defer s.codecs.Put(bp)
	buf := *bp
	for i, v := range src {
		binary.LittleEndian.PutUint32(buf[i*4:], math.Float32bits(float32(v)))
	}
	if _, err := s.f.WriteAt(buf, int64(vi)*int64(s.vecLen)*4); err != nil {
		return fmt.Errorf("ooc: writing vector %d: %w", vi, err)
	}
	return nil
}

// Close implements Store.
func (s *Float32FileStore) Close() error { return s.f.Close() }
