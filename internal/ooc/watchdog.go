package ooc

// Memory watchdog — a live, adaptive version of the paper's f knob.
// The paper picks the RAM fraction f once, before the run; on a shared
// machine the honest budget moves while a multi-day inference is in
// flight. The watchdog samples the Go heap between newview calls (the
// engine's safe points, where no vector address is held across the
// call) and steps the manager's slot count down when the process
// overshoots its soft budget — trading I/O for survival instead of
// OOMing — and back up when pressure clears.
//
// The watchdog is deliberately passive: it only acts when its Check
// method is called from the compute goroutine, so every Resize happens
// between operations and the bit-identical guarantee of Resize holds.

import (
	"errors"
	"runtime"
	"sync"
)

// WatchdogConfig configures a memory Watchdog.
type WatchdogConfig struct {
	// SoftBudget is the heap budget in bytes the watchdog steers
	// HeapAlloc towards; required (> 0).
	SoftBudget int64
	// MinSlots and MaxSlots clamp the slot counts the watchdog may
	// request. Defaults: the package floor MinSlots, and the manager's
	// slot count at NewWatchdog time.
	MinSlots, MaxSlots int
	// ShrinkFraction is the slot fraction dropped per over-budget
	// sample (default 0.25); GrowFraction the fraction regained per
	// under-budget sample (default 0.125 — growing back cautiously
	// avoids shrink/grow thrash).
	ShrinkFraction, GrowFraction float64
	// GrowBelow is the hysteresis gate: the pool regrows only while
	// HeapAlloc < GrowBelow*SoftBudget (default 0.5).
	GrowBelow float64
	// CheckEvery is the number of Check calls per ReadMemStats sample
	// (default 64): reading mem stats stops the world briefly, so it
	// must not run on every newview.
	CheckEvery int
	// ReadMem is the sampling function, replaceable in tests to script
	// heap trajectories (default runtime.ReadMemStats).
	ReadMem func(*runtime.MemStats)
}

// WatchdogStats describes the watchdog's activity so far.
type WatchdogStats struct {
	// Samples counts ReadMemStats samples taken.
	Samples int64
	// Shrinks and Grows count the Resize calls issued per direction.
	Shrinks, Grows int64
	// Failures counts Resize calls that returned an error (e.g. a pool
	// frozen by Close, or a pinned set the target cannot hold). The
	// sample is still recorded, so a failed step is visible rather than
	// silently freezing Samples/LastHeap/Slots.
	Failures int64
	// LastHeap is HeapAlloc at the latest sample.
	LastHeap uint64
	// Slots is the pool size after the latest sample.
	Slots int
}

// Watchdog steps a Manager's slot pool down/up to keep the process
// near a soft heap budget. Check must be called from the manager's
// single API goroutine (the engine's safe-point hook does); Stats may
// be read from any goroutine.
type Watchdog struct {
	mgr   *Manager
	cfg   WatchdogConfig
	calls int

	mu    sync.Mutex
	stats WatchdogStats
}

// NewWatchdog validates cfg and binds a watchdog to mgr. The manager's
// current slot count becomes the default MaxSlots (the watchdog never
// grows beyond what the operator originally granted).
func NewWatchdog(mgr *Manager, cfg WatchdogConfig) (*Watchdog, error) {
	if mgr == nil {
		return nil, errors.New("ooc: watchdog needs a manager")
	}
	if cfg.SoftBudget <= 0 {
		return nil, errors.New("ooc: watchdog needs a positive soft budget")
	}
	if cfg.MinSlots < MinSlots {
		cfg.MinSlots = MinSlots
	}
	if cfg.MaxSlots <= 0 {
		cfg.MaxSlots = mgr.Slots()
	}
	if cfg.MaxSlots < cfg.MinSlots {
		cfg.MaxSlots = cfg.MinSlots
	}
	if cfg.ShrinkFraction <= 0 || cfg.ShrinkFraction >= 1 {
		cfg.ShrinkFraction = 0.25
	}
	if cfg.GrowFraction <= 0 || cfg.GrowFraction >= 1 {
		cfg.GrowFraction = 0.125
	}
	if cfg.GrowBelow <= 0 || cfg.GrowBelow >= 1 {
		cfg.GrowBelow = 0.5
	}
	if cfg.CheckEvery <= 0 {
		cfg.CheckEvery = 64
	}
	if cfg.ReadMem == nil {
		cfg.ReadMem = runtime.ReadMemStats
	}
	return &Watchdog{mgr: mgr, cfg: cfg}, nil
}

// Check is the safe-point hook: every CheckEvery-th call samples the
// heap and, when the budget is overshot (or comfortably clear), steps
// the slot pool. pinned is forwarded to Resize so a shrink never
// evicts the caller's working set.
func (w *Watchdog) Check(pinned ...int) error {
	w.calls++
	if w.calls < w.cfg.CheckEvery {
		return nil
	}
	w.calls = 0
	var ms runtime.MemStats
	w.cfg.ReadMem(&ms)
	cur := w.mgr.Slots()
	// The store tier's bookkeeping (cache index, in-flight remote
	// buffers) lives on the same heap but is not the watchdog's to
	// reclaim — shrinking slots cannot free it. Charge it against the
	// budget so the slot pool absorbs the squeeze, flooring at a small
	// positive budget so a pathological overhead report cannot wedge
	// the comparison.
	budget := w.cfg.SoftBudget - w.mgr.MemOverheadBytes()
	if budget < 1 {
		budget = 1
	}
	target := cur
	switch {
	case int64(ms.HeapAlloc) > budget && cur > w.cfg.MinSlots:
		target = cur - step(cur, w.cfg.ShrinkFraction)
		if target < w.cfg.MinSlots {
			target = w.cfg.MinSlots
		}
		// The pinned working set bounds how far one step may go.
		if target <= len(pinned) {
			target = len(pinned) + 1
		}
		if target >= cur {
			target = cur
		}
	case float64(ms.HeapAlloc) < w.cfg.GrowBelow*float64(budget) && cur < w.cfg.MaxSlots:
		target = cur + step(cur, w.cfg.GrowFraction)
		if target > w.cfg.MaxSlots {
			target = w.cfg.MaxSlots
		}
	}
	// Record the sample before propagating any Resize error: a failed
	// step must advance Samples/LastHeap and report the pool size the
	// manager actually has, not the target it never reached.
	var rerr error
	applied := cur
	if target != cur {
		if rerr = w.mgr.Resize(target, pinned...); rerr == nil {
			applied = target
		}
	}
	w.mu.Lock()
	w.stats.Samples++
	w.stats.LastHeap = ms.HeapAlloc
	w.stats.Slots = applied
	switch {
	case rerr != nil:
		w.stats.Failures++
	case target < cur:
		w.stats.Shrinks++
	case target > cur:
		w.stats.Grows++
	}
	w.mu.Unlock()
	return rerr
}

// step returns a whole-slot step of at least 1 for the given fraction.
func step(cur int, frac float64) int {
	s := int(float64(cur) * frac)
	if s < 1 {
		s = 1
	}
	return s
}

// Stats returns a snapshot of the watchdog's activity. Safe from any
// goroutine.
func (w *Watchdog) Stats() WatchdogStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}
