package ooc

// Additional replacement strategies beyond the paper's four. FIFO and
// CLOCK are the classic low-overhead policies the paper's Related Work
// alludes to via the cache/paging literature; they slot into the same
// Strategy interface and are exercised by the ablation benchmarks.

// FIFOStrategy evicts the vector that was faulted in first, ignoring
// recency of use entirely.
type FIFOStrategy struct {
	seq  []int64
	next int64
}

// NewFIFO returns a FIFO strategy for numItems vectors.
func NewFIFO(numItems int) *FIFOStrategy {
	return &FIFOStrategy{seq: make([]int64, numItems)}
}

// Name implements Strategy.
func (s *FIFOStrategy) Name() string { return "FIFO" }

// Touch implements Strategy: only the first touch after an eviction
// (re-entry) matters; the manager calls Touch on every access, so FIFO
// records the sequence number only when the item has none.
func (s *FIFOStrategy) Touch(item int) {
	if s.seq[item] == 0 {
		s.next++
		s.seq[item] = s.next
	}
}

// PickVictim implements Strategy: oldest entry sequence wins. The
// victim's sequence is cleared so a re-fault re-stamps it.
func (s *FIFOStrategy) PickVictim(candidates []int, _ int) int {
	best := 0
	for i, it := range candidates {
		if s.seq[it] < s.seq[candidates[best]] {
			best = i
		}
	}
	s.seq[candidates[best]] = 0
	return best
}

// Reset implements Strategy.
func (s *FIFOStrategy) Reset() {
	for i := range s.seq {
		s.seq[i] = 0
	}
	s.next = 0
}

// ClockStrategy implements the second-chance (CLOCK) approximation of
// LRU: a reference bit per item, cleared as the clock hand sweeps.
type ClockStrategy struct {
	ref  []bool
	hand int
}

// NewClock returns a CLOCK strategy for numItems vectors.
func NewClock(numItems int) *ClockStrategy {
	return &ClockStrategy{ref: make([]bool, numItems)}
}

// Name implements Strategy.
func (s *ClockStrategy) Name() string { return "CLOCK" }

// Touch implements Strategy.
func (s *ClockStrategy) Touch(item int) { s.ref[item] = true }

// PickVictim implements Strategy: sweep the candidate list (treated as
// the circular buffer) from the remembered hand position, clearing
// reference bits until an unreferenced item is found.
func (s *ClockStrategy) PickVictim(candidates []int, _ int) int {
	n := len(candidates)
	if s.hand >= n {
		s.hand = 0
	}
	for sweep := 0; sweep < 2*n; sweep++ {
		i := (s.hand + sweep) % n
		it := candidates[i]
		if !s.ref[it] {
			s.hand = (i + 1) % n
			return i
		}
		s.ref[it] = false
	}
	// All referenced twice over (cannot happen: the first pass cleared
	// them); fall back to the hand position.
	return s.hand % n
}

// Reset implements Strategy.
func (s *ClockStrategy) Reset() {
	for i := range s.ref {
		s.ref[i] = false
	}
	s.hand = 0
}
