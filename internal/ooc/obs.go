package ooc

// Observability wiring for the out-of-core manager and its async
// pipeline. Instrument attaches registry instruments and a trace ring;
// an uninstrumented manager holds nil instruments, so every obs call
// on the hot path degrades to a nil-check no-op and no clock is read.
//
// Two kinds of signals are exported:
//
//   - Native: quantities only observable in the act — fault-in /
//     eviction / background-I/O latencies (histograms), live queue
//     depth (gauge) and the vector-lifecycle trace events.
//   - Mirrored: the Stats/PrefetchStats/PipelineStats counters the
//     manager maintains anyway. A registry publisher copies them into
//     counters on every snapshot, so they are live on the debug
//     endpoint at zero hot-path cost. The snapshot getters take the
//     stats mutex, so a mid-operation snapshot can never tear a
//     counter group (see Manager.mu).
//
// Call Instrument before issuing any manager operation: pipeline
// workers pick the instruments up through the happens-before edge of
// the first request enqueue.

import (
	"fmt"
	"strings"
	"time"

	"oocphylo/internal/obs"
)

// Trace lane assignment: the compute thread is lane 0, background
// fetch workers are lanes 1..IOWorkers, the write-back worker is lane
// IOWorkers+1.
const computeLane = 0

// managerObs holds the manager's native instruments. The zero value
// (all nil, on=false) is the uninstrumented state.
type managerObs struct {
	// on gates the time.Now() calls that build spans.
	on     bool
	tracer *obs.Tracer
	// faultIn observes the full demand-miss path: slot selection,
	// eviction and the store read (or its skip).
	faultIn *obs.Histogram
	// evictWrite observes synchronous eviction write-backs (the async
	// pipeline's write latency lands in pipe.write_back_seconds).
	evictWrite *obs.Histogram
	// evictions counts evictions under the configured strategy (the
	// instrument name carries the strategy, e.g. "ooc.evictions_lru").
	evictions *obs.Counter
	// slots tracks the live slot-pool size; Resize moves it at runtime.
	slots *obs.Gauge
}

// Instrument attaches reg and tr to the manager (either may be nil).
// Must be called before the first Vector/Prefetch/Flush operation and
// at most once; later calls are ignored.
func (m *Manager) Instrument(reg *obs.Registry, tr *obs.Tracer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.mx.on || (reg == nil && tr == nil) {
		return
	}
	m.mx = managerObs{
		on:         true,
		tracer:     tr,
		faultIn:    reg.Histogram("ooc.fault_in_seconds", nil),
		evictWrite: reg.Histogram("ooc.evict_write_seconds", nil),
		evictions:  reg.Counter("ooc.evictions_" + strings.ToLower(m.cfg.Strategy.Name())),
		slots:      reg.Gauge("ooc.slots"),
	}
	m.mx.slots.Set(int64(len(m.slots)))
	reg.SetInfo("ooc.strategy", m.cfg.Strategy.Name())
	reg.SetInfo("ooc.geometry", fmt.Sprintf("%d slots / %d vectors x %d doubles",
		len(m.slots), m.cfg.NumVectors, m.cfg.VectorLen))
	tr.SetLaneName(computeLane, "compute")
	if m.pipe != nil {
		m.pipe.instrument(reg, tr, m.cfg.IOWorkers)
	}
	m.addStatsPublisher(reg)
}

// addStatsPublisher mirrors the manager's counter groups into the
// registry on every snapshot. Counters are pre-resolved here so the
// publisher itself takes no registry locks.
func (m *Manager) addStatsPublisher(reg *obs.Registry) {
	if reg == nil {
		return
	}
	type mirrors struct {
		requests, hits, misses, reads, skippedReads  *obs.Counter
		writes, skippedWrites, bytesRead, bytesWrite *obs.Counter
		pfIssued, pfReads, pfHits, pfWasted          *obs.Counter
		fetchesQ, writesQ, joined, wqHits            *obs.Counter
		overlapped, depthMax, retries                *obs.Counter
		corrupt, dropped                             *obs.Counter
		grows, shrinks, resizeEvict                  *obs.Counter
		stall, joinWait, bufWait                     *obs.FloatGauge
	}
	c := mirrors{
		requests:      reg.Counter("ooc.requests"),
		hits:          reg.Counter("ooc.hits"),
		misses:        reg.Counter("ooc.misses"),
		reads:         reg.Counter("ooc.reads"),
		skippedReads:  reg.Counter("ooc.skipped_reads"),
		writes:        reg.Counter("ooc.writes"),
		skippedWrites: reg.Counter("ooc.skipped_writes"),
		bytesRead:     reg.Counter("ooc.bytes_read"),
		bytesWrite:    reg.Counter("ooc.bytes_written"),
		pfIssued:      reg.Counter("ooc.prefetch_issued"),
		pfReads:       reg.Counter("ooc.prefetch_reads"),
		pfHits:        reg.Counter("ooc.prefetch_hits"),
		pfWasted:      reg.Counter("ooc.prefetch_wasted"),
		fetchesQ:      reg.Counter("pipe.fetches_queued"),
		writesQ:       reg.Counter("pipe.writes_queued"),
		joined:        reg.Counter("pipe.joined_fetches"),
		wqHits:        reg.Counter("pipe.write_queue_hits"),
		overlapped:    reg.Counter("pipe.overlapped_bytes"),
		depthMax:      reg.Counter("pipe.queue_depth_max"),
		retries:       reg.Counter("ooc.retries"),
		corrupt:       reg.Counter("ooc.corrupt_reads"),
		dropped:       reg.Counter("ooc.dropped_writebacks"),
		grows:         reg.Counter("ooc.resize_grows"),
		shrinks:       reg.Counter("ooc.resize_shrinks"),
		resizeEvict:   reg.Counter("ooc.resize_evictions"),
		stall:         reg.FloatGauge("pipe.stall_seconds"),
		joinWait:      reg.FloatGauge("pipe.join_wait_seconds"),
		bufWait:       reg.FloatGauge("pipe.buffer_wait_seconds"),
	}
	reg.AddPublisher(func() {
		st := m.Stats()
		pf := m.PrefetchStats()
		ps := m.PipelineStats()
		rs := m.ResizeStats()
		c.grows.Set(rs.Grows)
		c.shrinks.Set(rs.Shrinks)
		c.resizeEvict.Set(rs.Evictions)
		c.requests.Set(st.Requests)
		c.hits.Set(st.Hits)
		c.misses.Set(st.Misses)
		c.reads.Set(st.Reads)
		c.skippedReads.Set(st.SkippedReads)
		c.writes.Set(st.Writes)
		c.skippedWrites.Set(st.SkippedWrites)
		c.bytesRead.Set(st.BytesRead)
		c.bytesWrite.Set(st.BytesWritten)
		c.pfIssued.Set(pf.Issued)
		c.pfReads.Set(pf.Reads)
		c.pfHits.Set(pf.Hits)
		c.pfWasted.Set(pf.Wasted)
		c.fetchesQ.Set(ps.FetchesQueued)
		c.writesQ.Set(ps.WritesQueued)
		c.joined.Set(ps.JoinedFetches)
		c.wqHits.Set(ps.WriteQueueHits)
		c.overlapped.Set(ps.OverlappedBytes)
		c.depthMax.Set(ps.QueueDepthMax)
		c.retries.Set(ps.Retries)
		c.corrupt.Set(ps.CorruptReads)
		c.dropped.Set(ps.DroppedWritebacks)
		c.stall.Set(ps.StallTime.Seconds())
		c.joinWait.Set(ps.JoinWait.Seconds())
		c.bufWait.Set(ps.BufferWait.Seconds())
	})
}

// traceSpan emits one manager-side trace event. now is the span start;
// callers obtain it only when m.mx.on is set.
func (m *Manager) traceSpan(op obs.EventOp, vi, slot int, start time.Time, dur time.Duration) {
	m.mx.tracer.Emit(op, computeLane, int32(vi), int32(slot), start, dur)
}

// InstrumentTieredStore exports a tiered store's per-tier counters and
// remote latency to the registry. Counters (hits, misses, bytes per
// tier, coalesce/single-flight wins, evictions) follow the mirrored
// pattern — a publisher copies the TierStats snapshot on every debug
// scrape. Remote request latency is a native histogram fed per request
// from the fetch lanes and write-back paths, so the debug endpoint
// reports p50/p90/p99 round-trip times.
func InstrumentTieredStore(reg *obs.Registry, ts *TieredStore) {
	InstrumentTieredStoreAs(reg, ts, "tier.")
}

// InstrumentTieredStoreAs is InstrumentTieredStore with a caller-chosen
// name prefix, so hosts with several tiered stores (one per service
// session) keep their counters apart.
func InstrumentTieredStoreAs(reg *obs.Registry, ts *TieredStore, prefix string) {
	if reg == nil || ts == nil {
		return
	}
	type mirrors struct {
		cacheHits, cacheMisses, remoteReads, remoteWrites *obs.Counter
		remoteVecsR, remoteVecsW                          *obs.Counter
		bytesCache, bytesFetched, bytesPushed             *obs.Counter
		coalesced, singleFlight                           *obs.Counter
		evictions, dirtyWB                                *obs.Counter
		remoteErrors, remoteRetries                       *obs.Counter
		breakerOpens, shortCircuits                       *obs.Counter
		hedges, hedgeWins                                 *obs.Counter
		journalHits, journalAppends, journalReplayed      *obs.Counter
		journalDepth, journalBytes, degraded              *obs.Gauge
		breakerState                                      *obs.Gauge
		estRTT                                            *obs.FloatGauge
	}
	c := mirrors{
		cacheHits:    reg.Counter(prefix + "cache_hits"),
		cacheMisses:  reg.Counter(prefix + "cache_misses"),
		remoteReads:  reg.Counter(prefix + "remote_reads"),
		remoteWrites: reg.Counter(prefix + "remote_writes"),
		remoteVecsR:  reg.Counter(prefix + "remote_vectors_read"),
		remoteVecsW:  reg.Counter(prefix + "remote_vectors_written"),
		bytesCache:   reg.Counter(prefix + "bytes_from_cache"),
		bytesFetched: reg.Counter(prefix + "bytes_fetched"),
		bytesPushed:  reg.Counter(prefix + "bytes_pushed"),
		coalesced:    reg.Counter(prefix + "coalesced"),
		singleFlight: reg.Counter(prefix + "single_flight"),
		evictions:    reg.Counter(prefix + "evictions"),
		dirtyWB:      reg.Counter(prefix + "dirty_writebacks"),
		remoteErrors:    reg.Counter(prefix + "remote_errors"),
		remoteRetries:   reg.Counter(prefix + "remote_retries"),
		breakerOpens:    reg.Counter(prefix + "breaker_opens"),
		shortCircuits:   reg.Counter(prefix + "short_circuits"),
		hedges:          reg.Counter(prefix + "hedges"),
		hedgeWins:       reg.Counter(prefix + "hedge_wins"),
		journalHits:     reg.Counter(prefix + "journal_hits"),
		journalAppends:  reg.Counter(prefix + "journal_appends"),
		journalReplayed: reg.Counter(prefix + "journal_replayed"),
		journalDepth:    reg.Gauge(prefix + "journal_depth"),
		breakerState:    reg.Gauge(prefix + "breaker_state"),
		journalBytes:    reg.Gauge(prefix + "journal_bytes"),
		degraded:        reg.Gauge(prefix + "degraded"),
		estRTT:          reg.FloatGauge(prefix + "est_rtt_seconds"),
	}
	reg.AddPublisher(func() {
		st := ts.Stats()
		c.cacheHits.Set(st.CacheHits)
		c.cacheMisses.Set(st.CacheMisses)
		c.remoteReads.Set(st.RemoteReads)
		c.remoteWrites.Set(st.RemoteWrites)
		c.remoteVecsR.Set(st.RemoteVectorsRead)
		c.remoteVecsW.Set(st.RemoteVectorsWritten)
		c.bytesCache.Set(st.BytesFromCache)
		c.bytesFetched.Set(st.BytesFetched)
		c.bytesPushed.Set(st.BytesPushed)
		c.coalesced.Set(st.Coalesced)
		c.singleFlight.Set(st.SingleFlight)
		c.evictions.Set(st.Evictions)
		c.dirtyWB.Set(st.DirtyWritebacks)
		c.remoteErrors.Set(st.RemoteErrors)
		c.remoteRetries.Set(st.RemoteRetries)
		c.breakerOpens.Set(st.BreakerOpens)
		c.shortCircuits.Set(st.ShortCircuits)
		c.hedges.Set(st.Hedges)
		c.hedgeWins.Set(st.HedgeWins)
		c.journalHits.Set(st.JournalHits)
		c.journalAppends.Set(st.JournalAppends)
		c.journalReplayed.Set(st.JournalReplayed)
		c.journalDepth.Set(st.JournalDepth)
		c.journalBytes.Set(st.JournalBytes)
		// Breaker position as a numeric gauge (0 closed, 1 open,
		// 2 half-open) so dashboards can alert on transitions.
		if b := ts.Breaker(); b != nil {
			c.breakerState.Set(int64(b.State()))
		}
		if st.Degraded {
			c.degraded.Set(1)
		} else {
			c.degraded.Set(0)
		}
		c.estRTT.Set(st.EstRTT.Seconds())
	})
	if ts.Breaker() != nil {
		reg.SetInfo(prefix+"breaker", "enabled")
	}
	h := reg.Histogram(prefix+"remote_seconds", nil)
	ts.ObserveRemoteLatency(h.Observe)
	if ts.WarmStart() {
		reg.SetInfo(prefix+"warm_start", "true")
	}
}

// InstrumentChecksumStore mirrors a checksum store's verification
// counter into the registry (the store sits below the manager and has
// no reference to it).
func InstrumentChecksumStore(reg *obs.Registry, cs *ChecksumStore) {
	if reg == nil || cs == nil {
		return
	}
	c := reg.Counter("ooc.checksum_corrupt_reads")
	reg.AddPublisher(func() { c.Set(cs.CorruptReads()) })
}
