package ooc

// The asynchronous I/O pipeline — the paper's §5 future work ("we will
// assess if pre-fetching can be deployed by means of a prefetch
// thread") made real. The synchronous manager interleaves compute and
// I/O on one thread: every demand miss blocks on Store.ReadVector and
// every eviction blocks on Store.WriteVector. The pipeline moves both
// off the compute thread:
//
//   - Prefetch stage-ins are executed by a pool of fetch worker
//     goroutines fed from a bounded queue. The slot is mapped (and the
//     replacement strategy updated) synchronously, so all *decisions*
//     are identical to the synchronous manager; only the byte transfer
//     overlaps compute. A demand access that arrives before the fetch
//     completes joins the in-flight read instead of re-issuing it.
//   - Evictions hand the victim's buffer to a single write-back
//     goroutine and patch a spare buffer from a small pool into the
//     slot, returning immediately. The compute thread blocks only when
//     every spare is already in the write queue.
//
// Correctness bar: the pipeline may change WHEN I/O happens, never
// WHAT is computed. All slot mapping, eviction choices, strategy
// bookkeeping and Stats counters run on the compute goroutine in the
// exact order of the synchronous manager, so log-likelihoods are
// bit-identical and miss accounting is unchanged. Consistency rules:
//
//   - Read-after-write: a read of a vector whose write-back is still
//     queued is served from the queued buffer, never from the stale
//     store region (readThrough).
//   - Write-write: a single writer goroutine drains the queue FIFO, so
//     two queued writes to the same vector land in issue order.
//   - Fetch-evict: evicting a slot whose stage-in is in flight first
//     joins the fetch, so a buffer is never written back (or reused)
//     while a worker is still filling it.
//   - Flush/Close barrier: Flush joins every in-flight fetch and
//     drains the write queue before writing residents, so the store
//     ends in exactly the state a synchronous run would leave.
//
// The Manager remains single-caller: the pipeline adds goroutines
// *inside* the manager, not concurrency on its API.

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"oocphylo/internal/obs"
)

// PipelineStats counts the asynchronous pipeline's activity. All
// quantities are maintained on the compute thread or read atomically;
// read them via Manager.PipelineStats after the workload (they are a
// snapshot, not synchronized with in-flight work).
type PipelineStats struct {
	// Enabled reports whether the manager ran with the async pipeline.
	Enabled bool
	// FetchesQueued and WritesQueued count background operations
	// handed to the workers.
	FetchesQueued, WritesQueued int64
	// JoinedFetches counts demand accesses that waited on an in-flight
	// background fetch instead of issuing their own read.
	JoinedFetches int64
	// WriteQueueHits counts reads served from a queued write-back
	// buffer (the read-after-write consistency path).
	WriteQueueHits int64
	// OverlappedBytes totals the bytes moved by background goroutines —
	// I/O that a synchronous manager would have charged to the compute
	// thread.
	OverlappedBytes int64
	// StallTime is the total time the compute thread spent blocked on
	// I/O: synchronous store calls on the demand path, waits for
	// in-flight fetches (JoinWait), waits for a spare write-back buffer
	// (BufferWait) and Flush/Close barriers. The synchronous manager
	// fills this too, so sync-vs-async stall is directly comparable.
	StallTime time.Duration
	// JoinWait is the portion of StallTime spent joining fetches.
	JoinWait time.Duration
	// BufferWait is the portion spent waiting for a spare buffer.
	BufferWait time.Duration
	// QueueDepthMax is the high-water mark of simultaneously queued
	// background operations (fetches + writes).
	QueueDepthMax int64
	// Retries counts transient-I/O retries taken by the manager's
	// retry policy, across the sync demand path and both worker kinds.
	Retries int64
	// CorruptReads counts checksum-verification failures surfaced to
	// the manager (each one either aborted the access or triggered a
	// recompute upstream).
	CorruptReads int64
	// DroppedWritebacks counts evictions that discarded the slot
	// instead of writing it back because the victim's stage-in never
	// delivered valid data (writing the buffer back would have
	// clobbered the store's authoritative copy).
	DroppedWritebacks int64
}

// fetchReq is one background stage-in: the worker fills dst with
// vector vi and closes done. The slot owning dst is reserved by the
// compute thread before the request is queued and is not touched again
// until the request is joined.
type fetchReq struct {
	vi   int
	dst  []float64
	err  error
	done chan struct{}
}

// writeReq is one queued write-back. buf is a former slot buffer; it
// returns to the spare pool only after the write lands and the request
// is retired from the pending map, so readers can always copy from it.
type writeReq struct {
	vi   int
	buf  []float64
	done chan struct{}
}

// pipeline owns the background goroutines and the queues between them
// and the compute thread.
type pipeline struct {
	store  Store
	vecLen int

	fetchCh chan *fetchReq
	writeCh chan *writeReq
	// spares holds the buffers not currently patched into a slot;
	// exactly cap(spares) buffers circulate, so the writer's return
	// send can never block.
	spares chan []float64

	mu        sync.Mutex
	pending   map[int]*writeReq // vi -> newest queued write
	lastWrite *writeReq
	firstErr  error

	depth      atomic.Int64
	depthMax   atomic.Int64
	overlapped atomic.Int64
	wqHits     atomic.Int64

	retry   RetryPolicy
	retried *atomic.Int64

	// Observability instruments; all nil (and on false) when
	// uninstrumented. Written once by instrument() on the compute thread
	// BEFORE the first request is enqueued; workers read them only while
	// servicing a request, so the channel send/receive provides the
	// happens-before edge.
	on       bool
	fetchLat *obs.Histogram
	writeLat *obs.Histogram
	qdepth   *obs.Gauge
	tracer   *obs.Tracer
	// writerTID is the write-back goroutine's trace lane (fetch workers
	// are lanes 1..workers; see obs.go).
	writerTID int32

	wg   sync.WaitGroup
	stop sync.Once
}

func newPipeline(store Store, vecLen, workers, queue, spareBufs int, retry RetryPolicy, retried *atomic.Int64) *pipeline {
	p := &pipeline{
		store:   store,
		vecLen:  vecLen,
		fetchCh: make(chan *fetchReq, queue),
		writeCh: make(chan *writeReq, spareBufs),
		spares:  make(chan []float64, spareBufs),
		pending: make(map[int]*writeReq),
		retry:   retry,
		retried: retried,
	}
	p.writerTID = int32(workers + 1)
	for i := 0; i < spareBufs; i++ {
		p.spares <- make([]float64, vecLen)
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.fetchWorker(int32(i + 1))
	}
	p.wg.Add(1)
	go p.writeWorker()
	return p
}

// instrument attaches registry instruments and trace lanes. Must run on
// the compute thread before any request is enqueued (the workers pick
// the fields up through the enqueue's happens-before edge).
func (p *pipeline) instrument(reg *obs.Registry, tr *obs.Tracer, workers int) {
	p.on = true
	p.fetchLat = reg.Histogram("pipe.fetch_seconds", nil)
	p.writeLat = reg.Histogram("pipe.write_back_seconds", nil)
	p.qdepth = reg.Gauge("pipe.queue_depth")
	p.tracer = tr
	for i := 1; i <= workers; i++ {
		tr.SetLaneName(int32(i), fmt.Sprintf("io-fetch-%d", i))
	}
	tr.SetLaneName(p.writerTID, "io-writer")
}

func (p *pipeline) fetchWorker(tid int32) {
	defer p.wg.Done()
	for req := range p.fetchCh {
		var start time.Time
		if p.on {
			start = time.Now()
		}
		req.err = p.retry.run(p.retried, func() error {
			return p.readThrough(req.vi, req.dst)
		})
		// A fetch error is delivered to the compute thread via the
		// join, which decides whether it is fatal (it may instead
		// trigger a recompute for a corrupt vector) — it must NOT
		// poison the pipeline's sticky firstErr, or one recovered
		// corruption would fail every later write-back barrier.
		if req.err == nil {
			p.overlapped.Add(int64(len(req.dst)) * 8)
		}
		if p.on {
			dur := time.Since(start)
			p.fetchLat.Observe(dur.Seconds())
			p.tracer.Emit(obs.OpFetch, tid, int32(req.vi), -1, start, dur)
		}
		p.qdepth.Set(p.depth.Add(-1))
		close(req.done)
	}
}

func (p *pipeline) writeWorker() {
	defer p.wg.Done()
	for req := range p.writeCh {
		var start time.Time
		if p.on {
			start = time.Now()
		}
		err := p.retry.run(p.retried, func() error {
			return p.store.WriteVector(req.vi, req.buf)
		})
		if err != nil {
			// Unlike fetches, a lost write-back has no joiner to
			// report to: the sticky error is the only escalation path.
			p.noteErr(err)
		} else {
			p.overlapped.Add(int64(len(req.buf)) * 8)
		}
		if p.on {
			dur := time.Since(start)
			p.writeLat.Observe(dur.Seconds())
			p.tracer.Emit(obs.OpWriteBack, p.writerTID, int32(req.vi), -1, start, dur)
		}
		p.mu.Lock()
		// Retire only if no newer write superseded this one.
		if p.pending[req.vi] == req {
			delete(p.pending, req.vi)
		}
		p.mu.Unlock()
		p.qdepth.Set(p.depth.Add(-1))
		close(req.done)
		p.spares <- req.buf
	}
}

// readThrough reads vector vi honouring read-after-write consistency:
// a vector still in the write queue is served from its queued buffer,
// never from the (stale) store region. Safe from both fetch workers
// and the compute thread's demand path.
func (p *pipeline) readThrough(vi int, dst []float64) error {
	p.mu.Lock()
	if w, ok := p.pending[vi]; ok {
		copy(dst, w.buf)
		p.mu.Unlock()
		p.wqHits.Add(1)
		return nil
	}
	p.mu.Unlock()
	return p.store.ReadVector(vi, dst)
}

// enqueueFetch queues a background stage-in of vi into dst. Blocks
// only when the bounded fetch queue is full; a non-nil cancelled ctx
// aborts that wait and returns ctx's error with no request queued.
func (p *pipeline) enqueueFetch(ctx context.Context, vi int, dst []float64) (*fetchReq, error) {
	req := &fetchReq{vi: vi, dst: dst, done: make(chan struct{})}
	p.bumpDepth()
	if ctx == nil {
		p.fetchCh <- req
		return req, nil
	}
	select {
	case p.fetchCh <- req:
		return req, nil
	default:
	}
	select {
	case p.fetchCh <- req:
		return req, nil
	case <-ctx.Done():
		p.qdepth.Set(p.depth.Add(-1))
		return nil, ctx.Err()
	}
}

// enqueueWrite queues buf as the newest content of vector vi. The
// caller has already removed buf from the slot array.
func (p *pipeline) enqueueWrite(vi int, buf []float64) {
	req := &writeReq{vi: vi, buf: buf, done: make(chan struct{})}
	p.mu.Lock()
	p.pending[vi] = req
	p.lastWrite = req
	p.mu.Unlock()
	p.bumpDepth()
	p.writeCh <- req
}

// acquireSpare blocks until a spare buffer is available. A non-nil
// cancelled ctx aborts the wait (a spare that is ready is still
// preferred over the cancellation, keeping evictions deterministic
// under light load).
func (p *pipeline) acquireSpare(ctx context.Context) ([]float64, error) {
	if ctx == nil {
		return <-p.spares, nil
	}
	select {
	case b := <-p.spares:
		return b, nil
	default:
	}
	select {
	case b := <-p.spares:
		return b, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// barrier blocks until every write queued so far has reached the
// store, then reports the first background error (if any).
func (p *pipeline) barrier() error {
	p.mu.Lock()
	last := p.lastWrite
	p.mu.Unlock()
	if last != nil {
		<-last.done
	}
	return p.err()
}

// shutdown stops all workers after draining both queues.
func (p *pipeline) shutdown() error {
	p.stop.Do(func() {
		close(p.fetchCh)
		close(p.writeCh)
	})
	p.wg.Wait()
	return p.err()
}

func (p *pipeline) bumpDepth() {
	d := p.depth.Add(1)
	p.qdepth.Set(d)
	for {
		max := p.depthMax.Load()
		if d <= max || p.depthMax.CompareAndSwap(max, d) {
			return
		}
	}
}

func (p *pipeline) noteErr(err error) {
	p.mu.Lock()
	if p.firstErr == nil {
		p.firstErr = err
	}
	p.mu.Unlock()
}

func (p *pipeline) err() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.firstErr
}
