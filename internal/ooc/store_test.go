package ooc

import (
	"math"
	"path/filepath"
	"testing"
	"time"

	"oocphylo/internal/iosim"
)

func TestMemStoreRoundTrip(t *testing.T) {
	s := NewMemStore(3, 4)
	src := []float64{1.5, -2.25, math.Pi, 0}
	if err := s.WriteVector(1, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	if err := s.ReadVector(1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Fatalf("round trip lost data: %v", dst)
		}
	}
	// Unwritten vectors read as zeros.
	if err := s.ReadVector(2, dst); err != nil {
		t.Fatal(err)
	}
	for _, v := range dst {
		if v != 0 {
			t.Fatal("fresh vector not zero")
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemStoreErrors(t *testing.T) {
	s := NewMemStore(2, 3)
	buf := make([]float64, 3)
	if err := s.ReadVector(2, buf); err == nil {
		t.Error("out of range read must fail")
	}
	if err := s.WriteVector(-1, buf); err == nil {
		t.Error("negative write must fail")
	}
	if err := s.ReadVector(0, make([]float64, 2)); err == nil {
		t.Error("wrong size read must fail")
	}
	if err := s.WriteVector(0, make([]float64, 4)); err == nil {
		t.Error("wrong size write must fail")
	}
}

func TestFileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "vectors.bin")
	s, err := NewFileStore(path, 5, 6)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for vi := 0; vi < 5; vi++ {
		src := make([]float64, 6)
		for j := range src {
			src[j] = float64(vi) + float64(j)/10 + 1e-9
		}
		if err := s.WriteVector(vi, src); err != nil {
			t.Fatal(err)
		}
	}
	for vi := 4; vi >= 0; vi-- {
		dst := make([]float64, 6)
		if err := s.ReadVector(vi, dst); err != nil {
			t.Fatal(err)
		}
		for j := range dst {
			want := float64(vi) + float64(j)/10 + 1e-9
			if dst[j] != want {
				t.Fatalf("vector %d pos %d: %v != %v", vi, j, dst[j], want)
			}
		}
	}
	// Special values survive the binary encoding.
	special := []float64{math.Inf(1), math.Inf(-1), 0, math.Copysign(0, -1), math.SmallestNonzeroFloat64, math.MaxFloat64}
	if err := s.WriteVector(2, special); err != nil {
		t.Fatal(err)
	}
	back := make([]float64, 6)
	if err := s.ReadVector(2, back); err != nil {
		t.Fatal(err)
	}
	for i := range special {
		if back[i] != special[i] {
			t.Fatalf("special value %v lost: %v", special[i], back[i])
		}
	}
}

func TestFileStoreErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "v.bin")
	s, err := NewFileStore(path, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]float64, 3)
	if err := s.ReadVector(5, buf); err == nil {
		t.Error("out of range must fail")
	}
	if err := s.WriteVector(0, make([]float64, 2)); err == nil {
		t.Error("short write must fail")
	}
	if _, err := NewFileStore(filepath.Join(t.TempDir(), "no", "such", "dir", "f"), 2, 3); err == nil {
		t.Error("uncreatable path must fail")
	}
}

func TestMultiFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "multi")
	s, err := NewMultiFileStore(path, 3, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for vi := 0; vi < 10; vi++ {
		src := []float64{float64(vi), 1, 2, 3}
		if err := s.WriteVector(vi, src); err != nil {
			t.Fatal(err)
		}
	}
	dst := make([]float64, 4)
	for vi := 0; vi < 10; vi++ {
		if err := s.ReadVector(vi, dst); err != nil {
			t.Fatal(err)
		}
		if dst[0] != float64(vi) {
			t.Fatalf("vector %d corrupted: %v", vi, dst)
		}
	}
	if _, err := NewMultiFileStore(path, 0, 10, 4); err == nil {
		t.Error("zero files must fail")
	}
}

func TestSimStoreChargesClock(t *testing.T) {
	var clock iosim.Clock
	dev := iosim.Device{Name: "test", Latency: time.Millisecond, Bandwidth: 8e6} // 1 MB = 125ms
	s := NewSimStore(NewMemStore(4, 1000), dev, &clock)
	defer s.Close()
	buf := make([]float64, 1000) // 8000 bytes -> 1ms + 1ms transfer
	if err := s.WriteVector(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := s.ReadVector(0, buf); err != nil {
		t.Fatal(err)
	}
	if clock.Ops() != 2 || clock.Bytes() != 16000 {
		t.Errorf("clock ledger wrong: %s", clock.String())
	}
	want := 2 * (time.Millisecond + time.Millisecond)
	if d := clock.Elapsed() - want; d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("elapsed %v, want ~%v", clock.Elapsed(), want)
	}
	clock.Reset()
	if clock.Elapsed() != 0 || clock.Ops() != 0 {
		t.Error("reset failed")
	}
}

func TestDevicePresetsAndTransferTime(t *testing.T) {
	hdd, ssd := iosim.HDD(), iosim.SSD()
	if hdd.TransferTime(1<<20) <= ssd.TransferTime(1<<20) {
		t.Error("HDD must be slower than SSD")
	}
	if hdd.TransferTime(0) != hdd.Latency {
		t.Error("zero-byte transfer costs exactly the latency")
	}
	if hdd.TransferTime(-5) != hdd.Latency {
		t.Error("negative sizes clamp to zero")
	}
	big := hdd.TransferTime(1 << 30)
	small := hdd.TransferTime(1 << 10)
	if big <= small {
		t.Error("transfer time must grow with size")
	}
}
