package ooc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"oocphylo/internal/tree"
)

func testManager(t *testing.T, n, vecLen, slots int, strat Strategy, readSkip bool) *Manager {
	t.Helper()
	m, err := NewManager(Config{
		NumVectors:   n,
		VectorLen:    vecLen,
		Slots:        slots,
		Strategy:     strat,
		ReadSkipping: readSkip,
		Store:        NewMemStore(n, vecLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestManagerBasicHitMiss(t *testing.T) {
	m := testManager(t, 10, 4, 3, NewLRU(10), false)
	// First touch: miss.
	v, err := m.Vector(0, true)
	if err != nil {
		t.Fatal(err)
	}
	copy(v, []float64{1, 2, 3, 4})
	// Second touch: hit, data intact.
	v2, err := m.Vector(0, false)
	if err != nil {
		t.Fatal(err)
	}
	if v2[2] != 3 {
		t.Error("hit returned wrong data")
	}
	st := m.Stats()
	if st.Requests != 2 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats: %+v", st)
	}
	if !m.Resident(0) || m.Resident(5) {
		t.Error("residency wrong")
	}
}

func TestManagerSwapRoundTrip(t *testing.T) {
	// Fill all vectors with distinct data, then cycle them through 3
	// slots; every readback must match.
	n, vl := 12, 6
	m := testManager(t, n, vl, 3, NewLRU(n), false)
	for vi := 0; vi < n; vi++ {
		v, err := m.Vector(vi, true)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			v[j] = float64(vi*100 + j)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		vi := rng.Intn(n)
		v, err := m.Vector(vi, false)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			if v[j] != float64(vi*100+j) {
				t.Fatalf("vector %d corrupted at %d: %v", vi, j, v[j])
			}
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
	if m.Stats().Misses == 0 {
		t.Error("workload should have missed")
	}
}

func TestPinningExcludesFromEviction(t *testing.T) {
	m := testManager(t, 10, 2, 3, NewLRU(10), false)
	// Make 0, 1, 2 resident (0 is LRU-oldest).
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	// Fault 5 with 0 pinned: the LRU victim would be 0, but the pin must
	// divert eviction to 1.
	if _, err := m.Vector(5, true, 0); err != nil {
		t.Fatal(err)
	}
	if !m.Resident(0) {
		t.Error("pinned vector was evicted")
	}
	if m.Resident(1) {
		t.Error("expected 1 to be the diverted victim")
	}
}

func TestAllPinnedError(t *testing.T) {
	m := testManager(t, 10, 2, 3, NewLRU(10), false)
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Vector(7, true, 0, 1, 2); err != ErrAllPinned {
		t.Errorf("expected ErrAllPinned, got %v", err)
	}
}

func TestReadSkipping(t *testing.T) {
	n, vl := 8, 4
	withSkip := testManager(t, n, vl, 3, NewLRU(n), true)
	without := testManager(t, n, vl, 3, NewLRU(n), false)
	drive := func(m *Manager) Stats {
		for round := 0; round < 5; round++ {
			for vi := 0; vi < n; vi++ {
				if _, err := m.Vector(vi, true); err != nil { // write-intent
					t.Fatal(err)
				}
			}
		}
		return m.Stats()
	}
	a, b := drive(withSkip), drive(without)
	if a.Misses != b.Misses {
		t.Errorf("read skipping must not change miss behaviour: %d vs %d", a.Misses, b.Misses)
	}
	if a.Reads != 0 {
		t.Errorf("all accesses were write-intent; reads should be 0, got %d", a.Reads)
	}
	if a.SkippedReads != a.Misses {
		t.Errorf("every miss should have skipped its read: %d vs %d", a.SkippedReads, a.Misses)
	}
	if b.Reads != b.Misses {
		t.Errorf("without skipping, reads must equal misses: %d vs %d", b.Reads, b.Misses)
	}
	if a.ReadRate() >= b.ReadRate() {
		t.Error("read skipping should lower the read rate")
	}
}

func TestWriteBackDirtySkipsCleanEvictions(t *testing.T) {
	n, vl := 10, 4
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vl, Slots: 3,
		Strategy:  NewLRU(n),
		WriteBack: WriteBackDirty,
		Store:     NewMemStore(n, vl),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Write all vectors once (forces dirty evictions)...
	for vi := 0; vi < n; vi++ {
		v, _ := m.Vector(vi, true)
		v[0] = float64(vi)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	before := m.Stats().SkippedWrites
	// ...then only read: evictions should now skip the write-back.
	for round := 0; round < 3; round++ {
		for vi := 0; vi < n; vi++ {
			v, err := m.Vector(vi, false)
			if err != nil {
				t.Fatal(err)
			}
			if v[0] != float64(vi) {
				t.Fatalf("vector %d corrupted: %v", vi, v[0])
			}
		}
	}
	if m.Stats().SkippedWrites <= before {
		t.Error("clean evictions should skip write-back under WriteBackDirty")
	}
}

func TestSlotsCappedAtN(t *testing.T) {
	m := testManager(t, 4, 2, 100, NewLRU(4), false)
	if m.Slots() != 4 {
		t.Errorf("slots = %d, want capped at 4", m.Slots())
	}
	// f = 1: never a miss after first touches.
	for round := 0; round < 3; round++ {
		for vi := 0; vi < 4; vi++ {
			if _, err := m.Vector(vi, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := m.Stats(); st.Misses != 4 {
		t.Errorf("with m = n only cold misses occur: %+v", st)
	}
}

func TestConfigValidation(t *testing.T) {
	store := NewMemStore(10, 4)
	if _, err := NewManager(Config{NumVectors: 10, VectorLen: 4, Slots: 2, Strategy: NewLRU(10), Store: store}); err == nil {
		t.Error("slots below MinSlots must fail")
	}
	if _, err := NewManager(Config{NumVectors: 10, VectorLen: 4, Slots: 5, Store: store}); err == nil {
		t.Error("missing strategy must fail")
	}
	if _, err := NewManager(Config{NumVectors: 10, VectorLen: 4, Slots: 5, Strategy: NewLRU(10)}); err == nil {
		t.Error("missing store must fail")
	}
	if _, err := NewManager(Config{NumVectors: 10, VectorLen: 0, Slots: 5, Strategy: NewLRU(10), Store: store}); err == nil {
		t.Error("zero vector length must fail")
	}
	// Tiny trees: slots may be below MinSlots when n itself is smaller.
	if _, err := NewManager(Config{NumVectors: 2, VectorLen: 4, Slots: 2, Strategy: NewLRU(2), Store: NewMemStore(2, 4)}); err != nil {
		t.Errorf("n=2, m=2 should be accepted: %v", err)
	}
}

func TestVectorIndexBounds(t *testing.T) {
	m := testManager(t, 5, 2, 3, NewLRU(5), false)
	if _, err := m.Vector(-1, false); err == nil {
		t.Error("negative index must fail")
	}
	if _, err := m.Vector(5, false); err == nil {
		t.Error("index == n must fail")
	}
}

func TestSlotsForFraction(t *testing.T) {
	cases := []struct {
		f    float64
		n    int
		want int
	}{
		{0.25, 100, 25},
		{0.5, 100, 50},
		{1.0, 100, 100},
		{2.0, 100, 100}, // capped
		{0.001, 100, 3}, // floor at MinSlots
		{0.25, 10, 3},   // rounded then floored
		{0.5, 5, 3},
	}
	for _, c := range cases {
		if got := SlotsForFraction(c.f, c.n); got != c.want {
			t.Errorf("SlotsForFraction(%v, %d) = %d, want %d", c.f, c.n, got, c.want)
		}
	}
}

func TestRandomisedOpsKeepInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		slots := MinSlots + rng.Intn(n)
		var strat Strategy
		switch rng.Intn(3) {
		case 0:
			strat = NewRandom(rand.New(rand.NewSource(seed ^ 1)))
		case 1:
			strat = NewLRU(n)
		default:
			strat = NewLFU(n)
		}
		m, err := NewManager(Config{
			NumVectors: n, VectorLen: 3, Slots: slots,
			Strategy:     strat,
			ReadSkipping: rng.Intn(2) == 0,
			WriteBack:    WriteBackPolicy(rng.Intn(2)),
			Store:        NewMemStore(n, 3),
		})
		if err != nil {
			return false
		}
		shadow := make([][]float64, n) // reference copy of all content
		for i := range shadow {
			shadow[i] = make([]float64, 3)
		}
		written := make([]bool, n)
		for op := 0; op < 300; op++ {
			vi := rng.Intn(n)
			write := rng.Intn(2) == 0
			var pins []int
			for p := 0; p < rng.Intn(2); p++ {
				pins = append(pins, rng.Intn(n))
			}
			v, err := m.Vector(vi, write, pins...)
			if err != nil {
				return false
			}
			if written[vi] && !write {
				for j := range v {
					if v[j] != shadow[vi][j] {
						return false
					}
				}
			}
			if write {
				for j := range v {
					v[j] = float64(op*10 + j)
					shadow[vi][j] = v[j]
				}
				written[vi] = true
			}
			if m.CheckInvariants() != nil {
				return false
			}
		}
		st := m.Stats()
		return st.Hits+st.Misses == st.Requests
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTopologicalStrategyPicksFarthest(t *testing.T) {
	// Caterpillar tree: distances along the spine are unambiguous.
	tr, err := tree.ParseNewick("(((((a:1,b:1):1,c:1):1,d:1):1,e:1):1,f:1,g:1);")
	if err != nil {
		t.Fatal(err)
	}
	s := NewTopological(tr)
	// Vector indices 0..NumInner-1 map to nodes NumTips...
	// Request the vector of the innermost node (index 0 among inner) and
	// offer all others: the farthest must win.
	nInner := tr.NumInner()
	candidates := make([]int, 0, nInner-1)
	for vi := 1; vi < nInner; vi++ {
		candidates = append(candidates, vi)
	}
	pick := s.PickVictim(candidates, 0)
	chosen := candidates[pick]
	reqNode := tr.Nodes[tr.NumTips]
	dist := tree.NodeDistances(tr, reqNode)
	for _, c := range candidates {
		if dist[c+tr.NumTips] > dist[chosen+tr.NumTips] {
			t.Fatalf("strategy picked %d (d=%d) but %d is farther (d=%d)",
				chosen, dist[chosen+tr.NumTips], c, dist[c+tr.NumTips])
		}
	}
	if s.Name() != "Topological" {
		t.Error("name wrong")
	}
}

func TestLRUStrategyEvictsOldest(t *testing.T) {
	s := NewLRU(5)
	s.Touch(0)
	s.Touch(1)
	s.Touch(2)
	s.Touch(0) // refresh 0; oldest is now 1
	if v := s.PickVictim([]int{0, 1, 2}, 4); v != 1 {
		t.Errorf("LRU picked index %d, want 1 (item 1)", v)
	}
	s.Reset()
	s.Touch(2)
	if v := s.PickVictim([]int{0, 2}, 4); v != 0 {
		t.Errorf("after reset, untouched 0 is oldest; picked %d", v)
	}
}

func TestLFUStrategyEvictsLeastFrequent(t *testing.T) {
	s := NewLFU(5)
	for i := 0; i < 5; i++ {
		s.Touch(0)
	}
	s.Touch(1)
	s.Touch(2)
	s.Touch(2)
	if v := s.PickVictim([]int{0, 1, 2}, 4); v != 1 {
		t.Errorf("LFU picked index %d, want 1", v)
	}
	s.Reset()
	if s.freq[0] != 0 {
		t.Error("reset did not clear frequencies")
	}
}

func TestRandomStrategyIsSeedDeterministic(t *testing.T) {
	a := NewRandom(rand.New(rand.NewSource(9)))
	b := NewRandom(rand.New(rand.NewSource(9)))
	cand := []int{3, 5, 7, 9, 11}
	for i := 0; i < 50; i++ {
		if a.PickVictim(cand, 0) != b.PickVictim(cand, 0) {
			t.Fatal("same seed must give identical choices")
		}
	}
}
