package ooc_test

import (
	"testing"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
)

// TestPrefetchIntegration verifies the §5 future-work prefetcher end to
// end: plan-driven prefetching must not change any result, and on a
// full-traversal workload it must convert a substantial share of
// blocking demand misses into prefetch hits (misses a prefetch thread
// would overlap with compute).
func TestPrefetchIntegration(t *testing.T) {
	run := func(prefetch bool) (float64, ooc.Stats, ooc.PrefetchStats) {
		tr, pats, m := buildCase(t, 32, 120, 17)
		vecLen := plf.VectorLength(m, pats.NumPatterns())
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: tr.NumInner(),
			VectorLen:  vecLen,
			Slots:      ooc.SlotsForFraction(0.25, tr.NumInner()),
			Strategy:   ooc.NewLRU(tr.NumInner()),
			// Read skipping off so every demand miss costs a read — the
			// cleanest view of what prefetching converts.
			ReadSkipping: false,
			Store:        ooc.NewMemStore(tr.NumInner(), vecLen),
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := plf.New(tr, pats, m, mgr)
		if err != nil {
			t.Fatal(err)
		}
		e.EnablePrefetch(prefetch)
		var lnl float64
		for i := 0; i < 4; i++ {
			if err := e.FullTraversal(tr.Edges[0]); err != nil {
				t.Fatal(err)
			}
			lnl, err = e.LogLikelihoodAt(tr.Edges[0])
			if err != nil {
				t.Fatal(err)
			}
		}
		return lnl, mgr.Stats(), mgr.PrefetchStats()
	}

	plainLnl, plainStats, _ := run(false)
	pfLnl, pfStats, pf := run(true)

	if plainLnl != pfLnl {
		t.Fatalf("prefetching changed the likelihood: %v vs %v", plainLnl, pfLnl)
	}
	if pf.Issued == 0 || pf.Hits == 0 {
		t.Fatalf("prefetcher idle: %+v", pf)
	}
	if pfStats.Misses >= plainStats.Misses {
		t.Errorf("prefetching should reduce demand misses: %d vs %d",
			pfStats.Misses, plainStats.Misses)
	}
	// Accounting ties out: hits + wasted + still-resident = issued reads.
	if pf.Hits+pf.Wasted > pf.Reads {
		t.Errorf("prefetch accounting inconsistent: %+v", pf)
	}
}

// TestPrefetchNoopOnInMemoryProvider ensures EnablePrefetch is safe on
// providers that cannot prefetch.
func TestPrefetchNoopOnInMemoryProvider(t *testing.T) {
	tr, pats, m := buildCase(t, 12, 60, 19)
	e, err := plf.New(tr, pats, m,
		plf.NewInMemoryProvider(tr.NumInner(), plf.VectorLength(m, pats.NumPatterns())))
	if err != nil {
		t.Fatal(err)
	}
	e.EnablePrefetch(true)
	if _, err := e.LogLikelihood(); err != nil {
		t.Fatal(err)
	}
}
