package ooc

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// gateStore blocks every WriteVector until the gate channel is closed,
// so tests can hold write-backs in the pipeline's queue and observe the
// read-after-write and barrier behaviour deterministically.
type gateStore struct {
	inner Store
	gate  chan struct{}

	mu     sync.Mutex
	writes []int
}

func (g *gateStore) ReadVector(vi int, dst []float64) error { return g.inner.ReadVector(vi, dst) }

func (g *gateStore) WriteVector(vi int, src []float64) error {
	<-g.gate
	g.mu.Lock()
	g.writes = append(g.writes, vi)
	g.mu.Unlock()
	return g.inner.WriteVector(vi, src)
}

func (g *gateStore) Close() error { return g.inner.Close() }

// TestAsyncFlushBarrierAndReadAfterWrite drives the two consistency
// rules the pipeline promises: a demand read of a vector whose
// write-back is still queued is served from the queued buffer (never
// the stale store), and Flush does not return until every queued write
// has landed.
func TestAsyncFlushBarrierAndReadAfterWrite(t *testing.T) {
	const vecLen = 8
	gate := &gateStore{inner: NewMemStore(4, vecLen), gate: make(chan struct{})}
	m, err := NewManager(Config{
		NumVectors: 4, VectorLen: vecLen, Slots: 3,
		Strategy: NewLRU(4), Store: gate,
		Async: true, IOWorkers: 1, WriteBuffers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fill := func(vi int) {
		t.Helper()
		buf, err := m.Vector(vi, true)
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			buf[i] = float64(vi + 1)
		}
	}
	fill(0)
	fill(1)
	fill(2)
	// Vector 3 misses; LRU evicts 0, whose dirty buffer enters the write
	// queue and blocks on the gate.
	fill(3)
	// Demand read of 0: its write-back has not landed (the store still
	// holds zeros), so the pipeline must serve it from the queued buffer.
	buf, err := m.Vector(0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range buf {
		if v != 1 {
			t.Fatalf("read-after-write served stale data: slot[%d] = %v, want 1", i, v)
		}
	}
	ps := m.PipelineStats()
	if ps.WriteQueueHits < 1 {
		t.Errorf("expected the demand read to hit the write queue, stats: %+v", ps)
	}
	if ps.WritesQueued != 2 {
		t.Errorf("expected 2 queued write-backs (vectors 0 and 1), got %d", ps.WritesQueued)
	}

	// Flush is a barrier: it must not return while the gate holds the
	// queued writes in the store.
	done := make(chan error, 1)
	go func() { done <- m.Flush() }()
	select {
	case <-done:
		t.Fatal("Flush returned before the queued write-backs reached the store")
	case <-time.After(50 * time.Millisecond):
	}
	close(gate.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	// The store must now hold every vector's final value: the queued
	// writes (0, 1) landed before the resident flush (0, 2, 3).
	for vi := 0; vi < 4; vi++ {
		dst := make([]float64, vecLen)
		if err := gate.inner.ReadVector(vi, dst); err != nil {
			t.Fatal(err)
		}
		for i, v := range dst {
			if v != float64(vi+1) {
				t.Fatalf("store vector %d[%d] = %v, want %v", vi, i, v, float64(vi+1))
			}
		}
	}
	gate.mu.Lock()
	nw := len(gate.writes)
	gate.mu.Unlock()
	if nw != 5 { // 2 queued evictions + 3 residents at Flush
		t.Errorf("store saw %d writes (%v), want 5", nw, gate.writes)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// failStore fails reads and/or writes on demand.
type failStore struct {
	Store
	failReads, failWrites bool
}

func (f *failStore) ReadVector(vi int, dst []float64) error {
	if f.failReads {
		return fmt.Errorf("injected read failure for %d", vi)
	}
	return f.Store.ReadVector(vi, dst)
}

func (f *failStore) WriteVector(vi int, src []float64) error {
	if f.failWrites {
		return fmt.Errorf("injected write failure for %d", vi)
	}
	return f.Store.WriteVector(vi, src)
}

func TestAsyncBackgroundWriteErrorSurfaces(t *testing.T) {
	const vecLen = 4
	fs := &failStore{Store: NewMemStore(4, vecLen), failWrites: true}
	m, err := NewManager(Config{
		NumVectors: 4, VectorLen: vecLen, Slots: 3,
		Strategy: NewLRU(4), Store: fs, Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	// The eviction itself queues the failing write and returns
	// immediately; the error must surface at the latest by Flush.
	_, _ = m.Vector(3, true)
	if err := m.Flush(); err == nil {
		t.Error("Flush swallowed the background write failure")
	}
	m.Close()
}

func TestAsyncFailedPrefetchUnmapsVector(t *testing.T) {
	const vecLen = 4
	fs := &failStore{Store: NewMemStore(8, vecLen), failReads: true}
	m, err := NewManager(Config{
		NumVectors: 8, VectorLen: vecLen, Slots: 3,
		Strategy: NewLRU(8), Store: fs, Async: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Prefetch(5); err != nil {
		t.Fatalf("prefetch enqueue should not fail: %v", err)
	}
	if _, err := m.Vector(5, false); err == nil {
		t.Fatal("joining a failed background fetch must report the error")
	}
	if m.Resident(5) {
		t.Error("vector 5 remained resident with garbage after a failed fetch")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	m.Close()
}

// TestAsyncMatchesSyncRandomizedOps runs an identical randomised
// operation sequence (reads, read-skipped writes, prefetches) against a
// synchronous and an asynchronous manager and demands identical
// observable behaviour throughout: every read returns the shadow-model
// contents, every counter matches, and the flushed stores agree.
func TestAsyncMatchesSyncRandomizedOps(t *testing.T) {
	const n, vecLen, slots, ops = 32, 16, 8, 3000
	for _, strategyName := range []string{"LRU", "LFU", "RAND", "FIFO"} {
		for _, wb := range []WriteBackPolicy{WriteBackAlways, WriteBackDirty} {
			name := fmt.Sprintf("%s/wb=%d", strategyName, wb)
			t.Run(name, func(t *testing.T) {
				newStrategy := func() Strategy {
					switch strategyName {
					case "LRU":
						return NewLRU(n)
					case "LFU":
						return NewLFU(n)
					case "FIFO":
						return NewFIFO(n)
					default:
						return NewRandom(rand.New(rand.NewSource(1234)))
					}
				}
				run := func(async bool) (*MemStore, Stats, PrefetchStats) {
					store := NewMemStore(n, vecLen)
					m, err := NewManager(Config{
						NumVectors: n, VectorLen: vecLen, Slots: slots,
						Strategy: newStrategy(), ReadSkipping: true, WriteBack: wb,
						Store: store, Async: async, IOWorkers: 3, WriteBuffers: 2,
					})
					if err != nil {
						t.Fatal(err)
					}
					shadow := make([][]float64, n)
					rng := rand.New(rand.NewSource(4321))
					for op := 0; op < ops; op++ {
						vi := rng.Intn(n)
						switch rng.Intn(5) {
						case 0:
							if err := m.Prefetch(vi, rng.Intn(n)); err != nil {
								t.Fatal(err)
							}
						case 1, 2:
							buf, err := m.Vector(vi, true)
							if err != nil {
								t.Fatal(err)
							}
							if shadow[vi] == nil {
								shadow[vi] = make([]float64, vecLen)
							}
							for i := range buf {
								v := float64(op*n+vi) + float64(i)/16
								buf[i] = v
								shadow[vi][i] = v
							}
						default:
							buf, err := m.Vector(vi, false)
							if err != nil {
								t.Fatal(err)
							}
							want := shadow[vi]
							for i := range buf {
								w := 0.0
								if want != nil {
									w = want[i]
								}
								if buf[i] != w {
									t.Fatalf("op %d: vector %d[%d] = %v, want %v (async=%v)",
										op, vi, i, buf[i], w, async)
								}
							}
						}
					}
					if err := m.Flush(); err != nil {
						t.Fatal(err)
					}
					if err := m.Close(); err != nil {
						t.Fatal(err)
					}
					if err := m.CheckInvariants(); err != nil {
						t.Fatal(err)
					}
					return store, m.Stats(), m.PrefetchStats()
				}
				syncStore, syncStats, syncPf := run(false)
				asyncStore, asyncStats, asyncPf := run(true)
				if syncStats != asyncStats {
					t.Errorf("counters diverged:\n sync %+v\nasync %+v", syncStats, asyncStats)
				}
				if syncPf != asyncPf {
					t.Errorf("prefetch counters diverged:\n sync %+v\nasync %+v", syncPf, asyncPf)
				}
				dst1 := make([]float64, vecLen)
				dst2 := make([]float64, vecLen)
				for vi := 0; vi < n; vi++ {
					if err := syncStore.ReadVector(vi, dst1); err != nil {
						t.Fatal(err)
					}
					if err := asyncStore.ReadVector(vi, dst2); err != nil {
						t.Fatal(err)
					}
					for i := range dst1 {
						if dst1[i] != dst2[i] {
							t.Fatalf("flushed stores differ at vector %d[%d]: sync %v, async %v",
								vi, i, dst1[i], dst2[i])
						}
					}
				}
			})
		}
	}
}

func TestPrefetchSkippedDoesNotTouchStrategy(t *testing.T) {
	// The satellite fix: a prefetch skipped because the vector is
	// resident (or because everything is pinned) must leave LRU state
	// untouched, or skipped prefetches would reorder future evictions.
	const n, vecLen = 8, 4
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vecLen, Slots: 3,
		Strategy: NewLRU(n), Store: NewMemStore(n, vecLen),
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	// Vector 0 is the LRU victim. A skipped prefetch of 0 (resident)
	// must not refresh its recency.
	if err := m.Prefetch(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Vector(3, true); err != nil {
		t.Fatal(err)
	}
	if m.Resident(0) {
		t.Error("resident-skip prefetch refreshed LRU recency: vector 0 survived eviction")
	}
	// An all-pinned skip must not register the requested vector either:
	// after the skip, vector 4 must still fault as a plain cold miss and
	// the LRU order of residents must be unchanged.
	for vi := 1; vi < 4; vi++ {
		if _, err := m.Vector(vi, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Prefetch(4, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if m.Resident(4) {
		t.Error("ErrAllPinned prefetch staged a vector anyway")
	}
	if _, err := m.Vector(4, false); err != nil {
		t.Fatal(err)
	}
	if m.Resident(1) {
		t.Error("LRU victim after skipped prefetch should have been 1")
	}
}

// TestFileStoreConcurrentAccess hammers a FileStore (and MultiFileStore)
// with concurrent distinct-vector traffic — the satellite fix replacing
// the shared scratch buffer. Run under -race this fails loudly on any
// shared codec state.
func TestFileStoreConcurrentAccess(t *testing.T) {
	const n, vecLen, workers = 64, 192, 8
	stores := map[string]Store{}
	fs, err := NewFileStore(filepath.Join(t.TempDir(), "single.bin"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	stores["FileStore"] = fs
	mfs, err := NewMultiFileStore(filepath.Join(t.TempDir(), "multi.bin"), 4, n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	stores["MultiFileStore"] = mfs
	f32, err := NewFloat32FileStore(filepath.Join(t.TempDir(), "f32.bin"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	stores["Float32FileStore"] = f32

	for name, store := range stores {
		t.Run(name, func(t *testing.T) {
			defer store.Close()
			var wg sync.WaitGroup
			errs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					buf := make([]float64, vecLen)
					for vi := w; vi < n; vi += workers {
						for i := range buf {
							// Values exactly representable in float32 so the
							// single-precision store round-trips them too.
							buf[i] = float64(vi*vecLen + i)
						}
						if err := store.WriteVector(vi, buf); err != nil {
							errs <- err
							return
						}
						got := make([]float64, vecLen)
						if err := store.ReadVector(vi, got); err != nil {
							errs <- err
							return
						}
						for i := range got {
							if got[i] != buf[i] {
								errs <- fmt.Errorf("worker %d vector %d[%d]: got %v want %v",
									w, vi, i, got[i], buf[i])
								return
							}
						}
					}
				}(w)
			}
			wg.Wait()
			close(errs)
			for err := range errs {
				t.Error(err)
			}
			// Concurrent same-vector reads are also part of the contract.
			var rg sync.WaitGroup
			rerrs := make(chan error, workers)
			for w := 0; w < workers; w++ {
				rg.Add(1)
				go func() {
					defer rg.Done()
					got := make([]float64, vecLen)
					if err := store.ReadVector(7, got); err != nil {
						rerrs <- err
						return
					}
					if got[3] != float64(7*vecLen+3) {
						rerrs <- errors.New("concurrent read returned corrupt data")
					}
				}()
			}
			rg.Wait()
			close(rerrs)
			for err := range rerrs {
				t.Error(err)
			}
		})
	}
}
