package ooc

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc/remote"
)

// newTierFixture builds a TieredStore over a loopback remote server.
func newTierFixture(t *testing.T, n, vecLen, cacheVecs, lanes int, dev iosim.Device) (*TieredStore, *remote.Server, string) {
	t.Helper()
	srv, err := remote.NewServer(remote.ServerConfig{Device: dev})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	obj, err := NewObjectStore(srv.ObjectURL("vec"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ts, err := NewTieredStore(obj, TieredConfig{
		NumVectors: n, VectorLen: vecLen,
		CacheDir: dir, CacheVectors: cacheVecs, Lanes: lanes,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ts, srv, dir
}

func tierVec(vecLen int, vi int) []float64 {
	v := make([]float64, vecLen)
	for i := range v {
		v[i] = float64(vi*1000 + i)
	}
	return v
}

func TestTieredStoreRemoteRoundTrip(t *testing.T) {
	const n, vecLen = 20, 8
	ts, _, _ := newTierFixture(t, n, vecLen, 4, 2, iosim.Device{})
	for vi := 0; vi < n; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]float64, vecLen)
	for vi := 0; vi < n; vi++ {
		if err := ts.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		want := tierVec(vecLen, vi)
		for i := range buf {
			if buf[i] != want[i] {
				t.Fatalf("vector %d pos %d: %v != %v", vi, i, buf[i], want[i])
			}
		}
	}
	st := ts.Stats()
	if st.Evictions == 0 || st.DirtyWritebacks == 0 {
		t.Errorf("a 4-slot cache over 20 vectors must evict: %+v", st)
	}
	if st.RemoteReads == 0 {
		t.Errorf("evicted vectors must come back from the remote tier: %+v", st)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTieredStoreSingleFlight(t *testing.T) {
	const n, vecLen = 8, 16
	// 30ms of injected latency gives every goroutine time to pile onto
	// the same in-flight fetch.
	ts, srv, _ := newTierFixture(t, n, vecLen, 4, 2,
		iosim.Device{Latency: 30 * time.Millisecond, Bandwidth: 1e9})
	defer ts.Close()
	want := tierVec(vecLen, 3)
	if err := ts.WriteVector(3, want); err != nil {
		t.Fatal(err)
	}
	if err := ts.Sync(); err != nil { // push it remote...
		t.Fatal(err)
	}
	// ...then force it out of the cache so the next reads miss.
	for vi := 4; vi < 8; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	opsBefore := srv.Clock().Ops()
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			buf := make([]float64, vecLen)
			errs[g] = ts.ReadVector(3, buf)
			if errs[g] == nil && buf[0] != want[0] {
				errs[g] = fmt.Errorf("goroutine %d read %v, want %v", g, buf[0], want[0])
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	st := ts.Stats()
	if st.SingleFlight == 0 {
		t.Errorf("concurrent same-vector misses should dedup: %+v", st)
	}
	if got := srv.Clock().Ops() - opsBefore; got > 3 {
		t.Errorf("8 concurrent reads of one vector issued %d remote requests", got)
	}
}

func TestTieredStoreCoalescing(t *testing.T) {
	const n, vecLen = 32, 8
	ts, _, _ := newTierFixture(t, n, vecLen, 8, 1,
		iosim.Device{Latency: 5 * time.Millisecond, Bandwidth: 1e9})
	defer ts.Close()
	for vi := 0; vi < n; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Sync(); err != nil {
		t.Fatal(err)
	}
	// Sync coalesces adjacent dirty vectors into ranged writes: far
	// fewer remote requests than vectors.
	st := ts.Stats()
	if st.RemoteVectorsWritten < int64(n-8) {
		t.Fatalf("sync should have pushed the dirty vectors: %+v", st)
	}
	if st.RemoteWrites >= st.RemoteVectorsWritten {
		t.Errorf("adjacent dirty vectors should coalesce: %d requests for %d vectors",
			st.RemoteWrites, st.RemoteVectorsWritten)
	}
	if st.Coalesced == 0 {
		t.Errorf("coalesce counter not advanced: %+v", st)
	}

	// Demand misses queued together coalesce too: issue adjacent reads
	// from goroutines against a single slow lane.
	base := ts.Stats()
	var wg sync.WaitGroup
	for vi := 16; vi < 24; vi++ {
		wg.Add(1)
		go func(vi int) {
			defer wg.Done()
			buf := make([]float64, vecLen)
			if err := ts.ReadVector(vi, buf); err != nil {
				t.Error(err)
			}
		}(vi)
	}
	wg.Wait()
	st = ts.Stats()
	reads := st.RemoteReads - base.RemoteReads
	vecs := st.RemoteVectorsRead - base.RemoteVectorsRead
	if vecs < 8 {
		t.Fatalf("8 misses should have fetched 8 vectors, got %d", vecs)
	}
	if reads >= vecs {
		t.Logf("note: no read coalescing this run (%d requests for %d vectors) — timing dependent", reads, vecs)
	}
}

func TestTieredStoreWarmRestart(t *testing.T) {
	const n, vecLen = 12, 8
	srv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	obj, err := NewObjectStore(srv.ObjectURL("warm"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := TieredConfig{NumVectors: n, VectorLen: vecLen, CacheDir: dir, CacheVectors: n, Lanes: 1}

	ts, err := NewTieredStore(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < n; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the same cache dir: warm — every read is a cache hit.
	ts2, err := NewTieredStore(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !ts2.WarmStart() {
		t.Fatal("cleanly closed cache should reopen warm")
	}
	opsBefore := srv.Clock().Ops()
	buf := make([]float64, vecLen)
	for vi := 0; vi < n; vi++ {
		if err := ts2.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != float64(vi*1000) {
			t.Fatalf("warm read of vector %d wrong: %v", vi, buf[0])
		}
	}
	if got := srv.Clock().Ops(); got != opsBefore {
		t.Errorf("warm reads went remote: %d ops before, %d after", opsBefore, got)
	}
	if st := ts2.Stats(); st.CacheHits != n {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, n)
	}
	if err := ts2.Close(); err != nil {
		t.Fatal(err)
	}

	// A torn index (crash marker) cold-starts instead of trusting the
	// cache — and the data still comes back, from the remote tier.
	if err := os.WriteFile(filepath.Join(dir, "cache.idx"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	ts3, err := NewTieredStore(obj, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ts3.WarmStart() {
		t.Error("torn index must cold-start")
	}
	if err := ts3.ReadVector(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 5000 {
		t.Errorf("cold read of vector 5 = %v, want 5000", buf[0])
	}
	if st := ts3.Stats(); st.RemoteReads == 0 {
		t.Error("cold start must fetch from the remote tier")
	}
	ts3.Close()
}

func TestTieredStoreFetchCost(t *testing.T) {
	const n, vecLen = 10, 4
	ts, _, _ := newTierFixture(t, n, vecLen, 2, 1, iosim.Device{})
	defer ts.Close()
	if err := ts.WriteVector(1, tierVec(vecLen, 1)); err != nil {
		t.Fatal(err)
	}
	if d, rem := ts.FetchCost(1); rem || d != 0 {
		t.Errorf("cached vector FetchCost = (%v, %v), want (0, local)", d, rem)
	}
	if d, rem := ts.FetchCost(7); !rem || d <= 0 {
		t.Errorf("uncached vector FetchCost = (%v, %v), want remote with positive cost", d, rem)
	}
	// The cost estimate forwards through a ChecksumStore wrapper.
	dir := t.TempDir()
	fs, err := NewFileStore(filepath.Join(dir, "x.vec"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := NewChecksumStore(ts, filepath.Join(dir, "x.sum"), n, vecLen)
	_ = fs
	if err != nil {
		t.Fatal(err)
	}
	if d, rem := cs.FetchCost(7); !rem || d <= 0 {
		t.Errorf("wrapped FetchCost = (%v, %v), want forwarded remote cost", d, rem)
	}
	if cs.MemOverheadBytes() <= ts.MemOverheadBytes() {
		t.Error("checksum wrapper must add its table overhead to the inner store's")
	}
}

func TestTieredStoreMemOverhead(t *testing.T) {
	const n, vecLen = 64, 32
	ts, _, _ := newTierFixture(t, n, vecLen, 16, 2, iosim.Device{})
	defer ts.Close()
	base := ts.MemOverheadBytes()
	if base <= 0 {
		t.Fatal("overhead must be positive (lane buffers + metadata)")
	}
	for vi := 0; vi < 16; vi++ {
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	if grown := ts.MemOverheadBytes(); grown <= base {
		t.Errorf("populating the index should grow overhead: %d -> %d", base, grown)
	}
}

func TestTieredStoreDirtyEvictionSurvivesCacheLoss(t *testing.T) {
	// The crash-safety claim: by the time a dirty victim's slot is
	// reused, the victim is durable on the remote tier — so destroying
	// the whole cache loses nothing that was evicted.
	const n, vecLen = 10, 4
	srv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	obj, err := NewObjectStore(srv.ObjectURL("cl"), n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	ts, err := NewTieredStore(obj, TieredConfig{
		NumVectors: n, VectorLen: vecLen, CacheDir: dir, CacheVectors: 2, Lanes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	for vi := 0; vi < 6; vi++ { // 2-slot cache: vectors 0..3 evicted dirty
		if err := ts.WriteVector(vi, tierVec(vecLen, vi)); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate a crash: no Sync, no Close, cache dir destroyed.
	os.RemoveAll(dir)
	buf := make([]float64, vecLen)
	for vi := 0; vi < 4; vi++ {
		if err := obj.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != float64(vi*1000) {
			t.Errorf("evicted vector %d not durable remote: %v", vi, buf[0])
		}
	}
}
