package ooc

// TieredStore — the storage substrate for remote-backed runs. It
// composes the three tiers the ROADMAP's cluster story needs:
//
//	RAM slots (ooc.Manager)
//	   │ miss / write-back
//	   ▼
//	local write-back cache  — bounded FileStore + CRC64 sidecar in
//	   │                      CacheDir; LRU; dirty vectors pushed to
//	   │ miss / dirty evict   the remote tier BEFORE the slot is reused
//	   ▼
//	remote backend          — any Store; ranged (RangeStore) backends
//	                          get adjacent misses coalesced into one
//	                          request, issued over N parallel lanes
//
// Latency hiding and request economy:
//
//   - Single-flight: concurrent misses on the same vector join one
//     in-flight fetch instead of issuing duplicate remote reads.
//   - Coalescing: a lane grabs a maximal run of adjacent vector
//     indices from the miss queue and fetches them with one ranged
//     request — under load (the async pipeline's fetch workers missing
//     together) the queue naturally batches.
//   - Lanes: up to Lanes goroutines keep ranged requests in flight
//     concurrently, so remote latency overlaps.
//
// Crash safety: a dirty victim is written to the remote tier before
// its cache slot is reused, so the cache never holds the only copy of
// a vector while that copy is being discarded. Warm restarts are
// opportunistic: Sync/Close persist a cache index bound to the cache
// sidecar's manifest; on open, any mismatch (torn index, unclean
// sidecar, geometry change) discards the cache and cold-starts —
// correctness never depends on the cache surviving.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oocphylo/internal/obs"
)

// TieredConfig configures a TieredStore.
type TieredConfig struct {
	// NumVectors and VectorLen fix the store geometry (float64 carrier
	// units, like every other Store).
	NumVectors, VectorLen int
	// CacheDir holds the cache file, its checksum sidecar and the warm
	// index. Created if missing.
	CacheDir string
	// CacheVectors bounds the cache tier (in vectors, >= 1).
	CacheVectors int
	// Lanes is the number of parallel remote fetch lanes (default 2).
	Lanes int
	// MaxCoalesce caps how many adjacent vectors one ranged remote read
	// may carry (default 16).
	MaxCoalesce int
	// EstRTT seeds the fetch-cost estimate before any remote request
	// has been observed (default 5ms). The live EWMA replaces it.
	EstRTT time.Duration

	// --- Network fault tolerance (the remote tier treated as an
	// unreliable network service, not a slow disk) ---

	// RemoteDeadline bounds each remote request attempt (0 = none). A
	// stalled backend then costs one deadline per attempt instead of a
	// hung engine pass.
	RemoteDeadline time.Duration
	// RemoteRetry re-issues failed remote attempts with full-jitter
	// backoff — a budget distinct from the manager's disk RetryPolicy,
	// so network tuning never loosens local-disk handling. The zero
	// value disables remote retries.
	RemoteRetry RetryPolicy
	// Breaker configures the per-backend circuit breaker. A breaker is
	// installed only when Breaker.Threshold > 0; without one the tier
	// keeps the pre-breaker fail-per-request behavior.
	Breaker BreakerConfig
	// HedgeAfter launches a second, identical ranged GET when the
	// first is still in flight after this delay, taking whichever
	// completes first (0 = no hedging). Reads only — a hedged write
	// could reorder against its twin.
	HedgeAfter time.Duration
	// SpillDir holds the write-back spill journal (default CacheDir).
	SpillDir string
}

func (c *TieredConfig) fill() error {
	if c.NumVectors < 1 || c.VectorLen < 1 {
		return fmt.Errorf("ooc: tiered store geometry %dx%d invalid", c.NumVectors, c.VectorLen)
	}
	if c.CacheVectors < 1 {
		return fmt.Errorf("ooc: tiered store cache capacity %d < 1", c.CacheVectors)
	}
	if c.CacheVectors > c.NumVectors {
		c.CacheVectors = c.NumVectors
	}
	if c.CacheDir == "" {
		return fmt.Errorf("ooc: tiered store needs a cache directory")
	}
	if c.Lanes < 1 {
		c.Lanes = 2
	}
	if c.MaxCoalesce < 1 {
		c.MaxCoalesce = 16
	}
	if c.EstRTT <= 0 {
		c.EstRTT = defaultRemoteCost
	}
	if c.SpillDir == "" {
		c.SpillDir = c.CacheDir
	}
	return nil
}

// TierStats is a snapshot of the tier counters.
type TierStats struct {
	// CacheHits and CacheMisses count reads served by / missing the
	// local cache tier (a read served from a pending dirty write-back
	// buffer counts as a hit — it never left the machine).
	CacheHits, CacheMisses int64
	// RemoteReads and RemoteWrites count ranged remote REQUESTS;
	// RemoteVectorsRead / RemoteVectorsWritten the vectors they carried.
	RemoteReads, RemoteWrites               int64
	RemoteVectorsRead, RemoteVectorsWritten int64
	// BytesFromCache and BytesFetched split read traffic by the tier
	// that served it; BytesPushed is remote write-back volume.
	BytesFromCache, BytesFetched, BytesPushed int64
	// Coalesced counts vectors that rode an existing ranged request
	// instead of costing their own round trip.
	Coalesced int64
	// SingleFlight counts misses that joined an in-flight fetch.
	SingleFlight int64
	// Evictions counts cache slots recycled; DirtyWritebacks the subset
	// that had to push a dirty vector remote first.
	Evictions, DirtyWritebacks int64
	// WarmStart reports whether the cache was adopted from a previous
	// cleanly closed run.
	WarmStart bool
	// EstRTT is the live remote-latency estimate (EWMA over requests).
	EstRTT time.Duration

	// --- Network fault tolerance ---

	// RemoteErrors counts failed remote request attempts (timeouts,
	// drops, 5xx); RemoteRetries the re-issues the jittered remote
	// budget paid for them.
	RemoteErrors, RemoteRetries int64
	// BreakerState renders the circuit breaker position ("closed",
	// "open", "half-open"; "" when no breaker is configured).
	// BreakerOpens counts trips, ShortCircuits requests refused
	// locally while open.
	BreakerState  string
	BreakerOpens  int64
	ShortCircuits int64
	// Hedges counts second GETs launched on the tail; HedgeWins the
	// subset that beat the first request.
	Hedges, HedgeWins int64
	// JournalHits counts reads served from the spill journal's pending
	// payloads; JournalAppends dirty write-backs the journal absorbed;
	// JournalReplayed records replayed to the remote tier on recovery;
	// JournalDepth vectors currently pending; JournalBytes the on-disk
	// journal size.
	JournalHits     int64
	JournalAppends  int64
	JournalReplayed int64
	JournalDepth    int64
	JournalBytes    int64
	// Degraded reports the breaker not closed: the remote tier is
	// presumed unavailable and the engine answers from cache+recompute.
	Degraded bool
}

// tierFetch is one in-flight remote read (single-flight unit). span is
// the request-scoped span active when the miss was enqueued (nil when
// untraced); the servicing lane parents its remote spans under it.
type tierFetch struct {
	vi   int
	buf  []float64
	err  error
	done chan struct{}
	span *obs.Span
}

// tierWB is a dirty victim's payload in flight to the remote tier;
// reads of the vector are served from buf until the write lands.
type tierWB struct {
	vi   int
	buf  []float64
	done chan struct{}
}

// TieredStore implements Store over a local write-back cache backed by
// a remote store. Safe for the Store contract's concurrency (distinct
// vectors; plus concurrent reads of the same vector, which single-
// flight turns into one remote request).
type TieredStore struct {
	remote Store
	cfg    TieredConfig

	// mu guards the cache tier: placement maps, recency, dirty flags,
	// pending write-backs and the cache store's I/O. Cache I/O is local
	// and fast; remote I/O never runs under mu.
	mu     sync.Mutex
	cache  *ChecksumStore
	slotOf map[int]int // vi -> cache slot
	viOf   []int       // slot -> vi (-1 = free)
	stamp  []int64     // slot -> recency
	dirty  []bool      // slot -> modified since last remote push
	now    int64
	free   []int
	wb     map[int]*tierWB // vi -> in-flight dirty write-back
	// firstErr latches the first background write-back failure (lane
	// admissions have no caller to report to); surfaced by Sync/Close.
	firstErr error

	// fmu guards the miss queue and single-flight map.
	fmu      sync.Mutex
	fcond    *sync.Cond
	queue    []*tierFetch
	inflight map[int]*tierFetch
	closed   bool
	lanes    sync.WaitGroup

	warm     bool
	latNanos atomic.Int64

	// breaker (nil unless configured) guards every remote request;
	// journal absorbs dirty write-backs the remote cannot take.
	breaker       *Breaker
	journal       *SpillJournal
	retriedRemote atomic.Int64
	drainBusy     atomic.Bool
	closing       atomic.Bool
	bg            sync.WaitGroup

	// span is the request-scoped tracing span tier activity is currently
	// attributed to (nil when untraced). Lanes read it concurrently with
	// the session loop setting it, hence atomic.
	span atomic.Pointer[obs.Span]

	st struct {
		cacheHits, cacheMisses     atomic.Int64
		remoteReads, remoteWrites  atomic.Int64
		remoteVecsR, remoteVecsW   atomic.Int64
		bytesCache, bytesFetched   atomic.Int64
		bytesPushed                atomic.Int64
		coalesced, singleFlight    atomic.Int64
		evictions, dirtyWritebacks atomic.Int64
		remoteErrors               atomic.Int64
		hedges, hedgeWins          atomic.Int64
		journalHits                atomic.Int64
	}

	// remoteLatObs mirrors per-request remote latency into a registry
	// histogram when instrumented (nil otherwise). Read under fmu.
	remoteLatObs func(seconds float64)
}

const tierIndexName = "cache.idx"

// tierIndex is the warm-restart index persisted next to the cache
// file. Manifest binds it to the exact sidecar state it was written
// under; any divergence cold-starts the cache.
type tierIndex struct {
	NumVectors   int      `json:"num_vectors"`
	VectorLen    int      `json:"vector_len"`
	CacheVectors int      `json:"cache_vectors"`
	Slots        []int    `json:"slots"` // slot -> vi (-1 = free)
	Manifest     Manifest `json:"manifest"`
}

// NewTieredStore opens a tiered store over remote. If CacheDir holds a
// cleanly closed cache from a previous run with the same geometry it
// is adopted warm; otherwise the cache starts cold. The remote store
// is NOT closed by Close — the caller owns it (it may be shared).
func NewTieredStore(remote Store, cfg TieredConfig) (*TieredStore, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("ooc: creating cache dir: %w", err)
	}
	s := &TieredStore{
		remote:   remote,
		cfg:      cfg,
		slotOf:   make(map[int]int),
		viOf:     make([]int, cfg.CacheVectors),
		stamp:    make([]int64, cfg.CacheVectors),
		dirty:    make([]bool, cfg.CacheVectors),
		wb:       make(map[int]*tierWB),
		inflight: make(map[int]*tierFetch),
	}
	s.fcond = sync.NewCond(&s.fmu)
	for i := range s.viOf {
		s.viOf[i] = -1
	}
	if err := s.openCache(); err != nil {
		return nil, err
	}
	if cfg.Breaker.Threshold > 0 {
		s.breaker = NewBreaker(cfg.Breaker)
		s.breaker.OnTransition(s.noteBreakerTransition)
	}
	if cfg.SpillDir != cfg.CacheDir {
		if err := os.MkdirAll(cfg.SpillDir, 0o755); err != nil {
			s.cache.Close()
			return nil, fmt.Errorf("ooc: creating spill dir: %w", err)
		}
	}
	j, err := OpenSpillJournal(filepath.Join(cfg.SpillDir, spillJournalName), cfg.NumVectors, cfg.VectorLen)
	if err != nil {
		s.cache.Close()
		return nil, err
	}
	if !s.warm && j.Depth() > 0 {
		// Cold start: the cache (and any journal written alongside it)
		// belongs to a run whose state is being rebuilt from scratch —
		// replaying its spilled vectors into the fresh object would
		// resurrect another run's bytes. A crashed outage-run loses
		// nothing here: it restarts from a checkpoint and recomputes.
		if err := j.Reset(); err != nil {
			j.Close()
			s.cache.Close()
			return nil, err
		}
	}
	s.journal = j
	for i := 0; i < cfg.Lanes; i++ {
		s.lanes.Add(1)
		go s.lane()
	}
	return s, nil
}

const spillJournalName = "spill.jrnl"

// Breaker exposes the remote tier's circuit breaker (nil when not
// configured), for instrumentation and tests.
func (s *TieredStore) Breaker() *Breaker { return s.breaker }

// Journal exposes the write-back spill journal, for instrumentation
// and tests.
func (s *TieredStore) Journal() *SpillJournal { return s.journal }

// Degraded implements Degrader: true while the breaker is anything but
// closed — the remote tier is presumed unavailable, the engine planner
// flips valid-but-remote reads into local recomputes, and the service
// layer reports not-ready.
func (s *TieredStore) Degraded() bool {
	return s.breaker != nil && s.breaker.State() != BreakerClosed
}

// noteBreakerTransition records breaker state changes as zero-width
// child spans on the active request span, so a traced evaluate shows
// exactly when the remote tier tripped open / probed / recovered.
func (s *TieredStore) noteBreakerTransition(from, to BreakerState) {
	if sp := s.currentSpan(); sp != nil {
		ev := sp.StartChild("tier.breaker_" + to.String())
		ev.SetAttrStr("from", from.String())
		ev.End()
	}
}

// openCache adopts a warm cache when the on-disk index and sidecar
// agree, else creates a fresh (cold) cache. The index file is removed
// either way: it only ever describes a cleanly closed cache, so its
// absence is the crash marker.
func (s *TieredStore) openCache() error {
	cachePath := filepath.Join(s.cfg.CacheDir, "cache.vec")
	sumPath := cachePath + ".sum"
	idxPath := filepath.Join(s.cfg.CacheDir, tierIndexName)

	if idx, ok := s.loadIndex(idxPath); ok {
		os.Remove(idxPath)
		if fs, err := OpenFileStore(cachePath, s.cfg.CacheVectors, s.cfg.VectorLen); err == nil {
			if cs, err := OpenChecksumStore(fs, sumPath, s.cfg.CacheVectors, s.cfg.VectorLen); err == nil {
				if err := cs.VerifyManifest(idx.Manifest); err == nil {
					s.cache = cs
					s.warm = true
					for slot, vi := range idx.Slots {
						s.viOf[slot] = vi
						if vi >= 0 {
							s.slotOf[vi] = slot
						} else {
							s.free = append(s.free, slot)
						}
					}
					return nil
				}
				cs.Close()
			} else {
				fs.Close()
			}
		}
	} else {
		os.Remove(idxPath)
	}

	fs, err := NewFileStore(cachePath, s.cfg.CacheVectors, s.cfg.VectorLen)
	if err != nil {
		return err
	}
	cs, err := NewChecksumStore(fs, sumPath, s.cfg.CacheVectors, s.cfg.VectorLen)
	if err != nil {
		fs.Close()
		return err
	}
	s.cache = cs
	for i := s.cfg.CacheVectors - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return nil
}

func (s *TieredStore) loadIndex(path string) (*tierIndex, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var idx tierIndex
	if json.Unmarshal(data, &idx) != nil {
		return nil, false
	}
	if idx.NumVectors != s.cfg.NumVectors || idx.VectorLen != s.cfg.VectorLen ||
		idx.CacheVectors != s.cfg.CacheVectors || len(idx.Slots) != s.cfg.CacheVectors {
		return nil, false
	}
	return &idx, true
}

// WarmStart reports whether the cache was adopted from a previous run.
func (s *TieredStore) WarmStart() bool { return s.warm }

// SetSpan attributes subsequent tier activity (remote fetch/write-back
// spans) to the given request span; nil detaches. Safe to call from
// the session loop while lanes are in flight — a lane parents each
// remote request under the span captured when its miss was enqueued.
func (s *TieredStore) SetSpan(sp *obs.Span) { s.span.Store(sp) }

// currentSpan returns the active request span (nil when untraced).
func (s *TieredStore) currentSpan() *obs.Span { return s.span.Load() }

// ObserveRemoteLatency registers fn to receive every remote request's
// wall-clock duration in seconds (nil unregisters). Instrumentation
// uses it to feed a latency histogram without touching the hot path
// when nothing listens.
func (s *TieredStore) ObserveRemoteLatency(fn func(seconds float64)) {
	s.fmu.Lock()
	s.remoteLatObs = fn
	s.fmu.Unlock()
}

// Stats snapshots the tier counters.
func (s *TieredStore) Stats() TierStats {
	ts := TierStats{
		CacheHits:            s.st.cacheHits.Load(),
		CacheMisses:          s.st.cacheMisses.Load(),
		RemoteReads:          s.st.remoteReads.Load(),
		RemoteWrites:         s.st.remoteWrites.Load(),
		RemoteVectorsRead:    s.st.remoteVecsR.Load(),
		RemoteVectorsWritten: s.st.remoteVecsW.Load(),
		BytesFromCache:       s.st.bytesCache.Load(),
		BytesFetched:         s.st.bytesFetched.Load(),
		BytesPushed:          s.st.bytesPushed.Load(),
		Coalesced:            s.st.coalesced.Load(),
		SingleFlight:         s.st.singleFlight.Load(),
		Evictions:            s.st.evictions.Load(),
		DirtyWritebacks:      s.st.dirtyWritebacks.Load(),
		WarmStart:            s.warm,
		EstRTT:               time.Duration(s.latNanos.Load()),
		RemoteErrors:         s.st.remoteErrors.Load(),
		RemoteRetries:        s.retriedRemote.Load(),
		Hedges:               s.st.hedges.Load(),
		HedgeWins:            s.st.hedgeWins.Load(),
		JournalHits:          s.st.journalHits.Load(),
	}
	if s.breaker != nil {
		bs := s.breaker.Stats()
		ts.BreakerState = s.breaker.State().String()
		ts.BreakerOpens = bs.Opens
		ts.ShortCircuits = bs.ShortCircuits
		ts.Degraded = s.Degraded()
	}
	if s.journal != nil {
		js := s.journal.Stats()
		ts.JournalAppends = js.Appends
		ts.JournalReplayed = js.Replayed
		ts.JournalDepth = int64(js.Depth)
		ts.JournalBytes = js.FileBytes
	}
	return ts
}

// ReadVector implements Store: cache tier first, then a single-flight,
// possibly coalesced remote fetch.
func (s *TieredStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= s.cfg.NumVectors {
		return fmt.Errorf("ooc: tiered store read out of range: %d", vi)
	}
	if len(dst) != s.cfg.VectorLen {
		return fmt.Errorf("ooc: tiered store read size %d, want %d", len(dst), s.cfg.VectorLen)
	}
	s.mu.Lock()
	if slot, ok := s.slotOf[vi]; ok {
		s.now++
		s.stamp[slot] = s.now
		err := s.cache.ReadVector(slot, dst)
		wasDirty := s.dirty[slot]
		if err != nil && IsCorruption(err) && !wasDirty {
			// Clean cached copy rotted locally: drop it and refetch the
			// authoritative remote copy instead of failing the read.
			delete(s.slotOf, vi)
			s.viOf[slot] = -1
			s.free = append(s.free, slot)
		} else {
			s.mu.Unlock()
			if err == nil {
				s.st.cacheHits.Add(1)
				s.st.bytesCache.Add(int64(len(dst)) * 8)
			}
			return err
		}
	}
	if w, ok := s.wb[vi]; ok {
		// Dirty write-back in flight: its buffer is the newest copy.
		copy(dst, w.buf)
		s.mu.Unlock()
		s.st.cacheHits.Add(1)
		s.st.bytesCache.Add(int64(len(dst)) * 8)
		return nil
	}
	s.mu.Unlock()

	// A journaled vector's newest bytes live here, not remote (the
	// remote copy is stale until replay): serve locally.
	if s.journal != nil && s.journal.Snapshot(vi, dst) {
		s.st.journalHits.Add(1)
		s.st.bytesCache.Add(int64(len(dst)) * 8)
		return nil
	}

	s.st.cacheMisses.Add(1)
	f, joined := s.joinFetch(vi)
	if joined {
		s.st.singleFlight.Add(1)
	}
	<-f.done
	if f.err != nil {
		return f.err
	}
	copy(dst, f.buf)
	return nil
}

// WriteVector implements Store: write-back semantics — the payload
// lands dirty in the cache tier and reaches the remote tier on
// eviction or Sync.
func (s *TieredStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= s.cfg.NumVectors {
		return fmt.Errorf("ooc: tiered store write out of range: %d", vi)
	}
	if len(src) != s.cfg.VectorLen {
		return fmt.Errorf("ooc: tiered store write size %d, want %d", len(src), s.cfg.VectorLen)
	}
	// A write supersedes any in-flight write-back of the same vector;
	// wait for it so remote writes of one vector stay ordered.
	s.mu.Lock()
	w := s.wb[vi]
	s.mu.Unlock()
	if w != nil {
		<-w.done
	}
	return s.admit(vi, src, true)
}

// Close drains the lanes, pushes dirty state remote, seals the cache
// (sidecar + warm index) and closes it. The remote store stays open —
// the caller owns it.
func (s *TieredStore) Close() error {
	s.closing.Store(true)
	s.fmu.Lock()
	s.closed = true
	s.fcond.Broadcast()
	s.fmu.Unlock()
	s.lanes.Wait()
	s.bg.Wait()
	first := s.Sync()
	if s.journal != nil {
		if err := s.journal.Close(); err != nil && first == nil {
			first = err
		}
	}
	if err := s.cache.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Sync pushes every dirty cached vector to the remote tier (coalescing
// adjacent runs into ranged writes), syncs the cache file + sidecar,
// and persists the warm-restart index. Callers must be quiesced (no
// concurrent reads/writes), the same contract as Manager.Flush.
func (s *TieredStore) Sync() error {
	s.mu.Lock()
	for {
		var ch chan struct{}
		for _, w := range s.wb {
			ch = w.done
			break
		}
		if ch == nil {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	type dv struct{ vi, slot int }
	var dirties []dv
	for slot, d := range s.dirty {
		if d && s.viOf[slot] >= 0 {
			dirties = append(dirties, dv{s.viOf[slot], slot})
		}
	}
	sort.Slice(dirties, func(i, j int) bool { return dirties[i].vi < dirties[j].vi })
	vecLen := s.cfg.VectorLen
	var first error
	for i := 0; i < len(dirties); {
		j := i + 1
		for j < len(dirties) && j-i < s.cfg.MaxCoalesce && dirties[j].vi == dirties[j-1].vi+1 {
			j++
		}
		buf := make([]float64, (j-i)*vecLen)
		for k := i; k < j; k++ {
			if err := s.cache.ReadVector(dirties[k].slot, buf[(k-i)*vecLen:(k-i+1)*vecLen]); err != nil && first == nil {
				first = err
			}
		}
		ctx := context.Background()
		var syncSpan *obs.Span
		if sp := s.currentSpan(); sp != nil {
			syncSpan = sp.StartChild("tier.remote_put")
			syncSpan.SetAttr("vi", int64(dirties[i].vi))
			syncSpan.SetAttr("count", int64(j-i))
			ctx = obs.ContextWithSpan(ctx, syncSpan)
		}
		err := s.remoteCall(ctx, false, dirties[i].vi, j-i, buf)
		syncSpan.End()
		if err != nil {
			// Remote unavailable mid-sync: spill the run to the journal
			// instead of failing the sync. Once every vector's newest
			// bytes are durable SOMEWHERE (remote or journal), the sync
			// has done its job; recovery replays the journal.
			spilled := s.journal != nil
			if spilled {
				for k := i; k < j; k++ {
					if jerr := s.journal.Append(dirties[k].vi, buf[(k-i)*vecLen:(k-i+1)*vecLen]); jerr != nil {
						spilled = false
						break
					}
				}
			}
			if spilled {
				for k := i; k < j; k++ {
					s.dirty[dirties[k].slot] = false
				}
			} else if first == nil {
				first = err
			}
		} else {
			s.st.remoteWrites.Add(1)
			s.st.remoteVecsW.Add(int64(j - i))
			s.st.bytesPushed.Add(int64(len(buf)) * 8)
			s.st.coalesced.Add(int64(j - i - 1))
			for k := i; k < j; k++ {
				s.dirty[dirties[k].slot] = false
			}
		}
		i = j
	}
	if s.firstErr != nil && first == nil {
		first = s.firstErr
	}
	s.mu.Unlock()
	// Best-effort journal replay: a healed network empties it here; a
	// still-down one leaves the entries durable on disk (Sync's job is
	// durability, not connectivity).
	if s.journal != nil && s.journal.Depth() > 0 {
		s.drainNow(context.Background())
	}
	if err := SyncStore(s.remote); err != nil && first == nil && !IsTransient(err) && !IsCircuitOpen(err) {
		first = err
	}
	if err := s.cache.Sync(); err != nil && first == nil {
		first = err
	}
	if first == nil {
		first = s.writeIndex()
	}
	return first
}

// writeIndex persists the warm-restart index, bound to the sidecar's
// current manifest, with a temp-file rename so it is atomic.
func (s *TieredStore) writeIndex() error {
	s.mu.Lock()
	idx := tierIndex{
		NumVectors:   s.cfg.NumVectors,
		VectorLen:    s.cfg.VectorLen,
		CacheVectors: s.cfg.CacheVectors,
		Slots:        append([]int(nil), s.viOf...),
		Manifest:     s.cache.Manifest(),
	}
	s.mu.Unlock()
	data, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.CacheDir, tierIndexName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ooc: writing cache index: %w", err)
	}
	return os.Rename(tmp, path)
}

// FetchCost implements the engine's fetch-vs-recompute hook: a cached
// (or write-back-pending) vector costs nothing remote; anything else
// costs one remote round trip at the live latency estimate.
func (s *TieredStore) FetchCost(vi int) (time.Duration, bool) {
	s.mu.Lock()
	_, cached := s.slotOf[vi]
	if !cached {
		_, cached = s.wb[vi]
	}
	s.mu.Unlock()
	if !cached && s.journal != nil && s.journal.Has(vi) {
		cached = true // journal payloads are served locally
	}
	if cached {
		return 0, false
	}
	if d := time.Duration(s.latNanos.Load()); d > 0 {
		return d, true
	}
	return s.cfg.EstRTT, true
}

// MemOverheadBytes estimates the tier's heap footprint beyond the
// manager's slot pool: placement maps and per-slot metadata, plus the
// float64 buffers held by in-flight fetches and write-backs. Watchdog
// and Resize subtract it from the memory budget.
func (s *TieredStore) MemOverheadBytes() int64 {
	const mapEntry = 48 // rough per-entry cost of a map[int]int
	s.mu.Lock()
	n := int64(len(s.slotOf))*mapEntry + int64(len(s.wb))*(mapEntry+int64(s.cfg.VectorLen)*8)
	s.mu.Unlock()
	s.fmu.Lock()
	n += int64(len(s.inflight)) * (mapEntry + int64(s.cfg.VectorLen)*8)
	s.fmu.Unlock()
	n += int64(s.cfg.CacheVectors) * (8 + 8 + 1) // viOf, stamp, dirty
	n += int64(s.cfg.Lanes) * int64(s.cfg.MaxCoalesce) * int64(s.cfg.VectorLen) * 8
	if s.journal != nil {
		n += s.journal.MemBytes()
	}
	return n
}

// joinFetch registers interest in vector vi, joining an in-flight
// fetch when one exists (single-flight).
func (s *TieredStore) joinFetch(vi int) (*tierFetch, bool) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if f, ok := s.inflight[vi]; ok {
		return f, true
	}
	f := &tierFetch{vi: vi, buf: make([]float64, s.cfg.VectorLen), done: make(chan struct{}), span: s.currentSpan()}
	s.inflight[vi] = f
	s.queue = append(s.queue, f)
	s.fcond.Signal()
	return f, false
}

// lane is one remote fetch worker: it takes a maximal adjacent run
// from the miss queue, issues one ranged read, admits the results to
// the cache and wakes the waiters.
func (s *TieredStore) lane() {
	defer s.lanes.Done()
	vecLen := s.cfg.VectorLen
	for {
		s.fmu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.fcond.Wait()
		}
		if len(s.queue) == 0 {
			s.fmu.Unlock()
			return
		}
		sort.Slice(s.queue, func(i, j int) bool { return s.queue[i].vi < s.queue[j].vi })
		run := []*tierFetch{s.queue[0]}
		i := 1
		for i < len(s.queue) && len(run) < s.cfg.MaxCoalesce && s.queue[i].vi == run[len(run)-1].vi+1 {
			run = append(run, s.queue[i])
			i++
		}
		s.queue = append(s.queue[:0:0], s.queue[i:]...)
		if len(s.queue) > 0 {
			// More work remains: wake a sibling lane so runs overlap.
			s.fcond.Signal()
		}
		s.fmu.Unlock()

		buf := make([]float64, len(run)*vecLen)
		// Parent the ranged remote read under the first traced miss in
		// the run: the whole run is one coalesced request, so one span
		// (with the run geometry as attributes) covers it.
		var fetchSpan *obs.Span
		ctx := context.Background()
		for _, f := range run {
			if f.span != nil {
				fetchSpan = f.span.StartChild("tier.remote_get")
				fetchSpan.SetAttr("vi", int64(run[0].vi))
				fetchSpan.SetAttr("count", int64(len(run)))
				fetchSpan.SetAttr("bytes", int64(len(buf))*8)
				ctx = obs.ContextWithSpan(ctx, fetchSpan)
				break
			}
		}
		err := s.remoteCall(ctx, true, run[0].vi, len(run), buf)
		fetchSpan.End()
		s.st.remoteReads.Add(1)
		if err == nil {
			s.st.remoteVecsR.Add(int64(len(run)))
			s.st.bytesFetched.Add(int64(len(buf)) * 8)
			s.st.coalesced.Add(int64(len(run) - 1))
		}
		for k, f := range run {
			if err != nil {
				f.err = err
				continue
			}
			copy(f.buf, buf[k*vecLen:(k+1)*vecLen])
			if aerr := s.admit(f.vi, f.buf, false); aerr != nil {
				// The fetch itself succeeded — the waiter gets its data;
				// an admission (eviction write-back) failure is latched
				// for Sync/Close like a lost pipeline write-back.
				s.noteErr(aerr)
			}
		}
		s.fmu.Lock()
		for _, f := range run {
			delete(s.inflight, f.vi)
		}
		s.fmu.Unlock()
		for _, f := range run {
			close(f.done)
		}
	}
}

// remoteObserved charges one remote round trip to the latency EWMA and
// to the instrumented histogram, when one is attached.
func (s *TieredStore) remoteObserved(d time.Duration) {
	s.observeLatency(d)
	s.fmu.Lock()
	obs := s.remoteLatObs
	s.fmu.Unlock()
	if obs != nil {
		obs(d.Seconds())
	}
}

func (s *TieredStore) observeLatency(d time.Duration) {
	for {
		old := s.latNanos.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/4
		}
		if s.latNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

// remoteCall is the single guarded gateway for remote I/O: circuit
// breaker admission, a per-attempt deadline, the jittered remote retry
// budget, and (for reads, when configured) a hedged second request on
// the tail. buf is read for writes and filled for reads.
func (s *TieredStore) remoteCall(ctx context.Context, read bool, vi, count int, buf []float64) error {
	if ctx == nil {
		ctx = context.Background()
	}
	opName := "write"
	if read {
		opName = "read"
	}
	op := func() error {
		if s.breaker != nil && !s.breaker.Allow() {
			return fmt.Errorf("ooc: remote %s [%d,%d): %w", opName, vi, vi+count, ErrCircuitOpen)
		}
		actx := ctx
		cancel := context.CancelFunc(nil)
		if s.cfg.RemoteDeadline > 0 {
			actx, cancel = context.WithTimeout(ctx, s.cfg.RemoteDeadline)
		}
		start := time.Now()
		var err error
		switch {
		case read && s.cfg.HedgeAfter > 0:
			err = s.hedgedRead(actx, vi, count, buf)
		case read:
			err = ReadRangeOf(actx, s.remote, s.cfg.VectorLen, vi, count, buf)
		default:
			err = WriteRangeOf(actx, s.remote, s.cfg.VectorLen, vi, count, buf)
		}
		if cancel != nil {
			cancel()
		}
		s.remoteObserved(time.Since(start))
		if s.breaker != nil {
			switch {
			case err == nil:
				s.breaker.Success()
			case ctx.Err() != nil:
				// The CALLER's context ended — says nothing about the
				// backend; release the probe slot without judging it.
				s.breaker.Cancelled()
			default:
				s.breaker.Failure()
			}
		}
		if err != nil {
			s.st.remoteErrors.Add(1)
		}
		return err
	}
	err := s.cfg.RemoteRetry.runCtx(ctx, &s.retriedRemote, op)
	if err == nil {
		s.maybeDrain()
	}
	return err
}

// hedgedRead races a duplicate ranged GET against a slow first one.
// Both requests get private buffers — an abandoned loser may still be
// writing into its buffer when the winner's bytes are returned — and
// the loser is cancelled via context.
func (s *TieredStore) hedgedRead(ctx context.Context, vi, count int, dst []float64) error {
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type result struct {
		buf   []float64
		err   error
		hedge bool
	}
	ch := make(chan result, 2)
	launch := func(hedge bool) {
		buf := make([]float64, len(dst))
		go func() {
			err := ReadRangeOf(hctx, s.remote, s.cfg.VectorLen, vi, count, buf)
			ch <- result{buf, err, hedge}
		}()
	}
	launch(false)
	outstanding, hedged := 1, false
	timer := time.NewTimer(s.cfg.HedgeAfter)
	defer timer.Stop()
	var firstErr error
	for {
		select {
		case <-timer.C:
			if !hedged {
				hedged = true
				outstanding++
				s.st.hedges.Add(1)
				launch(true)
			}
		case r := <-ch:
			outstanding--
			if r.err == nil {
				copy(dst, r.buf)
				if r.hedge {
					s.st.hedgeWins.Add(1)
				}
				return nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			if outstanding == 0 {
				return firstErr
			}
		}
	}
}

// maybeDrain kicks off a background journal replay when there is
// something to replay and no drain is already running. Called after
// every successful remote request — the cheapest possible "the
// network is back" signal.
func (s *TieredStore) maybeDrain() {
	if s.journal == nil || s.closing.Load() || s.journal.Depth() == 0 {
		return
	}
	if !s.drainBusy.CompareAndSwap(false, true) {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		defer s.drainBusy.Store(false)
		s.drainJournal(context.Background())
	}()
}

// drainNow runs a synchronous journal replay, waiting out any
// background drain first (Sync/Close path — callers are quiesced).
func (s *TieredStore) drainNow(ctx context.Context) error {
	if s.journal == nil {
		return nil
	}
	for !s.drainBusy.CompareAndSwap(false, true) {
		time.Sleep(time.Millisecond)
	}
	defer s.drainBusy.Store(false)
	return s.drainJournal(ctx)
}

// drainJournal replays pending journal records to the remote tier —
// newest copy per vector, CRC-verified at journal open, end-to-end
// verified by the checksum layer above the tier on the next read.
// Entries superseded by a dirty cache copy are discarded (the cache
// push carries newer bytes). Stops at the first error, leaving the
// remainder durable on disk for the next recovery signal.
func (s *TieredStore) drainJournal(ctx context.Context) error {
	buf := make([]float64, s.cfg.VectorLen)
	for _, vi := range s.journal.Pending() {
		s.mu.Lock()
		slot, cached := s.slotOf[vi]
		superseded := cached && s.dirty[slot]
		s.mu.Unlock()
		if superseded {
			s.journal.Discard(vi)
			continue
		}
		if !s.journal.Snapshot(vi, buf) {
			continue
		}
		rctx := ctx
		var span *obs.Span
		if sp := s.currentSpan(); sp != nil {
			span = sp.StartChild("tier.journal_replay")
			span.SetAttr("vi", int64(vi))
			rctx = obs.ContextWithSpan(ctx, span)
		}
		err := s.remoteCall(rctx, false, vi, 1, buf)
		span.End()
		if err != nil {
			return err
		}
		s.st.remoteWrites.Add(1)
		s.st.remoteVecsW.Add(1)
		s.st.bytesPushed.Add(int64(len(buf)) * 8)
		if err := s.journal.Remove(vi); err != nil {
			return err
		}
	}
	return nil
}

// ProbeRemote issues one guarded single-vector read and discards the
// data. Degraded mode deliberately stops touching the remote tier,
// which also starves the breaker of the probe traffic it needs to
// notice recovery; health loops call this to keep probing. No-op when
// the breaker is closed.
func (s *TieredStore) ProbeRemote(ctx context.Context) error {
	if !s.Degraded() {
		return nil
	}
	buf := make([]float64, s.cfg.VectorLen)
	return s.remoteCall(ctx, true, 0, 1, buf)
}

func (s *TieredStore) noteErr(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
}

// admit installs data as vector vi in the cache tier, evicting an LRU
// victim when full. A dirty victim is copied out under the lock and
// pushed to the remote tier after it is released — remote-first with
// respect to slot reuse (the slot's new content is only trusted
// because the old content is either clean on the remote or carried by
// the pending write-back buffer that readers consult).
func (s *TieredStore) admit(vi int, data []float64, markDirty bool) error {
	var pushWB *tierWB
	s.mu.Lock()
	if slot, ok := s.slotOf[vi]; ok {
		err := s.cache.WriteVector(slot, data)
		if err == nil {
			s.now++
			s.stamp[slot] = s.now
			if markDirty {
				s.dirty[slot] = true
				if s.journal != nil {
					// The dirty cache copy supersedes any journaled
					// payload; replaying the old bytes would be wasted
					// (and transiently wrong) work.
					s.journal.Discard(vi)
				}
			}
		}
		s.mu.Unlock()
		return err
	}
	var slot int
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		// LRU victim.
		victim, oldest := -1, int64(1<<62)
		for sl, st := range s.stamp {
			if s.viOf[sl] >= 0 && st < oldest {
				victim, oldest = sl, st
			}
		}
		if victim < 0 {
			s.mu.Unlock()
			return fmt.Errorf("ooc: tiered store cache has no evictable slot")
		}
		vvi := s.viOf[victim]
		if s.dirty[victim] {
			wbuf := make([]float64, s.cfg.VectorLen)
			if err := s.cache.ReadVector(victim, wbuf); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("ooc: evicting dirty vector %d: %w", vvi, err)
			}
			pushWB = &tierWB{vi: vvi, buf: wbuf, done: make(chan struct{})}
			s.wb[vvi] = pushWB
			s.st.dirtyWritebacks.Add(1)
		}
		delete(s.slotOf, vvi)
		s.dirty[victim] = false
		s.st.evictions.Add(1)
		slot = victim
	}
	err := s.cache.WriteVector(slot, data)
	if err != nil {
		s.viOf[slot] = -1
		s.free = append(s.free, slot)
	} else {
		s.viOf[slot] = vi
		s.slotOf[vi] = slot
		s.now++
		s.stamp[slot] = s.now
		s.dirty[slot] = markDirty
		if markDirty && s.journal != nil {
			s.journal.Discard(vi)
		}
	}
	s.mu.Unlock()

	if pushWB != nil {
		ctx := context.Background()
		var wbSpan *obs.Span
		if sp := s.currentSpan(); sp != nil {
			wbSpan = sp.StartChild("tier.remote_put")
			wbSpan.SetAttr("vi", int64(pushWB.vi))
			wbSpan.SetAttr("bytes", int64(len(pushWB.buf))*8)
			ctx = obs.ContextWithSpan(ctx, wbSpan)
		}
		werr := s.remoteCall(ctx, false, pushWB.vi, 1, pushWB.buf)
		wbSpan.End()
		if werr == nil {
			s.st.remoteWrites.Add(1)
			s.st.remoteVecsW.Add(1)
			s.st.bytesPushed.Add(int64(len(pushWB.buf)) * 8)
		} else if s.journal != nil {
			// The remote tier cannot take this vector and its cache
			// slot is already promised away: the journal absorbs the
			// only remaining copy, durably, before any reader could
			// miss both the wb buffer and the journal and fetch the
			// stale remote bytes. Replayed on recovery.
			if jerr := s.journal.Append(pushWB.vi, pushWB.buf); jerr == nil {
				werr = nil
			} else {
				werr = fmt.Errorf("ooc: spilling evicted vector %d: %v (remote: %w)", pushWB.vi, jerr, werr)
			}
		}
		s.mu.Lock()
		if s.wb[pushWB.vi] == pushWB {
			delete(s.wb, pushWB.vi)
		}
		s.mu.Unlock()
		close(pushWB.done)
		if werr != nil && err == nil {
			err = fmt.Errorf("ooc: writing back evicted vector %d: %w", pushWB.vi, werr)
		}
	}
	return err
}
