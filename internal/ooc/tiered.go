package ooc

// TieredStore — the storage substrate for remote-backed runs. It
// composes the three tiers the ROADMAP's cluster story needs:
//
//	RAM slots (ooc.Manager)
//	   │ miss / write-back
//	   ▼
//	local write-back cache  — bounded FileStore + CRC64 sidecar in
//	   │                      CacheDir; LRU; dirty vectors pushed to
//	   │ miss / dirty evict   the remote tier BEFORE the slot is reused
//	   ▼
//	remote backend          — any Store; ranged (RangeStore) backends
//	                          get adjacent misses coalesced into one
//	                          request, issued over N parallel lanes
//
// Latency hiding and request economy:
//
//   - Single-flight: concurrent misses on the same vector join one
//     in-flight fetch instead of issuing duplicate remote reads.
//   - Coalescing: a lane grabs a maximal run of adjacent vector
//     indices from the miss queue and fetches them with one ranged
//     request — under load (the async pipeline's fetch workers missing
//     together) the queue naturally batches.
//   - Lanes: up to Lanes goroutines keep ranged requests in flight
//     concurrently, so remote latency overlaps.
//
// Crash safety: a dirty victim is written to the remote tier before
// its cache slot is reused, so the cache never holds the only copy of
// a vector while that copy is being discarded. Warm restarts are
// opportunistic: Sync/Close persist a cache index bound to the cache
// sidecar's manifest; on open, any mismatch (torn index, unclean
// sidecar, geometry change) discards the cache and cold-starts —
// correctness never depends on the cache surviving.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oocphylo/internal/obs"
)

// TieredConfig configures a TieredStore.
type TieredConfig struct {
	// NumVectors and VectorLen fix the store geometry (float64 carrier
	// units, like every other Store).
	NumVectors, VectorLen int
	// CacheDir holds the cache file, its checksum sidecar and the warm
	// index. Created if missing.
	CacheDir string
	// CacheVectors bounds the cache tier (in vectors, >= 1).
	CacheVectors int
	// Lanes is the number of parallel remote fetch lanes (default 2).
	Lanes int
	// MaxCoalesce caps how many adjacent vectors one ranged remote read
	// may carry (default 16).
	MaxCoalesce int
	// EstRTT seeds the fetch-cost estimate before any remote request
	// has been observed (default 5ms). The live EWMA replaces it.
	EstRTT time.Duration
}

func (c *TieredConfig) fill() error {
	if c.NumVectors < 1 || c.VectorLen < 1 {
		return fmt.Errorf("ooc: tiered store geometry %dx%d invalid", c.NumVectors, c.VectorLen)
	}
	if c.CacheVectors < 1 {
		return fmt.Errorf("ooc: tiered store cache capacity %d < 1", c.CacheVectors)
	}
	if c.CacheVectors > c.NumVectors {
		c.CacheVectors = c.NumVectors
	}
	if c.CacheDir == "" {
		return fmt.Errorf("ooc: tiered store needs a cache directory")
	}
	if c.Lanes < 1 {
		c.Lanes = 2
	}
	if c.MaxCoalesce < 1 {
		c.MaxCoalesce = 16
	}
	if c.EstRTT <= 0 {
		c.EstRTT = defaultRemoteCost
	}
	return nil
}

// TierStats is a snapshot of the tier counters.
type TierStats struct {
	// CacheHits and CacheMisses count reads served by / missing the
	// local cache tier (a read served from a pending dirty write-back
	// buffer counts as a hit — it never left the machine).
	CacheHits, CacheMisses int64
	// RemoteReads and RemoteWrites count ranged remote REQUESTS;
	// RemoteVectorsRead / RemoteVectorsWritten the vectors they carried.
	RemoteReads, RemoteWrites               int64
	RemoteVectorsRead, RemoteVectorsWritten int64
	// BytesFromCache and BytesFetched split read traffic by the tier
	// that served it; BytesPushed is remote write-back volume.
	BytesFromCache, BytesFetched, BytesPushed int64
	// Coalesced counts vectors that rode an existing ranged request
	// instead of costing their own round trip.
	Coalesced int64
	// SingleFlight counts misses that joined an in-flight fetch.
	SingleFlight int64
	// Evictions counts cache slots recycled; DirtyWritebacks the subset
	// that had to push a dirty vector remote first.
	Evictions, DirtyWritebacks int64
	// WarmStart reports whether the cache was adopted from a previous
	// cleanly closed run.
	WarmStart bool
	// EstRTT is the live remote-latency estimate (EWMA over requests).
	EstRTT time.Duration
}

// tierFetch is one in-flight remote read (single-flight unit). span is
// the request-scoped span active when the miss was enqueued (nil when
// untraced); the servicing lane parents its remote spans under it.
type tierFetch struct {
	vi   int
	buf  []float64
	err  error
	done chan struct{}
	span *obs.Span
}

// tierWB is a dirty victim's payload in flight to the remote tier;
// reads of the vector are served from buf until the write lands.
type tierWB struct {
	vi   int
	buf  []float64
	done chan struct{}
}

// TieredStore implements Store over a local write-back cache backed by
// a remote store. Safe for the Store contract's concurrency (distinct
// vectors; plus concurrent reads of the same vector, which single-
// flight turns into one remote request).
type TieredStore struct {
	remote Store
	cfg    TieredConfig

	// mu guards the cache tier: placement maps, recency, dirty flags,
	// pending write-backs and the cache store's I/O. Cache I/O is local
	// and fast; remote I/O never runs under mu.
	mu     sync.Mutex
	cache  *ChecksumStore
	slotOf map[int]int // vi -> cache slot
	viOf   []int       // slot -> vi (-1 = free)
	stamp  []int64     // slot -> recency
	dirty  []bool      // slot -> modified since last remote push
	now    int64
	free   []int
	wb     map[int]*tierWB // vi -> in-flight dirty write-back
	// firstErr latches the first background write-back failure (lane
	// admissions have no caller to report to); surfaced by Sync/Close.
	firstErr error

	// fmu guards the miss queue and single-flight map.
	fmu      sync.Mutex
	fcond    *sync.Cond
	queue    []*tierFetch
	inflight map[int]*tierFetch
	closed   bool
	lanes    sync.WaitGroup

	warm     bool
	latNanos atomic.Int64

	// span is the request-scoped tracing span tier activity is currently
	// attributed to (nil when untraced). Lanes read it concurrently with
	// the session loop setting it, hence atomic.
	span atomic.Pointer[obs.Span]

	st struct {
		cacheHits, cacheMisses     atomic.Int64
		remoteReads, remoteWrites  atomic.Int64
		remoteVecsR, remoteVecsW   atomic.Int64
		bytesCache, bytesFetched   atomic.Int64
		bytesPushed                atomic.Int64
		coalesced, singleFlight    atomic.Int64
		evictions, dirtyWritebacks atomic.Int64
	}

	// remoteLatObs mirrors per-request remote latency into a registry
	// histogram when instrumented (nil otherwise). Read under fmu.
	remoteLatObs func(seconds float64)
}

const tierIndexName = "cache.idx"

// tierIndex is the warm-restart index persisted next to the cache
// file. Manifest binds it to the exact sidecar state it was written
// under; any divergence cold-starts the cache.
type tierIndex struct {
	NumVectors   int      `json:"num_vectors"`
	VectorLen    int      `json:"vector_len"`
	CacheVectors int      `json:"cache_vectors"`
	Slots        []int    `json:"slots"` // slot -> vi (-1 = free)
	Manifest     Manifest `json:"manifest"`
}

// NewTieredStore opens a tiered store over remote. If CacheDir holds a
// cleanly closed cache from a previous run with the same geometry it
// is adopted warm; otherwise the cache starts cold. The remote store
// is NOT closed by Close — the caller owns it (it may be shared).
func NewTieredStore(remote Store, cfg TieredConfig) (*TieredStore, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(cfg.CacheDir, 0o755); err != nil {
		return nil, fmt.Errorf("ooc: creating cache dir: %w", err)
	}
	s := &TieredStore{
		remote:   remote,
		cfg:      cfg,
		slotOf:   make(map[int]int),
		viOf:     make([]int, cfg.CacheVectors),
		stamp:    make([]int64, cfg.CacheVectors),
		dirty:    make([]bool, cfg.CacheVectors),
		wb:       make(map[int]*tierWB),
		inflight: make(map[int]*tierFetch),
	}
	s.fcond = sync.NewCond(&s.fmu)
	for i := range s.viOf {
		s.viOf[i] = -1
	}
	if err := s.openCache(); err != nil {
		return nil, err
	}
	for i := 0; i < cfg.Lanes; i++ {
		s.lanes.Add(1)
		go s.lane()
	}
	return s, nil
}

// openCache adopts a warm cache when the on-disk index and sidecar
// agree, else creates a fresh (cold) cache. The index file is removed
// either way: it only ever describes a cleanly closed cache, so its
// absence is the crash marker.
func (s *TieredStore) openCache() error {
	cachePath := filepath.Join(s.cfg.CacheDir, "cache.vec")
	sumPath := cachePath + ".sum"
	idxPath := filepath.Join(s.cfg.CacheDir, tierIndexName)

	if idx, ok := s.loadIndex(idxPath); ok {
		os.Remove(idxPath)
		if fs, err := OpenFileStore(cachePath, s.cfg.CacheVectors, s.cfg.VectorLen); err == nil {
			if cs, err := OpenChecksumStore(fs, sumPath, s.cfg.CacheVectors, s.cfg.VectorLen); err == nil {
				if err := cs.VerifyManifest(idx.Manifest); err == nil {
					s.cache = cs
					s.warm = true
					for slot, vi := range idx.Slots {
						s.viOf[slot] = vi
						if vi >= 0 {
							s.slotOf[vi] = slot
						} else {
							s.free = append(s.free, slot)
						}
					}
					return nil
				}
				cs.Close()
			} else {
				fs.Close()
			}
		}
	} else {
		os.Remove(idxPath)
	}

	fs, err := NewFileStore(cachePath, s.cfg.CacheVectors, s.cfg.VectorLen)
	if err != nil {
		return err
	}
	cs, err := NewChecksumStore(fs, sumPath, s.cfg.CacheVectors, s.cfg.VectorLen)
	if err != nil {
		fs.Close()
		return err
	}
	s.cache = cs
	for i := s.cfg.CacheVectors - 1; i >= 0; i-- {
		s.free = append(s.free, i)
	}
	return nil
}

func (s *TieredStore) loadIndex(path string) (*tierIndex, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, false
	}
	var idx tierIndex
	if json.Unmarshal(data, &idx) != nil {
		return nil, false
	}
	if idx.NumVectors != s.cfg.NumVectors || idx.VectorLen != s.cfg.VectorLen ||
		idx.CacheVectors != s.cfg.CacheVectors || len(idx.Slots) != s.cfg.CacheVectors {
		return nil, false
	}
	return &idx, true
}

// WarmStart reports whether the cache was adopted from a previous run.
func (s *TieredStore) WarmStart() bool { return s.warm }

// SetSpan attributes subsequent tier activity (remote fetch/write-back
// spans) to the given request span; nil detaches. Safe to call from
// the session loop while lanes are in flight — a lane parents each
// remote request under the span captured when its miss was enqueued.
func (s *TieredStore) SetSpan(sp *obs.Span) { s.span.Store(sp) }

// currentSpan returns the active request span (nil when untraced).
func (s *TieredStore) currentSpan() *obs.Span { return s.span.Load() }

// ObserveRemoteLatency registers fn to receive every remote request's
// wall-clock duration in seconds (nil unregisters). Instrumentation
// uses it to feed a latency histogram without touching the hot path
// when nothing listens.
func (s *TieredStore) ObserveRemoteLatency(fn func(seconds float64)) {
	s.fmu.Lock()
	s.remoteLatObs = fn
	s.fmu.Unlock()
}

// Stats snapshots the tier counters.
func (s *TieredStore) Stats() TierStats {
	return TierStats{
		CacheHits:            s.st.cacheHits.Load(),
		CacheMisses:          s.st.cacheMisses.Load(),
		RemoteReads:          s.st.remoteReads.Load(),
		RemoteWrites:         s.st.remoteWrites.Load(),
		RemoteVectorsRead:    s.st.remoteVecsR.Load(),
		RemoteVectorsWritten: s.st.remoteVecsW.Load(),
		BytesFromCache:       s.st.bytesCache.Load(),
		BytesFetched:         s.st.bytesFetched.Load(),
		BytesPushed:          s.st.bytesPushed.Load(),
		Coalesced:            s.st.coalesced.Load(),
		SingleFlight:         s.st.singleFlight.Load(),
		Evictions:            s.st.evictions.Load(),
		DirtyWritebacks:      s.st.dirtyWritebacks.Load(),
		WarmStart:            s.warm,
		EstRTT:               time.Duration(s.latNanos.Load()),
	}
}

// ReadVector implements Store: cache tier first, then a single-flight,
// possibly coalesced remote fetch.
func (s *TieredStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= s.cfg.NumVectors {
		return fmt.Errorf("ooc: tiered store read out of range: %d", vi)
	}
	if len(dst) != s.cfg.VectorLen {
		return fmt.Errorf("ooc: tiered store read size %d, want %d", len(dst), s.cfg.VectorLen)
	}
	s.mu.Lock()
	if slot, ok := s.slotOf[vi]; ok {
		s.now++
		s.stamp[slot] = s.now
		err := s.cache.ReadVector(slot, dst)
		wasDirty := s.dirty[slot]
		if err != nil && IsCorruption(err) && !wasDirty {
			// Clean cached copy rotted locally: drop it and refetch the
			// authoritative remote copy instead of failing the read.
			delete(s.slotOf, vi)
			s.viOf[slot] = -1
			s.free = append(s.free, slot)
		} else {
			s.mu.Unlock()
			if err == nil {
				s.st.cacheHits.Add(1)
				s.st.bytesCache.Add(int64(len(dst)) * 8)
			}
			return err
		}
	}
	if w, ok := s.wb[vi]; ok {
		// Dirty write-back in flight: its buffer is the newest copy.
		copy(dst, w.buf)
		s.mu.Unlock()
		s.st.cacheHits.Add(1)
		s.st.bytesCache.Add(int64(len(dst)) * 8)
		return nil
	}
	s.mu.Unlock()

	s.st.cacheMisses.Add(1)
	f, joined := s.joinFetch(vi)
	if joined {
		s.st.singleFlight.Add(1)
	}
	<-f.done
	if f.err != nil {
		return f.err
	}
	copy(dst, f.buf)
	return nil
}

// WriteVector implements Store: write-back semantics — the payload
// lands dirty in the cache tier and reaches the remote tier on
// eviction or Sync.
func (s *TieredStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= s.cfg.NumVectors {
		return fmt.Errorf("ooc: tiered store write out of range: %d", vi)
	}
	if len(src) != s.cfg.VectorLen {
		return fmt.Errorf("ooc: tiered store write size %d, want %d", len(src), s.cfg.VectorLen)
	}
	// A write supersedes any in-flight write-back of the same vector;
	// wait for it so remote writes of one vector stay ordered.
	s.mu.Lock()
	w := s.wb[vi]
	s.mu.Unlock()
	if w != nil {
		<-w.done
	}
	return s.admit(vi, src, true)
}

// Close drains the lanes, pushes dirty state remote, seals the cache
// (sidecar + warm index) and closes it. The remote store stays open —
// the caller owns it.
func (s *TieredStore) Close() error {
	s.fmu.Lock()
	s.closed = true
	s.fcond.Broadcast()
	s.fmu.Unlock()
	s.lanes.Wait()
	first := s.Sync()
	if err := s.cache.Close(); err != nil && first == nil {
		first = err
	}
	return first
}

// Sync pushes every dirty cached vector to the remote tier (coalescing
// adjacent runs into ranged writes), syncs the cache file + sidecar,
// and persists the warm-restart index. Callers must be quiesced (no
// concurrent reads/writes), the same contract as Manager.Flush.
func (s *TieredStore) Sync() error {
	s.mu.Lock()
	for {
		var ch chan struct{}
		for _, w := range s.wb {
			ch = w.done
			break
		}
		if ch == nil {
			break
		}
		s.mu.Unlock()
		<-ch
		s.mu.Lock()
	}
	type dv struct{ vi, slot int }
	var dirties []dv
	for slot, d := range s.dirty {
		if d && s.viOf[slot] >= 0 {
			dirties = append(dirties, dv{s.viOf[slot], slot})
		}
	}
	sort.Slice(dirties, func(i, j int) bool { return dirties[i].vi < dirties[j].vi })
	vecLen := s.cfg.VectorLen
	var first error
	for i := 0; i < len(dirties); {
		j := i + 1
		for j < len(dirties) && j-i < s.cfg.MaxCoalesce && dirties[j].vi == dirties[j-1].vi+1 {
			j++
		}
		buf := make([]float64, (j-i)*vecLen)
		for k := i; k < j; k++ {
			if err := s.cache.ReadVector(dirties[k].slot, buf[(k-i)*vecLen:(k-i+1)*vecLen]); err != nil && first == nil {
				first = err
			}
		}
		ctx := context.Background()
		var syncSpan *obs.Span
		if sp := s.currentSpan(); sp != nil {
			syncSpan = sp.StartChild("tier.remote_put")
			syncSpan.SetAttr("vi", int64(dirties[i].vi))
			syncSpan.SetAttr("count", int64(j-i))
			ctx = obs.ContextWithSpan(ctx, syncSpan)
		}
		start := time.Now()
		err := WriteRangeOf(ctx, s.remote, vecLen, dirties[i].vi, j-i, buf)
		s.remoteObserved(time.Since(start))
		syncSpan.End()
		if err != nil {
			if first == nil {
				first = err
			}
		} else {
			s.st.remoteWrites.Add(1)
			s.st.remoteVecsW.Add(int64(j - i))
			s.st.bytesPushed.Add(int64(len(buf)) * 8)
			s.st.coalesced.Add(int64(j - i - 1))
			for k := i; k < j; k++ {
				s.dirty[dirties[k].slot] = false
			}
		}
		i = j
	}
	if s.firstErr != nil && first == nil {
		first = s.firstErr
	}
	s.mu.Unlock()
	if err := SyncStore(s.remote); err != nil && first == nil {
		first = err
	}
	if err := s.cache.Sync(); err != nil && first == nil {
		first = err
	}
	if first == nil {
		first = s.writeIndex()
	}
	return first
}

// writeIndex persists the warm-restart index, bound to the sidecar's
// current manifest, with a temp-file rename so it is atomic.
func (s *TieredStore) writeIndex() error {
	s.mu.Lock()
	idx := tierIndex{
		NumVectors:   s.cfg.NumVectors,
		VectorLen:    s.cfg.VectorLen,
		CacheVectors: s.cfg.CacheVectors,
		Slots:        append([]int(nil), s.viOf...),
		Manifest:     s.cache.Manifest(),
	}
	s.mu.Unlock()
	data, err := json.Marshal(idx)
	if err != nil {
		return err
	}
	path := filepath.Join(s.cfg.CacheDir, tierIndexName)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return fmt.Errorf("ooc: writing cache index: %w", err)
	}
	return os.Rename(tmp, path)
}

// FetchCost implements the engine's fetch-vs-recompute hook: a cached
// (or write-back-pending) vector costs nothing remote; anything else
// costs one remote round trip at the live latency estimate.
func (s *TieredStore) FetchCost(vi int) (time.Duration, bool) {
	s.mu.Lock()
	_, cached := s.slotOf[vi]
	if !cached {
		_, cached = s.wb[vi]
	}
	s.mu.Unlock()
	if cached {
		return 0, false
	}
	if d := time.Duration(s.latNanos.Load()); d > 0 {
		return d, true
	}
	return s.cfg.EstRTT, true
}

// MemOverheadBytes estimates the tier's heap footprint beyond the
// manager's slot pool: placement maps and per-slot metadata, plus the
// float64 buffers held by in-flight fetches and write-backs. Watchdog
// and Resize subtract it from the memory budget.
func (s *TieredStore) MemOverheadBytes() int64 {
	const mapEntry = 48 // rough per-entry cost of a map[int]int
	s.mu.Lock()
	n := int64(len(s.slotOf))*mapEntry + int64(len(s.wb))*(mapEntry+int64(s.cfg.VectorLen)*8)
	s.mu.Unlock()
	s.fmu.Lock()
	n += int64(len(s.inflight)) * (mapEntry + int64(s.cfg.VectorLen)*8)
	s.fmu.Unlock()
	n += int64(s.cfg.CacheVectors) * (8 + 8 + 1) // viOf, stamp, dirty
	n += int64(s.cfg.Lanes) * int64(s.cfg.MaxCoalesce) * int64(s.cfg.VectorLen) * 8
	return n
}

// joinFetch registers interest in vector vi, joining an in-flight
// fetch when one exists (single-flight).
func (s *TieredStore) joinFetch(vi int) (*tierFetch, bool) {
	s.fmu.Lock()
	defer s.fmu.Unlock()
	if f, ok := s.inflight[vi]; ok {
		return f, true
	}
	f := &tierFetch{vi: vi, buf: make([]float64, s.cfg.VectorLen), done: make(chan struct{}), span: s.currentSpan()}
	s.inflight[vi] = f
	s.queue = append(s.queue, f)
	s.fcond.Signal()
	return f, false
}

// lane is one remote fetch worker: it takes a maximal adjacent run
// from the miss queue, issues one ranged read, admits the results to
// the cache and wakes the waiters.
func (s *TieredStore) lane() {
	defer s.lanes.Done()
	vecLen := s.cfg.VectorLen
	for {
		s.fmu.Lock()
		for len(s.queue) == 0 && !s.closed {
			s.fcond.Wait()
		}
		if len(s.queue) == 0 {
			s.fmu.Unlock()
			return
		}
		sort.Slice(s.queue, func(i, j int) bool { return s.queue[i].vi < s.queue[j].vi })
		run := []*tierFetch{s.queue[0]}
		i := 1
		for i < len(s.queue) && len(run) < s.cfg.MaxCoalesce && s.queue[i].vi == run[len(run)-1].vi+1 {
			run = append(run, s.queue[i])
			i++
		}
		s.queue = append(s.queue[:0:0], s.queue[i:]...)
		if len(s.queue) > 0 {
			// More work remains: wake a sibling lane so runs overlap.
			s.fcond.Signal()
		}
		s.fmu.Unlock()

		buf := make([]float64, len(run)*vecLen)
		// Parent the ranged remote read under the first traced miss in
		// the run: the whole run is one coalesced request, so one span
		// (with the run geometry as attributes) covers it.
		var fetchSpan *obs.Span
		ctx := context.Background()
		for _, f := range run {
			if f.span != nil {
				fetchSpan = f.span.StartChild("tier.remote_get")
				fetchSpan.SetAttr("vi", int64(run[0].vi))
				fetchSpan.SetAttr("count", int64(len(run)))
				fetchSpan.SetAttr("bytes", int64(len(buf))*8)
				ctx = obs.ContextWithSpan(ctx, fetchSpan)
				break
			}
		}
		start := time.Now()
		err := ReadRangeOf(ctx, s.remote, vecLen, run[0].vi, len(run), buf)
		s.remoteObserved(time.Since(start))
		fetchSpan.End()
		s.st.remoteReads.Add(1)
		if err == nil {
			s.st.remoteVecsR.Add(int64(len(run)))
			s.st.bytesFetched.Add(int64(len(buf)) * 8)
			s.st.coalesced.Add(int64(len(run) - 1))
		}
		for k, f := range run {
			if err != nil {
				f.err = err
				continue
			}
			copy(f.buf, buf[k*vecLen:(k+1)*vecLen])
			if aerr := s.admit(f.vi, f.buf, false); aerr != nil {
				// The fetch itself succeeded — the waiter gets its data;
				// an admission (eviction write-back) failure is latched
				// for Sync/Close like a lost pipeline write-back.
				s.noteErr(aerr)
			}
		}
		s.fmu.Lock()
		for _, f := range run {
			delete(s.inflight, f.vi)
		}
		s.fmu.Unlock()
		for _, f := range run {
			close(f.done)
		}
	}
}

// remoteObserved charges one remote round trip to the latency EWMA and
// to the instrumented histogram, when one is attached.
func (s *TieredStore) remoteObserved(d time.Duration) {
	s.observeLatency(d)
	s.fmu.Lock()
	obs := s.remoteLatObs
	s.fmu.Unlock()
	if obs != nil {
		obs(d.Seconds())
	}
}

func (s *TieredStore) observeLatency(d time.Duration) {
	for {
		old := s.latNanos.Load()
		next := int64(d)
		if old > 0 {
			next = old + (int64(d)-old)/4
		}
		if s.latNanos.CompareAndSwap(old, next) {
			return
		}
	}
}

func (s *TieredStore) noteErr(err error) {
	s.mu.Lock()
	if s.firstErr == nil {
		s.firstErr = err
	}
	s.mu.Unlock()
}

// admit installs data as vector vi in the cache tier, evicting an LRU
// victim when full. A dirty victim is copied out under the lock and
// pushed to the remote tier after it is released — remote-first with
// respect to slot reuse (the slot's new content is only trusted
// because the old content is either clean on the remote or carried by
// the pending write-back buffer that readers consult).
func (s *TieredStore) admit(vi int, data []float64, markDirty bool) error {
	var pushWB *tierWB
	s.mu.Lock()
	if slot, ok := s.slotOf[vi]; ok {
		err := s.cache.WriteVector(slot, data)
		if err == nil {
			s.now++
			s.stamp[slot] = s.now
			if markDirty {
				s.dirty[slot] = true
			}
		}
		s.mu.Unlock()
		return err
	}
	var slot int
	if n := len(s.free); n > 0 {
		slot = s.free[n-1]
		s.free = s.free[:n-1]
	} else {
		// LRU victim.
		victim, oldest := -1, int64(1<<62)
		for sl, st := range s.stamp {
			if s.viOf[sl] >= 0 && st < oldest {
				victim, oldest = sl, st
			}
		}
		if victim < 0 {
			s.mu.Unlock()
			return fmt.Errorf("ooc: tiered store cache has no evictable slot")
		}
		vvi := s.viOf[victim]
		if s.dirty[victim] {
			wbuf := make([]float64, s.cfg.VectorLen)
			if err := s.cache.ReadVector(victim, wbuf); err != nil {
				s.mu.Unlock()
				return fmt.Errorf("ooc: evicting dirty vector %d: %w", vvi, err)
			}
			pushWB = &tierWB{vi: vvi, buf: wbuf, done: make(chan struct{})}
			s.wb[vvi] = pushWB
			s.st.dirtyWritebacks.Add(1)
		}
		delete(s.slotOf, vvi)
		s.dirty[victim] = false
		s.st.evictions.Add(1)
		slot = victim
	}
	err := s.cache.WriteVector(slot, data)
	if err != nil {
		s.viOf[slot] = -1
		s.free = append(s.free, slot)
	} else {
		s.viOf[slot] = vi
		s.slotOf[vi] = slot
		s.now++
		s.stamp[slot] = s.now
		s.dirty[slot] = markDirty
	}
	s.mu.Unlock()

	if pushWB != nil {
		ctx := context.Background()
		var wbSpan *obs.Span
		if sp := s.currentSpan(); sp != nil {
			wbSpan = sp.StartChild("tier.remote_put")
			wbSpan.SetAttr("vi", int64(pushWB.vi))
			wbSpan.SetAttr("bytes", int64(len(pushWB.buf))*8)
			ctx = obs.ContextWithSpan(ctx, wbSpan)
		}
		start := time.Now()
		werr := WriteRangeOf(ctx, s.remote, s.cfg.VectorLen, pushWB.vi, 1, pushWB.buf)
		s.remoteObserved(time.Since(start))
		wbSpan.End()
		if werr == nil {
			s.st.remoteWrites.Add(1)
			s.st.remoteVecsW.Add(1)
			s.st.bytesPushed.Add(int64(len(pushWB.buf)) * 8)
		}
		s.mu.Lock()
		if s.wb[pushWB.vi] == pushWB {
			delete(s.wb, pushWB.vi)
		}
		s.mu.Unlock()
		close(pushWB.done)
		if werr != nil && err == nil {
			err = fmt.Errorf("ooc: writing back evicted vector %d: %w", pushWB.vi, werr)
		}
	}
	return err
}
