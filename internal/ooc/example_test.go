package ooc_test

import (
	"fmt"

	"oocphylo/internal/ooc"
)

// The manager is the paper's getxvector() machinery: n vectors, m RAM
// slots, transparent swapping against a backing store.
func ExampleManager() {
	const vectors, vecLen = 8, 4
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors:   vectors,
		VectorLen:    vecLen,
		Slots:        3, // the paper's minimum: one step's working set
		Strategy:     ooc.NewLRU(vectors),
		ReadSkipping: true,
		Store:        ooc.NewMemStore(vectors, vecLen),
	})
	if err != nil {
		panic(err)
	}
	// Write-intent first accesses: read skipping elides the store read.
	for vi := 0; vi < vectors; vi++ {
		v, err := mgr.Vector(vi, true)
		if err != nil {
			panic(err)
		}
		v[0] = float64(vi * 10)
	}
	// Read them back. With only 3 slots, the sequential scan is LRU's
	// worst case: every access misses (real PLF traversals have the tree
	// locality that makes the paper's miss rates so low instead).
	sum := 0.0
	for vi := 0; vi < vectors; vi++ {
		v, err := mgr.Vector(vi, false)
		if err != nil {
			panic(err)
		}
		sum += v[0]
	}
	st := mgr.Stats()
	fmt.Println("sum:", sum)
	fmt.Println("requests:", st.Requests)
	fmt.Println("misses:", st.Misses)
	fmt.Println("reads skipped by write intent:", st.SkippedReads)
	// Output:
	// sum: 280
	// requests: 16
	// misses: 16
	// reads skipped by write intent: 8
}

func ExampleSlotsForFraction() {
	// The paper's f parameter: which fraction of the n ancestral vectors
	// gets a RAM slot.
	for _, f := range []float64{0.25, 0.5, 1.0} {
		fmt.Printf("f=%.2f over 1286 vectors -> %d slots\n", f, ooc.SlotsForFraction(f, 1286))
	}
	fmt.Println("floor:", ooc.SlotsForFraction(0.0001, 1286))
	// Output:
	// f=0.25 over 1286 vectors -> 322 slots
	// f=0.50 over 1286 vectors -> 643 slots
	// f=1.00 over 1286 vectors -> 1286 slots
	// floor: 3
}
