package ooc

import (
	"context"
	"strings"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/ooc/remote"
)

func TestParseRemoteURL(t *testing.T) {
	ep, err := ParseRemoteURL("remote://127.0.0.1:9000/run1.vec")
	if err != nil {
		t.Fatal(err)
	}
	if ep != "http://127.0.0.1:9000/o/run1.vec" {
		t.Errorf("endpoint = %q", ep)
	}
	for _, bad := range []string{"file:///x", "remote://hostonly", "remote:///obj", "remote://h:1/a/b"} {
		if _, err := ParseRemoteURL(bad); err == nil {
			t.Errorf("ParseRemoteURL(%q) should fail", bad)
		}
	}
	if !IsRemoteURL("remote://h:1/o") || IsRemoteURL("/tmp/x.vec") {
		t.Error("IsRemoteURL misclassifies")
	}
}

func TestObjectStoreRoundTrip(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s, err := NewObjectStore(srv.ObjectURL("v"), 6, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	src := []float64{1.5, -2.25, 1e30, 3.25e-12}
	if err := s.WriteVector(2, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 4)
	if err := s.ReadVector(2, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if dst[i] != src[i] {
			t.Errorf("pos %d: %v != %v (must round-trip bit-exact)", i, dst[i], src[i])
		}
	}
	// Never-written vectors read as zeros, like a fresh backing file.
	if err := s.ReadVector(0, dst); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		if v != 0 {
			t.Errorf("fresh vector pos %d = %v, want 0", i, v)
		}
	}
	// Ranged write + read of three adjacent vectors in one request.
	buf := make([]float64, 12)
	for i := range buf {
		buf[i] = float64(i) + 0.5
	}
	if err := s.WriteRange(context.Background(), 3, 3, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, 12)
	if err := s.ReadRange(context.Background(), 3, 3, got); err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		if got[i] != buf[i] {
			t.Fatalf("ranged read pos %d: %v != %v", i, got[i], buf[i])
		}
	}
	// Bounds checks.
	if err := s.ReadVector(6, dst); err == nil {
		t.Error("out-of-range read must fail")
	}
	if err := s.ReadRange(nil, 4, 3, make([]float64, 12)); err == nil {
		t.Error("out-of-range ranged read must fail")
	}
	if err := s.WriteVector(0, make([]float64, 3)); err == nil {
		t.Error("short write must fail")
	}
	// The latency EWMA is live and reported as a remote fetch cost.
	if d, remote := s.FetchCost(0); !remote || d <= 0 {
		t.Errorf("FetchCost = (%v, %v), want remote with positive cost", d, remote)
	}
}

func TestObjectStoreOpenValidatesGeometry(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	url := srv.ObjectURL("geom")
	if _, err := NewObjectStore(url, 4, 8); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenObjectStore(url, 4, 8); err != nil {
		t.Errorf("matching geometry must open: %v", err)
	}
	if _, err := OpenObjectStore(url, 5, 8); err == nil {
		t.Error("size mismatch must fail")
	}
	if _, err := OpenObjectStore(srv.ObjectURL("absent"), 4, 8); err == nil {
		t.Error("missing object must fail")
	}
}

func TestObjectStoreTransientErrors(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewObjectStore(srv.ObjectURL("t"), 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	srv.Close() // connection refused from here on
	err = s.ReadVector(0, make([]float64, 2))
	if err == nil {
		t.Fatal("read against a dead server must fail")
	}
	if !IsTransient(err) {
		t.Errorf("network failure should be transient (retryable): %v", err)
	}
	if !strings.Contains(err.Error(), "remote") {
		t.Errorf("error should identify the remote path: %v", err)
	}
}

func TestObjectStoreLatencyObserved(t *testing.T) {
	srv, err := remote.NewServer(remote.ServerConfig{
		Device: iosim.Device{Latency: 5 * time.Millisecond, Bandwidth: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s, err := NewObjectStore(srv.ObjectURL("lat"), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	buf := make([]float64, 4)
	if err := s.ReadVector(0, buf); err != nil {
		t.Fatal(err)
	}
	if got := s.EstLatency(); got < 4*time.Millisecond {
		t.Errorf("EstLatency = %v after a 5ms-injected read", got)
	}
}

// TestObjectStoreContextCancelMidGet covers the ISSUE's cancellation
// case: a ranged GET against a stalled backend must abort promptly when
// the caller's context is cancelled, not wait out the stall.
func TestObjectStoreContextCancelMidGet(t *testing.T) {
	chaos := iosim.NewChaos(iosim.ChaosConfig{StallProb: 1, Stall: 3 * time.Second})
	chaos.Disable() // setup traffic passes cleanly
	srv, err := remote.NewServer(remote.ServerConfig{Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s, err := NewObjectStore(srv.ObjectURL("cancel"), 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	chaos.Enable()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(30 * time.Millisecond)
		cancel()
	}()
	buf := make([]float64, 4*4)
	start := time.Now()
	err = s.ReadRange(ctx, 0, 4, buf)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled ranged GET returned success")
	}
	if elapsed >= time.Second {
		t.Errorf("cancellation took %v — the stall was waited out", elapsed)
	}
}

// TestObjectStoreDeadline pins SetDeadline: with no caller context at
// all, a stalled request must still be bounded, and the timeout must
// surface as a transient (retryable) error.
func TestObjectStoreDeadline(t *testing.T) {
	chaos := iosim.NewChaos(iosim.ChaosConfig{StallProb: 1, Stall: 3 * time.Second})
	chaos.Disable()
	srv, err := remote.NewServer(remote.ServerConfig{Chaos: chaos})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	s, err := NewObjectStore(srv.ObjectURL("deadline"), 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetDeadline(50 * time.Millisecond)
	chaos.Enable()

	start := time.Now()
	err = s.ReadVector(0, make([]float64, 4))
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadlined read against a stalled server returned success")
	}
	if !IsTransient(err) {
		t.Errorf("deadline expiry should be transient: %v", err)
	}
	if elapsed >= time.Second {
		t.Errorf("deadline not enforced: read took %v", elapsed)
	}
}
