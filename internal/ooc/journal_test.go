package ooc

import (
	"os"
	"path/filepath"
	"testing"
)

func journalVec(vlen, seed int) []float64 {
	v := make([]float64, vlen)
	for i := range v {
		v[i] = float64(seed*100 + i)
	}
	return v
}

func openTestJournal(t *testing.T, dir string, nvec, vlen int) *SpillJournal {
	t.Helper()
	j, err := OpenSpillJournal(filepath.Join(dir, "spill.jrnl"), nvec, vlen)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestSpillJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, 8, 4)
	defer j.Close()

	if j.Depth() != 0 || j.Has(3) {
		t.Fatal("fresh journal not empty")
	}
	for _, vi := range []int{3, 1, 5} {
		if err := j.Append(vi, journalVec(4, vi)); err != nil {
			t.Fatal(err)
		}
	}
	// Re-append vi 3 with newer bytes: newest wins.
	newest := journalVec(4, 42)
	if err := j.Append(3, newest); err != nil {
		t.Fatal(err)
	}
	if got := j.Pending(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("Pending = %v, want [1 3 5]", got)
	}
	dst := make([]float64, 4)
	if !j.Snapshot(3, dst) {
		t.Fatal("Snapshot(3) missing")
	}
	for i := range newest {
		if dst[i] != newest[i] {
			t.Fatalf("pos %d: %v != %v (newest append must win)", i, dst[i], newest[i])
		}
	}
	if j.Snapshot(0, dst) {
		t.Error("Snapshot of absent vector claimed success")
	}
	s := j.Stats()
	if s.Appends != 4 || s.Depth != 3 || s.Replayed != 0 {
		t.Errorf("stats = %+v, want 4 appends / depth 3", s)
	}
	// Invalid appends are rejected outright.
	if err := j.Append(-1, journalVec(4, 0)); err == nil {
		t.Error("negative vi accepted")
	}
	if err := j.Append(0, journalVec(3, 0)); err == nil {
		t.Error("short payload accepted")
	}
}

func TestSpillJournalReplayAfterReopen(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, 8, 4)
	j.Append(2, journalVec(4, 2))
	j.Append(6, journalVec(4, 6))
	j.Append(2, journalVec(4, 99)) // supersedes the first record for vi 2
	j.Close()

	j2 := openTestJournal(t, dir, 8, 4)
	defer j2.Close()
	if got := j2.Pending(); len(got) != 2 || got[0] != 2 || got[1] != 6 {
		t.Fatalf("Pending after reopen = %v, want [2 6]", got)
	}
	dst := make([]float64, 4)
	j2.Snapshot(2, dst)
	want := journalVec(4, 99)
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("pos %d: %v != %v (replay must keep the newest seq)", i, dst[i], want[i])
		}
	}
	// New appends after a replay must not collide with replayed seqs.
	if err := j2.Append(6, journalVec(4, 7)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openTestJournal(t, dir, 8, 4)
	defer j3.Close()
	j3.Snapshot(6, dst)
	if dst[0] != journalVec(4, 7)[0] {
		t.Error("post-replay append lost after second reopen")
	}
}

func TestSpillJournalCrashTailTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.jrnl")
	j := openTestJournal(t, dir, 8, 4)
	j.Append(1, journalVec(4, 1))
	j.Append(2, journalVec(4, 2))
	j.Close()

	// Simulate a torn final record: chop off its trailing CRC bytes.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	j2 := openTestJournal(t, dir, 8, 4)
	defer j2.Close()
	if got := j2.Pending(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Pending after torn tail = %v, want [1]", got)
	}
	// The tail is gone from the file too, so new appends land cleanly.
	if err := j2.Append(3, journalVec(4, 3)); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	j3 := openTestJournal(t, dir, 8, 4)
	defer j3.Close()
	if got := j3.Pending(); len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Pending after recovery append = %v, want [1 3]", got)
	}
}

func TestSpillJournalCorruptRecordDropped(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.jrnl")
	j := openTestJournal(t, dir, 8, 4)
	j.Append(1, journalVec(4, 1))
	j.Append(2, journalVec(4, 2))
	j.Close()

	// Flip a payload byte in the LAST record: its CRC fails, so replay
	// keeps the first record and truncates from the damage on.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	info, _ := f.Stat()
	recSize := int64(spillRecHdrSize + 4*8 + 8)
	if _, err := f.WriteAt([]byte{0xFF}, info.Size()-recSize+spillRecHdrSize); err != nil {
		t.Fatal(err)
	}
	f.Close()

	j2 := openTestJournal(t, dir, 8, 4)
	defer j2.Close()
	if got := j2.Pending(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Pending after corrupt record = %v, want [1]", got)
	}
}

func TestSpillJournalGeometryMismatchResets(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, 8, 4)
	j.Append(1, journalVec(4, 1))
	j.Close()

	// Same path, different geometry: the journal belongs to another run
	// and must come up empty rather than replay foreign bytes.
	j2 := openTestJournal(t, dir, 8, 6)
	defer j2.Close()
	if j2.Depth() != 0 {
		t.Fatalf("geometry-mismatched journal replayed %d vectors", j2.Depth())
	}
}

func TestSpillJournalDrainTruncatesToHeader(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "spill.jrnl")
	j := openTestJournal(t, dir, 8, 4)
	defer j.Close()
	for vi := 0; vi < 3; vi++ {
		j.Append(vi, journalVec(4, vi))
	}
	for vi := 0; vi < 3; vi++ {
		if err := j.Remove(vi); err != nil {
			t.Fatal(err)
		}
	}
	if j.Depth() != 0 {
		t.Fatalf("depth after drain = %d", j.Depth())
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() != spillHeaderSize {
		t.Errorf("drained journal is %d bytes, want header-only %d", info.Size(), spillHeaderSize)
	}
	s := j.Stats()
	if s.Replayed != 3 || s.FileBytes != spillHeaderSize {
		t.Errorf("stats after drain = %+v", s)
	}
	// Removing an absent vector is a no-op, not an error.
	if err := j.Remove(7); err != nil {
		t.Fatal(err)
	}
}

func TestSpillJournalDiscardDoesNotCountReplay(t *testing.T) {
	dir := t.TempDir()
	j := openTestJournal(t, dir, 8, 4)
	defer j.Close()
	j.Append(4, journalVec(4, 4))
	j.Discard(4)
	s := j.Stats()
	if s.Depth != 0 || s.Replayed != 0 || s.Discards != 1 {
		t.Errorf("stats after discard = %+v, want depth 0, 0 replayed, 1 discard", s)
	}
	j.Discard(4) // idempotent
	if s := j.Stats(); s.Discards != 1 {
		t.Errorf("double discard counted: %+v", s)
	}
}
