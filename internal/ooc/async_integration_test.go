package ooc_test

import (
	"fmt"
	"path/filepath"
	"testing"

	"oocphylo/internal/ooc"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
)

// asyncCase runs the standard mixed workload (likelihoods at every
// edge, branch optimisation, full traversal) once and returns every
// observable: the likelihood trace endpoint, optimised branch lengths,
// and all manager counters.
func asyncCase(t *testing.T, strategyName string, f float64, readSkip, async bool,
	depth int) (float64, []float64, ooc.Stats, ooc.PrefetchStats) {
	t.Helper()
	const n, sites, seed = 24, 120, 99
	tr, pats, mdl := buildCase(t, n, sites, seed)
	inner := tr.NumInner()
	vecLen := plf.VectorLength(mdl, pats.NumPatterns())
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: inner, VectorLen: vecLen,
		Slots:        ooc.SlotsForFraction(f, inner),
		Strategy:     strategyFor(strategyName, inner, tr, seed),
		ReadSkipping: readSkip,
		Store:        ooc.NewMemStore(inner, vecLen),
		Async:        async, IOWorkers: 2, WriteBuffers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := plf.New(tr, pats, mdl, mgr)
	if err != nil {
		t.Fatal(err)
	}
	e.EnablePrefetch(true)
	e.SetPrefetchDepth(depth)
	lnl, lens := workload(t, e, tr)
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return lnl, lens, mgr.Stats(), mgr.PrefetchStats()
}

// TestAsyncEquivalenceAllStrategies is the tentpole's correctness bar:
// for every replacement strategy × read-skipping combination, turning
// the async pipeline on must leave the log-likelihood bit-identical and
// every miss/read/write counter unchanged. The pipeline may change WHEN
// I/O happens, never WHAT is computed.
func TestAsyncEquivalenceAllStrategies(t *testing.T) {
	for _, strategyName := range []string{"RAND", "LRU", "LFU", "Topological"} {
		for _, readSkip := range []bool{false, true} {
			name := strategyName
			if readSkip {
				name += "/skip"
			}
			t.Run(name, func(t *testing.T) {
				sLnL, sLens, sStats, sPf := asyncCase(t, strategyName, 0.25, readSkip, false, 2)
				aLnL, aLens, aStats, aPf := asyncCase(t, strategyName, 0.25, readSkip, true, 2)
				if sLnL != aLnL {
					t.Errorf("likelihood diverged: sync %v, async %v", sLnL, aLnL)
				}
				for i := range sLens {
					if sLens[i] != aLens[i] {
						t.Fatalf("optimised branch %d diverged: sync %v, async %v", i, sLens[i], aLens[i])
					}
				}
				if sStats != aStats {
					t.Errorf("manager counters diverged:\n sync %+v\nasync %+v", sStats, aStats)
				}
				if sPf != aPf {
					t.Errorf("prefetch counters diverged:\n sync %+v\nasync %+v", sPf, aPf)
				}
			})
		}
	}
}

// sprTrace runs a short SPR search and returns the full recorded
// likelihood trace (start, per-round implicit in Result) plus counters.
func sprTrace(t *testing.T, async bool) (search.Result, ooc.Stats) {
	t.Helper()
	const n, sites, seed = 16, 96, 7
	tr, pats, mdl := buildCase(t, n, sites, seed)
	inner := tr.NumInner()
	vecLen := plf.VectorLength(mdl, pats.NumPatterns())
	mgr, err := ooc.NewManager(ooc.Config{
		NumVectors: inner, VectorLen: vecLen,
		Slots:        ooc.SlotsForFraction(0.3, inner),
		Strategy:     ooc.NewLRU(inner),
		ReadSkipping: true,
		Store:        ooc.NewMemStore(inner, vecLen),
		Async:        async,
	})
	if err != nil {
		t.Fatal(err)
	}
	e, err := plf.New(tr, pats, mdl, mgr)
	if err != nil {
		t.Fatal(err)
	}
	e.EnablePrefetch(true)
	e.SetPrefetchDepth(2)
	res, err := search.New(e, search.Options{SPRRadius: 4, MaxRounds: 2}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Close(); err != nil {
		t.Fatal(err)
	}
	return *res, mgr.Stats()
}

// TestAsyncEquivalenceSPRSearch replays an SPR tree-search workload —
// the paper's evaluation workload, with its long recorded trace of
// likelihood evaluations — sync and async, and demands an identical
// search trajectory (same moves accepted, same likelihoods) and
// identical Stats.Misses.
func TestAsyncEquivalenceSPRSearch(t *testing.T) {
	sRes, sStats := sprTrace(t, false)
	aRes, aStats := sprTrace(t, true)
	// Alpha is NaN when not optimised and NaN != NaN; neutralise it so
	// the struct comparison checks the actual trajectory fields.
	sRes.Alpha, aRes.Alpha = 0, 0
	if sRes != aRes {
		t.Errorf("SPR search trajectory diverged:\n sync %+v\nasync %+v", sRes, aRes)
	}
	if sStats != aStats {
		t.Errorf("manager counters diverged on SPR workload:\n sync %+v\nasync %+v", sStats, aStats)
	}
}

// TestAsyncPipelineOnRealFiles is the -race integration test required
// by the issue: the full pipeline (worker goroutines, write-back queue,
// joins) over an actual on-disk MultiFileStore, verified against a
// synchronous FileStore run of the same workload.
func TestAsyncPipelineOnRealFiles(t *testing.T) {
	run := func(async bool) (float64, []float64, ooc.Stats) {
		const n, sites, seed = 20, 100, 31
		tr, pats, mdl := buildCase(t, n, sites, seed)
		inner := tr.NumInner()
		vecLen := plf.VectorLength(mdl, pats.NumPatterns())
		var store ooc.Store
		var err error
		if async {
			store, err = ooc.NewMultiFileStore(filepath.Join(t.TempDir(), "vec.bin"), 3, inner, vecLen)
		} else {
			store, err = ooc.NewFileStore(filepath.Join(t.TempDir(), "vec.bin"), inner, vecLen)
		}
		if err != nil {
			t.Fatal(err)
		}
		mgr, err := ooc.NewManager(ooc.Config{
			NumVectors: inner, VectorLen: vecLen,
			Slots:        ooc.SlotsForFraction(0.25, inner),
			Strategy:     ooc.NewLRU(inner),
			ReadSkipping: true,
			Store:        store,
			Async:        async, IOWorkers: 3, WriteBuffers: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		e, err := plf.New(tr, pats, mdl, mgr)
		if err != nil {
			t.Fatal(err)
		}
		e.EnablePrefetch(true)
		e.SetPrefetchDepth(3)
		lnl, lens := workload(t, e, tr)
		if err := mgr.Close(); err != nil {
			t.Fatal(err)
		}
		if err := store.Close(); err != nil {
			t.Fatal(err)
		}
		return lnl, lens, mgr.Stats()
	}
	sLnL, sLens, sStats := run(false)
	aLnL, aLens, aStats := run(true)
	if sLnL != aLnL {
		t.Errorf("likelihood diverged on file-backed stores: sync %v, async %v", sLnL, aLnL)
	}
	if fmt.Sprintf("%v", sLens) != fmt.Sprintf("%v", aLens) {
		t.Error("optimised branch lengths diverged on file-backed stores")
	}
	if sStats != aStats {
		t.Errorf("manager counters diverged on file-backed stores:\n sync %+v\nasync %+v", sStats, aStats)
	}
}
