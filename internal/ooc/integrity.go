package ooc

// Integrity layer — the fault-tolerance half of the paper's closing
// claim. "Given enough execution time and disk space, the out-of-core
// version can be deployed to essentially infer trees on datasets of
// arbitrary size" (§4.3) implies runs long enough that disk faults,
// torn writes and bit rot are expected events, not exceptions. This
// file adds the two pieces the store stack needs to survive them:
//
//   - ChecksumStore wraps any Store with a per-vector CRC64 +
//     generation-tag sidecar. Every read is verified against the
//     checksum recorded at write time; a mismatch surfaces as a typed
//     *CorruptionError instead of silently poisoning the likelihood.
//     The sidecar carries a versioned header binding it to the backing
//     file's geometry, and a manifest (generation, checksum-of-
//     checksums) that checkpoints can persist so a resumed run can
//     validate — or decide to rebuild — the backing file.
//
//   - RetryPolicy implements capped exponential backoff for transient
//     I/O errors (ErrTransientIO), used by the manager's synchronous
//     demand path and the async pipeline workers alike.
//
// Crucially, corruption need not abort a run: the LvD framing of
// likelihood computation as a recompute-vs-store tradeoff (Bryant et
// al.) means any ancestral vector is recomputable from its children,
// so the likelihood engine turns a *CorruptionError into a partial
// re-traversal (see plf.Engine) — extra compute instead of a failed
// run.

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"math"
	"math/rand"
	"os"
	"sync/atomic"
	"time"
)

// CorruptionError reports that a vector read back from the backing
// store does not match the checksum recorded when it was last written —
// a torn write, a flipped bit, or an overwritten region.
type CorruptionError struct {
	// Vector is the corrupted vector's global index.
	Vector int
	// Want is the checksum recorded at write time; Got what the payload
	// read back hashes to.
	Want, Got uint64
}

// Error implements error.
func (e *CorruptionError) Error() string {
	return fmt.Sprintf("ooc: vector %d corrupt: checksum %016x, want %016x", e.Vector, e.Got, e.Want)
}

// CorruptVector returns the corrupted vector's index. The method (not
// the concrete type) is what the likelihood engine's recovery path
// matches on, so plf need not import this package.
func (e *CorruptionError) CorruptVector() int { return e.Vector }

// IsCorruption reports whether err is (or wraps) a *CorruptionError.
func IsCorruption(err error) bool {
	var ce *CorruptionError
	return errors.As(err, &ce)
}

// PrecisionMismatchError reports a resume attempt whose compute
// precision does not match the precision the persisted store was
// written under. The carrier geometry alone cannot catch every such
// mismatch (an f32 run over 2L patterns has the same carrier length as
// an f64 run over L), and silently reinterpreting the bytes would
// decode garbage likelihoods, so the manifest records the element
// precision and the mismatch is a hard, typed error — unlike geometry
// mismatches, which fall back to rebuilding the store.
type PrecisionMismatchError struct {
	// Store is the precision recorded in the manifest ("" means a
	// legacy float64 store); Run is the precision of the resuming run.
	Store, Run string
}

// Error implements error.
func (e *PrecisionMismatchError) Error() string {
	st := e.Store
	if st == "" {
		st = "f64 (legacy)"
	}
	return fmt.Sprintf("ooc: store precision %s does not match run precision %s; restart without -resume or rerun at the store's precision", st, e.Run)
}

// IsPrecisionMismatch reports whether err is (or wraps) a
// *PrecisionMismatchError.
func IsPrecisionMismatch(err error) bool {
	var pe *PrecisionMismatchError
	return errors.As(err, &pe)
}

// ErrTransientIO marks an I/O failure believed to be transient — worth
// re-issuing rather than aborting. FaultStore wraps its injected EIO
// errors with it; real-device store implementations can do the same.
var ErrTransientIO = errors.New("transient I/O error")

// IsTransient reports whether err is worth retrying.
func IsTransient(err error) bool { return errors.Is(err, ErrTransientIO) }

// RetryPolicy caps the retry loop applied to transient store errors:
// up to Max re-issues with full-jitter exponential backoff starting at
// Base and capped at Cap. The zero value disables retries (first error
// wins).
type RetryPolicy struct {
	// Max is the number of re-issues after the initial attempt.
	Max int
	// Base is the backoff envelope before the first retry (default
	// 200µs when Max > 0); each subsequent retry doubles it.
	Base time.Duration
	// Cap bounds the per-retry envelope (default 50ms).
	Cap time.Duration
	// Rand supplies the uniform variates for full-jitter backoff: each
	// sleep is drawn uniformly from (0, envelope]. Deterministic
	// doubling would wake every remote lane at the same instant after a
	// shared outage — a synchronized retry storm — so jitter is always
	// on; nil uses the (goroutine-safe) global math/rand source, tests
	// inject a seeded func to stay deterministic.
	Rand func() float64
}

// jittered draws one full-jitter sleep from the envelope d.
func (rp RetryPolicy) jittered(d time.Duration) time.Duration {
	f := rand.Float64
	if rp.Rand != nil {
		f = rp.Rand
	}
	j := time.Duration(f() * float64(d))
	if j <= 0 {
		j = 1
	}
	return j
}

// run executes op, re-issuing it per the policy while the error is
// transient. Every retry taken is added to counter (shared between the
// compute thread and pipeline workers, hence atomic).
func (rp RetryPolicy) run(counter *atomic.Int64, op func() error) error {
	return rp.runCtx(nil, counter, op)
}

// runCtx is run with cooperative cancellation: a non-nil ctx aborts
// the backoff sleeps once cancelled. op itself is never interrupted —
// the first attempt always runs to completion, so a cancelled context
// degrades the policy to "no retries" rather than "no I/O".
func (rp RetryPolicy) runCtx(ctx context.Context, counter *atomic.Int64, op func() error) error {
	err := op()
	delay := rp.Base
	if delay <= 0 {
		delay = 200 * time.Microsecond
	}
	cap := rp.Cap
	if cap <= 0 {
		cap = 50 * time.Millisecond
	}
	for attempt := 0; attempt < rp.Max && IsTransient(err); attempt++ {
		if delay > cap {
			delay = cap
		}
		sleep := rp.jittered(delay)
		if ctx != nil {
			select {
			case <-time.After(sleep):
			case <-ctx.Done():
				return fmt.Errorf("ooc: retry abandoned after %w: %w", err, ctx.Err())
			}
		} else {
			time.Sleep(sleep)
		}
		delay *= 2
		if counter != nil {
			counter.Add(1)
		}
		err = op()
	}
	return err
}

// Manifest summarises a ChecksumStore for external persistence: the
// geometry it is bound to, the write-generation high-water mark, and a
// checksum over the per-vector checksum table itself. checkpoint.State
// embeds one so -resume can detect a backing file that does not match
// the run being resumed.
type Manifest struct {
	NumVectors int    `json:"num_vectors"`
	VectorLen  int    `json:"vector_len"`
	Generation uint64 `json:"generation"`
	SumOfSums  uint64 `json:"sum_of_sums"`
	// Precision is the element precision of the persisted vectors
	// ("f64" or "f32"); empty in manifests written before the field
	// existed, which always meant float64. VectorLen is the carrier
	// length in float64s either way.
	Precision string `json:"precision,omitempty"`
}

// crcTable is the ECMA CRC64 table shared by all checksum operations.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Sidecar layout: a fixed header binding the sidecar to the backing
// file's geometry, then one 16-byte record (checksum, generation) per
// vector. Records are written with positioned writes as vectors land;
// the header's generation and sum-of-sums are refreshed by Sync/Close.
const (
	sidecarMagic      = "OOCSUM\x01\n"
	sidecarHeaderSize = 48
	sidecarRecordSize = 16
)

// vectorChecksum hashes a vector's payload in its on-disk (little-
// endian float64) representation, so the checksum is byte-exact against
// what FileStore persists.
func vectorChecksum(v []float64) uint64 {
	if hostLittleEndian {
		return crc64.Checksum(f64Bytes(v), crcTable)
	}
	h := crc64.New(crcTable)
	var buf [8]byte
	for _, x := range v {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(x))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// ChecksumStore wraps an inner Store with per-vector CRC64 verification
// and a persistent sidecar file. Reads of a never-written vector are
// accepted as-is (a fresh backing file legitimately reads zeros); any
// other read whose payload does not hash to the recorded checksum
// returns a *CorruptionError.
//
// Concurrency matches the Store contract: calls on distinct vectors are
// safe (per-vector state lives at distinct slice indices and distinct
// sidecar offsets; the generation counter is atomic), concurrent
// operations on the same vector are the caller's bug.
type ChecksumStore struct {
	inner  Store
	f      *os.File
	path   string
	n      int
	vecLen int
	// precision tags the element precision recorded in the manifest
	// (see SetPrecision); "" is treated as "f64" for compatibility with
	// sidecars and manifests written before the tag existed.
	precision string
	sums      []uint64
	gens      []uint64
	gen       atomic.Uint64
	// CorruptReads counts reads that failed verification.
	corruptReads atomic.Int64
}

// NewChecksumStore creates a fresh sidecar at sidecarPath (truncating
// any previous one) for an inner store holding numVectors vectors of
// vecLen float64s.
func NewChecksumStore(inner Store, sidecarPath string, numVectors, vecLen int) (*ChecksumStore, error) {
	if numVectors < 0 || vecLen <= 0 {
		return nil, fmt.Errorf("ooc: invalid checksum store geometry: %d vectors of %d", numVectors, vecLen)
	}
	f, err := os.OpenFile(sidecarPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: creating checksum sidecar: %w", err)
	}
	if err := f.Truncate(sidecarHeaderSize + int64(numVectors)*sidecarRecordSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: sizing checksum sidecar: %w", err)
	}
	s := &ChecksumStore{
		inner: inner, f: f, path: sidecarPath,
		n: numVectors, vecLen: vecLen,
		sums: make([]uint64, numVectors),
		gens: make([]uint64, numVectors),
	}
	if err := s.writeHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return s, nil
}

// OpenChecksumStore loads an existing sidecar, validating that its
// header matches the given geometry and that its record table matches
// the header's checksum-of-checksums (a cleanly closed sidecar).
func OpenChecksumStore(inner Store, sidecarPath string, numVectors, vecLen int) (*ChecksumStore, error) {
	f, err := os.OpenFile(sidecarPath, os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: opening checksum sidecar: %w", err)
	}
	s := &ChecksumStore{
		inner: inner, f: f, path: sidecarPath,
		n: numVectors, vecLen: vecLen,
		sums: make([]uint64, numVectors),
		gens: make([]uint64, numVectors),
	}
	hdr := make([]byte, sidecarHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: reading sidecar header: %w", err)
	}
	if string(hdr[:8]) != sidecarMagic {
		f.Close()
		return nil, fmt.Errorf("ooc: %s is not a checksum sidecar", sidecarPath)
	}
	hn := binary.LittleEndian.Uint64(hdr[8:])
	hl := binary.LittleEndian.Uint64(hdr[16:])
	if int(hn) != numVectors || int(hl) != vecLen {
		f.Close()
		return nil, fmt.Errorf("ooc: sidecar geometry %dx%d does not match store %dx%d",
			hn, hl, numVectors, vecLen)
	}
	gen := binary.LittleEndian.Uint64(hdr[24:])
	sos := binary.LittleEndian.Uint64(hdr[32:])
	recs := make([]byte, numVectors*sidecarRecordSize)
	if _, err := f.ReadAt(recs, sidecarHeaderSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("ooc: reading sidecar records: %w", err)
	}
	for i := 0; i < numVectors; i++ {
		s.sums[i] = binary.LittleEndian.Uint64(recs[i*sidecarRecordSize:])
		s.gens[i] = binary.LittleEndian.Uint64(recs[i*sidecarRecordSize+8:])
	}
	s.gen.Store(gen)
	if got := s.sumOfSums(); got != sos {
		f.Close()
		return nil, fmt.Errorf("ooc: sidecar %s not cleanly closed: checksum-of-checksums %016x, header says %016x",
			sidecarPath, got, sos)
	}
	return s, nil
}

// writeHeader refreshes the sidecar header from the in-memory state.
func (s *ChecksumStore) writeHeader() error {
	hdr := make([]byte, sidecarHeaderSize)
	copy(hdr, sidecarMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.n))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(s.vecLen))
	binary.LittleEndian.PutUint64(hdr[24:], s.gen.Load())
	binary.LittleEndian.PutUint64(hdr[32:], s.sumOfSums())
	if _, err := s.f.WriteAt(hdr, 0); err != nil {
		return fmt.Errorf("ooc: writing sidecar header: %w", err)
	}
	return nil
}

// sumOfSums hashes the whole record table — the "checksum of checksums"
// a checkpoint manifest carries.
func (s *ChecksumStore) sumOfSums() uint64 {
	h := crc64.New(crcTable)
	var rec [sidecarRecordSize]byte
	for i := range s.sums {
		binary.LittleEndian.PutUint64(rec[0:], s.sums[i])
		binary.LittleEndian.PutUint64(rec[8:], s.gens[i])
		h.Write(rec[:])
	}
	return h.Sum64()
}

// ReadVector implements Store: read through, then verify.
func (s *ChecksumStore) ReadVector(vi int, dst []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: checksum store read out of range: %d", vi)
	}
	if err := s.inner.ReadVector(vi, dst); err != nil {
		return err
	}
	if s.gens[vi] == 0 {
		// Never written: a fresh backing file reads zeros, which is fine.
		return nil
	}
	if got := vectorChecksum(dst); got != s.sums[vi] {
		s.corruptReads.Add(1)
		return &CorruptionError{Vector: vi, Want: s.sums[vi], Got: got}
	}
	return nil
}

// WriteVector implements Store: write through, then record the payload's
// checksum and a fresh generation tag in memory and in the sidecar. The
// checksum is computed from the caller's payload (the write intent), so
// a torn write underneath is caught by the next read.
func (s *ChecksumStore) WriteVector(vi int, src []float64) error {
	if vi < 0 || vi >= s.n {
		return fmt.Errorf("ooc: checksum store write out of range: %d", vi)
	}
	if err := s.inner.WriteVector(vi, src); err != nil {
		return err
	}
	sum := vectorChecksum(src)
	gen := s.gen.Add(1)
	s.sums[vi], s.gens[vi] = sum, gen
	var rec [sidecarRecordSize]byte
	binary.LittleEndian.PutUint64(rec[0:], sum)
	binary.LittleEndian.PutUint64(rec[8:], gen)
	if _, err := s.f.WriteAt(rec[:], sidecarHeaderSize+int64(vi)*sidecarRecordSize); err != nil {
		return fmt.Errorf("ooc: writing checksum record for vector %d: %w", vi, err)
	}
	return nil
}

// CorruptReads returns how many reads failed verification.
func (s *ChecksumStore) CorruptReads() int64 { return s.corruptReads.Load() }

// SetPrecision records the element precision ("f64" or "f32") of the
// vectors this store persists; it is carried in the manifest so a
// resumed run can refuse a store written at the other precision (see
// PrecisionMismatchError). The default "" reads as f64.
func (s *ChecksumStore) SetPrecision(p string) { s.precision = p }

// Precision returns the recorded element precision ("" means legacy
// f64).
func (s *ChecksumStore) Precision() string { return s.precision }

// Manifest returns the store's current manifest for external
// persistence (e.g. inside a checkpoint).
func (s *ChecksumStore) Manifest() Manifest {
	return Manifest{
		NumVectors: s.n,
		VectorLen:  s.vecLen,
		Generation: s.gen.Load(),
		SumOfSums:  s.sumOfSums(),
		Precision:  s.precision,
	}
}

// normPrecision maps the legacy empty precision tag to "f64".
func normPrecision(p string) string {
	if p == "" {
		return "f64"
	}
	return p
}

// VerifyManifest checks the store's current state against a previously
// persisted manifest, returning a descriptive error on any mismatch.
// A precision mismatch is reported as a typed *PrecisionMismatchError.
func (s *ChecksumStore) VerifyManifest(m Manifest) error {
	cur := s.Manifest()
	if normPrecision(cur.Precision) != normPrecision(m.Precision) {
		return &PrecisionMismatchError{Store: m.Precision, Run: normPrecision(cur.Precision)}
	}
	switch {
	case cur.NumVectors != m.NumVectors || cur.VectorLen != m.VectorLen:
		return fmt.Errorf("ooc: store geometry %dx%d does not match manifest %dx%d",
			cur.NumVectors, cur.VectorLen, m.NumVectors, m.VectorLen)
	case cur.Generation != m.Generation:
		return fmt.Errorf("ooc: store generation %d does not match manifest %d",
			cur.Generation, m.Generation)
	case cur.SumOfSums != m.SumOfSums:
		return fmt.Errorf("ooc: store checksum-of-checksums %016x does not match manifest %016x",
			cur.SumOfSums, m.SumOfSums)
	}
	return nil
}

// Verify scans every written vector against its recorded checksum and
// returns the indices that fail (nil when the store is clean). Reads go
// straight to the inner store, so Verify also exercises the medium.
func (s *ChecksumStore) Verify() ([]int, error) {
	buf := make([]float64, s.vecLen)
	var bad []int
	for vi := 0; vi < s.n; vi++ {
		if s.gens[vi] == 0 {
			continue
		}
		if err := s.inner.ReadVector(vi, buf); err != nil {
			return bad, err
		}
		if vectorChecksum(buf) != s.sums[vi] {
			bad = append(bad, vi)
		}
	}
	return bad, nil
}

// Sync flushes the sidecar (header refreshed from the current state) to
// stable storage, then syncs the inner store when it supports it — a
// checkpoint that persists this store's manifest must know the vectors
// it describes are durable too.
func (s *ChecksumStore) Sync() error {
	if err := s.writeHeader(); err != nil {
		return err
	}
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("ooc: syncing sidecar: %w", err)
	}
	return SyncStore(s.inner)
}

// FetchCost forwards the fetch-vs-recompute estimate to the inner
// store; verification adds no transfer cost.
func (s *ChecksumStore) FetchCost(vi int) (time.Duration, bool) {
	return StoreFetchCost(s.inner, vi)
}

// MemOverheadBytes reports the checksum tables (16 bytes per vector)
// plus whatever the inner store tracks.
func (s *ChecksumStore) MemOverheadBytes() int64 {
	return int64(s.n)*16 + StoreMemOverhead(s.inner)
}

// Degraded forwards the inner store's degraded signal (remote circuit
// open), so the planner sees it through the checksum wrapper.
func (s *ChecksumStore) Degraded() bool {
	return StoreDegraded(s.inner)
}

// Close implements Store: it seals the sidecar (so OpenChecksumStore
// accepts it later) and closes the inner store.
func (s *ChecksumStore) Close() error {
	first := s.Sync()
	if err := s.f.Close(); err != nil && first == nil {
		first = err
	}
	if err := s.inner.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
