package ooc

// Prefetching — the paper's §5 future work ("we will assess if
// pre-fetching can be deployed by means of a prefetch thread"). The
// traversal plan makes the next vector accesses perfectly predictable,
// so the likelihood engine can ask the manager to stage the next
// step's inputs while the current step computes. The manager executes
// prefetches synchronously (the engine is single-threaded), but the
// counters separate blocking demand misses from prefetch-staged reads:
// with an asynchronous prefetch thread the latter would overlap
// compute, so PrefetchHits is exactly the number of demand misses a
// prefetch thread would hide.

// PrefetchStats extends the manager counters with prefetch accounting.
type PrefetchStats struct {
	// Issued counts Prefetch calls; Reads the store reads they caused
	// (issued minus already-resident).
	Issued, Reads int64
	// Hits counts demand accesses that found their vector resident
	// because a prefetch staged it.
	Hits int64
	// Wasted counts prefetched vectors evicted before any demand access.
	Wasted int64
}

// Prefetch stages vector vi into a slot without counting a demand miss.
// pinned has the same meaning as in Vector. A resident vi is a no-op.
// Prefetched data is always read from the store (the engine prefetches
// read-intent inputs only; write-intent targets are cheaper via read
// skipping).
func (m *Manager) Prefetch(vi int, pinned ...int) error {
	if vi < 0 || vi >= m.cfg.NumVectors {
		return nil // prefetch is advisory; never fail the computation
	}
	m.pstats.Issued++
	// Register the access with the replacement policy: a staged vector
	// is about to be used, so recency-aware strategies must not pick it
	// as the very next victim.
	m.cfg.Strategy.Touch(vi)
	if m.itemSlot[vi] >= 0 {
		return nil
	}
	slot, err := m.freeSlot(vi, pinned)
	if err != nil {
		// No evictable slot (everything pinned): skip the prefetch.
		if err == ErrAllPinned {
			return nil
		}
		return err
	}
	if err := m.cfg.Store.ReadVector(vi, m.slots[slot]); err != nil {
		return err
	}
	m.pstats.Reads++
	m.stats.BytesRead += int64(m.cfg.VectorLen) * 8
	m.slotItem[slot] = vi
	m.itemSlot[vi] = slot
	m.dirty[slot] = false
	m.prefetched[slot] = true
	return nil
}

// PrefetchStats returns the prefetch counters.
func (m *Manager) PrefetchStats() PrefetchStats { return m.pstats }
