package ooc

import (
	"time"

	"oocphylo/internal/obs"
)

// Prefetching — the paper's §5 future work ("we will assess if
// pre-fetching can be deployed by means of a prefetch thread"). The
// traversal plan makes the next vector accesses perfectly predictable,
// so the likelihood engine can ask the manager to stage the next
// steps' inputs while the current step computes. Synchronous managers
// execute the stage-in on the calling goroutine (the counters then
// separate blocking demand misses from prefetch-staged reads); with
// Config.Async the stage-in is handed to a background fetch worker and
// genuinely overlaps compute — the demand access joins the in-flight
// read if it arrives before the fetch completes (see pipeline.go).

// PrefetchStats extends the manager counters with prefetch accounting.
type PrefetchStats struct {
	// Issued counts Prefetch calls; Reads the store reads they caused
	// (issued minus already-resident and minus skipped).
	Issued, Reads int64
	// Hits counts demand accesses that found their vector resident
	// because a prefetch staged it.
	Hits int64
	// Wasted counts prefetched vectors evicted before any demand access.
	Wasted int64
}

// Prefetch stages vector vi into a slot without counting a demand miss.
// pinned has the same meaning as in Vector. A resident vi is a no-op.
// Prefetched data is always read from the store (the engine prefetches
// read-intent inputs only; write-intent targets are cheaper via read
// skipping).
//
// The replacement strategy is touched only when the stage-in actually
// happens: a prefetch skipped because vi is resident or because every
// resident vector is pinned must leave LRU/LFU state exactly as a run
// without that prefetch would — otherwise skipped prefetches would
// pollute the eviction order.
func (m *Manager) Prefetch(vi int, pinned ...int) error {
	if vi < 0 || vi >= m.cfg.NumVectors {
		return nil // prefetch is advisory; never fail the computation
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	m.pstats.Issued++
	if m.itemSlot[vi] >= 0 {
		return nil // already resident (possibly still in flight)
	}
	slot, err := m.freeSlot(vi, pinned)
	if err != nil {
		// No evictable slot (everything pinned): skip the prefetch.
		if err == ErrAllPinned {
			return nil
		}
		return err
	}
	// The stage-in is definitely happening: register the access with
	// the replacement policy so recency-aware strategies do not pick
	// the staged vector as the very next victim.
	m.cfg.Strategy.Touch(vi)
	if m.pipe == nil {
		var ps time.Time
		if m.mx.on {
			ps = time.Now()
		}
		if err := m.stall(func() error { return m.demandRead(vi, m.slots[slot]) }); err != nil {
			if IsCorruption(err) {
				m.pipeStats.CorruptReads++
			}
			return err
		}
		// Ledger the read only once it has actually succeeded: a failed
		// stage-in must not leave Reads/BytesRead overcounting. The
		// async path mirrors this by accounting at join time (joinSlot).
		m.pstats.Reads++
		m.stats.BytesRead += int64(m.cfg.VectorLen) * 8
		if m.mx.on {
			m.traceSpan(obs.OpPrefetch, vi, slot, ps, time.Since(ps))
		}
		m.slotItem[slot] = vi
		m.itemSlot[vi] = slot
		m.dirty[slot] = false
		m.prefetched[slot] = true
		return nil
	}
	// Queue the read to a background worker; the wait below is felt
	// only when the bounded fetch queue is full. If the manager's
	// context is cancelled during that wait the prefetch is simply
	// skipped — the slot stays empty and unmapped.
	start := time.Now()
	req, err := m.pipe.enqueueFetch(m.ctx, vi, m.slots[slot])
	wait := time.Since(start)
	m.pipeStats.StallTime += wait
	if err != nil {
		return nil
	}
	m.slotItem[slot] = vi
	m.itemSlot[vi] = slot
	m.dirty[slot] = false
	m.prefetched[slot] = true
	m.inflight[slot] = req
	m.pipeStats.FetchesQueued++
	if m.mx.on {
		// The span covers only the enqueue; the read itself lands in
		// pipe.fetch_seconds on the worker's lane.
		m.traceSpan(obs.OpPrefetch, vi, slot, start, wait)
	}
	return nil
}

// PrefetchStats returns the prefetch counters. Safe from any goroutine.
func (m *Manager) PrefetchStats() PrefetchStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.pstats
}
