package ooc

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"oocphylo/internal/iosim"
)

func TestFIFOStrategyOrder(t *testing.T) {
	s := NewFIFO(5)
	s.Touch(2)
	s.Touch(0)
	s.Touch(4)
	s.Touch(2) // re-touch must NOT refresh FIFO order
	if v := s.PickVictim([]int{0, 2, 4}, 1); v != 1 {
		t.Errorf("FIFO picked index %d, want 1 (item 2, inserted first)", v)
	}
	// Item 2 re-enters after eviction: it is now youngest.
	s.Touch(2)
	if v := s.PickVictim([]int{0, 2, 4}, 1); v != 0 {
		t.Errorf("after reinsertion, item 0 is oldest; picked %d", v)
	}
	s.Reset()
	if s.next != 0 {
		t.Error("reset incomplete")
	}
	if s.Name() != "FIFO" {
		t.Error("name wrong")
	}
}

func TestClockStrategySecondChance(t *testing.T) {
	s := NewClock(5)
	cands := []int{0, 1, 2}
	s.Touch(0)
	s.Touch(1)
	s.Touch(2)
	// All referenced: the first sweep clears 0,1,2 then picks 0.
	if v := s.PickVictim(cands, 3); cands[v] != 0 {
		t.Errorf("clock picked %d, want 0 after full sweep", cands[v])
	}
	// 1 and 2 now have cleared bits; hand is past 0.
	s.Touch(1) // give 1 a second chance
	if v := s.PickVictim(cands, 3); cands[v] != 2 {
		t.Errorf("clock picked %d, want 2 (1 was re-referenced)", cands[v])
	}
	s.Reset()
	if s.hand != 0 {
		t.Error("reset incomplete")
	}
	if s.Name() != "CLOCK" {
		t.Error("name wrong")
	}
}

func TestExtraStrategiesDriveManagerCorrectly(t *testing.T) {
	for _, strat := range []Strategy{NewFIFO(20), NewClock(20)} {
		m, err := NewManager(Config{
			NumVectors: 20, VectorLen: 4, Slots: 5,
			Strategy: strat, Store: NewMemStore(20, 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		shadow := make([][4]float64, 20)
		for op := 0; op < 400; op++ {
			vi := rng.Intn(20)
			write := rng.Intn(2) == 0
			v, err := m.Vector(vi, write)
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			if !write {
				for j := range v {
					if v[j] != shadow[vi][j] {
						t.Fatalf("%s: corruption at vector %d", strat.Name(), vi)
					}
				}
			} else {
				for j := range v {
					v[j] = float64(op + j)
					shadow[vi][j] = v[j]
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
		}
	}
}

func TestPrefetchStagesAndCounts(t *testing.T) {
	m := testManager(t, 10, 4, 4, NewLRU(10), true)
	// Stage vector 7.
	if err := m.Prefetch(7); err != nil {
		t.Fatal(err)
	}
	if !m.Resident(7) {
		t.Fatal("prefetch did not stage the vector")
	}
	ps := m.PrefetchStats()
	if ps.Issued != 1 || ps.Reads != 1 {
		t.Errorf("prefetch stats: %+v", ps)
	}
	// The demand access is a hit and credits the prefetch.
	before := m.Stats().Misses
	if _, err := m.Vector(7, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Misses != before {
		t.Error("prefetched access should not miss")
	}
	if m.PrefetchStats().Hits != 1 {
		t.Errorf("prefetch hit not credited: %+v", m.PrefetchStats())
	}
	// Prefetching a resident vector is a free no-op.
	if err := m.Prefetch(7); err != nil {
		t.Fatal(err)
	}
	if ps := m.PrefetchStats(); ps.Reads != 1 {
		t.Errorf("resident prefetch must not read: %+v", ps)
	}
	// Out-of-range prefetch is advisory, never an error.
	if err := m.Prefetch(99); err != nil {
		t.Error("advisory prefetch must not fail on bad index")
	}
}

func TestPrefetchWastedCounting(t *testing.T) {
	m := testManager(t, 10, 4, 3, NewLRU(10), true)
	if err := m.Prefetch(5); err != nil {
		t.Fatal(err)
	}
	// Three demand faults push 5 out before it is ever used.
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	if m.Resident(5) {
		t.Fatal("vector 5 should have been evicted")
	}
	if ps := m.PrefetchStats(); ps.Wasted != 1 {
		t.Errorf("wasted prefetch not counted: %+v", ps)
	}
}

func TestPrefetchRespectsPins(t *testing.T) {
	m := testManager(t, 10, 3, 3, NewLRU(10), true)
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	// All three residents pinned: the prefetch must silently skip.
	if err := m.Prefetch(8, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if m.Resident(8) {
		t.Error("prefetch must not evict pinned vectors")
	}
	for vi := 0; vi < 3; vi++ {
		if !m.Resident(vi) {
			t.Error("pinned vector lost")
		}
	}
}

func TestFloat32FileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f32.bin")
	s, err := NewFloat32FileStore(path, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := []float64{1.5, -2.25, 0.1, 1e30, 3.25e-12}
	if err := s.WriteVector(1, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 5)
	if err := s.ReadVector(1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		rel := math.Abs(dst[i]-src[i]) / math.Max(math.Abs(src[i]), 1e-300)
		if rel > 1e-6 {
			t.Errorf("pos %d: %v -> %v (rel err %v)", i, src[i], dst[i], rel)
		}
	}
	// Exactly representable values survive bit-exact.
	if dst[0] != 1.5 || dst[1] != -2.25 {
		t.Error("representable values must round trip exactly")
	}
	// Bounds and size validation.
	if err := s.ReadVector(3, dst); err == nil {
		t.Error("out of range read must fail")
	}
	if err := s.WriteVector(0, make([]float64, 4)); err == nil {
		t.Error("short write must fail")
	}
	// The file is half the size of a double-precision store.
	fi, err := osStat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi != 3*5*4 {
		t.Errorf("file size %d, want %d", fi, 3*5*4)
	}
}

func TestTieredStorePromotionDemotion(t *testing.T) {
	fast := NewMemStore(10, 4)
	slow := NewMemStore(10, 4)
	ts, err := NewTieredStore(fast, slow, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	w := func(vi int, v float64) {
		if err := ts.WriteVector(vi, []float64{v, v, v, v}); err != nil {
			t.Fatal(err)
		}
	}
	r := func(vi int) float64 {
		buf := make([]float64, 4)
		if err := ts.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		return buf[0]
	}
	w(0, 10)
	w(1, 11)
	w(2, 12) // demotes 0 (least recently touched) to slow
	if ts.Demotions != 1 {
		t.Errorf("demotions = %d, want 1", ts.Demotions)
	}
	if got := r(0); got != 10 { // served from slow
		t.Errorf("read(0) = %v", got)
	}
	if ts.SlowReads != 1 {
		t.Errorf("slow reads = %d, want 1", ts.SlowReads)
	}
	if got := r(2); got != 12 { // served from fast
		t.Errorf("read(2) = %v", got)
	}
	if ts.FastHits != 1 {
		t.Errorf("fast hits = %d, want 1", ts.FastHits)
	}
	if _, err := NewTieredStore(fast, slow, 0); err == nil {
		t.Error("zero capacity must fail")
	}
}

func TestTieredStoreWithSimulatedDevices(t *testing.T) {
	// Fast tier = SSD, slow tier = HDD: the three-layer hierarchy the
	// paper sketches (§5) with per-tier cost accounting.
	var fastClock, slowClock iosim.Clock
	fast := NewSimStore(NewMemStore(8, 16), iosim.SSD(), &fastClock)
	slow := NewSimStore(NewMemStore(8, 16), iosim.HDD(), &slowClock)
	ts, err := NewTieredStore(fast, slow, 2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, 16)
	for vi := 0; vi < 8; vi++ {
		if err := ts.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	for vi := 0; vi < 8; vi++ {
		if err := ts.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	if fastClock.Ops() == 0 || slowClock.Ops() == 0 {
		t.Error("both tiers should have been exercised")
	}
	if fastClock.Elapsed() >= slowClock.Elapsed() {
		t.Errorf("per-op the fast tier must be cheaper: fast %v total vs slow %v",
			fastClock.Elapsed(), slowClock.Elapsed())
	}
}

// osStat returns the file size (helper keeping the test import list tidy).
func osStat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
