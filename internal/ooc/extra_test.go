package ooc

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"oocphylo/internal/iosim"
)

func TestFIFOStrategyOrder(t *testing.T) {
	s := NewFIFO(5)
	s.Touch(2)
	s.Touch(0)
	s.Touch(4)
	s.Touch(2) // re-touch must NOT refresh FIFO order
	if v := s.PickVictim([]int{0, 2, 4}, 1); v != 1 {
		t.Errorf("FIFO picked index %d, want 1 (item 2, inserted first)", v)
	}
	// Item 2 re-enters after eviction: it is now youngest.
	s.Touch(2)
	if v := s.PickVictim([]int{0, 2, 4}, 1); v != 0 {
		t.Errorf("after reinsertion, item 0 is oldest; picked %d", v)
	}
	s.Reset()
	if s.next != 0 {
		t.Error("reset incomplete")
	}
	if s.Name() != "FIFO" {
		t.Error("name wrong")
	}
}

func TestClockStrategySecondChance(t *testing.T) {
	s := NewClock(5)
	cands := []int{0, 1, 2}
	s.Touch(0)
	s.Touch(1)
	s.Touch(2)
	// All referenced: the first sweep clears 0,1,2 then picks 0.
	if v := s.PickVictim(cands, 3); cands[v] != 0 {
		t.Errorf("clock picked %d, want 0 after full sweep", cands[v])
	}
	// 1 and 2 now have cleared bits; hand is past 0.
	s.Touch(1) // give 1 a second chance
	if v := s.PickVictim(cands, 3); cands[v] != 2 {
		t.Errorf("clock picked %d, want 2 (1 was re-referenced)", cands[v])
	}
	s.Reset()
	if s.hand != 0 {
		t.Error("reset incomplete")
	}
	if s.Name() != "CLOCK" {
		t.Error("name wrong")
	}
}

func TestExtraStrategiesDriveManagerCorrectly(t *testing.T) {
	for _, strat := range []Strategy{NewFIFO(20), NewClock(20)} {
		m, err := NewManager(Config{
			NumVectors: 20, VectorLen: 4, Slots: 5,
			Strategy: strat, Store: NewMemStore(20, 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(3))
		shadow := make([][4]float64, 20)
		for op := 0; op < 400; op++ {
			vi := rng.Intn(20)
			write := rng.Intn(2) == 0
			v, err := m.Vector(vi, write)
			if err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
			if !write {
				for j := range v {
					if v[j] != shadow[vi][j] {
						t.Fatalf("%s: corruption at vector %d", strat.Name(), vi)
					}
				}
			} else {
				for j := range v {
					v[j] = float64(op + j)
					shadow[vi][j] = v[j]
				}
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatalf("%s: %v", strat.Name(), err)
			}
		}
	}
}

func TestPrefetchStagesAndCounts(t *testing.T) {
	m := testManager(t, 10, 4, 4, NewLRU(10), true)
	// Stage vector 7.
	if err := m.Prefetch(7); err != nil {
		t.Fatal(err)
	}
	if !m.Resident(7) {
		t.Fatal("prefetch did not stage the vector")
	}
	ps := m.PrefetchStats()
	if ps.Issued != 1 || ps.Reads != 1 {
		t.Errorf("prefetch stats: %+v", ps)
	}
	// The demand access is a hit and credits the prefetch.
	before := m.Stats().Misses
	if _, err := m.Vector(7, false); err != nil {
		t.Fatal(err)
	}
	if m.Stats().Misses != before {
		t.Error("prefetched access should not miss")
	}
	if m.PrefetchStats().Hits != 1 {
		t.Errorf("prefetch hit not credited: %+v", m.PrefetchStats())
	}
	// Prefetching a resident vector is a free no-op.
	if err := m.Prefetch(7); err != nil {
		t.Fatal(err)
	}
	if ps := m.PrefetchStats(); ps.Reads != 1 {
		t.Errorf("resident prefetch must not read: %+v", ps)
	}
	// Out-of-range prefetch is advisory, never an error.
	if err := m.Prefetch(99); err != nil {
		t.Error("advisory prefetch must not fail on bad index")
	}
}

func TestPrefetchWastedCounting(t *testing.T) {
	m := testManager(t, 10, 4, 3, NewLRU(10), true)
	if err := m.Prefetch(5); err != nil {
		t.Fatal(err)
	}
	// Three demand faults push 5 out before it is ever used.
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	if m.Resident(5) {
		t.Fatal("vector 5 should have been evicted")
	}
	if ps := m.PrefetchStats(); ps.Wasted != 1 {
		t.Errorf("wasted prefetch not counted: %+v", ps)
	}
}

func TestPrefetchRespectsPins(t *testing.T) {
	m := testManager(t, 10, 3, 3, NewLRU(10), true)
	for vi := 0; vi < 3; vi++ {
		if _, err := m.Vector(vi, true); err != nil {
			t.Fatal(err)
		}
	}
	// All three residents pinned: the prefetch must silently skip.
	if err := m.Prefetch(8, 0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if m.Resident(8) {
		t.Error("prefetch must not evict pinned vectors")
	}
	for vi := 0; vi < 3; vi++ {
		if !m.Resident(vi) {
			t.Error("pinned vector lost")
		}
	}
}

func TestFloat32FileStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f32.bin")
	s, err := NewFloat32FileStore(path, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	src := []float64{1.5, -2.25, 0.1, 1e30, 3.25e-12}
	if err := s.WriteVector(1, src); err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, 5)
	if err := s.ReadVector(1, dst); err != nil {
		t.Fatal(err)
	}
	for i := range src {
		rel := math.Abs(dst[i]-src[i]) / math.Max(math.Abs(src[i]), 1e-300)
		if rel > 1e-6 {
			t.Errorf("pos %d: %v -> %v (rel err %v)", i, src[i], dst[i], rel)
		}
	}
	// Exactly representable values survive bit-exact.
	if dst[0] != 1.5 || dst[1] != -2.25 {
		t.Error("representable values must round trip exactly")
	}
	// Bounds and size validation.
	if err := s.ReadVector(3, dst); err == nil {
		t.Error("out of range read must fail")
	}
	if err := s.WriteVector(0, make([]float64, 4)); err == nil {
		t.Error("short write must fail")
	}
	// The file is half the size of a double-precision store.
	fi, err := osStat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi != 3*5*4 {
		t.Errorf("file size %d, want %d", fi, 3*5*4)
	}
}

func TestTieredStoreCacheAndWriteBack(t *testing.T) {
	remote := NewMemStore(10, 4)
	ts, err := NewTieredStore(remote, TieredConfig{
		NumVectors: 10, VectorLen: 4,
		CacheDir: t.TempDir(), CacheVectors: 2, Lanes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := func(vi int, v float64) {
		if err := ts.WriteVector(vi, []float64{v, v, v, v}); err != nil {
			t.Fatal(err)
		}
	}
	r := func(vi int) float64 {
		buf := make([]float64, 4)
		if err := ts.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		return buf[0]
	}
	w(0, 10)
	w(1, 11)
	w(2, 12) // evicts 0 (LRU): dirty, so it is pushed to the remote tier first
	st := ts.Stats()
	if st.Evictions != 1 || st.DirtyWritebacks != 1 {
		t.Errorf("evictions = %d, dirty writebacks = %d, want 1 and 1", st.Evictions, st.DirtyWritebacks)
	}
	if got := r(0); got != 10 { // refetched from the remote tier
		t.Errorf("read(0) = %v", got)
	}
	if st := ts.Stats(); st.RemoteReads == 0 || st.CacheMisses == 0 {
		t.Errorf("expected a remote fetch for the evicted vector: %+v", st)
	}
	if got := r(2); got != 12 { // cache hit
		t.Errorf("read(2) = %v", got)
	}
	if st := ts.Stats(); st.CacheHits == 0 {
		t.Errorf("expected a cache hit: %+v", st)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	// Close pushed every dirty vector; the remote tier has it all.
	buf := make([]float64, 4)
	for vi, want := range map[int]float64{0: 10, 1: 11, 2: 12} {
		if err := remote.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != want {
			t.Errorf("remote[%d] = %v, want %v", vi, buf[0], want)
		}
	}
	if _, err := NewTieredStore(remote, TieredConfig{
		NumVectors: 10, VectorLen: 4, CacheDir: t.TempDir(), CacheVectors: 0,
	}); err == nil {
		t.Error("zero cache capacity must fail")
	}
}

func TestTieredStoreWithSimulatedRemote(t *testing.T) {
	// Cache tier = local disk, remote tier = an HDD-priced device: the
	// three-layer hierarchy the paper sketches (§5) with per-tier cost
	// accounting. Rereads must be served locally, not re-charged.
	var remoteClock iosim.Clock
	remote := NewSimStore(NewMemStore(8, 16), iosim.HDD(), &remoteClock)
	ts, err := NewTieredStore(remote, TieredConfig{
		NumVectors: 8, VectorLen: 16,
		CacheDir: t.TempDir(), CacheVectors: 8, Lanes: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()
	buf := make([]float64, 16)
	for vi := 0; vi < 8; vi++ {
		if err := ts.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	before := remoteClock.Ops()
	for vi := 0; vi < 8; vi++ {
		if err := ts.ReadVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	if got := remoteClock.Ops(); got != before {
		t.Errorf("cached reads charged the remote device: %d ops before, %d after", before, got)
	}
	if st := ts.Stats(); st.CacheHits != 8 {
		t.Errorf("cache hits = %d, want 8", st.CacheHits)
	}
}

// osStat returns the file size (helper keeping the test import list tidy).
func osStat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
