package ooc

import (
	"errors"
	"runtime"
	"testing"
)

// scriptedMem returns a ReadMem substitute that plays back a fixed
// HeapAlloc trajectory, repeating the last value once exhausted.
func scriptedMem(heaps ...uint64) func(*runtime.MemStats) {
	i := 0
	return func(ms *runtime.MemStats) {
		if i >= len(heaps) {
			ms.HeapAlloc = heaps[len(heaps)-1]
			return
		}
		ms.HeapAlloc = heaps[i]
		i++
	}
}

func TestWatchdogShrinksAndRegrows(t *testing.T) {
	n := 32
	m := testManager(t, n, 4, 16, NewLRU(n), false)
	defer m.Close()
	wd, err := NewWatchdog(m, WatchdogConfig{
		SoftBudget: 1000,
		CheckEvery: 1,
		// Over budget twice, then far enough under the hysteresis gate
		// (0.5 * budget) to regrow, then idle in the dead zone.
		ReadMem: scriptedMem(2000, 1500, 100, 100, 700, 700),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if err := wd.Check(); err != nil {
			t.Fatalf("check %d: %v", i, err)
		}
	}
	ws := wd.Stats()
	if ws.Samples != 6 {
		t.Errorf("Samples = %d, want 6", ws.Samples)
	}
	if ws.Shrinks != 2 {
		t.Errorf("Shrinks = %d, want 2", ws.Shrinks)
	}
	if ws.Grows != 2 {
		t.Errorf("Grows = %d, want 2", ws.Grows)
	}
	// 16 -(25%)-> 12 -(25%)-> 9 -(12.5%)-> 10 -(12.5%)-> 11, then the
	// 700-byte samples sit between GrowBelow*budget and budget: no move.
	if got := m.Slots(); got != 11 {
		t.Errorf("Slots = %d after shrink/grow script, want 11", got)
	}
	if ws.Slots != 11 || ws.LastHeap != 700 {
		t.Errorf("stats snapshot %+v", ws)
	}
}

func TestWatchdogFloorsAndPins(t *testing.T) {
	n := 32
	m := testManager(t, n, 4, 4, NewLRU(n), false)
	defer m.Close()
	wd, err := NewWatchdog(m, WatchdogConfig{
		SoftBudget: 1000,
		CheckEvery: 1,
		ReadMem:    scriptedMem(5000),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Repeated pressure can never push below the package floor.
	for i := 0; i < 5; i++ {
		if err := wd.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Slots(); got != MinSlots {
		t.Errorf("Slots = %d, want floor %d", got, MinSlots)
	}
	// With 4 pins the one-step target of len(pinned)+1 = 5 exceeds the
	// current 3 slots; the watchdog must not "shrink" upwards.
	if err := wd.Check(0, 1, 2, 3); err != nil {
		t.Fatal(err)
	}
	if got := m.Slots(); got != MinSlots {
		t.Errorf("Slots = %d after pinned check, want %d", got, MinSlots)
	}
}

func TestWatchdogCheckEverySampling(t *testing.T) {
	m := testManager(t, 16, 4, 8, NewLRU(16), false)
	defer m.Close()
	samples := 0
	wd, err := NewWatchdog(m, WatchdogConfig{
		SoftBudget: 1 << 30,
		CheckEvery: 10,
		ReadMem: func(ms *runtime.MemStats) {
			samples++
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 35; i++ {
		if err := wd.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if samples != 3 {
		t.Errorf("35 checks at CheckEvery=10 took %d samples, want 3", samples)
	}
}

func TestWatchdogValidation(t *testing.T) {
	m := testManager(t, 16, 4, 8, NewLRU(16), false)
	defer m.Close()
	if _, err := NewWatchdog(nil, WatchdogConfig{SoftBudget: 1}); err == nil {
		t.Error("nil manager accepted")
	}
	if _, err := NewWatchdog(m, WatchdogConfig{}); err == nil {
		t.Error("zero budget accepted")
	}
	// MaxSlots defaults to the pool size at bind time: the watchdog
	// never grants more than the operator originally did.
	wd, err := NewWatchdog(m, WatchdogConfig{
		SoftBudget: 1000,
		CheckEvery: 1,
		ReadMem:    scriptedMem(10), // far under budget forever
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := wd.Check(); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.Slots(); got != 8 {
		t.Errorf("Slots = %d, watchdog grew beyond its MaxSlots default of 8", got)
	}
}

// TestWatchdogRecordsFailedResize: a Resize failure must still land in
// the stats — Samples/LastHeap/Slots advance and the failure is counted
// — before the error propagates to the safe-point caller. (The pool is
// frozen by Close here, the cheapest deterministic way to make every
// Resize fail.)
func TestWatchdogRecordsFailedResize(t *testing.T) {
	n := 32
	m := testManager(t, n, 4, 16, NewLRU(n), false)
	wd, err := NewWatchdog(m, WatchdogConfig{
		SoftBudget: 1000,
		CheckEvery: 1,
		ReadMem:    scriptedMem(2000), // always over budget: every sample wants a shrink
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wd.Check(); !errors.Is(err, ErrManagerClosing) {
		t.Fatalf("Check on a closing manager = %v, want ErrManagerClosing", err)
	}
	ws := wd.Stats()
	if ws.Samples != 1 || ws.Failures != 1 {
		t.Errorf("Samples = %d, Failures = %d after failed resize, want 1, 1", ws.Samples, ws.Failures)
	}
	if ws.LastHeap != 2000 {
		t.Errorf("LastHeap = %d, want 2000 (sample must be recorded on failure)", ws.LastHeap)
	}
	if ws.Slots != 16 {
		t.Errorf("Slots = %d, want the actual pool size 16, not the unreached target", ws.Slots)
	}
	if ws.Shrinks != 0 || ws.Grows != 0 {
		t.Errorf("a failed step must not count as a shrink or grow: %+v", ws)
	}
	// A second failed check keeps advancing the ledger.
	if err := wd.Check(); !errors.Is(err, ErrManagerClosing) {
		t.Fatalf("second Check = %v, want ErrManagerClosing", err)
	}
	if ws = wd.Stats(); ws.Samples != 2 || ws.Failures != 2 {
		t.Errorf("Samples = %d, Failures = %d after second failure, want 2, 2", ws.Samples, ws.Failures)
	}
}
