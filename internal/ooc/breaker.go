package ooc

// Circuit breaker for the remote tier. A partitioned or flapping
// object store must not stall engine passes: once the backend has
// failed often enough in a row, further requests are refused locally
// (fast) instead of burning a deadline each, and the engine's planner
// — seeing Degraded() — answers from cache + recompute. After a
// cooldown one probe request is let through; its outcome decides
// whether the circuit closes again or stays open for another round.
//
// States:
//
//	closed    — requests flow; consecutive failures are counted.
//	open      — requests are refused with ErrCircuitOpen until
//	            Cooldown has elapsed since the trip.
//	half-open — one probe request at a time is admitted; Probes
//	            consecutive successes close the circuit, any failure
//	            reopens it (and restarts the cooldown).
//
// The breaker is deliberately error-kind agnostic: callers decide
// which errors count as backend failures (a caller-cancelled context
// must not trip it) and call Success/Failure accordingly.

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrCircuitOpen marks a remote request refused locally because the
// backend's circuit breaker is open. It is NOT transient: retrying in
// place would just spin against the breaker — the caller should fall
// back to degraded mode (recompute, spill journal) and let the
// half-open probe discover recovery.
var ErrCircuitOpen = errors.New("remote circuit open")

// IsCircuitOpen reports whether err is (or wraps) ErrCircuitOpen.
func IsCircuitOpen(err error) bool { return errors.Is(err, ErrCircuitOpen) }

// VectorReadError marks a demand read the backing store could not
// serve right now: transient I/O that exhausted its retries, or a
// remote circuit held open. It exposes the vector index so an engine
// that can re-derive the vector from local inputs (the PLF recompute
// identity) converts the failure into extra compute instead of a
// failed pass.
type VectorReadError struct {
	Vi  int
	Err error
}

func (e *VectorReadError) Error() string {
	return fmt.Sprintf("ooc: vector %d unreadable: %v", e.Vi, e.Err)
}

func (e *VectorReadError) Unwrap() error { return e.Err }

// FailedVector implements the structural interface the engine's
// read-recovery path matches (mirroring CorruptVector on
// *CorruptionError).
func (e *VectorReadError) FailedVector() int { return e.Vi }

// BreakerState is a circuit breaker's current position.
type BreakerState int32

const (
	BreakerClosed BreakerState = iota
	BreakerOpen
	BreakerHalfOpen
)

// String renders the state for /debug/vars and logs.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerConfig tunes a Breaker. The zero value gets defaults from
// fill(); a TieredStore only builds a breaker when Threshold > 0, so
// plain configs keep the pre-breaker behavior.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the
	// circuit (default 5 when a breaker is requested).
	Threshold int
	// Cooldown is how long the circuit stays open before admitting a
	// half-open probe (default 500ms).
	Cooldown time.Duration
	// Probes is the consecutive half-open successes required to close
	// the circuit (default 1).
	Probes int
	// Now is the clock (default time.Now); tests inject a fake to step
	// through cooldowns without sleeping.
	Now func() time.Time
}

func (c *BreakerConfig) fill() {
	if c.Threshold < 1 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 500 * time.Millisecond
	}
	if c.Probes < 1 {
		c.Probes = 1
	}
	if c.Now == nil {
		c.Now = time.Now
	}
}

// BreakerStats is a snapshot of a breaker's counters.
type BreakerStats struct {
	State BreakerState
	// Opens counts trips (closed→open and half-open→open).
	Opens int64
	// ShortCircuits counts requests refused while open.
	ShortCircuits int64
	// Successes and Failures count recorded request outcomes.
	Successes, Failures int64
	// Transitions counts every state change.
	Transitions int64
}

// Breaker is a per-backend circuit breaker. Safe for concurrent use.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int // consecutive failures while closed
	okays    int // consecutive successes while half-open
	probing  bool
	openedAt time.Time
	stats    BreakerStats

	// onTransition (optional) observes state changes; called outside
	// the breaker's lock, in the goroutine that caused the change.
	onTransition func(from, to BreakerState)
}

// NewBreaker builds a breaker in the closed state.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.fill()
	return &Breaker{cfg: cfg}
}

// OnTransition registers fn to observe every state change (nil
// unregisters). fn runs outside the breaker's lock and must not call
// back into mutating breaker methods.
func (b *Breaker) OnTransition(fn func(from, to BreakerState)) {
	b.mu.Lock()
	b.onTransition = fn
	b.mu.Unlock()
}

// State returns the current state, advancing open→half-open when the
// cooldown has elapsed (so observers see the probe-eligible state).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	st := b.state
	if st == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		st = BreakerHalfOpen
	}
	b.mu.Unlock()
	return st
}

// Stats snapshots the counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	s := b.stats
	s.State = b.state
	b.mu.Unlock()
	return s
}

// Allow reports whether a request may proceed. While open it refuses
// (counting a short-circuit) until the cooldown elapses; then it
// admits exactly one probe at a time. Every Allow()==true must be
// paired with a Success or Failure call (or Cancelled, if the outcome
// says nothing about the backend).
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	var hook func(from, to BreakerState)
	var from, to BreakerState
	defer func() {
		b.mu.Unlock()
		if hook != nil {
			hook(from, to)
		}
	}()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.stats.ShortCircuits++
			return false
		}
		from, to = b.state, BreakerHalfOpen
		b.state = BreakerHalfOpen
		b.stats.Transitions++
		b.okays = 0
		b.probing = true
		hook = b.onTransition
		return true
	default: // half-open
		if b.probing {
			b.stats.ShortCircuits++
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed request.
func (b *Breaker) Success() { b.record(true) }

// Failure records a failed request that indicates backend trouble.
func (b *Breaker) Failure() { b.record(false) }

// Cancelled releases a half-open probe slot without judging the
// backend (the caller's context was cancelled mid-request).
func (b *Breaker) Cancelled() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

func (b *Breaker) record(ok bool) {
	b.mu.Lock()
	var hook func(from, to BreakerState)
	var from, to BreakerState
	if ok {
		b.stats.Successes++
	} else {
		b.stats.Failures++
	}
	switch b.state {
	case BreakerClosed:
		if ok {
			b.fails = 0
		} else {
			b.fails++
			if b.fails >= b.cfg.Threshold {
				from, to = b.state, BreakerOpen
				b.state = BreakerOpen
				b.openedAt = b.cfg.Now()
				b.stats.Opens++
				b.stats.Transitions++
				hook = b.onTransition
			}
		}
	case BreakerHalfOpen:
		b.probing = false
		if ok {
			b.okays++
			if b.okays >= b.cfg.Probes {
				from, to = b.state, BreakerClosed
				b.state = BreakerClosed
				b.fails = 0
				b.stats.Transitions++
				hook = b.onTransition
			}
		} else {
			from, to = b.state, BreakerOpen
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
			b.stats.Opens++
			b.stats.Transitions++
			hook = b.onTransition
		}
	case BreakerOpen:
		// A request admitted before the trip finishing late; the
		// consecutive-failure counters only matter closed/half-open.
	}
	b.mu.Unlock()
	if hook != nil {
		hook(from, to)
	}
}
