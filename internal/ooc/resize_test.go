package ooc

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"oocphylo/internal/obs"
)

// fill writes a distinct pattern into every vector so later readbacks
// can verify that resizes never lose or corrupt data.
func fillVectors(t *testing.T, m *Manager, n, vl int) {
	t.Helper()
	for vi := 0; vi < n; vi++ {
		v, err := m.Vector(vi, true)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			v[j] = float64(vi*1000 + j)
		}
	}
}

func checkVectors(t *testing.T, m *Manager, n, vl int) {
	t.Helper()
	for vi := 0; vi < n; vi++ {
		v, err := m.Vector(vi, false)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			if v[j] != float64(vi*1000+j) {
				t.Fatalf("vector %d[%d] = %g after resize, want %d", vi, j, v[j], vi*1000+j)
			}
		}
	}
}

func TestResizeShrinkGrowRoundTrip(t *testing.T) {
	n, vl := 16, 5
	m := testManager(t, n, vl, 8, NewLRU(n), false)
	defer m.Close()
	fillVectors(t, m, n, vl)
	if err := m.Resize(3); err != nil {
		t.Fatalf("shrink to 3: %v", err)
	}
	if got := m.Slots(); got != 3 {
		t.Fatalf("Slots() = %d after shrink, want 3", got)
	}
	checkVectors(t, m, n, vl)
	if err := m.Resize(12); err != nil {
		t.Fatalf("grow to 12: %v", err)
	}
	if got := m.Slots(); got != 12 {
		t.Fatalf("Slots() = %d after grow, want 12", got)
	}
	checkVectors(t, m, n, vl)
	rs := m.ResizeStats()
	if rs.Shrinks != 1 || rs.Grows != 1 {
		t.Errorf("ResizeStats = %+v, want 1 shrink and 1 grow", rs)
	}
	if rs.Evictions == 0 {
		t.Error("shrink from 8 to 3 evicted nothing")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeBounds(t *testing.T) {
	n := 10
	m := testManager(t, n, 4, 5, NewLRU(n), false)
	defer m.Close()
	var sbe *SlotBoundsError
	if err := m.Resize(2); !errors.As(err, &sbe) {
		t.Fatalf("Resize(2) = %v, want *SlotBoundsError", err)
	}
	// m must stay strictly above the pinned count.
	if err := m.Resize(4, 1, 2, 3, 4); !errors.As(err, &sbe) {
		t.Fatalf("Resize(4) with 4 pins = %v, want *SlotBoundsError", err)
	}
	// Requests above n are capped, not rejected.
	if err := m.Resize(n + 50); err != nil {
		t.Fatalf("Resize above n: %v", err)
	}
	if got := m.Slots(); got != n {
		t.Fatalf("Slots() = %d, want capped at %d", got, n)
	}
	// Same-size resize is a no-op.
	if err := m.Resize(n); err != nil {
		t.Fatal(err)
	}
	if rs := m.ResizeStats(); rs.Grows != 1 {
		t.Errorf("no-op resize counted: %+v", rs)
	}
}

func TestResizeShrinkRespectsPins(t *testing.T) {
	n := 12
	m := testManager(t, n, 4, 6, NewLRU(n), false)
	defer m.Close()
	fillVectors(t, m, n, 4)
	// Make vectors 0 and 1 resident, then shrink with them pinned.
	for _, vi := range []int{0, 1} {
		if _, err := m.Vector(vi, false); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Resize(3, 0, 1); err != nil {
		t.Fatal(err)
	}
	if !m.Resident(0) || !m.Resident(1) {
		t.Error("pinned vectors evicted by shrink")
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestResizeRejectedAfterClose(t *testing.T) {
	m := testManager(t, 8, 4, 4, NewLRU(8), false)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Resize(6); !errors.Is(err, ErrManagerClosing) {
		t.Fatalf("Resize after Close = %v, want ErrManagerClosing", err)
	}
}

func TestResizeWithAsyncPipeline(t *testing.T) {
	// Shrinking while async stage-ins are in flight must drain them and
	// leave a consistent pool; the interleaved Prefetch/Vector/Resize
	// sequence runs under -race in CI.
	n, vl := 24, 8
	m, err := NewManager(Config{
		NumVectors:   n,
		VectorLen:    vl,
		Slots:        10,
		Strategy:     NewLRU(n),
		ReadSkipping: true,
		Store:        NewMemStore(n, vl),
		Async:        true,
		IOWorkers:    3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	fillVectors(t, m, n, vl)
	for cycle := 0; cycle < 6; cycle++ {
		// Queue a burst of async stage-ins, then resize immediately so
		// some are still in flight.
		for vi := 0; vi < n; vi += 3 {
			if err := m.Prefetch(vi); err != nil {
				t.Fatal(err)
			}
		}
		target := 4 + (cycle%3)*6 // 4, 10, 16, 4, ...
		if err := m.Resize(target); err != nil {
			t.Fatalf("cycle %d Resize(%d): %v", cycle, target, err)
		}
		if err := m.CheckInvariants(); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		checkVectors(t, m, n, vl)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	checkVectors(t, m, n, vl)
}

func TestResizeBitIdenticalAccessPattern(t *testing.T) {
	// The same access sequence with and without a mid-sequence resize
	// must return identical data — resizing changes where vectors live,
	// never what they hold.
	n, vl := 20, 6
	seq := make([]int, 0, 60)
	for i := 0; i < 60; i++ {
		seq = append(seq, (i*7)%n)
	}
	run := func(resizeAt int) []float64 {
		m := testManager(t, n, vl, 8, NewLRU(n), false)
		defer m.Close()
		fillVectors(t, m, n, vl)
		var got []float64
		for i, vi := range seq {
			if i == resizeAt {
				if err := m.Resize(4); err != nil {
					t.Fatal(err)
				}
			}
			v, err := m.Vector(vi, false)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, v[vi%vl])
		}
		return got
	}
	base := run(-1)
	resized := run(30)
	for i := range base {
		if base[i] != resized[i] {
			t.Fatalf("access %d: %g with resize vs %g without", i, resized[i], base[i])
		}
	}
}

func TestSlotBoundsErrorMessages(t *testing.T) {
	for _, tc := range []struct {
		err  SlotBoundsError
		want string
	}{
		{SlotBoundsError{Slots: 2, NumVectors: 10}, "m >= 3"},
		{SlotBoundsError{Slots: 4, NumVectors: 10, Pinned: 4}, "m > pinned"},
	} {
		if msg := tc.err.Error(); !strings.Contains(msg, tc.want) {
			t.Errorf("%+v message %q lacks %q", tc.err, msg, tc.want)
		}
	}
}

func TestValidateSlotsSharedByConstruction(t *testing.T) {
	// NewManager and Resize reject through the same validator.
	_, err := NewManager(Config{
		NumVectors: 10, VectorLen: 4, Slots: 2,
		Strategy: NewLRU(10), Store: NewMemStore(10, 4),
	})
	var sbe *SlotBoundsError
	if !errors.As(err, &sbe) {
		t.Fatalf("NewManager with 2 slots = %v, want *SlotBoundsError", err)
	}
	if sbe.Slots != 2 || sbe.NumVectors != 10 {
		t.Errorf("bounds error fields: %+v", sbe)
	}
}

func TestResizeObsGauge(t *testing.T) {
	// The slots gauge tracks resizes when instrumented.
	m := testManager(t, 12, 4, 6, NewLRU(12), false)
	defer m.Close()
	reg := obs.NewRegistry()
	m.Instrument(reg, nil)
	if err := m.Resize(4); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["ooc.slots"].Value; got != 4 {
		t.Errorf("ooc.slots gauge = %d, want 4", got)
	}
	if got := snap.Counters["ooc.resize_shrinks"]; got != 1 {
		t.Errorf("ooc.resize_shrinks = %d, want 1", got)
	}
}

func ExampleManager_Resize() {
	store := NewMemStore(8, 4)
	m, _ := NewManager(Config{
		NumVectors: 8, VectorLen: 4, Slots: 6,
		Strategy: NewLRU(8), Store: store,
	})
	defer m.Close()
	fmt.Println("slots:", m.Slots())
	_ = m.Resize(3)
	fmt.Println("after shrink:", m.Slots())
	_ = m.Resize(6)
	fmt.Println("after grow:", m.Slots())
	// Output:
	// slots: 6
	// after shrink: 3
	// after grow: 6
}
