package ooc

// Runtime slot-pool resizing — the paper's memory knob f made a live
// parameter. The paper fixes m = f·n at startup; external-memory
// systems that share machines (STXXL and kin) instead treat the RAM
// budget as something the environment can change under a running
// process. Resize lets the manager grow or shrink its slot pool
// between operations:
//
//   - Shrink evicts via the active replacement strategy — the same
//     code path as a demand miss, so write-back policy, read-skipping
//     ledgers and strategy state all behave exactly as if the evicted
//     vectors had lost a normal replacement decision. Pinned vectors
//     are never chosen; in-flight async stage-ins are drained first so
//     no worker is left filling a buffer the pool no longer owns.
//   - Grow appends empty slots whose buffers are allocated lazily on
//     first use, so raising the ceiling is free until the space is
//     actually touched.
//
// Because eviction order and slot mapping stay on the single API
// goroutine, results remain bit-identical to a fixed-m run: resizing
// changes WHERE vectors live, never WHAT is computed.

import (
	"errors"
	"fmt"
)

// ErrManagerClosing is returned by Resize once Close has been entered:
// the pipeline is (being) torn down and the pool geometry is frozen.
var ErrManagerClosing = errors.New("ooc: Resize rejected: Close in flight")

// SlotBoundsError is the typed rejection for a slot count that
// violates the manager's invariants — m >= MinSlots whenever the
// vector count allows (§3.2's floor), and m strictly greater than the
// number of pinned vectors so at least one slot can still turn over.
// Both Manager construction and Resize report it.
type SlotBoundsError struct {
	// Slots is the offending requested slot count.
	Slots int
	// NumVectors is n, the managed vector count.
	NumVectors int
	// Pinned is the number of vectors that must stay resident across
	// the request (always 0 at construction).
	Pinned int
}

// Error implements error.
func (e *SlotBoundsError) Error() string {
	if e.Pinned > 0 && e.Slots <= e.Pinned {
		return fmt.Sprintf("ooc: %d slots cannot hold %d pinned vectors plus a free slot (need m > pinned)",
			e.Slots, e.Pinned)
	}
	return fmt.Sprintf("ooc: %d slots for %d vectors; need at least %d (m >= 3)",
		e.Slots, e.NumVectors, MinSlots)
}

// validateSlots is the single home of the slot-count invariants,
// shared by NewManager (pinned = 0) and Resize. slots is assumed to be
// already capped at numVectors.
func validateSlots(slots, numVectors, pinned int) error {
	if slots < MinSlots && slots < numVectors {
		return &SlotBoundsError{Slots: slots, NumVectors: numVectors, Pinned: pinned}
	}
	if pinned > 0 && slots <= pinned {
		return &SlotBoundsError{Slots: slots, NumVectors: numVectors, Pinned: pinned}
	}
	return nil
}

// ResizeStats counts Resize activity.
type ResizeStats struct {
	// Grows and Shrinks count successful Resize calls per direction.
	Grows, Shrinks int64
	// Evictions counts vectors evicted specifically to shrink the pool
	// (demand-miss evictions are ledgered in Stats, not here).
	Evictions int64
}

// ResizeStats returns the resize counters. Safe from any goroutine.
func (m *Manager) ResizeStats() ResizeStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rstats
}

// Resize grows or shrinks the live slot pool to slots entries. Values
// above NumVectors are capped (as at construction); values below
// MinSlots, or not exceeding the pinned count, are rejected with a
// *SlotBoundsError. pinned lists vector indices that must survive a
// shrink resident (the engine passes its current working set).
//
// Shrinking first drains every in-flight asynchronous stage-in, then
// repeatedly asks the replacement strategy for victims until the
// surviving residents fit, then compacts them into the prefix of the
// slot array and releases the tail buffers. Growing appends empty
// slots; their buffers are allocated on first use. A no-op when slots
// equals the current pool size. Must be called from the single API
// goroutine (between operations, never concurrently with them);
// returns ErrManagerClosing once Close has been entered.
func (m *Manager) Resize(slots int, pinned ...int) error {
	if m.closing.Load() {
		return ErrManagerClosing
	}
	if slots > m.cfg.NumVectors {
		slots = m.cfg.NumVectors
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := validateSlots(slots, m.cfg.NumVectors, len(pinned)); err != nil {
		return err
	}
	cur := len(m.slots)
	switch {
	case slots == cur:
		return nil
	case slots > cur:
		m.grow(slots)
		m.rstats.Grows++
	default:
		if err := m.shrink(slots, pinned); err != nil {
			return err
		}
		m.rstats.Shrinks++
	}
	if m.mx.on {
		m.mx.slots.Set(int64(len(m.slots)))
	}
	return nil
}

// grow appends empty slots up to target. Buffers stay nil until
// freeSlot hands the slot out for the first time.
func (m *Manager) grow(target int) {
	for len(m.slots) < target {
		m.slots = append(m.slots, nil)
		m.slotItem = append(m.slotItem, -1)
		m.dirty = append(m.dirty, false)
		m.prefetched = append(m.prefetched, false)
		if m.pipe != nil {
			m.inflight = append(m.inflight, nil)
		}
	}
}

// shrink reduces the pool to target slots: drain in-flight fetches,
// evict until the residents fit, compact them into the prefix, drop
// the tail. Callers hold m.mu.
func (m *Manager) shrink(target int, pinned []int) error {
	// Drain in-flight stage-ins first: compaction moves buffers between
	// slot indices, and a background worker must never be left writing
	// into a buffer whose slot is about to be dropped or remapped. A
	// failed stage-in leaves garbage, so the mapping is dropped rather
	// than kept (mirroring a failed synchronous prefetch).
	if m.pipe != nil {
		for s := range m.inflight {
			if m.inflight[s] == nil {
				continue
			}
			it := m.slotItem[s]
			if err := m.joinSlot(s); err != nil {
				if IsCorruption(err) {
					m.pipeStats.CorruptReads++
				}
				m.pipeStats.DroppedWritebacks++
				if it >= 0 {
					m.itemSlot[it] = -1
				}
				m.slotItem[s] = -1
				m.dirty[s] = false
				if m.prefetched[s] {
					m.prefetched[s] = false
					m.pstats.Wasted++
				}
			}
		}
	}
	// Evict until the surviving residents fit in target slots.
	for {
		resident := 0
		for _, it := range m.slotItem {
			if it >= 0 {
				resident++
			}
		}
		if resident <= target {
			break
		}
		victim, slot, err := m.pickVictim(-1, pinned)
		if err != nil {
			return err
		}
		if err := m.evict(victim, slot); err != nil {
			return err
		}
		m.rstats.Evictions++
	}
	// Compact residents from the doomed tail into free prefix slots.
	// The buffer moves with the resident (its contents, dirty bit and
	// any still-pending write-back all travel by pointer).
	for s := target; s < len(m.slots); s++ {
		it := m.slotItem[s]
		if it < 0 {
			continue
		}
		dst := -1
		for u := 0; u < target; u++ {
			if m.slotItem[u] < 0 {
				dst = u
				break
			}
		}
		// dst always exists: at most target residents survive the
		// eviction loop, and one of them is sitting at s >= target.
		m.slots[dst] = m.slots[s]
		m.slotItem[dst] = it
		m.itemSlot[it] = dst
		m.dirty[dst] = m.dirty[s]
		m.prefetched[dst] = m.prefetched[s]
		m.slotItem[s] = -1
		m.dirty[s] = false
		m.prefetched[s] = false
	}
	// Copy into fresh slices so the dropped tail buffers lose their
	// last reference and can actually be reclaimed — the whole point of
	// shrinking under memory pressure.
	ns := make([][]float64, target)
	copy(ns, m.slots[:target])
	m.slots = ns
	m.slotItem = append([]int(nil), m.slotItem[:target]...)
	m.dirty = append([]bool(nil), m.dirty[:target]...)
	m.prefetched = append([]bool(nil), m.prefetched[:target]...)
	if m.pipe != nil {
		// All inflight entries are nil after the drain above.
		m.inflight = make([]*fetchReq, target)
	}
	return nil
}
