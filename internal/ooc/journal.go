package ooc

// Write-back spill journal — the durability backstop for the remote
// tier. The tiered store's crash-safety story ("a dirty victim is
// written to the remote tier before its slot is reused") breaks down
// during a network outage: the push fails and the cache slot is needed
// NOW. Rather than latching an error and losing the newest copy of the
// vector, the eviction appends it to this journal — an append-only,
// CRC-bound file in the cache directory — and the run keeps going. On
// recovery (a successful probe through the circuit breaker, or Sync)
// the journal is replayed to the remote tier, newest record per
// vector, and truncated once empty: zero lost write-backs.
//
// While a vector sits in the journal, the journal holds its
// authoritative newest copy (unless the cache re-dirties it, which
// supersedes the entry): reads consult the journal before fetching
// remote, and FetchCost prices journaled vectors as local.
//
// On-disk format (all little-endian):
//
//	header (16 B): magic "OOCSPL1\n" | uint32 numVectors | uint32 vecLen
//	record       : uint32 vi | uint32 count | uint64 seq
//	               count*8 B payload | uint64 CRC64(header+payload)
//
// Appends are fsynced — the journal is the only durable copy of the
// vector it absorbs. Replay after a crash reads records until the
// first torn or CRC-failing one (the crash tail) and keeps the highest
// seq per vector; superseded and replayed records are dropped from the
// in-memory index but stay in the file until it drains empty, at which
// point it is truncated back to the header. Replaying a record twice
// is harmless (remote PUTs are idempotent), so a crash mid-drain
// re-pushes at worst.

import (
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"math"
	"os"
	"sort"
	"sync"
)

const (
	spillMagic      = "OOCSPL1\n"
	spillHeaderSize = 16
	spillRecHdrSize = 16
)

// SpillJournal absorbs dirty write-backs the remote tier cannot accept
// and replays them on recovery. Safe for concurrent use.
type SpillJournal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	nvec int
	vlen int
	seq  uint64
	// live maps vi -> newest payload (its own copy). Bounded by the
	// dirty set of one outage; MemBytes charges it to the watchdog.
	live map[int][]float64

	appends, replayed, discards int64
	fileBytes                   int64
}

// OpenSpillJournal opens (or creates) the journal at path and replays
// any surviving records into the in-memory index. A journal whose
// geometry does not match is discarded: it belongs to a different run,
// and the only caller that can hold stale dirty state (a crashed run)
// restarts from a checkpoint that recomputes it anyway.
func OpenSpillJournal(path string, numVectors, vecLen int) (*SpillJournal, error) {
	if numVectors < 1 || vecLen < 1 {
		return nil, fmt.Errorf("ooc: spill journal geometry %dx%d invalid", numVectors, vecLen)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ooc: opening spill journal: %w", err)
	}
	j := &SpillJournal{
		f:    f,
		path: path,
		nvec: numVectors,
		vlen: vecLen,
		live: make(map[int][]float64),
	}
	if err := j.replay(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// replay scans the file, keeping the newest valid record per vector
// and truncating any crash tail (torn or CRC-failing suffix).
func (j *SpillJournal) replay() error {
	info, err := j.f.Stat()
	if err != nil {
		return err
	}
	if info.Size() < spillHeaderSize {
		return j.reset()
	}
	hdr := make([]byte, spillHeaderSize)
	if _, err := j.f.ReadAt(hdr, 0); err != nil {
		return j.reset()
	}
	if string(hdr[:8]) != spillMagic ||
		binary.LittleEndian.Uint32(hdr[8:]) != uint32(j.nvec) ||
		binary.LittleEndian.Uint32(hdr[12:]) != uint32(j.vlen) {
		return j.reset()
	}
	off := int64(spillHeaderSize)
	rec := make([]byte, spillRecHdrSize+j.vlen*8+8)
	for off+int64(len(rec)) <= info.Size() {
		if _, err := j.f.ReadAt(rec, off); err != nil {
			break
		}
		vi := int(binary.LittleEndian.Uint32(rec[0:]))
		count := int(binary.LittleEndian.Uint32(rec[4:]))
		seq := binary.LittleEndian.Uint64(rec[8:])
		sum := binary.LittleEndian.Uint64(rec[len(rec)-8:])
		if vi < 0 || vi >= j.nvec || count != j.vlen ||
			crc64.Checksum(rec[:len(rec)-8], crcTable) != sum {
			break
		}
		buf := make([]float64, j.vlen)
		for i := range buf {
			buf[i] = math.Float64frombits(binary.LittleEndian.Uint64(rec[spillRecHdrSize+i*8:]))
		}
		j.live[vi] = buf
		if seq >= j.seq {
			j.seq = seq + 1
		}
		off += int64(len(rec))
	}
	// Drop the crash tail so new appends land on a clean boundary.
	if off < info.Size() {
		if err := j.f.Truncate(off); err != nil {
			return err
		}
	}
	j.fileBytes = off
	_, err = j.f.Seek(off, io.SeekStart)
	return err
}

// reset truncates the journal to an empty, well-formed state.
func (j *SpillJournal) reset() error {
	j.live = make(map[int][]float64)
	j.seq = 0
	if err := j.f.Truncate(0); err != nil {
		return err
	}
	hdr := make([]byte, spillHeaderSize)
	copy(hdr, spillMagic)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(j.nvec))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(j.vlen))
	if _, err := j.f.WriteAt(hdr, 0); err != nil {
		return err
	}
	j.fileBytes = spillHeaderSize
	if _, err := j.f.Seek(spillHeaderSize, io.SeekStart); err != nil {
		return err
	}
	return j.f.Sync()
}

// Reset discards every journaled record (used on cache cold start: the
// entries belong to a run whose state is being rebuilt from scratch).
func (j *SpillJournal) Reset() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.reset()
}

// Append absorbs data as the newest copy of vector vi. The record is
// fsynced before Append returns — from here on the journal, not the
// failed remote push, owns the vector's durability.
func (j *SpillJournal) Append(vi int, data []float64) error {
	if vi < 0 || vi >= j.nvec || len(data) != j.vlen {
		return fmt.Errorf("ooc: spill journal append vi=%d len=%d invalid", vi, len(data))
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	rec := make([]byte, spillRecHdrSize+j.vlen*8+8)
	binary.LittleEndian.PutUint32(rec[0:], uint32(vi))
	binary.LittleEndian.PutUint32(rec[4:], uint32(j.vlen))
	binary.LittleEndian.PutUint64(rec[8:], j.seq)
	for i, x := range data {
		binary.LittleEndian.PutUint64(rec[spillRecHdrSize+i*8:], math.Float64bits(x))
	}
	sum := crc64.Checksum(rec[:len(rec)-8], crcTable)
	binary.LittleEndian.PutUint64(rec[len(rec)-8:], sum)
	if _, err := j.f.WriteAt(rec, j.fileBytes); err != nil {
		return fmt.Errorf("ooc: spill journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("ooc: spill journal sync: %w", err)
	}
	j.fileBytes += int64(len(rec))
	j.seq++
	buf := make([]float64, j.vlen)
	copy(buf, data)
	j.live[vi] = buf
	j.appends++
	return nil
}

// Snapshot copies the journaled payload of vi into dst, reporting
// whether one exists.
func (j *SpillJournal) Snapshot(vi int, dst []float64) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	buf, ok := j.live[vi]
	if ok {
		copy(dst, buf)
	}
	return ok
}

// Has reports whether vi has a pending journaled payload.
func (j *SpillJournal) Has(vi int) bool {
	j.mu.Lock()
	_, ok := j.live[vi]
	j.mu.Unlock()
	return ok
}

// Pending returns the journaled vector indices in ascending order.
func (j *SpillJournal) Pending() []int {
	j.mu.Lock()
	vis := make([]int, 0, len(j.live))
	for vi := range j.live {
		vis = append(vis, vi)
	}
	j.mu.Unlock()
	sort.Ints(vis)
	return vis
}

// Depth reports how many vectors are pending replay.
func (j *SpillJournal) Depth() int {
	j.mu.Lock()
	n := len(j.live)
	j.mu.Unlock()
	return n
}

// Remove marks vi replayed (its bytes reached the remote tier). When
// the last pending vector drains, the file is truncated back to its
// header — the observable "journal replayed to empty" state.
func (j *SpillJournal) Remove(vi int) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.live[vi]; !ok {
		return nil
	}
	delete(j.live, vi)
	j.replayed++
	if len(j.live) == 0 {
		return j.reset()
	}
	return nil
}

// Discard drops vi's entry without counting a replay: a newer copy of
// the vector went dirty in the cache (or was pushed remote directly),
// superseding the journaled bytes.
func (j *SpillJournal) Discard(vi int) {
	j.mu.Lock()
	if _, ok := j.live[vi]; ok {
		delete(j.live, vi)
		j.discards++
		if len(j.live) == 0 {
			j.reset()
		}
	}
	j.mu.Unlock()
}

// SpillStats is a snapshot of the journal counters.
type SpillStats struct {
	// Appends counts write-backs absorbed; Replayed those pushed to the
	// remote tier on recovery; Discards entries superseded before
	// replay. Depth is the current pending count, FileBytes the on-disk
	// size (header-only when empty).
	Appends, Replayed, Discards int64
	Depth                       int
	FileBytes                   int64
}

// Stats snapshots the journal counters.
func (j *SpillJournal) Stats() SpillStats {
	j.mu.Lock()
	s := SpillStats{
		Appends:   j.appends,
		Replayed:  j.replayed,
		Discards:  j.discards,
		Depth:     len(j.live),
		FileBytes: j.fileBytes,
	}
	j.mu.Unlock()
	return s
}

// MemBytes reports the heap held by the in-memory index.
func (j *SpillJournal) MemBytes() int64 {
	j.mu.Lock()
	n := int64(len(j.live)) * (48 + int64(j.vlen)*8)
	j.mu.Unlock()
	return n
}

// Close closes the journal file. Pending entries stay on disk and are
// replayed by the next open.
func (j *SpillJournal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}
