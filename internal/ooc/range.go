package ooc

// Ranged I/O: the storage-side prerequisite for the tiered store. A
// local file serves one vector per syscall cheaply, but a remote
// backend pays a full network round trip per request — so the unit of
// transfer must be allowed to grow. RangeStore extends Store with
// contiguous multi-vector transfers and context-aware cancellation;
// TieredStore coalesces adjacent misses into one ReadRange call, and
// Sync pushes adjacent dirty vectors in one WriteRange.

import (
	"context"
	"fmt"
	"time"
)

// FetchCoster estimates what a demand read of vector vi would cost.
// The bool reports whether the vector is "remote" — not servable from
// a local tier — which is what makes recomputing it from resident
// children worth considering (the plf engine's fetch-vs-recompute
// policy matches this method structurally).
type FetchCoster interface {
	FetchCost(vi int) (time.Duration, bool)
}

// MemOverheader reports heap bytes a store holds beyond the manager's
// slot pool (cache indexes, in-flight transfer buffers). Watchdog and
// Resize subtract it from the memory budget so -mem-budget stays
// honest when a cache tier sits under the slots.
type MemOverheader interface {
	MemOverheadBytes() int64
}

// StoreFetchCost queries s's fetch cost, reporting (0, false) — local,
// free — when s has no estimate.
func StoreFetchCost(s Store, vi int) (time.Duration, bool) {
	if fc, ok := s.(FetchCoster); ok {
		return fc.FetchCost(vi)
	}
	return 0, false
}

// StoreMemOverhead queries s's memory overhead (0 when untracked).
func StoreMemOverhead(s Store) int64 {
	if mo, ok := s.(MemOverheader); ok {
		return mo.MemOverheadBytes()
	}
	return 0
}

// Degrader is implemented by stores that can report their remote
// backend as temporarily unavailable (circuit breaker open). While
// degraded, the plf engine flips its fetch-vs-recompute policy so
// every valid-but-remote read becomes a local recompute, and the
// service layer reports not-ready on /readyz.
type Degrader interface {
	Degraded() bool
}

// StoreDegraded queries s's degraded signal (false when untracked).
// Wrapper stores forward Degraded through this helper so the signal
// crosses checksum and instrumentation layers.
func StoreDegraded(s Store) bool {
	if d, ok := s.(Degrader); ok {
		return d.Degraded()
	}
	return false
}

// RangeStore is a Store that can also move count adjacent vectors
// [vi, vi+count) in a single ranged request. dst/src hold the vectors
// back to back (count * vecLen float64s). Implementations honour ctx
// cancellation where the transport allows it; a nil ctx means
// context.Background(). The Store concurrency contract carries over:
// concurrent ranged calls are safe when their vector ranges are
// disjoint (or both are reads).
type RangeStore interface {
	Store
	// ReadRange fills dst with vectors [vi, vi+count).
	ReadRange(ctx context.Context, vi, count int, dst []float64) error
	// WriteRange persists src as vectors [vi, vi+count).
	WriteRange(ctx context.Context, vi, count int, src []float64) error
}

// Syncer is implemented by stores that can force buffered state to
// stable storage (FileStore fsync, ChecksumStore sidecar flush,
// TieredStore dirty write-back). Manager.Flush calls it when
// Config.SyncWrites is set, and the service park path relies on it.
type Syncer interface {
	Sync() error
}

// SyncStore syncs s if it implements Syncer, else does nothing. Wrapper
// stores forward Sync to their inner store through this helper, so a
// sync request reaches every layer that has one.
func SyncStore(s Store) error {
	if sy, ok := s.(Syncer); ok {
		return sy.Sync()
	}
	return nil
}

// checkRange validates a ranged call against a store's geometry.
func checkRange(n, vecLen, vi, count, bufLen int, op string) error {
	if count < 1 || vi < 0 || vi+count > n {
		return fmt.Errorf("ooc: ranged %s [%d,%d) out of range (n=%d)", op, vi, vi+count, n)
	}
	if bufLen != count*vecLen {
		return fmt.Errorf("ooc: ranged %s buffer %d floats, want %d", op, bufLen, count*vecLen)
	}
	return nil
}

// ReadRangeOf performs a ranged read against any Store: natively when
// the store is a RangeStore, else as a per-vector loop. The loop
// fallback checks ctx between vectors so slow stores stay cancellable.
func ReadRangeOf(ctx context.Context, s Store, vecLen, vi, count int, dst []float64) error {
	if rs, ok := s.(RangeStore); ok {
		return rs.ReadRange(ctx, vi, count, dst)
	}
	for i := 0; i < count; i++ {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if err := s.ReadVector(vi+i, dst[i*vecLen:(i+1)*vecLen]); err != nil {
			return err
		}
	}
	return nil
}

// WriteRangeOf is the write-side counterpart of ReadRangeOf.
func WriteRangeOf(ctx context.Context, s Store, vecLen, vi, count int, src []float64) error {
	if rs, ok := s.(RangeStore); ok {
		return rs.WriteRange(ctx, vi, count, src)
	}
	for i := 0; i < count; i++ {
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if err := s.WriteVector(vi+i, src[i*vecLen:(i+1)*vecLen]); err != nil {
			return err
		}
	}
	return nil
}
