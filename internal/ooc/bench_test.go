package ooc

import (
	"math/rand"
	"path/filepath"
	"testing"
)

func benchManager(b *testing.B, n, vecLen, slots int, strat Strategy, store Store) *Manager {
	b.Helper()
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vecLen, Slots: slots,
		Strategy: strat, ReadSkipping: true, Store: store,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkVectorHit(b *testing.B) {
	m := benchManager(b, 100, 1024, 100, NewLRU(100), NewMemStore(100, 1024))
	if _, err := m.Vector(0, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Vector(0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorMissMemStore(b *testing.B) {
	n := 256
	m := benchManager(b, n, 1024, MinSlots, NewLRU(n), NewMemStore(n, 1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Round-robin through more items than slots: every access misses.
		if _, err := m.Vector(i%n, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Stats().MissRate()*100, "miss%")
}

func BenchmarkVectorMissFileStore(b *testing.B) {
	n := 64
	vecLen := 4096 // 32 KiB vectors
	store, err := NewFileStore(filepath.Join(b.TempDir(), "v.bin"), n, vecLen)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	m := benchManager(b, n, vecLen, MinSlots, NewLRU(n), store)
	b.SetBytes(int64(vecLen) * 8 * 2) // one read + one write per swap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Vector(i%n, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyPickVictim(b *testing.B) {
	cands := make([]int, 512)
	for i := range cands {
		cands[i] = i
	}
	b.Run("LRU", func(b *testing.B) {
		s := NewLRU(1024)
		for _, c := range cands {
			s.Touch(c)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PickVictim(cands, 600)
		}
	})
	b.Run("LFU", func(b *testing.B) {
		s := NewLFU(1024)
		for _, c := range cands {
			s.Touch(c)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PickVictim(cands, 600)
		}
	})
	b.Run("Random", func(b *testing.B) {
		s := NewRandom(rand.New(rand.NewSource(1)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PickVictim(cands, 600)
		}
	})
}

func BenchmarkFileStoreRoundTrip(b *testing.B) {
	vecLen := 16384 // 128 KiB, a realistic small vector
	store, err := NewFileStore(filepath.Join(b.TempDir(), "rt.bin"), 4, vecLen)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	buf := make([]float64, vecLen)
	b.SetBytes(int64(vecLen) * 8 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteVector(i%4, buf); err != nil {
			b.Fatal(err)
		}
		if err := store.ReadVector(i%4, buf); err != nil {
			b.Fatal(err)
		}
	}
}
