package ooc

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
	"time"

	"oocphylo/internal/iosim"
	"oocphylo/internal/plf"
	"oocphylo/internal/sim"
)

func benchManager(b *testing.B, n, vecLen, slots int, strat Strategy, store Store) *Manager {
	b.Helper()
	m, err := NewManager(Config{
		NumVectors: n, VectorLen: vecLen, Slots: slots,
		Strategy: strat, ReadSkipping: true, Store: store,
	})
	if err != nil {
		b.Fatal(err)
	}
	return m
}

func BenchmarkVectorHit(b *testing.B) {
	m := benchManager(b, 100, 1024, 100, NewLRU(100), NewMemStore(100, 1024))
	if _, err := m.Vector(0, true); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Vector(0, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorMissMemStore(b *testing.B) {
	n := 256
	m := benchManager(b, n, 1024, MinSlots, NewLRU(n), NewMemStore(n, 1024))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Round-robin through more items than slots: every access misses.
		if _, err := m.Vector(i%n, false); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(m.Stats().MissRate()*100, "miss%")
}

func BenchmarkVectorMissFileStore(b *testing.B) {
	n := 64
	vecLen := 4096 // 32 KiB vectors
	store, err := NewFileStore(filepath.Join(b.TempDir(), "v.bin"), n, vecLen)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	m := benchManager(b, n, vecLen, MinSlots, NewLRU(n), store)
	b.SetBytes(int64(vecLen) * 8 * 2) // one read + one write per swap
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Vector(i%n, false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyPickVictim(b *testing.B) {
	cands := make([]int, 512)
	for i := range cands {
		cands[i] = i
	}
	b.Run("LRU", func(b *testing.B) {
		s := NewLRU(1024)
		for _, c := range cands {
			s.Touch(c)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PickVictim(cands, 600)
		}
	})
	b.Run("LFU", func(b *testing.B) {
		s := NewLFU(1024)
		for _, c := range cands {
			s.Touch(c)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PickVictim(cands, 600)
		}
	})
	b.Run("Random", func(b *testing.B) {
		s := NewRandom(rand.New(rand.NewSource(1)))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s.PickVictim(cands, 600)
		}
	})
}

// BenchmarkAsyncPipeline prices the backing store like the Figure-5
// device model (SimStore sleeping for its modelled transfer time) and
// runs full tree traversals — the least-local access pattern — with the
// synchronous manager and with the async pipeline at several prefetch
// depths. The stall-ns/op metric is the compute thread's measured I/O
// wait per traversal; the pipeline's job is to shrink it while leaving
// the likelihood and miss counters untouched.
func BenchmarkAsyncPipeline(b *testing.B) {
	// Dimensions match the internal/experiments ablation defaults: per-step
	// compute must be comparable to one vector transfer for overlap to be
	// visible (compute grows with patterns×k², transfer with patterns×k).
	d, err := sim.NewDataset(sim.Config{Taxa: 128, Sites: 1024, GammaAlpha: 0.8, Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	dev := iosim.Device{Name: "nvme", Latency: 150 * time.Microsecond, Bandwidth: 2e9}
	bench := func(b *testing.B, async bool, depth int) {
		tr := d.Tree.Clone()
		n := tr.NumInner()
		vecLen := plf.VectorLength(d.Model, d.Patterns.NumPatterns())
		var clock iosim.Clock
		store := NewSimStore(NewMemStore(n, vecLen), dev, &clock)
		store.Realtime = 1
		m, err := NewManager(Config{
			NumVectors: n, VectorLen: vecLen,
			Slots:        SlotsForFraction(0.25, n),
			Strategy:     NewLRU(n),
			ReadSkipping: true,
			Store:        store,
			Async:        async, IOWorkers: 2, WriteBuffers: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		e, err := plf.New(tr, d.Patterns, d.Model, m)
		if err != nil {
			b.Fatal(err)
		}
		e.EnablePrefetch(true)
		e.SetPrefetchDepth(depth)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := e.FullTraversal(tr.Edges[0]); err != nil {
				b.Fatal(err)
			}
			if _, err := e.LogLikelihoodAt(tr.Edges[0]); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		stall := m.PipelineStats().StallTime
		b.ReportMetric(float64(stall.Nanoseconds())/float64(b.N), "stall-ns/op")
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("sync", func(b *testing.B) { bench(b, false, 1) })
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("async-d%d", depth), func(b *testing.B) { bench(b, true, depth) })
	}
}

func BenchmarkFileStoreRoundTrip(b *testing.B) {
	vecLen := 16384 // 128 KiB, a realistic small vector
	store, err := NewFileStore(filepath.Join(b.TempDir(), "rt.bin"), 4, vecLen)
	if err != nil {
		b.Fatal(err)
	}
	defer store.Close()
	buf := make([]float64, vecLen)
	b.SetBytes(int64(vecLen) * 8 * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := store.WriteVector(i%4, buf); err != nil {
			b.Fatal(err)
		}
		if err := store.ReadVector(i%4, buf); err != nil {
			b.Fatal(err)
		}
	}
}
