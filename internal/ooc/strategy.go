package ooc

import (
	"math/rand"

	"oocphylo/internal/tree"
)

// Strategy picks which resident vector to evict on a miss — the paper's
// replacement strategies (§3.3). Touch is called on every vector access
// (hit or miss) so stateful policies can maintain recency/frequency
// bookkeeping; PickVictim chooses among the evictable resident items
// (pinned vectors are already excluded by the manager).
type Strategy interface {
	// Name identifies the policy in reports ("RAND", "LRU", ...).
	Name() string
	// Touch records an access to item.
	Touch(item int)
	// PickVictim returns the index *within candidates* of the item to
	// evict, given that `requested` is being faulted in. candidates is
	// never empty. requested is -1 when the eviction frees a slot for
	// the pool shrink of Manager.Resize rather than an incoming item.
	PickVictim(candidates []int, requested int) int
	// Reset clears policy state.
	Reset()
}

// RandomStrategy evicts a uniformly random evictable vector — the
// paper's minimum-overhead policy, which its Figure 2 shows to perform
// on par with LRU and Topological.
type RandomStrategy struct {
	rng *rand.Rand
}

// NewRandom returns a Random strategy driven by the given source.
func NewRandom(rng *rand.Rand) *RandomStrategy { return &RandomStrategy{rng: rng} }

// Name implements Strategy.
func (s *RandomStrategy) Name() string { return "RAND" }

// Touch implements Strategy (no bookkeeping).
func (s *RandomStrategy) Touch(int) {}

// PickVictim implements Strategy.
func (s *RandomStrategy) PickVictim(candidates []int, _ int) int {
	return s.rng.Intn(len(candidates))
}

// Reset implements Strategy.
func (s *RandomStrategy) Reset() {}

// LRUStrategy evicts the least recently used vector. The paper notes an
// O(log n) search over timestamps; with one timestamp per item the
// linear scan over the (at most m) candidates below is semantically
// identical and simpler.
type LRUStrategy struct {
	stamp []int64
	now   int64
}

// NewLRU returns an LRU strategy for numItems vectors.
func NewLRU(numItems int) *LRUStrategy {
	return &LRUStrategy{stamp: make([]int64, numItems)}
}

// Name implements Strategy.
func (s *LRUStrategy) Name() string { return "LRU" }

// Touch implements Strategy.
func (s *LRUStrategy) Touch(item int) {
	s.now++
	s.stamp[item] = s.now
}

// PickVictim implements Strategy.
func (s *LRUStrategy) PickVictim(candidates []int, _ int) int {
	best := 0
	for i, it := range candidates {
		if s.stamp[it] < s.stamp[candidates[best]] {
			best = i
		}
	}
	return best
}

// Reset implements Strategy.
func (s *LRUStrategy) Reset() {
	for i := range s.stamp {
		s.stamp[i] = 0
	}
	s.now = 0
}

// LFUStrategy evicts the least frequently used vector (the paper's
// worst performer).
type LFUStrategy struct {
	freq []int64
}

// NewLFU returns an LFU strategy for numItems vectors.
func NewLFU(numItems int) *LFUStrategy {
	return &LFUStrategy{freq: make([]int64, numItems)}
}

// Name implements Strategy.
func (s *LFUStrategy) Name() string { return "LFU" }

// Touch implements Strategy.
func (s *LFUStrategy) Touch(item int) { s.freq[item]++ }

// PickVictim implements Strategy.
func (s *LFUStrategy) PickVictim(candidates []int, _ int) int {
	best := 0
	for i, it := range candidates {
		if s.freq[it] < s.freq[candidates[best]] {
			best = i
		}
	}
	return best
}

// Reset implements Strategy.
func (s *LFUStrategy) Reset() {
	for i := range s.freq {
		s.freq[i] = 0
	}
}

// TopologicalStrategy evicts the vector whose tree node is farthest (in
// node distance along the unique connecting path, §3.3) from the
// requested vector's node, on the rationale that the search will touch
// it again furthest in the future. It needs the tree to measure
// distances; the tree may be mutated by the search between accesses —
// distances are recomputed per eviction from current topology.
type TopologicalStrategy struct {
	t       *tree.Tree
	numTips int
}

// NewTopological returns a Topological strategy over t. Vector index vi
// corresponds to tree node vi + t.NumTips.
func NewTopological(t *tree.Tree) *TopologicalStrategy {
	return &TopologicalStrategy{t: t, numTips: t.NumTips}
}

// Name implements Strategy.
func (s *TopologicalStrategy) Name() string { return "Topological" }

// Touch implements Strategy (stateless).
func (s *TopologicalStrategy) Touch(int) {}

// PickVictim implements Strategy: one BFS from the requested node, then
// the farthest candidate wins.
func (s *TopologicalStrategy) PickVictim(candidates []int, requested int) int {
	if requested < 0 {
		// Pool shrink: no item is being faulted in. Measure from the
		// first candidate so the choice stays deterministic — the
		// candidate farthest from the rest of the resident set loses.
		requested = candidates[0]
	}
	node := s.t.Nodes[requested+s.numTips]
	dist := tree.NodeDistances(s.t, node)
	best, bestD := 0, -1
	for i, it := range candidates {
		d := dist[it+s.numTips]
		if d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// Reset implements Strategy.
func (s *TopologicalStrategy) Reset() {}
