package ooc

// Deterministic crashpoint framework — the torture half of resource
// governance. Checkpointing (PR 2's crash-safe store plus the search
// checkpoints) is only trustworthy if runs actually die at awkward
// moments and come back bit-identical; this file makes the dying
// reproducible. CrashStore wraps any Store and hard-kills the process
// at the N-th vector I/O — before the operation runs, so the write
// never lands and the store is left exactly as torn as a real power
// cut at that instant. The kill/resume soak (cmd/oocraxml) drives a
// seeded schedule of such crashpoints through repeated crash+resume
// cycles and asserts the final likelihood matches an uninterrupted
// run bit for bit.

import (
	"math/rand"
	"os"
	"sync/atomic"
	"time"
)

// CrashExitCode is the exit status of a fired crashpoint — distinct
// from success (0) and ordinary failure (1) so harnesses can tell a
// scheduled kill from a genuine error.
const CrashExitCode = 3

// CrashStore wraps a Store and terminates the process at the N-th
// vector operation (reads and writes both count). The kill fires
// BEFORE the operation executes: a write crashpoint means that write
// never reached the store, exactly like a power cut between intent
// and completion. A CrashStore with after <= 0 never fires and only
// counts operations. Safe for concurrent use (the async pipeline's
// workers hit it from several goroutines).
type CrashStore struct {
	inner Store
	after int64
	ops   atomic.Int64
	exit  func(ops int64)
}

// NewCrashStore wraps inner with a crashpoint at the after-th
// operation (1-based; <= 0 disables).
func NewCrashStore(inner Store, after int64) *CrashStore {
	return &CrashStore{
		inner: inner,
		after: after,
		exit:  func(int64) { os.Exit(CrashExitCode) },
	}
}

// SetExit replaces the process-kill with fn — unit tests substitute a
// panic they can recover. Call before any operation.
func (s *CrashStore) SetExit(fn func(ops int64)) { s.exit = fn }

// Ops returns the number of vector operations observed so far.
func (s *CrashStore) Ops() int64 { return s.ops.Load() }

func (s *CrashStore) maybeCrash() {
	if s.after <= 0 {
		return
	}
	if n := s.ops.Add(1); n == s.after {
		s.exit(n)
	}
}

// ReadVector implements Store.
func (s *CrashStore) ReadVector(vi int, dst []float64) error {
	s.maybeCrash()
	return s.inner.ReadVector(vi, dst)
}

// WriteVector implements Store.
func (s *CrashStore) WriteVector(vi int, src []float64) error {
	s.maybeCrash()
	return s.inner.WriteVector(vi, src)
}

// Close implements Store.
func (s *CrashStore) Close() error { return s.inner.Close() }

// CrashPoint returns the deterministic operation count for crash cycle
// `cycle` of a seeded kill schedule: a base that doubles per cycle —
// so later crashes land deeper into the (partially resumed) run —
// plus bounded seeded jitter, so no two schedules kill at identical
// offsets yet every schedule is exactly reproducible.
func CrashPoint(seed int64, cycle int, base, jitter int64) int64 {
	if base <= 0 {
		base = 500
	}
	n := base << uint(cycle)
	if jitter > 0 {
		rng := rand.New(rand.NewSource(seed + int64(cycle)*1000003))
		n += rng.Int63n(jitter)
	}
	return n
}

// Sync forwards to the inner store.
func (s *CrashStore) Sync() error { return SyncStore(s.inner) }

// FetchCost forwards to the inner store.
func (s *CrashStore) FetchCost(vi int) (time.Duration, bool) { return StoreFetchCost(s.inner, vi) }

// MemOverheadBytes forwards to the inner store.
func (s *CrashStore) MemOverheadBytes() int64 { return StoreMemOverhead(s.inner) }
