package ooc

// Deterministic seeded fault injection. FaultStore wraps any Store and
// injects the failure modes a long out-of-core run must survive:
// transient EIO (the op fails but a retry succeeds), torn writes (the
// write reports success but only a prefix of the payload reaches the
// medium), and bit flips on the read path (the medium is fine but the
// transfer is not). Tests and the soak harness layer it UNDER a
// ChecksumStore, so silent corruption is detected on read-back and the
// recovery machinery above (manager retries, engine recompute) can be
// exercised end to end:
//
//	Manager (retries) → ChecksumStore (verifies) → FaultStore (injects) → FileStore/MemStore
//
// All randomness comes from one seeded source behind a mutex, so a
// fixed seed yields a reproducible fault sequence for a deterministic
// (synchronous) operation order.

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"
)

// FaultConfig parameterises a FaultStore. Probabilities are per
// operation; Max* caps bound how often each fault fires (0 = never —
// a cap must be set for a category to be active, which keeps soak runs
// terminating by construction).
type FaultConfig struct {
	// Seed fixes the fault sequence.
	Seed int64
	// PReadErr and PWriteErr inject transient EIO (wrapped in
	// ErrTransientIO) on reads and writes.
	PReadErr, PWriteErr float64
	// PTornWrite makes a write land partially while reporting success.
	PTornWrite float64
	// PBitFlip flips one bit of a read's payload after the transfer.
	PBitFlip float64
	// Caps on the number of injections per category.
	MaxReadErrs, MaxWriteErrs, MaxTornWrites, MaxBitFlips int64
}

// FaultStats counts the faults actually injected.
type FaultStats struct {
	ReadErrs, WriteErrs, TornWrites, BitFlips int64
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.ReadErrs + s.WriteErrs + s.TornWrites + s.BitFlips
}

// FaultStore injects faults in front of an inner Store. Safe for the
// concurrent distinct-vector calls the async pipeline issues (the fault
// dice share one locked source).
type FaultStore struct {
	inner Store

	mu    sync.Mutex
	cfg   FaultConfig
	rng   *rand.Rand
	stats FaultStats
}

// NewFaultStore wraps inner with the given fault plan.
func NewFaultStore(inner Store, cfg FaultConfig) *FaultStore {
	return &FaultStore{inner: inner, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats returns a snapshot of the injected-fault counters.
func (s *FaultStore) Stats() FaultStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// roll decides one fault category under s.mu: fire with probability p
// unless the cap is exhausted.
func (s *FaultStore) roll(p float64, cap int64, counter *int64) bool {
	if p <= 0 || cap <= 0 || *counter >= cap {
		return false
	}
	if s.rng.Float64() >= p {
		return false
	}
	*counter++
	return true
}

// ReadVector implements Store: maybe a transient EIO before any
// transfer, maybe one flipped bit after a successful one.
func (s *FaultStore) ReadVector(vi int, dst []float64) error {
	s.mu.Lock()
	if s.roll(s.cfg.PReadErr, s.cfg.MaxReadErrs, &s.stats.ReadErrs) {
		s.mu.Unlock()
		return fmt.Errorf("ooc: injected EIO reading vector %d: %w", vi, ErrTransientIO)
	}
	flip := -1
	var bit uint
	if len(dst) > 0 && s.roll(s.cfg.PBitFlip, s.cfg.MaxBitFlips, &s.stats.BitFlips) {
		flip = s.rng.Intn(len(dst))
		bit = uint(s.rng.Intn(64))
	}
	s.mu.Unlock()
	if err := s.inner.ReadVector(vi, dst); err != nil {
		return err
	}
	if flip >= 0 {
		dst[flip] = math.Float64frombits(math.Float64bits(dst[flip]) ^ (1 << bit))
	}
	return nil
}

// WriteVector implements Store: maybe a transient EIO before the write,
// maybe a torn write — the prefix lands, the tail never reaches the
// medium, and the call still reports success (exactly the silent
// failure a checksum layer exists to catch).
func (s *FaultStore) WriteVector(vi int, src []float64) error {
	s.mu.Lock()
	if s.roll(s.cfg.PWriteErr, s.cfg.MaxWriteErrs, &s.stats.WriteErrs) {
		s.mu.Unlock()
		return fmt.Errorf("ooc: injected EIO writing vector %d: %w", vi, ErrTransientIO)
	}
	torn := -1
	if len(src) > 1 && s.roll(s.cfg.PTornWrite, s.cfg.MaxTornWrites, &s.stats.TornWrites) {
		// Keep at least one element, lose at least one.
		torn = 1 + s.rng.Intn(len(src)-1)
	}
	s.mu.Unlock()
	if torn < 0 {
		return s.inner.WriteVector(vi, src)
	}
	tmp := make([]float64, len(src))
	copy(tmp, src[:torn])
	return s.inner.WriteVector(vi, tmp)
}

// Close implements Store.
func (s *FaultStore) Close() error { return s.inner.Close() }

// Sync forwards to the inner store.
func (s *FaultStore) Sync() error { return SyncStore(s.inner) }

// FetchCost forwards to the inner store.
func (s *FaultStore) FetchCost(vi int) (time.Duration, bool) { return StoreFetchCost(s.inner, vi) }

// MemOverheadBytes forwards to the inner store.
func (s *FaultStore) MemOverheadBytes() int64 { return StoreMemOverhead(s.inner) }
