package ooc

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func fillVec(v []float64, vi int) {
	for i := range v {
		v[i] = float64(vi*1000 + i + 1)
	}
}

func newTestChecksumStore(t *testing.T, n, vecLen int) (*ChecksumStore, string) {
	t.Helper()
	side := filepath.Join(t.TempDir(), "vectors.sum")
	cs, err := NewChecksumStore(NewMemStore(n, vecLen), side, n, vecLen)
	if err != nil {
		t.Fatal(err)
	}
	return cs, side
}

func TestChecksumStoreRoundTrip(t *testing.T) {
	n, vl := 8, 16
	cs, _ := newTestChecksumStore(t, n, vl)
	defer cs.Close()
	buf := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		fillVec(buf, vi)
		if err := cs.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		if err := cs.ReadVector(vi, got); err != nil {
			t.Fatalf("vector %d: %v", vi, err)
		}
		fillVec(buf, vi)
		for i := range buf {
			if got[i] != buf[i] {
				t.Fatalf("vector %d element %d: got %v want %v", vi, i, got[i], buf[i])
			}
		}
	}
	if cs.CorruptReads() != 0 {
		t.Errorf("corrupt reads on clean store: %d", cs.CorruptReads())
	}
}

func TestChecksumStoreNeverWrittenReadsZeros(t *testing.T) {
	cs, _ := newTestChecksumStore(t, 4, 8)
	defer cs.Close()
	got := make([]float64, 8)
	// A fresh backing store legitimately reads zeros: generation 0 must
	// not be treated as corruption.
	if err := cs.ReadVector(2, got); err != nil {
		t.Fatalf("never-written read: %v", err)
	}
}

func TestChecksumStoreDetectsCorruption(t *testing.T) {
	n, vl := 4, 8
	inner := NewMemStore(n, vl)
	side := filepath.Join(t.TempDir(), "v.sum")
	cs, err := NewChecksumStore(inner, side, n, vl)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	buf := make([]float64, vl)
	fillVec(buf, 1)
	if err := cs.WriteVector(1, buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored copy behind the checksum layer's back.
	buf[3] += 0.5
	if err := inner.WriteVector(1, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]float64, vl)
	err = cs.ReadVector(1, got)
	var ce *CorruptionError
	if !errors.As(err, &ce) {
		t.Fatalf("read of corrupted vector: got %v, want *CorruptionError", err)
	}
	if ce.Vector != 1 {
		t.Errorf("corruption reported for vector %d, want 1", ce.Vector)
	}
	if ce.CorruptVector() != 1 {
		t.Errorf("CorruptVector() = %d, want 1", ce.CorruptVector())
	}
	if !IsCorruption(err) || IsCorruption(errors.New("x")) {
		t.Error("IsCorruption misclassifies")
	}
	if cs.CorruptReads() != 1 {
		t.Errorf("CorruptReads = %d, want 1", cs.CorruptReads())
	}
	// A rewrite heals the vector.
	fillVec(buf, 1)
	if err := cs.WriteVector(1, buf); err != nil {
		t.Fatal(err)
	}
	if err := cs.ReadVector(1, got); err != nil {
		t.Fatalf("read after heal: %v", err)
	}
}

func TestChecksumStoreReopen(t *testing.T) {
	n, vl := 6, 10
	inner := NewMemStore(n, vl)
	side := filepath.Join(t.TempDir(), "v.sum")
	cs, err := NewChecksumStore(inner, side, n, vl)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		fillVec(buf, vi)
		if err := cs.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	man := cs.Manifest()
	if err := cs.Close(); err != nil { // Close closes inner (MemStore: no-op) and seals the sidecar
		t.Fatal(err)
	}

	cs2, err := OpenChecksumStore(inner, side, n, vl)
	if err != nil {
		t.Fatal(err)
	}
	defer cs2.Close()
	if err := cs2.VerifyManifest(man); err != nil {
		t.Fatalf("manifest round-trip: %v", err)
	}
	got := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		if err := cs2.ReadVector(vi, got); err != nil {
			t.Fatalf("vector %d after reopen: %v", vi, err)
		}
	}
	// Wrong geometry must be rejected.
	if _, err := OpenChecksumStore(inner, side, n+1, vl); err == nil {
		t.Error("reopen with wrong vector count succeeded")
	}
	if _, err := OpenChecksumStore(inner, side, n, vl+1); err == nil {
		t.Error("reopen with wrong vector length succeeded")
	}
	// A stale manifest (from before another write) must be rejected.
	fillVec(buf, 0)
	buf[0] = 42
	if err := cs2.WriteVector(0, buf); err != nil {
		t.Fatal(err)
	}
	if err := cs2.VerifyManifest(man); err == nil {
		t.Error("stale manifest accepted after a write")
	}
}

func TestChecksumStoreVerifyScan(t *testing.T) {
	n, vl := 5, 6
	inner := NewMemStore(n, vl)
	cs, err := NewChecksumStore(inner, filepath.Join(t.TempDir(), "v.sum"), n, vl)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	buf := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		fillVec(buf, vi)
		if err := cs.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	bad, err := cs.Verify()
	if err != nil || len(bad) != 0 {
		t.Fatalf("clean store: bad=%v err=%v", bad, err)
	}
	fillVec(buf, 3)
	buf[0] = math.Pi
	if err := inner.WriteVector(3, buf); err != nil {
		t.Fatal(err)
	}
	bad, err = cs.Verify()
	if err != nil || len(bad) != 1 || bad[0] != 3 {
		t.Fatalf("after corrupting vector 3: bad=%v err=%v", bad, err)
	}
}

func TestRetryPolicyTransient(t *testing.T) {
	rp := RetryPolicy{Max: 5, Base: time.Microsecond, Cap: 10 * time.Microsecond}
	var counter atomic.Int64
	fails := 3
	err := rp.run(&counter, func() error {
		if fails > 0 {
			fails--
			return fmt.Errorf("boom: %w", ErrTransientIO)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("retries exhausted early: %v", err)
	}
	if counter.Load() != 3 {
		t.Errorf("retry counter = %d, want 3", counter.Load())
	}
	// Permanent errors must not be retried.
	counter.Store(0)
	calls := 0
	perm := errors.New("permanent")
	if err := rp.run(&counter, func() error { calls++; return perm }); !errors.Is(err, perm) {
		t.Fatalf("got %v, want permanent error", err)
	}
	if calls != 1 || counter.Load() != 0 {
		t.Errorf("permanent error retried: calls=%d counter=%d", calls, counter.Load())
	}
	// Exhausted budget surfaces the transient error.
	always := fmt.Errorf("still down: %w", ErrTransientIO)
	if err := rp.run(nil, func() error { return always }); !IsTransient(err) {
		t.Fatalf("got %v, want transient after exhaustion", err)
	}
}

func TestMultiFileStoreExactDivisionSizing(t *testing.T) {
	dir := t.TempDir()
	// 8 vectors over 4 files divides exactly: 2 vectors per file, no
	// over-allocation.
	n, nf, vl := 8, 4, 4
	ms, err := NewMultiFileStore(filepath.Join(dir, "v.bin"), nf, n, vl)
	if err != nil {
		t.Fatal(err)
	}
	defer ms.Close()
	buf := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		fillVec(buf, vi)
		if err := ms.WriteVector(vi, buf); err != nil {
			t.Fatal(err)
		}
	}
	got := make([]float64, vl)
	for vi := 0; vi < n; vi++ {
		if err := ms.ReadVector(vi, got); err != nil {
			t.Fatal(err)
		}
		fillVec(buf, vi)
		for i := range buf {
			if got[i] != buf[i] {
				t.Fatalf("vector %d: got %v want %v", vi, got, buf)
			}
		}
	}
	for i := 0; i < nf; i++ {
		fi, err := os.Stat(fmt.Sprintf("%s.%d", filepath.Join(dir, "v.bin"), i))
		if err != nil {
			t.Fatal(err)
		}
		want := int64(n/nf) * int64(vl) * 8
		if fi.Size() != want {
			t.Errorf("file %d holds %d bytes, want %d (exact division over-allocated)", i, fi.Size(), want)
		}
	}
}

func TestMultiFileStoreErrorReportsGlobalIndex(t *testing.T) {
	ms, err := NewMultiFileStore(filepath.Join(t.TempDir(), "v.bin"), 3, 9, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Out-of-range accesses must name the global vector id.
	if err := ms.ReadVector(13, make([]float64, 4)); err == nil {
		t.Fatal("out-of-range read succeeded")
	} else if !strings.Contains(err.Error(), "13") {
		t.Errorf("read error %q does not name the global index 13", err)
	}
	if err := ms.WriteVector(-1, make([]float64, 4)); err == nil {
		t.Fatal("negative write succeeded")
	}
	// An I/O error from a per-file store must be wrapped with the
	// GLOBAL index: vector 5 lives in file 2 at per-file index 1, and
	// the old code reported "vector 1".
	ms.Close()
	if err := ms.ReadVector(5, make([]float64, 4)); err == nil {
		t.Fatal("read on closed store succeeded")
	} else if !strings.Contains(err.Error(), "vector 5") {
		t.Errorf("read error %q does not carry the global index (want \"vector 5\")", err)
	}
}

// TestManifestPrecisionMismatch covers the typed error for resuming a
// store at the wrong element precision: the mismatch is detected before
// any geometry or checksum comparison, legacy manifests without a
// precision field count as f64, and matching precisions verify cleanly.
func TestManifestPrecisionMismatch(t *testing.T) {
	n, vl := 4, 8
	cs, _ := newTestChecksumStore(t, n, vl)
	defer cs.Close()
	cs.SetPrecision("f32")
	if cs.Precision() != "f32" {
		t.Fatalf("Precision() = %q after SetPrecision", cs.Precision())
	}
	man := cs.Manifest()
	if man.Precision != "f32" {
		t.Fatalf("manifest precision %q, want f32", man.Precision)
	}

	// Same store claims f64 now: the f32 manifest must hard-fail with
	// the typed error even though every other manifest field matches.
	cs.SetPrecision("f64")
	err := cs.VerifyManifest(man)
	if !IsPrecisionMismatch(err) {
		t.Fatalf("want PrecisionMismatchError, got %v", err)
	}
	var pm *PrecisionMismatchError
	if !errors.As(err, &pm) || pm.Store != "f32" || pm.Run != "f64" {
		t.Fatalf("mismatch fields: %+v", pm)
	}
	if !strings.Contains(err.Error(), "f32") || !strings.Contains(err.Error(), "f64") {
		t.Fatalf("error text must name both precisions: %v", err)
	}

	// A legacy manifest (no precision recorded) is f64 by convention.
	legacy := man
	legacy.Precision = ""
	if err := cs.VerifyManifest(legacy); err != nil {
		t.Fatalf("legacy manifest against f64 store: %v", err)
	}
	cs.SetPrecision("f32")
	if err := cs.VerifyManifest(legacy); !IsPrecisionMismatch(err) {
		t.Fatalf("legacy manifest against f32 store: want mismatch, got %v", err)
	}

	// Matching precision passes and takes priority over nothing else:
	// a geometry mismatch on matching precision is NOT a precision error.
	man2 := cs.Manifest()
	if err := cs.VerifyManifest(man2); err != nil {
		t.Fatalf("matching manifest: %v", err)
	}
	man2.VectorLen++
	if err := cs.VerifyManifest(man2); err == nil || IsPrecisionMismatch(err) {
		t.Fatalf("geometry mismatch misclassified: %v", err)
	}
}
