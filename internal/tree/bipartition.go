package tree

import (
	"fmt"
	"sort"
)

// Bipartitions returns the set of non-trivial bipartitions (splits)
// induced by the internal edges of t, keyed by a canonical string. Two
// trees over the same taxon set are topologically identical iff their
// bipartition sets are equal. Splits are canonicalised on sorted taxon
// names with the side not containing the lexicographically smallest
// taxon enumerated.
func Bipartitions(t *Tree) map[string]bool {
	names := t.TipNames()
	rank := make(map[string]int, len(names))
	for i, n := range names {
		rank[n] = i
	}
	out := make(map[string]bool)
	for _, e := range t.Edges {
		if e.N[0].IsTip() || e.N[1].IsTip() {
			continue // trivial split
		}
		// Collect tip ranks on the N[0] side.
		var side []int
		var walk func(n, from *Node)
		walk = func(n, from *Node) {
			if n.IsTip() {
				side = append(side, rank[n.Name])
				return
			}
			for _, adj := range n.Adj {
				if o := adj.Other(n); o != from {
					walk(o, n)
				}
			}
		}
		walk(e.N[0], e.N[1])
		sort.Ints(side)
		// Canonicalise: use the side that does NOT contain rank 0.
		if len(side) > 0 && side[0] == 0 {
			inSide := make(map[int]bool, len(side))
			for _, r := range side {
				inSide[r] = true
			}
			other := make([]int, 0, len(names)-len(side))
			for r := range names {
				if !inSide[r] {
					other = append(other, r)
				}
			}
			side = other
		}
		key := fmt.Sprint(side)
		out[key] = true
	}
	return out
}

// RFDistance returns the Robinson-Foulds distance between two trees
// over the same taxon set: the number of bipartitions present in
// exactly one of the trees. Zero means topologically identical.
func RFDistance(a, b *Tree) int {
	ba, bb := Bipartitions(a), Bipartitions(b)
	d := 0
	for k := range ba {
		if !bb[k] {
			d++
		}
	}
	for k := range bb {
		if !ba[k] {
			d++
		}
	}
	return d
}

// TotalLength returns the sum of all branch lengths.
func (t *Tree) TotalLength() float64 {
	s := 0.0
	for _, e := range t.Edges {
		s += e.Length
	}
	return s
}
