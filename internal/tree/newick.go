package tree

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseNewick parses a Newick tree description into an unrooted binary
// tree. Rooted inputs (a top-level bifurcation) are accepted and
// unrooted by merging the two root branches. Every inner node must be
// binary (after unrooting); multifurcations are rejected. Branch
// lengths are optional and default to DefaultBranchLength; non-positive
// lengths are clamped to MinBranchLength.
func ParseNewick(s string) (*Tree, error) {
	p := &newickParser{src: s}
	root, err := p.parse()
	if err != nil {
		return nil, err
	}
	return buildUnrooted(root)
}

// newickNode is the transient rooted parse tree.
type newickNode struct {
	name     string
	length   float64
	children []*newickNode
}

type newickParser struct {
	src string
	pos int
}

func (p *newickParser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("tree: newick position %d: %s", p.pos, fmt.Sprintf(format, args...))
}

func (p *newickParser) peek() byte {
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			p.pos++
			continue
		}
		return c
	}
	return 0
}

func (p *newickParser) parse() (*newickNode, error) {
	root, err := p.parseNode()
	if err != nil {
		return nil, err
	}
	if c := p.peek(); c != ';' && c != 0 {
		return nil, p.errf("trailing content %q", c)
	}
	return root, nil
}

func (p *newickParser) parseNode() (*newickNode, error) {
	n := &newickNode{length: -1}
	if p.peek() == '(' {
		p.pos++
		for {
			child, err := p.parseNode()
			if err != nil {
				return nil, err
			}
			n.children = append(n.children, child)
			c := p.peek()
			if c == ',' {
				p.pos++
				continue
			}
			if c == ')' {
				p.pos++
				break
			}
			return nil, p.errf("expected ',' or ')', found %q", c)
		}
	}
	// Optional label.
	n.name = p.parseLabel()
	// Optional branch length.
	if p.peek() == ':' {
		p.pos++
		l, err := p.parseNumber()
		if err != nil {
			return nil, err
		}
		n.length = l
	}
	if len(n.children) == 0 && n.name == "" {
		return nil, p.errf("tip without a name")
	}
	return n, nil
}

func (p *newickParser) parseLabel() string {
	p.peek() // skip whitespace
	if p.pos < len(p.src) && p.src[p.pos] == '\'' {
		// Quoted label.
		end := strings.IndexByte(p.src[p.pos+1:], '\'')
		if end < 0 {
			label := p.src[p.pos+1:]
			p.pos = len(p.src)
			return label
		}
		label := p.src[p.pos+1 : p.pos+1+end]
		p.pos += end + 2
		return label
	}
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == ':' || c == ',' || c == ')' || c == '(' || c == ';' || c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			break
		}
		p.pos++
	}
	return p.src[start:p.pos]
}

func (p *newickParser) parseNumber() (float64, error) {
	p.peek()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if (c >= '0' && c <= '9') || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E' {
			p.pos++
			continue
		}
		break
	}
	if start == p.pos {
		return 0, p.errf("expected a branch length")
	}
	v, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return 0, p.errf("bad branch length %q", p.src[start:p.pos])
	}
	return v, nil
}

func clampLen(l float64) float64 {
	if l < 0 {
		return DefaultBranchLength
	}
	if l < MinBranchLength {
		return MinBranchLength
	}
	return l
}

// buildUnrooted converts the rooted parse tree into an unrooted Tree.
func buildUnrooted(root *newickNode) (*Tree, error) {
	// Unroot a bifurcating root by merging its two child branches.
	for len(root.children) == 1 {
		// Degenerate chain at the root: collapse.
		child := root.children[0]
		child.length = -1
		root = child
	}
	if len(root.children) == 2 {
		a, b := root.children[0], root.children[1]
		switch {
		case len(a.children) > 0:
			// Reroot at a: a absorbs b as a child with the merged length.
			merged := clampLen(a.length) + clampLen(b.length)
			if a.length < 0 && b.length < 0 {
				merged = -1
			}
			b.length = merged
			a.children = append(a.children, b)
			a.length = -1
			root = a
		case len(b.children) > 0:
			merged := clampLen(a.length) + clampLen(b.length)
			if a.length < 0 && b.length < 0 {
				merged = -1
			}
			a.length = merged
			b.children = append(b.children, a)
			b.length = -1
			root = b
		default:
			// Two-tip tree.
			t := NewPair(a.name, b.name, clampLen(a.length)+clampLen(b.length))
			return t, t.Check()
		}
	}
	if len(root.children) != 3 {
		return nil, fmt.Errorf("tree: newick root has %d children; only binary trees are supported", len(root.children))
	}

	// Count and collect tips in parse order; verify binarity.
	var tips []*newickNode
	var walk func(n *newickNode) error
	walk = func(n *newickNode) error {
		if len(n.children) == 0 {
			tips = append(tips, n)
			return nil
		}
		if n != root && len(n.children) != 2 {
			return fmt.Errorf("tree: newick inner node with %d children; only binary trees are supported", len(n.children))
		}
		for _, c := range n.children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	if len(tips) < 3 {
		return nil, fmt.Errorf("tree: only %d tips", len(tips))
	}

	t := &Tree{NumTips: len(tips)}
	for _, tip := range tips {
		t.addNode(tip.name)
	}
	tipIdx := 0
	var build func(n *newickNode) *Node
	build = func(n *newickNode) *Node {
		if len(n.children) == 0 {
			node := t.Nodes[tipIdx]
			tipIdx++
			return node
		}
		node := t.addNode("")
		for _, c := range n.children {
			child := build(c)
			t.addEdge(node, child, clampLen(c.length))
		}
		return node
	}
	build(root)
	return t, t.Check()
}

// WriteNewick serialises the tree in Newick format with branch lengths,
// using the first inner node (or the single edge for two-tip trees) as
// the serialisation anchor. The output always ends with ";".
func WriteNewick(t *Tree) string {
	var b strings.Builder
	if t.NumTips == 2 {
		e := t.Edges[0]
		fmt.Fprintf(&b, "(%s:%g,%s:%g);", quoteName(e.N[0].Name), e.Length/2, quoteName(e.N[1].Name), e.Length/2)
		return b.String()
	}
	anchor := t.Nodes[t.NumTips] // first inner node
	b.WriteByte('(')
	for i, e := range anchor.Adj {
		if i > 0 {
			b.WriteByte(',')
		}
		writeSubtree(&b, e.Other(anchor), anchor, e)
	}
	b.WriteString(");")
	return b.String()
}

func writeSubtree(b *strings.Builder, n, parent *Node, via *Edge) {
	if n.IsTip() {
		fmt.Fprintf(b, "%s:%g", quoteName(n.Name), via.Length)
		return
	}
	b.WriteByte('(')
	first := true
	for _, e := range n.Adj {
		if e == via {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		writeSubtree(b, e.Other(n), n, e)
	}
	fmt.Fprintf(b, "):%g", via.Length)
}

func quoteName(name string) string {
	if strings.ContainsAny(name, "():;, \t") {
		return "'" + name + "'"
	}
	return name
}

// TipNames returns the sorted taxon labels.
func (t *Tree) TipNames() []string {
	names := make([]string, t.NumTips)
	for i := 0; i < t.NumTips; i++ {
		names[i] = t.Nodes[i].Name
	}
	sort.Strings(names)
	return names
}
