package tree

import (
	"errors"
	"fmt"
)

// ErrNotInner is returned when a pruning junction is a tip.
var ErrNotInner = errors.New("tree: pruning junction must be an inner node")

// Prune represents a subtree detached from the tree by a
// subtree-pruning step, ready to be regrafted (possibly repeatedly, as
// the lazy-SPR search does when it scans candidate insertion branches)
// and finally either kept in place or rolled back.
//
// Pruning cuts at junction u: u keeps its pendant edge to the subtree
// root v, u's two other neighbors a and b become directly connected by
// reusing one of the freed edges, and the other freed edge becomes the
// spare used by Regraft.
type Prune struct {
	t *Tree
	// u is the junction (inner) node travelling with the subtree;
	// v is the subtree root on the far side of the pendant edge.
	u, v *Node
	// a, b are u's former neighbors in the remaining tree.
	a, b *Node
	// merged is the edge now connecting a and b (reused ea slot).
	merged *Edge
	// spare is the fully detached edge slot (former eb).
	spare *Edge
	// la, lb are the original lengths of {u,a} and {u,b}.
	la, lb float64
	// graftTarget, graftLen remember an active regraft for undo.
	graftTarget *Edge
	grafted     bool
	gx, gy      *Node
	glen        float64
}

// PruneSubtree detaches the subtree that hangs from inner node u via
// its edge to v. The remaining tree stays structurally consistent
// (a and b joined by a branch whose length is the sum of the removed
// branches). The returned Prune supports Regraft/Ungraft/Restore.
func PruneSubtree(t *Tree, u, v *Node) (*Prune, error) {
	if u.IsTip() {
		return nil, ErrNotInner
	}
	pendant := u.EdgeTo(v)
	if pendant == nil {
		return nil, fmt.Errorf("tree: nodes %d and %d are not adjacent", u.Index, v.Index)
	}
	var others [2]*Edge
	k := 0
	for _, e := range u.Adj {
		if e != pendant {
			others[k] = e
			k++
		}
	}
	ea, eb := others[0], others[1]
	a, b := ea.Other(u), eb.Other(u)
	p := &Prune{t: t, u: u, v: v, a: a, b: b, merged: ea, spare: eb, la: ea.Length, lb: eb.Length}
	t.detach(ea)
	t.detach(eb)
	t.attach(ea, a, b, ea.Length+eb.Length)
	return p, nil
}

// MergedEdge returns the branch that replaced the pruning site in the
// remaining tree; it is the natural center for radius-bounded regraft
// candidate scans.
func (p *Prune) MergedEdge() *Edge { return p.merged }

// Junction returns the inner node travelling with the pruned subtree.
func (p *Prune) Junction() *Node { return p.u }

// SubtreeRoot returns the root of the pruned subtree.
func (p *Prune) SubtreeRoot() *Node { return p.v }

// Regraft inserts the pruned subtree into edge g = {x, y} of the
// remaining tree, splitting it into {x, u} and {u, y} with half the
// original length each (the lazy-SPR default; the optimiser adjusts the
// three affected branches afterwards). Regrafting onto the merged edge
// reconstructs a topology equivalent to the original. An active regraft
// must be undone (Ungraft) before the next one.
func (p *Prune) Regraft(g *Edge) error {
	if p.grafted {
		return errors.New("tree: Regraft called with an active regraft; call Ungraft first")
	}
	if g == p.spare {
		return errors.New("tree: cannot regraft onto the detached spare edge")
	}
	// The target must lie in the remaining component, i.e. not in the
	// pruned subtree. The subtree contains u; a cheap check: neither
	// endpoint may be u or reachable only via u. Full reachability is
	// O(n); we rely on callers scanning the remaining component (the
	// candidate enumerators below do), and only guard the cheap cases.
	if g.N[0] == p.u || g.N[1] == p.u {
		return errors.New("tree: regraft target inside pruned subtree")
	}
	x, y := g.N[0], g.N[1]
	half := g.Length / 2
	if half < MinBranchLength {
		half = MinBranchLength
	}
	p.graftTarget = g
	p.gx, p.gy = x, y
	p.glen = g.Length
	p.t.detach(g)
	p.t.attach(g, x, p.u, half)
	p.t.attach(p.spare, p.u, y, half)
	p.grafted = true
	return nil
}

// Ungraft undoes the active Regraft, returning the tree to the pruned
// state so another candidate branch can be tried.
func (p *Prune) Ungraft() error {
	if !p.grafted {
		return errors.New("tree: Ungraft without active regraft")
	}
	p.t.detach(p.graftTarget)
	p.t.detach(p.spare)
	p.t.attach(p.graftTarget, p.gx, p.gy, p.glen)
	p.grafted = false
	p.graftTarget = nil
	return nil
}

// Restore rolls the whole pruning back: any active regraft is undone
// and the subtree is re-attached at its original location with the
// original branch lengths.
func (p *Prune) Restore() error {
	if p.grafted {
		if err := p.Ungraft(); err != nil {
			return err
		}
	}
	p.t.detach(p.merged)
	p.t.attach(p.merged, p.u, p.a, p.la)
	p.t.attach(p.spare, p.u, p.b, p.lb)
	return nil
}

// EdgesWithinRadius returns the edges of the component containing start
// whose closer endpoint is at node distance < radius from either
// endpoint of start. It is used to bound lazy-SPR regraft scans, and —
// because BFS never crosses into a disconnected component — it yields
// only valid regraft targets when called on a Prune's merged edge.
// start itself is included (regrafting there restores the original
// topology, which search drivers typically skip explicitly).
func EdgesWithinRadius(t *Tree, start *Edge, radius int) []*Edge {
	type item struct {
		n *Node
		d int
	}
	seenNode := make(map[int]bool)
	seenEdge := make(map[int]bool)
	var out []*Edge
	queue := []item{{start.N[0], 0}, {start.N[1], 0}}
	seenNode[start.N[0].Index] = true
	seenNode[start.N[1].Index] = true
	seenEdge[start.Index] = true
	out = append(out, start)
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.d >= radius {
			continue
		}
		for _, e := range cur.n.Adj {
			if !seenEdge[e.Index] {
				seenEdge[e.Index] = true
				out = append(out, e)
			}
			o := e.Other(cur.n)
			if !seenNode[o.Index] {
				seenNode[o.Index] = true
				queue = append(queue, item{o, cur.d + 1})
			}
		}
	}
	return out
}

// NNI performs a nearest-neighbor interchange across internal edge
// e = {u, v}: the neighbor subtree of u selected by uSide (0 or 1,
// counting e-excluded adjacencies) is exchanged with the neighbor
// subtree of v selected by vSide. The returned function undoes the move.
func NNI(t *Tree, e *Edge, uSide, vSide int) (undo func(), err error) {
	u, v := e.N[0], e.N[1]
	if u.IsTip() || v.IsTip() {
		return nil, errors.New("tree: NNI requires an internal edge")
	}
	pick := func(n *Node, side int) *Edge {
		k := 0
		for _, adj := range n.Adj {
			if adj == e {
				continue
			}
			if k == side {
				return adj
			}
			k++
		}
		return nil
	}
	eu := pick(u, uSide)
	ev := pick(v, vSide)
	if eu == nil || ev == nil {
		return nil, fmt.Errorf("tree: NNI side out of range (%d, %d)", uSide, vSide)
	}
	exchange := func(fromU, toU, fromV, toV *Node) {
		// Move eu's endpoint fromU to toU and ev's endpoint fromV to toV.
		t.detach(eu)
		t.detach(ev)
		eu.replace(fromU, toU)
		ev.replace(fromV, toV)
		for _, ed := range []*Edge{eu, ev} {
			ed.N[0].Adj = append(ed.N[0].Adj, ed)
			ed.N[1].Adj = append(ed.N[1].Adj, ed)
		}
	}
	exchange(u, v, v, u)
	return func() { exchange(v, u, u, v) }, nil
}
