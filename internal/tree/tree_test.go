package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewPair(t *testing.T) {
	tr := NewPair("a", "b", 0.5)
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 2 || tr.NumInner() != 0 || len(tr.Edges) != 1 {
		t.Fatalf("pair dims wrong: tips=%d inner=%d edges=%d", tr.NumTips, tr.NumInner(), len(tr.Edges))
	}
	if tr.Edges[0].Length != 0.5 {
		t.Error("length lost")
	}
}

func TestNewTriplet(t *testing.T) {
	tr := NewTriplet([3]string{"a", "b", "c"}, [3]float64{0.1, 0.2, 0.3})
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 3 || tr.NumInner() != 1 || len(tr.Edges) != 3 {
		t.Fatal("triplet dims wrong")
	}
	center := tr.Nodes[3]
	if center.IsTip() || len(center.Adj) != 3 {
		t.Fatal("center must be inner degree 3")
	}
	for i := 0; i < 3; i++ {
		if tr.Tip(i).Neighbor(0) != center {
			t.Errorf("tip %d not attached to center", i)
		}
	}
}

func TestGraftTipGrowsValidTrees(t *testing.T) {
	tr := NewPair("t1", "t2", 0.4)
	names := []string{"t3", "t4", "t5", "t6", "t7"}
	rng := rand.New(rand.NewSource(1))
	for _, name := range names {
		e := tr.Edges[rng.Intn(len(tr.Edges))]
		tip := tr.GraftTip(name, e, 0.1)
		if err := tr.Check(); err != nil {
			t.Fatalf("after grafting %s: %v", name, err)
		}
		if tip.Name != name || !tip.IsTip() {
			t.Fatalf("grafted tip malformed")
		}
	}
	if tr.NumTips != 7 || tr.NumInner() != 5 || len(tr.Edges) != 11 {
		t.Fatalf("final dims: tips=%d inner=%d edges=%d", tr.NumTips, tr.NumInner(), len(tr.Edges))
	}
	// Tips-first indexing preserved.
	for i := 0; i < tr.NumTips; i++ {
		if !tr.Nodes[i].IsTip() {
			t.Fatalf("node %d should be a tip", i)
		}
	}
	for i := tr.NumTips; i < len(tr.Nodes); i++ {
		if tr.Nodes[i].IsTip() {
			t.Fatalf("node %d should be inner", i)
		}
	}
}

func TestEdgeOtherPanicsOnForeignNode(t *testing.T) {
	tr := NewPair("a", "b", 1)
	defer func() {
		if recover() == nil {
			t.Error("Other must panic for non-endpoints")
		}
	}()
	foreign := &Node{Index: 99}
	tr.Edges[0].Other(foreign)
}

func TestEdgeTo(t *testing.T) {
	tr := NewTriplet([3]string{"a", "b", "c"}, [3]float64{1, 1, 1})
	center := tr.Nodes[3]
	if center.EdgeTo(tr.Tip(0)) == nil {
		t.Error("EdgeTo missed an adjacency")
	}
	if tr.Tip(0).EdgeTo(tr.Tip(1)) != nil {
		t.Error("tips are not adjacent")
	}
}

func TestClone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr, err := RandomTopology([]string{"a", "b", "c", "d", "e", "f"}, rng, 0.05, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	c := tr.Clone()
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
	if RFDistance(tr, c) != 0 {
		t.Error("clone changed topology")
	}
	// Mutating the clone must not affect the original.
	c.Edges[0].Length = 42
	if tr.Edges[0].Length == 42 {
		t.Error("clone shares edges with original")
	}
	origLen := tr.TotalLength()
	undo, err := NNI(c, firstInternalEdge(c), 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = undo
	if tr.TotalLength() != origLen {
		t.Error("clone mutation leaked")
	}
}

func firstInternalEdge(t *Tree) *Edge {
	for _, e := range t.Edges {
		if !e.N[0].IsTip() && !e.N[1].IsTip() {
			return e
		}
	}
	return nil
}

func TestCheckDetectsCorruption(t *testing.T) {
	tr := NewTriplet([3]string{"a", "b", "c"}, [3]float64{1, 1, 1})
	tr.Edges[0].Length = -1
	if err := tr.Check(); err == nil {
		t.Error("negative length must fail Check")
	}
	tr.Edges[0].Length = 1

	tr2 := NewTriplet([3]string{"a", "b", "c"}, [3]float64{1, 1, 1})
	tr2.Nodes[0].Name = ""
	if err := tr2.Check(); err == nil {
		t.Error("unnamed tip must fail Check")
	}

	tr3 := NewTriplet([3]string{"a", "b", "c"}, [3]float64{1, 1, 1})
	tr3.Nodes = append(tr3.Nodes, &Node{Index: 4})
	if err := tr3.Check(); err == nil {
		t.Error("node count mismatch must fail Check")
	}
}

func TestRandomTopologyProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 2 + int(nRaw)%40
		names := make([]string, n)
		for i := range names {
			names[i] = "x" + string(rune('A'+i%26)) + string(rune('0'+i/26))
		}
		rng := rand.New(rand.NewSource(seed))
		tr, err := RandomTopology(names, rng, 0.01, 0.5)
		if err != nil {
			return false
		}
		if tr.Check() != nil {
			return false
		}
		// All names present exactly once.
		got := tr.TipNames()
		if len(got) != n {
			return false
		}
		seen := map[string]bool{}
		for _, g := range got {
			if seen[g] {
				return false
			}
			seen[g] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRandomTopologyErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomTopology([]string{"a"}, rng, 0.1, 0.2); err == nil {
		t.Error("one taxon must error")
	}
	if _, err := RandomTopology([]string{"a", "b"}, rng, 0, 0.2); err == nil {
		t.Error("zero min length must error")
	}
	if _, err := RandomTopology([]string{"a", "b"}, rng, 0.3, 0.2); err == nil {
		t.Error("reversed range must error")
	}
}

func TestYuleTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 3, 8, 50} {
		tr, err := YuleTree(n, 1.0, rng, nil)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tr.NumTips != n {
			t.Fatalf("n=%d: got %d tips", n, tr.NumTips)
		}
	}
	if _, err := YuleTree(1, 1, rng, nil); err == nil {
		t.Error("n=1 must error")
	}
	if _, err := YuleTree(5, 0, rng, nil); err == nil {
		t.Error("rate=0 must error")
	}
	tr, err := YuleTree(0, 2.0, rng, []string{"x", "y", "z"})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TipByName("y") == nil {
		t.Error("custom names not used")
	}
}

func TestYuleDeterministicGivenSeed(t *testing.T) {
	a, err := YuleTree(20, 1, rand.New(rand.NewSource(11)), nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := YuleTree(20, 1, rand.New(rand.NewSource(11)), nil)
	if err != nil {
		t.Fatal(err)
	}
	if WriteNewick(a) != WriteNewick(b) {
		t.Error("same seed must give identical trees")
	}
}
