// Package tree implements unrooted binary phylogenetic trees: the
// topology container the likelihood function is defined on, Newick
// input/output, post-order traversal plans (full and partial), the
// topological node distance used by the out-of-core "Topological"
// replacement strategy, subtree-pruning-regrafting (SPR) edits with
// rollback, and random topology generation.
//
// A tree over n >= 2 tips has n-2 inner nodes (degree 3) and 2n-3
// edges. Tips occupy node indices 0..n-1 and inner nodes n..2n-3; these
// indices are stable across SPR edits, which is what lets the
// out-of-core layer key ancestral vectors by node index.
package tree

import (
	"fmt"
	"math"
)

// Node is a vertex of an unrooted binary tree. Tips have exactly one
// incident edge; inner nodes have exactly three.
type Node struct {
	// Index is the stable node id: tips 0..n-1, inner nodes n..2n-3.
	Index int
	// Name is the taxon label for tips and empty for inner nodes.
	Name string
	// Adj lists the incident edges (1 for tips, 3 for inner nodes).
	Adj []*Edge
}

// IsTip reports whether the node is a leaf.
func (n *Node) IsTip() bool { return len(n.Adj) <= 1 }

// Neighbor returns the node at the far end of the i-th incident edge.
func (n *Node) Neighbor(i int) *Node { return n.Adj[i].Other(n) }

// EdgeTo returns the edge connecting n to m, or nil if they are not
// adjacent.
func (n *Node) EdgeTo(m *Node) *Edge {
	for _, e := range n.Adj {
		if e.Other(n) == m {
			return e
		}
	}
	return nil
}

// Edge is an undirected branch with a length in expected substitutions
// per site.
type Edge struct {
	// Index is the stable edge id in 0..2n-4.
	Index int
	// Length is the branch length; always > 0 in a valid tree.
	Length float64
	// N holds the two endpoints.
	N [2]*Node
}

// Other returns the endpoint of e that is not n. It panics if n is not
// an endpoint, which always indicates a topology-maintenance bug.
func (e *Edge) Other(n *Node) *Node {
	switch n {
	case e.N[0]:
		return e.N[1]
	case e.N[1]:
		return e.N[0]
	}
	panic("tree: Other called with non-endpoint node")
}

// replace swaps endpoint old for nu in the edge's endpoint list.
func (e *Edge) replace(old, nu *Node) {
	switch old {
	case e.N[0]:
		e.N[0] = nu
	case e.N[1]:
		e.N[1] = nu
	default:
		panic("tree: replace called with non-endpoint node")
	}
}

// Tree is an unrooted binary tree over a fixed tip set.
type Tree struct {
	// Nodes lists all nodes; tips first (indices 0..NumTips-1).
	Nodes []*Node
	// Edges lists all branches.
	Edges []*Edge
	// NumTips is the number of leaves.
	NumTips int
}

// MinBranchLength is the smallest branch length the package accepts;
// optimisers clamp to it (RAxML uses a similar floor) so transition
// matrices stay well-conditioned.
const MinBranchLength = 1e-6

// MaxBranchLength caps branch lengths during optimisation.
const MaxBranchLength = 100.0

// DefaultBranchLength initialises branches that have no length yet.
const DefaultBranchLength = 0.1

// NumInner returns the number of inner (ancestral) nodes.
func (t *Tree) NumInner() int { return len(t.Nodes) - t.NumTips }

// Tip returns the i-th tip node.
func (t *Tree) Tip(i int) *Node { return t.Nodes[i] }

// InnerNodes returns the inner nodes (those carrying ancestral vectors).
func (t *Tree) InnerNodes() []*Node { return t.Nodes[t.NumTips:] }

// TipByName returns the tip with the given taxon label, or nil.
func (t *Tree) TipByName(name string) *Node {
	for _, n := range t.Nodes[:t.NumTips] {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// addNode appends a node and returns it.
func (t *Tree) addNode(name string) *Node {
	n := &Node{Index: len(t.Nodes), Name: name}
	t.Nodes = append(t.Nodes, n)
	return n
}

// addEdge creates a branch between a and b.
func (t *Tree) addEdge(a, b *Node, length float64) *Edge {
	e := &Edge{Index: len(t.Edges), Length: length, N: [2]*Node{a, b}}
	t.Edges = append(t.Edges, e)
	a.Adj = append(a.Adj, e)
	b.Adj = append(b.Adj, e)
	return e
}

// detach removes e from the adjacency lists of both endpoints but keeps
// it in t.Edges for index-stable reuse by SPR operations.
func (t *Tree) detach(e *Edge) {
	for _, n := range e.N {
		for i, x := range n.Adj {
			if x == e {
				n.Adj = append(n.Adj[:i], n.Adj[i+1:]...)
				break
			}
		}
	}
}

// attach re-binds a detached edge between a and b.
func (t *Tree) attach(e *Edge, a, b *Node, length float64) {
	e.N = [2]*Node{a, b}
	e.Length = length
	a.Adj = append(a.Adj, e)
	b.Adj = append(b.Adj, e)
}

// Check validates the structural invariants of an unrooted binary tree:
// node and edge counts, degrees, connectivity, positive finite branch
// lengths and index consistency. It is cheap enough to call from tests
// after every mutation.
func (t *Tree) Check() error {
	n := t.NumTips
	if n < 2 {
		return fmt.Errorf("tree: %d tips, need at least 2", n)
	}
	wantNodes, wantEdges := 2*n-2, 2*n-3
	if n == 2 {
		wantNodes, wantEdges = 2, 1
	}
	if len(t.Nodes) != wantNodes {
		return fmt.Errorf("tree: %d nodes, want %d", len(t.Nodes), wantNodes)
	}
	if len(t.Edges) != wantEdges {
		return fmt.Errorf("tree: %d edges, want %d", len(t.Edges), wantEdges)
	}
	for i, node := range t.Nodes {
		if node.Index != i {
			return fmt.Errorf("tree: node %d carries index %d", i, node.Index)
		}
		deg := len(node.Adj)
		switch {
		case i < n && deg != 1:
			return fmt.Errorf("tree: tip %d (%s) has degree %d", i, node.Name, deg)
		case i >= n && deg != 3:
			return fmt.Errorf("tree: inner node %d has degree %d", i, deg)
		case i < n && node.Name == "":
			return fmt.Errorf("tree: tip %d has no name", i)
		}
		for _, e := range node.Adj {
			if e.N[0] != node && e.N[1] != node {
				return fmt.Errorf("tree: node %d adjacency lists foreign edge %d", i, e.Index)
			}
		}
	}
	for i, e := range t.Edges {
		if e.Index != i {
			return fmt.Errorf("tree: edge %d carries index %d", i, e.Index)
		}
		if !(e.Length > 0) || math.IsInf(e.Length, 0) || math.IsNaN(e.Length) {
			return fmt.Errorf("tree: edge %d has invalid length %v", i, e.Length)
		}
		if e.N[0] == e.N[1] {
			return fmt.Errorf("tree: edge %d is a self loop", i)
		}
	}
	// Connectivity via BFS from node 0.
	seen := make([]bool, len(t.Nodes))
	queue := []*Node{t.Nodes[0]}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Adj {
			o := e.Other(cur)
			if !seen[o.Index] {
				seen[o.Index] = true
				count++
				queue = append(queue, o)
			}
		}
	}
	if count != len(t.Nodes) {
		return fmt.Errorf("tree: disconnected (%d of %d nodes reachable)", count, len(t.Nodes))
	}
	return nil
}

// Clone returns a deep copy sharing no structure with t.
func (t *Tree) Clone() *Tree {
	c := &Tree{NumTips: t.NumTips}
	c.Nodes = make([]*Node, len(t.Nodes))
	for i, n := range t.Nodes {
		c.Nodes[i] = &Node{Index: n.Index, Name: n.Name}
	}
	c.Edges = make([]*Edge, len(t.Edges))
	for i, e := range t.Edges {
		ne := &Edge{Index: e.Index, Length: e.Length,
			N: [2]*Node{c.Nodes[e.N[0].Index], c.Nodes[e.N[1].Index]}}
		c.Edges[i] = ne
		ne.N[0].Adj = append(ne.N[0].Adj, ne)
		ne.N[1].Adj = append(ne.N[1].Adj, ne)
	}
	return c
}

// NewPair builds the two-tip tree (a single branch).
func NewPair(nameA, nameB string, length float64) *Tree {
	t := &Tree{NumTips: 2}
	a := t.addNode(nameA)
	b := t.addNode(nameB)
	t.addEdge(a, b, length)
	return t
}

// NewTriplet builds the smallest unrooted binary tree with an inner node:
// three tips joined at one central node.
func NewTriplet(names [3]string, lengths [3]float64) *Tree {
	t := &Tree{NumTips: 3}
	tips := [3]*Node{}
	for i, name := range names {
		tips[i] = t.addNode(name)
	}
	center := t.addNode("")
	for i := range tips {
		t.addEdge(tips[i], center, lengths[i])
	}
	return t
}

// GraftTip splits edge e and attaches a new tip via a fresh inner node.
// The split preserves total path length through e; the new pendant
// branch gets pendantLen. Used for stepwise-addition tree construction.
//
// Node indexing: the new tip must keep tips-first ordering, so the new
// tip takes index NumTips and existing inner nodes shift up by one.
func (t *Tree) GraftTip(name string, e *Edge, pendantLen float64) *Node {
	// Shift inner node indices up to open a slot at NumTips.
	t.Nodes = append(t.Nodes, nil)
	copy(t.Nodes[t.NumTips+1:], t.Nodes[t.NumTips:])
	tip := &Node{Index: t.NumTips, Name: name}
	t.Nodes[t.NumTips] = tip
	t.NumTips++
	for _, n := range t.Nodes[t.NumTips:] {
		n.Index++
	}

	inner := t.addNode("")
	a, b := e.N[0], e.N[1]
	half := e.Length / 2
	if half < MinBranchLength {
		half = MinBranchLength
	}
	// e becomes {a, inner}; add {inner, b} and {inner, tip}.
	t.detach(e)
	t.attach(e, a, inner, half)
	t.addEdge(inner, b, half)
	t.addEdge(inner, tip, pendantLen)
	return tip
}
