package tree

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomTree(t *testing.T, n int, seed int64) *Tree {
	t.Helper()
	names := make([]string, n)
	for i := range names {
		names[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
	}
	tr, err := RandomTopology(names, rand.New(rand.NewSource(seed)), 0.02, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// checkPlan verifies post-order validity: every step's non-tip inputs
// must have been computed (in the correct orientation) by an earlier
// step or be valid in the starting orientation.
func checkPlan(t *testing.T, tr *Tree, steps []Step, orient Orientation) {
	t.Helper()
	valid := make(Orientation, len(tr.Nodes))
	copy(valid, orient)
	seen := map[int]bool{}
	for i, s := range steps {
		if s.Node.IsTip() {
			t.Fatalf("step %d computes a tip", i)
		}
		if seen[s.Node.Index] {
			t.Fatalf("step %d recomputes node %d within one plan", i, s.Node.Index)
		}
		seen[s.Node.Index] = true
		for _, in := range []struct {
			n *Node
			e *Edge
		}{{s.Left, s.LeftEdge}, {s.Right, s.RightEdge}} {
			if in.e.Other(s.Node) != in.n {
				t.Fatalf("step %d: edge does not connect node to child", i)
			}
			if !in.n.IsTip() && valid[in.n.Index] != s.Node {
				t.Fatalf("step %d: input vector %d not valid toward %d", i, in.n.Index, s.Node.Index)
			}
		}
		if s.Toward == nil || s.Node.EdgeTo(s.Toward) == nil {
			t.Fatalf("step %d: Toward is not a neighbor", i)
		}
		valid[s.Node.Index] = s.Toward
	}
}

func TestFullTraversalCoversAllInnerNodes(t *testing.T) {
	for _, n := range []int{3, 4, 7, 20, 101} {
		tr := randomTree(t, n, int64(n))
		e := tr.Edges[0]
		steps := FullTraversal(tr, e)
		if len(steps) != tr.NumInner() {
			t.Fatalf("n=%d: %d steps, want %d", n, len(steps), tr.NumInner())
		}
		checkPlan(t, tr, steps, NewOrientation(len(tr.Nodes)))
		// Both endpoints of e must end up valid toward each other.
		orient := NewOrientation(len(tr.Nodes))
		ApplyOrientation(orient, steps)
		for k := 0; k < 2; k++ {
			end, other := e.N[k], e.N[1-k]
			if !end.IsTip() && orient[end.Index] != other {
				t.Fatalf("endpoint %d not oriented toward partner", end.Index)
			}
		}
	}
}

func TestFullTraversalTwoTips(t *testing.T) {
	tr := NewPair("a", "b", 0.2)
	if steps := FullTraversal(tr, tr.Edges[0]); len(steps) != 0 {
		t.Error("two-tip traversal must be empty")
	}
}

func TestEdgeTraversalUsesValidVectors(t *testing.T) {
	tr := randomTree(t, 20, 9)
	e := tr.Edges[0]
	orient := NewOrientation(len(tr.Nodes))
	full := FullTraversal(tr, e)
	ApplyOrientation(orient, full)
	// Re-requesting the same edge needs no work.
	if again := EdgeTraversal(tr, e, orient); len(again) != 0 {
		t.Fatalf("redundant traversal emitted %d steps", len(again))
	}
	// A different edge needs only the nodes on the path between the two
	// virtual roots (orientation flips along the path).
	other := tr.Edges[len(tr.Edges)-1]
	steps := EdgeTraversal(tr, other, orient)
	if len(steps) == 0 && other != e {
		// Possible only if other shares both endpoints with e; not the
		// case for distinct edges of a binary tree.
		t.Fatal("expected some recompute work for a different edge")
	}
	if len(steps) >= tr.NumInner() {
		t.Fatalf("partial traversal (%d) should be cheaper than full (%d)", len(steps), tr.NumInner())
	}
	checkPlan(t, tr, steps, orient)
}

func TestEdgeTraversalPropertyAllEdges(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw)%30
		names := make([]string, n)
		for i := range names {
			names[i] = "q" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		tr, err := RandomTopology(names, rand.New(rand.NewSource(seed)), 0.02, 0.4)
		if err != nil {
			return false
		}
		orient := NewOrientation(len(tr.Nodes))
		// Walk all edges in order; each plan must validate and leave the
		// requested edge evaluable.
		for _, e := range tr.Edges {
			steps := EdgeTraversal(tr, e, orient)
			// Validate dependencies by simulation.
			valid := make(Orientation, len(tr.Nodes))
			copy(valid, orient)
			for _, s := range steps {
				for _, in := range []*Node{s.Left, s.Right} {
					if !in.IsTip() && valid[in.Index] != s.Node {
						return false
					}
				}
				valid[s.Node.Index] = s.Toward
			}
			ApplyOrientation(orient, steps)
			for k := 0; k < 2; k++ {
				end, otherEnd := e.N[k], e.N[1-k]
				if !end.IsTip() && orient[end.Index] != otherEnd {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestNodeDistances(t *testing.T) {
	// (a,b,(c,d)): center x, inner y. Distances from a: x=1, b=2, y=2, c=3, d=3.
	tr, err := ParseNewick("(a:1,b:1,(c:1,d:1):1);")
	if err != nil {
		t.Fatal(err)
	}
	a := tr.TipByName("a")
	d := NodeDistances(tr, a)
	if d[a.Index] != 0 {
		t.Error("distance to self must be 0")
	}
	b := tr.TipByName("b")
	c := tr.TipByName("c")
	if d[b.Index] != 2 || d[c.Index] != 3 {
		t.Errorf("distances: b=%d (want 2), c=%d (want 3)", d[b.Index], d[c.Index])
	}
	if PathLength(tr, a, c) != 3 || PathLength(tr, c, a) != 3 {
		t.Error("PathLength must be symmetric")
	}
}

func TestNodeDistancesCoverAllNodes(t *testing.T) {
	tr := randomTree(t, 25, 13)
	d := NodeDistances(tr, tr.Nodes[0])
	for i, x := range d {
		if x < 0 {
			t.Fatalf("node %d unreachable", i)
		}
	}
}

func TestOrientationInvalidate(t *testing.T) {
	o := NewOrientation(5)
	o[2] = &Node{}
	o.Invalidate()
	for _, x := range o {
		if x != nil {
			t.Fatal("Invalidate left valid entries")
		}
	}
}
