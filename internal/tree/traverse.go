package tree

// Step is one Felsenstein-pruning operation: compute the ancestral
// vector at Node (oriented toward the traversal root) by combining the
// vectors of Left and Right across LeftEdge and RightEdge.
type Step struct {
	// Node is the inner node whose vector this step (re)computes.
	Node *Node
	// Toward is the neighbor of Node on the path to the traversal root;
	// the computed vector is valid "pointing toward" this node.
	Toward *Node
	// Left and Right are the two children feeding the computation.
	Left, Right *Node
	// LeftEdge and RightEdge connect Node to Left and Right.
	LeftEdge, RightEdge *Edge
}

// Orientation records, per inner node, which neighbor its ancestral
// vector currently points toward (nil = vector invalid/never computed).
// The likelihood engine owns one Orientation per tree and the traversal
// planner consults it to emit minimal partial traversals, exactly like
// RAxML's per-node x-pointer.
type Orientation []*Node

// NewOrientation returns an all-invalid orientation for a tree with the
// given total node count.
func NewOrientation(numNodes int) Orientation {
	return make(Orientation, numNodes)
}

// Invalidate marks every inner node's vector invalid.
func (o Orientation) Invalidate() {
	for i := range o {
		o[i] = nil
	}
}

// FullTraversal returns the post-order plan that recomputes every inner
// node's vector, oriented toward the virtual root placed on edge e
// (both endpoint vectors end up pointing at each other, ready for
// evaluation at e). The plan visits children before parents, so
// executing steps in order satisfies all data dependencies. For two-tip
// trees the plan is empty. A full traversal is exactly an EdgeTraversal
// under an all-invalid orientation.
func FullTraversal(t *Tree, e *Edge) []Step {
	return EdgeTraversal(t, e, NewOrientation(len(t.Nodes)))
}

// EdgeTraversal returns the minimal plan that makes the vectors at both
// endpoints of e valid and oriented toward each other, as required to
// evaluate the likelihood at e. Already-valid vectors (per orient) are
// not recomputed: this is the partial-traversal machinery that gives
// PLF programs their access locality. Executing the returned steps and
// then calling ApplyOrientation(orient, steps) brings orient up to date.
func EdgeTraversal(t *Tree, e *Edge, orient Orientation) []Step {
	var steps []Step
	var need func(n, toward *Node)
	need = func(n, toward *Node) {
		if n.IsTip() {
			return
		}
		if orient[n.Index] == toward {
			return // already valid in this direction
		}
		var children [2]*Node
		var edges [2]*Edge
		k := 0
		for _, adj := range n.Adj {
			o := adj.Other(n)
			if o == toward {
				continue
			}
			children[k] = o
			edges[k] = adj
			k++
		}
		need(children[0], n)
		need(children[1], n)
		steps = append(steps, Step{
			Node: n, Toward: toward,
			Left: children[0], Right: children[1],
			LeftEdge: edges[0], RightEdge: edges[1],
		})
	}
	need(e.N[0], e.N[1])
	need(e.N[1], e.N[0])
	return steps
}

// ApplyOrientation records the orientations produced by executing steps.
func ApplyOrientation(orient Orientation, steps []Step) {
	for i := range steps {
		orient[steps[i].Node.Index] = steps[i].Toward
	}
}

// NodeDistances returns, for every node, the number of nodes on the
// path from start to it (excluding start itself; adjacent nodes have
// distance 1). This is the distance the paper's Topological replacement
// strategy maximises when picking an eviction victim.
func NodeDistances(t *Tree, start *Node) []int {
	dist := make([]int, len(t.Nodes))
	for i := range dist {
		dist[i] = -1
	}
	dist[start.Index] = 0
	queue := []*Node{start}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, e := range cur.Adj {
			o := e.Other(cur)
			if dist[o.Index] < 0 {
				dist[o.Index] = dist[cur.Index] + 1
				queue = append(queue, o)
			}
		}
	}
	return dist
}

// PathLength returns the number of nodes along the unique path between
// a and b (the paper's node distance), or -1 if either is unreachable.
func PathLength(t *Tree, a, b *Node) int {
	return NodeDistances(t, a)[b.Index]
}
