package tree

import (
	"math"
	"testing"
)

// FuzzParseNewick hardens the parser against arbitrary input: it must
// never panic, and any tree it accepts must satisfy the structural
// invariants and survive a write/parse round trip.
func FuzzParseNewick(f *testing.F) {
	seeds := []string{
		"(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);",
		"((a:0.1,b:0.2):0.05,(c:0.3,d:0.4):0.05);",
		"(a,b,(c,d));",
		"(a:1,b:1);",
		"('quoted name':1,b:2,c:3);",
		"(a:1e-3,b:2E4,(c:0.5,d:-1):+0.25);",
		"(((((x:1,y:1):1,z:1):1,w:1):1,v:1,u:1);",
		"",
		"();",
		"(a",
		"a;",
		"(a,b,c,d,e);",
		"(a:0.1)(b:0.2);",
		"(a:,b:1,c:1);",
		"(🌲:1,b:1,c:1);",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ParseNewick(input)
		if err != nil {
			return // rejection is fine; panics are not
		}
		if err := tr.Check(); err != nil {
			t.Fatalf("accepted invalid tree from %q: %v", input, err)
		}
		// Round trip: what we print must re-parse to the same topology.
		back, err := ParseNewick(WriteNewick(tr))
		if err != nil {
			t.Fatalf("own output does not re-parse: %v\ninput: %q\noutput: %q",
				err, input, WriteNewick(tr))
		}
		if RFDistance(tr, back) != 0 {
			t.Fatalf("round trip changed topology for %q", input)
		}
		if math.Abs(tr.TotalLength()-back.TotalLength()) > 1e-6*(1+tr.TotalLength()) {
			t.Fatalf("round trip changed total length for %q", input)
		}
	})
}
