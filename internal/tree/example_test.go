package tree_test

import (
	"fmt"

	"oocphylo/internal/tree"
)

func ExampleParseNewick() {
	t, err := tree.ParseNewick("(human:0.1,chimp:0.12,(mouse:0.4,rat:0.38):0.2);")
	if err != nil {
		panic(err)
	}
	fmt.Println("tips:", t.NumTips)
	fmt.Println("inner nodes:", t.NumInner())
	fmt.Println("branches:", len(t.Edges))
	fmt.Printf("total length: %.2f\n", t.TotalLength())
	// Output:
	// tips: 4
	// inner nodes: 2
	// branches: 5
	// total length: 1.20
}

func ExampleRFDistance() {
	a, _ := tree.ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	b, _ := tree.ParseNewick("((a:1,c:1):1,(b:1,d:1):1);")
	fmt.Println("RF(a, a):", tree.RFDistance(a, a))
	fmt.Println("RF(a, b):", tree.RFDistance(a, b))
	// Output:
	// RF(a, a): 0
	// RF(a, b): 2
}

func ExampleFullTraversal() {
	t, _ := tree.ParseNewick("(a:1,b:1,(c:1,d:1):1);")
	steps := tree.FullTraversal(t, t.Edges[0])
	fmt.Println("Felsenstein steps for a full traversal:", len(steps))
	// One step per inner node; children always precede parents.
	// Output:
	// Felsenstein steps for a full traversal: 2
}

func ExamplePruneSubtree() {
	t, _ := tree.ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	// Prune the (a,b) cherry at its junction and regraft it elsewhere.
	var junction *tree.Node
	for _, n := range t.InnerNodes() {
		if n.EdgeTo(t.TipByName("a")) != nil {
			junction = n
		}
	}
	p, err := tree.PruneSubtree(t, junction, t.TipByName("a"))
	if err != nil {
		panic(err)
	}
	candidates := tree.EdgesWithinRadius(t, p.MergedEdge(), 2)
	fmt.Println("regraft candidates:", len(candidates))
	if err := p.Restore(); err != nil {
		panic(err)
	}
	fmt.Println("valid after restore:", t.Check() == nil)
	// Output:
	// regraft candidates: 3
	// valid after restore: true
}
