package tree

import (
	"fmt"
	"math/rand"
)

// RandomTopology builds an unrooted binary tree over the given taxon
// names by stepwise random addition: each successive tip is grafted
// onto a uniformly random existing branch. Branch lengths are drawn
// uniformly from [minLen, maxLen]. Given the same rng state the result
// is deterministic.
func RandomTopology(names []string, rng *rand.Rand, minLen, maxLen float64) (*Tree, error) {
	if len(names) < 2 {
		return nil, fmt.Errorf("tree: need at least 2 taxa, got %d", len(names))
	}
	if minLen <= 0 || maxLen < minLen {
		return nil, fmt.Errorf("tree: invalid branch length range [%v, %v]", minLen, maxLen)
	}
	draw := func() float64 { return minLen + rng.Float64()*(maxLen-minLen) }
	if len(names) == 2 {
		return NewPair(names[0], names[1], draw()), nil
	}
	t := NewTriplet([3]string{names[0], names[1], names[2]},
		[3]float64{draw(), draw(), draw()})
	for _, name := range names[3:] {
		e := t.Edges[rng.Intn(len(t.Edges))]
		t.GraftTip(name, e, draw())
	}
	// Randomise all branch lengths (GraftTip halves split branches).
	for _, e := range t.Edges {
		e.Length = draw()
	}
	return t, nil
}

// YuleTree generates a random tree under a pure-birth (Yule) process
// with the given birth rate: starting from two lineages, a uniformly
// chosen extant lineage splits after an exponential waiting time. The
// resulting rooted ultrametric tree is unrooted for use with the
// (time-reversible) likelihood models. Tip names are "t1".."tn" unless
// names is non-nil, in which case len(names) determines n.
func YuleTree(n int, birthRate float64, rng *rand.Rand, names []string) (*Tree, error) {
	if names != nil {
		n = len(names)
	}
	if n < 2 {
		return nil, fmt.Errorf("tree: Yule tree needs at least 2 taxa, got %d", n)
	}
	if birthRate <= 0 {
		return nil, fmt.Errorf("tree: birth rate must be positive, got %v", birthRate)
	}
	name := func(i int) string {
		if names != nil {
			return names[i]
		}
		return fmt.Sprintf("t%d", i+1)
	}
	// Simulate the rooted process on a scratch structure: each extant
	// lineage accumulates pendant length between events; on splitting,
	// the accumulated pendant becomes the internal branch above it.
	root := &scratchNode{}
	left, right := &scratchNode{parent: root}, &scratchNode{parent: root}
	root.children = [2]*scratchNode{left, right}
	extant := []*scratchNode{left, right}
	for len(extant) < n {
		// Exponential waiting time with rate birthRate * k.
		k := float64(len(extant))
		dt := rng.ExpFloat64() / (birthRate * k)
		for _, l := range extant {
			l.pendant += dt
		}
		i := rng.Intn(len(extant))
		parent := extant[i]
		c0, c1 := &scratchNode{parent: parent}, &scratchNode{parent: parent}
		parent.children = [2]*scratchNode{c0, c1}
		extant[i] = c0
		extant = append(extant, c1)
	}
	// Final stretch so tips are contemporaneous at a positive height.
	dt := rng.ExpFloat64() / (birthRate * float64(len(extant)))
	for _, l := range extant {
		l.pendant += dt
		if l.pendant < MinBranchLength {
			l.pendant = MinBranchLength
		}
	}
	for i, l := range extant {
		l.name = name(i)
	}
	newick := scratchNewick(root) + ";"
	return ParseNewick(newick)
}

type scratchNode struct {
	parent   *scratchNode
	children [2]*scratchNode
	pendant  float64
	name     string
}

func scratchNewick(n *scratchNode) string {
	if n.children[0] == nil {
		return fmt.Sprintf("%s:%g", n.name, n.pendant)
	}
	inner := "(" + scratchNewick(n.children[0]) + "," + scratchNewick(n.children[1]) + ")"
	if n.parent == nil {
		return inner
	}
	return fmt.Sprintf("%s:%g", inner, n.pendant)
}
