package tree

import "sort"

// Canonicalize rewrites the tree's internal representation — the
// adjacency-list order of every node and the endpoint-slot order of
// every edge — into the unique form determined by topology and tip
// names alone. Two structurally equal trees, however they were built
// (parsed from Newick, mutated in place by SPR surgeries, cloned),
// leave Canonicalize with bit-identical internal layouts.
//
// This matters because parts of the likelihood machinery are
// representation-sensitive in floating point even though they are
// value-equivalent in real arithmetic: evaluation applies the P matrix
// across an edge onto the N[1] side, and surgery helpers pick merged/
// spare edges by adjacency position. A checkpoint-resumed search
// re-parses its tree and would otherwise walk a representation that
// differs from the uninterrupted run's in exactly these hidden ways,
// breaking bit-identical resume. Search drivers call Canonicalize at
// round boundaries so both runs re-converge to the same layout.
//
// The canonical form: every edge stores the endpoint nearer the
// anchor (the lexicographically smallest tip) in N[0]; every node
// lists the edge toward the anchor first, then subtree edges ordered
// by their smallest contained tip name. Topology, branch lengths,
// node identities and indices are untouched, so engine caches keyed
// by node or edge index stay valid.
func Canonicalize(t *Tree) {
	if t.NumTips == 0 {
		return
	}
	anchor := t.Nodes[0]
	for i := 1; i < t.NumTips; i++ {
		if t.Nodes[i].Name < anchor.Name {
			anchor = t.Nodes[i]
		}
	}
	var walk func(n, from *Node)
	walk = func(n, from *Node) {
		sort.SliceStable(n.Adj, func(i, j int) bool {
			oi, oj := n.Adj[i].Other(n), n.Adj[j].Other(n)
			if oi == from {
				return true
			}
			if oj == from {
				return false
			}
			return minTipToward(oi, n, t.NumTips) < minTipToward(oj, n, t.NumTips)
		})
		for _, e := range n.Adj {
			o := e.Other(n)
			if o == from {
				continue
			}
			if e.N[0] != n {
				e.N[0], e.N[1] = e.N[1], e.N[0]
			}
			walk(o, n)
		}
	}
	walk(anchor, nil)
}

// minTipToward returns the lexicographically smallest tip name in the
// subtree containing n when the edge toward from is cut.
func minTipToward(n, from *Node, numTips int) string {
	if n.Index < numTips {
		return n.Name
	}
	best := ""
	for _, e := range n.Adj {
		o := e.Other(n)
		if o == from {
			continue
		}
		if m := minTipToward(o, n, numTips); best == "" || m < best {
			best = m
		}
	}
	return best
}
