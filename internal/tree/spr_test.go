package tree

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPruneRegraftRestore(t *testing.T) {
	tr := randomTree(t, 12, 21)
	ref := tr.Clone()
	origLen := tr.TotalLength()

	u := tr.InnerNodes()[2]
	v := u.Neighbor(0)
	p, err := PruneSubtree(tr, u, v)
	if err != nil {
		t.Fatal(err)
	}
	// The pruned state is not a valid full tree (u has degree 1), but the
	// merged edge must join the former neighbors.
	m := p.MergedEdge()
	if m.Other(p.a) != p.b {
		t.Fatal("merged edge endpoints wrong")
	}
	if math.Abs(m.Length-(p.la+p.lb)) > 1e-12 {
		t.Fatal("merged length must be the sum of the removed branches")
	}

	// Regraft somewhere in the remaining component.
	candidates := EdgesWithinRadius(tr, m, 3)
	var target *Edge
	for _, e := range candidates {
		if e != m {
			target = e
			break
		}
	}
	if target == nil {
		t.Skip("no non-trivial candidate at this size")
	}
	if err := p.Regraft(target); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("tree invalid after regraft: %v", err)
	}
	if err := p.Ungraft(); err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("tree invalid after restore: %v", err)
	}
	if RFDistance(tr, ref) != 0 {
		t.Error("restore did not reproduce the original topology")
	}
	if math.Abs(tr.TotalLength()-origLen) > 1e-9 {
		t.Error("branch lengths drifted through prune/restore")
	}
}

func TestRestoreWithActiveGraft(t *testing.T) {
	tr := randomTree(t, 10, 4)
	ref := tr.Clone()
	u := tr.InnerNodes()[1]
	p, err := PruneSubtree(tr, u, u.Neighbor(1))
	if err != nil {
		t.Fatal(err)
	}
	cands := EdgesWithinRadius(tr, p.MergedEdge(), 2)
	for _, e := range cands {
		if e != p.MergedEdge() {
			if err := p.Regraft(e); err != nil {
				t.Fatal(err)
			}
			break
		}
	}
	if err := p.Restore(); err != nil { // must auto-ungraft
		t.Fatal(err)
	}
	if RFDistance(tr, ref) != 0 {
		t.Error("Restore with active graft did not reproduce original")
	}
}

func TestPruneErrors(t *testing.T) {
	tr := randomTree(t, 8, 2)
	tip := tr.Tip(0)
	if _, err := PruneSubtree(tr, tip, tip.Neighbor(0)); err == nil {
		t.Error("pruning at a tip junction must fail")
	}
	u := tr.InnerNodes()[0]
	if _, err := PruneSubtree(tr, u, tr.Tip(0)); err == nil && u.EdgeTo(tr.Tip(0)) == nil {
		t.Error("non-adjacent prune must fail")
	}
	far := &Node{Index: 999}
	if _, err := PruneSubtree(tr, u, far); err == nil {
		t.Error("non-adjacent prune must fail")
	}
}

func TestRegraftGuards(t *testing.T) {
	tr := randomTree(t, 10, 6)
	u := tr.InnerNodes()[0]
	p, err := PruneSubtree(tr, u, u.Neighbor(0))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Regraft(p.spare); err == nil {
		t.Error("regrafting onto the spare must fail")
	}
	if err := p.Ungraft(); err == nil {
		t.Error("Ungraft without graft must fail")
	}
	m := p.MergedEdge()
	if err := p.Regraft(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Regraft(m); err == nil {
		t.Error("double regraft must fail")
	}
	if err := p.Ungraft(); err != nil {
		t.Fatal(err)
	}
	if err := p.Restore(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestSPRMoveProducesDifferentTopology(t *testing.T) {
	tr := randomTree(t, 15, 33)
	ref := tr.Clone()
	moved := false
	for _, u := range tr.InnerNodes() {
		for side := 0; side < 3; side++ {
			p, err := PruneSubtree(tr, u, u.Neighbor(side))
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range EdgesWithinRadius(tr, p.MergedEdge(), 10) {
				if e == p.MergedEdge() {
					continue
				}
				if err := p.Regraft(e); err != nil {
					t.Fatal(err)
				}
				if err := tr.Check(); err != nil {
					t.Fatalf("invalid after regraft: %v", err)
				}
				if RFDistance(tr, ref) > 0 {
					moved = true
				}
				if err := p.Ungraft(); err != nil {
					t.Fatal(err)
				}
			}
			if err := p.Restore(); err != nil {
				t.Fatal(err)
			}
			if RFDistance(tr, ref) != 0 {
				t.Fatal("restore lost the original topology")
			}
		}
	}
	if !moved {
		t.Error("no candidate regraft changed the topology")
	}
}

func TestPruneRegraftRandomisedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(25)
		names := make([]string, n)
		for i := range names {
			names[i] = "p" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		tr, err := RandomTopology(names, rng, 0.02, 0.4)
		if err != nil {
			return false
		}
		ref := tr.Clone()
		origLen := tr.TotalLength()
		for trial := 0; trial < 8; trial++ {
			inner := tr.InnerNodes()[rng.Intn(tr.NumInner())]
			p, err := PruneSubtree(tr, inner, inner.Neighbor(rng.Intn(3)))
			if err != nil {
				return false
			}
			cands := EdgesWithinRadius(tr, p.MergedEdge(), 1+rng.Intn(5))
			for _, e := range cands {
				if e == p.MergedEdge() {
					continue
				}
				if err := p.Regraft(e); err != nil {
					return false
				}
				if tr.Check() != nil {
					return false
				}
				if err := p.Ungraft(); err != nil {
					return false
				}
			}
			if err := p.Restore(); err != nil {
				return false
			}
		}
		return RFDistance(tr, ref) == 0 &&
			math.Abs(tr.TotalLength()-origLen) < 1e-9 &&
			tr.Check() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEdgesWithinRadius(t *testing.T) {
	// Chain-like tree: ((((a,b),c),d),e,f) style.
	tr, err := ParseNewick("((((a:1,b:1):1,c:1):1,d:1):1,e:1,f:1);")
	if err != nil {
		t.Fatal(err)
	}
	start := tr.TipByName("a").Adj[0]
	all := EdgesWithinRadius(tr, start, 100)
	if len(all) != len(tr.Edges) {
		t.Fatalf("unbounded radius found %d of %d edges", len(all), len(tr.Edges))
	}
	near := EdgesWithinRadius(tr, start, 1)
	// start + the two other edges at a's inner neighbor.
	if len(near) != 3 {
		t.Errorf("radius-1 found %d edges, want 3", len(near))
	}
	zero := EdgesWithinRadius(tr, start, 0)
	if len(zero) != 1 || zero[0] != start {
		t.Error("radius-0 must return only the start edge")
	}
}

func TestNNI(t *testing.T) {
	tr, err := ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	if err != nil {
		t.Fatal(err)
	}
	e := firstInternalEdge(tr)
	ref := tr.Clone()
	undo, err := NNI(tr, e, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatalf("invalid after NNI: %v", err)
	}
	if RFDistance(tr, ref) != 2 {
		t.Errorf("NNI should change the single split, RF=%d", RFDistance(tr, ref))
	}
	undo()
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if RFDistance(tr, ref) != 0 {
		t.Error("NNI undo did not restore topology")
	}
}

func TestNNIErrors(t *testing.T) {
	tr, _ := ParseNewick("(a:1,b:1,c:1);")
	if _, err := NNI(tr, tr.Edges[0], 0, 0); err == nil {
		t.Error("NNI on a pendant edge must fail")
	}
	tr2, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	e := firstInternalEdge(tr2)
	if _, err := NNI(tr2, e, 5, 0); err == nil {
		t.Error("side out of range must fail")
	}
}
