package tree

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestParseNewickUnrooted(t *testing.T) {
	tr, err := ParseNewick("(a:0.1,b:0.2,(c:0.3,d:0.4):0.5);")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 4 || tr.NumInner() != 2 {
		t.Fatalf("dims tips=%d inner=%d", tr.NumTips, tr.NumInner())
	}
	c := tr.TipByName("c")
	if c == nil || c.Adj[0].Length != 0.3 {
		t.Error("branch length for c lost")
	}
}

func TestParseNewickRootedIsUnrooted(t *testing.T) {
	// Rooted 4-taxon tree: the root branches merge (0.05+0.05).
	tr, err := ParseNewick("((a:0.1,b:0.2):0.05,(c:0.3,d:0.4):0.05);")
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Check(); err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 4 || tr.NumInner() != 2 || len(tr.Edges) != 5 {
		t.Fatalf("dims tips=%d inner=%d edges=%d", tr.NumTips, tr.NumInner(), len(tr.Edges))
	}
	// The internal edge joins the two cherries with merged length 0.1.
	e := firstInternalEdge(tr)
	if e == nil || math.Abs(e.Length-0.1) > 1e-12 {
		t.Errorf("merged internal branch wrong: %+v", e)
	}
}

func TestParseNewickTwoTaxa(t *testing.T) {
	tr, err := ParseNewick("(a:0.1,b:0.3);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumTips != 2 || len(tr.Edges) != 1 {
		t.Fatal("two-taxon parse wrong")
	}
	if math.Abs(tr.Edges[0].Length-0.4) > 1e-12 {
		t.Errorf("merged length = %v, want 0.4", tr.Edges[0].Length)
	}
}

func TestParseNewickDefaultsAndClamps(t *testing.T) {
	tr, err := ParseNewick("(a,b,(c,d));")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Edges {
		if e.Length != DefaultBranchLength {
			t.Errorf("missing lengths should default, got %v", e.Length)
		}
	}
	tr2, err := ParseNewick("(a:0,b:1,c:1);")
	if err != nil {
		t.Fatal(err)
	}
	if tr2.TipByName("a").Adj[0].Length != MinBranchLength {
		t.Error("zero length should clamp to MinBranchLength")
	}
}

func TestParseNewickQuotedNames(t *testing.T) {
	tr, err := ParseNewick("('taxon one':0.1,b:0.2,c:0.3);")
	if err != nil {
		t.Fatal(err)
	}
	if tr.TipByName("taxon one") == nil {
		t.Error("quoted name lost")
	}
}

func TestParseNewickErrors(t *testing.T) {
	cases := []string{
		"",                      // empty (tip without name)
		"(a:0.1,b:0.2",          // unclosed
		"(a,b,c,d);",            // multifurcation at root
		"((a,b,c),d,e);",        // inner multifurcation
		"(a,b,(c,d)))extra;",    // trailing garbage
		"(a:x,b:0.1,c:0.1);",    // bad number
		"(:0.1,b:0.2,c:0.3);",   // unnamed tip
		"(a:0.1;b:0.2,c:0.3);",  // stray semicolon
		"((a,b):0.1,(c,d):0.2)", // unrooted OK... rooted 4-taxon is fine, so not an error
	}
	for _, in := range cases[:8] {
		if _, err := ParseNewick(in); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestNewickRoundTripPreservesTopologyAndLengths(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		n := 4 + rng.Intn(30)
		names := make([]string, n)
		for i := range names {
			names[i] = "tip" + strings.Repeat("x", i%3) + string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		orig, err := RandomTopology(names, rng, 0.01, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		back, err := ParseNewick(WriteNewick(orig))
		if err != nil {
			t.Fatalf("round trip parse: %v\n%s", err, WriteNewick(orig))
		}
		if err := back.Check(); err != nil {
			t.Fatal(err)
		}
		if RFDistance(orig, back) != 0 {
			t.Fatalf("topology changed in round trip (trial %d)", trial)
		}
		if math.Abs(orig.TotalLength()-back.TotalLength()) > 1e-9 {
			t.Fatalf("total length drifted: %v -> %v", orig.TotalLength(), back.TotalLength())
		}
	}
}

func TestWriteNewickQuotesAwkwardNames(t *testing.T) {
	tr := NewTriplet([3]string{"has space", "b", "c"}, [3]float64{0.1, 0.1, 0.1})
	s := WriteNewick(tr)
	if !strings.Contains(s, "'has space'") {
		t.Errorf("awkward name not quoted: %s", s)
	}
	back, err := ParseNewick(s)
	if err != nil {
		t.Fatal(err)
	}
	if back.TipByName("has space") == nil {
		t.Error("quoted name lost in round trip")
	}
}

func TestBipartitionsAndRFDistance(t *testing.T) {
	a, _ := ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	b, _ := ParseNewick("((a:1,c:1):1,(b:1,d:1):1);")
	c, _ := ParseNewick("(a:2,b:2,(c:2,d:2):2);")
	if RFDistance(a, a) != 0 {
		t.Error("self distance must be 0")
	}
	if RFDistance(a, b) != 2 {
		t.Errorf("RF(a,b) = %d, want 2", RFDistance(a, b))
	}
	// c has the same single split as a (ab|cd).
	if RFDistance(a, c) != 0 {
		t.Errorf("RF(a,c) = %d, want 0", RFDistance(a, c))
	}
	if len(Bipartitions(a)) != 1 {
		t.Errorf("4-taxon tree has 1 non-trivial split, got %d", len(Bipartitions(a)))
	}
}
