// Package modelsel ranks substitution models by information criteria
// (AIC, AICc, BIC), jModelTest-style: every candidate is fitted on a
// shared topology (branch lengths, Γ shape and free rate parameters
// optimised per candidate) and scored against the alignment. It is a
// natural consumer of the whole stack — engine, optimisers, NJ starting
// trees — and of the out-of-core machinery for alignments whose vectors
// exceed RAM.
package modelsel

import (
	"fmt"
	"math"
	"sort"

	"oocphylo/internal/bio"
	"oocphylo/internal/distance"
	"oocphylo/internal/mathx"
	"oocphylo/internal/model"
	"oocphylo/internal/plf"
	"oocphylo/internal/search"
	"oocphylo/internal/tree"
)

// Fit is one candidate's result.
type Fit struct {
	// Name is the model label ("HKY+G4", ...).
	Name string
	// LnL is the maximised log-likelihood.
	LnL float64
	// K is the number of free parameters (model + branch lengths).
	K int
	// AIC, AICc and BIC are the information criteria (lower is better).
	AIC, AICc, BIC float64
	// Alpha is the fitted Γ shape (NaN without rate heterogeneity).
	Alpha float64
}

// Options tunes the evaluation.
type Options struct {
	// Gamma adds a +G4 variant of every base model.
	Gamma bool
	// Invariant adds a +I variant of every base model (and +I+G4 when
	// combined with Gamma).
	Invariant bool
	// Topology fixes the evaluation tree; nil means an NJ tree is built
	// from the data.
	Topology *tree.Tree
	// SmoothPasses bounds branch optimisation per candidate (default 4).
	SmoothPasses int
}

// EvaluateDNA fits the standard nested DNA ladder — JC69, K80, HKY85,
// GTR (and their +G4 variants when opts.Gamma) — and returns the fits
// sorted by AIC.
func EvaluateDNA(pats *bio.Patterns, opts Options) ([]Fit, error) {
	if pats.Alphabet.States != 4 {
		return nil, fmt.Errorf("modelsel: DNA ladder needs 4-state data, got %d", pats.Alphabet.States)
	}
	if opts.SmoothPasses <= 0 {
		opts.SmoothPasses = 4
	}
	topo := opts.Topology
	if topo == nil {
		var err error
		topo, err = distance.NJTree(pats)
		if err != nil {
			return nil, fmt.Errorf("modelsel: building NJ topology: %w", err)
		}
	}
	freqs := pats.BaseFrequencies()

	type candidate struct {
		name       string
		make       func(warmKappa float64) (*model.Model, error)
		freeParams int // model parameters beyond branch lengths
		optKappa   bool
		optGTR     bool
	}
	// Order matters: the ladder is walked upward per Γ variant and each
	// fitted kappa warm-starts the next, richer model — the standard
	// trick for keeping nested likelihood ordering numerically true.
	cands := []candidate{
		{"JC69", func(float64) (*model.Model, error) { return model.NewJC(4) }, 0, false, false},
		{"K80", func(k float64) (*model.Model, error) { return model.NewK80(k) }, 1, true, false},
		{"HKY85", func(k float64) (*model.Model, error) { return model.NewHKY(freqs, k) }, 4, true, false},
		{"GTR", func(k float64) (*model.Model, error) {
			return model.NewGTR(freqs, []float64{1, k, 1, 1, k, 1}, 4)
		}, 8, false, true},
	}

	type variant struct{ gamma, inv bool }
	variants := []variant{{false, false}}
	if opts.Invariant {
		variants = append(variants, variant{false, true})
	}
	if opts.Gamma {
		variants = append(variants, variant{true, false})
		if opts.Invariant {
			variants = append(variants, variant{true, true})
		}
	}
	branchParams := len(topo.Edges)
	n := float64(pats.TotalSites())

	var fits []Fit
	for _, v := range variants {
		warmKappa := 2.0
		for _, c := range cands {
			m, err := c.make(warmKappa)
			if err != nil {
				return nil, err
			}
			name := c.name
			k := c.freeParams + branchParams
			if v.inv {
				if err := m.SetInvariant(0.2); err != nil {
					return nil, err
				}
				name += "+I"
				k++
			}
			if v.gamma {
				if err := m.SetGamma(1.0, 4); err != nil {
					return nil, err
				}
				name += "+G4"
				k++
			}
			lnl, alpha, err := fitOne(topo, pats, m, c.optKappa, c.optGTR, opts.SmoothPasses)
			if err != nil {
				return nil, fmt.Errorf("modelsel: fitting %s: %w", name, err)
			}
			if c.optKappa && len(m.Exch) == 6 && m.Exch[0] > 0 {
				warmKappa = m.Exch[1] / m.Exch[0]
			}
			kf := float64(k)
			fit := Fit{
				Name:  name,
				LnL:   lnl,
				K:     k,
				AIC:   2*kf - 2*lnl,
				BIC:   kf*math.Log(n) - 2*lnl,
				Alpha: alpha,
			}
			if n-kf-1 > 0 {
				fit.AICc = fit.AIC + 2*kf*(kf+1)/(n-kf-1)
			} else {
				fit.AICc = math.Inf(1)
			}
			fits = append(fits, fit)
		}
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].AIC < fits[j].AIC })
	return fits, nil
}

// fitOne optimises one candidate on a clone of the topology.
func fitOne(topo *tree.Tree, pats *bio.Patterns, m *model.Model, optKappa, optGTR bool, passes int) (float64, float64, error) {
	t := topo.Clone()
	prov := plf.NewInMemoryProvider(t.NumInner(), plf.VectorLength(m, pats.NumPatterns()))
	e, err := plf.New(t, pats, m, prov)
	if err != nil {
		return 0, 0, err
	}
	s := search.New(e, search.Options{SmoothPasses: passes})
	lnl, err := s.SmoothBranches(passes, 0.01)
	if err != nil {
		return 0, 0, err
	}
	alpha := math.NaN()
	// Alternate rate-parameter, Γ-shape and branch-length optimisation:
	// they interact (a kappa change shifts the optimal alpha and branch
	// lengths), and the nested-model invariant lnL(GTR) >= lnL(HKY) >=
	// lnL(K80) >= lnL(JC) — which the tests enforce — only emerges once
	// each candidate is near its joint optimum.
	hasInv := m.PInv > 0
	rounds := 1
	if optKappa || optGTR {
		rounds = 3
	} else if m.Cats() > 1 || hasInv {
		rounds = 2
	}
	for iter := 0; iter < rounds; iter++ {
		switch {
		case optKappa:
			// One-dimensional kappa optimisation via Brent over the
			// transition/transversion exchangeability.
			incumbent := append([]float64(nil), m.Exch...)
			neg := func(kappa float64) float64 {
				if err := m.SetExchangeabilities([]float64{1, kappa, 1, 1, kappa, 1}); err != nil {
					return math.Inf(1)
				}
				e.InvalidateAll()
				l, err := e.LogLikelihood()
				if err != nil {
					return math.Inf(1)
				}
				return -l
			}
			best, negLnl, err := mathx.Brent(neg, 0.05, 100, 1e-4, 60)
			if err != nil {
				return 0, 0, err
			}
			if -negLnl > lnl {
				lnl = -negLnl
				if err := m.SetExchangeabilities([]float64{1, best, 1, 1, best, 1}); err != nil {
					return 0, 0, err
				}
			} else {
				// Re-apply the incumbent (neg left the last probe set).
				if err := m.SetExchangeabilities(incumbent); err != nil {
					return 0, 0, err
				}
			}
			e.InvalidateAll()
			if lnl, err = e.LogLikelihood(); err != nil {
				return 0, 0, err
			}
		case optGTR:
			var err error
			_, lnl, err = s.OptimizeExchangeabilities(2, 0.05)
			if err != nil {
				return 0, 0, err
			}
		}
		if m.Cats() > 1 {
			var err error
			alpha, lnl, err = s.OptimizeAlpha()
			if err != nil {
				return 0, 0, err
			}
		}
		if hasInv {
			var err error
			if _, lnl, err = s.OptimizePInv(); err != nil {
				return 0, 0, err
			}
		}
		lnl2, err := s.SmoothBranches(2, 0.01)
		if err != nil {
			return 0, 0, err
		}
		if lnl2 > lnl {
			lnl = lnl2
		}
	}
	return lnl, alpha, nil
}

// Best returns the fit with the lowest value of the chosen criterion
// ("AIC", "AICc" or "BIC").
func Best(fits []Fit, criterion string) (Fit, error) {
	if len(fits) == 0 {
		return Fit{}, fmt.Errorf("modelsel: no fits")
	}
	val := func(f Fit) float64 {
		switch criterion {
		case "AIC":
			return f.AIC
		case "AICc":
			return f.AICc
		case "BIC":
			return f.BIC
		}
		return math.NaN()
	}
	if math.IsNaN(val(fits[0])) {
		return Fit{}, fmt.Errorf("modelsel: unknown criterion %q", criterion)
	}
	best := fits[0]
	for _, f := range fits[1:] {
		if val(f) < val(best) {
			best = f
		}
	}
	return best, nil
}
