package modelsel

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"oocphylo/internal/bio"
	"oocphylo/internal/model"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func TestEvaluateDNARanksGeneratingModelFamily(t *testing.T) {
	// Data simulated under HKY+G (kappa 4, skewed freqs, alpha 0.5):
	// models ignoring the transition bias or rate heterogeneity must
	// score worse; the HKY/GTR +G4 family should win.
	rng := rand.New(rand.NewSource(3))
	truth, err := tree.YuleTree(12, 1, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range truth.Edges {
		e.Length *= 0.1 / (truth.TotalLength() / float64(len(truth.Edges)))
		if e.Length < tree.MinBranchLength {
			e.Length = tree.MinBranchLength
		}
	}
	m, err := model.NewHKY([]float64{0.35, 0.15, 0.15, 0.35}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetGamma(0.5, 4); err != nil {
		t.Fatal(err)
	}
	aln, err := sim.Evolve(truth, m, 3000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		t.Fatal(err)
	}

	fits, err := EvaluateDNA(pats, Options{Gamma: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 8 {
		t.Fatalf("expected 8 fits (4 models x ±G), got %d", len(fits))
	}
	// Sorted by AIC ascending.
	for i := 1; i < len(fits); i++ {
		if fits[i].AIC < fits[i-1].AIC {
			t.Fatal("fits not sorted by AIC")
		}
	}
	winner := fits[0]
	if winner.Name != "HKY85+G4" && winner.Name != "GTR+G4" {
		t.Errorf("winner = %s, want HKY85+G4 or GTR+G4\nall: %+v", winner.Name, fits)
	}
	if math.IsNaN(winner.Alpha) || winner.Alpha < 0.3 || winner.Alpha > 0.9 {
		t.Errorf("winner alpha = %v, truth 0.5", winner.Alpha)
	}
	// JC without gamma must be the (or nearly the) worst fit.
	var jc Fit
	for _, f := range fits {
		if f.Name == "JC69" {
			jc = f
		}
	}
	if jc.AIC < winner.AIC+100 {
		t.Errorf("JC69 (%v) should be far worse than the winner (%v)", jc.AIC, winner.AIC)
	}
	// More parameters, higher lnL within the nested ladder (same ±G).
	lnlOf := func(name string) float64 {
		for _, f := range fits {
			if f.Name == name {
				return f.LnL
			}
		}
		t.Fatalf("fit %s missing", name)
		return 0
	}
	if !(lnlOf("GTR+G4") >= lnlOf("HKY85+G4")-0.5 &&
		lnlOf("HKY85+G4") >= lnlOf("K80+G4")-0.5 &&
		lnlOf("K80+G4") >= lnlOf("JC69+G4")-0.5) {
		t.Errorf("nested-model likelihood ordering violated: %+v", fits)
	}
}

func TestEvaluateDNAWithFixedTopology(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 8, Sites: 400, GammaAlpha: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fits, err := EvaluateDNA(d.Patterns, Options{Topology: d.Tree})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 4 {
		t.Fatalf("expected 4 fits without gamma variants, got %d", len(fits))
	}
	for _, f := range fits {
		if math.IsInf(f.LnL, 0) || math.IsNaN(f.LnL) {
			t.Errorf("%s: bad lnL %v", f.Name, f.LnL)
		}
		if f.BIC <= f.AIC {
			// BIC penalises harder whenever ln(n) > 2 (n >= 8 sites).
			t.Errorf("%s: BIC %v should exceed AIC %v", f.Name, f.BIC, f.AIC)
		}
	}
}

func TestEvaluateDNARejectsProtein(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 5, Sites: 30, Seed: 1, AA: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateDNA(d.Patterns, Options{}); err == nil {
		t.Error("protein data must be rejected by the DNA ladder")
	}
}

func TestBest(t *testing.T) {
	fits := []Fit{
		{Name: "a", AIC: 10, AICc: 30, BIC: 20},
		{Name: "b", AIC: 12, AICc: 13, BIC: 14},
	}
	for criterion, want := range map[string]string{"AIC": "a", "AICc": "b", "BIC": "b"} {
		got, err := Best(fits, criterion)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != want {
			t.Errorf("Best(%s) = %s, want %s", criterion, got.Name, want)
		}
	}
	if _, err := Best(fits, "DIC"); err == nil {
		t.Error("unknown criterion must fail")
	}
	if _, err := Best(nil, "AIC"); err == nil {
		t.Error("empty fits must fail")
	}
}

func TestEvaluateDNAInvariantVariants(t *testing.T) {
	// Data with a genuine invariant component: the +I (or +I+G4) family
	// must beat the corresponding base models.
	rng := rand.New(rand.NewSource(41))
	truth, err := tree.YuleTree(10, 1, rng, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range truth.Edges {
		e.Length *= 0.2 / (truth.TotalLength() / float64(len(truth.Edges)))
		if e.Length < tree.MinBranchLength {
			e.Length = tree.MinBranchLength
		}
	}
	m, err := model.NewHKY([]float64{0.25, 0.25, 0.25, 0.25}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetInvariant(0.5); err != nil {
		t.Fatal(err)
	}
	aln, err := sim.Evolve(truth, m, 2000, rng)
	if err != nil {
		t.Fatal(err)
	}
	pats, err := bio.Compress(aln)
	if err != nil {
		t.Fatal(err)
	}
	fits, err := EvaluateDNA(pats, Options{Invariant: true, Topology: truth})
	if err != nil {
		t.Fatal(err)
	}
	if len(fits) != 8 {
		t.Fatalf("expected 8 fits (4 models x ±I), got %d", len(fits))
	}
	lnlOf := func(name string) float64 {
		for _, f := range fits {
			if f.Name == name {
				return f.LnL
			}
		}
		t.Fatalf("fit %s missing", name)
		return 0
	}
	if lnlOf("HKY85+I") <= lnlOf("HKY85")+5 {
		t.Errorf("+I should clearly improve fit on invariant-rich data: %v vs %v",
			lnlOf("HKY85+I"), lnlOf("HKY85"))
	}
	// The winner must carry +I; with uniform simulated frequencies K80+I
	// legitimately beats HKY85+I on AIC (the frequency parameters buy
	// nothing).
	if !strings.HasSuffix(fits[0].Name, "+I") {
		t.Errorf("winner = %s, want an +I model\nall: %+v", fits[0].Name, fits)
	}
}
