// Package bootstrap implements Felsenstein's nonparametric bootstrap
// for phylogenies: site resampling on top of the pattern-compression
// machinery (a bootstrap replicate is just a new weight vector — no
// sequence data is copied), replicate inference through a pluggable
// search function, and bipartition support mapped onto a reference
// tree — the standard companion analysis of every PLF-based program,
// and a natural consumer of the out-of-core engine since each
// replicate repeats the full search workload.
package bootstrap

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"oocphylo/internal/bio"
	"oocphylo/internal/tree"
)

// Resample draws TotalSites() sites with replacement and returns a
// pattern set with the resampled weights. Patterns drawn zero times are
// dropped. Sampling is over sites (each original pattern is picked with
// probability weight/total), which is exactly the classical bootstrap.
func Resample(pats *bio.Patterns, rng *rand.Rand) *bio.Patterns {
	total := pats.TotalSites()
	// Cumulative weights for O(log n) site -> pattern lookup.
	cum := make([]int, pats.NumPatterns())
	acc := 0
	for i, w := range pats.Weights {
		acc += w
		cum[i] = acc
	}
	counts := make([]int, pats.NumPatterns())
	for s := 0; s < total; s++ {
		x := rng.Intn(total) + 1
		lo, hi := 0, len(cum)-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		counts[lo]++
	}
	out := &bio.Patterns{
		Alphabet: pats.Alphabet,
		Names:    append([]string(nil), pats.Names...),
		Columns:  make([][]bio.StateMask, pats.NumTaxa()),
	}
	for p, c := range counts {
		if c == 0 {
			continue
		}
		out.Weights = append(out.Weights, c)
		for row := range pats.Columns {
			if out.Columns[row] == nil {
				out.Columns[row] = make([]bio.StateMask, 0, pats.NumPatterns())
			}
			out.Columns[row] = append(out.Columns[row], pats.Columns[row][p])
		}
		_ = p
	}
	return out
}

// SearchFunc infers a tree for one bootstrap replicate.
type SearchFunc func(replicate int, pats *bio.Patterns) (*tree.Tree, error)

// Run performs `replicates` bootstrap inferences. Each replicate gets
// its own deterministic sub-seed, so runs are reproducible given seed.
func Run(pats *bio.Patterns, replicates int, seed int64, search SearchFunc) ([]*tree.Tree, error) {
	if replicates < 1 {
		return nil, fmt.Errorf("bootstrap: need at least 1 replicate, got %d", replicates)
	}
	if search == nil {
		return nil, fmt.Errorf("bootstrap: search function is required")
	}
	trees := make([]*tree.Tree, 0, replicates)
	for rep := 0; rep < replicates; rep++ {
		rng := rand.New(rand.NewSource(seed + int64(rep)*1_000_003))
		sample := Resample(pats, rng)
		t, err := search(rep, sample)
		if err != nil {
			return nil, fmt.Errorf("bootstrap: replicate %d: %w", rep, err)
		}
		trees = append(trees, t)
	}
	return trees, nil
}

// Support returns, for every internal edge of ref (keyed by edge
// index), the fraction of replicate trees containing the same
// bipartition. Replicates must cover the same taxon set.
func Support(ref *tree.Tree, replicates []*tree.Tree) (map[int]float64, error) {
	if len(replicates) == 0 {
		return nil, fmt.Errorf("bootstrap: no replicate trees")
	}
	want := strings.Join(ref.TipNames(), "\x00")
	counts := make(map[string]int)
	for i, r := range replicates {
		if strings.Join(r.TipNames(), "\x00") != want {
			return nil, fmt.Errorf("bootstrap: replicate %d has a different taxon set", i)
		}
		for split := range tree.Bipartitions(r) {
			counts[split]++
		}
	}
	// Key ref's own splits the same way Bipartitions does, but per edge.
	out := make(map[int]float64)
	refSplits := edgeBipartitions(ref)
	n := float64(len(replicates))
	for idx, split := range refSplits {
		out[idx] = float64(counts[split]) / n
	}
	return out, nil
}

// edgeBipartitions returns the canonical split key per internal edge
// index (mirrors tree.Bipartitions' canonicalisation).
func edgeBipartitions(t *tree.Tree) map[int]string {
	names := t.TipNames()
	rank := make(map[string]int, len(names))
	for i, n := range names {
		rank[n] = i
	}
	out := make(map[int]string)
	for _, e := range t.Edges {
		if e.N[0].IsTip() || e.N[1].IsTip() {
			continue
		}
		var side []int
		var walk func(n, from *tree.Node)
		walk = func(n, from *tree.Node) {
			if n.IsTip() {
				side = append(side, rank[n.Name])
				return
			}
			for _, adj := range n.Adj {
				if o := adj.Other(n); o != from {
					walk(o, n)
				}
			}
		}
		walk(e.N[0], e.N[1])
		sort.Ints(side)
		if len(side) > 0 && side[0] == 0 {
			in := make(map[int]bool, len(side))
			for _, r := range side {
				in[r] = true
			}
			other := make([]int, 0, len(names)-len(side))
			for r := range names {
				if !in[r] {
					other = append(other, r)
				}
			}
			side = other
		}
		out[e.Index] = fmt.Sprint(side)
	}
	return out
}

// ClusterSupport is one bipartition with its replicate frequency.
type ClusterSupport struct {
	// Split is the canonical bipartition key (see tree.Bipartitions).
	Split string
	// Frequency in [0, 1].
	Frequency float64
}

// MajorityClusters returns the bipartitions occurring in more than
// `threshold` (e.g. 0.5) of the replicates, most frequent first. By the
// majority-rule theorem these splits are mutually compatible for
// threshold >= 0.5.
func MajorityClusters(replicates []*tree.Tree, threshold float64) ([]ClusterSupport, error) {
	if len(replicates) == 0 {
		return nil, fmt.Errorf("bootstrap: no replicate trees")
	}
	counts := make(map[string]int)
	for _, r := range replicates {
		for split := range tree.Bipartitions(r) {
			counts[split]++
		}
	}
	n := float64(len(replicates))
	var out []ClusterSupport
	for split, c := range counts {
		if f := float64(c) / n; f > threshold {
			out = append(out, ClusterSupport{Split: split, Frequency: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Frequency != out[j].Frequency {
			return out[i].Frequency > out[j].Frequency
		}
		return out[i].Split < out[j].Split
	})
	return out, nil
}

// NewickWithSupport serialises ref with per-edge support values (in
// percent) as internal node labels, RAxML-style.
func NewickWithSupport(ref *tree.Tree, support map[int]float64) string {
	var b strings.Builder
	anchor := ref.Nodes[ref.NumTips]
	b.WriteByte('(')
	for i, e := range anchor.Adj {
		if i > 0 {
			b.WriteByte(',')
		}
		writeSupportSubtree(&b, e.Other(anchor), anchor, e, support)
	}
	b.WriteString(");")
	return b.String()
}

func writeSupportSubtree(b *strings.Builder, n, parent *tree.Node, via *tree.Edge, support map[int]float64) {
	if n.IsTip() {
		fmt.Fprintf(b, "%s:%g", n.Name, via.Length)
		return
	}
	b.WriteByte('(')
	first := true
	for _, e := range n.Adj {
		if e == via {
			continue
		}
		if !first {
			b.WriteByte(',')
		}
		first = false
		writeSupportSubtree(b, e.Other(n), n, e, support)
	}
	b.WriteByte(')')
	if s, ok := support[via.Index]; ok {
		fmt.Fprintf(b, "%d", int(s*100+0.5))
	}
	fmt.Fprintf(b, ":%g", via.Length)
}
