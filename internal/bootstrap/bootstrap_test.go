package bootstrap

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"oocphylo/internal/bio"
	"oocphylo/internal/distance"
	"oocphylo/internal/sim"
	"oocphylo/internal/tree"
)

func TestResamplePreservesTotalSites(t *testing.T) {
	f := func(seed int64) bool {
		d, err := sim.NewDataset(sim.Config{Taxa: 8, Sites: 120, Seed: seed})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
		r := Resample(d.Patterns, rng)
		if r.TotalSites() != d.Patterns.TotalSites() {
			return false
		}
		if r.NumTaxa() != d.Patterns.NumTaxa() {
			return false
		}
		// Every resampled pattern must exist in the original.
		orig := make(map[string]bool)
		key := func(p *bio.Patterns, col int) string {
			var sb strings.Builder
			for row := range p.Columns {
				sb.WriteByte(byte(p.Columns[row][col]))
				sb.WriteByte(byte(p.Columns[row][col] >> 8))
			}
			return sb.String()
		}
		for c := 0; c < d.Patterns.NumPatterns(); c++ {
			orig[key(d.Patterns, c)] = true
		}
		for c := 0; c < r.NumPatterns(); c++ {
			if !orig[key(r, c)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestResampleVaries(t *testing.T) {
	d, err := sim.NewDataset(sim.Config{Taxa: 6, Sites: 200, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	a := Resample(d.Patterns, rand.New(rand.NewSource(1)))
	b := Resample(d.Patterns, rand.New(rand.NewSource(2)))
	same := a.NumPatterns() == b.NumPatterns()
	if same {
		for i := range a.Weights {
			if a.Weights[i] != b.Weights[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds should give different resamples")
	}
	// Same seed: identical.
	c := Resample(d.Patterns, rand.New(rand.NewSource(1)))
	if a.NumPatterns() != c.NumPatterns() {
		t.Error("same seed must give identical resamples")
	}
}

func TestRunAndSupportOnCleanData(t *testing.T) {
	// Strong signal: every replicate should recover the same topology,
	// so all reference splits get 100% support.
	d, err := sim.NewDataset(sim.Config{Taxa: 10, Sites: 3000, GammaAlpha: 8, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	nj := func(rep int, pats *bio.Patterns) (*tree.Tree, error) {
		return distance.NJTree(pats)
	}
	trees, err := Run(d.Patterns, 10, 7, nj)
	if err != nil {
		t.Fatal(err)
	}
	if len(trees) != 10 {
		t.Fatalf("got %d trees", len(trees))
	}
	ref, err := distance.NJTree(d.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	sup, err := Support(ref, trees)
	if err != nil {
		t.Fatal(err)
	}
	if len(sup) != ref.NumTips-3 {
		t.Fatalf("support for %d edges, want %d internal edges", len(sup), ref.NumTips-3)
	}
	low := 0
	for _, s := range sup {
		if s < 0 || s > 1 {
			t.Fatalf("support %v out of range", s)
		}
		if s < 0.7 {
			low++
		}
	}
	if low > 2 {
		t.Errorf("clean data should give near-unanimous support; %d edges below 0.7: %v", low, sup)
	}
}

func TestSupportValidation(t *testing.T) {
	a, _ := tree.ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	b, _ := tree.ParseNewick("((a:1,b:1):1,(c:1,e:1):1);") // different taxa
	if _, err := Support(a, nil); err == nil {
		t.Error("no replicates must fail")
	}
	if _, err := Support(a, []*tree.Tree{b}); err == nil {
		t.Error("mismatched taxon sets must fail")
	}
	same, _ := tree.ParseNewick("((a:1,c:1):1,(b:1,d:1):1);")
	sup, err := Support(a, []*tree.Tree{a.Clone(), same})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range sup {
		if s != 0.5 {
			t.Errorf("split present in 1 of 2 replicates should read 0.5, got %v", s)
		}
	}
}

func TestRunValidation(t *testing.T) {
	d, _ := sim.NewDataset(sim.Config{Taxa: 5, Sites: 50, Seed: 1})
	if _, err := Run(d.Patterns, 0, 1, nil); err == nil {
		t.Error("zero replicates must fail")
	}
	if _, err := Run(d.Patterns, 1, 1, nil); err == nil {
		t.Error("nil search must fail")
	}
}

func TestMajorityClusters(t *testing.T) {
	a, _ := tree.ParseNewick("((a:1,b:1):1,(c:1,d:1):1);")
	b, _ := tree.ParseNewick("((a:1,c:1):1,(b:1,d:1):1);")
	trees := []*tree.Tree{a, a.Clone(), a.Clone(), b}
	cs, err := MajorityClusters(trees, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 {
		t.Fatalf("expected 1 majority split, got %d", len(cs))
	}
	if cs[0].Frequency != 0.75 {
		t.Errorf("frequency = %v, want 0.75", cs[0].Frequency)
	}
	if _, err := MajorityClusters(nil, 0.5); err == nil {
		t.Error("empty input must fail")
	}
}

func TestNewickWithSupportRoundTrips(t *testing.T) {
	ref, _ := tree.ParseNewick("((a:0.1,b:0.2):0.3,(c:0.4,d:0.5):0.6);")
	sup, err := Support(ref, []*tree.Tree{ref.Clone(), ref.Clone()})
	if err != nil {
		t.Fatal(err)
	}
	s := NewickWithSupport(ref, sup)
	if !strings.Contains(s, ")100:") {
		t.Errorf("expected a 100%% support label, got %s", s)
	}
	// The annotated string still parses (labels on inner nodes are legal).
	back, err := tree.ParseNewick(s)
	if err != nil {
		t.Fatalf("annotated newick does not parse: %v\n%s", err, s)
	}
	if tree.RFDistance(back, ref) != 0 {
		t.Error("annotation changed the topology")
	}
}
