package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) of a registry snapshot —
// the /debug/metrics payload. Every instrument in the registry is
// exported:
//
//   - counters as `<name>_total` (TYPE counter)
//   - gauges as `<name>` plus the high-water mark `<name>_max`
//   - float gauges as `<name>`
//   - histograms as cumulative `<name>_bucket{le="..."}` series plus
//     `<name>_sum` and `<name>_count` (TYPE histogram)
//   - the info map as a single `oocphylo_info` gauge with one label
//     per key
//
// Dotted registry names become underscore-separated metric names
// ("ooc.bytes_read" → "ooc_bytes_read_total").

// promName sanitizes a registry name into a valid Prometheus metric
// name: [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 1)
	for i, r := range name {
		valid := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && i > 0)
		if !valid {
			if i == 0 && r >= '0' && r <= '9' {
				b.WriteByte('_')
				b.WriteRune(r)
				continue
			}
			b.WriteByte('_')
			continue
		}
		b.WriteRune(r)
	}
	if b.Len() == 0 {
		return "_"
	}
	return b.String()
}

// promLabelEscape escapes a label value per the exposition format.
func promLabelEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// promFloat renders a float sample value ("+Inf"/"-Inf"/"NaN" style
// special values never occur here: snapshots sanitize them).
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus writes the snapshot in Prometheus text exposition
// format. A nil snapshot writes nothing.
func WritePrometheus(w io.Writer, s *Snapshot) error {
	if s == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	for _, k := range sortedKeys(s.Counters) {
		n := promName(k)
		if !strings.HasSuffix(n, "_total") {
			n += "_total"
		}
		fmt.Fprintf(bw, "# HELP %s Counter %s.\n# TYPE %s counter\n%s %d\n", n, k, n, n, s.Counters[k])
	}
	for _, k := range sortedKeys(s.Gauges) {
		n := promName(k)
		g := s.Gauges[k]
		fmt.Fprintf(bw, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %d\n", n, k, n, n, g.Value)
		fmt.Fprintf(bw, "# HELP %s_max High-water mark of %s.\n# TYPE %s_max gauge\n%s_max %d\n", n, k, n, n, g.Max)
	}
	for _, k := range sortedKeys(s.FloatGauges) {
		n := promName(k)
		fmt.Fprintf(bw, "# HELP %s Gauge %s.\n# TYPE %s gauge\n%s %s\n", n, k, n, n, promFloat(s.FloatGauges[k]))
	}
	for _, k := range sortedKeys(s.Histograms) {
		n := promName(k)
		h := s.Histograms[k]
		fmt.Fprintf(bw, "# HELP %s Histogram %s.\n# TYPE %s histogram\n", n, k, n)
		// Snapshot buckets are per-bucket counts over occupied buckets
		// only; cumulate and always close with the +Inf bucket == count.
		var cum int64
		for _, b := range h.Buckets {
			if math.IsInf(b.UpperBound, 1) {
				break // +Inf emitted below from the total count
			}
			cum += b.Count
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", n, promFloat(b.UpperBound), cum)
		}
		fmt.Fprintf(bw, "%s_bucket{le=\"+Inf\"} %d\n", n, h.Count)
		fmt.Fprintf(bw, "%s_sum %s\n", n, promFloat(h.Sum))
		fmt.Fprintf(bw, "%s_count %d\n", n, h.Count)
	}
	if len(s.Info) > 0 {
		var lb strings.Builder
		for i, k := range sortedKeys(s.Info) {
			if i > 0 {
				lb.WriteByte(',')
			}
			fmt.Fprintf(&lb, "%s=\"%s\"", promName(k), promLabelEscape(s.Info[k]))
		}
		fmt.Fprintf(bw, "# HELP oocphylo_info Static run annotations.\n# TYPE oocphylo_info gauge\noocphylo_info{%s} 1\n", lb.String())
	}
	return bw.Flush()
}
