package obs

import (
	"bufio"
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"sync"
	"time"
)

// Request-scoped distributed tracing. A Span is one timed operation in
// one request's Trace; spans propagate across HTTP hops via the W3C
// traceparent header (client → daemon /v1/* → remote object store), so
// a single trace follows a request through the session loop, the
// coalescing batcher, the likelihood engine, the out-of-core manager
// and the tiered store's cache/remote lanes.
//
// Cost model matches the rest of the package: a nil *Span is a no-op
// on every method, so an untraced request pays one nil check per call
// site and never touches the clock. Finished spans land in a bounded
// SpanCollector (oldest trace evicted first, drops counted), which
// backs /debug/trace/{id} and the span-aware Chrome trace export.

// TraceID is a 128-bit W3C trace id.
type TraceID [16]byte

// SpanID is a 64-bit W3C span id.
type SpanID [8]byte

// String returns the 32-hex-digit form.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String returns the 16-hex-digit form.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// IsZero reports whether the id is all zeroes (invalid per W3C).
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports whether the id is all zeroes (invalid per W3C).
func (s SpanID) IsZero() bool { return s == SpanID{} }

// idRand is a locked PRNG seeded once from crypto/rand: span creation
// must not block on the kernel entropy pool per request.
var idRand = func() *rand.Rand {
	var seed [8]byte
	if _, err := crand.Read(seed[:]); err != nil {
		binary.LittleEndian.PutUint64(seed[:], uint64(time.Now().UnixNano()))
	}
	return rand.New(rand.NewSource(int64(binary.LittleEndian.Uint64(seed[:]))))
}()
var idRandMu sync.Mutex

// NewTraceID returns a random non-zero trace id.
func NewTraceID() TraceID {
	var t TraceID
	idRandMu.Lock()
	for t.IsZero() {
		binary.LittleEndian.PutUint64(t[0:8], idRand.Uint64())
		binary.LittleEndian.PutUint64(t[8:16], idRand.Uint64())
	}
	idRandMu.Unlock()
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	idRandMu.Lock()
	for s.IsZero() {
		binary.LittleEndian.PutUint64(s[:], idRand.Uint64())
	}
	idRandMu.Unlock()
	return s
}

// FormatTraceparent renders a W3C traceparent header value
// (version 00, sampled flag set).
func FormatTraceparent(t TraceID, s SpanID) string {
	return fmt.Sprintf("00-%s-%s-01", t.String(), s.String())
}

// ParseTraceparent parses a W3C traceparent header value. Only version
// 00 with valid non-zero ids is accepted.
func ParseTraceparent(v string) (TraceID, SpanID, bool) {
	var t TraceID
	var s SpanID
	// 00-<32 hex>-<16 hex>-<2 hex>
	if len(v) != 55 || v[0:3] != "00-" || v[35] != '-' || v[52] != '-' {
		return t, s, false
	}
	if _, err := hex.Decode(t[:], []byte(v[3:35])); err != nil {
		return t, s, false
	}
	if _, err := hex.Decode(s[:], []byte(v[36:52])); err != nil {
		return t, s, false
	}
	if t.IsZero() || s.IsZero() {
		return t, s, false
	}
	return t, s, true
}

// NewTraceparent mints a fresh traceparent value without any span
// machinery — what a client with no collector injects on an outbound
// request. The returned trace id string identifies the trace server-side.
func NewTraceparent() (header, traceID string) {
	t, s := NewTraceID(), NewSpanID()
	return FormatTraceparent(t, s), t.String()
}

// Cost is a request's resource ledger: what one evaluate paid across
// the engine, the out-of-core manager and the tiered store. Values are
// deltas attributed to exactly one request (the session loop is
// serialized, so counter deltas around one request are exact).
type Cost struct {
	// VectorsFaulted counts demand misses the manager staged in.
	VectorsFaulted int64 `json:"vectors_faulted,omitempty"`
	// LocalReads/BytesLocal: vector reads served by the local tier
	// (cache hits under a tiered store, plain store reads otherwise).
	LocalReads int64 `json:"local_reads,omitempty"`
	BytesLocal int64 `json:"bytes_local,omitempty"`
	// RemoteGets/BytesRemote: coalesced remote GET requests and bytes
	// fetched from the object store.
	RemoteGets  int64 `json:"remote_gets,omitempty"`
	BytesRemote int64 `json:"bytes_remote,omitempty"`
	// BytesPushed: dirty write-back bytes pushed to the remote store.
	BytesPushed int64 `json:"bytes_pushed,omitempty"`
	// Recomputes counts vectors the recompute policy chose to rebuild
	// instead of fetching; Newviews the ancestral vectors computed.
	Recomputes int64 `json:"recomputes,omitempty"`
	Newviews   int64 `json:"newviews,omitempty"`
	// PCacheHits counts P-matrix cache hits.
	PCacheHits int64 `json:"pcache_hits,omitempty"`
	// WaitMicros/ExecMicros is the batcher split: time from enqueue to
	// batch execution start, and the request's serialized execution span.
	WaitMicros int64 `json:"wait_us,omitempty"`
	ExecMicros int64 `json:"exec_us,omitempty"`
}

// Add returns the field-wise sum.
func (c Cost) Add(d Cost) Cost {
	c.VectorsFaulted += d.VectorsFaulted
	c.LocalReads += d.LocalReads
	c.BytesLocal += d.BytesLocal
	c.RemoteGets += d.RemoteGets
	c.BytesRemote += d.BytesRemote
	c.BytesPushed += d.BytesPushed
	c.Recomputes += d.Recomputes
	c.Newviews += d.Newviews
	c.PCacheHits += d.PCacheHits
	c.WaitMicros += d.WaitMicros
	c.ExecMicros += d.ExecMicros
	return c
}

// IsZero reports whether every field is zero.
func (c Cost) IsZero() bool { return c == Cost{} }

// Header renders the compact k=v form carried in the X-OOC-Cost
// response header.
func (c Cost) Header() string {
	return fmt.Sprintf("faults=%d;local_reads=%d;bytes_local=%d;remote_gets=%d;bytes_remote=%d;bytes_pushed=%d;recomputes=%d;newviews=%d;pcache_hits=%d;wait_us=%d;exec_us=%d",
		c.VectorsFaulted, c.LocalReads, c.BytesLocal, c.RemoteGets, c.BytesRemote,
		c.BytesPushed, c.Recomputes, c.Newviews, c.PCacheHits, c.WaitMicros, c.ExecMicros)
}

// ParseCostHeader parses the X-OOC-Cost header form. Unknown keys are
// ignored; a malformed pair fails the parse.
func ParseCostHeader(v string) (Cost, bool) {
	var c Cost
	if v == "" {
		return c, false
	}
	fields := map[string]*int64{
		"faults": &c.VectorsFaulted, "local_reads": &c.LocalReads,
		"bytes_local": &c.BytesLocal, "remote_gets": &c.RemoteGets,
		"bytes_remote": &c.BytesRemote, "bytes_pushed": &c.BytesPushed,
		"recomputes": &c.Recomputes, "newviews": &c.Newviews,
		"pcache_hits": &c.PCacheHits, "wait_us": &c.WaitMicros, "exec_us": &c.ExecMicros,
	}
	for _, pair := range splitSemis(v) {
		eq := -1
		for i := 0; i < len(pair); i++ {
			if pair[i] == '=' {
				eq = i
				break
			}
		}
		if eq <= 0 {
			return Cost{}, false
		}
		var n int64
		if _, err := fmt.Sscanf(pair[eq+1:], "%d", &n); err != nil {
			return Cost{}, false
		}
		if p, ok := fields[pair[:eq]]; ok {
			*p = n
		}
	}
	return c, true
}

func splitSemis(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ';' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// CostLedger is the mutable per-trace accumulator. The root span owns
// one; every child shares it. A nil *CostLedger is a no-op.
type CostLedger struct {
	mu sync.Mutex
	c  Cost
}

// Add merges d into the ledger.
func (l *CostLedger) Add(d Cost) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.c = l.c.Add(d)
	l.mu.Unlock()
}

// Snapshot returns the accumulated cost.
func (l *CostLedger) Snapshot() Cost {
	if l == nil {
		return Cost{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.c
}

// Attr is one span attribute; Str empty means the value is Int.
type Attr struct {
	Key string `json:"key"`
	Int int64  `json:"int,omitempty"`
	Str string `json:"str,omitempty"`
}

// Span is one timed operation within a trace. Create roots with
// SpanCollector.StartTrace / StartRemoteChild, children with
// StartChild. All methods are nil-safe no-ops.
type Span struct {
	col    *SpanCollector
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	start  time.Time
	ledger *CostLedger

	mu    sync.Mutex
	attrs []Attr
	links []SpanID
	ended bool
}

// TraceID returns the span's trace id (zero for nil).
func (sp *Span) TraceID() TraceID {
	if sp == nil {
		return TraceID{}
	}
	return sp.trace
}

// ID returns the span id (zero for nil).
func (sp *Span) ID() SpanID {
	if sp == nil {
		return SpanID{}
	}
	return sp.id
}

// Traceparent renders the header value that makes an outbound request
// a child of this span ("" for nil).
func (sp *Span) Traceparent() string {
	if sp == nil {
		return ""
	}
	return FormatTraceparent(sp.trace, sp.id)
}

// Ledger returns the trace's shared cost ledger (nil for nil).
func (sp *Span) Ledger() *CostLedger {
	if sp == nil {
		return nil
	}
	return sp.ledger
}

// AddCost merges d into the trace's cost ledger.
func (sp *Span) AddCost(d Cost) {
	if sp == nil {
		return
	}
	sp.ledger.Add(d)
}

// SetAttr records an integer attribute.
func (sp *Span) SetAttr(key string, v int64) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Int: v})
	sp.mu.Unlock()
}

// SetAttrStr records a string attribute.
func (sp *Span) SetAttrStr(key, v string) {
	if sp == nil {
		return
	}
	sp.mu.Lock()
	sp.attrs = append(sp.attrs, Attr{Key: key, Str: v})
	sp.mu.Unlock()
}

// LinkTo records a flow link from this span to other (rendered as a
// Chrome trace flow arrow — e.g. a batched request pointing at the
// shared engine-pass span that executed it).
func (sp *Span) LinkTo(other *Span) {
	if sp == nil || other == nil {
		return
	}
	sp.mu.Lock()
	sp.links = append(sp.links, other.id)
	sp.mu.Unlock()
}

// EmitChild records an already-finished child span in one call — the
// shape layer code wants when it learns an operation's duration only
// after the fact (the manager's fault-in path, the engine's kernels).
func (sp *Span) EmitChild(name string, start time.Time, dur time.Duration, attrs ...Attr) {
	if sp == nil {
		return
	}
	sp.col.add(sp.trace, SpanRecord{
		SpanID: NewSpanID().String(),
		Parent: sp.id.String(),
		Name:   name,
		Start:  start.UnixNano(),
		Dur:    dur.Nanoseconds(),
		Attrs:  attrs,
	})
}

// StartChild starts a child span sharing the trace id and cost ledger.
func (sp *Span) StartChild(name string) *Span {
	if sp == nil {
		return nil
	}
	return &Span{
		col:    sp.col,
		trace:  sp.trace,
		id:     NewSpanID(),
		parent: sp.id,
		name:   name,
		start:  time.Now(),
		ledger: sp.ledger,
	}
}

// End finishes the span and submits it to the collector. Idempotent.
func (sp *Span) End() {
	if sp == nil {
		return
	}
	end := time.Now()
	sp.mu.Lock()
	if sp.ended {
		sp.mu.Unlock()
		return
	}
	sp.ended = true
	attrs := sp.attrs
	links := make([]string, len(sp.links))
	for i, l := range sp.links {
		links[i] = l.String()
	}
	sp.mu.Unlock()
	sp.col.add(sp.trace, SpanRecord{
		SpanID: sp.id.String(),
		Parent: parentString(sp.parent),
		Name:   sp.name,
		Start:  sp.start.UnixNano(),
		Dur:    end.Sub(sp.start).Nanoseconds(),
		Attrs:  attrs,
		Links:  links,
	})
}

func parentString(p SpanID) string {
	if p.IsZero() {
		return ""
	}
	return p.String()
}

// spanCtxKey keys the active span in a context.Context.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying sp.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	return context.WithValue(ctx, spanCtxKey{}, sp)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanCtxKey{}).(*Span)
	return sp
}

// SpanRecord is one finished span as held by the collector and served
// by /debug/trace/{id}.
type SpanRecord struct {
	SpanID string `json:"span_id"`
	Parent string `json:"parent_span_id,omitempty"`
	Name   string `json:"name"`
	// Start is Unix nanoseconds; Dur the span length in nanoseconds.
	Start int64    `json:"start_unix_nano"`
	Dur   int64    `json:"dur_nanos"`
	Attrs []Attr   `json:"attrs,omitempty"`
	Links []string `json:"links,omitempty"`
}

// traceRecord is one trace's finished spans plus its shared ledger.
type traceRecord struct {
	id     TraceID
	seq    int // stable lane number in the Chrome export
	spans  []SpanRecord
	ledger *CostLedger
}

// TraceView is the /debug/trace/{id} document.
type TraceView struct {
	TraceID string       `json:"trace_id"`
	Cost    Cost         `json:"cost"`
	Spans   []SpanRecord `json:"spans"`
}

// SpanCollector holds finished spans grouped by trace, bounded to
// maxTraces traces of at most maxSpansPerTrace spans each. When full,
// the oldest trace is evicted; spans beyond a trace's cap (and spans
// landing after their trace was evicted while newer traces fill the
// table) are counted as dropped, never silently lost. A nil collector
// is a no-op, so span creation can be wired unconditionally.
type SpanCollector struct {
	mu        sync.Mutex
	maxTraces int
	maxSpans  int
	traces    map[TraceID]*traceRecord
	order     []TraceID // insertion order, oldest first
	nextSeq   int
	total     int64
	dropped   int64
}

// DefaultMaxSpansPerTrace caps one trace's span count.
const DefaultMaxSpansPerTrace = 4096

// NewSpanCollector returns a collector bounded to maxTraces traces
// (minimum 4).
func NewSpanCollector(maxTraces int) *SpanCollector {
	if maxTraces < 4 {
		maxTraces = 4
	}
	return &SpanCollector{
		maxTraces: maxTraces,
		maxSpans:  DefaultMaxSpansPerTrace,
		traces:    make(map[TraceID]*traceRecord),
	}
}

// StartTrace starts a new root span in a fresh trace with a fresh cost
// ledger. Returns nil on a nil collector.
func (c *SpanCollector) StartTrace(name string) *Span {
	if c == nil {
		return nil
	}
	t := NewTraceID()
	led := &CostLedger{}
	c.register(t, led)
	return &Span{
		col:    c,
		trace:  t,
		id:     NewSpanID(),
		name:   name,
		start:  time.Now(),
		ledger: led,
	}
}

// StartRemoteChild starts a server-side span continuing the trace in
// the given traceparent header value. An absent or malformed header
// starts a fresh trace instead, so inbound handlers call this
// unconditionally. Returns nil on a nil collector.
func (c *SpanCollector) StartRemoteChild(name, traceparent string) *Span {
	if c == nil {
		return nil
	}
	t, parent, ok := ParseTraceparent(traceparent)
	if !ok {
		return c.StartTrace(name)
	}
	led := c.register(t, nil)
	return &Span{
		col:    c,
		trace:  t,
		id:     NewSpanID(),
		parent: parent,
		name:   name,
		start:  time.Now(),
		ledger: led,
	}
}

// register ensures a trace record exists, returning its ledger. led,
// when non-nil, is installed for a newly created record.
func (c *SpanCollector) register(t TraceID, led *CostLedger) *CostLedger {
	c.mu.Lock()
	defer c.mu.Unlock()
	if rec, ok := c.traces[t]; ok {
		return rec.ledger
	}
	if led == nil {
		led = &CostLedger{}
	}
	for len(c.order) >= c.maxTraces {
		oldest := c.order[0]
		c.order = c.order[1:]
		if rec, ok := c.traces[oldest]; ok {
			c.dropped += int64(len(rec.spans))
			delete(c.traces, oldest)
		}
	}
	rec := &traceRecord{id: t, seq: c.nextSeq, ledger: led}
	c.nextSeq++
	c.traces[t] = rec
	c.order = append(c.order, t)
	return led
}

// add lands one finished span.
func (c *SpanCollector) add(t TraceID, rec SpanRecord) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	tr, ok := c.traces[t]
	if !ok || len(tr.spans) >= c.maxSpans {
		c.dropped++
		return
	}
	tr.spans = append(tr.spans, rec)
}

// Total returns the number of spans ever finished.
func (c *SpanCollector) Total() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped returns the number of spans lost to trace eviction or the
// per-trace cap.
func (c *SpanCollector) Dropped() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// TraceCount returns the number of traces currently held.
func (c *SpanCollector) TraceCount() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.traces)
}

// Trace returns the finished spans of one trace by 32-hex-digit id.
func (c *SpanCollector) Trace(id string) (TraceView, bool) {
	if c == nil {
		return TraceView{}, false
	}
	var t TraceID
	raw, err := hex.DecodeString(id)
	if err != nil || len(raw) != len(t) {
		return TraceView{}, false
	}
	copy(t[:], raw)
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.traces[t]
	if !ok {
		return TraceView{}, false
	}
	spans := make([]SpanRecord, len(rec.spans))
	copy(spans, rec.spans)
	sort.Slice(spans, func(i, j int) bool { return spans[i].Start < spans[j].Start })
	return TraceView{TraceID: t.String(), Cost: rec.ledger.Snapshot(), Spans: spans}, true
}

// WriteTraceJSON writes one trace's document ({"error": ...} with a
// false return when unknown).
func (c *SpanCollector) WriteTraceJSON(w io.Writer, id string) (bool, error) {
	view, ok := c.Trace(id)
	if !ok {
		return false, json.NewEncoder(w).Encode(map[string]string{"error": "unknown trace " + id})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return true, enc.Encode(view)
}

// WriteChromeTrace writes the merged span-aware Chrome trace_event
// document: the tracer ring's vector-lifecycle events (pid 1) plus
// every collected span (pid 2, one lane per trace), with flow arrows
// ("s"/"f" events) for span links — a batched request's lane points at
// the shared engine-pass span that executed it. Either argument may be
// nil.
func WriteChromeTrace(w io.Writer, tr *Tracer, col *SpanCollector) error {
	bw := bufio.NewWriter(w)
	fmt.Fprint(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	first := true
	if tr != nil {
		first = tr.writeChromeEvents(bw, first)
	}
	if col != nil {
		first = col.writeChromeSpans(bw, first, tr)
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// writeChromeSpans emits the collected spans and their flow arrows.
// The timeline shares the tracer's epoch when tr is non-nil so span
// lanes line up with the vector-lifecycle lanes.
func (c *SpanCollector) writeChromeSpans(bw *bufio.Writer, first bool, tr *Tracer) bool {
	c.mu.Lock()
	recs := make([]*traceRecord, 0, len(c.traces))
	for _, t := range c.order {
		if rec, ok := c.traces[t]; ok {
			snap := &traceRecord{id: rec.id, seq: rec.seq, ledger: rec.ledger}
			snap.spans = append(snap.spans, rec.spans...)
			recs = append(recs, snap)
		}
	}
	c.mu.Unlock()

	var epoch int64 // Unix nanos subtracted from every ts
	if tr != nil {
		epoch = tr.Epoch().UnixNano()
	} else {
		for _, rec := range recs {
			for _, s := range rec.spans {
				if epoch == 0 || s.Start < epoch {
					epoch = s.Start
				}
			}
		}
	}

	// Index span id → (lane, ts) for flow arrow endpoints.
	type spanPos struct {
		tid int
		ts  float64
	}
	pos := make(map[string]spanPos)
	for _, rec := range recs {
		for _, s := range rec.spans {
			pos[s.SpanID] = spanPos{tid: rec.seq, ts: float64(s.Start-epoch) / 1e3}
		}
	}

	emit := func(format string, args ...any) {
		if !first {
			fmt.Fprint(bw, ",")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}

	flowID := 0
	for _, rec := range recs {
		emit("\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":2,\"tid\":%d,\"args\":{\"name\":%q}}",
			rec.seq, "trace "+rec.id.String()[:8])
		for _, s := range rec.spans {
			ts := float64(s.Start-epoch) / 1e3
			var args []byte
			args = append(args, fmt.Sprintf("{\"span_id\":%q,\"trace_id\":%q", s.SpanID, rec.id.String())...)
			if s.Parent != "" {
				args = append(args, fmt.Sprintf(",\"parent\":%q", s.Parent)...)
			}
			for _, a := range s.Attrs {
				if a.Str != "" {
					args = append(args, fmt.Sprintf(",%q:%q", a.Key, a.Str)...)
				} else {
					args = append(args, fmt.Sprintf(",%q:%d", a.Key, a.Int)...)
				}
			}
			args = append(args, '}')
			emit("\n{\"name\":%q,\"cat\":\"span\",\"ph\":\"X\",\"pid\":2,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":%s}",
				s.Name, rec.seq, ts, float64(s.Dur)/1e3, args)
			for _, link := range s.Links {
				dst, ok := pos[link]
				if !ok {
					continue
				}
				flowID++
				emit("\n{\"name\":\"batch\",\"cat\":\"flow\",\"ph\":\"s\",\"id\":%d,\"pid\":2,\"tid\":%d,\"ts\":%.3f}",
					flowID, rec.seq, ts)
				emit("\n{\"name\":\"batch\",\"cat\":\"flow\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":2,\"tid\":%d,\"ts\":%.3f}",
					flowID, dst.tid, dst.ts)
			}
		}
	}
	return first
}

// RegisterTracerMetrics mirrors the trace ring's and span collector's
// own health into the registry (obs.* instruments), so silent drops
// become visible on /debug/vars and in the report. Either tr or col
// may be nil.
func RegisterTracerMetrics(reg *Registry, tr *Tracer, col *SpanCollector) {
	if reg == nil {
		return
	}
	ringDropped := reg.Counter("obs.trace.dropped")
	ringTotal := reg.Counter("obs.trace.total")
	ringLen := reg.Gauge("obs.trace.len")
	spanDropped := reg.Counter("obs.spans.dropped")
	spanTotal := reg.Counter("obs.spans.total")
	spanTraces := reg.Gauge("obs.spans.traces")
	reg.AddPublisher(func() {
		ringDropped.Set(tr.Dropped())
		ringTotal.Set(tr.Total())
		ringLen.Set(int64(tr.Len()))
		spanDropped.Set(col.Dropped())
		spanTotal.Set(col.Total())
		spanTraces.Set(int64(col.TraceCount()))
	})
}
