package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("ooc.hits").Add(3)
	tr := NewTracer(32)
	tr.SetLaneName(0, "compute")
	tr.Emit(OpFaultIn, 0, 1, 0, time.Now(), time.Millisecond)

	addr, shutdown, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return b
	}

	var vars Snapshot
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if vars.Counters["ooc.hits"] != 3 {
		t.Errorf("/debug/vars counters: %v", vars.Counters)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/trace"), &trace); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/debug/trace has no events")
	}

	if report := string(get("/debug/report")); len(report) == 0 {
		t.Error("/debug/report is empty")
	}
	if index := string(get("/")); len(index) == 0 {
		t.Error("index page is empty")
	}
}

// TestNewMuxNilInstruments pins the documented nil-safety contract of
// NewMux: with a nil Registry and a nil Tracer every route must still
// answer 200 with an empty (but well-formed) document, because the CLI
// wires the endpoint unconditionally and only sometimes has a registry.
func TestNewMuxNilInstruments(t *testing.T) {
	srv := httptest.NewServer(NewMux(nil, nil))
	defer srv.Close()

	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d, body %q", path, resp.StatusCode, b)
		}
		return b
	}

	// /debug/vars: an empty snapshot, still valid JSON.
	var snap Snapshot
	if err := json.Unmarshal(get("/debug/vars"), &snap); err != nil {
		t.Errorf("/debug/vars with nil registry is not JSON: %v", err)
	}
	if len(snap.Counters) != 0 || len(snap.Gauges) != 0 || len(snap.Histograms) != 0 {
		t.Errorf("/debug/vars with nil registry is not empty: %+v", snap)
	}

	// /debug/report: answers 200; the body is legitimately empty (an
	// empty snapshot has no sections to render).
	get("/debug/report")

	// /debug/trace: a valid Chrome trace document with no events.
	var trace struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/trace"), &trace); err != nil {
		t.Errorf("/debug/trace with nil tracer is not JSON: %v", err)
	}
	if len(trace.TraceEvents) != 0 {
		t.Errorf("/debug/trace with nil tracer has %d events, want 0", len(trace.TraceEvents))
	}

	// The index and the pprof routes don't touch the instruments but are
	// part of the mounted surface; they must stay reachable.
	for _, path := range []string{"/", "/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		if body := get(path); len(body) == 0 {
			t.Errorf("GET %s returned an empty body", path)
		}
	}

	// Unknown paths still 404 (the "/" handler is an index, not a catch-all).
	resp, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope: status %d, want 404", resp.StatusCode)
	}
}
