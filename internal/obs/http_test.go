package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"
)

func TestServeEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("ooc.hits").Add(3)
	tr := NewTracer(32)
	tr.SetLaneName(0, "compute")
	tr.Emit(OpFaultIn, 0, 1, 0, time.Now(), time.Millisecond)

	addr, shutdown, err := Serve("127.0.0.1:0", r, tr)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer func() {
		if err := shutdown(); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	get := func(path string) []byte {
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: read: %v", path, err)
		}
		return b
	}

	var vars Snapshot
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars not valid JSON: %v", err)
	}
	if vars.Counters["ooc.hits"] != 3 {
		t.Errorf("/debug/vars counters: %v", vars.Counters)
	}

	var trace struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(get("/debug/trace"), &trace); err != nil {
		t.Fatalf("/debug/trace not valid JSON: %v", err)
	}
	if len(trace.TraceEvents) == 0 {
		t.Error("/debug/trace has no events")
	}

	if report := string(get("/debug/report")); len(report) == 0 {
		t.Error("/debug/report is empty")
	}
	if index := string(get("/")); len(index) == 0 {
		t.Error("index page is empty")
	}
}
