package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

func TestPromName(t *testing.T) {
	cases := map[string]string{
		"ooc.bytes_read":   "ooc_bytes_read",
		"svc.session.d-1":  "svc_session_d_1",
		"plf:newviews":     "plf:newviews",
		"9lives":           "_9lives",
		"":                 "_",
		"already_fine_123": "already_fine_123",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("ooc.reads").Add(42)
	reg.Gauge("svc.sessions").Set(3)
	reg.FloatGauge("slo.latency.good_ratio").Set(0.997)
	h := reg.Histogram("svc.request_seconds", []float64{0.1, 0.5, 1})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(2.5)
	reg.SetInfo("run.mode", `quoted "value"`)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	for _, want := range []string{
		"# TYPE ooc_reads_total counter",
		"ooc_reads_total 42",
		"# TYPE svc_sessions gauge",
		"svc_sessions 3",
		"slo_latency_good_ratio 0.997",
		"# TYPE svc_request_seconds histogram",
		`svc_request_seconds_bucket{le="+Inf"} 3`,
		"svc_request_seconds_count 3",
		`run_mode="quoted \"value\""`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}

	// Buckets must be cumulative: le="0.5" includes the 0.05 observation.
	var cum05 int64 = -1
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `svc_request_seconds_bucket{le="0.5"}`) {
			fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%d", &cum05)
		}
	}
	if cum05 != 2 {
		t.Errorf(`le="0.5" bucket = %d, want cumulative 2`, cum05)
	}

	// Every sample line must parse: <name>{labels} <value> with a valid
	// float value — the shape Prometheus's text parser demands.
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Errorf("malformed sample line %q", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[sp+1:], 64); err != nil {
			t.Errorf("sample %q: value does not parse: %v", line, err)
		}
		name := line[:sp]
		if i := strings.IndexByte(name, '{'); i >= 0 {
			name = name[:i]
		}
		if promName(name) != name {
			t.Errorf("sample %q: metric name %q is not a valid Prometheus name", line, name)
		}
	}
}

func TestWritePrometheusNilSnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil snapshot wrote %q", buf.String())
	}
}
