package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

func TestTracerRingOverflow(t *testing.T) {
	tr := NewTracer(16) // minimum capacity
	base := time.Now()
	for i := 0; i < 20; i++ {
		tr.Emit(OpFaultIn, 0, int32(i), int32(i%4), base.Add(time.Duration(i)*time.Millisecond), time.Millisecond)
	}
	if tr.Total() != 20 {
		t.Errorf("Total=%d, want 20", tr.Total())
	}
	if tr.Len() != 16 {
		t.Errorf("Len=%d, want 16 (ring capacity)", tr.Len())
	}
	if tr.Dropped() != 4 {
		t.Errorf("Dropped=%d, want 4", tr.Dropped())
	}
	events := tr.Events()
	if len(events) != 16 {
		t.Fatalf("Events returned %d, want 16", len(events))
	}
	// Oldest events (VID 0..3) were overwritten; the survivors are 4..19
	// in emission order.
	for i, e := range events {
		if want := int32(i + 4); e.VID != want {
			t.Fatalf("event %d: VID=%d, want %d (oldest-first order after wrap)", i, e.VID, want)
		}
	}
	// Start times must be monotone in the returned order.
	for i := 1; i < len(events); i++ {
		if events[i].Start < events[i-1].Start {
			t.Fatalf("events out of order at %d: %d < %d", i, events[i].Start, events[i-1].Start)
		}
	}
}

func TestTracerEmitNoAllocAfterWarmup(t *testing.T) {
	tr := NewTracer(64)
	start := time.Now()
	tr.Emit(OpNewview, 0, 1, 1, start, time.Microsecond) // warmup (none needed, but be explicit)
	if n := testing.AllocsPerRun(1000, func() {
		tr.Emit(OpNewview, 0, 1, 1, start, time.Microsecond)
	}); n != 0 {
		t.Errorf("Emit allocates %v per call after warmup, want 0", n)
	}
}

func TestTracerNilIsNoOp(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer must report disabled")
	}
	tr.Emit(OpEvict, 0, 1, 2, time.Now(), time.Millisecond)
	tr.SetLaneName(0, "compute")
	if tr.Len() != 0 || tr.Total() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Error("nil tracer must read as empty")
	}
	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("nil WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("nil tracer must still emit valid JSON: %v", err)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	tr := NewTracer(32)
	tr.SetLaneName(0, "compute")
	tr.SetLaneName(1, "io-fetch-1")
	base := time.Now()
	tr.Emit(OpFaultIn, 0, 7, 2, base, 150*time.Microsecond)
	tr.Emit(OpFetch, 1, 8, -1, base.Add(time.Millisecond), 90*time.Microsecond)
	tr.Emit(OpRecovery, 0, 9, 3, base.Add(2*time.Millisecond), 0) // instant event

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	// 2 thread_name metadata + 3 events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d traceEvents, want 5: %s", len(doc.TraceEvents), buf.String())
	}
	phases := map[string]int{}
	for _, e := range doc.TraceEvents {
		ph, _ := e["ph"].(string)
		phases[ph]++
		if ph == "X" {
			if _, ok := e["dur"]; !ok {
				t.Errorf("span event missing dur: %v", e)
			}
		}
	}
	if phases["M"] != 2 || phases["X"] != 2 || phases["i"] != 1 {
		t.Errorf("phase mix M=%d X=%d i=%d, want 2/2/1", phases["M"], phases["X"], phases["i"])
	}
}

func TestEventOpNames(t *testing.T) {
	for op := EventOp(0); op < numOps; op++ {
		if op.String() == "" {
			t.Errorf("op %d has no name", op)
		}
		if op.Cat() == "" || op.Cat() == "misc" {
			t.Errorf("op %d (%s) has no category", op, op)
		}
	}
}
