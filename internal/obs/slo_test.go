package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock drives the evaluator through simulated time.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestSLOFastBurnFiresOnErrorBurst(t *testing.T) {
	ev := NewSLOEvaluator(nil)
	clk := &fakeClock{t: time.Unix(1_700_000_000, 0)}
	ev.SetClock(clk.now)

	var good, total int64
	ev.Add(SLO{
		Name:      "availability",
		Objective: 0.999,
		Window:    30 * 24 * time.Hour,
		SLI:       func() (int64, int64) { return good, total },
	})

	// Healthy minute-by-minute traffic: 100 req/min, all good.
	for i := 0; i < 6; i++ {
		good += 100
		total += 100
		rep := ev.Report()
		if rep.SLOs[0].Firing {
			t.Fatalf("healthy traffic fired at sample %d: %+v", i, rep.SLOs[0])
		}
		clk.advance(time.Minute)
	}

	// Sudden outage: the next two minutes are 50% errors. The 5m fast
	// window still holds some healthy traffic, but the windowed error
	// ratio (100/500 = 20%) over a 0.1% budget is a burn rate of 200 —
	// far past the fast threshold of 14.4.
	for i := 0; i < 2; i++ {
		good += 50
		total += 100
		clk.advance(time.Minute)
	}
	rep := ev.Report()
	s := rep.SLOs[0]
	if !s.Firing {
		t.Fatalf("error burst did not fire: %+v", s)
	}
	var fast, slow BurnStatus
	for _, b := range s.Burns {
		switch b.Name {
		case "fast":
			fast = b
		case "slow":
			slow = b
		}
	}
	if !fast.Firing {
		t.Errorf("fast rule not firing: %+v", fast)
	}
	// The 1h window still includes the healthy ramp, so its rate is
	// diluted — but 100 errors / 800 total is still 125× budget.
	if !slow.Firing {
		t.Errorf("slow rule not firing: %+v", slow)
	}
	if fast.Rate <= slow.Rate {
		t.Errorf("fast rate %v should exceed diluted slow rate %v", fast.Rate, slow.Rate)
	}
	if s.GoodRatio <= 0.8 || s.GoodRatio >= 1 {
		t.Errorf("good ratio %v out of range", s.GoodRatio)
	}
	if s.BudgetUsed <= 1 {
		t.Errorf("budget used %v: a 12.5%% cumulative error rate blows a 99.9%% budget", s.BudgetUsed)
	}

	// Recovery: error-free traffic pushes the fast window back under
	// threshold once the burst ages out.
	for i := 0; i < 7; i++ {
		good += 100
		total += 100
		clk.advance(time.Minute)
		rep = ev.Report()
	}
	for _, b := range rep.SLOs[0].Burns {
		if b.Name == "fast" && b.Firing {
			t.Errorf("fast rule still firing %d min after recovery: %+v", 7, b)
		}
	}
}

func TestSLOPublishGauges(t *testing.T) {
	reg := NewRegistry()
	errs := reg.Counter("svc.http.errors")
	reqs := reg.Counter("svc.http.requests")
	ev := NewSLOEvaluator(nil)
	ev.Add(SLO{Name: "availability", Objective: 0.99, SLI: ErrorSLI(errs, reqs)})
	ev.Publish(reg)

	reqs.Add(1000)
	errs.Add(20) // 2% errors against a 1% budget
	snap := reg.Snapshot()
	if got := snap.FloatGauges["slo.availability.good_ratio"]; got != 0.98 {
		t.Errorf("good_ratio gauge = %v, want 0.98", got)
	}
	if got := snap.FloatGauges["slo.availability.budget_used"]; got < 1.9 || got > 2.1 {
		t.Errorf("budget_used gauge = %v, want ~2", got)
	}
	if _, ok := snap.FloatGauges["slo.availability.burn_fast"]; !ok {
		t.Error("burn_fast gauge missing from snapshot")
	}
	if _, ok := snap.Gauges["slo.availability.firing"]; !ok {
		t.Error("firing gauge missing from snapshot")
	}

	var buf bytes.Buffer
	ev.WriteText(&buf)
	if !strings.Contains(buf.String(), "availability") {
		t.Errorf("text report missing SLO name:\n%s", buf.String())
	}
}

func TestSLONilAndInvalid(t *testing.T) {
	var ev *SLOEvaluator
	ev.Add(SLO{Name: "x", Objective: 0.9, SLI: func() (int64, int64) { return 0, 0 }})
	ev.SetClock(time.Now)
	ev.Publish(nil)
	if rep := ev.Report(); len(rep.SLOs) != 0 {
		t.Fatal("nil evaluator reported SLOs")
	}

	live := NewSLOEvaluator(nil)
	live.Add(SLO{Name: "no-sli", Objective: 0.9}) // nil SLI
	live.Add(SLO{Name: "bad-objective", Objective: 1.5, SLI: func() (int64, int64) { return 0, 0 }})
	if rep := live.Report(); len(rep.SLOs) != 0 {
		t.Fatalf("invalid SLOs were registered: %+v", rep.SLOs)
	}
}
