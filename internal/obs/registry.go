// Package obs is the repo's unified observability layer: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms), a bounded ring of typed
// vector-lifecycle trace events exportable as Chrome trace JSON, a
// live HTTP debug endpoint, and a consolidated text report that
// replaces the per-layer -stats dumps.
//
// The paper's entire evaluation (Figures 2-5) is built from counters —
// miss rates, skipped reads, I/O volume — and the production-scale
// north star needs those counters observable while a run is in flight,
// not only as a post-mortem printout.
//
// Cost model: everything is nil-safe. An uninstrumented layer holds
// nil instrument pointers and every method on a nil *Counter, *Gauge,
// *FloatGauge, *Histogram or *Tracer is a no-op, so the disabled hot
// path pays one nil check per call site and never touches the clock
// (time.Now() call sites are additionally gated on an enabled flag).
// bench_test.go proves the disabled overhead bound.
package obs

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter is a no-op on every method.
type Counter struct {
	v atomic.Int64
}

// Add adds n to the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Set overwrites the value. It exists for publisher mirroring (copying
// a snapshot struct's field into the registry); live instrumentation
// should use Add/Inc.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Value returns the current count (0 for a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous integer level that also tracks its
// high-water mark (queue depths, resident counts). A nil *Gauge is a
// no-op on every method.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set stores n and raises the high-water mark if exceeded.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
	g.raise(n)
}

// Add moves the level by delta, raising the high-water mark as needed,
// and returns the new level.
func (g *Gauge) Add(delta int64) int64 {
	if g == nil {
		return 0
	}
	n := g.v.Add(delta)
	g.raise(n)
	return n
}

func (g *Gauge) raise(n int64) {
	for {
		m := g.max.Load()
		if n <= m || g.max.CompareAndSwap(m, n) {
			return
		}
	}
}

// Value returns the current level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// FloatGauge is an instantaneous float64 level (log-likelihood
// progress, rates). Stored as atomic bits; nil-safe like the rest.
type FloatGauge struct {
	bits atomic.Uint64
}

// Set stores f.
func (g *FloatGauge) Set(f float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(f))
}

// Value returns the current level (0 for a nil receiver).
func (g *FloatGauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Registry is a named collection of instruments. Instrument lookup
// (Counter/Gauge/Histogram) takes a mutex and is meant for setup time;
// the returned instruments are lock-free. A nil *Registry returns nil
// instruments from every lookup, which makes wiring unconditional:
//
//	mx.hits = reg.Counter("ooc.hits") // reg == nil → mx.hits == nil → no-ops
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	fgauges    map[string]*FloatGauge
	hists      map[string]*Histogram
	info       map[string]string
	publishers []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		fgauges:  make(map[string]*FloatGauge),
		hists:    make(map[string]*Histogram),
		info:     make(map[string]string),
	}
}

// Counter returns the named counter, creating it on first use. Returns
// nil (a no-op instrument) when the registry is nil.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// FloatGauge returns the named float gauge, creating it on first use.
func (r *Registry) FloatGauge(name string) *FloatGauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.fgauges[name]
	if !ok {
		g = &FloatGauge{}
		r.fgauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (LatencyBuckets when bounds is nil).
// An existing histogram keeps its original bounds.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// SetInfo records a static key/value annotation (kernel name, strategy,
// geometry) carried through snapshots and reports.
func (r *Registry) SetInfo(key, value string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.info[key] = value
}

// AddPublisher registers a function run at the start of every Snapshot.
// Publishers mirror externally owned snapshot structs (ooc.Stats and
// friends) into registry instruments on demand, so cheap counters that
// are already maintained elsewhere cost nothing on the hot path and are
// still live on the debug endpoint. Publishers must only touch
// pre-resolved instruments (they run outside the registry lock but may
// be called from any goroutine, concurrently with instrumentation).
func (r *Registry) AddPublisher(f func()) {
	if r == nil || f == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.publishers = append(r.publishers, f)
}

// GaugeValue is a gauge snapshot.
type GaugeValue struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// Snapshot is a point-in-time copy of every instrument, in JSON-ready
// form. Maps are fully materialised (no live references), so a snapshot
// can outlive the run.
type Snapshot struct {
	Info        map[string]string            `json:"info,omitempty"`
	Counters    map[string]int64             `json:"counters"`
	Gauges      map[string]GaugeValue        `json:"gauges"`
	FloatGauges map[string]float64           `json:"float_gauges"`
	Histograms  map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot runs the registered publishers, then collects every
// instrument. Safe to call from any goroutine (the debug endpoint calls
// it per request).
func (r *Registry) Snapshot() *Snapshot {
	if r == nil {
		return &Snapshot{}
	}
	r.mu.Lock()
	pubs := make([]func(), len(r.publishers))
	copy(pubs, r.publishers)
	r.mu.Unlock()
	// Publishers run outside the lock: they may take layer locks (e.g.
	// the ooc manager's stats mutex) that must never nest inside r.mu.
	for _, f := range pubs {
		f()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Snapshot{
		Info:        make(map[string]string, len(r.info)),
		Counters:    make(map[string]int64, len(r.counters)),
		Gauges:      make(map[string]GaugeValue, len(r.gauges)),
		FloatGauges: make(map[string]float64, len(r.fgauges)),
		Histograms:  make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for k, v := range r.info {
		s.Info[k] = v
	}
	for k, c := range r.counters {
		s.Counters[k] = c.Value()
	}
	for k, g := range r.gauges {
		s.Gauges[k] = GaugeValue{Value: g.Value(), Max: g.Max()}
	}
	for k, g := range r.fgauges {
		v := g.Value()
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = 0 // encoding/json rejects non-finite numbers
		}
		s.FloatGauges[k] = v
	}
	for k, h := range r.hists {
		s.Histograms[k] = h.Snapshot()
	}
	return s
}

// WriteJSON writes an expvar-style JSON document of the current
// snapshot (the /debug/vars payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// sortedKeys returns map keys in sorted order (deterministic output).
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
