package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Live debug endpoint. Mounted paths:
//
//	/debug/vars    expvar-style JSON snapshot of the registry
//	/debug/report  the consolidated text report (same as the final -stats dump)
//	/debug/trace   Chrome trace_event JSON of the event ring
//	/debug/pprof/  the standard net/http/pprof handlers
//
// The handlers only read atomic instruments and locked snapshots, so
// they are safe to hit while a run is in flight — that is the point.

// NewMux returns an http.ServeMux with the debug routes mounted. reg
// and tr may be nil (the routes then serve empty documents).
func NewMux(reg *Registry, tr *Tracer) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteReport(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := tr.WriteChromeTrace(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "oocphylo debug endpoint\n\n"+
			"/debug/vars    metrics registry (JSON)\n"+
			"/debug/report  consolidated text report\n"+
			"/debug/trace   Chrome trace_event JSON (load in chrome://tracing)\n"+
			"/debug/pprof/  Go profiling\n")
	})
	return mux
}

// Serve listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// debug mux in a background goroutine. It returns the bound address
// (useful with port 0) and a shutdown function that closes the
// listener and waits for the server to stop.
func Serve(addr string, reg *Registry, tr *Tracer) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, tr), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	shutdown = func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}
