package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"time"
)

// Live debug endpoint. Mounted paths:
//
//	/debug/vars        expvar-style JSON snapshot of the registry
//	/debug/metrics     Prometheus text exposition of the same snapshot
//	/debug/report      the consolidated text report (same as -stats)
//	/debug/trace       Chrome trace_event JSON (ring + collected spans)
//	/debug/trace/{id}  one finished trace's spans + cost ledger (JSON)
//	/debug/slo         SLO burn-rate report (JSON; ?format=text)
//	/debug/pprof/      the standard net/http/pprof handlers
//
// The handlers only read atomic instruments and locked snapshots, so
// they are safe to hit while a run is in flight — that is the point.

// MuxOption configures optional debug-mux features.
type MuxOption func(*muxOpts)

type muxOpts struct {
	spans *SpanCollector
	slo   *SLOEvaluator
}

// WithSpans serves the span collector on /debug/trace (merged with the
// ring) and /debug/trace/{id}.
func WithSpans(col *SpanCollector) MuxOption {
	return func(o *muxOpts) { o.spans = col }
}

// WithSLO serves the evaluator on /debug/slo.
func WithSLO(e *SLOEvaluator) MuxOption {
	return func(o *muxOpts) { o.slo = e }
}

// NewMux returns an http.ServeMux with the debug routes mounted. reg
// and tr may be nil (the routes then serve empty documents).
func NewMux(reg *Registry, tr *Tracer, opts ...MuxOption) *http.ServeMux {
	var o muxOpts
	for _, opt := range opts {
		opt(&o)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := reg.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := WritePrometheus(w, reg.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/report", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		WriteReport(w, reg.Snapshot())
	})
	mux.HandleFunc("/debug/trace", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := WriteChromeTrace(w, tr, o.spans); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/debug/trace/")
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if o.spans == nil {
			http.Error(w, `{"error":"tracing not enabled"}`, http.StatusNotFound)
			return
		}
		view, found := o.spans.Trace(id)
		if !found {
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprintf(w, "{\"error\":\"unknown trace %s\"}\n", id)
			return
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(view); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		if o.slo == nil {
			http.Error(w, `{"error":"no SLOs configured"}`, http.StatusNotFound)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			o.slo.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := o.slo.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "oocphylo debug endpoint\n\n"+
			"/debug/vars        metrics registry (JSON)\n"+
			"/debug/metrics     Prometheus text exposition\n"+
			"/debug/report      consolidated text report\n"+
			"/debug/trace       Chrome trace_event JSON (load in chrome://tracing)\n"+
			"/debug/trace/{id}  one trace's spans + cost ledger (JSON)\n"+
			"/debug/slo         SLO burn-rate report (JSON; ?format=text)\n"+
			"/debug/pprof/      Go profiling\n")
	})
	return mux
}

// Serve listens on addr (e.g. ":8080" or "127.0.0.1:0") and serves the
// debug mux in a background goroutine. It returns the bound address
// (useful with port 0) and a shutdown function that closes the
// listener and waits for the server to stop.
func Serve(addr string, reg *Registry, tr *Tracer, opts ...MuxOption) (boundAddr string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: NewMux(reg, tr, opts...), ReadHeaderTimeout: 5 * time.Second}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	shutdown = func() error {
		if err := srv.Close(); err != nil {
			return err
		}
		if err := <-done; err != nil && err != http.ErrServerClosed {
			return err
		}
		return nil
	}
	return ln.Addr().String(), shutdown, nil
}
