package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SLO burn-rate monitoring in the multiwindow style of the Google SRE
// workbook: each SLO declares an objective (the good-event ratio it
// promises over a budget window) and an SLI sampled as cumulative
// (good, total) counts; the evaluator keeps a short history of samples
// and reports the error-budget burn rate over fast and slow lookback
// windows. A burn rate of 1 spends the budget exactly over the SLO
// window; the fast rule (14.4× over 5m by default) catches sudden
// outages, the slow rule (6× over 1h) catches smouldering ones.
//
// Sampling is scrape-driven: every Eval/Report call (and every
// registry snapshot once Publish is wired) appends one sample, so the
// evaluator needs no background goroutine and costs nothing between
// scrapes.

// SLO is one objective over a sampled SLI.
type SLO struct {
	// Name labels the SLO in reports and slo.* gauge names.
	Name string
	// Objective is the promised good ratio in (0, 1), e.g. 0.999.
	Objective float64
	// Window is the error-budget window the objective covers (e.g.
	// 30 days); burn rates are normalized against it.
	Window time.Duration
	// SLI returns cumulative (good, total) event counts. It must be
	// monotonic and safe to call from any goroutine.
	SLI func() (good, total int64)
}

// LatencySLI builds an SLI over a latency histogram: good events are
// observations at or under threshold seconds (choose a bucket bound).
func LatencySLI(h *Histogram, threshold float64) func() (good, total int64) {
	return func() (int64, int64) { return h.CountBelow(threshold), h.Count() }
}

// ErrorSLI builds an availability SLI from an error counter and a
// total counter: good = total - errors.
func ErrorSLI(errs, total *Counter) func() (good, total int64) {
	return func() (int64, int64) {
		t := total.Value()
		e := errs.Value()
		if e > t {
			e = t
		}
		return t - e, t
	}
}

// BurnRule is one lookback window with its alerting threshold.
type BurnRule struct {
	Name      string        `json:"name"`
	Window    time.Duration `json:"-"`
	Threshold float64       `json:"threshold"`
}

// DefaultBurnRules are the SRE-workbook page-alert pair.
var DefaultBurnRules = []BurnRule{
	{Name: "fast", Window: 5 * time.Minute, Threshold: 14.4},
	{Name: "slow", Window: time.Hour, Threshold: 6},
}

// BurnStatus is one rule's evaluation.
type BurnStatus struct {
	Name string `json:"name"`
	// Window is the lookback window (formatted duration).
	Window string `json:"window"`
	// Rate is the burn rate over the window: error ratio divided by
	// the budget ratio (1 - objective). 0 when no events landed.
	Rate      float64 `json:"rate"`
	Threshold float64 `json:"threshold"`
	Firing    bool    `json:"firing"`
}

// SLOStatus is one SLO's evaluation in the /debug/slo report.
type SLOStatus struct {
	Name      string  `json:"name"`
	Objective float64 `json:"objective"`
	Window    string  `json:"window"`
	// Good/Total are the cumulative SLI counts at evaluation time;
	// GoodRatio their ratio (1 when no events yet).
	Good      int64   `json:"good"`
	Total     int64   `json:"total"`
	GoodRatio float64 `json:"good_ratio"`
	// BudgetUsed is the fraction of the error budget consumed by the
	// events observed so far (cumulative, not windowed; > 1 = blown).
	BudgetUsed float64      `json:"budget_used"`
	Burns      []BurnStatus `json:"burns"`
	Firing     bool         `json:"firing"`
}

// SLOReport is the full /debug/slo document.
type SLOReport struct {
	At   time.Time   `json:"at"`
	SLOs []SLOStatus `json:"slos"`
}

// sloSample is one cumulative SLI observation.
type sloSample struct {
	t           time.Time
	good, total int64
}

type sloState struct {
	cfg     SLO
	samples []sloSample // ascending time; pruned past the slowest rule
}

// SLOEvaluator evaluates a set of SLOs against burn-rate rules. A nil
// evaluator is a no-op. Sampling happens on Report (scrape-driven).
type SLOEvaluator struct {
	mu    sync.Mutex
	slos  []*sloState
	rules []BurnRule
	now   func() time.Time
}

// NewSLOEvaluator returns an evaluator using DefaultBurnRules when
// rules is nil.
func NewSLOEvaluator(rules []BurnRule) *SLOEvaluator {
	if len(rules) == 0 {
		rules = DefaultBurnRules
	}
	return &SLOEvaluator{rules: rules, now: time.Now}
}

// SetClock overrides the evaluator's clock (tests).
func (e *SLOEvaluator) SetClock(now func() time.Time) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.now = now
	e.mu.Unlock()
}

// Add registers one SLO. Objectives outside (0, 1) and nil SLIs are
// ignored.
func (e *SLOEvaluator) Add(s SLO) {
	if e == nil || s.SLI == nil || s.Objective <= 0 || s.Objective >= 1 {
		return
	}
	if s.Window <= 0 {
		s.Window = 24 * time.Hour
	}
	e.mu.Lock()
	e.slos = append(e.slos, &sloState{cfg: s})
	e.mu.Unlock()
}

// maxRuleWindow returns the slowest lookback (sample retention bound).
func (e *SLOEvaluator) maxRuleWindow() time.Duration {
	max := time.Duration(0)
	for _, r := range e.rules {
		if r.Window > max {
			max = r.Window
		}
	}
	return max
}

// Report samples every SLI and evaluates every rule.
func (e *SLOEvaluator) Report() SLOReport {
	if e == nil {
		return SLOReport{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	rep := SLOReport{At: now}
	keep := e.maxRuleWindow() + time.Minute
	for _, st := range e.slos {
		good, total := st.cfg.SLI()
		st.samples = append(st.samples, sloSample{t: now, good: good, total: total})
		for len(st.samples) > 1 && now.Sub(st.samples[0].t) > keep {
			st.samples = st.samples[1:]
		}
		rep.SLOs = append(rep.SLOs, e.evalLocked(st, now, good, total))
	}
	return rep
}

// evalLocked computes one SLO's status from its sample history.
func (e *SLOEvaluator) evalLocked(st *sloState, now time.Time, good, total int64) SLOStatus {
	cfg := st.cfg
	out := SLOStatus{
		Name:      cfg.Name,
		Objective: cfg.Objective,
		Window:    cfg.Window.String(),
		Good:      good,
		Total:     total,
		GoodRatio: 1,
	}
	budget := 1 - cfg.Objective
	if total > 0 {
		out.GoodRatio = float64(good) / float64(total)
		out.BudgetUsed = (1 - out.GoodRatio) / budget
	}
	for _, r := range e.rules {
		bs := BurnStatus{Name: r.Name, Window: r.Window.String(), Threshold: r.Threshold}
		// Oldest retained sample inside the lookback window gives the
		// windowed delta; a single sample yields no delta (rate 0).
		var base *sloSample
		for i := range st.samples {
			if now.Sub(st.samples[i].t) <= r.Window {
				base = &st.samples[i]
				break
			}
		}
		if base != nil {
			dTotal := total - base.total
			dGood := good - base.good
			if dTotal > 0 {
				errRatio := float64(dTotal-dGood) / float64(dTotal)
				bs.Rate = errRatio / budget
				bs.Firing = bs.Rate >= r.Threshold
			}
		}
		if bs.Firing {
			out.Firing = true
		}
		out.Burns = append(out.Burns, bs)
	}
	return out
}

// Publish mirrors the evaluator into slo.* registry instruments: per
// SLO a good-ratio float gauge, a budget-used float gauge, one burn
// float gauge per rule, and a 0/1 firing gauge. The publisher runs on
// every registry snapshot, which doubles as the sampling tick. Call
// Publish after every Add (instruments are pre-resolved here, per the
// registry's publisher contract).
func (e *SLOEvaluator) Publish(reg *Registry) {
	if e == nil || reg == nil {
		return
	}
	type sloGauges struct {
		good, used *FloatGauge
		firing     *Gauge
		burns      map[string]*FloatGauge
	}
	e.mu.Lock()
	gauges := make(map[string]sloGauges, len(e.slos))
	for _, st := range e.slos {
		base := "slo." + st.cfg.Name
		g := sloGauges{
			good:   reg.FloatGauge(base + ".good_ratio"),
			used:   reg.FloatGauge(base + ".budget_used"),
			firing: reg.Gauge(base + ".firing"),
			burns:  make(map[string]*FloatGauge, len(e.rules)),
		}
		for _, r := range e.rules {
			g.burns[r.Name] = reg.FloatGauge(base + ".burn_" + r.Name)
		}
		gauges[st.cfg.Name] = g
	}
	e.mu.Unlock()
	reg.AddPublisher(func() {
		rep := e.Report()
		for _, s := range rep.SLOs {
			g, ok := gauges[s.Name]
			if !ok {
				continue
			}
			g.good.Set(s.GoodRatio)
			g.used.Set(s.BudgetUsed)
			var firing int64
			if s.Firing {
				firing = 1
			}
			g.firing.Set(firing)
			for _, b := range s.Burns {
				g.burns[b.Name].Set(b.Rate)
			}
		}
	})
}

// WriteJSON writes the /debug/slo document.
func (e *SLOEvaluator) WriteJSON(w io.Writer) error {
	rep := e.Report()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteText writes a one-line-per-SLO human summary.
func (e *SLOEvaluator) WriteText(w io.Writer) {
	rep := e.Report()
	for _, s := range rep.SLOs {
		fmt.Fprintf(w, "%-24s objective=%.4g window=%s good=%d/%d ratio=%.6g budget_used=%.3g",
			s.Name, s.Objective, s.Window, s.Good, s.Total, s.GoodRatio, s.BudgetUsed)
		for _, b := range s.Burns {
			fmt.Fprintf(w, " burn_%s=%.3g", b.Name, b.Rate)
		}
		if s.Firing {
			fmt.Fprint(w, " FIRING")
		}
		fmt.Fprintln(w)
	}
}
