package obs

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// The consolidated report: one formatted text document sourced
// entirely from a registry snapshot, replacing the per-layer -stats
// dumps. Instruments are grouped into sections by their name prefix
// (the part before the first dot: "ooc.hits" → section "ooc"), so a
// new instrumented layer shows up without touching this file.

// sectionOrder pins the known layers to a stable, narrative order;
// unknown prefixes follow alphabetically.
var sectionOrder = []string{"plf", "ooc", "pipe", "search", "svc", "slo", "obs"}

// sectionTitles maps prefixes to human headings.
var sectionTitles = map[string]string{
	"plf":    "likelihood engine",
	"ooc":    "out-of-core manager",
	"pipe":   "async I/O pipeline",
	"search": "tree search",
	"svc":    "PLF service",
	"slo":    "SLO burn rates",
	"obs":    "observability health",
}

// WriteReport renders the snapshot as the consolidated -stats report.
func WriteReport(w io.Writer, s *Snapshot) {
	if s == nil {
		return
	}
	if len(s.Info) > 0 {
		keys := sortedKeys(s.Info)
		fmt.Fprintf(w, "Run info:")
		for _, k := range keys {
			fmt.Fprintf(w, " %s=%s", k, s.Info[k])
		}
		fmt.Fprintln(w)
	}
	for _, sec := range reportSections(s) {
		lines := sectionLines(s, sec)
		if len(lines) == 0 {
			continue
		}
		title := sectionTitles[sec]
		if title == "" {
			title = sec
		}
		fmt.Fprintf(w, "[%s]\n", title)
		for _, l := range lines {
			fmt.Fprintf(w, "  %s\n", l)
		}
	}
}

// reportSections lists the prefixes present in the snapshot, known
// layers first.
func reportSections(s *Snapshot) []string {
	seen := map[string]bool{}
	collect := func(name string) {
		seen[prefixOf(name)] = true
	}
	for k := range s.Counters {
		collect(k)
	}
	for k := range s.Gauges {
		collect(k)
	}
	for k := range s.FloatGauges {
		collect(k)
	}
	for k := range s.Histograms {
		collect(k)
	}
	var out []string
	for _, p := range sectionOrder {
		if seen[p] {
			out = append(out, p)
			delete(seen, p)
		}
	}
	out = append(out, sortedKeys(seen)...)
	return out
}

func prefixOf(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

func shortName(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[i+1:]
	}
	return name
}

// sectionLines renders one section's instruments, counters first, then
// gauges, float gauges and histograms, each alphabetically.
func sectionLines(s *Snapshot, prefix string) []string {
	var lines []string
	for _, k := range sortedKeys(s.Counters) {
		if prefixOf(k) != prefix {
			continue
		}
		lines = append(lines, fmt.Sprintf("%-28s %d", shortName(k), s.Counters[k]))
	}
	for _, k := range sortedKeys(s.Gauges) {
		if prefixOf(k) != prefix {
			continue
		}
		g := s.Gauges[k]
		lines = append(lines, fmt.Sprintf("%-28s %d (max %d)", shortName(k), g.Value, g.Max))
	}
	for _, k := range sortedKeys(s.FloatGauges) {
		if prefixOf(k) != prefix {
			continue
		}
		lines = append(lines, fmt.Sprintf("%-28s %.6g", shortName(k), s.FloatGauges[k]))
	}
	for _, k := range sortedKeys(s.Histograms) {
		if prefixOf(k) != prefix {
			continue
		}
		h := s.Histograms[k]
		lines = append(lines, fmt.Sprintf("%-28s n=%d mean=%s p50=%s p90=%s p99=%s",
			shortName(k), h.Count, secs(h.Mean), secs(h.P50), secs(h.P90), secs(h.P99)))
	}
	return lines
}

// secs formats a seconds quantity as a rounded duration (histograms in
// this repo are all latency histograms).
func secs(v float64) string {
	d := time.Duration(v * float64(time.Second))
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.Round(time.Nanosecond).String()
	}
}
