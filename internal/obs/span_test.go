package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	h := FormatTraceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("traceparent %q: length %d, want 55", h, len(h))
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) rejected its own format", h)
	}
	if gotT != tid || gotS != sid {
		t.Fatalf("round trip changed ids: %v/%v -> %v/%v", tid, sid, gotT, gotS)
	}
	for _, bad := range []string{
		"",
		"00-" + strings.Repeat("0", 32) + "-" + sid.String() + "-01", // zero trace id
		"01-" + tid.String() + "-" + sid.String() + "-01",            // wrong version
		"00-" + tid.String() + "-" + sid.String() + "-1",             // truncated flags
		"00-zz" + tid.String()[2:] + "-" + sid.String() + "-01",      // bad hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent accepted %q", bad)
		}
	}
}

func TestCostHeaderRoundTrip(t *testing.T) {
	c := Cost{
		VectorsFaulted: 12, LocalReads: 7, BytesLocal: 8192,
		RemoteGets: 3, BytesRemote: 16384, BytesPushed: 4096,
		Recomputes: 2, Newviews: 31, PCacheHits: 5,
		WaitMicros: 120, ExecMicros: 4500,
	}
	got, ok := ParseCostHeader(c.Header())
	if !ok {
		t.Fatalf("ParseCostHeader rejected %q", c.Header())
	}
	if got != c {
		t.Fatalf("round trip changed cost: %+v -> %+v", c, got)
	}
	if _, ok := ParseCostHeader("faults=notanumber"); ok {
		t.Error("ParseCostHeader accepted a non-numeric value")
	}
	if _, ok := ParseCostHeader(""); ok {
		t.Error("ParseCostHeader accepted an empty header")
	}
	sum := c.Add(Cost{VectorsFaulted: 1, ExecMicros: 10})
	if sum.VectorsFaulted != 13 || sum.ExecMicros != 4510 || sum.Newviews != 31 {
		t.Fatalf("Add: %+v", sum)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", 1)
	sp.SetAttrStr("k", "v")
	sp.AddCost(Cost{Newviews: 1})
	sp.LinkTo(nil)
	sp.EmitChild("x", time.Now(), time.Millisecond)
	sp.End()
	if child := sp.StartChild("c"); child != nil {
		t.Fatal("nil span produced a non-nil child")
	}
	if sp.Traceparent() != "" {
		t.Fatal("nil span has a traceparent")
	}
	var col *SpanCollector
	if col.StartTrace("x") != nil || col.StartRemoteChild("x", "") != nil {
		t.Fatal("nil collector produced a span")
	}
	if col.Total() != 0 || col.Dropped() != 0 || col.TraceCount() != 0 {
		t.Fatal("nil collector reports nonzero state")
	}
}

func TestSpanCollectorLedgerAndLookup(t *testing.T) {
	col := NewSpanCollector(8)
	root := col.StartTrace("request")
	root.SetAttr("edge", 3)
	child := root.StartChild("fault_in")
	child.AddCost(Cost{VectorsFaulted: 1, BytesRemote: 4096})
	child.End()
	root.AddCost(Cost{Newviews: 9})
	root.EmitChild("evict", time.Now().Add(-time.Millisecond), time.Millisecond,
		Attr{Key: "vid", Int: 7})
	root.End()

	view, ok := col.Trace(root.TraceID().String())
	if !ok {
		t.Fatalf("trace %s not found", root.TraceID())
	}
	if len(view.Spans) != 3 {
		t.Fatalf("trace has %d spans, want 3 (root, child, emitted)", len(view.Spans))
	}
	want := Cost{VectorsFaulted: 1, BytesRemote: 4096, Newviews: 9}
	if view.Cost != want {
		t.Fatalf("trace ledger %+v, want %+v", view.Cost, want)
	}
	// The child must point at the root.
	var foundChild bool
	for _, s := range view.Spans {
		if s.Name == "fault_in" {
			foundChild = true
			if s.Parent != root.ID().String() {
				t.Errorf("child parent %q, want %q", s.Parent, root.ID())
			}
		}
	}
	if !foundChild {
		t.Fatal("child span missing from trace view")
	}
	if _, ok := col.Trace("not-a-trace-id"); ok {
		t.Error("lookup of a malformed id succeeded")
	}
}

func TestSpanCollectorEvictionAndDrops(t *testing.T) {
	col := NewSpanCollector(4)
	var first *Span
	for i := 0; i < 6; i++ {
		sp := col.StartTrace(fmt.Sprintf("t%d", i))
		if i == 0 {
			first = sp
		}
		sp.End()
	}
	if col.TraceCount() != 4 {
		t.Fatalf("collector holds %d traces, want 4", col.TraceCount())
	}
	if _, ok := col.Trace(first.TraceID().String()); ok {
		t.Error("oldest trace survived eviction")
	}
	if col.Dropped() == 0 {
		t.Error("eviction did not count dropped spans")
	}
	// A span landing after its trace was evicted is dropped, not lost
	// silently.
	before := col.Dropped()
	first.StartChild("late").End()
	if col.Dropped() != before+1 {
		t.Errorf("late span: dropped %d, want %d", col.Dropped(), before+1)
	}
}

func TestStartRemoteChildContinuesTrace(t *testing.T) {
	col := NewSpanCollector(8)
	header, traceID := NewTraceparent()
	sp := col.StartRemoteChild("http", header)
	if sp.TraceID().String() != traceID {
		t.Fatalf("remote child trace %s, want %s", sp.TraceID(), traceID)
	}
	sp.End()
	if _, ok := col.Trace(traceID); !ok {
		t.Fatal("continued trace not registered")
	}
	// Malformed header: a fresh trace, not a nil span.
	sp2 := col.StartRemoteChild("http", "garbage")
	if sp2 == nil || sp2.TraceID().IsZero() {
		t.Fatal("malformed traceparent did not start a fresh trace")
	}
}

func TestWriteChromeTraceSpansAndFlows(t *testing.T) {
	col := NewSpanCollector(8)
	a := col.StartTrace("request-a")
	pass := a.StartChild("engine_pass")
	b := col.StartTrace("request-b")
	b.LinkTo(pass)
	pass.End()
	a.End()
	b.End()

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil, col); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace not valid JSON: %v\n%s", err, buf.String())
	}
	var spans, flowS, flowF int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			spans++
		case "s":
			flowS++
		case "f":
			flowF++
		}
	}
	if spans != 3 {
		t.Errorf("chrome trace has %d complete spans, want 3", spans)
	}
	if flowS != 1 || flowF != 1 {
		t.Errorf("flow events s=%d f=%d, want 1/1 (the LinkTo arrow)", flowS, flowF)
	}
}

// TestConcurrentScrapeSpansAndDrain hammers span creation, Prometheus
// scraping and ring draining from racing goroutines — the -race
// acceptance for the whole exposition path.
func TestConcurrentScrapeSpansAndDrain(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(64)
	col := NewSpanCollector(8)
	RegisterTracerMetrics(reg, tr, col)
	evaluator := NewSLOEvaluator(nil)
	reqs := reg.Counter("svc.http.requests")
	errs := reg.Counter("svc.http.errors")
	evaluator.Add(SLO{Name: "availability", Objective: 0.999, SLI: ErrorSLI(errs, reqs)})
	evaluator.Publish(reg)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				sp := col.StartTrace("req")
				sp.SetAttr("g", int64(g))
				child := sp.StartChild("work")
				child.AddCost(Cost{Newviews: 1})
				child.End()
				sp.End()
				tr.Emit(OpFaultIn, int32(i%8), int32(i), 0, time.Now(), time.Microsecond)
				reqs.Inc()
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				var buf bytes.Buffer
				if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
					t.Errorf("WritePrometheus: %v", err)
					return
				}
				var trace bytes.Buffer
				if err := WriteChromeTrace(&trace, tr, col); err != nil {
					t.Errorf("WriteChromeTrace: %v", err)
					return
				}
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if col.Total() == 0 {
		t.Fatal("no spans recorded")
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, reg.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "obs_spans_total") {
		t.Error("Prometheus exposition missing obs_spans_total")
	}
}
