package obs

import (
	"encoding/json"
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets is the default bucket layout for latency histograms:
// roughly 1-2-5 steps from 1µs to 5s, in seconds. Out-of-core fault-ins
// on fast NVMe land around 10-100µs, spinning disks around 1-10ms, and
// recovery recomputation storms can push individual operations into
// whole seconds — the layout keeps ~3 buckets per decade across that
// entire range so p50/p90/p99 interpolation stays meaningful.
var LatencyBuckets = []float64{
	1e-6, 2e-6, 5e-6,
	1e-5, 2e-5, 5e-5,
	1e-4, 2e-4, 5e-4,
	1e-3, 2e-3, 5e-3,
	1e-2, 2e-2, 5e-2,
	1e-1, 2e-1, 5e-1,
	1, 2, 5,
}

// Histogram is a fixed-bucket histogram with lock-free observation.
// Bucket i counts observations v with v <= bounds[i] (and v >
// bounds[i-1]); one extra overflow bucket counts v > bounds[last] —
// Prometheus' cumulative-`le` convention made explicit per bucket.
// A nil *Histogram is a no-op on every method.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending upper
// bounds (a copy is taken). Nil or empty bounds select LatencyBuckets.
func NewHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	if h == nil {
		return
	}
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / float64(n)
}

// CountBelow returns the number of observations in buckets whose upper
// bound is <= limit. Exact when limit coincides with a bucket bound
// (SLO latency thresholds should be chosen from the bucket layout);
// otherwise it undercounts by at most one bucket.
func (h *Histogram) CountBelow(limit float64) int64 {
	if h == nil {
		return 0
	}
	var n int64
	for i, b := range h.bounds {
		if b > limit {
			break
		}
		n += h.counts[i].Load()
	}
	return n
}

// Quantile estimates the q-quantile (q in [0, 1]) by linear
// interpolation inside the bucket containing the target rank: the
// bucket's observations are assumed uniform between its lower and upper
// bound. Values in the overflow bucket are reported as the top bound
// (the histogram cannot know how far beyond it they reached). Returns 0
// for an empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= rank {
			if i >= len(h.bounds) {
				// Overflow bucket: unbounded above, clamp to the top bound.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (rank - cum) / n
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}

// BucketCount is one bucket of a histogram snapshot.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf for the
	// overflow bucket.
	UpperBound float64 `json:"le"`
	// Count is the number of observations in this bucket alone (not
	// cumulative).
	Count int64 `json:"count"`
}

// MarshalJSON emits the overflow bucket's infinite bound as the string
// "+Inf" (encoding/json rejects non-finite numbers).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	type finite struct {
		UpperBound float64 `json:"le"`
		Count      int64   `json:"count"`
	}
	if math.IsInf(b.UpperBound, 1) {
		return json.Marshal(struct {
			UpperBound string `json:"le"`
			Count      int64  `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(finite{b.UpperBound, b.Count})
}

// HistogramSnapshot is a point-in-time copy with precomputed quantiles.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	P50     float64       `json:"p50"`
	P90     float64       `json:"p90"`
	P99     float64       `json:"p99"`
	Buckets []BucketCount `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state. Non-atomic across buckets (a
// concurrent Observe may be half-landed) — quantiles are estimates
// either way, and every individual load is atomic.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
	for i := range h.counts {
		n := h.counts[i].Load()
		if n == 0 {
			continue
		}
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, BucketCount{UpperBound: ub, Count: n})
	}
	return s
}
