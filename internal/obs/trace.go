package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Vector-lifecycle tracing. Every interesting wall-time span — a
// demand fault-in, a background fetch, an eviction write-back, a
// newview, a recovery recompute — is recorded as one fixed-size Event
// in a bounded ring buffer. The ring makes pipeline behaviour
// *visible*: exported as Chrome trace_event JSON (chrome://tracing,
// https://ui.perfetto.dev) the compute lane and the I/O worker lanes
// sit one above the other, so prefetch overlap, stall gaps and
// recovery recomputation storms can be read straight off the timeline.

// EventOp identifies the operation a trace event spans.
type EventOp uint8

const (
	// OpFaultIn is a demand miss on the compute thread: pick a slot,
	// evict if needed, read the vector (unless skipped).
	OpFaultIn EventOp = iota
	// OpEvict is an eviction write-back issued on the compute thread
	// (synchronous manager) or the queueing of one (async).
	OpEvict
	// OpPrefetch is a Prefetch stage-in: the store read itself under the
	// synchronous manager, just the enqueue under the async pipeline.
	OpPrefetch
	// OpJoinWait is compute-thread time spent waiting for an in-flight
	// background fetch (the latency the pipeline could not hide).
	OpJoinWait
	// OpFetch is a background fetch worker servicing one stage-in.
	OpFetch
	// OpWriteBack is the background writer landing one queued write.
	OpWriteBack
	// OpNewview is one ancestral-vector computation.
	OpNewview
	// OpEvaluate is one log-likelihood evaluation.
	OpEvaluate
	// OpSumTable is one derivative sum-table construction.
	OpSumTable
	// OpRecovery marks a corrupt vector being invalidated for recompute.
	OpRecovery
	// OpRound is one SPR/NNI improvement round of the search loop.
	OpRound
	numOps
)

var opNames = [numOps]string{
	OpFaultIn:   "fault-in",
	OpEvict:     "evict",
	OpPrefetch:  "prefetch",
	OpJoinWait:  "join-wait",
	OpFetch:     "bg-fetch",
	OpWriteBack: "bg-write",
	OpNewview:   "newview",
	OpEvaluate:  "evaluate",
	OpSumTable:  "sum-table",
	OpRecovery:  "recovery",
	OpRound:     "round",
}

var opCats = [numOps]string{
	OpFaultIn:   "ooc",
	OpEvict:     "ooc",
	OpPrefetch:  "ooc",
	OpJoinWait:  "pipe",
	OpFetch:     "pipe",
	OpWriteBack: "pipe",
	OpNewview:   "plf",
	OpEvaluate:  "plf",
	OpSumTable:  "plf",
	OpRecovery:  "plf",
	OpRound:     "search",
}

// String returns the op's trace name.
func (op EventOp) String() string {
	if int(op) < len(opNames) {
		return opNames[op]
	}
	return fmt.Sprintf("op-%d", int(op))
}

// Cat returns the op's category (the layer that emitted it).
func (op EventOp) Cat() string {
	if int(op) < len(opCats) {
		return opCats[op]
	}
	return "misc"
}

// Event is one typed trace span. Fixed size, no pointers: recording an
// event never allocates, so the ring is warm after construction.
type Event struct {
	// Op is the operation kind.
	Op EventOp
	// TID is the lane: 0 is the compute thread, background I/O workers
	// get their own lanes (see Tracer.SetLaneName).
	TID int32
	// VID is the vector index the operation touched (-1 when N/A).
	VID int32
	// Slot is the RAM slot involved (-1 when N/A).
	Slot int32
	// Start is nanoseconds since the tracer's epoch.
	Start int64
	// Dur is the span length in nanoseconds (0 for instant events).
	Dur int64
}

// Tracer is a bounded ring of Events. When full, the oldest event is
// overwritten (the tail of a run is what a timeline reader wants). A
// nil *Tracer is a no-op on every method, so call sites need no flag.
type Tracer struct {
	mu      sync.Mutex
	epoch   time.Time
	buf     []Event
	head    int   // next write position
	total   int64 // events ever emitted
	laneMu  sync.Mutex
	laneNam map[int32]string
}

// NewTracer returns a tracer whose ring holds capacity events
// (minimum 16). The full ring is allocated up front; Emit never
// allocates afterwards.
func NewTracer(capacity int) *Tracer {
	if capacity < 16 {
		capacity = 16
	}
	return &Tracer{
		epoch:   time.Now(),
		buf:     make([]Event, capacity),
		laneNam: make(map[int32]string),
	}
}

// Enabled reports whether events will be recorded. Call sites use it to
// gate the time.Now() needed to build a span:
//
//	if tr.Enabled() { start = time.Now() }
func (t *Tracer) Enabled() bool { return t != nil }

// SetLaneName labels a TID lane in the exported timeline (e.g. 0 →
// "compute", 1 → "io-fetch-1").
func (t *Tracer) SetLaneName(tid int32, name string) {
	if t == nil {
		return
	}
	t.laneMu.Lock()
	t.laneNam[tid] = name
	t.laneMu.Unlock()
}

// Emit records one span. Safe from any goroutine; never allocates.
func (t *Tracer) Emit(op EventOp, tid, vid, slot int32, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.buf[t.head] = Event{
		Op:    op,
		TID:   tid,
		VID:   vid,
		Slot:  slot,
		Start: start.Sub(t.epoch).Nanoseconds(),
		Dur:   dur.Nanoseconds(),
	}
	t.head++
	if t.head == len(t.buf) {
		t.head = 0
	}
	t.total++
	t.mu.Unlock()
}

// Len returns the number of events currently held (≤ capacity).
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return int(min64(t.total, int64(len(t.buf))))
}

// Total returns the number of events ever emitted.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return max64(0, t.total-int64(len(t.buf)))
}

// Events returns a copy of the held events, oldest first.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := int(min64(t.total, int64(len(t.buf))))
	out := make([]Event, 0, n)
	start := 0
	if t.total > int64(len(t.buf)) {
		start = t.head // ring wrapped: oldest is the next overwrite target
	}
	for i := 0; i < n; i++ {
		out = append(out, t.buf[(start+i)%len(t.buf)])
	}
	return out
}

// Epoch returns the tracer's time origin (all event timestamps are
// nanoseconds since it). Zero time for a nil tracer.
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// WriteChromeTrace writes the held events as Chrome trace_event JSON
// (the "JSON Object Format": {"traceEvents": [...]}) loadable in
// chrome://tracing and Perfetto. Spans are complete ("ph":"X") events
// with microsecond timestamps; lanes carry thread_name metadata. For
// the span-aware merged export see the package-level WriteChromeTrace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
	if t != nil {
		t.writeChromeEvents(bw, true)
	}
	fmt.Fprint(bw, "\n]}\n")
	return bw.Flush()
}

// writeChromeEvents emits the ring's events (pid 1) into an open
// traceEvents array; first reports whether no element has been written
// yet, and the updated flag is returned.
func (t *Tracer) writeChromeEvents(bw *bufio.Writer, first bool) bool {
	events := t.Events()
	// Lane metadata first, sorted for deterministic output.
	t.laneMu.Lock()
	tids := make([]int, 0, len(t.laneNam))
	for tid := range t.laneNam {
		tids = append(tids, int(tid))
	}
	sort.Ints(tids)
	for _, tid := range tids {
		if !first {
			fmt.Fprint(bw, ",")
		}
		first = false
		fmt.Fprintf(bw, "\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":%q}}",
			tid, t.laneNam[int32(tid)])
	}
	t.laneMu.Unlock()
	for _, e := range events {
		if !first {
			fmt.Fprint(bw, ",")
		}
		first = false
		// Instant events use ph:"i" with a scope; spans ph:"X".
		if e.Dur <= 0 {
			fmt.Fprintf(bw, "\n{\"name\":%q,\"cat\":%q,\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"args\":{\"vid\":%d,\"slot\":%d}}",
				e.Op.String(), e.Op.Cat(), e.TID, float64(e.Start)/1e3, e.VID, e.Slot)
			continue
		}
		fmt.Fprintf(bw, "\n{\"name\":%q,\"cat\":%q,\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"vid\":%d,\"slot\":%d}}",
			e.Op.String(), e.Op.Cat(), e.TID, float64(e.Start)/1e3, float64(e.Dur)/1e3, e.VID, e.Slot)
	}
	return first
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
