package obs

import (
	"testing"
	"time"
)

// The disabled-path cost model: an uninstrumented layer holds nil
// instruments, so the hot path pays one nil check per call site and
// never reads the clock. These benchmarks put numbers on that claim —
// the end-to-end ≤2% bound is measured by cmd/benchsmoke (obs-off vs
// the instrumented build) and recorded in BENCH_4.json.

// kernelStandIn is a small compute unit standing in for per-site kernel
// work, so the relative overhead numbers resemble a real call site
// rather than an empty loop.
func kernelStandIn(buf []float64) float64 {
	s := 0.0
	for i := range buf {
		buf[i] = buf[i]*1.0000001 + 1e-9
		s += buf[i]
	}
	return s
}

func benchHotPath(b *testing.B, c *Counter, h *Histogram, tr *Tracer) {
	buf := make([]float64, 256)
	for i := range buf {
		buf[i] = float64(i)
	}
	sink := 0.0
	on := tr.Enabled() || h != nil
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var start time.Time
		if on {
			start = time.Now()
		}
		sink += kernelStandIn(buf)
		c.Inc()
		if on {
			dur := time.Since(start)
			h.Observe(dur.Seconds())
			tr.Emit(OpNewview, 0, 1, 1, start, dur)
		}
	}
	if sink == 12345 {
		b.Fatal("unreachable, defeats dead-code elimination")
	}
}

// BenchmarkHotPathBare is the baseline: no obs code at all.
func BenchmarkHotPathBare(b *testing.B) {
	buf := make([]float64, 256)
	for i := range buf {
		buf[i] = float64(i)
	}
	sink := 0.0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += kernelStandIn(buf)
	}
	if sink == 12345 {
		b.Fatal("unreachable")
	}
}

// BenchmarkHotPathDisabled is the instrumented call site with nil
// instruments — what every run without -http/-report pays. Compare
// against BenchmarkHotPathBare: the delta is the disabled overhead.
func BenchmarkHotPathDisabled(b *testing.B) {
	benchHotPath(b, nil, nil, nil)
}

// BenchmarkHotPathEnabled is the fully instrumented call site:
// counter + latency histogram + trace event per iteration.
func BenchmarkHotPathEnabled(b *testing.B) {
	r := NewRegistry()
	benchHotPath(b, r.Counter("bench.c"), r.Histogram("bench.h", nil), NewTracer(4096))
}

func BenchmarkCounterDisabled(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterEnabled(b *testing.B) {
	c := &Counter{}
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	for i := 0; i < b.N; i++ {
		h.Observe(1e-4)
	}
}

func BenchmarkTracerEmit(b *testing.B) {
	tr := NewTracer(4096)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(OpNewview, 0, 1, 1, start, time.Microsecond)
	}
}
