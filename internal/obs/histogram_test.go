package obs

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 5})
	// The bucket convention is cumulative upper bounds: a value lands in
	// the first bucket whose bound is >= v. A value exactly on a bound
	// belongs to that bound's bucket (le semantics), not the next one.
	cases := []struct {
		v    float64
		want int // bucket index (3 = overflow)
	}{
		{0.5, 0}, {1, 0}, {1.0000001, 1}, {2, 1}, {3, 2}, {5, 2}, {5.1, 3}, {100, 3},
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	counts := make([]int64, 4)
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	want := []int64{2, 2, 2, 2}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d: got %d events, want %d (counts=%v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 8 {
		t.Errorf("Count=%d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0000001 + 2 + 3 + 5 + 5.1 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("Sum=%v, want %v", h.Sum(), wantSum)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	h := NewHistogram([]float64{10, 20, 30})
	// 10 observations uniformly in bucket (10, 20]: quantiles interpolate
	// linearly across the bucket's width.
	for i := 0; i < 10; i++ {
		h.Observe(15)
	}
	if q := h.Quantile(0.5); math.Abs(q-15) > 1e-9 {
		t.Errorf("p50 over one mid bucket: got %v, want 15 (midpoint interpolation)", q)
	}
	if q := h.Quantile(1.0); math.Abs(q-20) > 1e-9 {
		t.Errorf("p100: got %v, want upper bound 20", q)
	}

	// Split across two buckets: 5 in (0,10], 5 in (10,20]. The median
	// rank sits exactly at the first bucket's upper edge.
	h2 := NewHistogram([]float64{10, 20, 30})
	for i := 0; i < 5; i++ {
		h2.Observe(5)
		h2.Observe(15)
	}
	if q := h2.Quantile(0.5); math.Abs(q-10) > 1e-9 {
		t.Errorf("p50 at bucket edge: got %v, want 10", q)
	}
	// p75 = rank 7.5 → 2.5 of 5 into the second bucket → 10 + 0.5*10.
	if q := h2.Quantile(0.75); math.Abs(q-15) > 1e-9 {
		t.Errorf("p75: got %v, want 15", q)
	}
}

func TestHistogramQuantileEdges(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50: got %v, want 0", q)
	}
	// Overflow observations clamp to the top finite bound rather than
	// inventing an unbounded estimate.
	h.Observe(1e9)
	if q := h.Quantile(0.99); q != 2 {
		t.Errorf("overflow-only p99: got %v, want top bound 2", q)
	}
}

func TestHistogramDefaultBuckets(t *testing.T) {
	h := NewHistogram(nil)
	if got, want := len(h.bounds), len(LatencyBuckets); got != want {
		t.Fatalf("default bounds: got %d, want %d", got, want)
	}
	// LatencyBuckets must be strictly increasing or the bucket scan and
	// the interpolation both break silently.
	for i := 1; i < len(LatencyBuckets); i++ {
		if LatencyBuckets[i] <= LatencyBuckets[i-1] {
			t.Fatalf("LatencyBuckets not increasing at %d: %v <= %v", i, LatencyBuckets[i], LatencyBuckets[i-1])
		}
	}
}

func TestHistogramSnapshotJSON(t *testing.T) {
	h := NewHistogram([]float64{1, 2})
	h.Observe(0.5)
	h.Observe(99) // overflow bucket — serialised with the "+Inf" bound
	b, err := json.Marshal(h.Snapshot())
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if !strings.Contains(string(b), `"+Inf"`) {
		t.Errorf("snapshot JSON missing +Inf bucket: %s", b)
	}
	var round map[string]any
	if err := json.Unmarshal(b, &round); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
}

func TestHistogramObserveNoAlloc(t *testing.T) {
	h := NewHistogram(nil)
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.001) }); n != 0 {
		t.Errorf("Observe allocates %v per call, want 0", n)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	// The entire disabled fast path: nil instruments must be callable.
	var c *Counter
	var g *Gauge
	var f *FloatGauge
	var h *Histogram
	var r *Registry
	c.Inc()
	c.Add(5)
	c.Set(7)
	g.Set(3)
	g.Add(1)
	f.Set(1.5)
	h.Observe(0.1)
	if c.Value() != 0 || g.Value() != 0 || g.Max() != 0 || f.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments must read as zero")
	}
	if r.Counter("x") != nil || r.Gauge("x") != nil || r.FloatGauge("x") != nil || r.Histogram("x", nil) != nil {
		t.Error("nil registry must hand out nil instruments")
	}
	r.SetInfo("k", "v")
	r.AddPublisher(func() {})
	if s := r.Snapshot(); s == nil {
		t.Error("nil registry Snapshot must return an empty snapshot")
	}
}
