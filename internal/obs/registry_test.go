package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestRegistryInstrumentIdentity(t *testing.T) {
	r := NewRegistry()
	if r.Counter("a") != r.Counter("a") {
		t.Error("same name must return the same counter")
	}
	if r.Gauge("g") != r.Gauge("g") || r.FloatGauge("f") != r.FloatGauge("f") {
		t.Error("same name must return the same gauge")
	}
	if r.Histogram("h", nil) != r.Histogram("h", []float64{1}) {
		t.Error("same name must return the same histogram (first bounds win)")
	}
}

func TestGaugeHighWaterMark(t *testing.T) {
	g := &Gauge{}
	g.Set(5)
	g.Add(3) // 8
	g.Add(-6)
	if g.Value() != 2 {
		t.Errorf("Value=%d, want 2", g.Value())
	}
	if g.Max() != 8 {
		t.Errorf("Max=%d, want 8", g.Max())
	}
}

func TestSnapshotAndPublishers(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("kernel", "dna4")
	r.Counter("ooc.hits").Add(10)
	r.Gauge("pipe.queue_depth").Set(3)
	r.FloatGauge("search.lnl").Set(-1234.5)
	r.Histogram("plf.newview_seconds", nil).Observe(0.002)

	published := 0
	mirror := r.Counter("ooc.mirrored")
	r.AddPublisher(func() { published++; mirror.Set(int64(published)) })

	s := r.Snapshot()
	if published != 1 {
		t.Errorf("publisher ran %d times, want 1", published)
	}
	if s.Counters["ooc.hits"] != 10 || s.Counters["ooc.mirrored"] != 1 {
		t.Errorf("counters: %v", s.Counters)
	}
	if s.Gauges["pipe.queue_depth"].Value != 3 {
		t.Errorf("gauges: %v", s.Gauges)
	}
	if s.FloatGauges["search.lnl"] != -1234.5 {
		t.Errorf("float gauges: %v", s.FloatGauges)
	}
	if s.Histograms["plf.newview_seconds"].Count != 1 {
		t.Errorf("histograms: %v", s.Histograms)
	}
	if s.Info["kernel"] != "dna4" {
		t.Errorf("info: %v", s.Info)
	}
}

func TestWriteJSONFiniteAndValid(t *testing.T) {
	r := NewRegistry()
	r.FloatGauge("search.lnl").Set(math.Inf(-1)) // pre-first-evaluation state
	r.Histogram("plf.newview_seconds", nil).Observe(1e9)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
}

func TestRegistryConcurrentAccess(t *testing.T) {
	// Snapshot from one goroutine while others hammer instruments —
	// the pattern the debug endpoint creates. Run with -race.
	r := NewRegistry()
	c := r.Counter("ooc.hits")
	h := r.Histogram("plf.newview_seconds", nil)
	g := r.Gauge("pipe.queue_depth")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(0.001)
					g.Add(1)
					g.Add(-1)
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		s := r.Snapshot()
		if s.Counters["ooc.hits"] < 0 {
			t.Fatal("negative counter")
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteReport(t *testing.T) {
	r := NewRegistry()
	r.SetInfo("kernel", "dna4")
	r.Counter("plf.newviews").Add(42)
	r.Counter("ooc.hits").Add(7)
	r.Gauge("pipe.queue_depth").Set(2)
	r.FloatGauge("search.lnl").Set(-99.5)
	r.Histogram("ooc.fault_in_seconds", nil).Observe(0.0005)
	r.Counter("misc.thing").Inc() // unknown prefix → trailing section

	var buf bytes.Buffer
	WriteReport(&buf, r.Snapshot())
	out := buf.String()
	for _, want := range []string{
		"Run info: kernel=dna4",
		"[likelihood engine]", "newviews", "42",
		"[out-of-core manager]", "hits",
		"[async I/O pipeline]", "queue_depth",
		"[tree search]", "lnl",
		"[misc]",
		"fault_in_seconds", "p50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// Known layers must appear in narrative order.
	idx := func(s string) int { return strings.Index(out, s) }
	if !(idx("[likelihood engine]") < idx("[out-of-core manager]") &&
		idx("[out-of-core manager]") < idx("[async I/O pipeline]") &&
		idx("[async I/O pipeline]") < idx("[tree search]")) {
		t.Errorf("sections out of order:\n%s", out)
	}
}
